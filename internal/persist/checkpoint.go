package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"fedguard/internal/fl"
	"fedguard/internal/rng"
)

// Checkpoint file format, version 1. Everything is little-endian:
//
//	[4B magic "FdGC"][4B version][4B payload length][4B CRC-32C(payload)]
//	payload:
//	  u64 seed · u32 round · str strategy · rng server stream
//	  u32 n · n×f32 global
//	  u32 n · n×record history rounds
//	  u32 n · n×entry decoder cache (id, hash, params)
//	  u32 n · n×entry client state (id, rng, counters, decoder, classes)
//
// where str is u32 length + bytes, rng is 4×u64 + u8 + f64, and map
// entries are written in sorted key order — checkpoint bytes are a pure
// function of the run state, which is what makes golden pins possible.
// The CRC guards the whole payload: a torn or bit-flipped file is
// rejected as corrupt rather than resumed from.
const (
	checkpointMagic   = 0x46644743 // "FdGC"
	checkpointVersion = 1
	// maxCheckpointBytes guards corrupt headers; real checkpoints are a
	// few MB even at the paper's 100-client scale.
	maxCheckpointBytes = 1 << 30
	// allocChunk bounds how far any allocation runs ahead of bytes
	// actually read, so a hostile length prefix costs at most 1 MiB
	// before truncation is detected (same policy as the wire framing).
	allocChunk = 1 << 20
)

// CheckpointFile is the name SaveCheckpoint uses inside its directory.
const CheckpointFile = "checkpoint.fgc"

// ErrNoCheckpoint reports that the checkpoint directory holds no
// checkpoint yet — the caller should start the run fresh.
var ErrNoCheckpoint = errors.New("persist: no checkpoint")

// ErrCorruptCheckpoint reports a checkpoint that failed structural or
// CRC validation. A resume must not proceed from such a file.
var ErrCorruptCheckpoint = errors.New("persist: corrupt checkpoint")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WriteCheckpoint serializes a checkpoint to w and returns the number of
// bytes written (header included).
func WriteCheckpoint(w io.Writer, ck *fl.Checkpoint) (int64, error) {
	payload := appendCheckpoint(nil, ck)
	if len(payload) > maxCheckpointBytes {
		return 0, fmt.Errorf("persist: checkpoint payload %d bytes exceeds %d", len(payload), maxCheckpointBytes)
	}
	var header [16]byte
	binary.LittleEndian.PutUint32(header[0:], checkpointMagic)
	binary.LittleEndian.PutUint32(header[4:], checkpointVersion)
	binary.LittleEndian.PutUint32(header[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[12:], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(header[:]); err != nil {
		return 0, fmt.Errorf("persist: writing checkpoint header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return 0, fmt.Errorf("persist: writing checkpoint payload: %w", err)
	}
	return int64(len(header) + len(payload)), nil
}

// ReadCheckpoint deserializes a checkpoint written by WriteCheckpoint,
// verifying the CRC before decoding. Corruption of any kind — bad
// magic, truncation, flipped bits, trailing garbage, implausible
// lengths — returns an error wrapping ErrCorruptCheckpoint (except a
// valid-but-newer version, which is its own error).
func ReadCheckpoint(r io.Reader) (*fl.Checkpoint, error) {
	var header [16]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrCorruptCheckpoint, err)
	}
	if magic := binary.LittleEndian.Uint32(header[0:]); magic != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorruptCheckpoint, magic)
	}
	if version := binary.LittleEndian.Uint32(header[4:]); version != checkpointVersion {
		return nil, fmt.Errorf("persist: unsupported checkpoint version %d", version)
	}
	n := binary.LittleEndian.Uint32(header[8:])
	if n > maxCheckpointBytes {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCorruptCheckpoint, n)
	}
	payload, err := readChunked(r, int(n))
	if err != nil {
		return nil, fmt.Errorf("%w: reading payload: %v", ErrCorruptCheckpoint, err)
	}
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(header[12:]); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (got %#x, want %#x)", ErrCorruptCheckpoint, got, want)
	}
	d := &ckDecoder{b: payload}
	ck := d.checkpoint()
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorruptCheckpoint, len(d.b)-d.off)
	}
	return ck, nil
}

// CheckpointPath returns the file SaveCheckpoint writes inside dir.
func CheckpointPath(dir string) string { return filepath.Join(dir, CheckpointFile) }

// SaveCheckpoint atomically persists a checkpoint into dir: the bytes go
// to a temporary file first, are fsynced, and only then renamed over the
// previous checkpoint. A crash at any point leaves either the old or the
// new checkpoint fully intact — never a torn file that LoadCheckpoint
// would accept.
func SaveCheckpoint(dir string, ck *fl.Checkpoint) (path string, bytes int64, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", 0, err
	}
	path = CheckpointPath(dir)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", 0, err
	}
	n, err := WriteCheckpoint(f, ck)
	if err == nil {
		// The fsync is the crash-safety linchpin: without it the rename
		// can land before the data, and a power cut leaves a valid-looking
		// name over empty blocks.
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return "", 0, err
	}
	syncDir(dir)
	return path, n, nil
}

// syncDir best-effort fsyncs a directory so a just-completed rename is
// durable. Errors are ignored: some filesystems reject directory syncs,
// and the rename's atomicity does not depend on it.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// LoadCheckpoint reads dir's checkpoint. A directory with no checkpoint
// returns ErrNoCheckpoint (distinguishing "fresh start" from "broken
// state"); anything unreadable or failing validation is an error.
func LoadCheckpoint(dir string) (*fl.Checkpoint, error) {
	f, err := os.Open(CheckpointPath(dir))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoCheckpoint
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

// readChunked reads exactly n bytes, growing the buffer at most
// allocChunk ahead of the bytes actually received (the wire framing's
// hostile-length policy).
func readChunked(r io.Reader, n int) ([]byte, error) {
	if n <= allocChunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	buf := make([]byte, 0, allocChunk)
	for len(buf) < n {
		k := allocChunk
		if rest := n - len(buf); rest < k {
			k = rest
		}
		off := len(buf)
		buf = append(buf, make([]byte, k)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// --- payload encoding ---

func appendU8(b []byte, v uint8) []byte { return append(b, v) }

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendF32s(b []byte, vs []float32) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendU32(b, math.Float32bits(v))
	}
	return b
}

func appendInts(b []byte, vs []int) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendU32(b, uint32(v))
	}
	return b
}

func appendRNG(b []byte, s rng.State) []byte {
	b = appendU64(b, s.Hi)
	b = appendU64(b, s.Lo)
	b = appendU64(b, s.IncHi)
	b = appendU64(b, s.IncLo)
	var g uint8
	if s.HaveGauss {
		g = 1
	}
	b = appendU8(b, g)
	return appendF64(b, s.Gauss)
}

func appendRecord(b []byte, rec *fl.RoundRecord) []byte {
	b = appendU32(b, uint32(rec.Round))
	b = appendF64(b, rec.TestAccuracy)
	b = appendF64(b, rec.Seconds)
	b = appendF64(b, rec.TrainSeconds)
	b = appendF64(b, rec.AggregateSeconds)
	b = appendF64(b, rec.EvalSeconds)
	b = appendU64(b, uint64(rec.UploadBytes))
	b = appendU64(b, uint64(rec.DownloadBytes))
	b = appendU64(b, uint64(rec.WireUploadBytes))
	b = appendU64(b, uint64(rec.WireDownloadBytes))
	b = appendInts(b, rec.Sampled)
	b = appendU32(b, uint32(rec.MaliciousSampled))
	b = appendInts(b, rec.Dropped)
	keys := make([]string, 0, len(rec.Report))
	for k := range rec.Report {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = appendU32(b, uint32(len(keys)))
	for _, k := range keys {
		b = appendStr(b, k)
		b = appendF64(b, rec.Report[k])
	}
	return b
}

func appendCheckpoint(b []byte, ck *fl.Checkpoint) []byte {
	b = appendU64(b, ck.Seed)
	b = appendU32(b, uint32(ck.Round))
	b = appendStr(b, ck.Strategy)
	b = appendRNG(b, ck.ServerRNG)
	b = appendF32s(b, ck.Global)
	b = appendU32(b, uint32(len(ck.Rounds)))
	for i := range ck.Rounds {
		b = appendRecord(b, &ck.Rounds[i])
	}
	b = appendU32(b, uint32(len(ck.Decoders)))
	for i := range ck.Decoders {
		d := &ck.Decoders[i]
		b = appendU32(b, uint32(d.ID))
		b = appendU64(b, d.Hash)
		b = appendF32s(b, d.Params)
	}
	b = appendU32(b, uint32(len(ck.Clients)))
	for i := range ck.Clients {
		c := &ck.Clients[i]
		b = appendU32(b, uint32(c.ID))
		b = appendRNG(b, c.RNG)
		b = appendU32(b, uint32(c.Visible))
		b = appendU32(b, uint32(c.SinceCVAETrain))
		b = appendF32s(b, c.Decoder)
		b = appendInts(b, c.DecoderClasses)
	}
	return b
}

// --- payload decoding ---

// ckDecoder walks a fully-read, CRC-verified payload. Every count is
// validated against the bytes remaining BEFORE any allocation, so even
// a payload that passes the CRC (e.g. crafted by a fuzzer) can never
// make a slice allocation exceed the payload it arrived in.
type ckDecoder struct {
	b   []byte
	off int
	err error
}

func (d *ckDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrCorruptCheckpoint}, args...)...)
	}
}

// need reports whether n more bytes are available, recording an error
// when they are not.
func (d *ckDecoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || len(d.b)-d.off < n {
		d.fail("truncated payload at offset %d (need %d bytes)", d.off, n)
		return false
	}
	return true
}

func (d *ckDecoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *ckDecoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *ckDecoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *ckDecoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *ckDecoder) str() string {
	n := int(d.u32())
	if !d.need(n) {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *ckDecoder) f32s() []float32 {
	n := int(d.u32())
	if !d.need(4 * n) {
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(d.b[d.off:]))
		d.off += 4
	}
	return out
}

func (d *ckDecoder) ints() []int {
	n := int(d.u32())
	if !d.need(4 * n) {
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(int32(binary.LittleEndian.Uint32(d.b[d.off:])))
		d.off += 4
	}
	return out
}

func (d *ckDecoder) rngState() rng.State {
	return rng.State{
		Hi:        d.u64(),
		Lo:        d.u64(),
		IncHi:     d.u64(),
		IncLo:     d.u64(),
		HaveGauss: d.u8() != 0,
		Gauss:     d.f64(),
	}
}

// count reads a element count and bounds it by the bytes remaining at
// minSize per element, so slice-of-struct allocations stay within the
// payload.
func (d *ckDecoder) count(minSize int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if rem := len(d.b) - d.off; n > rem/minSize {
		d.fail("element count %d exceeds remaining %d bytes", n, rem)
		return 0
	}
	return n
}

func (d *ckDecoder) record() fl.RoundRecord {
	rec := fl.RoundRecord{
		Round:             int(d.u32()),
		TestAccuracy:      d.f64(),
		Seconds:           d.f64(),
		TrainSeconds:      d.f64(),
		AggregateSeconds:  d.f64(),
		EvalSeconds:       d.f64(),
		UploadBytes:       int64(d.u64()),
		DownloadBytes:     int64(d.u64()),
		WireUploadBytes:   int64(d.u64()),
		WireDownloadBytes: int64(d.u64()),
		Sampled:           d.ints(),
	}
	rec.MaliciousSampled = int(d.u32())
	rec.Dropped = d.ints()
	n := d.count(12) // min per entry: empty key (4) + f64 (8)
	// Always non-nil: live records carry the round context's (possibly
	// empty) report map, and restored history must compare equal to it.
	rec.Report = make(map[string]float64, n)
	for i := 0; i < n && d.err == nil; i++ {
		k := d.str()
		rec.Report[k] = d.f64()
	}
	return rec
}

func (d *ckDecoder) checkpoint() *fl.Checkpoint {
	ck := &fl.Checkpoint{
		Seed:      d.u64(),
		Round:     int(d.u32()),
		Strategy:  d.str(),
		ServerRNG: d.rngState(),
		Global:    d.f32s(),
	}
	// Min sizes below are the smallest legal encodings of each element
	// (all variable-length parts empty).
	if n := d.count(92); n > 0 { // record: 4 + 5*8 + 4*8 + 4*4 = 92
		ck.Rounds = make([]fl.RoundRecord, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			ck.Rounds = append(ck.Rounds, d.record())
		}
	}
	if n := d.count(16); n > 0 { // decoder: id(4) + hash(8) + count(4)
		ck.Decoders = make([]fl.DecoderState, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			ck.Decoders = append(ck.Decoders, fl.DecoderState{
				ID:     int(d.u32()),
				Hash:   d.u64(),
				Params: d.f32s(),
			})
		}
	}
	if n := d.count(61); n > 0 { // client: id(4) + rng(41) + 2*4 + 2*4
		ck.Clients = make([]fl.ClientState, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			ck.Clients = append(ck.Clients, fl.ClientState{
				ID:             int(d.u32()),
				RNG:            d.rngState(),
				Visible:        int(d.u32()),
				SinceCVAETrain: int(d.u32()),
				Decoder:        d.f32s(),
				DecoderClasses: d.ints(),
			})
		}
	}
	return ck
}
