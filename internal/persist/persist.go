// Package persist provides durable storage for the artifacts a federated
// run produces: flat parameter vectors (global model checkpoints, CVAE
// decoder payloads) in a versioned little-endian binary format, and run
// histories as JSON. A downstream deployment checkpoints the global model
// between rounds and replays histories for analysis; the fedbench tool
// uses the same format for its result artifacts.
package persist

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"fedguard/internal/fl"
)

// Magic and version identify the weight-vector file format.
const (
	weightsMagic   = 0x46644757 // "FdGW"
	weightsVersion = 1
)

// WriteWeights serializes a flat parameter vector to w: magic, version,
// length, then raw little-endian float32s.
func WriteWeights(w io.Writer, weights []float32) error {
	bw := bufio.NewWriter(w)
	header := []uint32{weightsMagic, weightsVersion, uint32(len(weights))}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return fmt.Errorf("persist: writing header: %w", err)
		}
	}
	buf := make([]byte, 4)
	for _, v := range weights {
		binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("persist: writing weights: %w", err)
		}
	}
	return bw.Flush()
}

// ReadWeights deserializes a parameter vector written by WriteWeights.
func ReadWeights(r io.Reader) ([]float32, error) {
	br := bufio.NewReader(r)
	var magic, version, n uint32
	for _, dst := range []*uint32{&magic, &version, &n} {
		if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("persist: reading header: %w", err)
		}
	}
	if magic != weightsMagic {
		return nil, fmt.Errorf("persist: bad magic %#x", magic)
	}
	if version != weightsVersion {
		return nil, fmt.Errorf("persist: unsupported version %d", version)
	}
	const maxParams = 1 << 28 // 1 GiB of float32s; guards corrupt headers
	if n > maxParams {
		return nil, fmt.Errorf("persist: implausible parameter count %d", n)
	}
	out := make([]float32, n)
	buf := make([]byte, 4)
	for i := range out {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("persist: reading weight %d: %w", i, err)
		}
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf))
	}
	return out, nil
}

// SaveWeights writes a parameter vector to path, atomically and
// durably: temporary file in the same directory, fsync, then rename. A
// crash mid-save leaves any previous file at path intact.
func SaveWeights(path string, weights []float32) error {
	return atomicWrite(path, func(f *os.File) error {
		return WriteWeights(f, weights)
	})
}

// atomicWrite streams content into path+".tmp", fsyncs, and renames the
// result over path — the shared crash-safety discipline for every
// artifact this package persists.
func atomicWrite(path string, write func(*os.File) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = write(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadWeights reads a parameter vector from path.
func LoadWeights(path string) ([]float32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadWeights(f)
}

// SaveHistory writes a run history to path as indented JSON, with the
// same atomic fsync+rename discipline as the binary artifacts.
func SaveHistory(path string, h *fl.History) error {
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(path, func(f *os.File) error {
		_, werr := f.Write(data)
		return werr
	})
}

// LoadHistory reads a run history written by SaveHistory.
func LoadHistory(path string) (*fl.History, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var h fl.History
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("persist: decoding history: %w", err)
	}
	return &h, nil
}
