package persist

import (
	"io"
	"testing"

	"fedguard/internal/fl"
	"fedguard/internal/rng"
)

// benchCheckpoint mirrors a quick-preset FedGuard run mid-flight: a
// Tiny-scale global vector, a dozen round records, and per-client
// decoder payloads — the realistic per-round serialization cost a
// -checkpoint-dir run pays.
func benchCheckpoint() *fl.Checkpoint {
	r := rng.New(3)
	global := make([]float32, 25450) // Tiny arch parameter count
	for i := range global {
		global[i] = r.NormFloat32()
	}
	decoder := make([]float32, 13328) // CVAE decoder payload at quick scale
	for i := range decoder {
		decoder[i] = r.NormFloat32()
	}
	ck := &fl.Checkpoint{
		Round:     12,
		Seed:      42,
		Strategy:  "FedGuard",
		Global:    global,
		ServerRNG: r.State(),
	}
	for round := 1; round <= 12; round++ {
		ck.Rounds = append(ck.Rounds, fl.RoundRecord{
			Round: round, TestAccuracy: 0.7, Seconds: 2,
			TrainSeconds: 1.5, AggregateSeconds: 0.3, EvalSeconds: 0.2,
			UploadBytes: 814400, DownloadBytes: 1629000,
			WireUploadBytes: 290000, WireDownloadBytes: 410000,
			Sampled: []int{0, 3, 7, 9, 11, 2, 5, 14}, MaliciousSampled: 2,
			Report: map[string]float64{fl.ReportFedGuardExcluded: 2},
		})
	}
	for id := 0; id < 16; id++ {
		ck.Clients = append(ck.Clients, fl.ClientState{
			ID: id, RNG: rng.New(uint64(id)).State(),
			Visible: 150, SinceCVAETrain: 3,
			Decoder:        decoder,
			DecoderClasses: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		})
		ck.Decoders = append(ck.Decoders, fl.DecoderState{ID: id, Hash: uint64(id) * 7919})
	}
	return ck
}

// BenchmarkCheckpointWrite measures pure serialization cost (no disk),
// the part that scales with model and federation size and is guarded by
// BENCH_guard.json. Disk cost is fsync-dominated and machine-specific,
// so the guard pins the compute side only.
func BenchmarkCheckpointWrite(b *testing.B) {
	ck := benchCheckpoint()
	var bytes int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := WriteCheckpoint(io.Discard, ck)
		if err != nil {
			b.Fatal(err)
		}
		bytes = n
	}
	b.ReportMetric(float64(bytes), "bytes/ckpt")
}

// BenchmarkCheckpointSave measures the full durable path — serialize,
// fsync, atomic rename — i.e. the real per-round overhead of running
// with -checkpoint-dir.
func BenchmarkCheckpointSave(b *testing.B) {
	ck := benchCheckpoint()
	dir := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SaveCheckpoint(dir, ck); err != nil {
			b.Fatal(err)
		}
	}
}
