package persist

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"fedguard/internal/fl"
	"fedguard/internal/rng"
)

func TestWeightsRoundTrip(t *testing.T) {
	r := rng.New(1)
	w := make([]float32, 1000)
	r.FillNormal(w, 0, 1)
	var buf bytes.Buffer
	if err := WriteWeights(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWeights(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(w) {
		t.Fatalf("read %d weights, want %d", len(got), len(w))
	}
	for i := range w {
		if got[i] != w[i] {
			t.Fatalf("weight %d: %v != %v", i, got[i], w[i])
		}
	}
}

func TestWeightsRoundTripSpecialValues(t *testing.T) {
	w := []float32{0, -0, 1, -1,
		float32(math.Inf(1)), float32(math.Inf(-1)),
		math.MaxFloat32, math.SmallestNonzeroFloat32}
	var buf bytes.Buffer
	if err := WriteWeights(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWeights(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if math.Float32bits(got[i]) != math.Float32bits(w[i]) {
			t.Fatalf("bit pattern of weight %d changed", i)
		}
	}
}

func TestWeightsQuickRoundTrip(t *testing.T) {
	f := func(vals []float32) bool {
		var buf bytes.Buffer
		if err := WriteWeights(&buf, vals); err != nil {
			return false
		}
		got, err := ReadWeights(&buf)
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			// NaN payloads must survive bit-exactly too.
			if math.Float32bits(got[i]) != math.Float32bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadWeightsRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},
		{1, 2, 3},
		[]byte("this is not a weights file at all........"),
	}
	for i, c := range cases {
		if _, err := ReadWeights(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
}

func TestReadWeightsRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWeights(&buf, []float32{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadWeights(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestReadWeightsRejectsHugeCount(t *testing.T) {
	var buf bytes.Buffer
	// Hand-craft a header claiming 2^30 weights.
	for _, v := range []uint32{weightsMagic, weightsVersion, 1 << 30} {
		buf.WriteByte(byte(v))
		buf.WriteByte(byte(v >> 8))
		buf.WriteByte(byte(v >> 16))
		buf.WriteByte(byte(v >> 24))
	}
	if _, err := ReadWeights(&buf); err == nil {
		t.Fatal("implausible count accepted")
	}
}

func TestSaveLoadWeightsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.fgw")
	w := []float32{1.5, -2.5, 3.5}
	if err := SaveWeights(path, w); err != nil {
		t.Fatal(err)
	}
	got, err := LoadWeights(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if got[i] != w[i] {
			t.Fatal("file round trip corrupted weights")
		}
	}
	if _, err := LoadWeights(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSaveLoadHistory(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "history.json")
	h := &fl.History{
		Strategy: "FedGuard",
		Rounds: []fl.RoundRecord{
			{Round: 1, TestAccuracy: 0.5, Seconds: 1.25,
				UploadBytes: 100, DownloadBytes: 120,
				Sampled: []int{1, 3}, MaliciousSampled: 1,
				Report: map[string]float64{"fedguard_excluded": 2}},
		},
	}
	if err := SaveHistory(path, h); err != nil {
		t.Fatal(err)
	}
	got, err := LoadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Strategy != "FedGuard" || len(got.Rounds) != 1 {
		t.Fatalf("history round trip lost data: %+v", got)
	}
	r := got.Rounds[0]
	if r.TestAccuracy != 0.5 || r.Report["fedguard_excluded"] != 2 || r.Sampled[1] != 3 {
		t.Fatalf("round record corrupted: %+v", r)
	}
}

// TestSaveLoadHistoryWireFields pins the round-trip of the
// fault-tolerance and wire-accounting columns — Dropped,
// WireUploadBytes/WireDownloadBytes and the MeanWireBytes derived from
// them — which the original round-trip test predates.
func TestSaveLoadHistoryWireFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "history.json")
	h := &fl.History{
		Strategy: "FedGuard",
		Rounds: []fl.RoundRecord{
			{Round: 1, Seconds: 1,
				UploadBytes: 1000, DownloadBytes: 2000,
				WireUploadBytes: 300, WireDownloadBytes: 400,
				Sampled: []int{0, 2, 4}, Dropped: []int{2},
				Report: map[string]float64{}},
			{Round: 2, Seconds: 1,
				UploadBytes: 1000, DownloadBytes: 2000,
				WireUploadBytes: 500, WireDownloadBytes: 800,
				Sampled: []int{1, 3, 0},
				Report:  map[string]float64{}},
		},
		FinalWeights: []float32{1, 2},
	}
	if err := SaveHistory(path, h); err != nil {
		t.Fatal(err)
	}
	got, err := LoadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range h.Rounds {
		r := got.Rounds[i]
		if r.WireUploadBytes != want.WireUploadBytes || r.WireDownloadBytes != want.WireDownloadBytes {
			t.Fatalf("round %d wire bytes: got %d/%d, want %d/%d",
				want.Round, r.WireUploadBytes, r.WireDownloadBytes, want.WireUploadBytes, want.WireDownloadBytes)
		}
		if len(r.Dropped) != len(want.Dropped) {
			t.Fatalf("round %d dropped list: got %v, want %v", want.Round, r.Dropped, want.Dropped)
		}
		for j := range want.Dropped {
			if r.Dropped[j] != want.Dropped[j] {
				t.Fatalf("round %d dropped list: got %v, want %v", want.Round, r.Dropped, want.Dropped)
			}
		}
	}
	wantUp, wantDown := h.MeanWireBytes()
	gotUp, gotDown := got.MeanWireBytes()
	if gotUp != wantUp || gotDown != wantDown {
		t.Fatalf("MeanWireBytes: got %d/%d, want %d/%d", gotUp, gotDown, wantUp, wantDown)
	}
	if len(got.FinalWeights) != 2 {
		t.Fatalf("FinalWeights lost: %v", got.FinalWeights)
	}
}

func TestLoadHistoryRejectsBadJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := writeFile(path, "{nope"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadHistory(path); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
