package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"fedguard/internal/fl"
	"fedguard/internal/rng"
)

// fullCheckpoint exercises every field of the format: history with
// drops, wire bytes and reports, decoder cache entries with and without
// payloads, client snapshots with an armed Gaussian cache.
func fullCheckpoint() *fl.Checkpoint {
	r := rng.New(42)
	r.NormFloat64() // arm the Box–Muller cache
	return &fl.Checkpoint{
		Round:     2,
		Seed:      99,
		Strategy:  "FedGuard",
		Global:    []float32{0.5, -1.25, 3e-9, 0},
		ServerRNG: r.State(),
		Rounds: []fl.RoundRecord{
			{
				Round: 1, TestAccuracy: 0.5, Seconds: 1.5,
				TrainSeconds: 1.0, AggregateSeconds: 0.25, EvalSeconds: 0.25,
				UploadBytes: 4096, DownloadBytes: 8192,
				WireUploadBytes: 1024, WireDownloadBytes: 2048,
				Sampled: []int{0, 2, 4}, MaliciousSampled: 1,
				Dropped: []int{2},
				Report:  map[string]float64{fl.ReportFedGuardExcluded: 1, "scored": 3},
			},
			{
				Round: 2, TestAccuracy: 0.625, Seconds: 1.25,
				UploadBytes: 4096, DownloadBytes: 8192,
				WireUploadBytes: 900, WireDownloadBytes: 1800,
				Sampled: []int{1, 3, 0}, MaliciousSampled: 0,
				Report: map[string]float64{},
			},
		},
		Decoders: []fl.DecoderState{
			{ID: 0, Hash: 0xdeadbeefcafef00d},
			{ID: 3, Hash: 42, Params: []float32{1, 2, 3}},
		},
		Clients: []fl.ClientState{
			{ID: 0, RNG: rng.New(7).State(), Visible: 30, SinceCVAETrain: 2,
				Decoder: []float32{0.125, -8}, DecoderClasses: []int{0, 4, 9}},
			{ID: 1, RNG: rng.New(8).State()},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck := fullCheckpoint()
	var buf bytes.Buffer
	n, err := WriteCheckpoint(&buf, ck)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteCheckpoint reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, ck)
	}
}

func TestCheckpointBytesDeterministic(t *testing.T) {
	// Report maps must serialize in sorted key order, so two snapshots of
	// the same state are byte-identical.
	var a, b bytes.Buffer
	if _, err := WriteCheckpoint(&a, fullCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteCheckpoint(&b, fullCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same checkpoint state produced different bytes")
	}
}

// TestCheckpointGoldenBytes pins the byte-level format. If this fails,
// the change breaks every checkpoint on disk: either revert it or bump
// checkpointVersion and add a migration path.
func TestCheckpointGoldenBytes(t *testing.T) {
	ck := &fl.Checkpoint{
		Round:    1,
		Seed:     7,
		Strategy: "FedAvg",
		Global:   []float32{1, -2},
		ServerRNG: rng.State{
			Hi: 0x1111111111111111, Lo: 0x2222222222222222,
			IncHi: 0x3333333333333333, IncLo: 0x4444444444444445,
			HaveGauss: true, Gauss: 0.5,
		},
		Rounds: []fl.RoundRecord{{
			Round: 1, TestAccuracy: 0.25, Seconds: 2,
			TrainSeconds: 1, AggregateSeconds: 0.5, EvalSeconds: 0.5,
			UploadBytes: 16, DownloadBytes: 32,
			WireUploadBytes: 8, WireDownloadBytes: 16,
			Sampled: []int{1, 0}, MaliciousSampled: 1, Dropped: []int{0},
			Report: map[string]float64{"x": 1},
		}},
		Decoders: []fl.DecoderState{{ID: 1, Hash: 0xabc, Params: []float32{3}}},
		Clients: []fl.ClientState{{
			ID: 1, RNG: rng.State{Hi: 1, Lo: 2, IncHi: 3, IncLo: 5},
			Visible: 4, SinceCVAETrain: 1,
			Decoder: []float32{-1}, DecoderClasses: []int{2},
		}},
	}
	const want = "434764460100000025010000b92ba806" + // header: magic, version, len, crc
		"0700000000000000" + // seed
		"01000000" + // round
		"06000000466564417667" + // strategy "FedAvg"
		"111111111111111122222222222222223333333333333333454444444444444401000000000000e03f" + // server rng
		"020000000000803f000000c0" + // global [1, -2]
		"01000000" + // 1 round record
		"01000000" + // record round
		"000000000000d03f" + "0000000000000040" + "000000000000f03f" + "000000000000e03f" + "000000000000e03f" + // acc, secs, train, agg, eval
		"1000000000000000" + "2000000000000000" + "0800000000000000" + "1000000000000000" + // byte columns
		"020000000100000000000000" + // sampled [1 0]
		"01000000" + // malicious sampled
		"0100000000000000" + // dropped [0]
		"010000000100000078000000000000f03f" + // report {"x": 1}
		"01000000" + "01000000bc0a000000000000" + "0100000000004040" + // decoders
		"01000000" + "01000000" + // 1 client, id 1
		"010000000000000002000000000000000300000000000000050000000000000000" + "0000000000000000" + // client rng
		"0400000001000000" + // visible, sinceCVAETrain
		"01000000000080bf" + "0100000002000000" // decoder [-1], classes [2]
	var buf bytes.Buffer
	if _, err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	got := hex.EncodeToString(buf.Bytes())
	if got != want {
		t.Fatalf("checkpoint bytes changed:\n got %s\nwant %s", got, want)
	}
	// The pinned bytes must keep decoding to the same state.
	back, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("golden checkpoint no longer decodes: %v", err)
	}
	if !reflect.DeepEqual(back, ck) {
		t.Fatal("golden checkpoint decodes to different state")
	}
}

func encodeCheckpoint(t *testing.T, ck *fl.Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadCheckpointRejectsCorruption(t *testing.T) {
	valid := encodeCheckpoint(t, fullCheckpoint())

	t.Run("bad magic", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		data[0] ^= 0xff
		if _, err := ReadCheckpoint(bytes.NewReader(data)); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint32(data[4:], 99)
		_, err := ReadCheckpoint(bytes.NewReader(data))
		if err == nil || errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("err = %v, want a distinct unsupported-version error", err)
		}
	})
	t.Run("truncated at every boundary", func(t *testing.T) {
		for _, cut := range []int{0, 3, 15, 16, 20, len(valid) / 2, len(valid) - 1} {
			if _, err := ReadCheckpoint(bytes.NewReader(valid[:cut])); !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("cut at %d: err = %v, want ErrCorruptCheckpoint", cut, err)
			}
		}
	})
	t.Run("flipped payload bit", func(t *testing.T) {
		for _, off := range []int{16, 30, len(valid) - 1} {
			data := append([]byte(nil), valid...)
			data[off] ^= 0x01
			if _, err := ReadCheckpoint(bytes.NewReader(data)); !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("flip at %d: err = %v, want ErrCorruptCheckpoint", off, err)
			}
		}
	})
	t.Run("trailing garbage inside payload", func(t *testing.T) {
		// Extend the payload and fix up length+CRC so only the
		// trailing-bytes check can catch it.
		data := append(append([]byte(nil), valid...), 0xaa, 0xbb)
		payload := data[16:]
		binary.LittleEndian.PutUint32(data[8:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(data[12:], crc32Of(payload))
		if _, err := ReadCheckpoint(bytes.NewReader(data)); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
		}
	})
	t.Run("lying element count", func(t *testing.T) {
		// A CRC-valid payload whose global count claims more floats than
		// the payload holds must fail without allocating the claim.
		payload := make([]byte, 0, 64)
		payload = appendU64(payload, 1)           // seed
		payload = appendU32(payload, 1)           // round
		payload = appendStr(payload, "s")         // strategy
		payload = appendRNG(payload, rng.State{}) // server rng
		payload = appendU32(payload, 1<<28)       // global count lie
		data := make([]byte, 0, len(payload)+16)
		data = appendU32(data, checkpointMagic)
		data = appendU32(data, checkpointVersion)
		data = appendU32(data, uint32(len(payload)))
		data = appendU32(data, crc32Of(payload))
		data = append(data, payload...)
		before := totalAllocBytes()
		if _, err := ReadCheckpoint(bytes.NewReader(data)); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
		}
		if used := totalAllocBytes() - before; used > 1<<20 {
			t.Fatalf("lying count allocated %d bytes", used)
		}
	})
}

func TestReadCheckpointAllocBound(t *testing.T) {
	// Header claims a 256 MB payload over a near-empty body: the chunked
	// reader must fail after at most two growth chunks, not reserve the
	// claim up front.
	data := make([]byte, 0, 32)
	data = appendU32(data, checkpointMagic)
	data = appendU32(data, checkpointVersion)
	data = appendU32(data, 256<<20)
	data = appendU32(data, 0)
	data = append(data, make([]byte, 100)...)
	before := totalAllocBytes()
	if _, err := ReadCheckpoint(bytes.NewReader(data)); err == nil {
		t.Fatal("lying length prefix accepted")
	}
	// Same slack policy as the wire framing's alloc-bound test.
	if limit := int64(2*allocChunk + 64<<10); totalAllocBytes()-before > limit {
		t.Fatalf("claimed-256MB checkpoint allocated %d bytes; want ≤ %d", totalAllocBytes()-before, limit)
	}
}

func totalAllocBytes() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.TotalAlloc)
}

func crc32Of(b []byte) uint32 {
	return crc32.Checksum(b, crcTable)
}

func TestSaveLoadCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadCheckpoint(dir); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: err = %v, want ErrNoCheckpoint", err)
	}
	ck := fullCheckpoint()
	path, n, err := SaveCheckpoint(dir, ck)
	if err != nil {
		t.Fatal(err)
	}
	if path != CheckpointPath(dir) || n <= 16 {
		t.Fatalf("SaveCheckpoint returned (%q, %d)", path, n)
	}
	got, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Fatal("loaded checkpoint differs from saved")
	}
}

// TestSaveCheckpointCreatesDir pins the CLI contract: -checkpoint-dir
// may name a directory that does not exist yet (results/ckpt-run1) and
// the first write creates it.
func TestSaveCheckpointCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "ckpt")
	ck := fullCheckpoint()
	if _, _, err := SaveCheckpoint(dir, ck); err != nil {
		t.Fatalf("SaveCheckpoint into a missing directory: %v", err)
	}
	got, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Fatal("loaded checkpoint differs from saved")
	}
}

// TestSaveCheckpointAtomic simulates the two crash windows: a torn
// temporary file left behind by a crash mid-write must not disturb the
// previous checkpoint, and overwriting replaces it only wholesale.
func TestSaveCheckpointAtomic(t *testing.T) {
	dir := t.TempDir()
	first := fullCheckpoint()
	if _, _, err := SaveCheckpoint(dir, first); err != nil {
		t.Fatal(err)
	}

	// Crash mid-write of the NEXT checkpoint: a torn .tmp file exists.
	torn := encodeCheckpoint(t, fullCheckpoint())[:20]
	if err := os.WriteFile(CheckpointPath(dir)+".tmp", torn, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, first) {
		t.Fatal("torn temporary file disturbed the committed checkpoint")
	}

	// A completed save replaces it and cleans nothing else up.
	second := fullCheckpoint()
	second.Round = 3
	second.Rounds = append(second.Rounds, fl.RoundRecord{Round: 3, Report: map[string]float64{}})
	if _, _, err := SaveCheckpoint(dir, second); err != nil {
		t.Fatal(err)
	}
	got, err = LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 3 || len(got.Rounds) != 3 {
		t.Fatalf("reloaded round = %d with %d records", got.Round, len(got.Rounds))
	}

	// A truncated committed file is rejected, not resumed from.
	full := encodeCheckpoint(t, second)
	if err := os.WriteFile(CheckpointPath(dir), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(dir); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("truncated checkpoint: err = %v, want ErrCorruptCheckpoint", err)
	}
}
