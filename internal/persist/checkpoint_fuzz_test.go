package persist

import (
	"bytes"
	"encoding/binary"
	"testing"

	"fedguard/internal/fl"
	"fedguard/internal/rng"
)

// FuzzReadCheckpoint hammers the checkpoint reader with arbitrary
// bytes: it must return an error or a checkpoint — never panic, and
// never allocate far beyond the bytes supplied (lying length prefixes
// and lying element counts are the classic traps). Anything that
// decodes must survive a re-encode/re-decode round trip byte-exactly.
func FuzzReadCheckpoint(f *testing.F) {
	// Seed corpus: well-formed checkpoints of increasing shape…
	shapes := []*fl.Checkpoint{
		{Strategy: "FedAvg", Round: 1, Rounds: []fl.RoundRecord{{Round: 1, Report: map[string]float64{}}}},
		fullCheckpoint(),
	}
	for _, ck := range shapes {
		var buf bytes.Buffer
		if _, err := WriteCheckpoint(&buf, ck); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// …plus the hostile shapes: garbage, truncated header, oversized
	// length prefix, CRC-valid payload with a lying element count, and a
	// bit-flipped valid file.
	var valid bytes.Buffer
	if _, err := WriteCheckpoint(&valid, fullCheckpoint()); err != nil {
		f.Fatal(err)
	}
	flipped := append([]byte(nil), valid.Bytes()...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0x43, 0x47, 0x64})
	f.Add(valid.Bytes()[:17])
	huge := append([]byte(nil), valid.Bytes()[:16]...)
	binary.LittleEndian.PutUint32(huge[8:], 512<<20)
	f.Add(huge)
	lying := make([]byte, 0, 64)
	lying = appendU64(lying, 1)
	lying = appendU32(lying, 1)
	lying = appendStr(lying, "s")
	lying = appendRNG(lying, rng.State{})
	lying = appendU32(lying, 1<<27) // global count with no bytes behind it
	frame := make([]byte, 0, len(lying)+16)
	frame = appendU32(frame, checkpointMagic)
	frame = appendU32(frame, checkpointVersion)
	frame = appendU32(frame, uint32(len(lying)))
	frame = appendU32(frame, crc32Of(lying))
	frame = append(frame, lying...)
	f.Add(frame)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) >= 16 {
			// Keep claimed payload lengths within the input's ballpark so
			// every iteration stays cheap; huge hostile prefixes have their
			// own dedicated allocation-bound test.
			n := binary.LittleEndian.Uint32(data[8:12])
			if n > uint32(len(data))+64 && n <= maxCheckpointBytes {
				t.Skip()
			}
		}
		ck, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Byte-level round-trip comparison sidesteps NaN payloads in
		// floats while still pinning every field.
		var first bytes.Buffer
		if _, err := WriteCheckpoint(&first, ck); err != nil {
			t.Fatalf("decoded checkpoint does not re-encode: %v", err)
		}
		again, err := ReadCheckpoint(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded checkpoint does not decode: %v", err)
		}
		var second bytes.Buffer
		if _, err := WriteCheckpoint(&second, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("re-encode is not a fixed point")
		}
	})
}
