// Package metrics provides classification quality measures beyond plain
// accuracy: confusion matrices and per-class recall. These expose what
// aggregate accuracy hides — the paper's label-flipping attack is
// *targeted* (§IV-B): it degrades only the flipped classes (5↔7, 4↔2),
// which is why it is harder to detect than untargeted attacks.
package metrics

import (
	"fmt"
	"strings"

	"fedguard/internal/classifier"
	"fedguard/internal/dataset"
	"fedguard/internal/nn"
	"fedguard/internal/rng"
)

// Confusion is a square confusion matrix: Counts[actual][predicted].
type Confusion struct {
	Counts  [][]int
	Classes int
}

// NewConfusion returns an empty matrix over n classes.
func NewConfusion(n int) *Confusion {
	c := &Confusion{Classes: n, Counts: make([][]int, n)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, n)
	}
	return c
}

// Add records one (actual, predicted) observation.
func (c *Confusion) Add(actual, predicted int) {
	if actual < 0 || actual >= c.Classes || predicted < 0 || predicted >= c.Classes {
		panic(fmt.Sprintf("metrics: observation (%d,%d) out of range for %d classes",
			actual, predicted, c.Classes))
	}
	c.Counts[actual][predicted]++
}

// Total returns the number of recorded observations.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c.Counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Accuracy returns the overall fraction of correct predictions (0 when
// empty).
func (c *Confusion) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < c.Classes; i++ {
		correct += c.Counts[i][i]
	}
	return float64(correct) / float64(total)
}

// Recall returns the per-class recall (diagonal / row sum); classes with
// no observations report NaN-free 0.
func (c *Confusion) Recall() []float64 {
	out := make([]float64, c.Classes)
	for i, row := range c.Counts {
		rowSum := 0
		for _, v := range row {
			rowSum += v
		}
		if rowSum > 0 {
			out[i] = float64(row[i]) / float64(rowSum)
		}
	}
	return out
}

// MostConfused returns the off-diagonal cell with the highest count as
// (actual, predicted, count) — the dominant misclassification, which
// under a 5↔7 label-flip attack is exactly the flipped pair.
func (c *Confusion) MostConfused() (actual, predicted, count int) {
	actual, predicted = -1, -1
	for i, row := range c.Counts {
		for j, v := range row {
			if i != j && v > count {
				actual, predicted, count = i, j, v
			}
		}
	}
	return actual, predicted, count
}

// String renders the matrix with per-class recall, suitable for terminal
// output.
func (c *Confusion) String() string {
	var sb strings.Builder
	sb.WriteString("actual\\pred")
	for j := 0; j < c.Classes; j++ {
		fmt.Fprintf(&sb, "%6d", j)
	}
	sb.WriteString("  recall\n")
	recall := c.Recall()
	for i, row := range c.Counts {
		fmt.Fprintf(&sb, "%10d ", i)
		for _, v := range row {
			fmt.Fprintf(&sb, "%6d", v)
		}
		fmt.Fprintf(&sb, "  %5.1f%%\n", 100*recall[i])
	}
	return sb.String()
}

// Evaluate runs the model over the examples of ds selected by indices and
// returns the resulting confusion matrix.
func Evaluate(model *nn.Sequential, ds *dataset.Dataset, indices []int) *Confusion {
	c := NewConfusion(dataset.NumClasses)
	const batch = 128
	for off := 0; off < len(indices); off += batch {
		end := off + batch
		if end > len(indices) {
			end = len(indices)
		}
		x, labels := ds.Batch(indices[off:end])
		logits := model.Forward(x, false)
		n := logits.Dim(1)
		for i, actual := range labels {
			row := logits.Data[i*n : (i+1)*n]
			best := 0
			for j := 1; j < n; j++ {
				if row[j] > row[best] {
					best = j
				}
			}
			c.Add(actual, best)
		}
	}
	return c
}

// EvaluateWeights rebuilds a model of the given architecture from a flat
// parameter vector and evaluates it — the form used to analyse a global
// model checkpoint or a client update.
func EvaluateWeights(arch classifier.Arch, weights []float32, ds *dataset.Dataset, indices []int) (*Confusion, error) {
	model := arch(rng.New(0xa0d17))
	if err := model.LoadParams(weights); err != nil {
		return nil, err
	}
	return Evaluate(model, ds, indices), nil
}
