package metrics

import (
	"math"
	"strings"
	"testing"

	"fedguard/internal/classifier"
	"fedguard/internal/dataset"
	"fedguard/internal/rng"
)

func TestConfusionBasics(t *testing.T) {
	c := NewConfusion(3)
	c.Add(0, 0)
	c.Add(0, 0)
	c.Add(1, 2)
	c.Add(2, 2)
	if c.Total() != 4 {
		t.Fatalf("Total = %d", c.Total())
	}
	if math.Abs(c.Accuracy()-0.75) > 1e-12 {
		t.Fatalf("Accuracy = %v", c.Accuracy())
	}
	recall := c.Recall()
	if recall[0] != 1 || recall[1] != 0 || recall[2] != 1 {
		t.Fatalf("Recall = %v", recall)
	}
	a, p, n := c.MostConfused()
	if a != 1 || p != 2 || n != 1 {
		t.Fatalf("MostConfused = (%d,%d,%d)", a, p, n)
	}
}

func TestConfusionEmpty(t *testing.T) {
	c := NewConfusion(2)
	if c.Accuracy() != 0 {
		t.Fatal("empty accuracy should be 0")
	}
	r := c.Recall()
	if r[0] != 0 || r[1] != 0 {
		t.Fatal("empty recall should be 0 (not NaN)")
	}
	a, p, n := c.MostConfused()
	if a != -1 || p != -1 || n != 0 {
		t.Fatalf("MostConfused on empty = (%d,%d,%d)", a, p, n)
	}
}

func TestConfusionAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Add did not panic")
		}
	}()
	NewConfusion(2).Add(0, 5)
}

func TestConfusionString(t *testing.T) {
	c := NewConfusion(2)
	c.Add(0, 1)
	s := c.String()
	if !strings.Contains(s, "recall") || !strings.Contains(s, "0.0%") {
		t.Fatalf("String output unexpected:\n%s", s)
	}
}

func TestEvaluateMatchesAccuracy(t *testing.T) {
	r := rng.New(1)
	train := dataset.Generate(300, dataset.DefaultGenOptions(), r)
	test := dataset.Generate(150, dataset.DefaultGenOptions(), r)
	m := classifier.Tiny()(r)
	classifier.Train(m, train, dataset.Range(train.Len()),
		classifier.TrainConfig{Epochs: 5, BatchSize: 32, LR: 0.1, Momentum: 0.9}, r)

	idx := dataset.Range(test.Len())
	c := Evaluate(m, test, idx)
	if c.Total() != test.Len() {
		t.Fatalf("confusion total %d, want %d", c.Total(), test.Len())
	}
	plain := classifier.Evaluate(m, test, idx)
	if math.Abs(c.Accuracy()-plain) > 1e-9 {
		t.Fatalf("confusion accuracy %v != classifier accuracy %v", c.Accuracy(), plain)
	}
}

func TestEvaluateWeights(t *testing.T) {
	r := rng.New(2)
	test := dataset.Generate(50, dataset.DefaultGenOptions(), r)
	m := classifier.Tiny()(r)
	w := m.FlattenParams()
	c, err := EvaluateWeights(classifier.Tiny(), w, test, dataset.Range(test.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if c.Total() != 50 {
		t.Fatalf("Total = %d", c.Total())
	}
	if _, err := EvaluateWeights(classifier.Tiny(), w[:10], test, dataset.Range(test.Len())); err == nil {
		t.Fatal("short weight vector accepted")
	}
}

// A model trained on label-flipped data must show its confusion
// concentrated on the flipped pairs — the targeted-attack signature.
func TestLabelFlipSignature(t *testing.T) {
	r := rng.New(3)
	train := dataset.Generate(600, dataset.DefaultGenOptions(), r)
	test := dataset.Generate(400, dataset.DefaultGenOptions(), r)

	// Flip 5<->7 in the training labels.
	flipped := train.Clone()
	for i, l := range flipped.Labels {
		switch l {
		case 5:
			flipped.Labels[i] = 7
		case 7:
			flipped.Labels[i] = 5
		}
	}
	m := classifier.Tiny()(r)
	classifier.Train(m, flipped, dataset.Range(flipped.Len()),
		classifier.TrainConfig{Epochs: 8, BatchSize: 32, LR: 0.1, Momentum: 0.9}, r)

	c := Evaluate(m, test, dataset.Range(test.Len()))
	recall := c.Recall()
	// Non-flipped classes learn normally; flipped classes collapse.
	var cleanAvg float64
	for _, cls := range []int{0, 1, 3, 6, 8, 9} {
		cleanAvg += recall[cls]
	}
	cleanAvg /= 6
	if cleanAvg < 0.6 {
		t.Fatalf("clean classes recall %v too low for the test to be meaningful", cleanAvg)
	}
	if recall[5] > 0.3 || recall[7] > 0.3 {
		t.Fatalf("flipped classes should collapse: recall[5]=%v recall[7]=%v", recall[5], recall[7])
	}
	a, p, _ := c.MostConfused()
	pair := map[[2]int]bool{{5, 7}: true, {7, 5}: true}
	if !pair[[2]int{a, p}] {
		t.Fatalf("dominant confusion (%d->%d), want within the flipped pair", a, p)
	}
}

// MostConfused with no off-diagonal mass must report the sentinel
// (-1, -1, 0), not a phantom cell — callers render it as "no dominant
// confusion".
func TestMostConfusedDegenerate(t *testing.T) {
	empty := NewConfusion(4)
	if a, p, n := empty.MostConfused(); a != -1 || p != -1 || n != 0 {
		t.Fatalf("empty matrix: MostConfused = (%d, %d, %d), want (-1, -1, 0)", a, p, n)
	}

	diagonal := NewConfusion(4)
	for i := 0; i < 4; i++ {
		for k := 0; k <= i; k++ {
			diagonal.Add(i, i)
		}
	}
	if a, p, n := diagonal.MostConfused(); a != -1 || p != -1 || n != 0 {
		t.Fatalf("all-diagonal matrix: MostConfused = (%d, %d, %d), want (-1, -1, 0)", a, p, n)
	}
	if diagonal.Accuracy() != 1 {
		t.Fatalf("all-diagonal accuracy = %v", diagonal.Accuracy())
	}
}

func TestEvaluateWeightsLengthMismatch(t *testing.T) {
	arch := classifier.Tiny()
	ds := dataset.Generate(8, dataset.DefaultGenOptions(), rng.New(3))
	idx := dataset.Range(ds.Len())

	want := len(arch(rng.New(1)).FlattenParams())
	for _, n := range []int{0, 1, want - 1, want + 1} {
		if _, err := EvaluateWeights(arch, make([]float32, n), ds, idx); err == nil {
			t.Fatalf("EvaluateWeights accepted a %d-element vector (model has %d)", n, want)
		}
	}
	// The correct length still round-trips.
	if _, err := EvaluateWeights(arch, make([]float32, want), ds, idx); err != nil {
		t.Fatalf("EvaluateWeights rejected a correctly sized vector: %v", err)
	}
}
