// Package classifier builds the federated MNIST classifier of the paper
// (Table II) and a reduced variant for CPU-scale experiments, together
// with local-training and evaluation helpers used by federated clients
// and by FedGuard's server-side auditing.
package classifier

import (
	"fmt"

	"fedguard/internal/dataset"
	"fedguard/internal/loss"
	"fedguard/internal/nn"
	"fedguard/internal/opt"
	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

// Arch selects a classifier architecture. It is a function so every
// client can build an independent instance with its own RNG while
// guaranteeing identical shapes (and therefore an identical flat
// parameter layout).
type Arch func(r *rng.RNG) *nn.Sequential

// Paper returns the exact architecture of Table II: two ReLU-activated
// 5×5 convolutions (32 and 64 channels) each followed by 2×2 max
// pooling, a 512-unit ReLU FCL and a 10-unit output FCL.
// 1,662,752 parameters. The softmax is fused into the loss.
func Paper() Arch {
	return func(r *rng.RNG) *nn.Sequential {
		c1 := nn.NewConv2D(1, 32, 5, 5, r)
		c1.InputGradOff = true // first layer: its input gradient is never consumed
		return nn.NewSequential(
			c1,
			nn.NewReLU(),
			nn.NewMaxPool2D(2, 2),
			nn.NewConv2D(32, 64, 5, 5, r),
			nn.NewReLU(),
			nn.NewMaxPool2D(2, 2),
			nn.NewFlatten(),
			nn.NewLinear(64*4*4, 512, r),
			nn.NewReLU(),
			nn.NewLinear(512, 10, r),
		)
	}
}

// Small returns a reduced variant (8 and 16 conv channels, 64-unit FCL)
// with the same topology. It trains ~50× faster on CPU while preserving
// the attack/defense dynamics; the experiment presets use it by default.
func Small() Arch {
	return func(r *rng.RNG) *nn.Sequential {
		c1 := nn.NewConv2D(1, 8, 5, 5, r)
		c1.InputGradOff = true // first layer: its input gradient is never consumed
		return nn.NewSequential(
			c1,
			nn.NewReLU(),
			nn.NewMaxPool2D(2, 2),
			nn.NewConv2D(8, 16, 5, 5, r),
			nn.NewReLU(),
			nn.NewMaxPool2D(2, 2),
			nn.NewFlatten(),
			nn.NewLinear(16*4*4, 64, r),
			nn.NewReLU(),
			nn.NewLinear(64, 10, r),
		)
	}
}

// Tiny returns a dense-only model for unit tests that need a trainable
// classifier in milliseconds.
func Tiny() Arch {
	return func(r *rng.RNG) *nn.Sequential {
		return nn.NewSequential(
			nn.NewFlatten(),
			nn.NewLinear(dataset.ImageH*dataset.ImageW, 32, r),
			nn.NewReLU(),
			nn.NewLinear(32, 10, r),
		)
	}
}

// TrainConfig controls local classifier training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	// ProxMu, when positive, adds the FedProx proximal term
	// (μ/2)·‖w − w₀‖² to the local objective, with w₀ the parameters the
	// client started the round from (Sahu et al., reference [32]; the
	// paper's §VI-C names FedProx as an alternative inner operator).
	ProxMu float64
}

// DefaultTrainConfig mirrors the paper's client setup: 5 local epochs.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 5, BatchSize: 32, LR: 0.05, Momentum: 0.9}
}

// Train runs local SGD on the examples of ds selected by indices and
// returns the mean loss of the final epoch. The model is updated in
// place.
func Train(model *nn.Sequential, ds *dataset.Dataset, indices []int, cfg TrainConfig, r *rng.RNG) float64 {
	optim := opt.NewSGD(model.Params(), cfg.LR, cfg.Momentum, 0)
	var anchor []float32
	if cfg.ProxMu > 0 {
		anchor = model.FlattenParams() // w₀ for the proximal term
	}
	var epochLoss float64
	for e := 0; e < cfg.Epochs; e++ {
		epochLoss = 0
		batches := dataset.Batches(indices, cfg.BatchSize, r)
		for _, b := range batches {
			x, labels := ds.Batch(b)
			model.ZeroGrad()
			logits := model.Forward(x, true)
			l, grad := loss.SoftmaxCrossEntropy(logits, labels)
			model.Backward(grad)
			if anchor != nil {
				addProxGrad(model, anchor, float32(cfg.ProxMu))
			}
			optim.Step()
			epochLoss += l * float64(len(b))
		}
		epochLoss /= float64(len(indices))
	}
	return epochLoss
}

// addProxGrad accumulates μ·(w − w₀) into the gradients (the derivative
// of the FedProx proximal term).
func addProxGrad(model *nn.Sequential, anchor []float32, mu float32) {
	off := 0
	for _, p := range model.Params() {
		n := p.Value.Len()
		for i := 0; i < n; i++ {
			p.Grad.Data[i] += mu * (p.Value.Data[i] - anchor[off+i])
		}
		off += n
	}
}

// Evaluate returns the model's accuracy on the examples of ds selected by
// indices, running inference in batches to bound memory.
func Evaluate(model *nn.Sequential, ds *dataset.Dataset, indices []int) float64 {
	const batch = 128
	correct := 0
	for off := 0; off < len(indices); off += batch {
		end := off + batch
		if end > len(indices) {
			end = len(indices)
		}
		x, labels := ds.Batch(indices[off:end])
		logits := model.Forward(x, false)
		correct += int(loss.Accuracy(logits, labels)*float64(len(labels)) + 0.5)
	}
	if len(indices) == 0 {
		return 0
	}
	return float64(correct) / float64(len(indices))
}

// EvaluateTensor returns accuracy on an explicit (B, 1, H, W) tensor and
// label slice — the entry point FedGuard's server uses to audit client
// updates on synthetic validation data.
func EvaluateTensor(model *nn.Sequential, x *tensor.Tensor, labels []int) float64 {
	logits := model.Forward(x, false)
	return loss.Accuracy(logits, labels)
}

// CountCorrectTensor returns the number of argmax-correct predictions on
// an explicit tensor batch. FedGuard's streaming audit scores each
// decoder's synthetic block separately and sums the integer counts; the
// forward pass is per-sample (rows are independent), so the sum equals
// EvaluateTensor's count on the concatenated set exactly.
func CountCorrectTensor(model *nn.Sequential, x *tensor.Tensor, labels []int) int {
	logits := model.Forward(x, false)
	return loss.CountCorrect(logits, labels)
}

// ByName resolves an architecture by its registry name ("paper", "small",
// "tiny"). The networked federation ships architectures by name, so both
// endpoints must agree on this registry.
func ByName(name string) (Arch, error) {
	switch name {
	case "paper":
		return Paper(), nil
	case "small":
		return Small(), nil
	case "tiny":
		return Tiny(), nil
	default:
		return nil, fmt.Errorf("classifier: unknown architecture %q", name)
	}
}
