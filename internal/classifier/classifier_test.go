package classifier

import (
	"testing"

	"fedguard/internal/dataset"
	"fedguard/internal/rng"
)

func TestPaperArchParameterCount(t *testing.T) {
	r := rng.New(1)
	m := Paper()(r)
	// Table II reports 1,662,752 total parameters. Our conv layers use
	// identical shapes: 32*1*25+32 + 64*32*25+64 + 512*1024+512 + 10*512+10.
	want := 32*25 + 32 + 64*32*25 + 64 + 512*64*4*4 + 512 + 10*512 + 10
	if got := m.NumParams(); got != want {
		t.Fatalf("Paper() has %d params, want %d", got, want)
	}
}

func TestPaperArchOutputShape(t *testing.T) {
	r := rng.New(2)
	m := Paper()(r)
	d := dataset.Generate(2, dataset.DefaultGenOptions(), rng.New(3))
	x, _ := d.Batch([]int{0, 1})
	y := m.Forward(x, false)
	if y.Dim(0) != 2 || y.Dim(1) != 10 {
		t.Fatalf("Paper() output shape %v", y.Shape())
	}
}

func TestArchesShareLayout(t *testing.T) {
	// Two instances of the same Arch must have interchangeable flat
	// parameter vectors.
	r := rng.New(4)
	a := Small()(r)
	b := Small()(r)
	if a.NumParams() != b.NumParams() {
		t.Fatal("two Small() instances disagree on parameter count")
	}
	if err := b.LoadParams(a.FlattenParams()); err != nil {
		t.Fatal(err)
	}
}

func TestTrainImprovesAccuracy(t *testing.T) {
	r := rng.New(5)
	train := dataset.Generate(400, dataset.DefaultGenOptions(), r)
	test := dataset.Generate(200, dataset.DefaultGenOptions(), r)
	m := Tiny()(r)
	before := Evaluate(m, test, dataset.Range(test.Len()))
	cfg := TrainConfig{Epochs: 8, BatchSize: 32, LR: 0.1, Momentum: 0.9}
	Train(m, train, dataset.Range(train.Len()), cfg, r)
	after := Evaluate(m, test, dataset.Range(test.Len()))
	if after < before+0.3 {
		t.Fatalf("training barely helped: %v -> %v", before, after)
	}
	if after < 0.8 {
		t.Fatalf("Tiny classifier reached only %v accuracy on SynthDigits", after)
	}
}

func TestSmallClassifierLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("conv training is slow in -short mode")
	}
	r := rng.New(6)
	train := dataset.Generate(600, dataset.DefaultGenOptions(), r)
	test := dataset.Generate(300, dataset.DefaultGenOptions(), r)
	m := Small()(r)
	cfg := TrainConfig{Epochs: 6, BatchSize: 32, LR: 0.05, Momentum: 0.9}
	Train(m, train, dataset.Range(train.Len()), cfg, r)
	acc := Evaluate(m, test, dataset.Range(test.Len()))
	if acc < 0.85 {
		t.Fatalf("Small classifier reached only %v accuracy", acc)
	}
}

func TestEvaluateEmptyIndices(t *testing.T) {
	r := rng.New(7)
	m := Tiny()(r)
	d := dataset.Generate(10, dataset.DefaultGenOptions(), r)
	if acc := Evaluate(m, d, nil); acc != 0 {
		t.Fatalf("Evaluate on empty index list = %v", acc)
	}
}

func TestEvaluateTensorMatchesEvaluate(t *testing.T) {
	r := rng.New(8)
	m := Tiny()(r)
	d := dataset.Generate(50, dataset.DefaultGenOptions(), r)
	idx := dataset.Range(d.Len())
	x, labels := d.Batch(idx)
	a := Evaluate(m, d, idx)
	b := EvaluateTensor(m, x, labels)
	if a != b {
		t.Fatalf("Evaluate %v != EvaluateTensor %v", a, b)
	}
}

func TestProxTermAnchorsWeights(t *testing.T) {
	r := rng.New(9)
	train := dataset.Generate(200, dataset.DefaultGenOptions(), r)

	run := func(mu float64) float32 {
		m := Tiny()(rng.New(42))
		start := m.FlattenParams()
		cfg := TrainConfig{Epochs: 3, BatchSize: 32, LR: 0.1, Momentum: 0.9, ProxMu: mu}
		Train(m, train, dataset.Range(train.Len()), cfg, rng.New(43))
		end := m.FlattenParams()
		var drift float64
		for i := range start {
			d := float64(end[i] - start[i])
			drift += d * d
		}
		return float32(drift)
	}
	free := run(0)
	anchored := run(1.0)
	if anchored >= free {
		t.Fatalf("FedProx term did not reduce drift: mu=0 %v vs mu=1 %v", free, anchored)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"paper", "small", "tiny"} {
		arch, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if arch == nil {
			t.Fatalf("%s returned nil arch", name)
		}
	}
	if _, err := ByName("alexnet"); err == nil {
		t.Fatal("unknown arch accepted")
	}
}
