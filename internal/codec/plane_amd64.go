//go:build amd64 && !purego

package codec

// hasAVX2 reports whether the CPU and OS support AVX2 (CPUID feature
// bits plus XGETBV confirmation that the OS preserves YMM state).
func hasAVX2() bool

// fillPlanes4 transposes n float32s (n a multiple of 32) into four byte
// planes: plane k byte i = byte k of src[i]'s little-endian bit
// pattern, XORed against base[i] first when base is non-nil. Each plane
// pointer must have n writable bytes.
//
//go:noescape
func fillPlanes4(src, base *float32, n int, p0, p1, p2, p3 *byte)

// nextRun4AVX2 scans p[i:n] for the first index starting a run of four
// equal bytes. It returns either that index or, once fewer than 33
// bytes remain, a resume point from which the scalar scanner continues;
// callers treat the result as "resume here" in both cases — a hit is
// rediscovered immediately by the scalar pass.
//
//go:noescape
func nextRun4AVX2(p *byte, n, i int) int

// useAVX2 gates the vector plane kernels; resolved once at startup.
var useAVX2 = hasAVX2()
