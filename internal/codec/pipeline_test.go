package codec

import (
	"bytes"
	"math"
	"testing"

	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

// serialEncode is the original single-goroutine plane encoder, kept in
// the tests as the reference the pooled/parallel path must match byte
// for byte.
func serialEncode(vals []float32) []byte {
	dst := appendUvarintRef(nil, uint64(len(vals)))
	if len(vals) == 0 {
		return dst
	}
	plane := make([]byte, len(vals))
	for p := 0; p < 4; p++ {
		shift := uint(8 * p)
		for i, v := range vals {
			plane[i] = byte(bits32(v) >> shift)
		}
		dst = refAppendPlane(dst, plane)
	}
	return dst
}

// refAppendPlane is the original bytewise RLE scan — maximal run at
// each position, repeat token when it reaches minRun, literals
// otherwise — sharing no scan code with the production encoder.
func refAppendPlane(dst, plane []byte) []byte {
	litStart := 0
	i := 0
	for i < len(plane) {
		j := i + 1
		for j < len(plane) && plane[j] == plane[i] {
			j++
		}
		if j-i >= minRun {
			if litStart < i {
				dst = appendUvarintRef(dst, uint64(i-litStart)<<1)
				dst = append(dst, plane[litStart:i]...)
			}
			dst = appendUvarintRef(dst, uint64(j-i)<<1|1)
			dst = append(dst, plane[i])
			litStart = j
		}
		i = j
	}
	if litStart < len(plane) {
		dst = appendUvarintRef(dst, uint64(len(plane)-litStart)<<1)
		dst = append(dst, plane[litStart:]...)
	}
	return dst
}

func TestParallelEncodeMatchesSerial(t *testing.T) {
	prev := tensor.Workers()
	defer tensor.SetWorkers(prev)

	r := rng.New(7)
	sizes := []int{0, 1, 3, 17, parallelElems - 1, parallelElems, parallelElems + 1, 3 * parallelElems, 65_536}
	for _, n := range sizes {
		vals := make([]float32, n)
		r.FillNormal(vals, 0, 0.1)
		// Sprinkle runs so the RLE fast path is exercised.
		for i := 0; i+64 < n; i += 97 {
			for k := 0; k < 48; k++ {
				vals[i+k] = vals[i]
			}
		}
		want := serialEncode(vals)
		for _, w := range []int{1, 2, 4, 8} {
			tensor.SetWorkers(w)
			got := Encode(vals)
			if !bytes.Equal(got, want) {
				t.Fatalf("n=%d workers=%d: encoding differs from serial reference", n, w)
			}
		}
	}
}

func TestAppendEncodeDelta(t *testing.T) {
	r := rng.New(11)
	cur := make([]float32, 9_000)
	base := make([]float32, 9_000)
	r.FillNormal(cur, 0, 0.1)
	copy(base, cur)
	for i := 0; i < len(base); i += 13 {
		base[i] += 0.001
	}

	// The fused XOR fill must match the materialized-delta reference.
	delta := make([]float32, len(cur))
	XORInto(delta, cur, base)
	want := Encode(delta)
	got, err := EncodeDelta(cur, base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fused delta encoding differs from XOR-then-encode")
	}

	prefix := []byte{0xde, 0xad}
	appended, err := AppendEncodeDelta(append([]byte(nil), prefix...), cur, base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(appended[:2], prefix) || !bytes.Equal(appended[2:], want) {
		t.Fatal("AppendEncodeDelta did not append the delta after the prefix")
	}

	back, err := DecodeDelta(got, base)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(back, cur) {
		t.Fatal("delta round trip lost bits")
	}

	if _, err := AppendEncodeDelta(nil, cur, base[:10]); err == nil {
		t.Fatal("length mismatch not rejected")
	}
}

// TestEncodeAllocs pins the steady-state allocation cost of the encode
// path: one allocation for the returned blob, nothing else.
func TestEncodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations")
	}
	r := rng.New(3)
	vals := make([]float32, 65_536)
	base := make([]float32, 65_536)
	r.FillNormal(vals, 0, 0.1)
	r.FillNormal(base, 0, 0.1)
	Encode(vals) // warm the scratch pool

	allocs := testing.AllocsPerRun(20, func() { Encode(vals) })
	if allocs > 1 {
		t.Fatalf("Encode allocates %.1f times per call, want <= 1", allocs)
	}
	allocs = testing.AllocsPerRun(20, func() {
		if _, err := EncodeDelta(vals, base); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("EncodeDelta allocates %.1f times per call, want <= 1", allocs)
	}
	allocs = testing.AllocsPerRun(20, func() { Hash(vals) })
	if allocs != 0 {
		t.Fatalf("Hash allocates %.1f times per call, want 0", allocs)
	}
}

// appendUvarintRef mirrors binary.AppendUvarint without importing it
// into the reference encoder, so the reference stays self-contained.
func appendUvarintRef(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func bits32(v float32) uint32 {
	return math.Float32bits(v)
}
