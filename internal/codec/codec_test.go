package codec

import (
	"bytes"
	"math"
	"testing"

	"fedguard/internal/rng"
)

// hardValues are the bit patterns a lossy or normalizing codec would
// mangle: NaN payloads, infinities, signed zeros, denormals.
func hardValues() []float32 {
	return []float32{
		0, float32(math.Copysign(0, -1)),
		float32(math.Inf(1)), float32(math.Inf(-1)),
		float32(math.NaN()), math.Float32frombits(0x7fc00001), math.Float32frombits(0xffc0dead),
		math.Float32frombits(1), math.Float32frombits(0x007fffff), // denormals
		math.MaxFloat32, math.SmallestNonzeroFloat32,
		1, -1, 0.5, -2.75, 1e-20, -3e30,
	}
}

func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

func TestRoundTripExact(t *testing.T) {
	r := rng.New(1)
	cases := [][]float32{
		nil,
		{},
		{1.5},
		hardValues(),
		make([]float32, 10_000),
	}
	random := make([]float32, 4096)
	r.FillNormal(random, 0, 1)
	cases = append(cases, random)
	mixed := append(append([]float32{}, hardValues()...), random...)
	cases = append(cases, mixed)

	for i, vals := range cases {
		blob := Encode(vals)
		got, err := Decode(blob, 0)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bitsEqual(got, vals) {
			t.Fatalf("case %d: round trip not bit-exact", i)
		}
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	r := rng.New(2)
	base := make([]float32, 2048)
	r.FillNormal(base, 0, 1)
	cur := make([]float32, len(base))
	for i := range cur {
		cur[i] = base[i] + 1e-3*base[i] // nearby values, the delta sweet spot
	}
	blob, err := EncodeDelta(cur, base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDelta(blob, base)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(got, cur) {
		t.Fatal("delta round trip not bit-exact")
	}

	// Identical vectors XOR to all-zero planes: the blob must collapse
	// to a tiny fraction of the raw 4 bytes/value.
	same, err := EncodeDelta(base, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(same) > len(base)/10 {
		t.Fatalf("zero delta encodes to %d bytes for %d values", len(same), len(base))
	}
	if _, err := EncodeDelta(cur, base[:10]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := DecodeDelta(Encode(cur[:10]), base); err == nil {
		t.Fatal("delta count mismatch accepted")
	}
}

func TestCompressesLowEntropyPlanes(t *testing.T) {
	// Same-magnitude weights share their sign/exponent byte; the plane
	// transposition must exploit it even without a delta base.
	vals := make([]float32, 4096)
	r := rng.New(3)
	r.FillNormal(vals, 0, 1)
	for i := range vals {
		vals[i] = float32(math.Abs(float64(vals[i])))*0.5 + 0.5 // all in [0.5, ~2)
	}
	blob := Encode(vals)
	if len(blob) >= 4*len(vals) {
		t.Fatalf("clustered values did not compress: %d bytes for %d raw", len(blob), 4*len(vals))
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	good := Encode(hardValues())
	cases := map[string][]byte{
		"empty":            {},
		"bad varint":       {0x80},
		"truncated plane":  good[:len(good)-3],
		"trailing":         append(append([]byte{}, good...), 0xAB),
		"zero-len token":   {2, 0, 0},
		"overrun repeat":   {2, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F, 0},
		"truncated repeat": {4, 9},
		"count only":       {200},
	}
	for name, data := range cases {
		if _, err := Decode(data, 0); err == nil {
			t.Errorf("%s: corrupt blob accepted", name)
		}
	}
	// A nonzero declared count with a valid empty tail must also fail.
	if _, err := Decode([]byte{1}, 0); err == nil {
		t.Error("count without planes accepted")
	}
}

func TestDecodeCap(t *testing.T) {
	blob := Encode(make([]float32, 100))
	if _, err := Decode(blob, 99); err == nil {
		t.Fatal("blob over cap accepted")
	}
	got, err := Decode(blob, 100)
	if err != nil || len(got) != 100 {
		t.Fatalf("blob at cap: %v (%d values)", err, len(got))
	}
}

func TestHash(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{1, 2, 4}
	if Hash(a) == 0 || Hash(b) == 0 || Hash(nil) == 0 {
		t.Fatal("zero digest leaked (reserved for 'no payload')")
	}
	if Hash(a) != Hash([]float32{1, 2, 3}) {
		t.Fatal("hash not deterministic")
	}
	if Hash(a) == Hash(b) {
		t.Fatal("distinct payloads collide")
	}
	// 0.0 and -0.0 are distinct bit patterns and must hash apart.
	if Hash([]float32{0}) == Hash([]float32{float32(math.Copysign(0, -1))}) {
		t.Fatal("signed zeros collide")
	}
}

func TestAppendEncodePreservesPrefix(t *testing.T) {
	prefix := []byte{9, 9, 9}
	blob := AppendEncode(append([]byte{}, prefix...), hardValues())
	if !bytes.Equal(blob[:3], prefix) {
		t.Fatal("prefix clobbered")
	}
	got, err := Decode(blob[3:], 0)
	if err != nil || !bitsEqual(got, hardValues()) {
		t.Fatalf("suffix does not decode: %v", err)
	}
}
