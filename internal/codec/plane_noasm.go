//go:build !amd64 || purego

package codec

const useAVX2 = false

// Stubs referenced behind the useAVX2 gate; never reached on this
// build.

func fillPlanes4(src, base *float32, n int, p0, p1, p2, p3 *byte) {
	panic("codec: fillPlanes4 without AVX2")
}

func nextRun4AVX2(p *byte, n, i int) int {
	panic("codec: nextRun4AVX2 without AVX2")
}
