// Package codec implements the lossless float32 compressor used by the
// federation wire layer. Parameter vectors are split into four byte
// planes (byte k of every little-endian float32 grouped together), and
// each plane is run-length encoded with varint-framed tokens. The plane
// transposition concentrates the low-entropy bytes — sign/exponent
// bytes of same-magnitude weights, and the long zero runs that XOR
// deltas of consecutive model versions produce — into contiguous runs
// that RLE collapses, while decode(encode(x)) reproduces x bit for bit
// (NaN payloads, negative zeros and denormals included).
//
// The package also provides the XOR-delta primitives the federation
// uses to encode a vector against a reference both endpoints already
// hold, and a content hash for payload deduplication. Nothing here is
// lossy: every transform is an exact bijection on bit patterns.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
)

// DefaultMaxElems bounds the element count a Decode call will accept
// when the caller does not supply a tighter cap. It matches the wire
// layer's 256 MiB frame bound (64 Mi float32s).
const DefaultMaxElems = 64 << 20

// minRun is the shortest run of equal bytes worth a repeat token: a
// repeat costs up to three token bytes plus the value byte, so shorter
// runs are cheaper left inside a literal.
const minRun = 4

// allocChunk bounds how far ahead of the decoded bytes a plane buffer
// grows, so a hostile count claim costs at most one chunk before the
// missing tokens are detected.
const allocChunk = 1 << 20

// ErrCorrupt reports a blob that cannot be a codec encoding: truncated
// tokens, a plane that over- or under-runs its length, or trailing
// garbage.
var ErrCorrupt = errors.New("codec: corrupt blob")

// ErrTooLarge reports a blob whose declared element count exceeds the
// decoder's cap.
var ErrTooLarge = errors.New("codec: declared size exceeds limit")

// Encode compresses vals into a self-describing blob. Empty input
// yields a valid one-byte blob.
func Encode(vals []float32) []byte {
	return AppendEncode(nil, vals)
}

// AppendEncode appends the encoding of vals to dst and returns the
// extended slice.
func AppendEncode(dst []byte, vals []float32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	if len(vals) == 0 {
		return dst
	}
	plane := make([]byte, len(vals))
	for p := 0; p < 4; p++ {
		shift := uint(8 * p)
		for i, v := range vals {
			plane[i] = byte(math.Float32bits(v) >> shift)
		}
		dst = appendPlane(dst, plane)
	}
	return dst
}

// appendPlane RLE-encodes one byte plane: a token stream of
// varint(n<<1|1) + value (repeat runs) and varint(n<<1) + n bytes
// (literals), covering exactly len(plane) bytes.
func appendPlane(dst, plane []byte) []byte {
	litStart := 0
	i := 0
	for i < len(plane) {
		j := i + 1
		for j < len(plane) && plane[j] == plane[i] {
			j++
		}
		if j-i >= minRun {
			if litStart < i {
				dst = appendLiteral(dst, plane[litStart:i])
			}
			dst = binary.AppendUvarint(dst, uint64(j-i)<<1|1)
			dst = append(dst, plane[i])
			litStart = j
		}
		i = j
	}
	if litStart < len(plane) {
		dst = appendLiteral(dst, plane[litStart:])
	}
	return dst
}

func appendLiteral(dst, lit []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(lit))<<1)
	return append(dst, lit...)
}

// Decode reverses Encode. maxElems caps the declared element count
// (<= 0 selects DefaultMaxElems); callers that know the expected vector
// length should pass it so a corrupt or hostile blob cannot demand a
// large allocation. Buffers grow incrementally, so allocation tracks
// the bytes the token stream actually produces.
func Decode(data []byte, maxElems int) ([]float32, error) {
	if maxElems <= 0 {
		maxElems = DefaultMaxElems
	}
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad count varint", ErrCorrupt)
	}
	if count > uint64(maxElems) {
		return nil, fmt.Errorf("%w: %d elements, cap %d", ErrTooLarge, count, maxElems)
	}
	data = data[n:]
	if count == 0 {
		if len(data) != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data))
		}
		return []float32{}, nil
	}
	var planes [4][]byte
	for p := 0; p < 4; p++ {
		var err error
		planes[p], data, err = decodePlane(data, int(count))
		if err != nil {
			return nil, fmt.Errorf("plane %d: %w", p, err)
		}
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data))
	}
	out := make([]float32, count)
	for i := range out {
		bits := uint32(planes[0][i]) | uint32(planes[1][i])<<8 |
			uint32(planes[2][i])<<16 | uint32(planes[3][i])<<24
		out[i] = math.Float32frombits(bits)
	}
	return out, nil
}

// decodePlane consumes tokens from data until exactly want bytes are
// produced, returning the plane and the remaining input.
func decodePlane(data []byte, want int) (plane, rest []byte, err error) {
	plane = make([]byte, 0, min(want, allocChunk))
	for len(plane) < want {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, nil, fmt.Errorf("%w: bad token varint", ErrCorrupt)
		}
		data = data[n:]
		runLen := int(v >> 1)
		if v>>1 > uint64(want-len(plane)) || runLen == 0 {
			return nil, nil, fmt.Errorf("%w: token overruns plane", ErrCorrupt)
		}
		if v&1 == 1 { // repeat run
			if len(data) < 1 {
				return nil, nil, fmt.Errorf("%w: truncated repeat", ErrCorrupt)
			}
			plane = growPlane(plane, runLen)
			b := data[0]
			data = data[1:]
			for i := len(plane) - runLen; i < len(plane); i++ {
				plane[i] = b
			}
		} else { // literal run
			if len(data) < runLen {
				return nil, nil, fmt.Errorf("%w: truncated literal", ErrCorrupt)
			}
			plane = append(plane, data[:runLen]...)
			data = data[runLen:]
		}
	}
	return plane, data, nil
}

// growPlane extends plane by n zero bytes, growing capacity at most
// allocChunk beyond the current length so claimed-but-unbacked sizes
// stay cheap.
func growPlane(plane []byte, n int) []byte {
	for n > 0 {
		k := min(n, allocChunk)
		plane = append(plane, make([]byte, k)...)
		n -= k
	}
	return plane
}

// XORInto writes the element-wise XOR of a and b's bit patterns into
// dst (all three must share a length). XOR of two float vectors is the
// delta transform: close values share sign, exponent and leading
// mantissa bits, so the result is zero-heavy and compresses well, and
// applying it twice restores the input exactly.
func XORInto(dst, a, b []float32) {
	_ = dst[len(a)-1]
	_ = b[len(a)-1]
	for i := range a {
		dst[i] = math.Float32frombits(math.Float32bits(a[i]) ^ math.Float32bits(b[i]))
	}
}

// EncodeDelta encodes cur as a compressed XOR delta against base. Both
// sides must hold the identical base for DecodeDelta to reproduce cur.
func EncodeDelta(cur, base []float32) ([]byte, error) {
	if len(cur) != len(base) {
		return nil, fmt.Errorf("codec: delta of %d elements against base of %d", len(cur), len(base))
	}
	if len(cur) == 0 {
		return Encode(nil), nil
	}
	delta := make([]float32, len(cur))
	XORInto(delta, cur, base)
	return Encode(delta), nil
}

// DecodeDelta reverses EncodeDelta against the same base. The blob's
// element count must equal len(base).
func DecodeDelta(data []byte, base []float32) ([]float32, error) {
	out, err := Decode(data, max(len(base), 1))
	if err != nil {
		return nil, err
	}
	if len(out) != len(base) {
		return nil, fmt.Errorf("%w: delta has %d elements, base has %d", ErrCorrupt, len(out), len(base))
	}
	XORInto(out, out, base)
	return out, nil
}

// Hash returns a content hash of the vector's bit patterns (FNV-1a 64
// over the little-endian bytes). The zero value is reserved as "no
// payload" by the wire protocol, so a zero digest is mapped to 1.
func Hash(vals []float32) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
		h.Write(buf[:])
	}
	sum := h.Sum64()
	if sum == 0 {
		return 1
	}
	return sum
}
