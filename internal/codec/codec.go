// Package codec implements the lossless float32 compressor used by the
// federation wire layer. Parameter vectors are split into four byte
// planes (byte k of every little-endian float32 grouped together), and
// each plane is run-length encoded with varint-framed tokens. The plane
// transposition concentrates the low-entropy bytes — sign/exponent
// bytes of same-magnitude weights, and the long zero runs that XOR
// deltas of consecutive model versions produce — into contiguous runs
// that RLE collapses, while decode(encode(x)) reproduces x bit for bit
// (NaN payloads, negative zeros and denormals included).
//
// The package also provides the XOR-delta primitives the federation
// uses to encode a vector against a reference both endpoints already
// hold, and a content hash for payload deduplication. Nothing here is
// lossy: every transform is an exact bijection on bit patterns.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"

	"fedguard/internal/tensor"
)

// DefaultMaxElems bounds the element count a Decode call will accept
// when the caller does not supply a tighter cap. It matches the wire
// layer's 256 MiB frame bound (64 Mi float32s).
const DefaultMaxElems = 64 << 20

// minRun is the shortest run of equal bytes worth a repeat token: a
// repeat costs up to three token bytes plus the value byte, so shorter
// runs are cheaper left inside a literal.
const minRun = 4

// allocChunk bounds how far ahead of the decoded bytes a plane buffer
// grows, so a hostile count claim costs at most one chunk before the
// missing tokens are detected.
const allocChunk = 1 << 20

// ErrCorrupt reports a blob that cannot be a codec encoding: truncated
// tokens, a plane that over- or under-runs its length, or trailing
// garbage.
var ErrCorrupt = errors.New("codec: corrupt blob")

// ErrTooLarge reports a blob whose declared element count exceeds the
// decoder's cap.
var ErrTooLarge = errors.New("codec: declared size exceeds limit")

// parallelElems is the input size below which the plane encoder stays
// on the calling goroutine: four pool dispatches cost more than they
// save on small vectors.
const parallelElems = 4096

// Encode compresses vals into a self-describing blob. Empty input
// yields a valid one-byte blob.
func Encode(vals []float32) []byte {
	return appendEncode(nil, vals, nil)
}

// AppendEncode appends the encoding of vals to dst and returns the
// extended slice.
func AppendEncode(dst []byte, vals []float32) []byte {
	return appendEncode(dst, vals, nil)
}

// encScratch holds the plane encoder's working set: the four transposed
// byte planes and the four per-plane token streams. Instances are
// pooled, so steady-state encoding allocates only the final blob, and
// they implement tensor.RangeRunner so the planes can be encoded on the
// kernel worker pool without a per-call closure.
type encScratch struct {
	vals, base []float32 // base non-nil selects the fused XOR-delta fill
	plane      [4][]byte
	out        [4][]byte
}

var encPool = sync.Pool{New: func() any { return new(encScratch) }}

// fillPlanes transposes vals (or vals XOR base) into the four byte
// planes in a single pass: one float load feeds four byte stores, which
// beats four separate passes by the cost of re-reading the input.
func (s *encScratch) fillPlanes() {
	n := len(s.vals)
	for p := range s.plane {
		if cap(s.plane[p]) < n {
			s.plane[p] = make([]byte, n)
		}
		s.plane[p] = s.plane[p][:n]
	}
	p0, p1, p2, p3 := s.plane[0], s.plane[1], s.plane[2], s.plane[3]
	vals, base := s.vals, s.base
	i := 0
	if useAVX2 && n >= 32 {
		m := n &^ 31
		var bp *float32
		if base != nil {
			bp = &base[0]
		}
		fillPlanes4(&vals[0], bp, m, &p0[0], &p1[0], &p2[0], &p3[0])
		i = m
	}
	if base == nil {
		for ; i < n; i++ {
			bits := math.Float32bits(vals[i])
			p0[i] = byte(bits)
			p1[i] = byte(bits >> 8)
			p2[i] = byte(bits >> 16)
			p3[i] = byte(bits >> 24)
		}
	} else {
		for ; i < n; i++ {
			bits := math.Float32bits(vals[i]) ^ math.Float32bits(base[i])
			p0[i] = byte(bits)
			p1[i] = byte(bits >> 8)
			p2[i] = byte(bits >> 16)
			p3[i] = byte(bits >> 24)
		}
	}
}

// RunRange RLE-encodes planes [lo, hi) (fillPlanes must have run).
// Planes are independent: each reads only its own plane and writes only
// its own scratch slot, so any partitioning of [0, 4) produces the same
// four token streams.
func (s *encScratch) RunRange(lo, hi int) {
	for p := lo; p < hi; p++ {
		s.out[p] = appendPlane(s.out[p][:0], s.plane[p])
	}
}

// appendEncode is the shared core of the Encode and EncodeDelta
// entry points: with base == nil it encodes vals, otherwise the fused
// XOR delta of the two bit patterns, without materializing a delta
// vector. The planes are encoded into pooled scratch first, then copied
// after dst in one exactly-sized growth, so the output bytes match the
// original serial encoder while a steady-state Encode costs a single
// allocation.
func appendEncode(dst []byte, vals, base []float32) []byte {
	if len(vals) == 0 {
		return binary.AppendUvarint(dst, 0)
	}
	s := encPool.Get().(*encScratch)
	s.vals, s.base = vals, base
	s.fillPlanes()
	if len(vals) >= parallelElems && tensor.Workers() > 1 {
		tensor.ParallelRanges(s, 4)
	} else {
		s.RunRange(0, 4)
	}
	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(len(vals)))
	need := hn + len(s.out[0]) + len(s.out[1]) + len(s.out[2]) + len(s.out[3])
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	dst = append(dst, hdr[:hn]...)
	for p := 0; p < 4; p++ {
		dst = append(dst, s.out[p]...)
	}
	s.vals, s.base = nil, nil
	encPool.Put(s)
	return dst
}

// appendPlane RLE-encodes one byte plane: a token stream of
// varint(n<<1|1) + value (repeat runs) and varint(n<<1) + n bytes
// (literals), covering exactly len(plane) bytes. The scan works a word
// at a time in both regimes — literal stretches advance seven bytes per
// adjacent-pair test, runs extend eight bytes per compare — and emits
// exactly the tokens the bytewise scan would.
func appendPlane(dst, plane []byte) []byte {
	n := len(plane)
	litStart := 0
	i := 0
	for i < n {
		r := nextRun4(plane, i)
		if r >= n {
			break
		}
		// Maximal run from r; extend eight bytes per compare while the
		// repeated pattern holds, then finish bytewise.
		b := plane[r]
		j := r + minRun
		rep := uint64(b) * 0x0101010101010101
		for j+8 <= n && binary.LittleEndian.Uint64(plane[j:]) == rep {
			j += 8
		}
		for j < n && plane[j] == b {
			j++
		}
		if litStart < r {
			dst = appendLiteral(dst, plane[litStart:r])
		}
		dst = binary.AppendUvarint(dst, uint64(j-r)<<1|1)
		dst = append(dst, b)
		litStart = j
		i = j
	}
	if litStart < n {
		dst = appendLiteral(dst, plane[litStart:])
	}
	return dst
}

// nextRun4 returns the smallest index k >= i with plane[k] ==
// plane[k+1] == plane[k+2] == plane[k+3], or len(plane) when no run of
// minRun starts at or after i. Emitting a repeat token at exactly the
// first such position reproduces the bytewise reference scan: a
// position whose maximal run reaches minRun is precisely a position
// where a run of four starts.
func nextRun4(plane []byte, i int) int {
	n := len(plane)
	if useAVX2 && i+33 <= n {
		// Either a verified hit (re-found instantly below) or the
		// resume point where the vector scan ran out of width.
		i = nextRun4AVX2(&plane[0], n, i)
	}
	for i+8 <= n {
		// Byte k of y (k < 7) is zero iff plane[i+k] == plane[i+k+1],
		// so byte k of y3 (k <= 4) is zero iff a run of four starts at
		// i+k. The zero-byte trick can flag false positives only above
		// a borrow from a true zero byte, so the lowest flagged byte is
		// always a real run start.
		x := binary.LittleEndian.Uint64(plane[i:])
		y := (x ^ (x >> 8)) | (0xFF << 56)
		y3 := y | (y >> 8) | (y >> 16)
		z := (y3 - 0x0101010101010101) &^ y3 & 0x8080808080808080
		if z == 0 {
			i += 5
			continue
		}
		return i + bits.TrailingZeros64(z)>>3
	}
	for ; i+minRun <= n; i++ {
		if plane[i] == plane[i+1] && plane[i] == plane[i+2] && plane[i] == plane[i+3] {
			return i
		}
	}
	return n
}

func appendLiteral(dst, lit []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(lit))<<1)
	return append(dst, lit...)
}

// Decode reverses Encode. maxElems caps the declared element count
// (<= 0 selects DefaultMaxElems); callers that know the expected vector
// length should pass it so a corrupt or hostile blob cannot demand a
// large allocation. Buffers grow incrementally, so allocation tracks
// the bytes the token stream actually produces.
func Decode(data []byte, maxElems int) ([]float32, error) {
	if maxElems <= 0 {
		maxElems = DefaultMaxElems
	}
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad count varint", ErrCorrupt)
	}
	if count > uint64(maxElems) {
		return nil, fmt.Errorf("%w: %d elements, cap %d", ErrTooLarge, count, maxElems)
	}
	data = data[n:]
	if count == 0 {
		if len(data) != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data))
		}
		return []float32{}, nil
	}
	var planes [4][]byte
	for p := 0; p < 4; p++ {
		var err error
		planes[p], data, err = decodePlane(data, int(count))
		if err != nil {
			return nil, fmt.Errorf("plane %d: %w", p, err)
		}
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data))
	}
	out := make([]float32, count)
	for i := range out {
		bits := uint32(planes[0][i]) | uint32(planes[1][i])<<8 |
			uint32(planes[2][i])<<16 | uint32(planes[3][i])<<24
		out[i] = math.Float32frombits(bits)
	}
	return out, nil
}

// decodePlane consumes tokens from data until exactly want bytes are
// produced, returning the plane and the remaining input.
func decodePlane(data []byte, want int) (plane, rest []byte, err error) {
	plane = make([]byte, 0, min(want, allocChunk))
	for len(plane) < want {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, nil, fmt.Errorf("%w: bad token varint", ErrCorrupt)
		}
		data = data[n:]
		runLen := int(v >> 1)
		if v>>1 > uint64(want-len(plane)) || runLen == 0 {
			return nil, nil, fmt.Errorf("%w: token overruns plane", ErrCorrupt)
		}
		if v&1 == 1 { // repeat run
			if len(data) < 1 {
				return nil, nil, fmt.Errorf("%w: truncated repeat", ErrCorrupt)
			}
			plane = growPlane(plane, runLen)
			b := data[0]
			data = data[1:]
			for i := len(plane) - runLen; i < len(plane); i++ {
				plane[i] = b
			}
		} else { // literal run
			if len(data) < runLen {
				return nil, nil, fmt.Errorf("%w: truncated literal", ErrCorrupt)
			}
			plane = append(plane, data[:runLen]...)
			data = data[runLen:]
		}
	}
	return plane, data, nil
}

// growPlane extends plane by n zero bytes, growing capacity at most
// allocChunk beyond the current length so claimed-but-unbacked sizes
// stay cheap.
func growPlane(plane []byte, n int) []byte {
	for n > 0 {
		k := min(n, allocChunk)
		plane = append(plane, make([]byte, k)...)
		n -= k
	}
	return plane
}

// XORInto writes the element-wise XOR of a and b's bit patterns into
// dst (all three must share a length). XOR of two float vectors is the
// delta transform: close values share sign, exponent and leading
// mantissa bits, so the result is zero-heavy and compresses well, and
// applying it twice restores the input exactly.
func XORInto(dst, a, b []float32) {
	_ = dst[len(a)-1]
	_ = b[len(a)-1]
	for i := range a {
		dst[i] = math.Float32frombits(math.Float32bits(a[i]) ^ math.Float32bits(b[i]))
	}
}

// EncodeDelta encodes cur as a compressed XOR delta against base. Both
// sides must hold the identical base for DecodeDelta to reproduce cur.
// The XOR is fused into the plane fill, so no delta vector is
// materialized.
func EncodeDelta(cur, base []float32) ([]byte, error) {
	return AppendEncodeDelta(nil, cur, base)
}

// AppendEncodeDelta appends the XOR-delta encoding of cur against base
// to dst and returns the extended slice. The broadcast cache uses the
// append form to encode into pooled, refcounted buffers.
func AppendEncodeDelta(dst []byte, cur, base []float32) ([]byte, error) {
	if len(cur) != len(base) {
		return nil, fmt.Errorf("codec: delta of %d elements against base of %d", len(cur), len(base))
	}
	return appendEncode(dst, cur, base), nil
}

// DecodeDelta reverses EncodeDelta against the same base. The blob's
// element count must equal len(base).
func DecodeDelta(data []byte, base []float32) ([]float32, error) {
	out, err := Decode(data, max(len(base), 1))
	if err != nil {
		return nil, err
	}
	if len(out) != len(base) {
		return nil, fmt.Errorf("%w: delta has %d elements, base has %d", ErrCorrupt, len(out), len(base))
	}
	XORInto(out, out, base)
	return out, nil
}

// Hash returns a content hash of the vector's bit patterns: FNV-1a 64
// folded over 64-bit blocks (two consecutive little-endian floats per
// block, a lone trailing float as its own block). Folding whole words
// keeps the sequential multiply chain to one step per float pair — the
// per-byte chain of canonical FNV costs more than the rest of the
// compressed client path put together at decoder sizes. The hash is a
// process-local cache key (both federation endpoints recompute it), not
// a wire-format constant. The zero value is reserved as "no payload" by
// the wire protocol, so a zero digest is mapped to 1.
func Hash(vals []float32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	n := len(vals) &^ 1
	for i := 0; i < n; i += 2 {
		h ^= uint64(math.Float32bits(vals[i])) | uint64(math.Float32bits(vals[i+1]))<<32
		h *= prime64
	}
	if len(vals)&1 == 1 {
		h ^= uint64(math.Float32bits(vals[len(vals)-1]))
		h *= prime64
	}
	if h == 0 {
		return 1
	}
	return h
}
