//go:build amd64 && !purego

#include "textflag.h"

// func hasAVX2() bool
//
// CPUID.1:ECX bits 27 (OSXSAVE) and 28 (AVX), XGETBV confirmation that
// the OS context-switches XMM+YMM state (XCR0 bits 1 and 2), then
// CPUID.7.0:EBX bit 5 (AVX2). Mirrors the tensor kernels' gate.
TEXT ·hasAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	ANDL $0x18000000, CX
	CMPL CX, $0x18000000
	JNE  noavx2
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx2
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $0x20, BX
	JZ   noavx2
	MOVB $1, ret+0(FP)
	RET

noavx2:
	MOVB $0, ret+0(FP)
	RET

// Per-lane shuffle that groups byte k of each dword: a 16-byte lane of
// four little-endian float32s becomes [p0 p0 p0 p0  p1 p1 p1 p1
// p2 p2 p2 p2  p3 p3 p3 p3].
DATA shufplanes<>+0(SB)/8, $0x0d0905010c080400
DATA shufplanes<>+8(SB)/8, $0x0f0b07030e0a0602
DATA shufplanes<>+16(SB)/8, $0x0d0905010c080400
DATA shufplanes<>+24(SB)/8, $0x0f0b07030e0a0602
GLOBL shufplanes<>(SB), RODATA, $32

// Dword permutation [0 4 1 5 2 6 3 7] that restores source order after
// the unpack network interleaves the two 128-bit lanes.
DATA permplanes<>+0(SB)/4, $0
DATA permplanes<>+4(SB)/4, $4
DATA permplanes<>+8(SB)/4, $1
DATA permplanes<>+12(SB)/4, $5
DATA permplanes<>+16(SB)/4, $2
DATA permplanes<>+20(SB)/4, $6
DATA permplanes<>+24(SB)/4, $3
DATA permplanes<>+28(SB)/4, $7
GLOBL permplanes<>(SB), RODATA, $32

// func fillPlanes4(src, base *float32, n int, p0, p1, p2, p3 *byte)
//
// Transposes n float32s (n a multiple of 32; caller handles the tail)
// into four byte planes: plane k byte i = byte k of the little-endian
// bit pattern of src[i], XORed against base[i] first when base is
// non-nil. 32 floats per pass: an in-lane VPSHUFB groups plane bytes,
// a dword/qword unpack network gathers each plane into one register,
// and a VPERMD restores source order before the four 32-byte stores.
//
// Register use:
//	SI src   DX base (0 = plain)   CX 32-float block count
//	R8-R11 p0-p3 cursors   Y0-Y3 data   Y8-Y11 unpack temps
//	Y6 perm indices   Y7 shuffle mask
TEXT ·fillPlanes4(SB), NOSPLIT, $0-56
	MOVQ src+0(FP), SI
	MOVQ base+8(FP), DX
	MOVQ n+16(FP), CX
	MOVQ p0+24(FP), R8
	MOVQ p1+32(FP), R9
	MOVQ p2+40(FP), R10
	MOVQ p3+48(FP), R11
	VMOVDQU shufplanes<>(SB), Y7
	VMOVDQU permplanes<>(SB), Y6
	SHRQ $5, CX
	JZ   done

block:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VMOVDQU 64(SI), Y2
	VMOVDQU 96(SI), Y3
	TESTQ   DX, DX
	JZ      transpose
	VPXOR   (DX), Y0, Y0
	VPXOR   32(DX), Y1, Y1
	VPXOR   64(DX), Y2, Y2
	VPXOR   96(DX), Y3, Y3
	ADDQ    $128, DX

transpose:
	VPSHUFB Y7, Y0, Y0
	VPSHUFB Y7, Y1, Y1
	VPSHUFB Y7, Y2, Y2
	VPSHUFB Y7, Y3, Y3
	VPUNPCKLDQ  Y1, Y0, Y8
	VPUNPCKHDQ  Y1, Y0, Y9
	VPUNPCKLDQ  Y3, Y2, Y10
	VPUNPCKHDQ  Y3, Y2, Y11
	VPUNPCKLQDQ Y10, Y8, Y0
	VPUNPCKHQDQ Y10, Y8, Y1
	VPUNPCKLQDQ Y11, Y9, Y2
	VPUNPCKHQDQ Y11, Y9, Y3
	VPERMD  Y0, Y6, Y0
	VPERMD  Y1, Y6, Y1
	VPERMD  Y2, Y6, Y2
	VPERMD  Y3, Y6, Y3
	VMOVDQU Y0, (R8)
	VMOVDQU Y1, (R9)
	VMOVDQU Y2, (R10)
	VMOVDQU Y3, (R11)
	ADDQ $128, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	DECQ CX
	JNZ  block

done:
	VZEROUPPER
	RET

// func nextRun4AVX2(p *byte, n, i int) int
//
// Scans p[i:n] for the first index starting a run of four equal bytes.
// Per pass: compare 32 bytes against themselves shifted by one; bit j
// of the mask says p[k+j] == p[k+j+1], so m & m>>1 & m>>2 marks run-of-
// four starts (valid for j <= 29, hence the 30-position advance).
// Returns the hit index, or — once fewer than 33 bytes remain — the
// resume point for the caller's scalar scanner; a hit in the final
// window is simply rediscovered by that scanner.
TEXT ·nextRun4AVX2(SB), NOSPLIT, $0-32
	MOVQ p+0(FP), SI
	MOVQ n+8(FP), CX
	MOVQ i+16(FP), AX
	SUBQ $33, CX

scan:
	CMPQ AX, CX
	JGT  out
	VMOVDQU  (SI)(AX*1), Y0
	VMOVDQU  1(SI)(AX*1), Y1
	VPCMPEQB Y1, Y0, Y2
	VPMOVMSKB Y2, BX
	MOVL BX, DX
	SHRL $1, DX
	ANDL DX, BX
	SHRL $1, DX
	ANDL DX, BX
	ANDL $0x3FFFFFFF, BX
	JNZ  hit
	ADDQ $30, AX
	JMP  scan

hit:
	BSFL BX, BX
	ADDQ BX, AX

out:
	VZEROUPPER
	MOVQ AX, ret+24(FP)
	RET
