package codec

import (
	"testing"

	"fedguard/internal/rng"
)

// benchDeltaVectors models the steady-state broadcast: consecutive
// global models whose XOR is zero-heavy.
func benchDeltaVectors(n int) (cur, base []float32) {
	r := rng.New(42)
	base = make([]float32, n)
	cur = make([]float32, n)
	r.FillNormal(base, 0, 0.1)
	copy(cur, base)
	step := make([]float32, n)
	r.FillNormal(step, 0, 0.001)
	for i := range cur {
		cur[i] += step[i]
	}
	return
}

func BenchmarkCodecEncode(b *testing.B) {
	for _, n := range []int{8_192, 65_536} {
		vals := make([]float32, n)
		rng.New(7).FillNormal(vals, 0, 0.1)
		b.Run(sizeName(n), func(b *testing.B) {
			b.SetBytes(int64(4 * n))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Encode(vals)
			}
		})
	}
}

func BenchmarkCodecEncodeDelta(b *testing.B) {
	for _, n := range []int{8_192, 65_536} {
		cur, base := benchDeltaVectors(n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.SetBytes(int64(4 * n))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := EncodeDelta(cur, base); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCodecHash(b *testing.B) {
	vals := make([]float32, 65_536)
	rng.New(7).FillNormal(vals, 0, 0.1)
	b.SetBytes(int64(4 * len(vals)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Hash(vals)
	}
}

func sizeName(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return itoa(n/1024) + "k"
	}
	return itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
