package codec

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"fedguard/internal/rng"
)

// fuzzMaxElems keeps each fuzz iteration's worst-case allocation small:
// the decoder may legitimately expand a few repeat-run bytes into the
// full declared count, so the cap is the allocation bound.
const fuzzMaxElems = 1 << 16

// FuzzCodecRoundTrip drives both directions of the codec: well-formed
// blobs (built by re-encoding whatever decodes) must round-trip
// bit-exactly, and arbitrary garbage must produce an error — never a
// panic, and never an allocation beyond the capped element count.
func FuzzCodecRoundTrip(f *testing.F) {
	// Seed corpus: encodings of the interesting shapes…
	r := rng.New(11)
	random := make([]float32, 512)
	r.FillNormal(random, 0, 1)
	near := make([]float32, 512)
	for i := range near {
		near[i] = random[i] * 1.0001
	}
	delta := make([]float32, len(random))
	XORInto(delta, random, near)
	for _, vals := range [][]float32{
		nil,
		{0},
		{float32(math.NaN()), float32(math.Inf(-1)), math.Float32frombits(1)},
		make([]float32, 300),
		random,
		delta,
	} {
		f.Add(Encode(vals))
	}
	// …plus hostile shapes: truncations, count lies, run overruns.
	good := Encode(random)
	f.Add(good[:len(good)/2])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Add([]byte{100, 3, 0, 0})
	f.Add(append(binary.AppendUvarint(nil, fuzzMaxElems), binary.AppendUvarint(nil, fuzzMaxElems<<1|1)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := Decode(data, fuzzMaxElems)
		if err != nil {
			return
		}
		// Anything that decoded must re-encode to a canonical blob that
		// decodes back to the identical bit patterns.
		blob := Encode(vals)
		again, err := Decode(blob, fuzzMaxElems)
		if err != nil {
			t.Fatalf("re-encoded blob does not decode: %v", err)
		}
		if len(again) != len(vals) {
			t.Fatalf("round trip changed length: %d -> %d", len(vals), len(again))
		}
		for i := range vals {
			if math.Float32bits(vals[i]) != math.Float32bits(again[i]) {
				t.Fatalf("round trip drifted at %d: %08x -> %08x",
					i, math.Float32bits(vals[i]), math.Float32bits(again[i]))
			}
		}
		// The canonical encoding is a fixed point: encoding the decoded
		// values again must reproduce the same bytes.
		if !bytes.Equal(blob, Encode(again)) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}
