// Package loss implements the objective functions used in the FedGuard
// reproduction: fused softmax cross-entropy for the classifier, binary
// cross-entropy and the Gaussian KL divergence for the CVAE's ELBO
// (Eqn. 5–6 of the paper), and MSE for the Spectral defense's
// autoencoder reconstruction errors.
//
// Every function returns the scalar loss averaged over the batch together
// with (or by filling) the gradient w.r.t. its input, so callers drive
// backpropagation explicitly.
package loss

import (
	"fmt"
	"math"

	"fedguard/internal/nn"
	"fedguard/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy of logits (B, C)
// against integer labels, returning the loss and the gradient w.r.t. the
// logits (already including the softmax Jacobian: grad = (p - onehot)/B).
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	b, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != b {
		panic(fmt.Sprintf("loss: %d labels for batch of %d", len(labels), b))
	}
	grad := tensor.New(b, c)
	probs := make([]float32, c)
	var total float64
	for i := 0; i < b; i++ {
		row := logits.Data[i*c : (i+1)*c]
		nn.SoftmaxRow(probs, row)
		y := labels[i]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("loss: label %d out of range [0,%d)", y, c))
		}
		p := float64(probs[y])
		if p < 1e-12 {
			p = 1e-12
		}
		total -= math.Log(p)
		g := grad.Data[i*c : (i+1)*c]
		for j := range g {
			g[j] = probs[j]
		}
		g[y] -= 1
	}
	invB := float32(1 / float64(b))
	for i := range grad.Data {
		grad.Data[i] *= invB
	}
	return total / float64(b), grad
}

// BinaryCrossEntropy computes the mean (over batch rows) of the summed
// element-wise BCE between predictions p in (0,1) and targets t in [0,1]:
//
//	-Σ [t·log p + (1-t)·log(1-p)]
//
// It returns the loss and the gradient w.r.t. p. This is the CVAE
// reconstruction term for pixel data.
func BinaryCrossEntropy(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("loss: BCE shape mismatch %v vs %v", pred.Shape(), target.Shape()))
	}
	b := pred.Dim(0)
	grad := tensor.New(pred.Shape()...)
	const eps = 1e-7
	var total float64
	invB := float32(1 / float64(b))
	for i, p := range pred.Data {
		t := target.Data[i]
		pc := float64(p)
		if pc < eps {
			pc = eps
		} else if pc > 1-eps {
			pc = 1 - eps
		}
		total -= float64(t)*math.Log(pc) + float64(1-t)*math.Log(1-pc)
		grad.Data[i] = float32((pc-float64(t))/(pc*(1-pc))) * invB
	}
	return total / float64(b), grad
}

// MSE computes the mean (over batch rows) of the summed squared error and
// the gradient w.r.t. pred: grad = 2(pred-target)/B.
func MSE(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("loss: MSE shape mismatch %v vs %v", pred.Shape(), target.Shape()))
	}
	b := pred.Dim(0)
	grad := tensor.New(pred.Shape()...)
	var total float64
	invB := float32(1 / float64(b))
	for i, p := range pred.Data {
		d := float64(p) - float64(target.Data[i])
		total += d * d
		grad.Data[i] = float32(2*d) * invB
	}
	return total / float64(b), grad
}

// GaussianKL computes the KL divergence between the diagonal Gaussian
// N(mu, exp(logvar)) and the standard normal prior, summed over latent
// dimensions and averaged over the batch:
//
//	KL = -1/2 Σ (1 + logvar - mu² - exp(logvar))
//
// It returns the loss and the gradients w.r.t. mu and logvar (already
// scaled by 1/B). This is the CVAE regularization term.
func GaussianKL(mu, logvar *tensor.Tensor) (float64, *tensor.Tensor, *tensor.Tensor) {
	if !mu.SameShape(logvar) {
		panic(fmt.Sprintf("loss: GaussianKL shape mismatch %v vs %v", mu.Shape(), logvar.Shape()))
	}
	b := mu.Dim(0)
	dMu := tensor.New(mu.Shape()...)
	dLogvar := tensor.New(logvar.Shape()...)
	var total float64
	invB := float32(1 / float64(b))
	for i := range mu.Data {
		m := float64(mu.Data[i])
		lv := float64(logvar.Data[i])
		ev := math.Exp(lv)
		total += -0.5 * (1 + lv - m*m - ev)
		dMu.Data[i] = float32(m) * invB
		dLogvar.Data[i] = float32(-0.5*(1-ev)) * invB
	}
	return total / float64(b), dMu, dLogvar
}

// Accuracy returns the fraction of rows of logits (B, C) whose argmax
// equals the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	return float64(CountCorrect(logits, labels)) / float64(logits.Dim(0))
}

// CountCorrect returns how many rows of logits argmax to their label.
// Exposing the integer count lets callers score a set in blocks and sum:
// the total is exactly the count a single full-batch Accuracy call would
// produce, so block-wise evaluation stays bit-identical.
func CountCorrect(logits *tensor.Tensor, labels []int) int {
	b, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != b {
		panic(fmt.Sprintf("loss: %d labels for batch of %d", len(labels), b))
	}
	correct := 0
	for i := 0; i < b; i++ {
		row := logits.Data[i*c : (i+1)*c]
		best := 0
		for j := 1; j < c; j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		if best == labels[i] {
			correct++
		}
	}
	return correct
}
