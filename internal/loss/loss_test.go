package loss

import (
	"math"
	"testing"

	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over 4 classes -> loss = ln 4.
	logits := tensor.New(2, 4)
	l, grad := SoftmaxCrossEntropy(logits, []int{0, 3})
	if math.Abs(l-math.Log(4)) > 1e-6 {
		t.Fatalf("loss = %v, want ln4 = %v", l, math.Log(4))
	}
	// grad = (p - onehot)/B: p = 0.25 everywhere.
	if math.Abs(float64(grad.At(0, 0))-(0.25-1)/2) > 1e-6 {
		t.Fatalf("grad[0][0] = %v", grad.At(0, 0))
	}
	if math.Abs(float64(grad.At(0, 1))-0.25/2) > 1e-6 {
		t.Fatalf("grad[0][1] = %v", grad.At(0, 1))
	}
}

func TestSoftmaxCrossEntropyGradNumeric(t *testing.T) {
	r := rng.New(1)
	logits := tensor.New(3, 5)
	r.FillNormal(logits.Data, 0, 1)
	labels := []int{1, 4, 0}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	const eps = 1e-2
	for i := 0; i < logits.Len(); i++ {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig - eps
		lm, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(grad.Data[i])) > 1e-3 {
			t.Fatalf("CE grad[%d]: analytic %v, numeric %v", i, grad.Data[i], num)
		}
	}
}

func TestSoftmaxCrossEntropyDecreasesWithCorrectLogit(t *testing.T) {
	logits := tensor.New(1, 3)
	l0, _ := SoftmaxCrossEntropy(logits, []int{2})
	logits.Set(5, 0, 2)
	l1, _ := SoftmaxCrossEntropy(logits, []int{2})
	if l1 >= l0 {
		t.Fatalf("raising the true-class logit did not reduce loss: %v -> %v", l0, l1)
	}
}

func TestBCEKnown(t *testing.T) {
	pred := tensor.FromSlice([]float32{0.5, 0.5}, 1, 2)
	target := tensor.FromSlice([]float32{1, 0}, 1, 2)
	l, _ := BinaryCrossEntropy(pred, target)
	if math.Abs(l-2*math.Log(2)) > 1e-5 {
		t.Fatalf("BCE = %v, want 2 ln2 = %v", l, 2*math.Log(2))
	}
}

func TestBCEGradNumeric(t *testing.T) {
	r := rng.New(2)
	pred := tensor.New(2, 6)
	target := tensor.New(2, 6)
	for i := range pred.Data {
		pred.Data[i] = 0.2 + 0.6*r.Float32()
		target.Data[i] = r.Float32()
	}
	_, grad := BinaryCrossEntropy(pred, target)
	const eps = 1e-3
	for i := 0; i < pred.Len(); i++ {
		orig := pred.Data[i]
		pred.Data[i] = orig + eps
		lp, _ := BinaryCrossEntropy(pred, target)
		pred.Data[i] = orig - eps
		lm, _ := BinaryCrossEntropy(pred, target)
		pred.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(grad.Data[i])) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("BCE grad[%d]: analytic %v, numeric %v", i, grad.Data[i], num)
		}
	}
}

func TestBCEClampsExtremes(t *testing.T) {
	pred := tensor.FromSlice([]float32{0, 1}, 1, 2)
	target := tensor.FromSlice([]float32{1, 0}, 1, 2)
	l, grad := BinaryCrossEntropy(pred, target)
	if math.IsInf(l, 0) || math.IsNaN(l) {
		t.Fatalf("BCE at extremes = %v", l)
	}
	for _, g := range grad.Data {
		if math.IsInf(float64(g), 0) || math.IsNaN(float64(g)) {
			t.Fatalf("BCE grad at extremes = %v", grad.Data)
		}
	}
}

func TestMSEKnown(t *testing.T) {
	pred := tensor.FromSlice([]float32{1, 2}, 1, 2)
	target := tensor.FromSlice([]float32{0, 0}, 1, 2)
	l, grad := MSE(pred, target)
	if math.Abs(l-5) > 1e-6 {
		t.Fatalf("MSE = %v, want 5", l)
	}
	if grad.Data[0] != 2 || grad.Data[1] != 4 {
		t.Fatalf("MSE grad = %v", grad.Data)
	}
}

func TestGaussianKLZeroAtPrior(t *testing.T) {
	mu := tensor.New(3, 4)
	logvar := tensor.New(3, 4) // logvar 0 -> var 1
	l, dMu, dLogvar := GaussianKL(mu, logvar)
	if l != 0 {
		t.Fatalf("KL(N(0,1)||N(0,1)) = %v, want 0", l)
	}
	for i := range dMu.Data {
		if dMu.Data[i] != 0 || dLogvar.Data[i] != 0 {
			t.Fatal("KL gradient at the prior must vanish")
		}
	}
}

func TestGaussianKLPositive(t *testing.T) {
	r := rng.New(3)
	mu := tensor.New(5, 8)
	logvar := tensor.New(5, 8)
	r.FillNormal(mu.Data, 0, 2)
	r.FillNormal(logvar.Data, 0, 1)
	l, _, _ := GaussianKL(mu, logvar)
	if l <= 0 {
		t.Fatalf("KL of a non-prior Gaussian = %v, want > 0", l)
	}
}

func TestGaussianKLGradNumeric(t *testing.T) {
	r := rng.New(4)
	mu := tensor.New(2, 5)
	logvar := tensor.New(2, 5)
	r.FillNormal(mu.Data, 0, 1)
	r.FillNormal(logvar.Data, 0, 0.5)
	_, dMu, dLogvar := GaussianKL(mu, logvar)
	const eps = 1e-3
	for i := 0; i < mu.Len(); i++ {
		orig := mu.Data[i]
		mu.Data[i] = orig + eps
		lp, _, _ := GaussianKL(mu, logvar)
		mu.Data[i] = orig - eps
		lm, _, _ := GaussianKL(mu, logvar)
		mu.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(dMu.Data[i])) > 1e-3*(1+math.Abs(num)) {
			t.Fatalf("KL dMu[%d]: analytic %v, numeric %v", i, dMu.Data[i], num)
		}

		orig = logvar.Data[i]
		logvar.Data[i] = orig + eps
		lp, _, _ = GaussianKL(mu, logvar)
		logvar.Data[i] = orig - eps
		lm, _, _ = GaussianKL(mu, logvar)
		logvar.Data[i] = orig
		num = (lp - lm) / (2 * eps)
		if math.Abs(num-float64(dLogvar.Data[i])) > 1e-3*(1+math.Abs(num)) {
			t.Fatalf("KL dLogvar[%d]: analytic %v, numeric %v", i, dLogvar.Data[i], num)
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		1, 2, 0,
		5, 1, 1,
		0, 0, 3,
	}, 3, 3)
	acc := Accuracy(logits, []int{1, 0, 2})
	if acc != 1 {
		t.Fatalf("Accuracy = %v, want 1", acc)
	}
	acc = Accuracy(logits, []int{0, 0, 2})
	if math.Abs(acc-2.0/3) > 1e-9 {
		t.Fatalf("Accuracy = %v, want 2/3", acc)
	}
}

func TestAccuracyPanicsOnLabelMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Accuracy with wrong label count did not panic")
		}
	}()
	Accuracy(tensor.New(2, 3), []int{0})
}
