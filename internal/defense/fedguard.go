// Package defense implements the paper's defensive strategies: FedGuard
// (selective parameter aggregation driven by CVAE-synthesized validation
// data, Algorithm 1) and the Spectral anomaly-detection baseline (Li et
// al., reference [19]).
package defense

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"fedguard/internal/aggregate"
	"fedguard/internal/classifier"
	"fedguard/internal/cvae"
	"fedguard/internal/fl"
	"fedguard/internal/nn"
	"fedguard/internal/tensor"
)

// FedGuard is the paper's contribution (Alg. 1 lines 1–7). Each round it
//
//  1. samples t latent vectors z ~ N(0,1) and t labels y ~ Cat(L, α),
//  2. synthesizes a validation set by spreading the (z, y) pairs across
//     the active clients' uploaded CVAE decoders,
//  3. scores every client's classifier update by its accuracy on the
//     synthetic set, and
//  4. aggregates — with a pluggable inner operator, FedAvg by default —
//     only the updates scoring at or above the round's mean accuracy.
type FedGuard struct {
	// Arch rebuilds the classifier for server-side auditing; it must be
	// the same architecture the clients train.
	Arch classifier.Arch
	// CVAECfg describes the decoder payloads the clients upload.
	CVAECfg cvae.Config
	// Samples is t, the number of synthetic validation samples per round.
	// The paper uses t = 2m. If zero, 2·len(updates) is used.
	Samples int
	// MaxDecoders optionally caps how many of the active clients'
	// decoders participate in data synthesis (paper §VI-A "tuneable
	// system": fewer decoders, less server compute). 0 means all.
	MaxDecoders int
	// ClassProbs is α, the assumed per-class probability for conditioning
	// label sampling. nil means uniform (the paper's class-balanced
	// setting).
	ClassProbs []float64
	// Inner is the aggregation operator applied to the surviving updates;
	// nil means FedAvg (aggregate.WeightedMean). Paper §VI-C notes the
	// operator is swappable.
	Inner aggregate.Inner
	// UseDecoderClasses makes synthesis respect each update's
	// DecoderClasses: a (z, y) pair is routed to a decoder whose training
	// data contained class y whenever one exists. This is the paper's
	// §VI-B mitigation for highly heterogeneous clients whose CVAEs have
	// never seen some classes.
	UseDecoderClasses bool
	// ImageH and ImageW shape the synthetic images for the classifier.
	ImageH, ImageW int
	// AuditWorkers bounds the goroutines used to score client updates and
	// to run per-decoder synthesis. 0 means GOMAXPROCS; 1 forces the
	// serial path. Any setting produces bit-identical results: accuracies
	// land in an index-ordered slice and are reduced serially, every RNG
	// draw happens before the parallel sections, and the workers write
	// disjoint regions — parallelism changes only wall-clock time.
	AuditWorkers int

	auditModels []*nn.Sequential // lazily built, one per worker, reused across rounds

	// Per-client detection bookkeeping, accumulated across rounds.
	excludedCount map[int]int
	seenCount     map[int]int
}

// NewFedGuard returns a FedGuard strategy with the paper's defaults for
// 28×28 SynthDigits/MNIST-shaped data.
func NewFedGuard(arch classifier.Arch, cfg cvae.Config) *FedGuard {
	return &FedGuard{Arch: arch, CVAECfg: cfg, ImageH: 28, ImageW: 28}
}

// Name implements fl.Strategy.
func (g *FedGuard) Name() string { return "FedGuard" }

// NeedsDecoders implements fl.Strategy: FedGuard is the only strategy
// that requires decoder payloads.
func (g *FedGuard) NeedsDecoders() bool { return true }

// Aggregate implements fl.Strategy (Alg. 1 lines 1–7).
func (g *FedGuard) Aggregate(ctx *fl.RoundContext) ([]float32, error) {
	updates := ctx.Updates
	if len(updates) == 0 {
		return nil, aggregate.ErrNoUpdates
	}
	x, labels, err := g.Synthesize(ctx)
	if err != nil {
		return nil, err
	}

	// Score every update on the synthetic validation set (line 5). The
	// audits are independent, so they fan out across AuditWorkers models;
	// accs is index-ordered and the mean is reduced serially below, so the
	// result does not depend on the worker count.
	stopAudit := ctx.StartPhase("server.audit")
	accs := make([]float64, len(updates))
	if err := g.auditAll(updates, x, labels, accs); err != nil {
		return nil, err
	}
	stopAudit()
	return g.finalizeScores(ctx, accs)
}

// finalizeScores applies Alg. 1 lines 6–7 to the per-update audit
// accuracies: the mean threshold, filtering with detection bookkeeping,
// and the inner aggregation. Both the batch path (Aggregate) and the
// streaming path (AuditStream.Finalize) funnel through here, which is
// part of what keeps them byte-identical.
func (g *FedGuard) finalizeScores(ctx *fl.RoundContext, accs []float64) ([]float32, error) {
	updates := ctx.Updates
	var mean float64
	for _, acc := range accs {
		mean += acc
	}
	mean /= float64(len(updates)) // line 6

	// filter(ψ, ACC_j >= mean) (line 7).
	if g.excludedCount == nil {
		g.excludedCount = map[int]int{}
		g.seenCount = map[int]int{}
	}
	var kept []fl.Update
	for i, u := range updates {
		g.seenCount[u.ClientID]++
		if accs[i] >= mean {
			kept = append(kept, u)
		} else {
			g.excludedCount[u.ClientID]++
			ctx.ExcludeClient(u.ClientID, accs[i], mean)
		}
	}
	ctx.Report[fl.ReportFedGuardMeanAcc] = mean
	ctx.Report[fl.ReportFedGuardKept] = float64(len(kept))
	ctx.Report[fl.ReportFedGuardExcluded] = float64(len(updates) - len(kept))

	inner := g.Inner
	if inner == nil {
		inner = aggregate.WeightedMean
	}
	return inner(kept)
}

// DetectionStats returns, per client ID, how many times the client's
// update was excluded and how many times it participated, accumulated
// over every round this strategy instance aggregated. The ratio is a
// malicious-peer score — the paper's conclusion suggests exactly this use
// (flagging defective or adversarial participants).
func (g *FedGuard) DetectionStats() (excluded, participated map[int]int) {
	excluded = make(map[int]int, len(g.excludedCount))
	participated = make(map[int]int, len(g.seenCount))
	for id, n := range g.excludedCount {
		excluded[id] = n
	}
	for id, n := range g.seenCount {
		participated[id] = n
	}
	return excluded, participated
}

// Synthesize builds the round's synthetic validation set (Alg. 1 lines
// 2–4): a (t, 1, H, W) image tensor and the conditioning labels that act
// as ground truth. Exposed for tests and for the data-inspection
// examples.
func (g *FedGuard) Synthesize(ctx *fl.RoundContext) (*tensor.Tensor, []int, error) {
	defer ctx.StartPhase("server.synthesize")()
	decoders, decoderClasses, err := g.activeDecoders(ctx)
	if err != nil {
		return nil, nil, err
	}
	t := g.Samples
	if t <= 0 {
		t = 2 * len(ctx.Updates)
	}

	// z ~ N(0,1), y ~ Cat(L, α) (lines 2–3).
	z := tensor.New(t, g.CVAECfg.Latent)
	ctx.RNG.FillNormal(z.Data, 0, 1)
	labels := make([]int, t)
	for i := range labels {
		if g.ClassProbs != nil {
			labels[i] = ctx.RNG.Categorical(g.ClassProbs)
		} else {
			labels[i] = ctx.RNG.CategoricalUniform(g.CVAECfg.Classes)
		}
	}

	// Spread the t pairs across the decoders (line 4): with t = 2m each
	// active decoder contributes 2 samples, matching the paper's
	// description of D_syn as a pool over all active decoders. Plain mode
	// assigns round-robin; UseDecoderClasses routes each pair to a decoder
	// trained on its conditioning class (§VI-B).
	imgSize := g.CVAECfg.Input
	x := tensor.New(t, 1, g.ImageH, g.ImageW)
	if imgSize != g.ImageH*g.ImageW {
		return nil, nil, fmt.Errorf("defense: CVAE input %d does not match %dx%d images",
			imgSize, g.ImageH, g.ImageW)
	}
	nd := len(decoders)
	assign := g.assignSamples(labels, nd, decoderClasses)
	perDec := make([][]int, nd)
	for i, a := range assign {
		perDec[a] = append(perDec[a], i)
	}

	// Per-decoder generation is independent: every RNG draw already
	// happened above, each decoder instance owns its Generate scratch, and
	// assign partitions the sample indices so the goroutines write
	// disjoint regions of x. The result is therefore bit-identical at any
	// worker count.
	synthOne := func(d int) {
		idxs := perDec[d]
		if len(idxs) == 0 {
			return
		}
		zd := tensor.New(len(idxs), g.CVAECfg.Latent)
		ld := make([]int, len(idxs))
		for k, i := range idxs {
			copy(zd.Data[k*g.CVAECfg.Latent:(k+1)*g.CVAECfg.Latent],
				z.Data[i*g.CVAECfg.Latent:(i+1)*g.CVAECfg.Latent])
			ld[k] = labels[i]
		}
		imgs := decoders[d].Generate(zd, ld)
		for k, i := range idxs {
			copy(x.Data[i*imgSize:(i+1)*imgSize], imgs.Data[k*imgSize:(k+1)*imgSize])
		}
	}
	if w := g.workers(nd); w == 1 {
		for d := 0; d < nd; d++ {
			synthOne(d)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for wk := 0; wk < w; wk++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					d := int(next.Add(1)) - 1
					if d >= nd {
						return
					}
					synthOne(d)
				}
			}()
		}
		wg.Wait()
	}
	return x, labels, nil
}

// assignSamples maps every sample index to a decoder index. Plain mode
// is round-robin; with UseDecoderClasses each sample goes to a decoder
// claiming its label (cycling among claimants), falling back to the
// global cycle when no decoder claims the class.
func (g *FedGuard) assignSamples(labels []int, nd int, decoderClasses [][]int) []int {
	assign := make([]int, len(labels))
	if !g.UseDecoderClasses {
		for i := range assign {
			assign[i] = i % nd
		}
		return assign
	}
	byClass := make([][]int, g.CVAECfg.Classes)
	for d, classes := range decoderClasses {
		if classes == nil {
			// Unknown coverage: treat as trained on everything.
			for c := range byClass {
				byClass[c] = append(byClass[c], d)
			}
			continue
		}
		for _, c := range classes {
			if c >= 0 && c < len(byClass) {
				byClass[c] = append(byClass[c], d)
			}
		}
	}
	counters := make([]int, g.CVAECfg.Classes)
	for i, y := range labels {
		claimants := byClass[y]
		if len(claimants) == 0 {
			assign[i] = i % nd
			continue
		}
		assign[i] = claimants[counters[y]%len(claimants)]
		counters[y]++
	}
	return assign
}

// activeDecoders reconstructs the decoders of the round's updates,
// optionally down-sampling to MaxDecoders of them. It returns the
// decoders alongside each one's claimed class coverage.
func (g *FedGuard) activeDecoders(ctx *fl.RoundContext) ([]*cvae.Decoder, [][]int, error) {
	updates := ctx.Updates
	order := make([]int, len(updates))
	for i := range order {
		order[i] = i
	}
	if g.MaxDecoders > 0 && g.MaxDecoders < len(order) {
		order = ctx.RNG.Sample(len(updates), g.MaxDecoders)
	}
	decoders := make([]*cvae.Decoder, 0, len(order))
	classes := make([][]int, 0, len(order))
	for _, i := range order {
		u := updates[i]
		if u.Decoder == nil {
			return nil, nil, fmt.Errorf("defense: client %d sent no decoder payload", u.ClientID)
		}
		dec, err := cvae.NewDecoder(g.CVAECfg, u.Decoder)
		if err != nil {
			return nil, nil, fmt.Errorf("defense: client %d: %w", u.ClientID, err)
		}
		decoders = append(decoders, dec)
		classes = append(classes, u.DecoderClasses)
	}
	if len(decoders) == 0 {
		return nil, nil, aggregate.ErrNoUpdates
	}
	return decoders, classes, nil
}

// workers resolves AuditWorkers against the machine, capped by the
// amount of independent work available.
func (g *FedGuard) workers(jobs int) int {
	w := g.AuditWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// auditAll scores every update on the synthetic set, writing accs[i] for
// update i. Workers claim indices from an atomic counter and each owns a
// private audit model (network scratch is per-model, so concurrent
// forward passes never share state); since every accuracy lands in its
// own slot, the slice is identical whatever the worker count.
func (g *FedGuard) auditAll(updates []fl.Update, x *tensor.Tensor, labels []int, accs []float64) error {
	w := g.workers(len(updates))
	for len(g.auditModels) < w {
		g.auditModels = append(g.auditModels, g.Arch(newInitRNG()))
	}
	auditOne := func(model *nn.Sequential, i int) error {
		if err := model.LoadParams(updates[i].Weights); err != nil {
			return fmt.Errorf("defense: audit client %d: %w", updates[i].ClientID, err)
		}
		accs[i] = classifier.EvaluateTensor(model, x, labels)
		return nil
	}
	if w == 1 {
		for i := range updates {
			if err := auditOne(g.auditModels[0], i); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	errs := make([]error, w)
	var wg sync.WaitGroup
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(updates) {
					return
				}
				if err := auditOne(g.auditModels[wk], i); err != nil {
					errs[wk] = err
					return
				}
			}
		}(wk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
