package defense

import (
	"fmt"

	"fedguard/internal/aggregate"
	"fedguard/internal/classifier"
	"fedguard/internal/cvae"
	"fedguard/internal/dataset"
	"fedguard/internal/fl"
	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

// newInitRNG returns the fixed stream used for throwaway model
// skeletons whose weights are immediately overwritten by LoadParams.
func newInitRNG() *rng.RNG { return rng.New(0xa0d17) }

// Spectral is the anomaly-detection baseline of Li et al. ("Learning to
// Detect Malicious Clients for Robust Federated Learning", reference [19]
// of the paper). Unlike FedGuard it requires an auxiliary dataset at the
// server: before federated training starts, the server simulates benign
// federated rounds on partitions of that dataset, projects the collected
// benign updates to low-dimensional surrogate vectors through a fixed
// random projection, and fits a VAE on them. During the real federation,
// updates whose surrogate reconstruction error exceeds the round's mean
// error are discarded; the rest are FedAvg-aggregated.
type Spectral struct {
	// Arch is the classifier architecture (shared with the federation).
	Arch classifier.Arch
	// SurrogateDim is the random-projection dimensionality (default 64).
	SurrogateDim int
	// VAEHidden and VAELatent size the detection VAE (defaults 64 / 8).
	VAEHidden, VAELatent int

	proj    *projection
	vae     *cvae.VAE
	trained bool
}

// NewSpectral returns a Spectral strategy with default detector sizes.
func NewSpectral(arch classifier.Arch) *Spectral {
	return &Spectral{Arch: arch, SurrogateDim: 64, VAEHidden: 64, VAELatent: 8}
}

// Name implements fl.Strategy.
func (s *Spectral) Name() string { return "Spectral" }

// NeedsDecoders implements fl.Strategy.
func (s *Spectral) NeedsDecoders() bool { return false }

// PretrainConfig controls the server-side preparation phase.
type PretrainConfig struct {
	// Clients is the number of pseudo-clients the auxiliary dataset is
	// split into (default 5).
	Clients int
	// Rounds of simulated benign FedAvg (default 5).
	Rounds int
	// Train is the local training configuration of the pseudo-clients;
	// it should match the real federation's client config.
	Train classifier.TrainConfig
	// VAEEpochs fits the detection VAE (default 100).
	VAEEpochs int
	// Seed fixes the preparation randomness.
	Seed uint64
}

// DefaultPretrainConfig mirrors the real clients' training setup.
func DefaultPretrainConfig(train classifier.TrainConfig) PretrainConfig {
	return PretrainConfig{Clients: 5, Rounds: 5, Train: train, VAEEpochs: 100, Seed: 0x5bec}
}

// Pretrain runs the auxiliary preparation: simulate benign federated
// rounds on aux, collect the updates, and fit the detection VAE on their
// surrogate projections. Must be called before the first Aggregate.
func (s *Spectral) Pretrain(aux *dataset.Dataset, cfg PretrainConfig) error {
	if cfg.Clients <= 0 {
		cfg.Clients = 5
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 5
	}
	if cfg.VAEEpochs <= 0 {
		cfg.VAEEpochs = 100
	}
	r := rng.New(cfg.Seed)
	parts := dataset.PartitionDirichlet(aux, cfg.Clients, 10, r)

	model := s.Arch(r.Split())
	dim := model.NumParams()
	s.proj = newProjection(dim, s.SurrogateDim, 0x5fec7a1)

	global := model.FlattenParams()
	var surrogates []float32
	count := 0
	for round := 0; round < cfg.Rounds; round++ {
		var updates []fl.Update
		for c := 0; c < cfg.Clients; c++ {
			if len(parts[c]) == 0 {
				continue
			}
			m := s.Arch(r.Split())
			if err := m.LoadParams(global); err != nil {
				return err
			}
			classifier.Train(m, aux, parts[c], cfg.Train, r.Split())
			w := m.FlattenParams()
			surrogates = append(surrogates, s.proj.apply(w)...)
			count++
			updates = append(updates, fl.Update{ClientID: c, Weights: w, NumSamples: len(parts[c])})
		}
		agg, err := aggregate.WeightedMean(updates)
		if err != nil {
			return fmt.Errorf("defense: spectral pretraining: %w", err)
		}
		global = agg
	}

	x := tensor.FromSlice(surrogates, count, s.SurrogateDim)
	s.vae = cvae.NewVAE(s.SurrogateDim, s.VAEHidden, s.VAELatent, r.Split())
	s.vae.Fit(x, cfg.VAEEpochs, 1e-3, 0.05, r.Split())
	s.trained = true
	return nil
}

// Aggregate implements fl.Strategy: discard updates whose surrogate
// reconstruction error exceeds the round mean, FedAvg the rest.
func (s *Spectral) Aggregate(ctx *fl.RoundContext) ([]float32, error) {
	if !s.trained {
		return nil, fmt.Errorf("defense: Spectral.Aggregate before Pretrain")
	}
	updates := ctx.Updates
	if len(updates) == 0 {
		return nil, aggregate.ErrNoUpdates
	}
	stopAudit := ctx.StartPhase("server.audit")
	x := tensor.New(len(updates), s.SurrogateDim)
	// Each update owns its surrogate row, so the projections parallelize
	// without affecting results.
	tensor.ParallelBlocks(len(updates), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s.proj.applyInto(x.Data[i*s.SurrogateDim:(i+1)*s.SurrogateDim], updates[i].Weights)
		}
	})
	errs := s.vae.ReconstructionError(x)
	stopAudit()
	var mean float64
	for _, e := range errs {
		mean += e
	}
	mean /= float64(len(errs))

	var kept []fl.Update
	for i, u := range updates {
		if errs[i] <= mean {
			kept = append(kept, u)
		}
	}
	if len(kept) == 0 {
		kept = updates // degenerate round: fall back to everything
	} else {
		for i, u := range updates {
			if errs[i] > mean {
				ctx.ExcludeClient(u.ClientID, errs[i], mean)
			}
		}
	}
	ctx.Report[fl.ReportSpectralMeanErr] = mean
	ctx.Report[fl.ReportSpectralKept] = float64(len(kept))
	ctx.Report[fl.ReportSpectralExcluded] = float64(len(updates) - len(kept))
	return aggregate.WeightedMean(kept)
}

// projection is a fixed sparse random projection (Achlioptas-style signs
// on a subsampled coordinate set) mapping a dim-parameter update to a
// SurrogateDim vector. Sparse sampling keeps per-update projection cost
// at O(SurrogateDim · k) instead of O(SurrogateDim · dim).
type projection struct {
	in, out int
	idx     [][]int     // per output row: sampled input coordinates
	sign    [][]float32 // per output row: ±1/sqrt(k)
}

const projSamplesPerRow = 256

func newProjection(in, out int, seed uint64) *projection {
	r := rng.New(seed)
	p := &projection{in: in, out: out}
	p.idx = make([][]int, out)
	p.sign = make([][]float32, out)
	k := projSamplesPerRow
	if k > in {
		k = in
	}
	norm := float32(1) / float32(k)
	for o := 0; o < out; o++ {
		p.idx[o] = make([]int, k)
		p.sign[o] = make([]float32, k)
		for j := 0; j < k; j++ {
			p.idx[o][j] = r.Intn(in)
			if r.Float64() < 0.5 {
				p.sign[o][j] = norm
			} else {
				p.sign[o][j] = -norm
			}
		}
	}
	return p
}

func (p *projection) apply(w []float32) []float32 {
	out := make([]float32, p.out)
	p.applyInto(out, w)
	return out
}

// applyInto writes the projection of w into dst without allocating.
func (p *projection) applyInto(dst []float32, w []float32) {
	if len(w) != p.in {
		panic(fmt.Sprintf("defense: projecting %d-dim update, expected %d", len(w), p.in))
	}
	if len(dst) != p.out {
		panic(fmt.Sprintf("defense: projection dst %d, expected %d", len(dst), p.out))
	}
	for o := range dst {
		var acc float32
		idx := p.idx[o]
		sign := p.sign[o]
		for j, i := range idx {
			acc += w[i] * sign[j]
		}
		dst[o] = acc
	}
}
