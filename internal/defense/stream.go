package defense

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fedguard/internal/classifier"
	"fedguard/internal/cvae"
	"fedguard/internal/fl"
	"fedguard/internal/nn"
	"fedguard/internal/tensor"
)

// The streaming audit runs FedGuard's per-round compute while uploads
// are still in flight. The whole round plan is fixed the moment the
// participant count m is known: every RNG draw (decoder subset, latents,
// labels) happens up front in Synthesize's exact order — on a clone of
// the round RNG, so the original stays pristine for a batch fallback —
// and the synthetic set is partitioned into per-decoder blocks by the
// same round-robin assignment the batch path uses. Work then unlocks
// incrementally: a client's arrival enables its decoder's synthesis job,
// and a scoring job (update j × block d) as soon as both j's weights and
// block d's images exist. Because block images are bit-identical to the
// batch path's rows and scoring sums integer argmax counts, the final
// accuracies — and therefore the filtered aggregate — are byte-identical
// to Aggregate at any worker count and any arrival order.

var errStreamAborted = errors.New("defense: audit stream aborted")

// streamJob is one unit of audit work: synthesis of one decoder's block
// (slot < 0) or scoring one arrived update on one synthesized block.
type streamJob struct {
	slot  int // update slot to score, or -1 for synthesis
	block int // decoder/block index
}

// AuditStream is FedGuard's fl.RoundStream: the in-flight state of one
// streaming round. Create it with FedGuard.BeginRound; a FedGuard
// instance runs at most one stream at a time (it borrows the shared
// audit models).
type AuditStream struct {
	g *FedGuard
	m int // expected updates
	t int // synthetic samples

	// Pre-drawn randomness and the derived static plan.
	z       *tensor.Tensor
	labels  []int
	slotDec map[int]int // slot -> block index (slots contributing decoders)
	perDec  [][]int     // block -> sample indices (round-robin)

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []streamJob
	inflight int
	closed   bool
	err      error

	arrived  []bool
	clientID []int
	weights  [][]float32
	decoders []*cvae.Decoder  // by block
	synthed  []bool           // block images ready
	blockX   []*tensor.Tensor // by block, (rows, 1, H, W)
	blockLB  [][]int          // by block, gathered labels
	correct  []int64          // by slot, summed argmax hits

	busyNanos atomic.Int64
	jobsDone  atomic.Int64

	wg sync.WaitGroup
}

var _ fl.StreamingStrategy = (*FedGuard)(nil)

// BeginRound implements fl.StreamingStrategy. It returns nil when the
// round cannot be streamed: class-routed synthesis (§VI-B) needs every
// update's DecoderClasses, which only exist after the barrier, and a
// mis-shaped CVAE config is left for the batch path to surface as the
// usual error.
func (g *FedGuard) BeginRound(ctx *fl.RoundContext, m int) fl.RoundStream {
	if m <= 0 || g.UseDecoderClasses || g.CVAECfg.Input != g.ImageH*g.ImageW {
		return nil
	}
	// Replicate Synthesize's draw order exactly on a clone: decoder
	// subset first, then latents, then labels. ctx.RNG itself must not
	// advance — Finalize may fall back to Aggregate, which redraws.
	r := ctx.RNG.Clone()
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	if g.MaxDecoders > 0 && g.MaxDecoders < m {
		order = r.Sample(m, g.MaxDecoders)
	}
	t := g.Samples
	if t <= 0 {
		t = 2 * m
	}
	z := tensor.New(t, g.CVAECfg.Latent)
	r.FillNormal(z.Data, 0, 1)
	labels := make([]int, t)
	for i := range labels {
		if g.ClassProbs != nil {
			labels[i] = r.Categorical(g.ClassProbs)
		} else {
			labels[i] = r.CategoricalUniform(g.CVAECfg.Classes)
		}
	}
	nd := len(order)
	perDec := make([][]int, nd)
	for i := 0; i < t; i++ {
		perDec[i%nd] = append(perDec[i%nd], i)
	}
	slotDec := make(map[int]int, nd)
	for d, slot := range order {
		slotDec[slot] = d
	}

	s := &AuditStream{
		g:        g,
		m:        m,
		t:        t,
		z:        z,
		labels:   labels,
		slotDec:  slotDec,
		perDec:   perDec,
		arrived:  make([]bool, m),
		clientID: make([]int, m),
		weights:  make([][]float32, m),
		decoders: make([]*cvae.Decoder, nd),
		synthed:  make([]bool, nd),
		blockX:   make([]*tensor.Tensor, nd),
		blockLB:  make([][]int, nd),
		correct:  make([]int64, m),
	}
	s.cond = sync.NewCond(&s.mu)
	// Empty blocks (t < nd) have nothing to synthesize or score; their
	// decoders are still validated on arrival so error behavior matches
	// the batch path.
	for d, idxs := range perDec {
		if len(idxs) == 0 {
			s.synthed[d] = true
		}
	}
	w := g.workers(m)
	for len(g.auditModels) < w {
		g.auditModels = append(g.auditModels, g.Arch(newInitRNG()))
	}
	for wk := 0; wk < w; wk++ {
		s.wg.Add(1)
		go s.worker(g.auditModels[wk])
	}
	return s
}

// Submit implements fl.RoundStream. Decoder reconstruction happens here,
// outside the lock, so receiver goroutines pay it off the critical
// section; any validation error is recorded and later routed through the
// batch fallback, which reproduces the identical error serially.
func (s *AuditStream) Submit(slot int, u fl.Update) {
	var dec *cvae.Decoder
	var decErr error
	if slot >= 0 && slot < s.m {
		if _, hasDec := s.slotDec[slot]; hasDec {
			if u.Decoder == nil {
				decErr = fmt.Errorf("defense: client %d sent no decoder payload", u.ClientID)
			} else if dec, decErr = cvae.NewDecoder(s.g.CVAECfg, u.Decoder); decErr != nil {
				decErr = fmt.Errorf("defense: client %d: %w", u.ClientID, decErr)
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return
	case slot < 0 || slot >= s.m:
		s.fail(fmt.Errorf("defense: stream slot %d outside [0,%d)", slot, s.m))
		return
	case s.arrived[slot]:
		s.fail(fmt.Errorf("defense: stream slot %d submitted twice", slot))
		return
	}
	s.arrived[slot] = true
	s.clientID[slot] = u.ClientID
	s.weights[slot] = u.Weights
	if decErr != nil {
		s.fail(decErr)
		return
	}
	if d, hasDec := s.slotDec[slot]; hasDec {
		s.decoders[d] = dec
		if len(s.perDec[d]) > 0 {
			s.enqueueLocked(streamJob{slot: -1, block: d})
		}
	}
	for d := range s.synthed {
		if s.synthed[d] && len(s.perDec[d]) > 0 {
			s.enqueueLocked(streamJob{slot: slot, block: d})
		}
	}
}

// fail records the stream's first error; the round then finishes via the
// batch fallback. Callers hold s.mu.
func (s *AuditStream) fail(err error) {
	if s.err == nil {
		s.err = err
	}
	s.cond.Broadcast()
}

func (s *AuditStream) enqueueLocked(j streamJob) {
	s.queue = append(s.queue, j)
	s.cond.Broadcast()
}

// worker drains jobs until the stream closes. Each worker owns one audit
// model and remembers which update is loaded in it, preferring queued
// scoring jobs for that update to skip redundant LoadParams calls.
func (s *AuditStream) worker(model *nn.Sequential) {
	defer s.wg.Done()
	loaded := -1
	s.mu.Lock()
	for {
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		if s.err != nil {
			// The round is already bound for the batch fallback; drop the
			// remaining work.
			s.queue = s.queue[:0]
			s.cond.Broadcast()
			continue
		}
		pick := 0
		if loaded >= 0 {
			for i, j := range s.queue {
				if j.slot == loaded {
					pick = i
					break
				}
			}
		}
		job := s.queue[pick]
		s.queue = append(s.queue[:pick], s.queue[pick+1:]...)
		s.inflight++
		s.mu.Unlock()

		start := time.Now()
		var count int
		var err error
		if job.slot < 0 {
			s.runSynth(job.block)
		} else {
			count, err = s.runScore(model, &loaded, job)
		}
		s.busyNanos.Add(time.Since(start).Nanoseconds())
		s.jobsDone.Add(1)

		s.mu.Lock()
		s.inflight--
		switch {
		case err != nil:
			s.fail(err)
		case job.slot >= 0:
			s.correct[job.slot] += int64(count)
		default:
			s.synthed[job.block] = true
			for slot, ok := range s.arrived {
				if ok {
					s.enqueueLocked(streamJob{slot: slot, block: job.block})
				}
			}
		}
		if s.inflight == 0 && len(s.queue) == 0 {
			s.cond.Broadcast() // wake a draining Finalize/Abort
		}
	}
}

// runSynth generates block d's synthetic images: the same gathered
// latents and labels the batch Synthesize hands this decoder, so the
// rows are bit-identical to the batch path's.
func (s *AuditStream) runSynth(d int) {
	idxs := s.perDec[d]
	lat := s.g.CVAECfg.Latent
	zd := tensor.New(len(idxs), lat)
	ld := make([]int, len(idxs))
	for k, i := range idxs {
		copy(zd.Data[k*lat:(k+1)*lat], s.z.Data[i*lat:(i+1)*lat])
		ld[k] = s.labels[i]
	}
	imgs := s.decoders[d].Generate(zd, ld)
	xd := tensor.New(len(idxs), 1, s.g.ImageH, s.g.ImageW)
	copy(xd.Data, imgs.Data)
	s.blockX[d] = xd
	s.blockLB[d] = ld
}

func (s *AuditStream) runScore(model *nn.Sequential, loaded *int, job streamJob) (int, error) {
	if *loaded != job.slot {
		if err := model.LoadParams(s.weights[job.slot]); err != nil {
			*loaded = -1
			return 0, fmt.Errorf("defense: audit client %d: %w", s.clientID[job.slot], err)
		}
		*loaded = job.slot
	}
	return classifier.CountCorrectTensor(model, s.blockX[job.block], s.blockLB[job.block]), nil
}

// drainAndStop waits for queued and in-flight work, then shuts the
// worker pool down.
func (s *AuditStream) drainAndStop() {
	s.mu.Lock()
	for s.err == nil && (s.inflight > 0 || len(s.queue) > 0) {
		s.cond.Wait()
	}
	s.closed = true
	s.queue = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Finalize implements fl.RoundStream. ctx must carry the round's
// assembled Updates in slot order; any divergence from what was streamed
// (drop-outs, re-ordered slots, duplicate submissions, job errors) routes
// the round through the batch Aggregate — ctx.RNG was never advanced, so
// that fallback is the exact serial computation.
func (s *AuditStream) Finalize(ctx *fl.RoundContext) ([]float32, error) {
	s.drainAndStop()
	ok := s.err == nil && len(ctx.Updates) == s.m
	if ok {
		for i, u := range ctx.Updates {
			if !s.arrived[i] || s.clientID[i] != u.ClientID {
				ok = false
				break
			}
		}
	}
	if !ok {
		return s.g.Aggregate(ctx)
	}
	accs := make([]float64, s.m)
	for i := range accs {
		// Same division EvaluateTensor performs: integer hits over the
		// full synthetic-set size.
		accs[i] = float64(s.correct[i]) / float64(s.t)
	}
	return s.g.finalizeScores(ctx, accs)
}

// Abort implements fl.RoundStream.
func (s *AuditStream) Abort() {
	s.mu.Lock()
	s.fail(errStreamAborted)
	s.closed = true
	s.queue = nil
	s.mu.Unlock()
	s.wg.Wait()
}

// Overlap implements fl.RoundStream: total busy time across workers and
// jobs completed so far. Sampled at barrier entry it measures how much
// audit compute hid inside the upload phase.
func (s *AuditStream) Overlap() (time.Duration, int) {
	return time.Duration(s.busyNanos.Load()), int(s.jobsDone.Load())
}
