package defense

import (
	"math"

	"fedguard/internal/fl"
	"fedguard/internal/rng"
)

// QualitySampler implements the paper's conclusion suggestion of
// "enabling a better sampling of quality candidates": it biases per-round
// client selection away from clients that FedGuard has repeatedly
// excluded. Each client's weight is
//
//	w_i = (1 − rate_i)^Sharpness + Floor
//
// with rate_i the client's accumulated exclusion rate. Floor keeps every
// client selectable (so a benign client that had one bad round can
// recover), and unseen clients carry weight 1 + Floor (optimistic
// initialization — everyone gets audited eventually).
type QualitySampler struct {
	// Guard supplies the accumulated DetectionStats.
	Guard *FedGuard
	// Sharpness steepens the penalty (default 2).
	Sharpness float64
	// Floor is the minimum selection weight (default 0.05).
	Floor float64
}

// NewQualitySampler wires a sampler to the FedGuard strategy whose
// exclusion statistics drive it.
func NewQualitySampler(guard *FedGuard) *QualitySampler {
	return &QualitySampler{Guard: guard, Sharpness: 2, Floor: 0.05}
}

// SampleClients implements fl.Sampler: weighted sampling without
// replacement via repeated categorical draws.
func (q *QualitySampler) SampleClients(round, n, m int, r *rng.RNG) []int {
	excluded, seen := q.Guard.DetectionStats()
	weights := make([]float64, n)
	for i := range weights {
		rate := 0.0
		if s := seen[i]; s > 0 {
			rate = float64(excluded[i]) / float64(s)
		}
		weights[i] = math.Pow(1-rate, q.Sharpness) + q.Floor
	}
	out := make([]int, 0, m)
	for len(out) < m {
		idx := r.Categorical(weights)
		out = append(out, idx)
		weights[idx] = 0 // without replacement
	}
	return out
}

// Compile-time check that QualitySampler satisfies fl.Sampler.
var _ fl.Sampler = (*QualitySampler)(nil)
