package defense

import (
	"sync"
	"testing"

	"fedguard/internal/aggregate"
	"fedguard/internal/classifier"
	"fedguard/internal/cvae"
	"fedguard/internal/dataset"
	"fedguard/internal/fl"
	"fedguard/internal/rng"
	"fedguard/internal/telemetry"
)

// buildFixture returns (benign weights, decoder payload, cvae config).
// The underlying classifier and CVAE are trained once and shared: every
// caller uses them read-only.
func buildFixture(t *testing.T, r *rng.RNG) ([]float32, []float32, cvae.Config) {
	t.Helper()
	fixtureOnce.Do(func() {
		fr := rng.New(0xf1c)
		train := dataset.Generate(300, dataset.DefaultGenOptions(), fr)

		model := classifier.Tiny()(fr)
		cfg := classifier.TrainConfig{Epochs: 5, BatchSize: 32, LR: 0.1, Momentum: 0.9}
		classifier.Train(model, train, dataset.Range(train.Len()), cfg, fr)

		fixtureCVAECfg = cvae.Config{Input: 784, Hidden: 128, Latent: 2, Classes: 10}
		cv := cvae.New(fixtureCVAECfg, fr)
		cv.Train(train, dataset.Range(train.Len()), cvae.TrainConfig{Epochs: 12, BatchSize: 32, LR: 2e-3}, fr)

		fixtureWeights = model.FlattenParams()
		fixtureDecoder = cv.DecoderParams()
	})
	return fixtureWeights, fixtureDecoder, fixtureCVAECfg
}

var (
	fixtureOnce    sync.Once
	fixtureWeights []float32
	fixtureDecoder []float32
	fixtureCVAECfg cvae.Config
)

func ctxWith(updates []fl.Update, seed uint64) *fl.RoundContext {
	return &fl.RoundContext{
		Round:   1,
		Updates: updates,
		RNG:     rng.New(seed),
		Report:  map[string]float64{},
	}
}

func TestFedGuardMetadata(t *testing.T) {
	g := NewFedGuard(classifier.Tiny(), cvae.SmallConfig())
	if g.Name() != "FedGuard" {
		t.Fatalf("Name = %q", g.Name())
	}
	if !g.NeedsDecoders() {
		t.Fatal("FedGuard must request decoders")
	}
}

func TestFedGuardSynthesize(t *testing.T) {
	r := rng.New(1)
	_, dec, ccfg := buildFixture(t, r)
	g := NewFedGuard(classifier.Tiny(), ccfg)
	g.Samples = 30
	updates := []fl.Update{
		{ClientID: 0, Weights: nil, NumSamples: 1, Decoder: dec},
		{ClientID: 1, Weights: nil, NumSamples: 1, Decoder: dec},
	}
	x, labels, err := g.Synthesize(ctxWith(updates, 2))
	if err != nil {
		t.Fatal(err)
	}
	if x.Dim(0) != 30 || x.Dim(1) != 1 || x.Dim(2) != 28 || x.Dim(3) != 28 {
		t.Fatalf("synthetic set shape %v", x.Shape())
	}
	if len(labels) != 30 {
		t.Fatalf("%d labels", len(labels))
	}
	for _, v := range x.Data {
		if v < 0 || v > 1 {
			t.Fatalf("synthetic pixel %v outside [0,1]", v)
		}
	}
	for _, l := range labels {
		if l < 0 || l >= 10 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestFedGuardExcludesGarbageUpdates(t *testing.T) {
	r := rng.New(3)
	benign, dec, ccfg := buildFixture(t, r)

	// Three benign updates and two same-value poison updates.
	sameValue := make([]float32, len(benign))
	for i := range sameValue {
		sameValue[i] = 1
	}
	updates := []fl.Update{
		{ClientID: 0, Weights: benign, NumSamples: 10, Decoder: dec},
		{ClientID: 1, Weights: benign, NumSamples: 10, Decoder: dec},
		{ClientID: 2, Weights: benign, NumSamples: 10, Decoder: dec},
		{ClientID: 3, Weights: sameValue, NumSamples: 10, Decoder: dec},
		{ClientID: 4, Weights: sameValue, NumSamples: 10, Decoder: dec},
	}
	g := NewFedGuard(classifier.Tiny(), ccfg)
	g.Samples = 60
	ctx := ctxWith(updates, 4)
	sink := &telemetry.CollectSink{}
	ctx.Telemetry = telemetry.New(sink)
	out, err := g.Aggregate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Report["fedguard_excluded"] < 2 {
		t.Fatalf("excluded %v updates, want the 2 poison ones", ctx.Report["fedguard_excluded"])
	}
	// Aggregation of the surviving benign (identical) updates must equal
	// them exactly.
	for i := range out {
		if out[i] != benign[i] {
			t.Fatal("aggregate polluted by excluded updates")
		}
	}
	// The structured event log must mirror the selection decisions
	// one-to-one: one ClientExcluded per rejected update, scored below the
	// round mean.
	events := sink.ByKind("ClientExcluded")
	if len(events) != int(ctx.Report["fedguard_excluded"]) {
		t.Fatalf("%d ClientExcluded events for %v exclusions",
			len(events), ctx.Report["fedguard_excluded"])
	}
	excludedIDs := map[int]bool{}
	for _, e := range events {
		ce := e.(telemetry.ClientExcluded)
		if ce.Round != ctx.Round {
			t.Fatalf("event round %d, want %d", ce.Round, ctx.Round)
		}
		if ce.Acc >= ce.Mean {
			t.Fatalf("excluded client %d scored %v >= mean %v", ce.ClientID, ce.Acc, ce.Mean)
		}
		excludedIDs[ce.ClientID] = true
	}
	if !excludedIDs[3] || !excludedIDs[4] {
		t.Fatalf("excluded IDs %v, want the poison clients 3 and 4", excludedIDs)
	}
	// Phase spans must have fired for synthesis and auditing.
	for _, phase := range []string{"server.synthesize", "server.audit"} {
		h := ctx.Telemetry.Metrics.Histogram(telemetry.PhaseMetric, telemetry.L("phase", phase))
		if h.Count() == 0 {
			t.Fatalf("no %s span recorded", phase)
		}
	}
}

func TestFedGuardKeepsAllWhenEqual(t *testing.T) {
	r := rng.New(5)
	benign, dec, ccfg := buildFixture(t, r)
	updates := []fl.Update{
		{ClientID: 0, Weights: benign, NumSamples: 1, Decoder: dec},
		{ClientID: 1, Weights: benign, NumSamples: 1, Decoder: dec},
	}
	g := NewFedGuard(classifier.Tiny(), ccfg)
	ctx := ctxWith(updates, 6)
	if _, err := g.Aggregate(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Report["fedguard_kept"] != 2 {
		t.Fatalf("kept %v of 2 identical updates", ctx.Report["fedguard_kept"])
	}
}

func TestFedGuardMissingDecoder(t *testing.T) {
	r := rng.New(7)
	benign, _, ccfg := buildFixture(t, r)
	g := NewFedGuard(classifier.Tiny(), ccfg)
	_, err := g.Aggregate(ctxWith([]fl.Update{
		{ClientID: 0, Weights: benign, NumSamples: 1},
	}, 8))
	if err == nil {
		t.Fatal("FedGuard accepted an update without decoder payload")
	}
}

func TestFedGuardEmptyRound(t *testing.T) {
	g := NewFedGuard(classifier.Tiny(), cvae.SmallConfig())
	if _, err := g.Aggregate(ctxWith(nil, 9)); err == nil {
		t.Fatal("FedGuard accepted an empty round")
	}
}

func TestFedGuardMaxDecodersSubset(t *testing.T) {
	r := rng.New(10)
	_, dec, ccfg := buildFixture(t, r)
	g := NewFedGuard(classifier.Tiny(), ccfg)
	g.Samples = 20
	g.MaxDecoders = 1
	updates := []fl.Update{
		{ClientID: 0, Weights: nil, NumSamples: 1, Decoder: dec},
		{ClientID: 1, Weights: nil, NumSamples: 1, Decoder: dec},
		{ClientID: 2, Weights: nil, NumSamples: 1, Decoder: dec},
	}
	x, _, err := g.Synthesize(ctxWith(updates, 11))
	if err != nil {
		t.Fatal(err)
	}
	if x.Dim(0) != 20 {
		t.Fatalf("MaxDecoders changed the sample count: %v", x.Shape())
	}
}

func TestFedGuardCustomClassProbs(t *testing.T) {
	r := rng.New(12)
	_, dec, ccfg := buildFixture(t, r)
	g := NewFedGuard(classifier.Tiny(), ccfg)
	g.Samples = 200
	// All mass on class 3: every conditioning label must be 3.
	probs := make([]float64, 10)
	probs[3] = 1
	g.ClassProbs = probs
	updates := []fl.Update{{ClientID: 0, Weights: nil, NumSamples: 1, Decoder: dec}}
	_, labels, err := g.Synthesize(ctxWith(updates, 13))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range labels {
		if l != 3 {
			t.Fatalf("label %d sampled under point-mass on 3", l)
		}
	}
}

func TestFedGuardInnerOperatorSwap(t *testing.T) {
	r := rng.New(14)
	benign, dec, ccfg := buildFixture(t, r)
	g := NewFedGuard(classifier.Tiny(), ccfg)
	g.Inner = aggregate.CoordinateMedian
	updates := []fl.Update{
		{ClientID: 0, Weights: benign, NumSamples: 1, Decoder: dec},
		{ClientID: 1, Weights: benign, NumSamples: 1, Decoder: dec},
	}
	out, err := g.Aggregate(ctxWith(updates, 15))
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != benign[i] {
			t.Fatal("median inner operator of identical updates differs")
		}
	}
}

// auditDeterminismUpdates builds a round with distinct per-client
// weights (noised benign copies plus two poison vectors) so the audit
// accuracies genuinely differ across clients.
func auditDeterminismUpdates(t *testing.T) ([]fl.Update, cvae.Config) {
	t.Helper()
	benign, dec, ccfg := buildFixture(t, rng.New(40))
	updates := make([]fl.Update, 6)
	for i := range updates {
		w := append([]float32(nil), benign...)
		switch {
		case i >= 4: // poison
			for j := range w {
				w[j] = 1
			}
		case i > 0: // noised benign
			noise := make([]float32, len(w))
			rng.New(uint64(100 + i)).FillNormal(noise, 0, 0.01)
			for j := range w {
				w[j] += noise[j]
			}
		}
		updates[i] = fl.Update{ClientID: i, Weights: w, NumSamples: 1, Decoder: dec}
	}
	return updates, ccfg
}

// TestFedGuardParallelAuditMatchesSerial pins the determinism contract
// of the fan-out audit: for the same round context seed, Aggregate must
// produce byte-identical weights and identical reports at any
// AuditWorkers setting.
func TestFedGuardParallelAuditMatchesSerial(t *testing.T) {
	updates, ccfg := auditDeterminismUpdates(t)
	runOnce := func(workers int) ([]float32, map[string]float64) {
		g := NewFedGuard(classifier.Tiny(), ccfg)
		g.Samples = 40
		g.AuditWorkers = workers
		ctx := ctxWith(updates, 41)
		out, err := g.Aggregate(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return out, ctx.Report
	}
	serialOut, serialReport := runOnce(1)
	for _, workers := range []int{2, 4, 0} {
		out, report := runOnce(workers)
		if len(out) != len(serialOut) {
			t.Fatalf("workers=%d: %d weights, serial %d", workers, len(out), len(serialOut))
		}
		for i := range out {
			if out[i] != serialOut[i] {
				t.Fatalf("workers=%d: weight %d differs: %v vs serial %v",
					workers, i, out[i], serialOut[i])
			}
		}
		for k, v := range serialReport {
			if report[k] != v {
				t.Fatalf("workers=%d: report[%q] = %v, serial %v", workers, k, report[k], v)
			}
		}
	}
}

// TestFedGuardParallelSynthesizeMatchesSerial pins the same contract for
// per-decoder synthesis fan-out: identical images and labels at any
// worker count.
func TestFedGuardParallelSynthesizeMatchesSerial(t *testing.T) {
	updates, ccfg := auditDeterminismUpdates(t)
	synth := func(workers int) ([]float32, []int) {
		g := NewFedGuard(classifier.Tiny(), ccfg)
		g.Samples = 50
		g.AuditWorkers = workers
		x, labels, err := g.Synthesize(ctxWith(updates, 42))
		if err != nil {
			t.Fatal(err)
		}
		return x.Data, labels
	}
	serialX, serialLabels := synth(1)
	for _, workers := range []int{3, 0} {
		x, labels := synth(workers)
		for i := range serialLabels {
			if labels[i] != serialLabels[i] {
				t.Fatalf("workers=%d: label %d differs", workers, i)
			}
		}
		for i := range serialX {
			if x[i] != serialX[i] {
				t.Fatalf("workers=%d: pixel %d differs: %v vs %v", workers, i, x[i], serialX[i])
			}
		}
	}
}

func TestSpectralRequiresPretrain(t *testing.T) {
	s := NewSpectral(classifier.Tiny())
	if _, err := s.Aggregate(ctxWith([]fl.Update{{ClientID: 0, Weights: []float32{1}}}, 16)); err == nil {
		t.Fatal("Spectral aggregated without pretraining")
	}
}

func TestSpectralExcludesOutliers(t *testing.T) {
	r := rng.New(17)
	aux := dataset.Generate(200, dataset.DefaultGenOptions(), r)
	s := NewSpectral(classifier.Tiny())
	pcfg := DefaultPretrainConfig(classifier.TrainConfig{Epochs: 1, BatchSize: 32, LR: 0.1, Momentum: 0.9})
	pcfg.Clients = 4
	pcfg.Rounds = 3
	if err := s.Pretrain(aux, pcfg); err != nil {
		t.Fatal(err)
	}

	// Benign updates: actual trained models. Poison: same-value vectors.
	train := dataset.Generate(150, dataset.DefaultGenOptions(), r)
	var updates []fl.Update
	for i := 0; i < 3; i++ {
		m := classifier.Tiny()(r)
		classifier.Train(m, train, dataset.Range(train.Len()),
			classifier.TrainConfig{Epochs: 1, BatchSize: 32, LR: 0.1, Momentum: 0.9}, r)
		updates = append(updates, fl.Update{ClientID: i, Weights: m.FlattenParams(), NumSamples: 10})
	}
	poison := make([]float32, len(updates[0].Weights))
	for i := range poison {
		poison[i] = 1
	}
	updates = append(updates, fl.Update{ClientID: 3, Weights: poison, NumSamples: 10})

	ctx := ctxWith(updates, 18)
	if _, err := s.Aggregate(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Report["spectral_excluded"] < 1 {
		t.Fatalf("Spectral excluded %v, want >= 1 (the same-value poison)", ctx.Report["spectral_excluded"])
	}
}

func TestSpectralMetadata(t *testing.T) {
	s := NewSpectral(classifier.Tiny())
	if s.Name() != "Spectral" {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.NeedsDecoders() {
		t.Fatal("Spectral must not request decoders")
	}
}

func TestProjectionDeterministicAndDiscriminative(t *testing.T) {
	p := newProjection(1000, 16, 42)
	q := newProjection(1000, 16, 42)
	w := make([]float32, 1000)
	rng.New(1).FillNormal(w, 0, 1)
	a := p.apply(w)
	b := q.apply(w)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("projection not deterministic in seed")
		}
	}
	// Different vectors must project differently.
	w2 := make([]float32, 1000)
	rng.New(2).FillNormal(w2, 0, 1)
	c := p.apply(w2)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("projection collapsed distinct inputs")
	}
}

func TestFedGuardDetectionStats(t *testing.T) {
	r := rng.New(21)
	benign, dec, ccfg := buildFixture(t, r)
	sameValue := make([]float32, len(benign))
	for i := range sameValue {
		sameValue[i] = 1
	}
	g := NewFedGuard(classifier.Tiny(), ccfg)
	g.Samples = 60
	updates := []fl.Update{
		{ClientID: 10, Weights: benign, NumSamples: 1, Decoder: dec},
		{ClientID: 11, Weights: benign, NumSamples: 1, Decoder: dec},
		{ClientID: 12, Weights: sameValue, NumSamples: 1, Decoder: dec},
	}
	for round := 0; round < 3; round++ {
		if _, err := g.Aggregate(ctxWith(updates, uint64(30+round))); err != nil {
			t.Fatal(err)
		}
	}
	excluded, seen := g.DetectionStats()
	if seen[10] != 3 || seen[11] != 3 || seen[12] != 3 {
		t.Fatalf("participation counts wrong: %v", seen)
	}
	if excluded[12] != 3 {
		t.Fatalf("poison client excluded %d/3 times", excluded[12])
	}
	if excluded[10] != 0 || excluded[11] != 0 {
		t.Fatalf("benign clients excluded: %v", excluded)
	}
	// Returned maps are copies: mutating them must not corrupt state.
	excluded[12] = 0
	e2, _ := g.DetectionStats()
	if e2[12] != 3 {
		t.Fatal("DetectionStats returned internal state, not a copy")
	}
}

func TestFedGuardAssignSamplesRoundRobin(t *testing.T) {
	g := NewFedGuard(classifier.Tiny(), cvae.SmallConfig())
	assign := g.assignSamples([]int{0, 1, 2, 3, 4, 5}, 3, make([][]int, 3))
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if assign[i] != w {
			t.Fatalf("assign = %v, want %v", assign, want)
		}
	}
}

func TestFedGuardAssignSamplesByClass(t *testing.T) {
	g := NewFedGuard(classifier.Tiny(), cvae.SmallConfig())
	g.UseDecoderClasses = true
	// Decoder 0 saw classes {0,1}; decoder 1 saw {2}; decoder 2 unknown.
	classes := [][]int{{0, 1}, {2}, nil}
	labels := []int{0, 2, 1, 2, 9}
	assign := g.assignSamples(labels, 3, classes)
	// Class 0 and 1 -> decoder 0 or 2 (both claim; 2 claims via nil).
	for i, y := range labels {
		d := assign[i]
		switch y {
		case 0, 1:
			if d != 0 && d != 2 {
				t.Fatalf("label %d routed to decoder %d", y, d)
			}
		case 2:
			if d != 1 && d != 2 {
				t.Fatalf("label 2 routed to decoder %d", d)
			}
		case 9:
			if d != 2 {
				t.Fatalf("label 9 (only nil-coverage decoder) routed to %d", d)
			}
		}
	}
}

func TestFedGuardAssignSamplesFallback(t *testing.T) {
	g := NewFedGuard(classifier.Tiny(), cvae.SmallConfig())
	g.UseDecoderClasses = true
	// No decoder claims class 5: fall back to round-robin.
	classes := [][]int{{0}, {1}}
	assign := g.assignSamples([]int{5, 5, 5}, 2, classes)
	if assign[0] != 0 || assign[1] != 1 || assign[2] != 0 {
		t.Fatalf("fallback assignment = %v", assign)
	}
}

func TestFedGuardSynthesizeWithDecoderClasses(t *testing.T) {
	r := rng.New(22)
	_, dec, ccfg := buildFixture(t, r)
	g := NewFedGuard(classifier.Tiny(), ccfg)
	g.Samples = 40
	g.UseDecoderClasses = true
	updates := []fl.Update{
		{ClientID: 0, NumSamples: 1, Decoder: dec, DecoderClasses: []int{0, 1, 2, 3, 4}},
		{ClientID: 1, NumSamples: 1, Decoder: dec, DecoderClasses: []int{5, 6, 7, 8, 9}},
	}
	x, labels, err := g.Synthesize(ctxWith(updates, 23))
	if err != nil {
		t.Fatal(err)
	}
	if x.Dim(0) != 40 || len(labels) != 40 {
		t.Fatalf("shape %v, %d labels", x.Shape(), len(labels))
	}
}

func TestQualitySamplerBiasesAwayFromExcluded(t *testing.T) {
	g := NewFedGuard(classifier.Tiny(), cvae.SmallConfig())
	// Fabricate detection history: client 0 always excluded, client 1
	// never, clients 2..4 unseen.
	g.excludedCount = map[int]int{0: 10}
	g.seenCount = map[int]int{0: 10, 1: 10}

	q := NewQualitySampler(g)
	r := rng.New(1)
	counts := make([]int, 5)
	const trials = 3000
	for i := 0; i < trials; i++ {
		for _, id := range q.SampleClients(i, 5, 2, r) {
			counts[id]++
		}
	}
	// Client 0 should be picked far less often than client 1.
	if counts[0]*4 > counts[1] {
		t.Fatalf("quality sampler barely penalized a fully excluded client: %v", counts)
	}
	// Floor keeps client 0 occasionally selectable.
	if counts[0] == 0 {
		t.Fatal("floor failed: fully excluded client never sampled again")
	}
}

func TestQualitySamplerDistinctAndComplete(t *testing.T) {
	g := NewFedGuard(classifier.Tiny(), cvae.SmallConfig())
	q := NewQualitySampler(g)
	r := rng.New(2)
	for i := 0; i < 50; i++ {
		out := q.SampleClients(i, 10, 10, r)
		seen := map[int]bool{}
		for _, id := range out {
			if id < 0 || id >= 10 || seen[id] {
				t.Fatalf("bad sample %v", out)
			}
			seen[id] = true
		}
	}
}
