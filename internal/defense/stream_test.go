package defense

import (
	"testing"

	"fedguard/internal/classifier"
	"fedguard/internal/cvae"
	"fedguard/internal/fl"
	"fedguard/internal/rng"
)

func streamGuard(ccfg cvae.Config, workers int) *FedGuard {
	g := NewFedGuard(classifier.Tiny(), ccfg)
	g.Samples = 40
	g.AuditWorkers = workers
	return g
}

func batchRun(t *testing.T, g *FedGuard, updates []fl.Update, seed uint64) ([]float32, map[string]float64) {
	t.Helper()
	ctx := ctxWith(updates, seed)
	out, err := g.Aggregate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return out, ctx.Report
}

func requireSame(t *testing.T, label string, got, want []float32, gotR, wantR map[string]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d weights, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: weight %d differs: %v vs %v", label, i, got[i], want[i])
		}
	}
	for k, v := range wantR {
		if gotR[k] != v {
			t.Fatalf("%s: report[%q] = %v, want %v", label, k, gotR[k], v)
		}
	}
}

// TestAuditStreamMatchesBatch pins the streaming path's determinism
// contract: for any arrival order, worker count, and decoder subsetting,
// Submit/Finalize must produce byte-identical weights and reports to the
// barrier-then-Aggregate path.
func TestAuditStreamMatchesBatch(t *testing.T) {
	updates, ccfg := auditDeterminismUpdates(t)
	const seed = 41

	for _, tc := range []struct {
		name        string
		workers     int
		maxDecoders int
		order       []int
	}{
		{name: "serial-inorder", workers: 1, order: []int{0, 1, 2, 3, 4, 5}},
		{name: "serial-reversed", workers: 1, order: []int{5, 4, 3, 2, 1, 0}},
		{name: "parallel-shuffled", workers: 4, order: []int{3, 0, 5, 1, 4, 2}},
		{name: "gomaxprocs-shuffled", workers: 0, order: []int{2, 5, 0, 4, 1, 3}},
		{name: "maxdecoders", workers: 3, maxDecoders: 3, order: []int{4, 1, 5, 0, 2, 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			gb := streamGuard(ccfg, tc.workers)
			gb.MaxDecoders = tc.maxDecoders
			want, wantR := batchRun(t, gb, updates, seed)

			gs := streamGuard(ccfg, tc.workers)
			gs.MaxDecoders = tc.maxDecoders
			ctx := ctxWith(nil, seed)
			stream := gs.BeginRound(ctx, len(updates))
			if stream == nil {
				t.Fatal("BeginRound refused a streamable round")
			}
			for _, slot := range tc.order {
				stream.Submit(slot, updates[slot])
			}
			if busy, jobs := stream.Overlap(); jobs > 0 && busy <= 0 {
				t.Fatalf("%d jobs done but zero busy time", jobs)
			}
			ctx.Updates = updates
			got, err := stream.Finalize(ctx)
			if err != nil {
				t.Fatal(err)
			}
			requireSame(t, tc.name, got, want, ctx.Report, wantR)
		})
	}
}

// TestAuditStreamConcurrentSubmit drives Submit from one goroutine per
// client — the shape the networked server uses — and checks the result
// against the batch path. Run under -race this also pins the stream's
// synchronization.
func TestAuditStreamConcurrentSubmit(t *testing.T) {
	updates, ccfg := auditDeterminismUpdates(t)
	const seed = 43
	want, wantR := batchRun(t, streamGuard(ccfg, 2), updates, seed)

	g := streamGuard(ccfg, 2)
	ctx := ctxWith(nil, seed)
	stream := g.BeginRound(ctx, len(updates))
	done := make(chan struct{})
	for slot := range updates {
		go func(slot int) {
			stream.Submit(slot, updates[slot])
			done <- struct{}{}
		}(slot)
	}
	for range updates {
		<-done
	}
	ctx.Updates = updates
	got, err := stream.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	requireSame(t, "concurrent", got, want, ctx.Report, wantR)
}

// TestAuditStreamFallback covers the degraded paths: a round that loses
// a client mid-stream, or whose final update order disagrees with the
// streamed slots, must fall back to the batch computation on the actual
// updates — same bytes as never having streamed.
func TestAuditStreamFallback(t *testing.T) {
	updates, ccfg := auditDeterminismUpdates(t)
	const seed = 47

	t.Run("dropout", func(t *testing.T) {
		// Client in slot 2 never arrives; the round closes with 5 updates.
		survivors := append(append([]fl.Update(nil), updates[:2]...), updates[3:]...)
		want, wantR := batchRun(t, streamGuard(ccfg, 2), survivors, seed)

		g := streamGuard(ccfg, 2)
		ctx := ctxWith(nil, seed)
		stream := g.BeginRound(ctx, len(updates))
		for _, slot := range []int{0, 1, 3, 4, 5} {
			stream.Submit(slot, updates[slot])
		}
		ctx.Updates = survivors
		got, err := stream.Finalize(ctx)
		if err != nil {
			t.Fatal(err)
		}
		requireSame(t, "dropout", got, want, ctx.Report, wantR)
	})

	t.Run("slot-mismatch", func(t *testing.T) {
		reordered := append([]fl.Update(nil), updates...)
		reordered[0], reordered[1] = reordered[1], reordered[0]
		want, wantR := batchRun(t, streamGuard(ccfg, 1), reordered, seed)

		g := streamGuard(ccfg, 1)
		ctx := ctxWith(nil, seed)
		stream := g.BeginRound(ctx, len(updates))
		for slot := range updates {
			stream.Submit(slot, updates[slot])
		}
		ctx.Updates = reordered
		got, err := stream.Finalize(ctx)
		if err != nil {
			t.Fatal(err)
		}
		requireSame(t, "slot-mismatch", got, want, ctx.Report, wantR)
	})

	t.Run("abort-then-batch", func(t *testing.T) {
		want, wantR := batchRun(t, streamGuard(ccfg, 2), updates, seed)
		g := streamGuard(ccfg, 2)
		ctx := ctxWith(nil, seed)
		stream := g.BeginRound(ctx, len(updates))
		stream.Submit(0, updates[0])
		stream.Abort()
		// The strategy must remain usable for the round's batch retry.
		ctx.Updates = updates
		got, err := g.Aggregate(ctx)
		if err != nil {
			t.Fatal(err)
		}
		requireSame(t, "abort", got, want, ctx.Report, wantR)
	})
}

// TestAuditStreamUnsupported pins when BeginRound must refuse: §VI-B
// class-routed synthesis (needs post-barrier DecoderClasses) and empty
// rounds.
func TestAuditStreamUnsupported(t *testing.T) {
	_, _, ccfg := buildFixture(t, rng.New(40))
	g := streamGuard(ccfg, 1)
	g.UseDecoderClasses = true
	if s := g.BeginRound(ctxWith(nil, 1), 4); s != nil {
		t.Fatal("UseDecoderClasses rounds must not stream")
	}
	g2 := streamGuard(ccfg, 1)
	if s := g2.BeginRound(ctxWith(nil, 1), 0); s != nil {
		t.Fatal("empty rounds must not stream")
	}
}

// TestAuditStreamDoesNotAdvanceRNG pins the fallback precondition:
// BeginRound speculates on a clone, leaving ctx.RNG's stream untouched.
func TestAuditStreamDoesNotAdvanceRNG(t *testing.T) {
	updates, ccfg := auditDeterminismUpdates(t)
	g := streamGuard(ccfg, 1)
	ctx := ctxWith(nil, 53)
	ref := ctx.RNG.Clone()
	stream := g.BeginRound(ctx, len(updates))
	stream.Abort()
	for i := 0; i < 16; i++ {
		if ctx.RNG.Float64() != ref.Float64() {
			t.Fatalf("draw %d diverged: BeginRound advanced the round RNG", i)
		}
	}
}
