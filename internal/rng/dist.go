package rng

import "math"

// NormFloat64 returns a standard normal (mean 0, stddev 1) sample using
// the Box–Muller transform with caching of the second variate.
func (r *RNG) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.haveGauss = true
	return u * f
}

// NormFloat32 returns a standard normal sample as float32.
func (r *RNG) NormFloat32() float32 { return float32(r.NormFloat64()) }

// Gaussian returns a normal sample with the given mean and stddev.
func (r *RNG) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// Categorical draws an index from the discrete distribution given by
// probs. Probabilities need not be normalized; they must be non-negative
// and not all zero.
func (r *RNG) Categorical(probs []float64) int {
	var total float64
	for _, p := range probs {
		if p < 0 || math.IsNaN(p) {
			panic("rng: Categorical with negative or NaN probability")
		}
		total += p
	}
	if total <= 0 {
		panic("rng: Categorical with zero total mass")
	}
	x := r.Float64() * total
	var acc float64
	for i, p := range probs {
		acc += p
		if x < acc {
			return i
		}
	}
	return len(probs) - 1 // floating point slack
}

// CategoricalUniform draws an index from Cat(L, alpha = 1/L), the
// class-balanced conditioning distribution FedGuard uses to synthesize
// validation labels.
func (r *RNG) CategoricalUniform(l int) int { return r.Intn(l) }

// Gamma returns a sample from the Gamma(shape, 1) distribution using the
// Marsaglia–Tsang method (2000). shape must be positive.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("rng: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet returns one sample from the symmetric Dirichlet distribution
// with concentration alpha over k categories. The result sums to 1.
func (r *RNG) Dirichlet(alpha float64, k int) []float64 {
	if k <= 0 {
		panic("rng: Dirichlet with non-positive k")
	}
	out := make([]float64, k)
	var sum float64
	for i := range out {
		g := r.Gamma(alpha)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		// Degenerate draw (possible for tiny alpha): fall back to a
		// single random category to keep the simplex property.
		out[r.Intn(k)] = 1
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// DirichletVec returns one sample from the Dirichlet distribution with
// per-category concentrations alphas.
func (r *RNG) DirichletVec(alphas []float64) []float64 {
	out := make([]float64, len(alphas))
	var sum float64
	for i, a := range alphas {
		g := r.Gamma(a)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		out[r.Intn(len(alphas))] = 1
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// FillNormal fills dst with i.i.d. Gaussian samples of the given mean and
// stddev.
func (r *RNG) FillNormal(dst []float32, mean, stddev float64) {
	for i := range dst {
		dst[i] = float32(mean + stddev*r.NormFloat64())
	}
}

// FillUniform fills dst with i.i.d. uniform samples in [lo, hi).
func (r *RNG) FillUniform(dst []float32, lo, hi float64) {
	span := hi - lo
	for i := range dst {
		dst[i] = float32(lo + span*r.Float64())
	}
}
