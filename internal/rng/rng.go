// Package rng provides a deterministic, splittable pseudo-random number
// generator together with the distribution samplers the FedGuard
// reproduction needs: Gaussian, categorical, Dirichlet, and permutation
// sampling.
//
// Every experiment in this repository derives all of its randomness from a
// single root seed. Client-local streams are obtained with Split, which
// produces statistically independent child generators, so results do not
// depend on the order in which goroutines run.
//
// The core generator is PCG-XSL-RR 128/64 (O'Neill, 2014), implemented on
// two 64-bit halves so it needs no math/bits 128-bit support beyond
// multiplication helpers.
package rng

import "math/bits"

// RNG is a deterministic splittable random number generator. It is NOT
// safe for concurrent use; use Split to derive one generator per
// goroutine instead of sharing.
type RNG struct {
	hi, lo uint64 // 128-bit state
	incHi  uint64 // stream selector (must be odd in low half)
	incLo  uint64

	haveGauss bool
	gauss     float64
}

// New returns a generator seeded from seed. Two generators created with
// the same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{incHi: 0x14057b7ef767814f, incLo: 0x9fb21c651e98df25 | 1}
	r.hi = 0
	r.lo = 0
	r.step()
	r.lo += seed
	r.hi += mulHi(seed, 0x9e3779b97f4a7c15)
	r.step()
	// Warm up so low-entropy seeds diverge quickly.
	for i := 0; i < 4; i++ {
		r.step()
	}
	return r
}

func mulHi(a, b uint64) uint64 {
	hi, _ := bits.Mul64(a, b)
	return hi
}

// step advances the 128-bit LCG state.
func (r *RNG) step() {
	const mulHi64 = 2549297995355413924
	const mulLo64 = 4865540595714422341
	// (hi,lo) = (hi,lo) * mul + inc, 128-bit arithmetic.
	hh, hl := bits.Mul64(r.lo, mulLo64)
	hh += r.hi*mulLo64 + r.lo*mulHi64
	lo, carry := bits.Add64(hl, r.incLo, 0)
	hi, _ := bits.Add64(hh, r.incHi, carry)
	r.hi, r.lo = hi, lo
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.step()
	// XSL-RR output function: xor the halves, rotate by the top bits.
	x := r.hi ^ r.lo
	rot := uint(r.hi >> 58)
	return bits.RotateLeft64(x, -int(rot))
}

// Split derives a statistically independent child generator. The parent
// advances, so successive Split calls return distinct children. Children
// and parent may be used concurrently with each other.
func (r *RNG) Split() *RNG {
	c := &RNG{}
	c.hi = r.Uint64()
	c.lo = r.Uint64()
	c.incHi = r.Uint64()
	c.incLo = r.Uint64() | 1 // increment must be odd
	for i := 0; i < 4; i++ {
		c.step()
	}
	return c
}

// Clone returns an independent copy of the generator frozen at the
// current state: the clone and the original produce the same future
// stream, and advancing one leaves the other untouched. The streaming
// audit path uses this to speculate draws on a copy while keeping the
// original pristine for the batch fallback.
func (r *RNG) Clone() *RNG {
	c := *r
	return &c
}

// State is the full serializable snapshot of a generator: the 128-bit
// PCG state, the stream selector, and the Box–Muller cache. The cache
// matters — NormFloat64 draws two variates per transform and hands the
// second one out on the next call, so dropping it would desynchronize a
// restored stream from the original by one Gaussian draw. Checkpoints
// persist State so a resumed run continues the exact stream.
type State struct {
	Hi, Lo       uint64
	IncHi, IncLo uint64
	HaveGauss    bool
	Gauss        float64
}

// State snapshots the generator. The snapshot is a value copy: advancing
// the generator afterwards does not disturb it.
func (r *RNG) State() State {
	return State{Hi: r.hi, Lo: r.lo, IncHi: r.incHi, IncLo: r.incLo, HaveGauss: r.haveGauss, Gauss: r.gauss}
}

// SetState overwrites the generator with a snapshot taken by State. The
// stream-selector low half is forced odd, preserving the PCG increment
// invariant even for snapshots from untrusted bytes.
func (r *RNG) SetState(s State) {
	r.hi, r.lo = s.Hi, s.Lo
	r.incHi, r.incLo = s.IncHi, s.IncLo|1
	r.haveGauss, r.gauss = s.HaveGauss, s.Gauss
}

// FromState reconstructs a generator that continues the exact stream the
// snapshotted generator would have produced.
func FromState(s State) *RNG {
	r := &RNG{}
	r.SetState(s)
	return r
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) * (1.0 / (1 << 24))
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, which
// exchanges the elements at indexes i and j.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct indices drawn uniformly from [0, n) in
// selection order. It panics if k > n or k < 0.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample with k out of range")
	}
	p := r.Perm(n)
	return p[:k]
}

// DeriveSeed deterministically derives an independent seed from a base
// seed, a domain tag and an index, using splitmix64 finalization. It lets
// distributed components (e.g. the networked federation server and its
// remote clients) agree on per-entity streams without shipping generator
// state.
func DeriveSeed(base uint64, tag string, index uint64) uint64 {
	x := base
	for _, b := range []byte(tag) {
		x = (x ^ uint64(b)) * 0x100000001b3 // FNV-style tag mixing
	}
	x ^= index * 0x9e3779b97f4a7c15
	// splitmix64 finalizer.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
