package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with same seed diverged at step %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split()
	c2 := root.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first output")
	}
	// Split must be deterministic given the parent state.
	rootB := New(7)
	d1 := rootB.Split()
	d2 := rootB.Split()
	c1b, c2b := New(7), New(7) // placeholders; re-derive streams
	_ = c1b
	_ = c2b
	e1 := d1.Uint64()
	e2 := d2.Uint64()
	f1 := New(7).Split().Uint64()
	if e1 != f1 {
		t.Fatal("Split is not deterministic")
	}
	_ = e2
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(19)
	s := r.Sample(50, 25)
	if len(s) != 25 {
		t.Fatalf("Sample returned %d elements, want 25", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Sample produced duplicate or out-of-range value %d", v)
		}
		seen[v] = true
	}
}

func TestSampleUniformCoverage(t *testing.T) {
	r := New(23)
	counts := make([]int, 10)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range r.Sample(10, 5) {
			counts[v]++
		}
	}
	// Each index should appear in ~half the samples.
	want := float64(trials) * 0.5
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Fatalf("index %d sampled %d times, want ~%v", i, c, want)
		}
	}
}

func TestCategorical(t *testing.T) {
	r := New(29)
	probs := []float64{0.1, 0.2, 0.7}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(probs)]++
	}
	for i, p := range probs {
		got := float64(counts[i]) / n
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("category %d frequency %v, want ~%v", i, got, p)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Categorical with zero mass did not panic")
		}
	}()
	New(1).Categorical([]float64{0, 0})
}

func TestDirichletSimplex(t *testing.T) {
	r := New(31)
	for _, alpha := range []float64{0.1, 1, 10, 100} {
		d := r.Dirichlet(alpha, 10)
		var sum float64
		for _, v := range d {
			if v < 0 {
				t.Fatalf("Dirichlet(%v) produced negative weight %v", alpha, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Dirichlet(%v) sums to %v, want 1", alpha, sum)
		}
	}
}

func TestDirichletConcentration(t *testing.T) {
	r := New(37)
	// Large alpha -> near-uniform; small alpha -> spiky.
	const k = 10
	maxAt := func(alpha float64) float64 {
		var maxAvg float64
		const reps = 200
		for i := 0; i < reps; i++ {
			d := r.Dirichlet(alpha, k)
			m := 0.0
			for _, v := range d {
				if v > m {
					m = v
				}
			}
			maxAvg += m
		}
		return maxAvg / reps
	}
	spiky := maxAt(0.1)
	flat := maxAt(100)
	if spiky < flat {
		t.Fatalf("Dirichlet concentration inverted: max(alpha=0.1)=%v < max(alpha=100)=%v", spiky, flat)
	}
	if flat > 0.2 {
		t.Fatalf("Dirichlet(100) should be near uniform, avg max=%v", flat)
	}
}

func TestGammaMean(t *testing.T) {
	r := New(41)
	for _, shape := range []float64{0.5, 1, 2, 5} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += r.Gamma(shape)
		}
		mean := sum / n
		if math.Abs(mean-shape) > shape*0.05 {
			t.Fatalf("Gamma(%v) mean = %v, want ~%v", shape, mean, shape)
		}
	}
}

func TestFillNormalStats(t *testing.T) {
	r := New(43)
	buf := make([]float32, 100000)
	r.FillNormal(buf, 2, 3)
	var sum float64
	for _, v := range buf {
		sum += float64(v)
	}
	mean := sum / float64(len(buf))
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("FillNormal mean = %v, want ~2", mean)
	}
}

func TestQuickIntnBounds(t *testing.T) {
	r := New(47)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDirichletSimplex(t *testing.T) {
	r := New(53)
	f := func(a uint8, k uint8) bool {
		alpha := float64(a%50)/10 + 0.1
		kk := int(k%20) + 1
		d := r.Dirichlet(alpha, kk)
		var sum float64
		for _, v := range d {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveSeed(t *testing.T) {
	a := DeriveSeed(7, "client", 0)
	b := DeriveSeed(7, "client", 1)
	c := DeriveSeed(7, "server", 0)
	d := DeriveSeed(8, "client", 0)
	if a == b || a == c || a == d || b == c {
		t.Fatalf("derived seeds collide: %v %v %v %v", a, b, c, d)
	}
	if a != DeriveSeed(7, "client", 0) {
		t.Fatal("DeriveSeed not deterministic")
	}
}
