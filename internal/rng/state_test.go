package rng

import (
	"math"
	"testing"
)

// drainMixed exercises every consumer of generator state: raw words,
// bounded ints, floats, Gaussians (which toggle the Box–Muller cache),
// permutations, and a split.
func drainMixed(r *RNG) []float64 {
	out := make([]float64, 0, 64)
	for i := 0; i < 8; i++ {
		out = append(out, float64(r.Uint64()))
		out = append(out, float64(r.Intn(1000)))
		out = append(out, r.Float64())
		out = append(out, r.NormFloat64())
	}
	for _, v := range r.Perm(16) {
		out = append(out, float64(v))
	}
	child := r.Split()
	out = append(out, float64(child.Uint64()), float64(r.Uint64()))
	return out
}

func TestStateRoundTrip(t *testing.T) {
	src := New(42)
	// Burn mixed draws so the snapshot lands mid-stream.
	drainMixed(src)

	snap := src.State()
	restored := FromState(snap)
	want := drainMixed(src)
	got := drainMixed(restored)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("restored stream diverged at draw %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestStateCapturesGaussCache(t *testing.T) {
	src := New(7)
	// One NormFloat64 leaves the second Box–Muller variate cached; a
	// snapshot that dropped it would restore a stream one Gaussian off.
	first := src.NormFloat64()
	_ = first
	snap := src.State()
	if !snap.HaveGauss {
		t.Fatal("snapshot after an odd Gaussian draw should carry the cached variate")
	}
	restored := FromState(snap)
	for i := 0; i < 10; i++ {
		a, b := src.NormFloat64(), restored.NormFloat64()
		if a != b || math.IsNaN(a) {
			t.Fatalf("Gaussian stream diverged at draw %d: %v vs %v", i, a, b)
		}
	}
}

func TestSetStateOverwrites(t *testing.T) {
	a := New(1)
	b := New(2)
	for i := 0; i < 17; i++ {
		a.Uint64()
	}
	b.SetState(a.State())
	for i := 0; i < 100; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("SetState target diverged at draw %d: %x vs %x", i, x, y)
		}
	}
}

func TestSetStateForcesOddIncrement(t *testing.T) {
	// A hostile checkpoint may carry an even stream selector; the PCG
	// increment must stay odd or the generator degenerates.
	r := FromState(State{Hi: 1, Lo: 2, IncHi: 3, IncLo: 4})
	if r.incLo&1 != 1 {
		t.Fatalf("incLo = %d, want odd", r.incLo)
	}
	// The stream must still be usable.
	r.Uint64()
	r.NormFloat64()
}

func TestStateMatchesClone(t *testing.T) {
	r := New(99)
	r.NormFloat64() // arm the cache
	viaClone := r.Clone()
	viaState := FromState(r.State())
	for i := 0; i < 100; i++ {
		if x, y := viaClone.Uint64(), viaState.Uint64(); x != y {
			t.Fatalf("State and Clone disagree at draw %d", i)
		}
	}
}
