package attack

import (
	"sync"
	"testing"
	"testing/quick"

	"fedguard/internal/dataset"
	"fedguard/internal/rng"
)

func TestNoneIsIdentity(t *testing.T) {
	r := rng.New(1)
	d := dataset.Generate(10, dataset.DefaultGenOptions(), r)
	a := None{}
	ds, idx := a.PoisonData(d, dataset.Range(10))
	if ds != d {
		t.Fatal("None.PoisonData copied the dataset")
	}
	if len(idx) != 10 {
		t.Fatal("None.PoisonData changed indices")
	}
	w := []float32{1, -2, 3}
	a.PoisonModel(w, r)
	if w[0] != 1 || w[1] != -2 || w[2] != 3 {
		t.Fatal("None.PoisonModel modified weights")
	}
}

func TestSameValue(t *testing.T) {
	r := rng.New(2)
	a := NewSameValue()
	w := []float32{0.5, -3, 7}
	a.PoisonModel(w, r)
	for _, v := range w {
		if v != 1 {
			t.Fatalf("SameValue left %v", w)
		}
	}
}

func TestSignFlipIsInvolution(t *testing.T) {
	r := rng.New(3)
	a := NewSignFlip()
	f := func(vals []float32) bool {
		w := append([]float32(nil), vals...)
		a.PoisonModel(w, r)
		a.PoisonModel(w, r)
		for i := range w {
			if w[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignFlipPreservesMagnitude(t *testing.T) {
	r := rng.New(4)
	a := NewSignFlip()
	w := []float32{3, -4}
	a.PoisonModel(w, r)
	if w[0] != -3 || w[1] != 4 {
		t.Fatalf("SignFlip gave %v", w)
	}
}

func TestAdditiveNoiseCollusion(t *testing.T) {
	// Two malicious clients sharing the instance must add identical noise.
	a := NewAdditiveNoise(1.0, 99)
	w1 := make([]float32, 100)
	w2 := make([]float32, 100)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); a.PoisonModel(w1, rng.New(1)) }()
	go func() { defer wg.Done(); a.PoisonModel(w2, rng.New(2)) }()
	wg.Wait()
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatal("colluding attackers added different noise")
		}
	}
	// The noise must be non-trivial.
	var nonzero int
	for _, v := range w1 {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 90 {
		t.Fatalf("noise looks degenerate: %d nonzero of 100", nonzero)
	}
}

func TestAdditiveNoiseDeterministicInSeed(t *testing.T) {
	w1 := make([]float32, 50)
	w2 := make([]float32, 50)
	NewAdditiveNoise(0.5, 7).PoisonModel(w1, rng.New(1))
	NewAdditiveNoise(0.5, 7).PoisonModel(w2, rng.New(9))
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatal("same seed produced different noise")
		}
	}
}

func TestLabelFlipPairs(t *testing.T) {
	r := rng.New(5)
	d := dataset.Generate(200, dataset.DefaultGenOptions(), r)
	a := NewLabelFlip()
	flipped, idx := a.PoisonData(d, dataset.Range(d.Len()))
	if len(idx) != d.Len() {
		t.Fatal("LabelFlip changed index list")
	}
	for i := range d.Labels {
		orig := d.Labels[i]
		got := flipped.Labels[i]
		switch orig {
		case 5:
			if got != 7 {
				t.Fatalf("label 5 -> %d", got)
			}
		case 7:
			if got != 5 {
				t.Fatalf("label 7 -> %d", got)
			}
		case 4:
			if got != 2 {
				t.Fatalf("label 4 -> %d", got)
			}
		case 2:
			if got != 4 {
				t.Fatalf("label 2 -> %d", got)
			}
		default:
			if got != orig {
				t.Fatalf("label %d -> %d, want unchanged", orig, got)
			}
		}
	}
	// Original dataset untouched.
	r2 := rng.New(5)
	ref := dataset.Generate(200, dataset.DefaultGenOptions(), r2)
	for i := range ref.Labels {
		if d.Labels[i] != ref.Labels[i] {
			t.Fatal("LabelFlip mutated the source dataset")
		}
	}
}

func TestLabelFlipOnlyTouchesGivenIndices(t *testing.T) {
	r := rng.New(6)
	d := dataset.Generate(100, dataset.DefaultGenOptions(), r)
	a := NewLabelFlip()
	// Poison only the first half.
	half := dataset.Range(50)
	flipped, _ := a.PoisonData(d, half)
	for i := 50; i < 100; i++ {
		if flipped.Labels[i] != d.Labels[i] {
			t.Fatalf("index %d outside the partition was flipped", i)
		}
	}
}

func TestLabelFlipSharesPixels(t *testing.T) {
	r := rng.New(7)
	d := dataset.Generate(10, dataset.DefaultGenOptions(), r)
	flipped, _ := NewLabelFlip().PoisonData(d, dataset.Range(10))
	if &flipped.X[0] != &d.X[0] {
		t.Fatal("LabelFlip copied pixel data unnecessarily")
	}
}

func TestAttackNames(t *testing.T) {
	cases := map[string]Attack{
		"none":           None{},
		"same-value":     NewSameValue(),
		"sign-flip":      NewSignFlip(),
		"additive-noise": NewAdditiveNoise(1, 1),
		"label-flip":     NewLabelFlip(),
		"scaled-boost":   NewScaledBoost(10),
		"alie":           NewALIE(),
		"ipm":            NewIPM(),
		"min-max":        NewMinMax(""),
		"decoder-forge":  NewDecoderForge(),
	}
	for want, a := range cases {
		if a.Name() != want {
			t.Fatalf("Name() = %q, want %q", a.Name(), want)
		}
	}
}

func TestScaledBoostWithGlobal(t *testing.T) {
	r := rng.New(8)
	a := NewScaledBoost(10)
	global := []float32{1, 1}
	w := []float32{1.1, 0.9} // deltas +0.1, -0.1
	a.PoisonModelWithGlobal(w, global, r)
	if d := w[0] - 2; d > 1e-5 || d < -1e-5 {
		t.Fatalf("scaled boost gave %v, want ~[2 0]", w)
	}
	if d := w[1]; d > 1e-5 || d < -1e-5 {
		t.Fatalf("scaled boost gave %v, want ~[2 0]", w)
	}
}

func TestScaledBoostPlainFallback(t *testing.T) {
	r := rng.New(9)
	a := NewScaledBoost(3)
	w := []float32{2, -1}
	a.PoisonModel(w, r)
	if w[0] != 6 || w[1] != -3 {
		t.Fatalf("plain scaling gave %v", w)
	}
}

func TestScaledBoostDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	NewScaledBoost(2).PoisonModelWithGlobal([]float32{1}, []float32{1, 2}, rng.New(1))
}
