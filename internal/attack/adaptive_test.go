package attack

import (
	"math"
	"testing"

	"fedguard/internal/dataset"
	"fedguard/internal/rng"
)

// Compile-time checks that the extension attacks implement the hooks
// the federation dispatches on.
var (
	_ CohortAware   = (*ALIE)(nil)
	_ CohortAware   = (*IPM)(nil)
	_ CohortAware   = (*MinMax)(nil)
	_ AGRTailored   = (*MinMax)(nil)
	_ CVAEDataAware = (*DecoderForge)(nil)
	_ GlobalAware   = (*ScaledBoost)(nil)
	_ Resettable    = (*AdditiveNoise)(nil)
)

func cloneDrafts(drafts [][]float32) [][]float32 {
	out := make([][]float32, len(drafts))
	for i, d := range drafts {
		out[i] = append([]float32(nil), d...)
	}
	return out
}

func TestALIECohort(t *testing.T) {
	a := NewALIE()
	drafts := [][]float32{
		{1, 0, 2},
		{3, 0, 4},
		{2, 0, 6},
	}
	// Per-coordinate mean and population std of the drafts above.
	mu := []float64{2, 0, 4}
	sd := []float64{math.Sqrt(2.0 / 3.0), 0, math.Sqrt(8.0 / 3.0)}
	a.PoisonCohort(drafts, []int{1, 2, 3}, rng.New(1))
	for k, d := range drafts {
		for i := range d {
			want := mu[i] - DefaultALIEZ*sd[i]
			if diff := math.Abs(float64(d[i]) - want); diff > 1e-6 {
				t.Fatalf("draft %d coord %d = %v, want %v", k, i, d[i], want)
			}
		}
	}
	// All colluders submit the same vector.
	for k := 1; k < len(drafts); k++ {
		for i := range drafts[k] {
			if drafts[k][i] != drafts[0][i] {
				t.Fatal("colluders submitted different vectors")
			}
		}
	}
}

func TestALIESoloFallbackIsNoop(t *testing.T) {
	a := NewALIE()
	w := []float32{1, -2, 3}
	a.PoisonModel(w, rng.New(1))
	if w[0] != 1 || w[1] != -2 || w[2] != 3 {
		t.Fatalf("solo ALIE modified the draft: %v", w)
	}
	// A cohort of one has zero spread: μ − z·0 = the draft itself.
	solo := [][]float32{{1, -2, 3}}
	a.PoisonCohort(solo, []int{0}, rng.New(1))
	if solo[0][0] != 1 || solo[0][1] != -2 || solo[0][2] != 3 {
		t.Fatalf("cohort-of-one ALIE moved the draft: %v", solo[0])
	}
}

func TestIPMCohort(t *testing.T) {
	a := &IPM{Epsilon: 2}
	drafts := [][]float32{
		{1, -2},
		{3, -4},
	}
	a.PoisonCohort(drafts, []int{0, 1}, rng.New(1))
	// μ = (2, -3); every draft becomes −2·μ = (−4, 6).
	for k, d := range drafts {
		if d[0] != -4 || d[1] != 6 {
			t.Fatalf("draft %d = %v, want [-4 6]", k, d)
		}
	}
}

func TestIPMSoloFallback(t *testing.T) {
	a := &IPM{Epsilon: 2}
	w := []float32{1, -2}
	a.PoisonModel(w, rng.New(1))
	if w[0] != -2 || w[1] != 4 {
		t.Fatalf("solo IPM gave %v, want [-2 4]", w)
	}
	// Default epsilon engages when unset.
	d := NewIPM()
	w2 := []float32{1}
	d.PoisonModel(w2, rng.New(1))
	if w2[0] != -DefaultIPMEpsilon {
		t.Fatalf("default epsilon gave %v", w2[0])
	}
}

func TestMinMaxDistanceCriterion(t *testing.T) {
	a := NewMinMax("FedAvg")
	drafts := [][]float32{
		{1, 1},
		{1.2, 0.9},
		{0.8, 1.1},
	}
	orig := cloneDrafts(drafts)
	a.PoisonCohort(drafts, []int{0, 1, 2}, rng.New(1))

	// All colluders submit the same crafted vector.
	m := drafts[0]
	for k := 1; k < len(drafts); k++ {
		for i := range drafts[k] {
			if drafts[k][i] != m[i] {
				t.Fatal("colluders submitted different vectors")
			}
		}
	}
	// The crafted vector satisfies the distance criterion against the
	// original drafts: no farther from any draft than they are from each
	// other.
	maxPair := maxPairwiseDistSq(orig)
	var worst float64
	for _, d := range orig {
		if dd := distSq(m, d); dd > worst {
			worst = dd
		}
	}
	if worst > maxPair*(1+1e-9) {
		t.Fatalf("crafted update violates the distance criterion: %v > %v", worst, maxPair)
	}
	// And it actually deviates from the mean (γ > 0).
	mu := cohortMean(orig)
	var dev float64
	for i, v := range mu {
		d := float64(m[i]) - v
		dev += d * d
	}
	if dev == 0 {
		t.Fatal("min-max found no surviving deviation on a spread cohort")
	}
}

func TestMinMaxKrumOracle(t *testing.T) {
	a := NewMinMax("Krum")
	drafts := [][]float32{
		{1, 1}, {1.1, 0.95}, {0.9, 1.05}, {1.05, 1.1},
	}
	orig := cloneDrafts(drafts)
	a.PoisonCohort(drafts, []int{0, 1, 2, 3}, rng.New(1))
	if !krumSurvives(drafts[0], orig) {
		t.Fatal("crafted update fails its own Krum oracle")
	}
}

func TestMinMaxTailorTo(t *testing.T) {
	a := NewMinMax("")
	a.TailorTo("Krum")
	if a.Strategy != "Krum" {
		t.Fatalf("TailorTo left Strategy = %q", a.Strategy)
	}
}

func TestMinMaxSoloFallbackIsNoop(t *testing.T) {
	a := NewMinMax("Krum")
	w := []float32{1, 2}
	a.PoisonModel(w, rng.New(1))
	if w[0] != 1 || w[1] != 2 {
		t.Fatalf("solo min-max modified the draft: %v", w)
	}
	solo := [][]float32{{1, 2}}
	a.PoisonCohort(solo, []int{0}, rng.New(1))
	if solo[0][0] != 1 || solo[0][1] != 2 {
		t.Fatalf("cohort-of-one min-max moved the draft: %v", solo[0])
	}
}

func TestMinMaxZeroMeanDegradesGracefully(t *testing.T) {
	// Symmetric drafts cancel to a zero mean; the attack must still pick
	// a direction and terminate.
	a := NewMinMax("")
	drafts := [][]float32{{1, -1}, {-1, 1}}
	a.PoisonCohort(drafts, []int{0, 1}, rng.New(1))
	for i := range drafts[0] {
		if drafts[0][i] != drafts[1][i] {
			t.Fatal("colluders diverged on a zero-mean cohort")
		}
	}
}

func TestMinMaxDeterministic(t *testing.T) {
	mk := func() [][]float32 {
		return [][]float32{{1, 1}, {1.3, 0.8}, {0.7, 1.2}}
	}
	d1, d2 := mk(), mk()
	NewMinMax("Krum").PoisonCohort(d1, []int{0, 1, 2}, rng.New(1))
	NewMinMax("Krum").PoisonCohort(d2, []int{0, 1, 2}, rng.New(99))
	for k := range d1 {
		for i := range d1[k] {
			if d1[k][i] != d2[k][i] {
				t.Fatal("min-max depends on the RNG stream")
			}
		}
	}
}

func TestDecoderForgeSplitViews(t *testing.T) {
	a := NewDecoderForge()
	if a.Name() != "decoder-forge" {
		t.Fatalf("Name() = %q", a.Name())
	}
	d := dataset.Generate(200, dataset.DefaultGenOptions(), rng.New(11))
	idx := dataset.Range(d.Len())

	// Classifier view: the targeted one-directional flip (5 → 7 only;
	// 7s stay 7s, everything else untouched).
	flipped, _ := a.PoisonData(d, idx)
	var flips int
	for i := range d.Labels {
		switch {
		case d.Labels[i] == 5:
			if flipped.Labels[i] != 7 {
				t.Fatalf("label 5 -> %d, want 7", flipped.Labels[i])
			}
			flips++
		case flipped.Labels[i] != d.Labels[i]:
			t.Fatalf("label %d -> %d, want untouched", d.Labels[i], flipped.Labels[i])
		}
	}
	if flips == 0 {
		t.Fatal("decoder-forge classifier view is unpoisoned (no 5s in the sample?)")
	}
	// Source dataset untouched, pixels shared.
	if &flipped.X[0] != &d.X[0] {
		t.Fatal("decoder-forge copied pixel data unnecessarily")
	}

	// CVAE view: bit-for-bit the clean partition, same dataset object.
	clean, cleanIdx := a.PoisonCVAEData(d, idx)
	if clean != d {
		t.Fatal("decoder-forge CVAE view is not the clean dataset")
	}
	if len(cleanIdx) != len(idx) {
		t.Fatal("decoder-forge CVAE view changed the index list")
	}

	// Model hook is identity: the poisoning lives in the training data.
	w := []float32{1, 2}
	a.PoisonModel(w, rng.New(1))
	if w[0] != 1 || w[1] != 2 {
		t.Fatalf("decoder-forge modified weights: %v", w)
	}
}

func TestAdditiveNoiseReset(t *testing.T) {
	a := NewAdditiveNoise(1.0, 42)
	w1 := make([]float32, 10)
	a.PoisonModel(w1, rng.New(1))

	// Without Reset, a different model dimension must panic loudly
	// rather than replay a mismatched vector.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("dimension change without Reset did not panic")
			}
		}()
		a.PoisonModel(make([]float32, 20), rng.New(1))
	}()

	// Reset clears the latch: the next call redraws at the new dimension.
	a.Reset()
	w2 := make([]float32, 20)
	a.PoisonModel(w2, rng.New(1))
	var nonzero int
	for _, v := range w2 {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 15 {
		t.Fatalf("post-Reset noise looks degenerate: %d nonzero of 20", nonzero)
	}

	// Reset + same dimension replays the same seeded vector (the latch is
	// state, not entropy).
	a.Reset()
	w3 := make([]float32, 10)
	a.PoisonModel(w3, rng.New(1))
	for i := range w1 {
		if w1[i] != w3[i] {
			t.Fatal("Reset changed the seeded noise vector")
		}
	}
}
