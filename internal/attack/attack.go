// Package attack implements the poisoning attacks of the paper's §IV-B
// threat evaluation — same-value and sign-flipping model attacks, the
// colluding additive-noise model attack, and the targeted label-flipping
// data attack — plus the benign no-op and an extension suite of
// defense-aware adversaries: model replacement (ScaledBoost), the
// colluding ALIE and inner-product-manipulation attacks, the
// AGR-tailored min-max attack, and the decoder-forging adaptive attack
// against FedGuard (see adaptive.go).
//
// An Attack has two hooks matching the two poisoning families:
// PoisonData rewrites the client's local training view before any
// training happens (data poisoning), and PoisonModel rewrites the trained
// parameter vector just before upload (model poisoning). A malicious
// client applies both; benign hooks are identity. Optional extension
// interfaces add capabilities: GlobalAware attacks see the round's
// starting global, CVAEDataAware attacks poison the classifier's and the
// CVAE's training views differently, and CohortAware attacks jointly
// rewrite the whole malicious cohort's drafts after local training.
package attack

import (
	"sync"

	"fedguard/internal/dataset"
	"fedguard/internal/rng"
)

// Attack is the behaviour of a malicious (or benign) client.
type Attack interface {
	// Name identifies the attack in reports.
	Name() string
	// PoisonData returns the dataset view the client trains on (both the
	// classifier and, for FedGuard clients, the CVAE). Implementations
	// must not mutate ds; they return ds unchanged or a poisoned copy.
	PoisonData(ds *dataset.Dataset, indices []int) (*dataset.Dataset, []int)
	// PoisonModel mutates the trained weight vector in place before
	// upload. r is the client's private RNG.
	PoisonModel(w []float32, r *rng.RNG)
}

// None is the benign client behaviour.
type None struct{}

// Name implements Attack.
func (None) Name() string { return "none" }

// PoisonData returns the input unchanged.
func (None) PoisonData(ds *dataset.Dataset, indices []int) (*dataset.Dataset, []int) {
	return ds, indices
}

// PoisonModel is a no-op.
func (None) PoisonModel(w []float32, r *rng.RNG) {}

// SameValue sets every uploaded weight to the constant C (paper: c = 1,
// w ← c·1⃗).
type SameValue struct {
	C float32
}

// NewSameValue returns the paper's configuration (c = 1).
func NewSameValue() *SameValue { return &SameValue{C: 1} }

// Name implements Attack.
func (a *SameValue) Name() string { return "same-value" }

// PoisonData returns the input unchanged (model attack only).
func (a *SameValue) PoisonData(ds *dataset.Dataset, indices []int) (*dataset.Dataset, []int) {
	return ds, indices
}

// PoisonModel overwrites every coordinate with C.
func (a *SameValue) PoisonModel(w []float32, r *rng.RNG) {
	for i := range w {
		w[i] = a.C
	}
}

// SignFlip negates every uploaded weight (w ← −w). The update magnitude
// is unchanged, which defeats norm-thresholding defenses.
type SignFlip struct{}

// NewSignFlip returns the sign-flipping attack.
func NewSignFlip() *SignFlip { return &SignFlip{} }

// Name implements Attack.
func (a *SignFlip) Name() string { return "sign-flip" }

// PoisonData returns the input unchanged (model attack only).
func (a *SignFlip) PoisonData(ds *dataset.Dataset, indices []int) (*dataset.Dataset, []int) {
	return ds, indices
}

// PoisonModel negates the vector in place.
func (a *SignFlip) PoisonModel(w []float32, r *rng.RNG) {
	for i := range w {
		w[i] = -w[i]
	}
}

// AdditiveNoise adds a Gaussian noise vector to the upload (w ← w + ε).
// Per the paper, all malicious clients collude on the *same* ε, so one
// AdditiveNoise instance must be shared by every malicious client; the
// noise vector is drawn once, on first use, from a dedicated stream.
//
// The latched vector makes an instance single-run: reusing it for a
// second run silently replays the first run's noise, and panics if the
// model dimension changed. Runners executing many runs (the experiment
// matrix) must construct a fresh instance per run — experiment.NewAttack
// does — or call Reset between runs.
type AdditiveNoise struct {
	Std float64

	seed uint64

	mu    sync.Mutex
	noise []float32
}

// NewAdditiveNoise builds the colluding noise attack. seed fixes the
// shared noise vector; std is the per-coordinate standard deviation.
func NewAdditiveNoise(std float64, seed uint64) *AdditiveNoise {
	return &AdditiveNoise{Std: std, seed: seed}
}

// Name implements Attack.
func (a *AdditiveNoise) Name() string { return "additive-noise" }

// PoisonData returns the input unchanged (model attack only).
func (a *AdditiveNoise) PoisonData(ds *dataset.Dataset, indices []int) (*dataset.Dataset, []int) {
	return ds, indices
}

// PoisonModel adds the shared noise vector, drawing it on first call.
// Safe for concurrent use by colluding clients.
func (a *AdditiveNoise) PoisonModel(w []float32, r *rng.RNG) {
	a.mu.Lock()
	if a.noise == nil {
		a.noise = make([]float32, len(w))
		rng.New(a.seed).FillNormal(a.noise, 0, a.Std)
	}
	noise := a.noise
	a.mu.Unlock()
	if len(noise) != len(w) {
		panic("attack: AdditiveNoise used with models of different sizes")
	}
	for i := range w {
		w[i] += noise[i]
	}
}

// Reset implements Resettable: it discards the latched noise vector so
// the next PoisonModel redraws it (from the same seed) at the then
// current model dimension. Call between runs when reusing an instance;
// constructing a fresh instance per run is equivalent.
func (a *AdditiveNoise) Reset() {
	a.mu.Lock()
	a.noise = nil
	a.mu.Unlock()
}

// Resettable is implemented by attacks that latch per-run state (the
// colluding AdditiveNoise vector). An instance reused across runs must
// be Reset between them; per-run construction — what experiment.NewAttack
// and the matrix runner do — satisfies the contract without it.
type Resettable interface {
	Attack
	// Reset discards all state latched since construction.
	Reset()
}

// LabelFlip is the targeted data-poisoning attack: training labels are
// swapped pairwise before local training. The paper flips 5↔7 and 4↔2.
// Both the local classifier and the local CVAE train on flipped data.
type LabelFlip struct {
	// Pairs lists label pairs to swap in both directions.
	Pairs [][2]int
}

// NewLabelFlip returns the paper's configuration (5↔7, 4↔2).
func NewLabelFlip() *LabelFlip {
	return &LabelFlip{Pairs: [][2]int{{5, 7}, {4, 2}}}
}

// Name implements Attack.
func (a *LabelFlip) Name() string { return "label-flip" }

// PoisonData returns a copy of ds with the configured label pairs
// swapped. Pixel data is shared structurally via the copy.
func (a *LabelFlip) PoisonData(ds *dataset.Dataset, indices []int) (*dataset.Dataset, []int) {
	flipped := &dataset.Dataset{
		X:      ds.X, // pixels unchanged; labels are remapped
		Labels: append([]int(nil), ds.Labels...),
		H:      ds.H,
		W:      ds.W,
	}
	remap := make(map[int]int, 2*len(a.Pairs))
	for _, p := range a.Pairs {
		remap[p[0]] = p[1]
		remap[p[1]] = p[0]
	}
	for _, i := range indices {
		if to, ok := remap[flipped.Labels[i]]; ok {
			flipped.Labels[i] = to
		}
	}
	return flipped, indices
}

// PoisonModel is a no-op (data attack only).
func (a *LabelFlip) PoisonModel(w []float32, r *rng.RNG) {}

// GlobalAware is an optional extension for attacks that need the round's
// starting global parameters (e.g. model replacement). Clients invoke it
// instead of PoisonModel when implemented.
type GlobalAware interface {
	Attack
	// PoisonModelWithGlobal mutates the trained weights w in place given
	// the global vector the round started from.
	PoisonModelWithGlobal(w, global []float32, r *rng.RNG)
}

// ScaledBoost is the model-replacement ("scaling") attack of Bagdasaryan
// et al.: the malicious client submits global + λ·(w − global), boosting
// its (arbitrarily biased) delta so one selected update can dominate a
// FedAvg round. With Lambda ≈ m it fully replaces the aggregate.
type ScaledBoost struct {
	Lambda float32
}

// NewScaledBoost returns the scaling attack with the given boost factor.
func NewScaledBoost(lambda float32) *ScaledBoost { return &ScaledBoost{Lambda: lambda} }

// Name implements Attack.
func (a *ScaledBoost) Name() string { return "scaled-boost" }

// PoisonData returns the input unchanged (model attack only).
func (a *ScaledBoost) PoisonData(ds *dataset.Dataset, indices []int) (*dataset.Dataset, []int) {
	return ds, indices
}

// PoisonModel falls back to plain scaling around zero when no global is
// available.
func (a *ScaledBoost) PoisonModel(w []float32, r *rng.RNG) {
	for i := range w {
		w[i] *= a.Lambda
	}
}

// PoisonModelWithGlobal implements GlobalAware.
func (a *ScaledBoost) PoisonModelWithGlobal(w, global []float32, r *rng.RNG) {
	if len(w) != len(global) {
		panic("attack: ScaledBoost dimension mismatch")
	}
	for i := range w {
		w[i] = global[i] + a.Lambda*(w[i]-global[i])
	}
}
