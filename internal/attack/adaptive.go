// Adaptive and colluding adversaries beyond the paper's §IV-B threat
// model: ALIE ("a little is enough", Baruch et al.), inner-product
// manipulation (Xie et al.), the AGR-tailored min-max attack (Shejwalkar
// & Houmansadr), and a decoder-forging adaptive attack aimed at
// FedGuard's synthetic-data audit specifically.
//
// The colluding attacks implement CohortAware: every malicious client
// first trains a benign-looking draft, then the cohort observes all
// co-conspirators' drafts and rewrites them jointly before upload. The
// in-process federation applies the hook at the round barrier; over a
// real network the colluders would coordinate out of band, which the
// networked deployment does not simulate — there each attack degrades to
// its documented solo fallback (the cohort-of-one limit of the same
// formula).
package attack

import (
	"math"

	"fedguard/internal/dataset"
	"fedguard/internal/rng"
)

// CohortAware is implemented by attacks whose malicious clients
// coordinate within a round. After every colluder has trained its
// benign-looking draft, PoisonCohort observes all drafts and rewrites
// them in place; the per-client PoisonModel hook is the solo fallback
// used when no coordination channel exists (single colluder sampled, or
// a networked client that cannot see its co-conspirators).
type CohortAware interface {
	Attack
	// PoisonCohort rewrites the cohort's drafts in place. drafts[i]
	// belongs to client ids[i]; callers must order both slices by
	// ascending client ID so the joint statistics — and therefore the
	// run — are deterministic. r is the cohort's shared per-round stream.
	PoisonCohort(drafts [][]float32, ids []int, r *rng.RNG)
}

// CVAEDataAware is implemented by attacks that poison the classifier's
// and the CVAE's training views differently. Clients train their CVAE on
// the view returned by PoisonCVAEData instead of the PoisonData view —
// the hook the decoder-forging adaptive attack needs to keep its
// synthetic votes clean while its classifier is poisoned.
type CVAEDataAware interface {
	Attack
	// PoisonCVAEData returns the dataset view the client's CVAE trains
	// on. Implementations must not mutate ds.
	PoisonCVAEData(ds *dataset.Dataset, indices []int) (*dataset.Dataset, []int)
}

// AGRTailored is implemented by attacks that adapt to the aggregation
// rule they face (the min-max attack). Runners that know the defense
// under evaluation — the experiment matrix does — call TailorTo with the
// strategy name before the run.
type AGRTailored interface {
	Attack
	// TailorTo points the attack at the named aggregation rule
	// ("Krum", "FedAvg", ...). Unknown names fall back to the
	// aggregator-agnostic distance criterion.
	TailorTo(strategy string)
}

// Defaults for the extension attacks, shared by the experiment and
// fednet registries.
const (
	// DefaultBoostLambda is ScaledBoost's boost factor: large enough that
	// a handful of colluders dominate a FedAvg round at m = 50.
	DefaultBoostLambda = 10
	// DefaultALIEZ is ALIE's deviation in benign standard deviations —
	// small enough to hide inside the cohort's empirical spread.
	DefaultALIEZ = 1.5
	// DefaultIPMEpsilon scales IPM's negated mean; > 1/fraction reverses
	// the aggregate's direction outright under FedAvg.
	DefaultIPMEpsilon = 5
)

// cohortMean returns the per-coordinate float64 mean of the drafts,
// accumulated in index order so the result is deterministic.
func cohortMean(drafts [][]float32) []float64 {
	mu := make([]float64, len(drafts[0]))
	for _, d := range drafts {
		for i, v := range d {
			mu[i] += float64(v)
		}
	}
	inv := 1 / float64(len(drafts))
	for i := range mu {
		mu[i] *= inv
	}
	return mu
}

// ALIE is the "a little is enough" attack (Baruch et al., NeurIPS 2019):
// the colluders estimate the benign update distribution from their own
// honestly trained drafts and all submit the same vector μ − z·σ — a
// deviation small enough to sit inside the empirical spread (defeating
// distance- and norm-based defenses) yet consistently biased, so it
// accumulates across rounds.
type ALIE struct {
	// Z is the deviation in per-coordinate standard deviations; 0 uses
	// DefaultALIEZ.
	Z float64
}

// NewALIE returns the attack with the default deviation.
func NewALIE() *ALIE { return &ALIE{} }

// Name implements Attack.
func (a *ALIE) Name() string { return "alie" }

// PoisonData returns the input unchanged (model attack only).
func (a *ALIE) PoisonData(ds *dataset.Dataset, indices []int) (*dataset.Dataset, []int) {
	return ds, indices
}

// PoisonModel is the solo fallback: a cohort of one has zero empirical
// standard deviation, so μ − z·σ collapses to the client's own draft.
func (a *ALIE) PoisonModel(w []float32, r *rng.RNG) {}

// PoisonCohort implements CohortAware: every draft becomes μ − z·σ of
// the cohort's drafts, per coordinate.
func (a *ALIE) PoisonCohort(drafts [][]float32, ids []int, r *rng.RNG) {
	if len(drafts) == 0 {
		return
	}
	z := a.Z
	if z <= 0 {
		z = DefaultALIEZ
	}
	mu := cohortMean(drafts)
	m := make([]float32, len(mu))
	inv := 1 / float64(len(drafts))
	for i := range mu {
		var varSum float64
		for _, d := range drafts {
			diff := float64(d[i]) - mu[i]
			varSum += diff * diff
		}
		m[i] = float32(mu[i] - z*math.Sqrt(varSum*inv))
	}
	for _, d := range drafts {
		copy(d, m)
	}
}

// IPM is the inner-product manipulation attack (Xie et al., UAI 2019):
// the colluders submit −ε times their estimate of the benign mean, so
// the aggregate's inner product with the true gradient direction turns
// negative and the global model walks backwards.
type IPM struct {
	// Epsilon scales the negated mean; 0 uses DefaultIPMEpsilon.
	Epsilon float64
}

// NewIPM returns the attack with the default scale.
func NewIPM() *IPM { return &IPM{} }

// Name implements Attack.
func (a *IPM) Name() string { return "ipm" }

// PoisonData returns the input unchanged (model attack only).
func (a *IPM) PoisonData(ds *dataset.Dataset, indices []int) (*dataset.Dataset, []int) {
	return ds, indices
}

func (a *IPM) epsilon() float64 {
	if a.Epsilon <= 0 {
		return DefaultIPMEpsilon
	}
	return a.Epsilon
}

// PoisonModel is the solo fallback: the cohort-of-one mean is the
// client's own draft, so the formula reduces to w ← −ε·w.
func (a *IPM) PoisonModel(w []float32, r *rng.RNG) {
	eps := float32(a.epsilon())
	for i := range w {
		w[i] = -eps * w[i]
	}
}

// PoisonCohort implements CohortAware: every draft becomes −ε·μ of the
// cohort's drafts.
func (a *IPM) PoisonCohort(drafts [][]float32, ids []int, r *rng.RNG) {
	if len(drafts) == 0 {
		return
	}
	eps := a.epsilon()
	mu := cohortMean(drafts)
	m := make([]float32, len(mu))
	for i := range mu {
		m[i] = float32(-eps * mu[i])
	}
	for _, d := range drafts {
		copy(d, m)
	}
}

// MinMax is the AGR-tailored min-max attack (Shejwalkar & Houmansadr,
// NDSS 2021): the colluders submit μ + γ·p, where p is the inverse unit
// mean direction and γ is the largest deviation — found by binary search
// — that still survives the target aggregation rule. "Surviving" is
// judged by a per-aggregator oracle: the Krum oracle requires the
// crafted update's Krum score to be no worse than the worst draft's; all
// other rules use the aggregator-agnostic distance criterion (the
// crafted update stays within the drafts' maximum pairwise distance).
type MinMax struct {
	// Strategy names the aggregation rule the attack is tailored to
	// ("Krum" engages the Krum-score oracle; anything else, including
	// empty, uses the distance criterion). Set directly or via TailorTo.
	Strategy string
	// Iters bounds the binary search; 0 uses 20.
	Iters int
	// GammaInit is the search's initial deviation; 0 derives it from the
	// drafts' spread.
	GammaInit float64
}

// NewMinMax returns the attack tailored to the named aggregation rule.
func NewMinMax(strategy string) *MinMax { return &MinMax{Strategy: strategy} }

// Name implements Attack.
func (a *MinMax) Name() string { return "min-max" }

// TailorTo implements AGRTailored.
func (a *MinMax) TailorTo(strategy string) { a.Strategy = strategy }

// PoisonData returns the input unchanged (model attack only).
func (a *MinMax) PoisonData(ds *dataset.Dataset, indices []int) (*dataset.Dataset, []int) {
	return ds, indices
}

// PoisonModel is the solo fallback: against a single draft the maximum
// pairwise distance is zero, so no deviation survives and the crafted
// update collapses to the draft itself.
func (a *MinMax) PoisonModel(w []float32, r *rng.RNG) {}

// PoisonCohort implements CohortAware: binary-search the largest
// surviving γ and submit μ + γ·p from every colluder.
func (a *MinMax) PoisonCohort(drafts [][]float32, ids []int, r *rng.RNG) {
	if len(drafts) < 2 {
		return // solo: nothing survives, keep the draft (see PoisonModel)
	}
	mu := cohortMean(drafts)
	// p: inverse unit mean — the direction that most opposes the benign
	// consensus. A zero mean degrades to a uniform negative direction.
	var norm float64
	for _, v := range mu {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	p := make([]float64, len(mu))
	if norm == 0 {
		c := -1 / math.Sqrt(float64(len(mu)))
		for i := range p {
			p[i] = c
		}
	} else {
		for i, v := range mu {
			p[i] = -v / norm
		}
	}

	maxPair := maxPairwiseDistSq(drafts)
	iters := a.Iters
	if iters <= 0 {
		iters = 20
	}
	gammaInit := a.GammaInit
	if gammaInit <= 0 {
		gammaInit = 4*math.Sqrt(maxPair) + 1
	}

	m := make([]float32, len(mu))
	craft := func(gamma float64) []float32 {
		for i := range mu {
			m[i] = float32(mu[i] + gamma*p[i])
		}
		return m
	}
	var best float64
	gamma, step := gammaInit, gammaInit/2
	for it := 0; it < iters; it++ {
		if a.survives(craft(gamma), drafts, maxPair) {
			if gamma > best {
				best = gamma
			}
			gamma += step
		} else {
			gamma -= step
			if gamma < 0 {
				gamma = 0
			}
		}
		step /= 2
	}
	final := craft(best)
	for _, d := range drafts {
		copy(d, final)
	}
}

// survives applies the configured oracle to a crafted update m.
func (a *MinMax) survives(m []float32, drafts [][]float32, maxPair float64) bool {
	switch a.Strategy {
	case "Krum", "krum":
		return krumSurvives(m, drafts)
	default:
		// Distance criterion: m is no farther from any draft than the
		// drafts are from each other.
		var worst float64
		for _, d := range drafts {
			if dd := distSq(m, d); dd > worst {
				worst = dd
			}
		}
		return worst <= maxPair
	}
}

// krumSurvives scores drafts ∪ {m} with a local Krum score (the sum of
// each candidate's ⌈n/2⌉ smallest squared distances to the others; the
// real scorer lives in package aggregate, which package attack cannot
// import without a cycle) and accepts m when it scores no worse than the
// worst draft — i.e. Krum has no reason to prefer discarding m.
func krumSurvives(m []float32, drafts [][]float32) bool {
	cand := make([][]float32, 0, len(drafts)+1)
	cand = append(cand, drafts...)
	cand = append(cand, m)
	n := len(cand)
	k := n / 2
	if k < 1 {
		k = 1
	}
	scores := make([]float64, n)
	dists := make([]float64, n-1)
	for i := range cand {
		dists = dists[:0]
		for j := range cand {
			if i != j {
				dists = append(dists, distSq(cand[i], cand[j]))
			}
		}
		// Partial selection sort of the k smallest distances: cohorts are
		// small (≤ m per round), so O(k·n) is fine and allocation-free.
		kk := k
		if kk > len(dists) {
			kk = len(dists)
		}
		var sum float64
		for s := 0; s < kk; s++ {
			min := s
			for t := s + 1; t < len(dists); t++ {
				if dists[t] < dists[min] {
					min = t
				}
			}
			dists[s], dists[min] = dists[min], dists[s]
			sum += dists[s]
		}
		scores[i] = sum
	}
	mScore := scores[n-1]
	var worstDraft float64
	for _, s := range scores[:n-1] {
		if s > worstDraft {
			worstDraft = s
		}
	}
	return mScore <= worstDraft
}

func distSq(a, b []float32) float64 {
	var sum float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		sum += d * d
	}
	return sum
}

func maxPairwiseDistSq(drafts [][]float32) float64 {
	var worst float64
	for i := range drafts {
		for j := i + 1; j < len(drafts); j++ {
			if d := distSq(drafts[i], drafts[j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// DecoderForge is the adaptive attack tailored to FedGuard: the
// malicious client trains its CVAE on the clean partition — so the
// decoder it uploads, its vote into the server's synthetic validation
// pool, is indistinguishable from a benign one — while its classifier
// trains on targeted-flipped data. The flip is deliberately minimal
// (one-directional, a single source class by default): the classifier's
// synthetic-set accuracy drops by at most one class's worth, small
// enough to hide inside the benign cohort's score spread, so FedGuard's
// mean-threshold audit excludes the forger far less reliably than it
// excludes the static attacks — while the targeted misclassification
// still accumulates in the global model.
//
// The clean decoder is what makes the small flip viable: the paper's
// symmetric label-flip corrupts the synthetic pool itself (the audit
// loses discrimination, excluding benign and malicious alike), whereas
// the forger keeps the pool trustworthy and relies on staying under its
// bar.
type DecoderForge struct {
	// Remap maps source label → target label, applied one-directionally
	// to the classifier's training view only.
	Remap map[int]int
}

// NewDecoderForge returns the attack with the paper's primary targeted
// pair, directed: 5 → 7.
func NewDecoderForge() *DecoderForge { return &DecoderForge{Remap: map[int]int{5: 7}} }

// Name implements Attack.
func (a *DecoderForge) Name() string { return "decoder-forge" }

// PoisonData rewrites the classifier's training labels through Remap.
// Pixel data is shared structurally, like LabelFlip.
func (a *DecoderForge) PoisonData(ds *dataset.Dataset, indices []int) (*dataset.Dataset, []int) {
	flipped := &dataset.Dataset{
		X:      ds.X,
		Labels: append([]int(nil), ds.Labels...),
		H:      ds.H,
		W:      ds.W,
	}
	for _, i := range indices {
		if to, ok := a.Remap[flipped.Labels[i]]; ok {
			flipped.Labels[i] = to
		}
	}
	return flipped, indices
}

// PoisonCVAEData implements CVAEDataAware: the CVAE trains on the clean
// partition, forging a benign-looking decoder.
func (a *DecoderForge) PoisonCVAEData(ds *dataset.Dataset, indices []int) (*dataset.Dataset, []int) {
	return ds, indices
}

// PoisonModel is a no-op (the poisoning happened in training data).
func (a *DecoderForge) PoisonModel(w []float32, r *rng.RNG) {}
