// Package aggregate implements the aggregation operators the paper
// evaluates FedGuard against — FedAvg (McMahan et al.), GeoMed (Chen et
// al., geometric median via Weiszfeld iteration), Krum (Blanchard et
// al.) — plus the coordinate-wise median, trimmed mean (Yin et al.) and
// norm-thresholding (Sun et al.) operators referenced in the related-work
// discussion. All satisfy fl.Strategy, and the pure vector forms are
// exported as Inner operators so FedGuard can swap its internal
// aggregator (paper §VI-C future work).
package aggregate

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"fedguard/internal/fl"
	"fedguard/internal/tensor"
)

// ErrNoUpdates is returned when a round has nothing to aggregate.
var ErrNoUpdates = errors.New("aggregate: no updates")

// Inner is a pure aggregation operator over a set of updates. FedGuard
// composes one of these behind its selective filter.
type Inner func(updates []fl.Update) ([]float32, error)

// WeightedMean is the FedAvg operator: the sample-count-weighted mean of
// the update vectors.
func WeightedMean(updates []fl.Update) ([]float32, error) {
	if len(updates) == 0 {
		return nil, ErrNoUpdates
	}
	dim := len(updates[0].Weights)
	acc := make([]float64, dim)
	var total float64
	for _, u := range updates {
		if len(u.Weights) != dim {
			return nil, fmt.Errorf("aggregate: update from client %d has %d parameters, want %d",
				u.ClientID, len(u.Weights), dim)
		}
		w := float64(u.NumSamples)
		if w <= 0 {
			w = 1
		}
		total += w
		for i, v := range u.Weights {
			acc[i] += w * float64(v)
		}
	}
	out := make([]float32, dim)
	for i := range out {
		out[i] = float32(acc[i] / total)
	}
	return out, nil
}

// GeometricMedian computes the geometric median of the update vectors by
// Weiszfeld fixed-point iteration, which minimizes the sum of Euclidean
// distances to the inputs and is robust to a minority of outliers.
func GeometricMedian(updates []fl.Update) ([]float32, error) {
	if len(updates) == 0 {
		return nil, ErrNoUpdates
	}
	dim := len(updates[0].Weights)
	// Start from the arithmetic mean.
	cur := make([]float64, dim)
	for _, u := range updates {
		for i, v := range u.Weights {
			cur[i] += float64(v) / float64(len(updates))
		}
	}
	const (
		maxIter = 50
		tol     = 1e-6
		epsilon = 1e-10
	)
	next := make([]float64, dim)
	for iter := 0; iter < maxIter; iter++ {
		for i := range next {
			next[i] = 0
		}
		var wSum float64
		for _, u := range updates {
			var d float64
			for i, v := range u.Weights {
				diff := float64(v) - cur[i]
				d += diff * diff
			}
			d = math.Sqrt(d)
			if d < epsilon {
				d = epsilon
			}
			w := 1 / d
			wSum += w
			for i, v := range u.Weights {
				next[i] += w * float64(v)
			}
		}
		var shift float64
		for i := range next {
			next[i] /= wSum
			diff := next[i] - cur[i]
			shift += diff * diff
		}
		cur, next = next, cur
		if math.Sqrt(shift) < tol {
			break
		}
	}
	out := make([]float32, dim)
	for i := range out {
		out[i] = float32(cur[i])
	}
	return out, nil
}

// KrumSelect returns the index of the update with the best Krum score:
// the sum of squared distances to its n−f−2 nearest neighbours, with f
// the assumed Byzantine count. Blanchard et al., NeurIPS 2017.
func KrumSelect(updates []fl.Update, f int) (int, error) {
	scores, err := krumScores(updates, f)
	if err != nil {
		return -1, err
	}
	best, bestScore := 0, math.Inf(1)
	for i, s := range scores {
		if s < bestScore {
			best, bestScore = i, s
		}
	}
	return best, nil
}

// Krum returns the single best-scoring update vector.
func Krum(updates []fl.Update, f int) ([]float32, error) {
	idx, err := KrumSelect(updates, f)
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(updates[idx].Weights))
	copy(out, updates[idx].Weights)
	return out, nil
}

// CoordinateMedian returns the coordinate-wise median of the update
// vectors (Yin et al., ICML 2018).
func CoordinateMedian(updates []fl.Update) ([]float32, error) {
	if len(updates) == 0 {
		return nil, ErrNoUpdates
	}
	n := len(updates)
	dim := len(updates[0].Weights)
	out := make([]float32, dim)
	col := make([]float32, n)
	for i := 0; i < dim; i++ {
		for j, u := range updates {
			col[j] = u.Weights[i]
		}
		sort.Slice(col, func(a, b int) bool { return col[a] < col[b] })
		if n%2 == 1 {
			out[i] = col[n/2]
		} else {
			out[i] = (col[n/2-1] + col[n/2]) / 2
		}
	}
	return out, nil
}

// TrimmedMean returns the coordinate-wise mean after removing the
// trim largest and trim smallest values per coordinate (Yin et al.).
func TrimmedMean(updates []fl.Update, trim int) ([]float32, error) {
	n := len(updates)
	if n == 0 {
		return nil, ErrNoUpdates
	}
	if 2*trim >= n {
		return nil, fmt.Errorf("aggregate: trim %d too large for %d updates", trim, n)
	}
	dim := len(updates[0].Weights)
	out := make([]float32, dim)
	col := make([]float32, n)
	for i := 0; i < dim; i++ {
		for j, u := range updates {
			col[j] = u.Weights[i]
		}
		sort.Slice(col, func(a, b int) bool { return col[a] < col[b] })
		var acc float64
		for _, v := range col[trim : n-trim] {
			acc += float64(v)
		}
		out[i] = float32(acc / float64(n-2*trim))
	}
	return out, nil
}

// NormClip rescales every update whose L2 norm exceeds bound down to the
// bound (Sun et al., "Can you really backdoor federated learning?") and
// then applies FedAvg. It returns the clipped copy, leaving inputs
// untouched.
func NormClip(updates []fl.Update, bound float64) ([]fl.Update, error) {
	if len(updates) == 0 {
		return nil, ErrNoUpdates
	}
	out := make([]fl.Update, len(updates))
	for i, u := range updates {
		norm := float64(tensor.Norm2Slice(u.Weights))
		cp := u
		if norm > bound && norm > 0 {
			scaled := make([]float32, len(u.Weights))
			s := float32(bound / norm)
			for j, v := range u.Weights {
				scaled[j] = v * s
			}
			cp.Weights = scaled
		}
		out[i] = cp
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MultiKrum returns the FedAvg of the k updates with the best Krum
// scores (Blanchard et al.'s m-Krum variant): more robust than plain
// averaging, less lossy than selecting a single update.
func MultiKrum(updates []fl.Update, f, k int) ([]float32, error) {
	n := len(updates)
	if n == 0 {
		return nil, ErrNoUpdates
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("aggregate: MultiKrum k=%d with %d updates", k, n)
	}
	scores, err := krumScores(updates, f)
	if err != nil {
		return nil, err
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
	selected := make([]fl.Update, k)
	for i := 0; i < k; i++ {
		selected[i] = updates[order[i]]
	}
	return WeightedMean(selected)
}

// krumScores returns every update's Krum score (sum of squared distances
// to its n−f−2 nearest neighbours).
func krumScores(updates []fl.Update, f int) ([]float64, error) {
	n := len(updates)
	if n == 0 {
		return nil, ErrNoUpdates
	}
	k := n - f - 2
	if k < 1 {
		k = 1
	}
	scores := make([]float64, n)
	if n == 1 {
		return scores, nil
	}
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := float64(tensor.DistSlice(updates[i].Weights, updates[j].Weights))
			d2[i][j] = d * d
			d2[j][i] = d * d
		}
	}
	dists := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		dists = dists[:0]
		for j := 0; j < n; j++ {
			if j != i {
				dists = append(dists, d2[i][j])
			}
		}
		sort.Float64s(dists)
		for _, d := range dists[:min(k, len(dists))] {
			scores[i] += d
		}
	}
	return scores, nil
}
