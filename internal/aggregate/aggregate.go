// Package aggregate implements the aggregation operators the paper
// evaluates FedGuard against — FedAvg (McMahan et al.), GeoMed (Chen et
// al., geometric median via Weiszfeld iteration), Krum (Blanchard et
// al.) — plus the coordinate-wise median, trimmed mean (Yin et al.) and
// norm-thresholding (Sun et al.) operators referenced in the related-work
// discussion. All satisfy fl.Strategy, and the pure vector forms are
// exported as Inner operators so FedGuard can swap its internal
// aggregator (paper §VI-C future work).
//
// Every operator runs on the deterministic blocked-reduction kernels in
// internal/tensor: distances and weighted sums accumulate over fixed
// coordinate blocks in a fixed lane order, and parallelism only splits
// independently owned outputs across workers, so results are
// bit-identical at any tensor.SetAggWorkers setting.
package aggregate

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"

	"fedguard/internal/fl"
	"fedguard/internal/tensor"
)

// ErrNoUpdates is returned when a round has nothing to aggregate.
var ErrNoUpdates = errors.New("aggregate: no updates")

// Inner is a pure aggregation operator over a set of updates. FedGuard
// composes one of these behind its selective filter.
type Inner func(updates []fl.Update) ([]float32, error)

// checkUpdates validates that there is at least one update and that all
// updates share a parameter dimension, returning that dimension. Every
// operator calls it first, so a ragged cohort is an error everywhere
// rather than an index panic in some paths.
func checkUpdates(updates []fl.Update) (int, error) {
	if len(updates) == 0 {
		return 0, ErrNoUpdates
	}
	dim := len(updates[0].Weights)
	for _, u := range updates {
		if len(u.Weights) != dim {
			return 0, fmt.Errorf("aggregate: update from client %d has %d parameters, want %d",
				u.ClientID, len(u.Weights), dim)
		}
	}
	return dim, nil
}

// rowsOf extracts the weight vectors for the tensor kernels.
func rowsOf(updates []fl.Update) [][]float32 {
	rows := make([][]float32, len(updates))
	for i, u := range updates {
		rows[i] = u.Weights
	}
	return rows
}

// WeightedMean is the FedAvg operator: the sample-count-weighted mean of
// the update vectors. Updates reporting zero (or negative) sample counts
// contribute with weight 1 rather than vanishing.
func WeightedMean(updates []fl.Update) ([]float32, error) {
	dim, err := checkUpdates(updates)
	if err != nil {
		return nil, err
	}
	n := len(updates)
	w := tensor.GetF64(n)
	defer tensor.PutF64(w)
	var total float64
	for i, u := range updates {
		wi := float64(u.NumSamples)
		if wi <= 0 {
			wi = 1
		}
		w[i] = wi
		total += wi
	}
	acc := tensor.GetF64(dim)
	defer tensor.PutF64(acc)
	tensor.WeightedSumInto(acc, rowsOf(updates), w)
	out := make([]float32, dim)
	tensor.ScaleF64To32(out, acc, 1/total)
	return out, nil
}

// Weiszfeld iteration constants. The convergence tolerance is relative:
// the iteration stops when the step is tol·(1 + ‖ψ‖), so convergence is
// detected at the same iterate quality whether the weights live at 1e0
// or 1e7 — an absolute threshold can never fire above float64 noise at
// large magnitudes and silently burns all maxIter sweeps.
const (
	geoMedMaxIter = 50
	geoMedTol     = 1e-7
	geoMedEps     = 1e-10
)

// GeometricMedian computes the geometric median of the update vectors by
// Weiszfeld fixed-point iteration, which minimizes the sum of Euclidean
// distances to the inputs and is robust to a minority of outliers.
func GeometricMedian(updates []fl.Update) ([]float32, error) {
	out, _, err := geometricMedian(updates)
	return out, err
}

// geometricMedian additionally reports the number of Weiszfeld sweeps
// taken, so tests can pin the scale-aware convergence behaviour.
func geometricMedian(updates []fl.Update) ([]float32, int, error) {
	dim, err := checkUpdates(updates)
	if err != nil {
		return nil, 0, err
	}
	rows := rowsOf(updates)
	m := len(rows)
	cur := tensor.GetF64(dim)
	next := tensor.GetF64(dim)
	w := tensor.GetF64(m)
	d2 := tensor.GetF64(m)
	defer func() {
		tensor.PutF64(cur)
		tensor.PutF64(next)
		tensor.PutF64(w)
		tensor.PutF64(d2)
	}()
	// Start from the unweighted mean.
	for j := range w {
		w[j] = 1 / float64(m)
	}
	tensor.WeightedSumInto(cur, rows, w)
	iters := 0
	for iter := 0; iter < geoMedMaxIter; iter++ {
		iters++
		tensor.DistSqManyInto(d2, cur, rows)
		var wSum float64
		for j, v := range d2 {
			d := math.Sqrt(v)
			if d < geoMedEps {
				d = geoMedEps
			}
			w[j] = 1 / d
			wSum += w[j]
		}
		tensor.WeightedSumInto(next, rows, w)
		inv := 1 / wSum
		var shift, norm float64
		for i, v := range next {
			v *= inv
			next[i] = v
			d := v - cur[i]
			shift += d * d
			norm += v * v
		}
		cur, next = next, cur
		if math.Sqrt(shift) <= geoMedTol*(1+math.Sqrt(norm)) {
			break
		}
	}
	out := make([]float32, dim)
	tensor.ScaleF64To32(out, cur, 1)
	return out, iters, nil
}

// KrumSelect returns the index of the update with the best Krum score:
// the sum of squared distances to its n−f−2 nearest neighbours, with f
// the assumed Byzantine count. Blanchard et al., NeurIPS 2017.
func KrumSelect(updates []fl.Update, f int) (int, error) {
	scores, err := krumScores(updates, f)
	if err != nil {
		return -1, err
	}
	best, bestScore := 0, math.Inf(1)
	for i, s := range scores {
		if s < bestScore {
			best, bestScore = i, s
		}
	}
	return best, nil
}

// Krum returns the single best-scoring update vector.
func Krum(updates []fl.Update, f int) ([]float32, error) {
	idx, err := KrumSelect(updates, f)
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(updates[idx].Weights))
	copy(out, updates[idx].Weights)
	return out, nil
}

// CoordinateMedian returns the coordinate-wise median of the update
// vectors (Yin et al., ICML 2018). Coordinates are independent, so the
// kernel layer splits them across workers; each worker selects into
// pooled column scratch, allocation-free in steady state. Selection
// replaces the previous full sort per coordinate — the k-th order
// statistic is the same value whichever algorithm finds it.
func CoordinateMedian(updates []fl.Update) ([]float32, error) {
	dim, err := checkUpdates(updates)
	if err != nil {
		return nil, err
	}
	n := len(updates)
	rows := rowsOf(updates)
	out := make([]float32, dim)
	tensor.ParallelBlocks(dim, func(lo, hi int) {
		col := tensor.GetF32(n)
		defer tensor.PutF32(col)
		for i := lo; i < hi; i++ {
			for j, row := range rows {
				col[j] = row[i]
			}
			hiMid := quickselect(col, n/2)
			if n%2 == 1 {
				out[i] = hiMid
			} else {
				// Lower middle is the max of the partition left of n/2.
				loMid := col[0]
				for _, v := range col[1 : n/2] {
					if v > loMid {
						loMid = v
					}
				}
				out[i] = (loMid + hiMid) / 2
			}
		}
	})
	return out, nil
}

// quickselect partitions a in place so a[k] holds the k-th smallest
// element (everything left of k is ≤ a[k], everything right is ≥) and
// returns it. Pivots are picked by index, so the result — and the final
// permutation — is a pure function of the input.
func quickselect(a []float32, k int) float32 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		p := a[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return a[k]
		}
	}
	return a[lo]
}

// TrimmedMean returns the coordinate-wise mean after removing the
// trim largest and trim smallest values per coordinate (Yin et al.).
// 2*trim must leave at least one value per coordinate.
func TrimmedMean(updates []fl.Update, trim int) ([]float32, error) {
	dim, err := checkUpdates(updates)
	if err != nil {
		return nil, err
	}
	n := len(updates)
	if trim < 0 || 2*trim >= n {
		return nil, fmt.Errorf("aggregate: trim %d too large for %d updates", trim, n)
	}
	rows := rowsOf(updates)
	out := make([]float32, dim)
	tensor.ParallelBlocks(dim, func(lo, hi int) {
		col := tensor.GetF32(n)
		defer tensor.PutF32(col)
		for i := lo; i < hi; i++ {
			for j, row := range rows {
				col[j] = row[i]
			}
			slices.Sort(col)
			var acc float64
			for _, v := range col[trim : n-trim] {
				acc += float64(v)
			}
			out[i] = float32(acc / float64(n-2*trim))
		}
	})
	return out, nil
}

// NormClip rescales every update whose L2 norm exceeds bound down to the
// bound (Sun et al., "Can you really backdoor federated learning?") and
// then applies FedAvg. It returns the clipped copy, leaving inputs
// untouched.
func NormClip(updates []fl.Update, bound float64) ([]fl.Update, error) {
	if _, err := checkUpdates(updates); err != nil {
		return nil, err
	}
	out := make([]fl.Update, len(updates))
	tensor.ParallelBlocks(len(updates), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u := updates[i]
			norm := math.Sqrt(tensor.SumSqBlocked(u.Weights))
			cp := u
			if norm > bound && norm > 0 {
				scaled := make([]float32, len(u.Weights))
				tensor.ScaleInto(scaled, u.Weights, float32(bound/norm))
				cp.Weights = scaled
			}
			out[i] = cp
		}
	})
	return out, nil
}

// MultiKrum returns the FedAvg of the k updates with the best Krum
// scores (Blanchard et al.'s m-Krum variant): more robust than plain
// averaging, less lossy than selecting a single update.
func MultiKrum(updates []fl.Update, f, k int) ([]float32, error) {
	n := len(updates)
	if n == 0 {
		return nil, ErrNoUpdates
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("aggregate: MultiKrum k=%d with %d updates", k, n)
	}
	scores, err := krumScores(updates, f)
	if err != nil {
		return nil, err
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
	selected := make([]fl.Update, k)
	for i := 0; i < k; i++ {
		selected[i] = updates[order[i]]
	}
	return WeightedMean(selected)
}

// KrumScores returns every update's Krum score (sum of squared distances
// to its n−f−2 nearest neighbours). Exported so callers can rank updates
// without committing to a selection rule (FedReview-style rank-and-reject).
func KrumScores(updates []fl.Update, f int) ([]float64, error) {
	return krumScores(updates, f)
}

// krumScores returns every update's Krum score. The pairwise distance
// matrix comes from the cache-tiled kernel; per-update neighbour sorting
// then parallelizes over rows with pooled scratch.
func krumScores(updates []fl.Update, f int) ([]float64, error) {
	if _, err := checkUpdates(updates); err != nil {
		return nil, err
	}
	n := len(updates)
	k := n - f - 2
	if k < 1 {
		k = 1
	}
	scores := make([]float64, n)
	if n == 1 {
		return scores, nil
	}
	d2 := tensor.GetF64(n * n)
	defer tensor.PutF64(d2)
	tensor.PairwiseDistSq(d2, rowsOf(updates))
	kk := min(k, n-1)
	tensor.ParallelBlocks(n, func(lo, hi int) {
		dists := tensor.GetF64(n - 1)
		defer tensor.PutF64(dists)
		for i := lo; i < hi; i++ {
			idx := 0
			for j := 0; j < n; j++ {
				if j != i {
					dists[idx] = d2[i*n+j]
					idx++
				}
			}
			slices.Sort(dists)
			var s float64
			for _, d := range dists[:kk] {
				s += d
			}
			scores[i] = s
		}
	})
	return scores, nil
}
