package aggregate

import (
	"math"

	"fedguard/internal/fl"
	"fedguard/internal/tensor"
)

// FedAvg is the undefended baseline strategy (McMahan et al.).
type FedAvg struct{}

// NewFedAvg returns the FedAvg strategy.
func NewFedAvg() *FedAvg { return &FedAvg{} }

// Name implements fl.Strategy.
func (s *FedAvg) Name() string { return "FedAvg" }

// NeedsDecoders implements fl.Strategy.
func (s *FedAvg) NeedsDecoders() bool { return false }

// Aggregate implements fl.Strategy by weighted averaging.
func (s *FedAvg) Aggregate(ctx *fl.RoundContext) ([]float32, error) {
	return WeightedMean(ctx.Updates)
}

// GeoMed aggregates with the geometric median (Chen et al.).
type GeoMed struct{}

// NewGeoMed returns the GeoMed strategy.
func NewGeoMed() *GeoMed { return &GeoMed{} }

// Name implements fl.Strategy.
func (s *GeoMed) Name() string { return "GeoMed" }

// NeedsDecoders implements fl.Strategy.
func (s *GeoMed) NeedsDecoders() bool { return false }

// Aggregate implements fl.Strategy.
func (s *GeoMed) Aggregate(ctx *fl.RoundContext) ([]float32, error) {
	return GeometricMedian(ctx.Updates)
}

// KrumStrategy selects the single update closest to its neighbours
// (Blanchard et al.). F is the assumed Byzantine count per round; if
// zero, it defaults to (m−1)/2, the largest tolerable count.
type KrumStrategy struct {
	F int
}

// NewKrum returns the Krum strategy with the default Byzantine
// assumption.
func NewKrum() *KrumStrategy { return &KrumStrategy{} }

// Name implements fl.Strategy.
func (s *KrumStrategy) Name() string { return "Krum" }

// NeedsDecoders implements fl.Strategy.
func (s *KrumStrategy) NeedsDecoders() bool { return false }

// Aggregate implements fl.Strategy.
func (s *KrumStrategy) Aggregate(ctx *fl.RoundContext) ([]float32, error) {
	f := s.F
	if f == 0 {
		f = (len(ctx.Updates) - 1) / 2
	}
	idx, err := KrumSelect(ctx.Updates, f)
	if err != nil {
		return nil, err
	}
	ctx.Report[fl.ReportKrumSelected] = float64(ctx.Updates[idx].ClientID)
	out := make([]float32, len(ctx.Updates[idx].Weights))
	copy(out, ctx.Updates[idx].Weights)
	return out, nil
}

// MedianStrategy aggregates with the coordinate-wise median.
type MedianStrategy struct{}

// NewMedian returns the coordinate-wise-median strategy.
func NewMedian() *MedianStrategy { return &MedianStrategy{} }

// Name implements fl.Strategy.
func (s *MedianStrategy) Name() string { return "Median" }

// NeedsDecoders implements fl.Strategy.
func (s *MedianStrategy) NeedsDecoders() bool { return false }

// Aggregate implements fl.Strategy.
func (s *MedianStrategy) Aggregate(ctx *fl.RoundContext) ([]float32, error) {
	return CoordinateMedian(ctx.Updates)
}

// TrimmedMeanStrategy aggregates with the coordinate-wise trimmed mean,
// trimming Trim values at each extreme (default: 25% of the updates).
type TrimmedMeanStrategy struct {
	Trim int
}

// NewTrimmedMean returns the trimmed-mean strategy with the default trim.
func NewTrimmedMean() *TrimmedMeanStrategy { return &TrimmedMeanStrategy{} }

// Name implements fl.Strategy.
func (s *TrimmedMeanStrategy) Name() string { return "TrimmedMean" }

// NeedsDecoders implements fl.Strategy.
func (s *TrimmedMeanStrategy) NeedsDecoders() bool { return false }

// Aggregate implements fl.Strategy.
func (s *TrimmedMeanStrategy) Aggregate(ctx *fl.RoundContext) ([]float32, error) {
	trim := s.Trim
	if trim == 0 {
		trim = len(ctx.Updates) / 4
	}
	if 2*trim >= len(ctx.Updates) {
		trim = (len(ctx.Updates) - 1) / 2
	}
	return TrimmedMean(ctx.Updates, trim)
}

// NormClipStrategy clips update norms to Bound before FedAvg (Sun et
// al.). A Bound of 0 auto-calibrates to the median update norm of the
// round.
type NormClipStrategy struct {
	Bound float64
}

// NewNormClip returns the norm-thresholding strategy with
// auto-calibration.
func NewNormClip() *NormClipStrategy { return &NormClipStrategy{} }

// Name implements fl.Strategy.
func (s *NormClipStrategy) Name() string { return "NormClip" }

// NeedsDecoders implements fl.Strategy.
func (s *NormClipStrategy) NeedsDecoders() bool { return false }

// Aggregate implements fl.Strategy.
func (s *NormClipStrategy) Aggregate(ctx *fl.RoundContext) ([]float32, error) {
	bound := s.Bound
	if bound == 0 {
		med, err := medianNorm(ctx.Updates)
		if err != nil {
			return nil, err
		}
		bound = med
	}
	clipped, err := NormClip(ctx.Updates, bound)
	if err != nil {
		return nil, err
	}
	return WeightedMean(clipped)
}

func medianNorm(updates []fl.Update) (float64, error) {
	if len(updates) == 0 {
		return 0, ErrNoUpdates
	}
	norms := make([]float64, len(updates))
	tensor.ParallelBlocks(len(updates), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			norms[i] = tensor.SumSqBlocked(updates[i].Weights)
		}
	})
	// Selection by sorting; m is small.
	for i := 1; i < len(norms); i++ {
		for j := i; j > 0 && norms[j] < norms[j-1]; j-- {
			norms[j], norms[j-1] = norms[j-1], norms[j]
		}
	}
	mid := norms[len(norms)/2]
	return math.Sqrt(mid), nil
}
