package aggregate

import (
	"math"
	"testing"

	"fedguard/internal/fl"
	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

func kernelUpdates(seed uint64, n, dim int) []fl.Update {
	r := rng.New(seed)
	ups := make([]fl.Update, n)
	for i := range ups {
		w := make([]float32, dim)
		r.FillNormal(w, 0, 0.5)
		ups[i] = fl.Update{ClientID: i, NumSamples: 50 + i, Weights: w}
	}
	return ups
}

// Every operator must reject a ragged cohort with an error instead of
// indexing out of bounds.
func TestAllOpsRejectMismatchedDims(t *testing.T) {
	ragged := []fl.Update{upd(0, 1, 1, 2, 3), upd(1, 1, 1, 2)}
	ops := map[string]func() error{
		"WeightedMean":     func() error { _, err := WeightedMean(ragged); return err },
		"GeometricMedian":  func() error { _, err := GeometricMedian(ragged); return err },
		"CoordinateMedian": func() error { _, err := CoordinateMedian(ragged); return err },
		"TrimmedMean":      func() error { _, err := TrimmedMean(ragged, 0); return err },
		"NormClip":         func() error { _, err := NormClip(ragged, 1); return err },
		"KrumScores":       func() error { _, err := KrumScores(ragged, 0); return err },
		"Krum":             func() error { _, err := Krum(ragged, 0); return err },
		"MultiKrum":        func() error { _, err := MultiKrum(ragged, 0, 1); return err },
	}
	for name, op := range ops {
		if err := op(); err == nil {
			t.Errorf("%s accepted mismatched update dimensions", name)
		}
	}
}

// Zero- and negative-sample updates contribute with weight 1 instead of
// vanishing (or poisoning the total with zeros).
func TestWeightedMeanZeroSampleCounts(t *testing.T) {
	out, err := WeightedMean([]fl.Update{
		upd(0, 0, 2),  // weight 1
		upd(1, -5, 4), // weight 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 3 {
		t.Fatalf("mean with zero sample counts = %v, want 3", out[0])
	}
}

func TestTrimmedMeanBoundary(t *testing.T) {
	four := []fl.Update{upd(0, 1, 1), upd(1, 1, 2), upd(2, 1, 3), upd(3, 1, 4)}
	if _, err := TrimmedMean(four, 2); err == nil {
		t.Fatal("TrimmedMean accepted 2*trim == len(updates)")
	}
	if _, err := TrimmedMean(four, -1); err == nil {
		t.Fatal("TrimmedMean accepted negative trim")
	}
	out, err := TrimmedMean(four, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2.5 {
		t.Fatalf("TrimmedMean(trim=1) = %v, want 2.5", out[0])
	}
}

// Regression for the scale-aware Weiszfeld tolerance: at 1e7-magnitude
// weights, float64 noise sits around 1e-2 absolute, so the old absolute
// tol=1e-6 check could never fire and every call burned all 50 sweeps.
// The relative check must converge early and still land on the median.
func TestGeometricMedianLargeMagnitude(t *testing.T) {
	const scale = 1e7
	r := rng.New(11)
	ups := make([]fl.Update, 9)
	for i := range ups {
		w := make([]float32, 64)
		r.FillNormal(w, scale, scale/1000)
		ups[i] = fl.Update{ClientID: i, NumSamples: 1, Weights: w}
	}
	out, iters, err := geometricMedian(ups)
	if err != nil {
		t.Fatal(err)
	}
	if iters >= geoMedMaxIter {
		t.Fatalf("GeoMed at scale %g used all %d iterations: tolerance is not scale-aware", scale, iters)
	}
	for i, v := range out {
		if math.Abs(float64(v)-scale) > scale/100 {
			t.Fatalf("GeoMed[%d] = %g, want ≈ %g", i, v, scale)
		}
	}
	// Small-magnitude inputs must converge early too (sanity that the
	// relative form didn't loosen the small-scale behaviour).
	_, iters, err = geometricMedian(kernelUpdates(12, 9, 64))
	if err != nil {
		t.Fatal(err)
	}
	if iters >= geoMedMaxIter {
		t.Fatalf("GeoMed at unit scale used all %d iterations", iters)
	}
}

// The kernel determinism contract at the operator level: byte-identical
// outputs across worker counts, including dimensions that exercise
// partial blocks and partial 16-lanes.
func TestOperatorsDeterministicAcrossWorkers(t *testing.T) {
	defer tensor.SetAggWorkers(0)
	ups := kernelUpdates(13, 12, tensor.ReduceBlock+37)
	type result struct {
		name string
		out  []float32
	}
	runAll := func() []result {
		var rs []result
		wm, err := WeightedMean(ups)
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, result{"WeightedMean", wm})
		gm, err := GeometricMedian(ups)
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, result{"GeometricMedian", gm})
		km, err := Krum(ups, 3)
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, result{"Krum", km})
		cm, err := CoordinateMedian(ups)
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, result{"CoordinateMedian", cm})
		tm, err := TrimmedMean(ups, 2)
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, result{"TrimmedMean", tm})
		mk, err := MultiKrum(ups, 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, result{"MultiKrum", mk})
		return rs
	}
	tensor.SetAggWorkers(1)
	ref := runAll()
	for _, workers := range []int{4, 64} {
		tensor.SetAggWorkers(workers)
		got := runAll()
		for i, r := range got {
			for j, v := range r.out {
				if v != ref[i].out[j] {
					t.Fatalf("%s: coord %d differs between workers=1 and workers=%d (%x vs %x)",
						r.name, j, workers, ref[i].out[j], v)
				}
			}
		}
	}
}
