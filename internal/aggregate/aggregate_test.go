package aggregate

import (
	"math"
	"testing"
	"testing/quick"

	"fedguard/internal/fl"
	"fedguard/internal/rng"
)

func upd(id int, n int, w ...float32) fl.Update {
	return fl.Update{ClientID: id, NumSamples: n, Weights: w}
}

func TestWeightedMeanEqualWeights(t *testing.T) {
	out, err := WeightedMean([]fl.Update{
		upd(0, 10, 1, 2),
		upd(1, 10, 3, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 || out[1] != 3 {
		t.Fatalf("WeightedMean = %v", out)
	}
}

func TestWeightedMeanRespectsSampleCounts(t *testing.T) {
	out, err := WeightedMean([]fl.Update{
		upd(0, 30, 0),
		upd(1, 10, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Fatalf("weighted mean = %v, want 1", out[0])
	}
}

func TestWeightedMeanOfIdenticalIsIdentity(t *testing.T) {
	r := rng.New(1)
	f := func(k uint8) bool {
		n := int(k%10) + 1
		w := make([]float32, 20)
		r.FillNormal(w, 0, 1)
		ups := make([]fl.Update, n)
		for i := range ups {
			ups[i] = fl.Update{ClientID: i, NumSamples: i + 1, Weights: w}
		}
		out, err := WeightedMean(ups)
		if err != nil {
			return false
		}
		for i := range w {
			if math.Abs(float64(out[i]-w[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedMeanErrors(t *testing.T) {
	if _, err := WeightedMean(nil); err == nil {
		t.Fatal("no error on empty updates")
	}
	if _, err := WeightedMean([]fl.Update{upd(0, 1, 1), upd(1, 1, 1, 2)}); err == nil {
		t.Fatal("no error on dimension mismatch")
	}
}

func TestGeometricMedianOfSinglePoint(t *testing.T) {
	out, err := GeometricMedian([]fl.Update{upd(0, 1, 5, -3)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(out[0]-5)) > 1e-4 || math.Abs(float64(out[1]+3)) > 1e-4 {
		t.Fatalf("GeoMed of one point = %v", out)
	}
}

func TestGeometricMedianRobustToOutlier(t *testing.T) {
	// 4 points near the origin, 1 extreme outlier: the geometric median
	// stays near the origin while the mean is dragged away.
	ups := []fl.Update{
		upd(0, 1, 0.1, 0),
		upd(1, 1, -0.1, 0),
		upd(2, 1, 0, 0.1),
		upd(3, 1, 0, -0.1),
		upd(4, 1, 1000, 1000),
	}
	gm, err := GeometricMedian(ups)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(gm[0])) > 1 || math.Abs(float64(gm[1])) > 1 {
		t.Fatalf("GeoMed dragged to %v by outlier", gm)
	}
	mean, _ := WeightedMean(ups)
	if mean[0] < 100 {
		t.Fatalf("sanity: mean should be dragged, got %v", mean)
	}
}

func TestGeometricMedianPermutationInvariant(t *testing.T) {
	r := rng.New(2)
	ups := make([]fl.Update, 7)
	for i := range ups {
		w := make([]float32, 5)
		r.FillNormal(w, 0, 1)
		ups[i] = fl.Update{ClientID: i, NumSamples: 1, Weights: w}
	}
	a, _ := GeometricMedian(ups)
	rev := make([]fl.Update, len(ups))
	for i := range ups {
		rev[i] = ups[len(ups)-1-i]
	}
	b, _ := GeometricMedian(rev)
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > 1e-4 {
			t.Fatal("GeoMed depends on input order")
		}
	}
}

func TestKrumSelectsClusterMember(t *testing.T) {
	// 5 benign points clustered at 0, 3 Byzantine at distance 100. With
	// f=3, Krum must select a benign point.
	var ups []fl.Update
	r := rng.New(3)
	for i := 0; i < 5; i++ {
		w := make([]float32, 10)
		r.FillNormal(w, 0, 0.01)
		ups = append(ups, fl.Update{ClientID: i, NumSamples: 1, Weights: w})
	}
	for i := 5; i < 8; i++ {
		w := make([]float32, 10)
		r.FillNormal(w, 100, 1)
		ups = append(ups, fl.Update{ClientID: i, NumSamples: 1, Weights: w})
	}
	idx, err := KrumSelect(ups, 3)
	if err != nil {
		t.Fatal(err)
	}
	if idx >= 5 {
		t.Fatalf("Krum selected Byzantine update %d", idx)
	}
	w, err := Krum(ups, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(w[0])) > 1 {
		t.Fatalf("Krum returned outlier weights %v", w[:3])
	}
}

func TestKrumSingleUpdate(t *testing.T) {
	idx, err := KrumSelect([]fl.Update{upd(0, 1, 1, 2)}, 0)
	if err != nil || idx != 0 {
		t.Fatalf("KrumSelect single = %d, %v", idx, err)
	}
}

func TestCoordinateMedianOddEven(t *testing.T) {
	odd, _ := CoordinateMedian([]fl.Update{
		upd(0, 1, 1), upd(1, 1, 100), upd(2, 1, 3),
	})
	if odd[0] != 3 {
		t.Fatalf("median of {1,100,3} = %v", odd[0])
	}
	even, _ := CoordinateMedian([]fl.Update{
		upd(0, 1, 1), upd(1, 1, 3),
	})
	if even[0] != 2 {
		t.Fatalf("median of {1,3} = %v", even[0])
	}
}

func TestTrimmedMeanDropsExtremes(t *testing.T) {
	out, err := TrimmedMean([]fl.Update{
		upd(0, 1, -1000), upd(1, 1, 1), upd(2, 1, 2), upd(3, 1, 3), upd(4, 1, 1000),
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 {
		t.Fatalf("trimmed mean = %v, want 2", out[0])
	}
	if _, err := TrimmedMean([]fl.Update{upd(0, 1, 1)}, 1); err == nil {
		t.Fatal("TrimmedMean accepted trim >= n/2")
	}
}

func TestNormClip(t *testing.T) {
	ups := []fl.Update{
		upd(0, 1, 3, 4),   // norm 5 -> clipped to 1
		upd(1, 1, 0.3, 0), // norm .3 -> untouched
	}
	out, err := NormClip(ups, 1)
	if err != nil {
		t.Fatal(err)
	}
	n0 := math.Hypot(float64(out[0].Weights[0]), float64(out[0].Weights[1]))
	if math.Abs(n0-1) > 1e-5 {
		t.Fatalf("clipped norm = %v", n0)
	}
	if out[1].Weights[0] != 0.3 {
		t.Fatal("NormClip modified an in-bound update")
	}
	if ups[0].Weights[0] != 3 {
		t.Fatal("NormClip mutated its input")
	}
}

func TestStrategiesMetadata(t *testing.T) {
	strategies := []fl.Strategy{
		NewFedAvg(), NewGeoMed(), NewKrum(), NewMedian(), NewTrimmedMean(), NewNormClip(),
	}
	names := map[string]bool{}
	for _, s := range strategies {
		if s.Name() == "" {
			t.Fatal("empty strategy name")
		}
		if names[s.Name()] {
			t.Fatalf("duplicate strategy name %q", s.Name())
		}
		names[s.Name()] = true
		if s.NeedsDecoders() {
			t.Fatalf("%s should not need decoders", s.Name())
		}
	}
}

func TestStrategiesAggregateViaContext(t *testing.T) {
	ups := []fl.Update{
		upd(0, 1, 1, 1), upd(1, 1, 2, 2), upd(2, 1, 3, 3),
	}
	for _, s := range []fl.Strategy{
		NewFedAvg(), NewGeoMed(), NewKrum(), NewMedian(),
		&TrimmedMeanStrategy{Trim: 1}, NewNormClip(),
	} {
		ctx := &fl.RoundContext{Round: 1, Updates: ups, RNG: rng.New(1), Report: map[string]float64{}}
		out, err := s.Aggregate(ctx)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(out) != 2 {
			t.Fatalf("%s returned %d params", s.Name(), len(out))
		}
		if out[0] < 1 || out[0] > 3 {
			t.Fatalf("%s aggregated outside the convex hull: %v", s.Name(), out)
		}
	}
}

// Property: for any updates, the coordinate-wise median lies within the
// per-coordinate min/max envelope.
func TestQuickMedianInEnvelope(t *testing.T) {
	r := rng.New(4)
	f := func(nu uint8) bool {
		n := int(nu%9) + 1
		ups := make([]fl.Update, n)
		for i := range ups {
			w := make([]float32, 6)
			r.FillNormal(w, 0, 10)
			ups[i] = fl.Update{ClientID: i, NumSamples: 1, Weights: w}
		}
		med, err := CoordinateMedian(ups)
		if err != nil {
			return false
		}
		for j := 0; j < 6; j++ {
			lo, hi := float32(math.Inf(1)), float32(math.Inf(-1))
			for _, u := range ups {
				if u.Weights[j] < lo {
					lo = u.Weights[j]
				}
				if u.Weights[j] > hi {
					hi = u.Weights[j]
				}
			}
			if med[j] < lo || med[j] > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiKrumAveragesBenignCluster(t *testing.T) {
	r := rng.New(5)
	var ups []fl.Update
	for i := 0; i < 6; i++ {
		w := make([]float32, 8)
		r.FillNormal(w, 1, 0.01)
		ups = append(ups, fl.Update{ClientID: i, NumSamples: 1, Weights: w})
	}
	for i := 6; i < 9; i++ {
		w := make([]float32, 8)
		r.FillNormal(w, -50, 1)
		ups = append(ups, fl.Update{ClientID: i, NumSamples: 1, Weights: w})
	}
	out, err := MultiKrum(ups, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if math.Abs(float64(v)-1) > 0.1 {
			t.Fatalf("MultiKrum polluted by outliers: %v", out)
		}
	}
}

func TestMultiKrumParamValidation(t *testing.T) {
	ups := []fl.Update{upd(0, 1, 1)}
	if _, err := MultiKrum(nil, 0, 1); err == nil {
		t.Fatal("empty updates accepted")
	}
	if _, err := MultiKrum(ups, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := MultiKrum(ups, 0, 2); err == nil {
		t.Fatal("k>n accepted")
	}
	out, err := MultiKrum(ups, 0, 1)
	if err != nil || out[0] != 1 {
		t.Fatalf("MultiKrum single = %v, %v", out, err)
	}
}

func TestKrumScoresMatchSelect(t *testing.T) {
	r := rng.New(6)
	var ups []fl.Update
	for i := 0; i < 7; i++ {
		w := make([]float32, 5)
		r.FillNormal(w, 0, 1)
		ups = append(ups, fl.Update{ClientID: i, NumSamples: 1, Weights: w})
	}
	scores, err := krumScores(ups, 2)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := KrumSelect(ups, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scores {
		if s < scores[idx] && i != idx {
			t.Fatalf("KrumSelect picked %d but %d has lower score", idx, i)
		}
	}
}
