package experiment

import (
	"bytes"
	"strings"
	"testing"

	"fedguard/internal/telemetry"
)

// matrixTestSetup shrinks the quick preset to the smallest federation
// that still exercises FedGuard's audit path, so a 2×2 matrix stays
// affordable under -race.
func matrixTestSetup() Setup {
	s := MustSetup(PresetQuick)
	s.TrainSize, s.TestSize, s.AuxSize = 600, 100, 100
	s.NumClients, s.PerRound, s.Rounds = 6, 4, 2
	s.Train.Epochs = 1
	s.CVAE.Hidden = 32
	s.CVAETrain.Epochs = 2
	s.Samples = 20
	s.LastN = 2
	s.TestSubset = 100
	return s
}

func matrixTestSpec() MatrixSpec {
	sf := mustScenario("sign-flip-50")
	df := mustScenario("decoder-forge-30")
	return MatrixSpec{
		Scenarios:  []Scenario{sf, df},
		Strategies: []string{"FedAvg", "FedGuard"},
	}
}

func mustScenario(id string) Scenario {
	sc, err := ScenarioByID(id)
	if err != nil {
		panic(err)
	}
	return sc
}

// TestMatrixDeterministicAcrossWorkers is the CI smoke the adversary
// suite ships with: the same 2×2 grid at 1 and at 4 workers must render
// byte-identical CSV — cell results land at their grid index and contain
// no schedule-dependent numbers.
func TestMatrixDeterministicAcrossWorkers(t *testing.T) {
	setup := matrixTestSetup()
	spec := matrixTestSpec()

	sink := &telemetry.CollectSink{}
	run := func(workers int, tel *telemetry.T) string {
		cells, err := RunAttackMatrix(setup, spec, MatrixOptions{Workers: workers, Telemetry: tel})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(cells) != 4 {
			t.Fatalf("workers=%d: %d cells, want 4", workers, len(cells))
		}
		// Grid order: scenario-major, strategies inner.
		wantOrder := []string{
			"sign-flip-50/FedAvg", "sign-flip-50/FedGuard",
			"decoder-forge-30/FedAvg", "decoder-forge-30/FedGuard",
		}
		for i, c := range cells {
			if got := c.Scenario.ID + "/" + c.Strategy; got != wantOrder[i] {
				t.Fatalf("workers=%d: cell %d is %s, want %s", workers, i, got, wantOrder[i])
			}
			if c.MaliciousExclusionRate < 0 || c.MaliciousExclusionRate > 1 ||
				c.BenignExclusionRate < 0 || c.BenignExclusionRate > 1 {
				t.Fatalf("workers=%d: cell %d has out-of-range exclusion rates: %+v", workers, i, c)
			}
			if c.Strategy == "FedAvg" && c.Excluded != 0 {
				t.Fatalf("workers=%d: FedAvg excluded %d updates", workers, c.Excluded)
			}
			if c.MaliciousSampled == 0 {
				t.Fatalf("workers=%d: cell %d sampled no malicious clients", workers, i)
			}
		}
		var buf bytes.Buffer
		if err := WriteMatrixCSV(&buf, cells); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	csv1 := run(1, nil)
	csv4 := run(4, telemetry.New(sink))
	if csv1 != csv4 {
		t.Fatalf("CSV differs across worker counts:\n--- workers=1 ---\n%s--- workers=4 ---\n%s", csv1, csv4)
	}
	if got := len(sink.ByKind("MatrixCellCompleted")); got != 4 {
		t.Fatalf("%d MatrixCellCompleted events, want 4", got)
	}
	if strings.Count(csv1, "\n") != 5 {
		t.Fatalf("CSV has %d lines, want header + 4 rows:\n%s", strings.Count(csv1, "\n"), csv1)
	}
	if !strings.HasPrefix(csv1, "scenario,attack,malicious_fraction,strategy,") {
		t.Fatalf("unexpected CSV header:\n%s", csv1)
	}
}

func TestMatrixValidation(t *testing.T) {
	setup := matrixTestSetup()
	ok := matrixTestSpec()

	if _, err := RunAttackMatrix(setup, MatrixSpec{}, MatrixOptions{}); err == nil {
		t.Fatal("empty grid accepted")
	}
	bad := ok
	bad.Strategies = []string{"FedAvg", "Quantum"}
	if _, err := RunAttackMatrix(setup, bad, MatrixOptions{}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	bad = ok
	bad.Scenarios = []Scenario{{ID: "x", Attack: "quantum"}}
	if _, err := RunAttackMatrix(setup, bad, MatrixOptions{}); err == nil {
		t.Fatal("unknown attack accepted")
	}
}

func TestFormatMatrixTablePivot(t *testing.T) {
	cells := []MatrixCell{
		{Scenario: Scenario{ID: "a"}, Strategy: "FedAvg", Mean: 0.5},
		{Scenario: Scenario{ID: "a"}, Strategy: "FedGuard", Mean: 0.8, Excluded: 3},
		{Scenario: Scenario{ID: "b"}, Strategy: "FedAvg", Mean: 0.4},
		{Scenario: Scenario{ID: "b"}, Strategy: "FedGuard", Err: "boom"},
	}
	out := FormatMatrixTable(cells)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("pivot too short:\n%s", out)
	}
	if !strings.Contains(lines[0], "FedAvg") || !strings.Contains(lines[0], "FedGuard") {
		t.Fatalf("header missing strategies:\n%s", out)
	}
	if !strings.Contains(out, "ERROR") {
		t.Fatalf("failed cell not marked:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("excluding cell not starred:\n%s", out)
	}
}
