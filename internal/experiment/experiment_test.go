package experiment

import (
	"bytes"
	"encoding/xml"
	"io"
	"strings"
	"testing"

	"fedguard/internal/fl"
)

func TestNewSetupPresets(t *testing.T) {
	for _, p := range []Preset{PresetQuick, PresetDefault, PresetPaper} {
		s, err := NewSetup(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if s.NumClients <= 0 || s.Rounds <= 0 || s.Arch == nil {
			t.Fatalf("%s: incomplete setup %+v", p, s)
		}
		if s.PerRound > s.NumClients {
			t.Fatalf("%s: PerRound > NumClients", p)
		}
	}
	if _, err := NewSetup("bogus"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestPaperPresetMatchesPaper(t *testing.T) {
	s := MustSetup(PresetPaper)
	if s.NumClients != 100 || s.PerRound != 50 || s.Rounds != 50 {
		t.Fatalf("paper preset scale %d/%d/%d, want 100/50/50", s.NumClients, s.PerRound, s.Rounds)
	}
	if s.Alpha != 10 {
		t.Fatalf("paper alpha = %v, want 10", s.Alpha)
	}
	if s.Train.Epochs != 5 {
		t.Fatalf("paper local epochs = %d, want 5", s.Train.Epochs)
	}
	if s.CVAETrain.Epochs != 30 {
		t.Fatalf("paper CVAE epochs = %d, want 30", s.CVAETrain.Epochs)
	}
	if s.LastN != 40 {
		t.Fatalf("paper LastN = %d, want 40", s.LastN)
	}
}

func TestDataDeterministicAndDisjointStreams(t *testing.T) {
	s := MustSetup(PresetQuick)
	tr1, te1, aux1 := s.Data()
	tr2, te2, _ := s.Data()
	if tr1.Len() != s.TrainSize || te1.Len() != s.TestSize || aux1.Len() != s.AuxSize {
		t.Fatal("dataset sizes wrong")
	}
	for i := range tr1.X[:1000] {
		if tr1.X[i] != tr2.X[i] {
			t.Fatal("train data not deterministic")
		}
	}
	// Train and test must differ (separate streams).
	same := 0
	for i := 0; i < 1000; i++ {
		if tr1.X[i] == te2.X[i] {
			same++
		}
	}
	if same > 900 {
		t.Fatal("train and test streams look identical")
	}
}

func TestScenarioRegistry(t *testing.T) {
	scs := Scenarios()
	if len(scs) != 11 {
		t.Fatalf("%d scenarios, want 11", len(scs))
	}
	ids := map[string]bool{}
	for _, sc := range scs {
		if ids[sc.ID] {
			t.Fatalf("duplicate scenario %q", sc.ID)
		}
		ids[sc.ID] = true
		if _, err := NewAttack(sc.Attack, 1); err != nil {
			t.Fatalf("scenario %s has unknown attack %q", sc.ID, sc.Attack)
		}
	}
	if _, err := ScenarioByID("sign-flip-50"); err != nil {
		t.Fatal(err)
	}
	if _, err := ScenarioByID("nope"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if got := len(TableIVScenarios()); got != 4 {
		t.Fatalf("TableIVScenarios = %d, want 4", got)
	}
	if got := len(MatrixScenarios()); got != 4 {
		t.Fatalf("MatrixScenarios = %d, want 4", got)
	}
	// Every registry name resolves, and every scenario uses a registry name.
	for _, name := range AttackNames() {
		if _, err := NewAttack(name, 1); err != nil {
			t.Fatalf("AttackNames lists unresolvable %q: %v", name, err)
		}
	}
}

func TestNewAttackUnknown(t *testing.T) {
	if _, err := NewAttack("quantum", 1); err == nil {
		t.Fatal("unknown attack accepted")
	}
}

func TestNewStrategyRegistry(t *testing.T) {
	setup := MustSetup(PresetQuick)
	for _, name := range StrategyNames() {
		s, err := NewStrategy(name, setup)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("strategy %q reports name %q", name, s.Name())
		}
	}
	if _, err := NewStrategy("wat", setup); err != nil {
		// expected
	} else {
		t.Fatal("unknown strategy accepted")
	}
	// Extended variants keep distinct names.
	g, err := NewStrategy("FedGuard-GeoMed", setup)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "FedGuard-GeoMed" {
		t.Fatalf("renamed strategy reports %q", g.Name())
	}
	if !g.NeedsDecoders() {
		t.Fatal("FedGuard-GeoMed must still need decoders")
	}
}

func TestRunQuickFedAvgBenign(t *testing.T) {
	setup := MustSetup(PresetQuick)
	sc, _ := ScenarioByID("no-attack")
	rounds := 0
	res, err := Run(setup, sc, "FedAvg", RunOptions{OnRound: func(fl.RoundRecord) { rounds++ }})
	if err != nil {
		t.Fatal(err)
	}
	if rounds != setup.Rounds {
		t.Fatalf("saw %d rounds, want %d", rounds, setup.Rounds)
	}
	if res.Mean() < 0.5 {
		t.Fatalf("benign FedAvg reached only %v mean accuracy", res.Mean())
	}
}

func TestRunServerLROverride(t *testing.T) {
	setup := MustSetup(PresetQuick)
	setup.Rounds = 2
	sc, _ := ScenarioByID("no-attack")
	res, err := Run(setup, sc, "FedAvg", RunOptions{ServerLR: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	// With a damped server LR and 2 rounds the model can't converge as far
	// as with lr=1; just assert the run completed with sane stats.
	if len(res.History.Rounds) != 2 {
		t.Fatalf("%d rounds", len(res.History.Rounds))
	}
}

func TestWriteTableIV(t *testing.T) {
	res := []*Result{
		fakeResult("no-attack", "FedAvg", []float64{0.9, 0.95}),
		fakeResult("sign-flip-50", "FedAvg", []float64{0.1, 0.1}),
		fakeResult("no-attack", "FedGuard", []float64{0.9, 0.9}),
	}
	var buf bytes.Buffer
	if err := WriteTableIV(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"| Strategy |", "no-attack", "sign-flip-50", "FedAvg", "FedGuard", "—"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table IV missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTableIVCSV(t *testing.T) {
	res := []*Result{fakeResult("no-attack", "FedAvg", []float64{0.5, 0.7})}
	var buf bytes.Buffer
	if err := WriteTableIVCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "scenario,strategy,mean,std,final\n") {
		t.Fatalf("CSV header wrong: %q", buf.String())
	}
	if !strings.Contains(buf.String(), "no-attack,FedAvg,0.6") {
		t.Fatalf("CSV row wrong: %q", buf.String())
	}
}

func TestWriteTableV(t *testing.T) {
	rows := []OverheadRow{
		{Strategy: "FedAvg", UploadMB: 100, DownloadMB: 100, Seconds: 2},
		{Strategy: "FedGuard", UploadMB: 100, DownloadMB: 120, Seconds: 3.6},
	}
	var buf bytes.Buffer
	if err := WriteTableV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "(+20%)") {
		t.Fatalf("Table V missing download overhead: %s", out)
	}
	if !strings.Contains(out, "(+80%)") {
		t.Fatalf("Table V missing time overhead: %s", out)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	res := []*Result{
		fakeResult("no-attack", "A", []float64{0.1, 0.2, 0.3}),
		fakeResult("no-attack", "B", []float64{0.4, 0.5}),
	}
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf, res, func(r *Result) string { return r.Strategy })
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "round,A,B" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4", len(lines))
	}
	if !strings.HasSuffix(lines[3], ",") {
		t.Fatalf("short series should leave a trailing empty cell: %q", lines[3])
	}
}

func TestWriteASCIIChart(t *testing.T) {
	var buf bytes.Buffer
	WriteASCIIChart(&buf, []*Result{fakeResult("x", "Y", []float64{0, 0.5, 1})})
	if !strings.Contains(buf.String(), "x/Y") {
		t.Fatalf("chart missing label: %q", buf.String())
	}
}

func TestOverheadRows(t *testing.T) {
	r := fakeResult("no-attack", "FedAvg", []float64{0.9})
	r.History.Rounds[0].UploadBytes = 2 << 20
	r.History.Rounds[0].DownloadBytes = 1 << 20
	r.History.Rounds[0].Seconds = 1.5
	rows := OverheadRows([]*Result{r})
	if rows[0].UploadMB != 2 || rows[0].DownloadMB != 1 {
		t.Fatalf("OverheadRows = %+v", rows[0])
	}
	if rows[0].TotalMB() != 3 {
		t.Fatalf("TotalMB = %v", rows[0].TotalMB())
	}
}

func TestSortResults(t *testing.T) {
	res := []*Result{
		fakeResult("b", "Z", []float64{1}),
		fakeResult("a", "Z", []float64{1}),
		fakeResult("a", "A", []float64{1}),
	}
	SortResults(res)
	if res[0].Scenario.ID != "a" || res[0].Strategy != "A" || res[2].Scenario.ID != "b" {
		t.Fatal("SortResults order wrong")
	}
}

func fakeResult(scenario, strategy string, accs []float64) *Result {
	h := &fl.History{Strategy: strategy}
	for i, a := range accs {
		h.Rounds = append(h.Rounds, fl.RoundRecord{Round: i + 1, TestAccuracy: a})
	}
	return &Result{
		Scenario: Scenario{ID: scenario},
		Strategy: strategy,
		History:  h,
		LastN:    len(accs),
	}
}

// microSetup strips the quick preset down to near-nothing so the
// ablation/figure runners can be exercised in seconds.
func microSetup() Setup {
	s := MustSetup(PresetQuick)
	s.Rounds = 1
	s.LastN = 1
	s.Samples = 20
	s.CVAETrain.Epochs = 2
	s.Train.Epochs = 1
	return s
}

func TestFig5Runner(t *testing.T) {
	if testing.Short() {
		t.Skip("runs federations")
	}
	res, err := Fig5(microSetup(), []float64{1.0, 0.3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	if res[0].Strategy != "FedGuard-lr-1.0" || res[1].Strategy != "FedGuard-lr-0.3" {
		t.Fatalf("labels %q, %q", res[0].Strategy, res[1].Strategy)
	}
	if res[0].Scenario.ID != "label-flip-40" {
		t.Fatalf("Fig5 ran scenario %s", res[0].Scenario.ID)
	}
}

func TestAblationRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("runs federations")
	}
	s := microSetup()

	ts, err := AblationSamples(s, "sign-flip-50", []int{10, 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0].Strategy != "FedGuard-t-10" {
		t.Fatalf("AblationSamples = %v", ts[0].Strategy)
	}

	alphas, err := AblationDirichlet(s, "label-flip-30", []float64{10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(alphas) != 1 || alphas[0].Strategy != "FedGuard-alpha-10" {
		t.Fatalf("AblationDirichlet = %v", alphas[0].Strategy)
	}

	if _, err := AblationSamples(s, "not-a-scenario", []int{1}, nil); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestOverheadRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("runs federations")
	}
	s := microSetup()
	rows, results, err := Overhead(s, []string{"FedAvg", "FedGuard"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(results) != 2 {
		t.Fatalf("%d rows, %d results", len(rows), len(results))
	}
	var avg, guard OverheadRow
	for _, r := range rows {
		switch r.Strategy {
		case "FedAvg":
			avg = r
		case "FedGuard":
			guard = r
		}
	}
	if guard.DownloadMB <= avg.DownloadMB {
		t.Fatalf("FedGuard downloads %.2f not above FedAvg %.2f (decoder payloads missing)",
			guard.DownloadMB, avg.DownloadMB)
	}
	if guard.UploadMB != avg.UploadMB {
		t.Fatal("uploads should be strategy-independent")
	}
}

func TestWriteSVGChartWellFormed(t *testing.T) {
	res := []*Result{
		fakeResult("no-attack", "FedAvg", []float64{0.1, 0.5, 0.9}),
		fakeResult("no-attack", "FedGuard <odd&name>", []float64{0.2, 0.8}),
	}
	var buf bytes.Buffer
	if err := WriteSVGChart(&buf, res, `Fig 4 "test" & more`); err != nil {
		t.Fatal(err)
	}
	// The output must be valid XML (escaping has to work).
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		_, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("invalid XML: %v\n%s", err, buf.String())
		}
	}
	out := buf.String()
	if !strings.Contains(out, "<polyline") {
		t.Fatal("no series drawn")
	}
	if !strings.Contains(out, "FedGuard &lt;odd&amp;name&gt;") {
		t.Fatal("legend not escaped")
	}
}

func TestResultsFromSeriesCSVRoundTrip(t *testing.T) {
	orig := []*Result{
		fakeResult("x", "FedAvg", []float64{0.1, 0.2, 0.3}),
		fakeResult("x", "FedGuard", []float64{0.5, 0.9}),
	}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, orig, func(r *Result) string { return r.Strategy }); err != nil {
		t.Fatal(err)
	}
	got, err := ResultsFromSeriesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Strategy != "FedAvg" || got[1].Strategy != "FedGuard" {
		t.Fatalf("labels lost: %v, %v", got[0].Strategy, got[1].Strategy)
	}
	if len(got[0].History.Rounds) != 3 || len(got[1].History.Rounds) != 2 {
		t.Fatalf("series lengths %d, %d", len(got[0].History.Rounds), len(got[1].History.Rounds))
	}
	if got[1].History.Rounds[1].TestAccuracy != 0.9 {
		t.Fatalf("accuracy lost: %v", got[1].History.Rounds[1].TestAccuracy)
	}
}

func TestResultsFromSeriesCSVRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "notround,a\n1,0.5\n", "round,a\n1,notanumber\n"} {
		if _, err := ResultsFromSeriesCSV(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}
