package experiment

import (
	"fmt"
	"io"

	"fedguard/internal/fl"
)

// Fig5 runs the paper's Fig. 5 study: FedGuard under 40% label-flipping
// with server learning rates 1.0 and 0.3. It returns one result per
// learning rate, labelled "FedGuard-lr-<lr>".
func Fig5(setup Setup, lrs []float64, progress io.Writer) ([]*Result, error) {
	if len(lrs) == 0 {
		lrs = []float64{1.0, 0.3}
	}
	sc, err := ScenarioByID("label-flip-40")
	if err != nil {
		return nil, err
	}
	var out []*Result
	for _, lr := range lrs {
		if progress != nil {
			fmt.Fprintf(progress, "running fig5 lr=%.2f...\n", lr)
		}
		res, err := Run(setup, sc, "FedGuard", RunOptions{ServerLR: lr})
		if err != nil {
			return out, err
		}
		res.Strategy = fmt.Sprintf("FedGuard-lr-%.1f", lr)
		if progress != nil {
			fmt.Fprintf(progress, "  lr=%.2f: mean %.4f ± %.4f\n", lr, res.Mean(), res.Std())
		}
		out = append(out, res)
	}
	return out, nil
}

// AblationSamples sweeps FedGuard's t (synthetic samples per round) under
// a fixed attack scenario — the §VI-A "tuneable system" knob trading
// validation-set diversity for server compute.
func AblationSamples(setup Setup, scenarioID string, ts []int, progress io.Writer) ([]*Result, error) {
	sc, err := ScenarioByID(scenarioID)
	if err != nil {
		return nil, err
	}
	var out []*Result
	for _, t := range ts {
		s := setup
		s.Samples = t
		if progress != nil {
			fmt.Fprintf(progress, "running t=%d...\n", t)
		}
		res, err := Run(s, sc, "FedGuard", RunOptions{})
		if err != nil {
			return out, err
		}
		res.Strategy = fmt.Sprintf("FedGuard-t-%d", t)
		out = append(out, res)
	}
	return out, nil
}

// AblationInner compares FedGuard's inner aggregation operators
// (§VI-C future work: FedAvg vs GeoMed vs coordinate median) under one
// scenario.
func AblationInner(setup Setup, scenarioID string, progress io.Writer) ([]*Result, error) {
	sc, err := ScenarioByID(scenarioID)
	if err != nil {
		return nil, err
	}
	var out []*Result
	for _, name := range []string{"FedGuard", "FedGuard-GeoMed", "FedGuard-Median"} {
		if progress != nil {
			fmt.Fprintf(progress, "running %s...\n", name)
		}
		res, err := Run(setup, sc, name, RunOptions{})
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// AblationDirichlet sweeps the partition concentration α (§VI-C
// imbalanced-datasets future work) for FedGuard under one scenario.
func AblationDirichlet(setup Setup, scenarioID string, alphas []float64, progress io.Writer) ([]*Result, error) {
	sc, err := ScenarioByID(scenarioID)
	if err != nil {
		return nil, err
	}
	var out []*Result
	for _, a := range alphas {
		s := setup
		s.Alpha = a
		if progress != nil {
			fmt.Fprintf(progress, "running alpha=%v...\n", a)
		}
		res, err := Run(s, sc, "FedGuard", RunOptions{})
		if err != nil {
			return out, err
		}
		res.Strategy = fmt.Sprintf("FedGuard-alpha-%g", a)
		out = append(out, res)
	}
	return out, nil
}

// Overhead runs the Table V study: every strategy on the benign scenario,
// collecting per-round traffic and wall-clock time.
func Overhead(setup Setup, strategies []string, progress io.Writer) ([]OverheadRow, []*Result, error) {
	sc, err := ScenarioByID("no-attack")
	if err != nil {
		return nil, nil, err
	}
	var results []*Result
	for _, name := range strategies {
		if progress != nil {
			fmt.Fprintf(progress, "running overhead/%s...\n", name)
		}
		res, err := Run(setup, sc, name, RunOptions{})
		if err != nil {
			return nil, results, err
		}
		results = append(results, res)
	}
	return OverheadRows(results), results, nil
}

// VarianceOf returns the per-round accuracy variance over the last-n
// window — the Fig. 5 stability metric.
func VarianceOf(h *fl.History, lastN int) float64 {
	_, std := h.LastNStats(lastN)
	return std * std
}
