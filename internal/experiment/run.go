package experiment

import (
	"errors"
	"fmt"
	"io"

	"fedguard/internal/attack"
	"fedguard/internal/fl"
	"fedguard/internal/persist"
	"fedguard/internal/telemetry"
)

// Result couples a finished run with its identity.
type Result struct {
	Scenario Scenario
	Strategy string
	History  *fl.History
	// LastN is the averaging window used for summary statistics.
	LastN int
}

// Mean and Std return the Table IV statistic of the run.
func (r *Result) Mean() float64 { m, _ := r.History.LastNStats(r.LastN); return m }

// Std returns the standard deviation over the averaging window.
func (r *Result) Std() float64 { _, s := r.History.LastNStats(r.LastN); return s }

// RunOptions tweaks a single run.
type RunOptions struct {
	// ServerLR overrides the setup's server learning rate when non-zero
	// (Fig. 5).
	ServerLR float64
	// OnRound, if non-nil, receives every round record as it completes.
	OnRound func(fl.RoundRecord)
	// Seed overrides the setup seed when non-zero (for repeat runs).
	Seed uint64
	// Telemetry, when non-nil, receives the run's structured events and
	// phase-level metrics (threaded into fl.FederationConfig).
	Telemetry *telemetry.T
	// Strategy, when non-nil, is used instead of resolving strategyName
	// through the registry — for runs that need a specially configured
	// strategy instance (the name still labels the result).
	Strategy fl.Strategy
	// StreamAudit enables the streaming round pipeline: strategies that
	// implement fl.StreamingStrategy audit each update as it lands
	// instead of waiting for the round barrier. Bit-identical results
	// either way; this only reorders the server's compute.
	StreamAudit bool
	// CheckpointDir enables crash-safe round checkpointing when non-empty:
	// the full federation state (global weights, RNG streams, history,
	// client CVAE decoders) is atomically persisted after each
	// CheckpointEvery-th round, and a later run with Resume continues
	// from it with bit-identical results.
	CheckpointDir string
	// CheckpointEvery is the checkpoint cadence in rounds (<= 0 = every
	// round); meaningful only with CheckpointDir.
	CheckpointEvery int
	// Resume loads CheckpointDir's checkpoint and continues the run from
	// the round after it. A missing checkpoint means a cold start.
	Resume bool
	// AggWorkers bounds the aggregation-kernel parallelism
	// (fl.FederationConfig.AggWorkers); 0 keeps the tensor pool default.
	// Results are byte-identical at any setting.
	AggWorkers int
}

// Run executes one (setup, scenario, strategy) cell and returns its
// result.
func Run(setup Setup, sc Scenario, strategyName string, opts RunOptions) (*Result, error) {
	att, err := NewAttack(sc.Attack, setup.Seed)
	if err != nil {
		return nil, err
	}
	if tt, ok := att.(attack.AGRTailored); ok {
		tt.TailorTo(strategyName)
	}
	strat := opts.Strategy
	if strat == nil {
		strat, err = NewStrategy(strategyName, setup)
		if err != nil {
			return nil, err
		}
	}
	train, test, _ := setup.Data()

	serverLR := setup.ServerLR
	if opts.ServerLR > 0 {
		serverLR = opts.ServerLR
	}
	seed := setup.Seed
	if opts.Seed != 0 {
		seed = opts.Seed
	}
	tel := opts.Telemetry
	if tel == nil {
		tel = setup.Telemetry
	}
	cfg := fl.FederationConfig{
		NumClients:        setup.NumClients,
		PerRound:          setup.PerRound,
		Rounds:            setup.Rounds,
		Alpha:             setup.Alpha,
		ServerLR:          serverLR,
		MaliciousFraction: sc.MaliciousFraction,
		Client: fl.ClientConfig{
			Arch:       setup.Arch,
			Train:      setup.Train,
			CVAE:       setup.CVAE,
			CVAETrain:  setup.CVAETrain,
			NumClasses: 10,
		},
		Workers:     setup.Workers,
		AggWorkers:  opts.AggWorkers,
		TestSubset:  setup.TestSubset,
		Seed:        seed,
		Telemetry:   tel,
		StreamAudit: opts.StreamAudit,
	}
	if sc.MaliciousFraction > 0 {
		cfg.Attack = att
	}
	if opts.CheckpointDir != "" {
		dir := opts.CheckpointDir
		cfg.CheckpointEvery = opts.CheckpointEvery
		cfg.CheckpointSink = func(ck *fl.Checkpoint) (string, int64, error) {
			return persist.SaveCheckpoint(dir, ck)
		}
	}
	fed, err := fl.NewFederation(train, test, cfg)
	if err != nil {
		return nil, err
	}
	var h *fl.History
	if opts.Resume {
		if opts.CheckpointDir == "" {
			return nil, fmt.Errorf("experiment: Resume requires CheckpointDir")
		}
		ck, err := persist.LoadCheckpoint(opts.CheckpointDir)
		switch {
		case errors.Is(err, persist.ErrNoCheckpoint):
			// Nothing written yet: a resume-requested run starts cold.
			h, err = fed.Run(strat, opts.OnRound)
			if err != nil {
				return nil, err
			}
		case err != nil:
			return nil, fmt.Errorf("experiment: loading checkpoint: %w", err)
		default:
			h, err = fed.Resume(strat, ck, opts.OnRound)
			if err != nil {
				return nil, err
			}
		}
	} else {
		h, err = fed.Run(strat, opts.OnRound)
		if err != nil {
			return nil, err
		}
	}
	return &Result{Scenario: sc, Strategy: strategyName, History: h, LastN: setup.LastN}, nil
}

// RecordResults publishes a finished result set into a telemetry
// registry: per-cell summary gauges keyed by scenario and strategy.
// fedbench uses this to emit its run as a JSON metrics snapshot, giving
// future perf work a machine-readable trajectory to compare against.
func RecordResults(reg *telemetry.Registry, results []*Result) {
	for _, r := range results {
		labels := []telemetry.Label{
			telemetry.L("scenario", r.Scenario.ID),
			telemetry.L("strategy", r.Strategy),
		}
		reg.Gauge("bench_mean_accuracy", labels...).Set(r.Mean())
		reg.Gauge("bench_std_accuracy", labels...).Set(r.Std())
		reg.Gauge("bench_final_accuracy", labels...).Set(r.History.FinalAccuracy())
		reg.Gauge("bench_round_seconds", labels...).Set(r.History.MeanSeconds())
		train, agg, eval := r.History.MeanPhaseSeconds()
		reg.Gauge("bench_train_seconds", labels...).Set(train)
		reg.Gauge("bench_aggregate_seconds", labels...).Set(agg)
		reg.Gauge("bench_eval_seconds", labels...).Set(eval)
		up, down := r.History.MeanBytes()
		reg.Gauge("bench_upload_bytes", labels...).Set(float64(up))
		reg.Gauge("bench_download_bytes", labels...).Set(float64(down))
		reg.Gauge("bench_rounds", labels...).Set(float64(len(r.History.Rounds)))
	}
}

// RunMatrix runs every scenario × strategy cell, reporting progress to
// progress (may be nil). Cells run sequentially — each run already
// saturates the worker pool internally.
func RunMatrix(setup Setup, scenarios []Scenario, strategies []string, progress io.Writer) ([]*Result, error) {
	var out []*Result
	for _, sc := range scenarios {
		for _, name := range strategies {
			if progress != nil {
				fmt.Fprintf(progress, "running %s / %s...\n", sc.ID, name)
			}
			res, err := Run(setup, sc, name, RunOptions{})
			if err != nil {
				return out, fmt.Errorf("%s/%s: %w", sc.ID, name, err)
			}
			if progress != nil {
				fmt.Fprintf(progress, "  %s / %s: mean %.4f ± %.4f (final %.4f)\n",
					sc.ID, name, res.Mean(), res.Std(), res.History.FinalAccuracy())
			}
			out = append(out, res)
		}
	}
	return out, nil
}
