package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fedguard/internal/telemetry"
)

// MatrixSpec names the grid of an attack×strategy sweep.
type MatrixSpec struct {
	Scenarios  []Scenario
	Strategies []string
}

// MatrixOptions tweaks a sweep. The zero value runs sequentially with
// the setup's defaults.
type MatrixOptions struct {
	// Workers bounds cell-level parallelism (<= 1 runs cells
	// sequentially). Results are identical at any setting: every cell is
	// an independent seeded run and lands at its grid index.
	Workers int
	// ServerLR, Seed, AggWorkers and StreamAudit forward into each
	// cell's RunOptions.
	ServerLR    float64
	Seed        uint64
	AggWorkers  int
	StreamAudit bool
	// Telemetry, when non-nil, receives one MatrixCellCompleted event per
	// cell as it finishes. With Workers > 1 the emission order follows
	// completion, not grid order; the returned slice and the CSV writer
	// are the deterministic artifacts.
	Telemetry *telemetry.T
	// Progress, when non-nil, receives human-readable per-cell lines.
	Progress io.Writer
}

// MatrixCell is one finished cell of the sweep.
type MatrixCell struct {
	Scenario Scenario `json:"scenario"`
	Strategy string   `json:"strategy"`

	Mean  float64 `json:"mean_accuracy"`
	Std   float64 `json:"std_accuracy"`
	Final float64 `json:"final_accuracy"`

	// MaliciousExclusionRate is the fraction of sampled malicious update
	// slots the defense rejected; BenignExclusionRate is the benign
	// counterpart (the defense's false-positive rate). Both are 0 for
	// strategies that never exclude (FedAvg et al.).
	MaliciousExclusionRate float64 `json:"malicious_exclusion_rate"`
	BenignExclusionRate    float64 `json:"benign_exclusion_rate"`
	// Excluded and MaliciousSampled are the raw counts behind the rates.
	Excluded         int `json:"excluded"`
	MaliciousSampled int `json:"malicious_sampled"`

	// Seconds is the cell's wall-clock cost. It is reported in JSON and
	// progress output but deliberately kept out of the CSV, which must be
	// byte-identical across runs and worker counts.
	Seconds float64 `json:"seconds"`

	// Err records a failed cell (empty on success).
	Err string `json:"err,omitempty"`
}

// RunAttackMatrix sweeps every scenario × strategy cell of spec over
// setup. Cells are independent seeded runs — each constructs a fresh
// attack and strategy instance via the registry (so latch-state attacks
// like AdditiveNoise never leak across cells) and AGR-tailored attacks
// are pointed at the cell's strategy. The returned slice is in row-major
// grid order (scenario-major, strategies inner) regardless of
// opts.Workers, and every cell's numbers are byte-identical at any
// worker count.
//
// The grid is validated up front; an unknown strategy or attack fails
// fast before any training starts. A cell that fails at run time records
// its error and the sweep continues; the first (grid-order) cell error
// is also returned.
func RunAttackMatrix(setup Setup, spec MatrixSpec, opts MatrixOptions) ([]MatrixCell, error) {
	if len(spec.Scenarios) == 0 || len(spec.Strategies) == 0 {
		return nil, fmt.Errorf("experiment: matrix needs at least one scenario and one strategy")
	}
	known := make(map[string]bool)
	for _, s := range ExtendedStrategyNames() {
		known[s] = true
	}
	for _, s := range spec.Strategies {
		if !known[s] {
			return nil, fmt.Errorf("experiment: unknown strategy %q (have %s)",
				s, strings.Join(ExtendedStrategyNames(), ", "))
		}
	}
	for _, sc := range spec.Scenarios {
		if _, err := NewAttack(sc.Attack, setup.Seed); err != nil {
			return nil, fmt.Errorf("experiment: scenario %q: %w", sc.ID, err)
		}
	}

	cells := make([]MatrixCell, len(spec.Scenarios)*len(spec.Strategies))
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	var progressMu sync.Mutex
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1) - 1)
				if i >= len(cells) {
					return
				}
				sc := spec.Scenarios[i/len(spec.Strategies)]
				name := spec.Strategies[i%len(spec.Strategies)]
				cells[i] = runMatrixCell(setup, sc, name, opts)
				opts.Telemetry.Emit(cellEvent(cells[i]))
				if opts.Progress != nil {
					progressMu.Lock()
					printCell(opts.Progress, cells[i])
					progressMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	for _, c := range cells {
		if c.Err != "" {
			return cells, fmt.Errorf("experiment: cell %s/%s: %s",
				c.Scenario.ID, c.Strategy, c.Err)
		}
	}
	return cells, nil
}

// runMatrixCell executes one independent cell. It attaches a private
// CollectSink so the cell's exclusion events can be audited against its
// AttackSampled ground truth without cross-talk from concurrent cells.
func runMatrixCell(setup Setup, sc Scenario, strategy string, opts MatrixOptions) MatrixCell {
	cell := MatrixCell{Scenario: sc, Strategy: strategy}
	sink := &telemetry.CollectSink{}
	start := time.Now()
	res, err := Run(setup, sc, strategy, RunOptions{
		ServerLR:    opts.ServerLR,
		Seed:        opts.Seed,
		AggWorkers:  opts.AggWorkers,
		StreamAudit: opts.StreamAudit,
		Telemetry:   telemetry.New(sink),
	})
	cell.Seconds = time.Since(start).Seconds()
	if err != nil {
		cell.Err = err.Error()
		return cell
	}
	cell.Mean, cell.Std = res.Mean(), res.Std()
	cell.Final = res.History.FinalAccuracy()
	fillExclusionStats(&cell, sink, setup.PerRound)
	return cell
}

// fillExclusionStats derives the cell's exclusion rates by joining the
// run's ClientExcluded events against its AttackSampled ground truth.
func fillExclusionStats(cell *MatrixCell, sink *telemetry.CollectSink, perRound int) {
	maliciousByRound := make(map[int]map[int]bool)
	maliciousSampled := 0
	for _, e := range sink.ByKind("AttackSampled") {
		as := e.(telemetry.AttackSampled)
		set := make(map[int]bool, len(as.ClientIDs))
		for _, id := range as.ClientIDs {
			set[id] = true
		}
		maliciousByRound[as.Round] = set
		maliciousSampled += len(as.ClientIDs)
	}
	rounds := len(sink.ByKind("RoundCompleted"))
	var malExcluded, benExcluded int
	for _, e := range sink.ByKind("ClientExcluded") {
		ce := e.(telemetry.ClientExcluded)
		if maliciousByRound[ce.Round][ce.ClientID] {
			malExcluded++
		} else {
			benExcluded++
		}
	}
	cell.Excluded = malExcluded + benExcluded
	cell.MaliciousSampled = maliciousSampled
	if maliciousSampled > 0 {
		cell.MaliciousExclusionRate = float64(malExcluded) / float64(maliciousSampled)
	}
	if benignSampled := rounds*perRound - maliciousSampled; benignSampled > 0 {
		cell.BenignExclusionRate = float64(benExcluded) / float64(benignSampled)
	}
}

func cellEvent(c MatrixCell) telemetry.MatrixCellCompleted {
	return telemetry.MatrixCellCompleted{
		Scenario:               c.Scenario.ID,
		Strategy:               c.Strategy,
		MeanAccuracy:           c.Mean,
		StdAccuracy:            c.Std,
		FinalAccuracy:          c.Final,
		MaliciousExclusionRate: c.MaliciousExclusionRate,
		BenignExclusionRate:    c.BenignExclusionRate,
		Seconds:                c.Seconds,
		Err:                    c.Err,
	}
}

func printCell(w io.Writer, c MatrixCell) {
	if c.Err != "" {
		fmt.Fprintf(w, "%s / %s: ERROR %s\n", c.Scenario.ID, c.Strategy, c.Err)
		return
	}
	fmt.Fprintf(w, "%s / %s: mean %.4f ± %.4f (final %.4f, excl mal %.2f ben %.2f) [%.1fs]\n",
		c.Scenario.ID, c.Strategy, c.Mean, c.Std, c.Final,
		c.MaliciousExclusionRate, c.BenignExclusionRate, c.Seconds)
}

// WriteMatrixCSV writes the sweep long-form, one row per cell in grid
// order. The output is a pure function of the cell numbers — wall-clock
// columns are deliberately omitted — so two sweeps of the same grid and
// seed produce byte-identical files at any worker count.
func WriteMatrixCSV(w io.Writer, cells []MatrixCell) error {
	if _, err := io.WriteString(w, "scenario,attack,malicious_fraction,strategy,"+
		"mean_accuracy,std_accuracy,final_accuracy,"+
		"malicious_exclusion_rate,benign_exclusion_rate,excluded,malicious_sampled,err\n"); err != nil {
		return err
	}
	for _, c := range cells {
		row := strings.Join([]string{
			c.Scenario.ID,
			c.Scenario.Attack,
			strconv.FormatFloat(c.Scenario.MaliciousFraction, 'f', 2, 64),
			c.Strategy,
			strconv.FormatFloat(c.Mean, 'f', 6, 64),
			strconv.FormatFloat(c.Std, 'f', 6, 64),
			strconv.FormatFloat(c.Final, 'f', 6, 64),
			strconv.FormatFloat(c.MaliciousExclusionRate, 'f', 6, 64),
			strconv.FormatFloat(c.BenignExclusionRate, 'f', 6, 64),
			strconv.Itoa(c.Excluded),
			strconv.Itoa(c.MaliciousSampled),
			strings.ReplaceAll(c.Err, ",", ";"),
		}, ",")
		if _, err := io.WriteString(w, row+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// WriteMatrixJSON writes the cells as an indented JSON array (including
// per-cell wall-clock, so it is informative but not byte-stable).
func WriteMatrixJSON(w io.Writer, cells []MatrixCell) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cells)
}

// FormatMatrixTable renders a Table-IV-style pivot: scenarios down,
// strategies across, "mean±std" per cell (plus the malicious exclusion
// rate in brackets for defenses that excluded anyone).
func FormatMatrixTable(cells []MatrixCell) string {
	var scenarios []string
	var strategies []string
	seenSc := make(map[string]bool)
	seenSt := make(map[string]bool)
	byKey := make(map[string]MatrixCell, len(cells))
	for _, c := range cells {
		if !seenSc[c.Scenario.ID] {
			seenSc[c.Scenario.ID] = true
			scenarios = append(scenarios, c.Scenario.ID)
		}
		if !seenSt[c.Strategy] {
			seenSt[c.Strategy] = true
			strategies = append(strategies, c.Strategy)
		}
		byKey[c.Scenario.ID+"\x00"+c.Strategy] = c
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-20s", "scenario")
	for _, st := range strategies {
		fmt.Fprintf(&b, " %22s", st)
	}
	b.WriteByte('\n')
	for _, sc := range scenarios {
		fmt.Fprintf(&b, "%-20s", sc)
		for _, st := range strategies {
			c, ok := byKey[sc+"\x00"+st]
			switch {
			case !ok:
				fmt.Fprintf(&b, " %22s", "-")
			case c.Err != "":
				fmt.Fprintf(&b, " %22s", "ERROR")
			case c.Excluded > 0:
				fmt.Fprintf(&b, " %13.4f±%.4f*", c.Mean, c.Std)
			default:
				fmt.Fprintf(&b, " %14.4f±%.4f", c.Mean, c.Std)
			}
		}
		b.WriteByte('\n')
	}
	if strings.Contains(b.String(), "*") {
		b.WriteString("* excluded updates; see malicious_exclusion_rate in the CSV/JSON output\n")
	}
	return b.String()
}
