package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteTableIV renders the paper's Table IV from a result matrix:
// strategies as rows, attack scenarios as columns, cells showing the mean
// ± std test accuracy over the last LastN rounds.
func WriteTableIV(w io.Writer, results []*Result) error {
	type key struct{ scenario, strategy string }
	cells := map[key]*Result{}
	var scenarios []string
	var strategies []string
	seenSc := map[string]bool{}
	seenSt := map[string]bool{}
	for _, r := range results {
		cells[key{r.Scenario.ID, r.Strategy}] = r
		if !seenSc[r.Scenario.ID] {
			seenSc[r.Scenario.ID] = true
			scenarios = append(scenarios, r.Scenario.ID)
		}
		if !seenSt[r.Strategy] {
			seenSt[r.Strategy] = true
			strategies = append(strategies, r.Strategy)
		}
	}

	fmt.Fprintf(w, "| Strategy |")
	for _, sc := range scenarios {
		fmt.Fprintf(w, " %s |", sc)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "|---|%s\n", strings.Repeat("---|", len(scenarios)))
	for _, st := range strategies {
		fmt.Fprintf(w, "| %s |", st)
		for _, sc := range scenarios {
			if r, ok := cells[key{sc, st}]; ok {
				fmt.Fprintf(w, " %.2f%% ± %.2f%% |", 100*r.Mean(), 100*r.Std())
			} else {
				fmt.Fprintf(w, " — |")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteTableIVCSV emits the same matrix as CSV
// (scenario,strategy,mean,std,final).
func WriteTableIVCSV(w io.Writer, results []*Result) error {
	fmt.Fprintln(w, "scenario,strategy,mean,std,final")
	for _, r := range results {
		fmt.Fprintf(w, "%s,%s,%.6f,%.6f,%.6f\n",
			r.Scenario.ID, r.Strategy, r.Mean(), r.Std(), r.History.FinalAccuracy())
	}
	return nil
}

// OverheadRow is one strategy's Table V entry.
type OverheadRow struct {
	Strategy string
	// UploadMB and DownloadMB are the mean per-round server traffic.
	UploadMB, DownloadMB float64
	// Seconds is the mean per-round wall-clock duration; TrainSeconds /
	// AggregateSeconds / EvalSeconds split it into client compute, server
	// defense cost, and global evaluation.
	Seconds          float64
	TrainSeconds     float64
	AggregateSeconds float64
	EvalSeconds      float64
}

// TotalMB returns the round-trip traffic.
func (o OverheadRow) TotalMB() float64 { return o.UploadMB + o.DownloadMB }

// OverheadRows extracts Table V rows from results (typically the
// no-attack scenario, one result per strategy).
func OverheadRows(results []*Result) []OverheadRow {
	rows := make([]OverheadRow, 0, len(results))
	for _, r := range results {
		up, down := r.History.MeanBytes()
		train, agg, eval := r.History.MeanPhaseSeconds()
		rows = append(rows, OverheadRow{
			Strategy:         r.Strategy,
			UploadMB:         float64(up) / (1 << 20),
			DownloadMB:       float64(down) / (1 << 20),
			Seconds:          r.History.MeanSeconds(),
			TrainSeconds:     train,
			AggregateSeconds: agg,
			EvalSeconds:      eval,
		})
	}
	return rows
}

// WriteTableV renders the paper's Table V: per-round server traffic and
// training time with percentage overheads relative to the FedAvg row,
// plus the client-compute / server-defense split of the round time.
func WriteTableV(w io.Writer, rows []OverheadRow) error {
	var base *OverheadRow
	for i := range rows {
		if rows[i].Strategy == "FedAvg" {
			base = &rows[i]
		}
	}
	pct := func(v, b float64) string {
		if base == nil || b == 0 || v == b {
			return ""
		}
		return fmt.Sprintf(" (%+.0f%%)", 100*(v-b)/b)
	}
	fmt.Fprintln(w, "| Strategy | Server uploads / round | Server downloads / round | Server total / round | Round time | Client train | Server aggregate | Eval |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|")
	for _, r := range rows {
		var upP, downP, totP, secP string
		if base != nil {
			upP = pct(r.UploadMB, base.UploadMB)
			downP = pct(r.DownloadMB, base.DownloadMB)
			totP = pct(r.TotalMB(), base.TotalMB())
			secP = pct(r.Seconds, base.Seconds)
		}
		fmt.Fprintf(w, "| %s | %.1f MB%s | %.1f MB%s | %.1f MB%s | %.2f s%s | %.2f s | %.2f s | %.2f s |\n",
			r.Strategy, r.UploadMB, upP, r.DownloadMB, downP, r.TotalMB(), totP,
			r.Seconds, secP, r.TrainSeconds, r.AggregateSeconds, r.EvalSeconds)
	}
	return nil
}

// WriteSeriesCSV emits per-round accuracy series (Fig. 4 / Fig. 5
// material): one column per result, one row per round.
func WriteSeriesCSV(w io.Writer, results []*Result, label func(*Result) string) error {
	if len(results) == 0 {
		return nil
	}
	fmt.Fprint(w, "round")
	maxRounds := 0
	for _, r := range results {
		fmt.Fprintf(w, ",%s", label(r))
		if n := len(r.History.Rounds); n > maxRounds {
			maxRounds = n
		}
	}
	fmt.Fprintln(w)
	for round := 0; round < maxRounds; round++ {
		fmt.Fprintf(w, "%d", round+1)
		for _, r := range results {
			if round < len(r.History.Rounds) {
				fmt.Fprintf(w, ",%.6f", r.History.Rounds[round].TestAccuracy)
			} else {
				fmt.Fprint(w, ",")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteASCIIChart renders accuracy series as a rough terminal line chart,
// one row per result (min..max over rounds bucketed into 40 columns).
func WriteASCIIChart(w io.Writer, results []*Result) {
	const width = 50
	for _, r := range results {
		accs := r.History.Accuracies()
		fmt.Fprintf(w, "%-22s |", fmt.Sprintf("%s/%s", r.Scenario.ID, r.Strategy))
		for i := 0; i < width; i++ {
			idx := i * len(accs) / width
			if idx >= len(accs) {
				idx = len(accs) - 1
			}
			fmt.Fprint(w, sparkChar(accs[idx]))
		}
		fmt.Fprintf(w, "| %.3f\n", accs[len(accs)-1])
	}
}

func sparkChar(v float64) string {
	ramp := []string{" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"}
	idx := int(v * float64(len(ramp)))
	if idx >= len(ramp) {
		idx = len(ramp) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return ramp[idx]
}

// SortResults orders results by (scenario, strategy) for stable output.
func SortResults(results []*Result) {
	sort.Slice(results, func(i, j int) bool {
		if results[i].Scenario.ID != results[j].Scenario.ID {
			return results[i].Scenario.ID < results[j].Scenario.ID
		}
		return results[i].Strategy < results[j].Strategy
	})
}
