// Package experiment turns the paper's evaluation section into runnable
// specifications: the five attack scenarios of Fig. 4 / Table IV, the
// server-learning-rate study of Fig. 5, the system-overhead study of
// Table V, and the ablations suggested by §VI. Each experiment is
// expressed as (Setup, Scenario, strategy name) and produces an
// fl.History that the table/figure emitters render.
package experiment

import (
	"fmt"

	"fedguard/internal/classifier"
	"fedguard/internal/cvae"
	"fedguard/internal/rng"
	"fedguard/internal/telemetry"

	"fedguard/internal/dataset"
)

// Preset selects an experiment scale.
type Preset string

// Presets. Quick is for tests and smoke runs; Default balances fidelity
// and CPU time; Paper is the full 100-client configuration of §IV-A
// (hours of CPU time in pure Go).
const (
	PresetQuick   Preset = "quick"
	PresetDefault Preset = "default"
	PresetPaper   Preset = "paper"
)

// Setup fixes the scale-dependent parameters of an experiment run.
type Setup struct {
	Preset Preset

	TrainSize, TestSize int
	// AuxSize is the auxiliary ("public") dataset granted to Spectral.
	AuxSize int

	NumClients, PerRound, Rounds int
	Alpha                        float64
	ServerLR                     float64

	Arch      classifier.Arch
	ArchName  string
	Train     classifier.TrainConfig
	CVAE      cvae.Config
	CVAETrain cvae.TrainConfig

	// Samples is FedGuard's t; 0 means 2·PerRound (the paper's t = 2m).
	Samples int
	// LastN is the Table IV averaging window ("last 40 rounds" in the
	// paper; scaled with Rounds here).
	LastN int
	// TestSubset caps per-round evaluation (0 = whole test set).
	TestSubset int
	Seed       uint64
	Workers    int

	// Telemetry, when non-nil, is the default observability bundle for
	// every run of this setup (events, metrics, and — when tracing is
	// enabled on it — span trees). RunOptions.Telemetry overrides it per
	// run. fedbench uses this to thread one -events sink through the whole
	// matrix.
	Telemetry *telemetry.T
}

// NewSetup returns the named preset.
func NewSetup(p Preset) (Setup, error) {
	switch p {
	case PresetQuick:
		return Setup{
			Preset:    p,
			TrainSize: 2400, TestSize: 300, AuxSize: 200,
			NumClients: 16, PerRound: 8, Rounds: 8,
			Alpha: 10, ServerLR: 1,
			Arch: classifier.Tiny(), ArchName: "tiny",
			Train:     classifier.TrainConfig{Epochs: 4, BatchSize: 32, LR: 0.1, Momentum: 0.9},
			CVAE:      cvae.Config{Input: 784, Hidden: 256, Latent: 2, Classes: 10},
			CVAETrain: cvae.TrainConfig{Epochs: 25, BatchSize: 32, LR: 1e-3},
			Samples:   100, LastN: 4, TestSubset: 300, Seed: 7,
		}, nil
	case PresetDefault:
		return Setup{
			Preset:    p,
			TrainSize: 3000, TestSize: 600, AuxSize: 400,
			NumClients: 30, PerRound: 16, Rounds: 10,
			Alpha: 10, ServerLR: 1,
			Arch: classifier.Small(), ArchName: "small",
			Train:     classifier.TrainConfig{Epochs: 2, BatchSize: 32, LR: 0.05, Momentum: 0.9},
			CVAE:      cvae.SmallConfig(),
			CVAETrain: cvae.TrainConfig{Epochs: 30, BatchSize: 32, LR: 1e-3},
			Samples:   100, LastN: 6, TestSubset: 400, Seed: 7,
		}, nil
	case PresetPaper:
		return Setup{
			Preset:    p,
			TrainSize: 60000, TestSize: 10000, AuxSize: 1000,
			NumClients: 100, PerRound: 50, Rounds: 50,
			Alpha: 10, ServerLR: 1,
			Arch: classifier.Paper(), ArchName: "paper",
			Train:     classifier.DefaultTrainConfig(),
			CVAE:      cvae.PaperConfig(),
			CVAETrain: cvae.DefaultTrainConfig(),
			LastN:     40, TestSubset: 2000, Seed: 7,
		}, nil
	default:
		return Setup{}, fmt.Errorf("experiment: unknown preset %q", p)
	}
}

// MustSetup returns the named preset or panics (for tests and examples).
func MustSetup(p Preset) Setup {
	s, err := NewSetup(p)
	if err != nil {
		panic(err)
	}
	return s
}

// Data materializes the setup's train, test and auxiliary datasets. The
// streams are decoupled so every (preset, seed) pair always sees the same
// data regardless of which strategies run.
func (s Setup) Data() (train, test, aux *dataset.Dataset) {
	opts := dataset.DefaultGenOptions()
	train = dataset.Generate(s.TrainSize, opts, rng.New(s.Seed^0x7261696e)) // "rain"
	test = dataset.Generate(s.TestSize, opts, rng.New(s.Seed^0x74657374))   // "test"
	aux = dataset.Generate(s.AuxSize, opts, rng.New(s.Seed^0x617578))       // "aux"
	return train, test, aux
}
