package experiment

import (
	"fmt"
	"io"
)

// svgPalette are the line colors used for chart series, chosen for
// contrast on a white background.
var svgPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#e377c2", "#17becf", "#bcbd22", "#7f7f7f",
}

// WriteSVGChart renders the results' accuracy-over-rounds series as a
// self-contained SVG line chart (the Fig. 4 / Fig. 5 visual). The y axis
// is fixed to [0, 1] accuracy; the x axis spans the longest series.
func WriteSVGChart(w io.Writer, results []*Result, title string) error {
	const (
		width   = 720
		height  = 420
		marginL = 60
		marginR = 170
		marginT = 50
		marginB = 50
	)
	plotW := width - marginL - marginR
	plotH := height - marginT - marginB

	maxRounds := 0
	for _, r := range results {
		if n := len(r.History.Rounds); n > maxRounds {
			maxRounds = n
		}
	}
	if maxRounds < 2 {
		maxRounds = 2
	}

	xAt := func(round int) float64 { // rounds are 1-based
		return marginL + float64(round-1)/float64(maxRounds-1)*float64(plotW)
	}
	yAt := func(acc float64) float64 {
		return marginT + (1-acc)*float64(plotH)
	}

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(w, `<text x="%d" y="28" font-family="sans-serif" font-size="16" font-weight="bold">%s</text>`+"\n",
		marginL, xmlEscape(title))

	// Axes and gridlines.
	for i := 0; i <= 10; i += 2 {
		acc := float64(i) / 10
		y := yAt(acc)
		fmt.Fprintf(w, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
			marginL, y, marginL+plotW, y)
		fmt.Fprintf(w, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%.0f%%</text>`+"\n",
			marginL-6, y+4, acc*100)
	}
	step := maxRounds / 10
	if step < 1 {
		step = 1
	}
	for round := 1; round <= maxRounds; round += step {
		x := xAt(round)
		fmt.Fprintf(w, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%d</text>`+"\n",
			x, marginT+plotH+18, round)
	}
	fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">round</text>`+"\n",
		marginL+plotW/2, height-12)

	// Series.
	for si, r := range results {
		color := svgPalette[si%len(svgPalette)]
		fmt.Fprintf(w, `<polyline fill="none" stroke="%s" stroke-width="2" points="`, color)
		for _, rec := range r.History.Rounds {
			fmt.Fprintf(w, "%.1f,%.1f ", xAt(rec.Round), yAt(rec.TestAccuracy))
		}
		fmt.Fprint(w, `"/>`+"\n")
		// Legend entry.
		ly := marginT + 18*si
		fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			marginL+plotW+12, ly, marginL+plotW+36, ly, color)
		fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			marginL+plotW+42, ly+4, xmlEscape(r.Strategy))
	}
	fmt.Fprintln(w, `</svg>`)
	return nil
}

func xmlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '&':
			out = append(out, "&amp;"...)
		case '"':
			out = append(out, "&quot;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
