package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"fedguard/internal/fl"
)

// ResultsFromSeriesCSV parses a file written by WriteSeriesCSV back into
// skeletal Results (strategy label + accuracy series only) — enough to
// re-render charts from archived runs without re-running the federations.
func ResultsFromSeriesCSV(r io.Reader) ([]*Result, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("experiment: parsing series CSV: %w", err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("experiment: series CSV has no data rows")
	}
	header := rows[0]
	if len(header) < 2 || header[0] != "round" {
		return nil, fmt.Errorf("experiment: series CSV header %v", header)
	}
	results := make([]*Result, len(header)-1)
	for i := range results {
		results[i] = &Result{
			Strategy: header[i+1],
			History:  &fl.History{Strategy: header[i+1]},
		}
	}
	for _, row := range rows[1:] {
		if len(row) == 0 {
			continue
		}
		round, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("experiment: bad round %q", row[0])
		}
		for i := 1; i < len(row) && i <= len(results); i++ {
			if row[i] == "" {
				continue
			}
			acc, err := strconv.ParseFloat(row[i], 64)
			if err != nil {
				return nil, fmt.Errorf("experiment: bad accuracy %q", row[i])
			}
			h := results[i-1].History
			h.Rounds = append(h.Rounds, fl.RoundRecord{Round: round, TestAccuracy: acc})
		}
	}
	for _, res := range results {
		res.LastN = len(res.History.Rounds)
	}
	return results, nil
}
