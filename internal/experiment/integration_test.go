package experiment

import (
	"testing"
)

// TestIntegrationFedGuardAuditWorkersDeterminism pins the end-to-end
// determinism contract of the parallel audit: a fixed-seed quick-preset
// FedGuard federation must produce byte-identical FinalWeights whether
// the server audits updates serially or across a worker pool.
func TestIntegrationFedGuardAuditWorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	setup := MustSetup(PresetQuick)
	sc, _ := ScenarioByID("sign-flip-50")
	run := func(workers int) []float32 {
		g := newFedGuard(setup, nil)
		g.AuditWorkers = workers
		res, err := Run(setup, sc, "FedGuard", RunOptions{Strategy: g})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.History.FinalWeights) == 0 {
			t.Fatal("no final weights recorded")
		}
		return res.History.FinalWeights
	}
	serial := run(1)
	parallel := run(4)
	if len(serial) != len(parallel) {
		t.Fatalf("weight counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("FinalWeights[%d] differs: serial %v, parallel %v", i, serial[i], parallel[i])
		}
	}
}

// These tests reproduce the paper's qualitative claims end-to-end at
// quick-preset scale: under majority model-poisoning attacks the
// undefended baseline collapses to chance while FedGuard stays close to
// its benign accuracy.

func TestIntegrationFedAvgCollapsesUnderSignFlip(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	setup := MustSetup(PresetQuick)
	sc, _ := ScenarioByID("sign-flip-50")
	res, err := Run(setup, sc, "FedAvg", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean() > 0.4 {
		t.Fatalf("FedAvg under 50%% sign-flip reached %v; expected collapse", res.Mean())
	}
}

func TestIntegrationFedGuardDefendsSignFlip(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	setup := MustSetup(PresetQuick)
	sc, _ := ScenarioByID("sign-flip-50")
	res, err := Run(setup, sc, "FedGuard", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.History.FinalAccuracy() < 0.6 {
		t.Fatalf("FedGuard under 50%% sign-flip reached only %v", res.History.FinalAccuracy())
	}
	// FedGuard must actually be excluding updates, not just surviving.
	excluded := 0.0
	for _, rec := range res.History.Rounds {
		excluded += rec.Report["fedguard_excluded"]
	}
	if excluded == 0 {
		t.Fatal("FedGuard never excluded any update under a 50% attack")
	}
}

func TestIntegrationFedGuardDefendsSameValue(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	setup := MustSetup(PresetQuick)
	sc, _ := ScenarioByID("same-value-50")
	res, err := Run(setup, sc, "FedGuard", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.History.FinalAccuracy() < 0.6 {
		t.Fatalf("FedGuard under 50%% same-value reached only %v", res.History.FinalAccuracy())
	}
}

func TestIntegrationBenignParity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// Without attackers, FedGuard should track FedAvg closely: its filter
	// may drop below-average updates but must not prevent convergence.
	setup := MustSetup(PresetQuick)
	sc, _ := ScenarioByID("no-attack")
	avg, err := Run(setup, sc, "FedAvg", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	guard, err := Run(setup, sc, "FedGuard", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if guard.History.FinalAccuracy() < avg.History.FinalAccuracy()-0.15 {
		t.Fatalf("benign FedGuard (%v) lags FedAvg (%v) too much",
			guard.History.FinalAccuracy(), avg.History.FinalAccuracy())
	}
}

func TestIntegrationGeoMedSurvivesMinorityNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// With a minority (30%) of label flippers, robust baselines should
	// retain most accuracy (paper: GeoMed 98.13% at 30% label flip).
	setup := MustSetup(PresetQuick)
	sc, _ := ScenarioByID("label-flip-30")
	res, err := Run(setup, sc, "GeoMed", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.History.FinalAccuracy() < 0.5 {
		t.Fatalf("GeoMed under 30%% label flip reached only %v", res.History.FinalAccuracy())
	}
}

func TestIntegrationFedGuardByteOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// FedGuard's downloads must exceed FedAvg's by exactly the decoder
	// payload share (Table V mechanism).
	setup := MustSetup(PresetQuick)
	setup.Rounds = 1
	sc, _ := ScenarioByID("no-attack")
	avg, err := Run(setup, sc, "FedAvg", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	guard, err := Run(setup, sc, "FedGuard", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, avgDown := avg.History.MeanBytes()
	_, guardDown := guard.History.MeanBytes()
	upA, _ := avg.History.MeanBytes()
	upG, _ := guard.History.MeanBytes()
	if upA != upG {
		t.Fatalf("uploads differ: %d vs %d (broadcast is strategy-independent)", upA, upG)
	}
	if guardDown <= avgDown {
		t.Fatalf("FedGuard downloads %d not above FedAvg %d", guardDown, avgDown)
	}
}
