package experiment

import (
	"math"
	"testing"

	"fedguard/internal/tensor"
)

// TestIntegrationFedGuardAuditWorkersDeterminism pins the end-to-end
// determinism contract of the parallel audit: a fixed-seed quick-preset
// FedGuard federation must produce byte-identical FinalWeights whether
// the server audits updates serially or across a worker pool.
func TestIntegrationFedGuardAuditWorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	setup := MustSetup(PresetQuick)
	sc, _ := ScenarioByID("sign-flip-50")
	run := func(workers int) []float32 {
		g := newFedGuard(setup, nil)
		g.AuditWorkers = workers
		res, err := Run(setup, sc, "FedGuard", RunOptions{Strategy: g})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.History.FinalWeights) == 0 {
			t.Fatal("no final weights recorded")
		}
		return res.History.FinalWeights
	}
	serial := run(1)
	parallel := run(4)
	if len(serial) != len(parallel) {
		t.Fatalf("weight counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("FinalWeights[%d] differs: serial %v, parallel %v", i, serial[i], parallel[i])
		}
	}
}

// TestIntegrationAggWorkersDeterminism pins the acceptance contract of
// the blocked aggregation kernels: a fixed-seed quick-preset federation
// produces byte-identical FinalWeights at every aggregation-kernel
// width — serial, a fixed pool, and the GOMAXPROCS default — for each
// kernel-backed strategy, including a run resumed from a mid-run
// checkpoint at a different width than the run that wrote it.
func TestIntegrationAggWorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	defer tensor.SetAggWorkers(0)
	setup := MustSetup(PresetQuick)
	setup.Rounds = 3 // enough rounds to exercise every kernel; keeps 14 runs affordable
	sc, _ := ScenarioByID("sign-flip-50")

	run := func(t *testing.T, strategy string, opts RunOptions) []float32 {
		t.Helper()
		// Reset the pool-wide width so an AggWorkers=0 leg genuinely
		// follows the tensor pool instead of inheriting the prior leg's.
		tensor.SetAggWorkers(0)
		res, err := Run(setup, sc, strategy, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.History.FinalWeights) == 0 {
			t.Fatal("no final weights recorded")
		}
		return res.History.FinalWeights
	}
	sameBits := func(t *testing.T, want, got []float32, leg string) {
		t.Helper()
		if len(want) != len(got) {
			t.Fatalf("%s: weight counts differ: %d vs %d", leg, len(want), len(got))
		}
		for i := range want {
			if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
				t.Fatalf("%s: FinalWeights[%d] differs: %v vs %v", leg, i, want[i], got[i])
			}
		}
	}

	for _, strategy := range []string{"FedAvg", "GeoMed", "Krum", "FedGuard"} {
		t.Run(strategy, func(t *testing.T) {
			serial := run(t, strategy, RunOptions{AggWorkers: 1})
			for _, w := range []int{4, 0} { // 0 = tensor pool default (GOMAXPROCS)
				got := run(t, strategy, RunOptions{AggWorkers: w})
				sameBits(t, serial, got, strategy)
			}
		})
	}

	t.Run("Resume", func(t *testing.T) {
		uninterrupted := run(t, "FedGuard", RunOptions{AggWorkers: 1})
		// Checkpoint every round but stop after round 2, then resume the
		// final round at a wider kernel; the spliced run must reproduce
		// the uninterrupted serial one bit for bit.
		dir := t.TempDir()
		short := setup
		short.Rounds = 2
		tensor.SetAggWorkers(0)
		if _, err := Run(short, sc, "FedGuard", RunOptions{AggWorkers: 4, CheckpointDir: dir}); err != nil {
			t.Fatal(err)
		}
		resumed := run(t, "FedGuard", RunOptions{AggWorkers: 4, CheckpointDir: dir, Resume: true})
		sameBits(t, uninterrupted, resumed, "resumed")
	})
}

// These tests reproduce the paper's qualitative claims end-to-end at
// quick-preset scale: under majority model-poisoning attacks the
// undefended baseline collapses to chance while FedGuard stays close to
// its benign accuracy.

func TestIntegrationFedAvgCollapsesUnderSignFlip(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	setup := MustSetup(PresetQuick)
	sc, _ := ScenarioByID("sign-flip-50")
	res, err := Run(setup, sc, "FedAvg", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean() > 0.4 {
		t.Fatalf("FedAvg under 50%% sign-flip reached %v; expected collapse", res.Mean())
	}
}

func TestIntegrationFedGuardDefendsSignFlip(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	setup := MustSetup(PresetQuick)
	sc, _ := ScenarioByID("sign-flip-50")
	res, err := Run(setup, sc, "FedGuard", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.History.FinalAccuracy() < 0.6 {
		t.Fatalf("FedGuard under 50%% sign-flip reached only %v", res.History.FinalAccuracy())
	}
	// FedGuard must actually be excluding updates, not just surviving.
	excluded := 0.0
	for _, rec := range res.History.Rounds {
		excluded += rec.Report["fedguard_excluded"]
	}
	if excluded == 0 {
		t.Fatal("FedGuard never excluded any update under a 50% attack")
	}
}

func TestIntegrationFedGuardDefendsSameValue(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	setup := MustSetup(PresetQuick)
	sc, _ := ScenarioByID("same-value-50")
	res, err := Run(setup, sc, "FedGuard", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.History.FinalAccuracy() < 0.6 {
		t.Fatalf("FedGuard under 50%% same-value reached only %v", res.History.FinalAccuracy())
	}
}

func TestIntegrationBenignParity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// Without attackers, FedGuard should track FedAvg closely: its filter
	// may drop below-average updates but must not prevent convergence.
	setup := MustSetup(PresetQuick)
	sc, _ := ScenarioByID("no-attack")
	avg, err := Run(setup, sc, "FedAvg", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	guard, err := Run(setup, sc, "FedGuard", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if guard.History.FinalAccuracy() < avg.History.FinalAccuracy()-0.15 {
		t.Fatalf("benign FedGuard (%v) lags FedAvg (%v) too much",
			guard.History.FinalAccuracy(), avg.History.FinalAccuracy())
	}
}

func TestIntegrationGeoMedSurvivesMinorityNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// With a minority (30%) of label flippers, robust baselines should
	// retain most accuracy (paper: GeoMed 98.13% at 30% label flip).
	setup := MustSetup(PresetQuick)
	sc, _ := ScenarioByID("label-flip-30")
	res, err := Run(setup, sc, "GeoMed", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.History.FinalAccuracy() < 0.5 {
		t.Fatalf("GeoMed under 30%% label flip reached only %v", res.History.FinalAccuracy())
	}
}

func TestIntegrationFedGuardByteOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// FedGuard's downloads must exceed FedAvg's by exactly the decoder
	// payload share (Table V mechanism).
	setup := MustSetup(PresetQuick)
	setup.Rounds = 1
	sc, _ := ScenarioByID("no-attack")
	avg, err := Run(setup, sc, "FedAvg", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	guard, err := Run(setup, sc, "FedGuard", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, avgDown := avg.History.MeanBytes()
	_, guardDown := guard.History.MeanBytes()
	upA, _ := avg.History.MeanBytes()
	upG, _ := guard.History.MeanBytes()
	if upA != upG {
		t.Fatalf("uploads differ: %d vs %d (broadcast is strategy-independent)", upA, upG)
	}
	if guardDown <= avgDown {
		t.Fatalf("FedGuard downloads %d not above FedAvg %d", guardDown, avgDown)
	}
}
