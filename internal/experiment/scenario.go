package experiment

import (
	"fmt"

	"fedguard/internal/aggregate"
	"fedguard/internal/attack"
	"fedguard/internal/defense"
	"fedguard/internal/fl"
	"fedguard/internal/rng"
)

// Scenario is one attack configuration of the paper's §IV-B or of the
// extension adversary suite.
type Scenario struct {
	// ID is a stable slug ("sign-flip-50").
	ID string
	// Attack names the attack. The registry NewAttack resolves — the
	// full set of valid values — is: "none", "same-value", "sign-flip",
	// "additive-noise", "label-flip", "scaled-boost", "alie", "ipm",
	// "min-max", "decoder-forge".
	Attack string
	// MaliciousFraction of the client population runs the attack.
	MaliciousFraction float64
	// Description summarizes the setting.
	Description string
}

// Scenarios returns the paper's five evaluation scenarios (Fig. 4 /
// Table IV), the Fig. 5 stress scenario, and the extension adversary
// suite: model replacement, the colluding ALIE/IPM attacks, the
// AGR-tailored min-max attack, and the decoder-forging adaptive attack
// against FedGuard.
func Scenarios() []Scenario {
	return []Scenario{
		{ID: "no-attack", Attack: "none", MaliciousFraction: 0,
			Description: "benign federation (Table IV baseline row)"},
		{ID: "additive-noise-50", Attack: "additive-noise", MaliciousFraction: 0.5,
			Description: "50% malicious peers adding a shared Gaussian noise"},
		{ID: "label-flip-30", Attack: "label-flip", MaliciousFraction: 0.3,
			Description: "30% malicious peers flipping labels 5<->7 and 4<->2"},
		{ID: "sign-flip-50", Attack: "sign-flip", MaliciousFraction: 0.5,
			Description: "50% malicious peers negating their updates"},
		{ID: "same-value-50", Attack: "same-value", MaliciousFraction: 0.5,
			Description: "50% malicious peers uploading all-ones updates"},
		{ID: "label-flip-40", Attack: "label-flip", MaliciousFraction: 0.4,
			Description: "40% malicious label flippers (Fig. 5 stress test)"},
		{ID: "scaled-boost-10", Attack: "scaled-boost", MaliciousFraction: 0.1,
			Description: "10% malicious peers boosting their deltas 10x (model replacement)"},
		{ID: "alie-30", Attack: "alie", MaliciousFraction: 0.3,
			Description: "30% colluders submitting mean - 1.5 std of their drafts (ALIE)"},
		{ID: "ipm-30", Attack: "ipm", MaliciousFraction: 0.3,
			Description: "30% colluders submitting the negated scaled cohort mean (IPM)"},
		{ID: "min-max-30", Attack: "min-max", MaliciousFraction: 0.3,
			Description: "30% colluders at the largest deviation surviving the aggregator (min-max)"},
		{ID: "decoder-forge-30", Attack: "decoder-forge", MaliciousFraction: 0.3,
			Description: "30% adaptive peers with clean CVAEs and targeted 5->7 classifiers"},
	}
}

// ScenarioByID returns the named scenario.
func ScenarioByID(id string) (Scenario, error) {
	for _, sc := range Scenarios() {
		if sc.ID == id {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("experiment: unknown scenario %q", id)
}

// TableIVScenarios returns the four attack columns of Table IV.
func TableIVScenarios() []Scenario {
	var out []Scenario
	for _, sc := range Scenarios() {
		switch sc.ID {
		case "additive-noise-50", "label-flip-30", "sign-flip-50", "same-value-50":
			out = append(out, sc)
		}
	}
	return out
}

// NewAttack instantiates the named attack. The seed pins the colluding
// additive-noise vector. The noise stddev (0.5) is large relative to
// typical weight magnitudes, matching the paper's devastating effect on
// FedAvg.
func NewAttack(name string, seed uint64) (attack.Attack, error) {
	switch name {
	case "none", "":
		return attack.None{}, nil
	case "same-value":
		return attack.NewSameValue(), nil
	case "sign-flip":
		return attack.NewSignFlip(), nil
	case "additive-noise":
		return attack.NewAdditiveNoise(0.5, rng.DeriveSeed(seed, "noise", 0)), nil
	case "label-flip":
		return attack.NewLabelFlip(), nil
	case "scaled-boost":
		return attack.NewScaledBoost(attack.DefaultBoostLambda), nil
	case "alie":
		return attack.NewALIE(), nil
	case "ipm":
		return attack.NewIPM(), nil
	case "min-max":
		return attack.NewMinMax(""), nil
	case "decoder-forge":
		return attack.NewDecoderForge(), nil
	default:
		return nil, fmt.Errorf("experiment: unknown attack %q", name)
	}
}

// AttackNames lists every attack NewAttack resolves, in registry order.
func AttackNames() []string {
	return []string{"none", "same-value", "sign-flip", "additive-noise",
		"label-flip", "scaled-boost", "alie", "ipm", "min-max",
		"decoder-forge"}
}

// MatrixScenarios returns the default attack×strategy sweep rows: one
// static attack and the three adaptive/colluding attacks, the grid the
// extension evaluation (README "Adversary suite") reports.
func MatrixScenarios() []Scenario {
	var out []Scenario
	for _, sc := range Scenarios() {
		switch sc.ID {
		case "sign-flip-50", "alie-30", "min-max-30", "decoder-forge-30":
			out = append(out, sc)
		}
	}
	return out
}

// StrategyNames lists the comparison set of Table IV in paper order.
func StrategyNames() []string {
	return []string{"FedAvg", "GeoMed", "Krum", "Spectral", "FedGuard"}
}

// ExtendedStrategyNames adds the related-work operators this repo also
// implements (usable from the CLI, not part of the paper's tables).
func ExtendedStrategyNames() []string {
	return append(StrategyNames(), "Median", "TrimmedMean", "NormClip",
		"FedGuard-GeoMed", "FedGuard-Median")
}

// NewStrategy instantiates the named strategy for the given setup.
// Spectral is pre-trained on the setup's auxiliary dataset (the paper
// grants it that, §II / §IV-C). The FedGuard-<op> variants exercise the
// §VI-C pluggable inner aggregation operator.
func NewStrategy(name string, setup Setup) (fl.Strategy, error) {
	switch name {
	case "FedAvg":
		return aggregate.NewFedAvg(), nil
	case "GeoMed":
		return aggregate.NewGeoMed(), nil
	case "Krum":
		return aggregate.NewKrum(), nil
	case "Median":
		return aggregate.NewMedian(), nil
	case "TrimmedMean":
		return aggregate.NewTrimmedMean(), nil
	case "NormClip":
		return aggregate.NewNormClip(), nil
	case "Spectral":
		s := NewPretrainedSpectral(setup)
		return s, nil
	case "FedGuard":
		return newFedGuard(setup, nil), nil
	case "FedGuard-GeoMed":
		g := newFedGuard(setup, aggregate.GeometricMedian)
		return renamed{g, "FedGuard-GeoMed"}, nil
	case "FedGuard-Median":
		g := newFedGuard(setup, aggregate.CoordinateMedian)
		return renamed{g, "FedGuard-Median"}, nil
	default:
		return nil, fmt.Errorf("experiment: unknown strategy %q", name)
	}
}

func newFedGuard(setup Setup, inner aggregate.Inner) *defense.FedGuard {
	g := defense.NewFedGuard(setup.Arch, setup.CVAE)
	g.Samples = setup.Samples
	g.Inner = inner
	return g
}

// NewPretrainedSpectral builds and pretrains the Spectral strategy on the
// setup's auxiliary dataset.
func NewPretrainedSpectral(setup Setup) *defense.Spectral {
	s := defense.NewSpectral(setup.Arch)
	_, _, aux := setup.Data()
	pcfg := defense.DefaultPretrainConfig(setup.Train)
	pcfg.Seed = setup.Seed ^ 0x5bec
	if err := s.Pretrain(aux, pcfg); err != nil {
		// Pretrain can only fail on empty aux data, which Setup rules out.
		panic(err)
	}
	return s
}

// renamed wraps a strategy under a different report name (for the
// FedGuard inner-operator variants).
type renamed struct {
	fl.Strategy
	name string
}

func (r renamed) Name() string { return r.name }
