package telemetry

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the distributed-tracing half of the package: real span
// trees (trace ID, span ID, parent ID, monotonic durations, labels)
// that upgrade the flat closure timers of StartSpan. Spans are exported
// as "Span" events through the same JSONL sink as the structured run
// events, so one file per process carries both; cmd/fedtrace merges the
// files from a server and its clients back into per-round timelines.
//
// A SpanContext is 16 bytes and crosses the wire (see wire.Trace and
// the CapTrace capability), which is what lets a client's train/upload
// spans parent onto the span the server opened for its request — the
// causality the flat phase timers could never express across the TCP
// boundary.

// SpanContext identifies one span within one trace: the compact pair
// that crosses process boundaries.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context identifies a real span (the zero
// value means "no trace").
func (c SpanContext) Valid() bool { return c.TraceID != 0 && c.SpanID != 0 }

// SpanEnded is the JSONL export form of one finished span. IDs are
// rendered as fixed-width hex strings — uint64s above 2^53 are not
// JSON-safe as numbers.
type SpanEnded struct {
	Trace  string `json:"trace"`
	Span   string `json:"span"`
	Parent string `json:"parent,omitempty"`
	Name   string `json:"name"`
	Node   string `json:"node"`
	// Start is the wall-clock start in Unix nanoseconds; Duration is
	// measured on the monotonic clock, so it is immune to wall steps.
	Start    int64   `json:"start_unix_ns"`
	Duration int64   `json:"duration_ns"`
	Labels   []Label `json:"labels,omitempty"`
}

// Kind implements Event.
func (SpanEnded) Kind() string { return "Span" }

// Tracer mints span IDs for one named node (e.g. "server", "client-3")
// and exports finished spans. Span IDs carry a hash of the node name in
// their high 32 bits and an atomic counter below, so IDs minted by
// different nodes of one federation never collide and a merged trace
// stays unambiguous without coordination.
type Tracer struct {
	node    string
	hi      uint64
	ctr     atomic.Uint64
	sink    Sink
	metrics *Registry
}

// NewTracer returns a tracer for the named node. sink receives the
// SpanEnded events (nil discards them); metrics receives each span's
// duration as a PhaseMetric observation labeled phase=<span name>, so
// traced and untraced runs feed the same histograms.
func NewTracer(node string, sink Sink, metrics *Registry) *Tracer {
	h := fnv.New64a()
	h.Write([]byte(node))
	hi := h.Sum64() << 32
	if hi == 0 {
		hi = 1 << 32
	}
	return &Tracer{node: node, hi: hi, sink: sink, metrics: metrics}
}

// Node returns the tracer's node name.
func (tr *Tracer) Node() string {
	if tr == nil {
		return ""
	}
	return tr.node
}

// nextID returns a process-unique nonzero ID.
func (tr *Tracer) nextID() uint64 {
	return tr.hi | (tr.ctr.Add(1) & math.MaxUint32)
}

// StartRoot opens a new trace rooted at this node.
func (tr *Tracer) StartRoot(name string, labels ...Label) *Span {
	if tr == nil {
		return nil
	}
	return tr.start(name, tr.nextID(), 0, labels)
}

// StartRemote opens a span whose parent lives on another node,
// identified by a context received over the wire. An invalid (zero)
// context starts a fresh root instead, so untraced peers degrade to
// local-only trees rather than erroring.
func (tr *Tracer) StartRemote(parent SpanContext, name string, labels ...Label) *Span {
	if tr == nil {
		return nil
	}
	if !parent.Valid() {
		return tr.StartRoot(name, labels...)
	}
	return tr.start(name, parent.TraceID, parent.SpanID, labels)
}

func (tr *Tracer) start(name string, traceID, parentID uint64, labels []Label) *Span {
	s := &Span{
		tr:     tr,
		name:   name,
		ctx:    SpanContext{TraceID: traceID, SpanID: tr.nextID()},
		parent: parentID,
		start:  time.Now(),
	}
	if len(labels) > 0 {
		s.labels = append(s.labels, labels...)
	}
	return s
}

// Span is one node of a trace tree. All methods are safe on a nil
// receiver (the disabled form every call site holds when tracing is
// off) and safe for concurrent use.
type Span struct {
	tr     *Tracer
	name   string
	ctx    SpanContext
	parent uint64
	start  time.Time

	mu     sync.Mutex
	labels []Label
	ended  bool
}

// Context returns the span's wire-propagatable identity (zero when the
// span is nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Child opens a sub-span parented to s.
func (s *Span) Child(name string, labels ...Label) *Span {
	if s == nil {
		return nil
	}
	return s.tr.start(name, s.ctx.TraceID, s.ctx.SpanID, labels)
}

// SetLabel attaches (or replaces) a key=value label on the span.
func (s *Span) SetLabel(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, l := range s.labels {
		if l.Key == key {
			s.labels[i].Value = value
			return
		}
	}
	s.labels = append(s.labels, L(key, value))
}

// SetInt attaches an integer-valued label.
func (s *Span) SetInt(key string, v int64) { s.SetLabel(key, strconv.FormatInt(v, 10)) }

// End finishes the span: its monotonic duration is observed into the
// phase histogram and the span is exported as a SpanEnded event. Only
// the first End has any effect.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	labels := append([]Label(nil), s.labels...)
	s.mu.Unlock()
	if s.tr.metrics != nil {
		s.tr.metrics.Histogram(PhaseMetric, L("phase", s.name)).Observe(d.Seconds())
	}
	if s.tr.sink != nil {
		e := SpanEnded{
			Trace:    fmt.Sprintf("%016x", s.ctx.TraceID),
			Span:     fmt.Sprintf("%016x", s.ctx.SpanID),
			Name:     s.name,
			Node:     s.tr.node,
			Start:    s.start.UnixNano(),
			Duration: d.Nanoseconds(),
			Labels:   labels,
		}
		if s.parent != 0 {
			e.Parent = fmt.Sprintf("%016x", s.parent)
		}
		s.tr.sink.Emit(e)
	}
}

// LogBuckets returns histogram bucket upper bounds log-spaced from min
// to at least max with perDecade buckets per factor of ten — the shape
// latency distributions want, where a 1 ms and a 10 s observation both
// need resolution. Degenerate arguments fall back to DefaultBuckets.
func LogBuckets(min, max float64, perDecade int) []float64 {
	if min <= 0 || max <= min || perDecade <= 0 {
		return append([]float64(nil), DefaultBuckets...)
	}
	step := math.Pow(10, 1/float64(perDecade))
	var out []float64
	for b := min; ; b *= step {
		out = append(out, b)
		if b >= max || len(out) >= 200 {
			break
		}
	}
	return out
}

// PeerLatencyMetric is the per-peer request-latency histogram the
// networked server observes: one full request/update exchange per
// observation, labeled client=<id>. Registered with log-spaced buckets
// (see LogBuckets) before the first observation.
const PeerLatencyMetric = "fedguard_peer_latency_seconds"

// BroadcastEncodeMetric is the histogram of broadcast-encoding times:
// one observation per actual delta encode of the round's outgoing
// global. With encode-once sharing, connections holding the same delta
// base reuse one buffer, so observations stay O(1) per round however
// many clients participate.
const BroadcastEncodeMetric = "fedguard_broadcast_encode_seconds"

// AuditOverlapMetric is the histogram of per-round streaming-audit
// overlap: the audit compute (decoder synthesis + scoring) that ran
// while client uploads were still in flight, i.e. work hidden in the
// network shadow instead of serialized after the round barrier.
const AuditOverlapMetric = "fedguard_audit_overlap_seconds"

// AggregateMetric is the per-strategy histogram of server aggregation
// cost: one observation per round, labeled strategy=<name>, covering
// the full server.aggregate phase (defense scoring + robust reduction +
// the ψ update). Together with the workers label on the
// server.aggregate span it lets fedtrace attribute aggregation time to
// strategy × parallelism.
const AggregateMetric = "fedguard_aggregate_seconds"

// CheckpointMetric is the histogram of checkpoint persistence cost: one
// observation per crash-safe snapshot (serialize + fsync + atomic
// rename), so the Table V overhead of running with -checkpoint-dir is
// directly readable from /metrics.
const CheckpointMetric = "fedguard_checkpoint_seconds"
