package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// DebugServer is the live-introspection HTTP listener behind the
// commands' -debug-addr flag. Endpoints:
//
//	/metrics       Prometheus text exposition of the registry
//	/metrics.json  the same snapshot as JSON
//	/healthz       liveness probe ("ok")
//	/debug/vars    expvar (runtime memstats, cmdline, registry snapshot)
//	/debug/pprof/  the standard Go profiling suite
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// expvarOnce guards the process-wide expvar publication (expvar panics
// on duplicate names, and tests may start several debug servers).
var expvarOnce sync.Once

// ServeDebug binds addr (e.g. "127.0.0.1:6060" or ":0") and serves the
// debug endpoints for reg in a background goroutine until Close.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug listener: %w", err)
	}
	expvarOnce.Do(func() {
		// The raw snapshot carries a +Inf histogram bound that
		// json.Marshal rejects; publish the JSON-safe form.
		expvar.Publish("fedguard_metrics", expvar.Func(func() any { return jsonSafeSnapshot(reg.Snapshot()) }))
	})
	srv := &http.Server{Handler: Handler(reg)}
	go srv.Serve(ln)
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Handler returns the debug mux for reg (exposed for embedding into an
// existing server).
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the listener and the server.
func (d *DebugServer) Close() error { return d.srv.Close() }
