package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// spanOf extracts the SpanEnded events from a CollectSink by name.
func spanOf(t *testing.T, s *CollectSink, name string) SpanEnded {
	t.Helper()
	for _, e := range s.ByKind("Span") {
		se := e.(SpanEnded)
		if se.Name == name {
			return se
		}
	}
	t.Fatalf("no span named %q exported", name)
	return SpanEnded{}
}

func TestSpanTreeParenting(t *testing.T) {
	var sink CollectSink
	tel := New(&sink)
	tr := tel.EnableTracing("server")
	if tr == nil || tr.Node() != "server" {
		t.Fatalf("tracer = %+v", tr)
	}

	run := tel.StartRoot("run", L("strategy", "FedGuard"))
	round := run.Child("round", L("round", "1"))
	req := round.Child("server.request", L("client", "3"))
	req.SetInt("retries", 2)
	req.End()
	round.End()
	run.End()

	if got := len(sink.ByKind("Span")); got != 3 {
		t.Fatalf("exported %d spans, want 3", got)
	}
	runS := spanOf(t, &sink, "run")
	roundS := spanOf(t, &sink, "round")
	reqS := spanOf(t, &sink, "server.request")

	if runS.Parent != "" {
		t.Fatalf("root has parent %q", runS.Parent)
	}
	if roundS.Parent != runS.Span {
		t.Fatalf("round.parent = %q, want %q", roundS.Parent, runS.Span)
	}
	if reqS.Parent != roundS.Span {
		t.Fatalf("request.parent = %q, want %q", reqS.Parent, roundS.Span)
	}
	for _, s := range []SpanEnded{runS, roundS, reqS} {
		if s.Trace != runS.Trace {
			t.Fatalf("span %q left the trace: %q vs %q", s.Name, s.Trace, runS.Trace)
		}
		if s.Node != "server" {
			t.Fatalf("span %q node = %q", s.Name, s.Node)
		}
		if s.Duration < 0 || s.Start == 0 {
			t.Fatalf("span %q has times start=%d dur=%d", s.Name, s.Start, s.Duration)
		}
	}
	// Labels survive, including the SetInt one.
	var found bool
	for _, l := range reqS.Labels {
		if l.Key == "retries" && l.Value == "2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("request labels = %v, want retries=2", reqS.Labels)
	}
}

func TestSpanRemoteParenting(t *testing.T) {
	var serverSink, clientSink CollectSink
	server := New(&serverSink)
	server.EnableTracing("server")
	client := New(&clientSink)
	client.EnableTracing("client-3")

	req := server.StartRoot("server.request")
	// The context crosses the wire as two uint64s; the client parents its
	// round span onto it.
	remote := client.StartRemote(req.Context(), "client.round")
	train := remote.Child("client.train")
	train.End()
	remote.End()
	req.End()

	reqS := spanOf(t, &serverSink, "server.request")
	remS := spanOf(t, &clientSink, "client.round")
	trainS := spanOf(t, &clientSink, "client.train")

	if remS.Trace != reqS.Trace {
		t.Fatalf("client joined trace %q, server trace is %q", remS.Trace, reqS.Trace)
	}
	if remS.Parent != reqS.Span {
		t.Fatalf("client.round parent = %q, want server span %q", remS.Parent, reqS.Span)
	}
	if trainS.Parent != remS.Span {
		t.Fatal("client-local child did not parent onto the remote-rooted span")
	}
	if remS.Node != "client-3" || reqS.Node != "server" {
		t.Fatalf("nodes = %q / %q", reqS.Node, remS.Node)
	}
}

func TestSpanIDsDistinctAcrossNodes(t *testing.T) {
	// Two nodes minting IDs without coordination must not collide: the
	// node-hash high bits keep the streams disjoint.
	a := NewTracer("server", nil, nil)
	b := NewTracer("client-7", nil, nil)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		for _, tr := range []*Tracer{a, b} {
			id := tr.StartRoot("x").Context().SpanID
			if id == 0 || seen[id] {
				t.Fatalf("span ID %x reused or zero", id)
			}
			seen[id] = true
		}
	}
}

func TestSpanRemoteInvalidContextDegradesToRoot(t *testing.T) {
	var sink CollectSink
	tel := New(&sink)
	tel.EnableTracing("client-0")
	sp := tel.StartRemote(SpanContext{}, "client.round")
	sp.End()
	s := spanOf(t, &sink, "client.round")
	if s.Parent != "" {
		t.Fatalf("untraced peer produced parent %q, want fresh root", s.Parent)
	}
	if s.Trace == "" || s.Span == "" {
		t.Fatal("degraded span lost its identity")
	}
}

func TestSpanNilSafety(t *testing.T) {
	var sp *Span
	sp.SetLabel("k", "v")
	sp.SetInt("n", 1)
	sp.End()
	if sp.Child("x") != nil {
		t.Fatal("nil span minted a child")
	}
	if sp.Context().Valid() {
		t.Fatal("nil span has a valid context")
	}
	var tr *Tracer
	if tr.StartRoot("x") != nil || tr.StartRemote(SpanContext{TraceID: 1, SpanID: 1}, "y") != nil {
		t.Fatal("nil tracer minted spans")
	}
	var tel *T
	if s := tel.StartRoot("x"); s != nil {
		t.Fatal("nil T minted a span")
	}
	// T without tracing: StartPhase falls back to the flat timer.
	tel = New(nil)
	sp2, stop := tel.StartPhase(nil, "client.train")
	if sp2 != nil {
		t.Fatal("fallback returned a live span")
	}
	stop()
	if got := tel.Metrics.Histogram(PhaseMetric, L("phase", "client.train")).Count(); got != 1 {
		t.Fatalf("fallback observed %d times", got)
	}
}

func TestSpanEndIdempotentAndObservesOnce(t *testing.T) {
	var sink CollectSink
	tel := New(&sink)
	tel.EnableTracing("n")
	sp := tel.StartRoot("round")
	sp.End()
	sp.End()
	sp.End()
	if got := len(sink.ByKind("Span")); got != 1 {
		t.Fatalf("exported %d spans, want 1", got)
	}
	if got := tel.Metrics.Histogram(PhaseMetric, L("phase", "round")).Count(); got != 1 {
		t.Fatalf("observed %d durations, want 1", got)
	}
}

func TestStartPhaseSpanObservesOnce(t *testing.T) {
	// The traced path must feed the same histogram as the untraced one,
	// exactly once per phase.
	tel := New(nil)
	tel.EnableTracing("n")
	root := tel.StartRoot("run")
	sp, stop := tel.StartPhase(root, "server.aggregate")
	if sp == nil {
		t.Fatal("traced StartPhase returned nil span")
	}
	stop()
	if got := tel.Metrics.Histogram(PhaseMetric, L("phase", "server.aggregate")).Count(); got != 1 {
		t.Fatalf("observed %d durations, want 1", got)
	}
}

func TestSpanJSONLExport(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tel := New(sink)
	tel.EnableTracing("server")
	run := tel.StartRoot("run")
	run.Child("round", L("round", "1")).End()
	run.End()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	var env struct {
		Event string `json:"event"`
		Data  struct {
			Trace    string `json:"trace"`
			Span     string `json:"span"`
			Parent   string `json:"parent"`
			Name     string `json:"name"`
			Node     string `json:"node"`
			Start    int64  `json:"start_unix_ns"`
			Duration int64  `json:"duration_ns"`
			Labels   []struct{ Key, Value string }
		} `json:"data"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &env); err != nil {
		t.Fatal(err)
	}
	if env.Event != "Span" || env.Data.Name != "round" || env.Data.Node != "server" {
		t.Fatalf("envelope = %+v", env)
	}
	if len(env.Data.Trace) != 16 || len(env.Data.Span) != 16 || len(env.Data.Parent) != 16 {
		t.Fatalf("IDs not fixed-width hex: %+v", env.Data)
	}
	if env.Data.Start == 0 {
		t.Fatal("span lost its start time")
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(0.001, 10, 3)
	if b[0] != 0.001 {
		t.Fatalf("first bucket = %v", b[0])
	}
	if last := b[len(b)-1]; last < 10 {
		t.Fatalf("last bucket %v does not cover max", last)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("buckets not increasing at %d: %v", i, b)
		}
	}
	// 3 per decade over 4 decades ≈ 13 bounds.
	if len(b) < 12 || len(b) > 14 {
		t.Fatalf("unexpected bucket count %d: %v", len(b), b)
	}
	// Degenerate arguments fall back rather than looping or panicking.
	if got := LogBuckets(0, 1, 3); len(got) != len(DefaultBuckets) {
		t.Fatalf("degenerate min fallback = %v", got)
	}
	if got := LogBuckets(5, 1, 3); len(got) != len(DefaultBuckets) {
		t.Fatalf("degenerate max fallback = %v", got)
	}
}

// TestJSONLSinkConcurrentWriters is the regression test for the sink's
// goroutine-safety contract: the networked server's per-client request
// goroutines all emit spans into one sink while the round loop emits run
// events. Without the mutex around the buffered writer this fails under
// -race; without line-atomic writes the JSONL would interleave and fail
// to parse back.
func TestJSONLSinkConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	tel := New(s)
	tel.EnableTracing("server")

	const goroutines = 8
	const spansEach = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < spansEach; i++ {
				sp := tel.StartRoot("server.request", L("client", fmt.Sprint(g)))
				sp.SetInt("round", int64(i))
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	// RunCompleted must flush the buffer: the file is complete the moment
	// the run logically ends, with no explicit Flush.
	s.Emit(RunCompleted{Rounds: 1})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	want := goroutines*spansEach + 1
	if len(lines) != want {
		t.Fatalf("flushed %d lines, want %d (RunCompleted did not flush?)", len(lines), want)
	}
	for i, line := range lines {
		var env struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal([]byte(line), &env); err != nil {
			t.Fatalf("line %d is not valid JSON (interleaved writes?): %v\n%s", i, err, line)
		}
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
}
