package telemetry

import (
	"context"
	"time"
)

// T bundles the two halves of a run's telemetry: a metrics registry for
// numeric series and a sink for structured events. Every method is safe
// on a nil receiver and with nil fields, so instrumented code never
// branches on whether observability is enabled — a disabled run costs a
// nil check per call site and nothing else.
type T struct {
	Metrics *Registry
	Events  Sink
	// Tracer, when non-nil, upgrades phase timers to real span trees
	// (see EnableTracing). nil keeps tracing off with zero cost.
	Tracer *Tracer
}

// New returns a T with a fresh registry and the given sink (nil sink
// keeps events disabled while metrics collect).
func New(sink Sink) *T {
	return &T{Metrics: NewRegistry(), Events: sink}
}

// EnableTracing attaches a tracer for the named node: subsequent
// StartRoot/StartRemote calls mint real spans, exported as "Span"
// events through the T's sink alongside the structured run events and
// observed into the phase histogram on End.
func (t *T) EnableTracing(node string) *Tracer {
	if t == nil {
		return nil
	}
	t.Tracer = NewTracer(node, t.Events, t.Metrics)
	return t.Tracer
}

// StartRoot opens a new trace rooted at this node (nil without a
// tracer; a nil *Span is valid and disabled).
func (t *T) StartRoot(name string, labels ...Label) *Span {
	if t == nil {
		return nil
	}
	return t.Tracer.StartRoot(name, labels...)
}

// StartRemote opens a span parented to a context received over the
// wire (nil without a tracer).
func (t *T) StartRemote(parent SpanContext, name string, labels ...Label) *Span {
	if t == nil {
		return nil
	}
	return t.Tracer.StartRemote(parent, name, labels...)
}

// StartPhase opens a child span under parent when one is live, falling
// back to a flat phase timer otherwise. Either way the duration lands
// in the PhaseMetric histogram exactly once; call the returned stop
// function to finish. The *Span is nil in the fallback (and always
// safe to use).
func (t *T) StartPhase(parent *Span, name string, labels ...Label) (*Span, func()) {
	if parent != nil {
		sp := parent.Child(name, labels...)
		return sp, sp.End
	}
	return nil, t.StartSpan(name, labels...)
}

// Emit forwards e to the event sink, if any.
func (t *T) Emit(e Event) {
	if t == nil || t.Events == nil {
		return
	}
	t.Events.Emit(e)
}

// noopStop is returned by disabled spans.
func noopStop() {}

// PhaseMetric is the histogram family name all spans observe into,
// labeled by phase.
const PhaseMetric = "fedguard_phase_seconds"

// StartSpan opens a phase timer. The returned stop function records the
// elapsed seconds into the PhaseMetric histogram labeled
// phase=<name> (plus any extra labels); call it exactly once, typically
// via defer.
func (t *T) StartSpan(phase string, labels ...Label) func() {
	if t == nil || t.Metrics == nil {
		return noopStop
	}
	all := make([]Label, 0, len(labels)+1)
	all = append(all, L("phase", phase))
	all = append(all, labels...)
	h := t.Metrics.Histogram(PhaseMetric, all...)
	start := time.Now()
	return func() { h.Observe(time.Since(start).Seconds()) }
}

// AddCounter increments the named counter by d.
func (t *T) AddCounter(name string, d float64, labels ...Label) {
	if t == nil || t.Metrics == nil {
		return
	}
	t.Metrics.Counter(name, labels...).Add(d)
}

// SetGauge sets the named gauge to v.
func (t *T) SetGauge(name string, v float64, labels ...Label) {
	if t == nil || t.Metrics == nil {
		return
	}
	t.Metrics.Gauge(name, labels...).Set(v)
}

// Observe records v into the named histogram.
func (t *T) Observe(name string, v float64, labels ...Label) {
	if t == nil || t.Metrics == nil {
		return
	}
	t.Metrics.Histogram(name, labels...).Observe(v)
}

// ctxKey is the context key type for a *T.
type ctxKey struct{}

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *T) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext extracts the *T carried by ctx, or nil (which is itself a
// valid, disabled T).
func FromContext(ctx context.Context) *T {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*T)
	return t
}

// Phase opens a phase timer against the telemetry carried by ctx:
//
//	defer telemetry.Phase(ctx, "client.train")()
//
// With no telemetry in ctx the call is a no-op. (Formerly named Span;
// renamed when Span became the span-tree node type.)
func Phase(ctx context.Context, phase string, labels ...Label) func() {
	return FromContext(ctx).StartSpan(phase, labels...)
}
