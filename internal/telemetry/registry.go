// Package telemetry is the observability substrate of the repository:
// a lock-cheap metrics registry (counters, gauges, fixed-bucket timing
// histograms, all labelable), span-style phase timers for the federated
// hot path, a structured event log behind a pluggable Sink, and a debug
// HTTP server exposing Prometheus text metrics, expvar and pprof.
//
// The paper's Table V (per-round time and traffic overhead) and Fig. 5
// (behaviour under defense failures) are observability results; this
// package turns them from post-hoc accounting into live, queryable
// series. Everything here is nil-safe: a nil *T (the bundle handed to
// the federation) makes every instrumentation call a no-op, so code can
// be instrumented unconditionally.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value metric dimension (e.g. phase="client.train").
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// DefaultBuckets are the histogram bucket upper bounds used when no
// per-metric override is registered: spanning 1 ms to 60 s, which covers
// everything from a single decoder generation to a full paper-scale
// round.
var DefaultBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// atomicFloat is a float64 with atomic add/load via CAS on the bit
// pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(d float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing series.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (negative deltas are ignored to keep the series monotone).
func (c *Counter) Add(d float64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a series that can move in both directions.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add shifts the value by d.
func (g *Gauge) Add(d float64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram is a fixed-boundary distribution: observation counts per
// bucket plus total count and sum (so rates and means are derivable).
type Histogram struct {
	bounds []float64      // upper bounds, ascending; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Int64
	sum    atomicFloat
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// seriesKind discriminates the union stored in the registry map.
type seriesKind uint8

const (
	kindCounter seriesKind = iota
	kindGauge
	kindHistogram
)

func (k seriesKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (name, labels) instance.
type series struct {
	name   string
	labels []Label
	kind   seriesKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds metric series. The hot path (an existing series being
// updated) costs one RLock'd map lookup plus an atomic op; callers that
// care can also cache the returned handle and skip the lookup entirely.
type Registry struct {
	mu      sync.RWMutex
	series  map[string]*series
	buckets map[string][]float64 // per-name histogram bound overrides
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series:  make(map[string]*series),
		buckets: make(map[string][]float64),
	}
}

// SetBuckets overrides the bucket upper bounds for histograms of the
// given name. It must be called before the first observation of that
// name; later calls have no effect on already-created series.
func (r *Registry) SetBuckets(name string, bounds []float64) {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	r.mu.Lock()
	r.buckets[name] = b
	r.mu.Unlock()
}

// seriesKey renders the canonical map key: name plus sorted labels.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

func sortLabels(labels []Label) []Label {
	if len(labels) < 2 {
		return labels
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// get returns the series for (name, labels), creating it with the given
// kind on first use. A kind mismatch on an existing name returns nil —
// the caller's operation becomes a no-op rather than a panic, because
// telemetry must never take the experiment down.
func (r *Registry) get(name string, kind seriesKind, labels []Label) *series {
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	r.mu.RLock()
	s := r.series[key]
	r.mu.RUnlock()
	if s != nil {
		if s.kind != kind {
			return nil
		}
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.series[key]; s != nil {
		if s.kind != kind {
			return nil
		}
		return s
	}
	s = &series{name: name, labels: labels, kind: kind}
	switch kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		bounds := r.buckets[name]
		if bounds == nil {
			bounds = DefaultBuckets
		}
		s.h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	}
	r.series[key] = s
	return s
}

var noopCounter = &Counter{}
var noopGauge = &Gauge{}
var noopHistogram = &Histogram{counts: make([]atomic.Int64, 1)}

// Counter returns (creating if needed) the counter for (name, labels).
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if s := r.get(name, kindCounter, labels); s != nil {
		return s.c
	}
	return noopCounter
}

// Gauge returns (creating if needed) the gauge for (name, labels).
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if s := r.get(name, kindGauge, labels); s != nil {
		return s.g
	}
	return noopGauge
}

// Histogram returns (creating if needed) the histogram for
// (name, labels).
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if s := r.get(name, kindHistogram, labels); s != nil {
		return s.h
	}
	return noopHistogram
}

// BucketCount is one histogram bucket in a snapshot: the cumulative
// count of observations at or below the upper bound Le.
type BucketCount struct {
	Le    float64 `json:"le"` // +Inf rendered as JSON null by exporters
	Count int64   `json:"count"`
}

// SeriesSnapshot is one series' frozen state.
type SeriesSnapshot struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Labels []Label `json:"labels,omitempty"`
	// Value carries counter/gauge values.
	Value float64 `json:"value,omitempty"`
	// Count, Sum and Buckets carry histogram state; Buckets are
	// cumulative, Prometheus-style.
	Count   int64         `json:"count,omitempty"`
	Sum     float64       `json:"sum,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot freezes every series, sorted by name then label key for
// deterministic output.
func (r *Registry) Snapshot() []SeriesSnapshot {
	r.mu.RLock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return seriesKey(all[i].name, all[i].labels) < seriesKey(all[j].name, all[j].labels)
	})
	out := make([]SeriesSnapshot, 0, len(all))
	for _, s := range all {
		snap := SeriesSnapshot{Name: s.name, Kind: s.kind.String(), Labels: s.labels}
		switch s.kind {
		case kindCounter:
			snap.Value = s.c.Value()
		case kindGauge:
			snap.Value = s.g.Value()
		case kindHistogram:
			snap.Count = s.h.Count()
			snap.Sum = s.h.Sum()
			var cum int64
			for i, b := range s.h.bounds {
				cum += s.h.counts[i].Load()
				snap.Buckets = append(snap.Buckets, BucketCount{Le: b, Count: cum})
			}
			cum += s.h.counts[len(s.h.bounds)].Load()
			snap.Buckets = append(snap.Buckets, BucketCount{Le: math.Inf(1), Count: cum})
		}
		out = append(out, snap)
	}
	return out
}

// promLabels renders a label set in Prometheus exposition syntax,
// optionally with an extra le pair appended.
func promLabels(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, l.Value)
	}
	if le != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "le=%q", le)
	}
	sb.WriteByte('}')
	return sb.String()
}

func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4), grouped by metric family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snaps := r.Snapshot()
	lastFamily := ""
	for _, s := range snaps {
		if s.Name != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
			lastFamily = s.Name
		}
		switch s.Kind {
		case "counter", "gauge":
			if _, err := fmt.Fprintf(w, "%s%s %v\n", s.Name, promLabels(s.Labels, ""), s.Value); err != nil {
				return err
			}
		case "histogram":
			for _, b := range s.Buckets {
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					s.Name, promLabels(s.Labels, promFloat(b.Le)), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %v\n%s_count%s %d\n",
				s.Name, promLabels(s.Labels, ""), s.Sum,
				s.Name, promLabels(s.Labels, ""), s.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// jsonSnapshot mirrors SeriesSnapshot with +Inf made JSON-safe.
type jsonSnapshot struct {
	SeriesSnapshot
	Buckets []jsonBucket `json:"buckets,omitempty"`
}

type jsonBucket struct {
	Le    *float64 `json:"le"` // nil encodes +Inf
	Count int64    `json:"count"`
}

// jsonSafeSnapshot converts a snapshot into a form json.Marshal accepts:
// the +Inf histogram bound is encoded as a null le (JSON has no
// infinity, and encoding/json errors on it).
func jsonSafeSnapshot(snaps []SeriesSnapshot) []jsonSnapshot {
	out := make([]jsonSnapshot, len(snaps))
	for i, s := range snaps {
		out[i].SeriesSnapshot = s
		out[i].SeriesSnapshot.Buckets = nil
		for _, b := range s.Buckets {
			jb := jsonBucket{Count: b.Count}
			if !math.IsInf(b.Le, 1) {
				le := b.Le
				jb.Le = &le
			}
			out[i].Buckets = append(out[i].Buckets, jb)
		}
	}
	return out
}

// WriteJSON renders the snapshot as an indented JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonSafeSnapshot(r.Snapshot()))
}
