package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Event is one structured run event. Implementations are plain data
// structs; Kind returns the stable event-type name written to the log.
type Event interface {
	Kind() string
}

// RunStarted opens an experiment's event stream.
type RunStarted struct {
	Strategy          string  `json:"strategy"`
	NumClients        int     `json:"num_clients"`
	PerRound          int     `json:"per_round"`
	Rounds            int     `json:"rounds"`
	Seed              uint64  `json:"seed"`
	Attack            string  `json:"attack,omitempty"`
	MaliciousFraction float64 `json:"malicious_fraction,omitempty"`
}

// Kind implements Event.
func (RunStarted) Kind() string { return "RunStarted" }

// RoundCompleted records one federated round's full outcome: quality,
// phase-split wall-clock cost, and wire traffic (Table V columns).
type RoundCompleted struct {
	Round            int     `json:"round"`
	TestAccuracy     float64 `json:"test_accuracy"`
	TrainSeconds     float64 `json:"train_seconds"`
	AggregateSeconds float64 `json:"aggregate_seconds"`
	EvalSeconds      float64 `json:"eval_seconds"`
	Seconds          float64 `json:"seconds"`
	UploadBytes      int64   `json:"upload_bytes"`
	DownloadBytes    int64   `json:"download_bytes"`
	// WireUploadBytes/WireDownloadBytes are the measured on-socket bytes
	// (framing, retries, and compression included), as opposed to the
	// logical Table V sizes above.
	WireUploadBytes   int64 `json:"wire_upload_bytes"`
	WireDownloadBytes int64 `json:"wire_download_bytes"`
	Sampled           []int `json:"sampled"`
	MaliciousSampled  int   `json:"malicious_sampled"`
	// Dropped lists sampled clients that failed to deliver an update
	// (networked runs only; empty when the full cohort responded).
	Dropped []int `json:"dropped,omitempty"`
	// Report is the strategy's per-round diagnostic map, carried verbatim.
	Report map[string]float64 `json:"report,omitempty"`
}

// Kind implements Event.
func (RoundCompleted) Kind() string { return "RoundCompleted" }

// ClientExcluded records one update being rejected by a defense: the
// client's score on the round's validation signal (synthetic-set
// accuracy for FedGuard, reconstruction error for Spectral) against the
// round mean that set the bar.
type ClientExcluded struct {
	Round    int     `json:"round"`
	ClientID int     `json:"client_id"`
	Acc      float64 `json:"acc"`
	Mean     float64 `json:"mean"`
}

// Kind implements Event.
func (ClientExcluded) Kind() string { return "ClientExcluded" }

// AttackSampled records that malicious clients were drawn into a round's
// participant set — the ground truth a defense's ClientExcluded events
// can be audited against.
type AttackSampled struct {
	Round     int   `json:"round"`
	ClientIDs []int `json:"client_ids"`
}

// Kind implements Event.
func (AttackSampled) Kind() string { return "AttackSampled" }

// ClientDropped records the networked server abandoning one client for
// the rest of a round: the client missed its deadline, exhausted its
// retries, or died mid-frame. Its update is excluded from aggregation
// (and from FedGuard's audit) exactly like a defense-excluded one, and
// the client may rejoin at a later round.
type ClientDropped struct {
	Round    int `json:"round"`
	ClientID int `json:"client_id"`
	// Reason is "timeout" (deadline expired), "transport" (connection
	// died), "protocol" (corrupt or unexpected frames), or
	// "disconnected" (no live connection when the round started).
	Reason string `json:"reason"`
}

// Kind implements Event.
func (ClientDropped) Kind() string { return "ClientDropped" }

// ClientRejoined records a previously dropped (or never-registered)
// client re-registering mid-run; it receives the current global model
// with its next TrainRequest.
type ClientRejoined struct {
	Round    int `json:"round"`
	ClientID int `json:"client_id"`
}

// Kind implements Event.
func (ClientRejoined) Kind() string { return "ClientRejoined" }

// RoundDegraded records a round that proceeded without its full sampled
// cohort: Responsive of Sampled clients returned updates and the rest
// were dropped (listed in Dropped, in sampled order).
type RoundDegraded struct {
	Round      int   `json:"round"`
	Sampled    int   `json:"sampled"`
	Responsive int   `json:"responsive"`
	Dropped    []int `json:"dropped"`
}

// Kind implements Event.
func (RoundDegraded) Kind() string { return "RoundDegraded" }

// CheckpointWritten records one crash-safe checkpoint landing on disk
// (already fsynced and atomically renamed into place). Seconds is the
// full persistence cost and also feeds the CheckpointMetric histogram.
type CheckpointWritten struct {
	Round   int     `json:"round"`
	Path    string  `json:"path,omitempty"`
	Bytes   int64   `json:"bytes,omitempty"`
	Seconds float64 `json:"seconds"`
}

// Kind implements Event.
func (CheckpointWritten) Kind() string { return "CheckpointWritten" }

// RunResumed records a server continuing a run from a checkpoint: Round
// is the last completed round it restored, so the run picks up at
// Round+1 with state that makes the remaining rounds byte-identical to
// an uninterrupted run.
type RunResumed struct {
	Round    int    `json:"round"`
	Strategy string `json:"strategy,omitempty"`
}

// Kind implements Event.
func (RunResumed) Kind() string { return "RunResumed" }

// RunCompleted closes an experiment's event stream.
type RunCompleted struct {
	Rounds        int     `json:"rounds"`
	FinalAccuracy float64 `json:"final_accuracy"`
	TotalSeconds  float64 `json:"total_seconds"`
}

// Kind implements Event.
func (RunCompleted) Kind() string { return "RunCompleted" }

// MatrixCellCompleted records one finished cell of an attack×strategy
// evaluation matrix: its grid coordinates, summary accuracy, and the
// defense's exclusion performance against the cell's adversary.
type MatrixCellCompleted struct {
	Scenario      string  `json:"scenario"`
	Strategy      string  `json:"strategy"`
	MeanAccuracy  float64 `json:"mean_accuracy"`
	StdAccuracy   float64 `json:"std_accuracy"`
	FinalAccuracy float64 `json:"final_accuracy"`
	// MaliciousExclusionRate is excluded-malicious / sampled-malicious
	// update slots; BenignExclusionRate is the benign counterpart (the
	// defense's false-positive rate).
	MaliciousExclusionRate float64 `json:"malicious_exclusion_rate"`
	BenignExclusionRate    float64 `json:"benign_exclusion_rate"`
	Seconds                float64 `json:"seconds"`
	Err                    string  `json:"err,omitempty"`
}

// Kind implements Event.
func (MatrixCellCompleted) Kind() string { return "MatrixCellCompleted" }

// Sink consumes structured events. Implementations must be safe for
// concurrent use; Emit must never panic the run.
type Sink interface {
	Emit(Event)
}

// envelope is the JSONL wire form: one object per line with the event
// kind, an RFC3339Nano timestamp, and the event payload under data.
type envelope struct {
	Time  string `json:"time"`
	Event string `json:"event"`
	Data  Event  `json:"data"`
}

// JSONLSink writes one JSON object per event to an io.Writer, newline
// delimited and buffered (64 KiB — span-heavy traced runs emit far too
// many events for one syscall each). Marshalling errors are swallowed
// (telemetry must never abort an experiment); write errors are retained
// and available via Err.
//
// JSONLSink is goroutine-safe: Emit and Flush may be called from any
// number of goroutines (the networked server's per-client request
// goroutines all share one sink). The buffer is flushed automatically
// when a RunCompleted event passes through, so the log on disk is
// complete at the moment a run logically ends even if the process never
// reaches Close.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
	now func() time.Time
}

// NewJSONLSink wraps w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriterSize(w, 64<<10), now: time.Now}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(e Event) {
	b, err := json.Marshal(envelope{
		Time:  s.now().UTC().Format(time.RFC3339Nano),
		Event: e.Kind(),
		Data:  e,
	})
	if err != nil {
		return
	}
	b = append(b, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		_, s.err = s.w.Write(b)
	}
	// RunCompleted closes the logical stream: make the file complete now,
	// not at whenever Close happens to run.
	if _, done := e.(RunCompleted); done && s.err == nil {
		s.err = s.w.Flush()
	}
}

// Flush forces buffered events through to the underlying writer and
// returns the first sink error, if any.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = s.w.Flush()
	}
	return s.err
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// FileSink is a JSONLSink over an owned file.
type FileSink struct {
	*JSONLSink
	f *os.File
}

// NewFileSink creates (truncating) path and streams JSONL events to it.
func NewFileSink(path string) (*FileSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: event log: %w", err)
	}
	return &FileSink{JSONLSink: NewJSONLSink(f), f: f}, nil
}

// Close flushes and closes the underlying file, reporting any deferred
// write error.
func (s *FileSink) Close() error {
	werr := s.Flush()
	if err := s.f.Close(); err != nil {
		return err
	}
	return werr
}

// CollectSink buffers events in memory — for tests and for programmatic
// post-run analysis.
type CollectSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (s *CollectSink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Events returns a copy of everything emitted so far.
func (s *CollectSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// ByKind returns the collected events of one kind, in emission order.
func (s *CollectSink) ByKind(kind string) []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Event
	for _, e := range s.events {
		if e.Kind() == kind {
			out = append(out, e)
		}
	}
	return out
}

// MultiSink fans events out to several sinks.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(e Event) {
	for _, s := range m {
		if s != nil {
			s.Emit(e)
		}
	}
}
