package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rounds_total")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	g := r.Gauge("test_accuracy", L("strategy", "FedGuard"))
	g.Set(0.25)
	g.Add(0.5)
	if got := g.Value(); got != 0.75 {
		t.Fatalf("gauge = %v, want 0.75", got)
	}
	// Same (name, labels) returns the same series.
	if r.Counter("rounds_total") != c {
		t.Fatal("counter handle not cached")
	}
	if r.Gauge("test_accuracy", L("strategy", "FedGuard")) != g {
		t.Fatal("gauge handle not cached")
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", L("b", "2"), L("a", "1"))
	b := r.Counter("x", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatal("label order created distinct series")
	}
}

func TestKindMismatchIsNoop(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash").Inc()
	g := r.Gauge("clash") // wrong kind: must not panic, must be inert
	g.Set(99)
	if got := r.Counter("clash").Value(); got != 1 {
		t.Fatalf("counter clobbered by kind mismatch: %v", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	r.SetBuckets("lat", []float64{1, 10, 100})
	h := r.Histogram("lat")
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Fatalf("sum = %v", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d series", len(snap))
	}
	// Cumulative: <=1 holds 0.5 and 1.0; <=10 adds 5; <=100 adds 50;
	// +Inf adds 500.
	want := []int64{2, 3, 4, 5}
	for i, b := range snap[0].Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, b.Count, want[i])
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("n").Inc()
				r.Histogram("h").Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Fatalf("counter = %v, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("rounds_total").Add(3)
	r.Gauge("peer_bytes_read", L("client", "0")).Set(1024)
	r.SetBuckets("dur", []float64{0.1, 1})
	r.Histogram("dur", L("phase", "client.train")).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE rounds_total counter",
		"rounds_total 3",
		`peer_bytes_read{client="0"} 1024`,
		"# TYPE dur histogram",
		`dur_bucket{phase="client.train",le="0.1"} 0`,
		`dur_bucket{phase="client.train",le="1"} 1`,
		`dur_bucket{phase="client.train",le="+Inf"} 1`,
		`dur_sum{phase="client.train"} 0.5`,
		`dur_count{phase="client.train"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Histogram("b").Observe(2)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded %d series, want 2", len(decoded))
	}
}

func TestNilTIsSafe(t *testing.T) {
	var tel *T
	tel.Emit(RoundCompleted{Round: 1})
	tel.AddCounter("x", 1)
	tel.SetGauge("y", 2)
	tel.Observe("z", 3)
	tel.StartSpan("phase")()
	// And a T with nil fields.
	tel = &T{}
	tel.Emit(RunStarted{})
	tel.StartSpan("phase")()
}

func TestSpanObservesPhaseHistogram(t *testing.T) {
	tel := New(nil)
	stop := tel.StartSpan("client.train")
	time.Sleep(time.Millisecond)
	stop()
	h := tel.Metrics.Histogram(PhaseMetric, L("phase", "client.train"))
	if h.Count() != 1 {
		t.Fatalf("span recorded %d observations", h.Count())
	}
	if h.Sum() <= 0 {
		t.Fatalf("span recorded non-positive duration %v", h.Sum())
	}
}

func TestSpanFromContext(t *testing.T) {
	tel := New(nil)
	ctx := NewContext(context.Background(), tel)
	Phase(ctx, "server.aggregate")()
	if got := tel.Metrics.Histogram(PhaseMetric, L("phase", "server.aggregate")).Count(); got != 1 {
		t.Fatalf("context span recorded %d observations", got)
	}
	// A bare context is a no-op, not a panic.
	Phase(context.Background(), "nothing")()
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.now = func() time.Time { return time.Unix(1700000000, 0) }
	s.Emit(RunStarted{Strategy: "FedGuard", NumClients: 16, PerRound: 8, Rounds: 2, Seed: 7})
	s.Emit(ClientExcluded{Round: 1, ClientID: 3, Acc: 0.1, Mean: 0.5})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	var env struct {
		Time  string          `json:"time"`
		Event string          `json:"event"`
		Data  json.RawMessage `json:"data"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &env); err != nil {
		t.Fatal(err)
	}
	if env.Event != "ClientExcluded" || env.Time == "" {
		t.Fatalf("envelope = %+v", env)
	}
	var ce ClientExcluded
	if err := json.Unmarshal(env.Data, &ce); err != nil {
		t.Fatal(err)
	}
	if ce.ClientID != 3 || ce.Round != 1 || ce.Mean != 0.5 {
		t.Fatalf("payload = %+v", ce)
	}
}

func TestCollectSinkByKind(t *testing.T) {
	var s CollectSink
	s.Emit(RoundCompleted{Round: 1})
	s.Emit(ClientExcluded{Round: 1, ClientID: 2})
	s.Emit(RoundCompleted{Round: 2})
	if got := len(s.ByKind("RoundCompleted")); got != 2 {
		t.Fatalf("RoundCompleted events = %d", got)
	}
	if got := len(s.Events()); got != 3 {
		t.Fatalf("total events = %d", got)
	}
}

func TestMultiSink(t *testing.T) {
	var a, b CollectSink
	m := MultiSink{&a, nil, &b}
	m.Emit(RunCompleted{Rounds: 2})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatal("multi sink did not fan out")
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rounds_total").Add(4)
	// A histogram carries a +Inf bucket bound; /debug/vars must still be
	// valid JSON (expvar silently emits nothing on a marshal error).
	reg.Histogram("phase_seconds", L("phase", "train")).Observe(0.2)
	ds, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", ds.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "rounds_total 4") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, body := get("/metrics.json"); code != 200 || !strings.Contains(body, `"rounds_total"`) {
		t.Fatalf("/metrics.json: %d %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars: %d", code)
	} else {
		var doc map[string]json.RawMessage
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("/debug/vars is not valid JSON: %v", err)
		}
		var snaps []jsonSnapshot
		if err := json.Unmarshal(doc["fedguard_metrics"], &snaps); err != nil {
			t.Fatalf("fedguard_metrics expvar: %v", err)
		}
		if len(snaps) == 0 {
			t.Fatal("fedguard_metrics expvar is empty")
		}
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: %d", code)
	}
}
