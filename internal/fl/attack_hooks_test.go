package fl

import (
	"sort"
	"sync"
	"testing"

	"fedguard/internal/attack"
	"fedguard/internal/dataset"
	"fedguard/internal/rng"
)

// spyModelAttack is a plain (non-GlobalAware) attack that records what
// the client hands its PoisonModel hook.
type spyModelAttack struct {
	mu    sync.Mutex
	calls int
	seen  []float32
}

func (s *spyModelAttack) Name() string { return "spy" }
func (s *spyModelAttack) PoisonData(ds *dataset.Dataset, indices []int) (*dataset.Dataset, []int) {
	return ds, indices
}
func (s *spyModelAttack) PoisonModel(w []float32, r *rng.RNG) {
	s.mu.Lock()
	s.calls++
	s.seen = append([]float32(nil), w...)
	s.mu.Unlock()
}

// spyGlobalAttack additionally implements GlobalAware and records which
// of the two hooks fired.
type spyGlobalAttack struct {
	spyModelAttack
	withGlobalCalls int
	global          []float32
}

func (s *spyGlobalAttack) PoisonModelWithGlobal(w, global []float32, r *rng.RNG) {
	s.mu.Lock()
	s.withGlobalCalls++
	s.global = append([]float32(nil), global...)
	s.mu.Unlock()
}

// TestClientScaledBoostUploadEquality pins the GlobalAware arithmetic:
// the boosted upload is exactly global + λ·(trained − global), verified
// against a benign client on the identical RNG stream.
func TestClientScaledBoostUploadEquality(t *testing.T) {
	d := dataset.Generate(30, dataset.DefaultGenOptions(), rng.New(40))
	cfg := tinyClientConfig()
	global := cfg.Arch(rng.New(7)).FlattenParams()
	const lambda = 10

	benign := NewClient(0, d, dataset.Range(30), cfg, nil, rng.New(3))
	boosted := NewClient(0, d, dataset.Range(30), cfg, attack.NewScaledBoost(lambda), rng.New(3))
	ub := benign.RunRound(global, false)
	um := boosted.RunRound(global, false)
	for i := range ub.Weights {
		want := global[i] + lambda*(ub.Weights[i]-global[i])
		if diff := want - um.Weights[i]; diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("weight %d = %v, want %v", i, um.Weights[i], want)
		}
	}
}

// TestClientAttackHookDispatch pins which poison hook a client invokes:
// a GlobalAware attack gets PoisonModelWithGlobal with the round's exact
// starting global (and its plain hook stays cold); a non-GlobalAware
// attack gets PoisonModel with the trained weights and never sees the
// global at all.
func TestClientAttackHookDispatch(t *testing.T) {
	d := dataset.Generate(30, dataset.DefaultGenOptions(), rng.New(41))
	cfg := tinyClientConfig()
	global := cfg.Arch(rng.New(7)).FlattenParams()

	plain := &spyModelAttack{}
	NewClient(0, d, dataset.Range(30), cfg, plain, rng.New(3)).RunRound(global, false)
	if plain.calls != 1 {
		t.Fatalf("PoisonModel called %d times, want 1", plain.calls)
	}
	// The hook sees the *trained* weights, not the global: training must
	// have moved them.
	diff := 0
	for i := range global {
		if plain.seen[i] != global[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("non-GlobalAware hook received the unchanged global")
	}

	aware := &spyGlobalAttack{}
	NewClient(0, d, dataset.Range(30), cfg, aware, rng.New(3)).RunRound(global, false)
	if aware.withGlobalCalls != 1 {
		t.Fatalf("PoisonModelWithGlobal called %d times, want 1", aware.withGlobalCalls)
	}
	if aware.calls != 0 {
		t.Fatal("GlobalAware attack also got the plain PoisonModel hook")
	}
	for i := range global {
		if aware.global[i] != global[i] {
			t.Fatal("GlobalAware hook received a global differing from the round's")
		}
	}
}

// cohortSpy is a CohortAware attack that stamps every colluder draft
// with a sentinel value and records the cohort IDs it was shown.
type cohortSpy struct {
	sentinel float32

	mu      sync.Mutex
	cohorts [][]int
}

func (s *cohortSpy) Name() string { return "cohort-spy" }
func (s *cohortSpy) PoisonData(ds *dataset.Dataset, indices []int) (*dataset.Dataset, []int) {
	return ds, indices
}
func (s *cohortSpy) PoisonModel(w []float32, r *rng.RNG) {}
func (s *cohortSpy) PoisonCohort(drafts [][]float32, ids []int, r *rng.RNG) {
	s.mu.Lock()
	s.cohorts = append(s.cohorts, append([]int(nil), ids...))
	s.mu.Unlock()
	for _, d := range drafts {
		for i := range d {
			d[i] = s.sentinel
		}
	}
}

// cohortChecker is a strategy that verifies, inside the round, that
// malicious updates carry the sentinel and benign updates do not.
type cohortChecker struct {
	t         *testing.T
	malicious map[int]bool
	sentinel  float32
	rounds    int
}

func (c *cohortChecker) Name() string        { return "cohort-checker" }
func (c *cohortChecker) NeedsDecoders() bool { return false }
func (c *cohortChecker) Aggregate(ctx *RoundContext) ([]float32, error) {
	c.rounds++
	for _, u := range ctx.Updates {
		stamped := true
		for _, v := range u.Weights {
			if v != c.sentinel {
				stamped = false
				break
			}
		}
		if c.malicious[u.ClientID] && !stamped {
			c.t.Errorf("round %d: malicious client %d not rewritten by the cohort hook",
				ctx.Round, u.ClientID)
		}
		if !c.malicious[u.ClientID] && stamped {
			c.t.Errorf("round %d: benign client %d carries the cohort sentinel",
				ctx.Round, u.ClientID)
		}
	}
	return append([]float32(nil), ctx.Global...), nil
}

// TestFederationCohortAttackRewrite drives a real federation with a
// CohortAware attack and checks that exactly the sampled malicious
// drafts are rewritten at the round barrier, and that the cohort hook
// sees IDs in ascending order (the determinism contract).
func TestFederationCohortAttackRewrite(t *testing.T) {
	train := dataset.Generate(120, dataset.DefaultGenOptions(), rng.New(50))
	test := dataset.Generate(30, dataset.DefaultGenOptions(), rng.New(51))
	spy := &cohortSpy{sentinel: 42}
	cfg := tinyFederationConfig()
	cfg.MaliciousFraction = 0.5
	cfg.Attack = spy
	fed, err := NewFederation(train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	check := &cohortChecker{t: t, malicious: fed.MaliciousIDs, sentinel: 42}
	if _, err := fed.Run(check, nil); err != nil {
		t.Fatal(err)
	}
	if check.rounds != cfg.Rounds {
		t.Fatalf("strategy saw %d rounds, want %d", check.rounds, cfg.Rounds)
	}
	for _, ids := range spy.cohorts {
		if !sort.IntsAreSorted(ids) {
			t.Fatalf("cohort IDs not ascending: %v", ids)
		}
		for _, id := range ids {
			if !fed.MaliciousIDs[id] {
				t.Fatalf("benign client %d shown to the cohort hook", id)
			}
		}
	}
}

// streamSpy is a StreamingStrategy whose BeginRound only counts calls
// (returning nil makes the server fall back to the batch path, which is
// a legal answer under the streaming contract).
type streamSpy struct {
	cohortChecker
	beginCalls int
}

func (s *streamSpy) BeginRound(ctx *RoundContext, m int) RoundStream {
	s.beginCalls++
	return nil
}

// TestStreamAuditGatedByCohortAttack pins the interaction between the
// streaming audit and cohort attacks: streamed updates would be
// pre-rewrite, so rounds where a CohortAware attack has sampled
// malicious clients must not open a stream, while a benign federation
// streams every round.
func TestStreamAuditGatedByCohortAttack(t *testing.T) {
	train := dataset.Generate(120, dataset.DefaultGenOptions(), rng.New(52))
	test := dataset.Generate(30, dataset.DefaultGenOptions(), rng.New(53))

	// Every client malicious: every round has a sampled cohort, so the
	// stream must never open.
	spy := &cohortSpy{sentinel: 7}
	cfg := tinyFederationConfig()
	cfg.MaliciousFraction = 1.0
	cfg.Attack = spy
	cfg.StreamAudit = true
	fed, err := NewFederation(train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	strat := &streamSpy{cohortChecker: cohortChecker{t: t, malicious: fed.MaliciousIDs, sentinel: 7}}
	if _, err := fed.Run(strat, nil); err != nil {
		t.Fatal(err)
	}
	if strat.beginCalls != 0 {
		t.Fatalf("stream opened %d times under a full cohort attack, want 0", strat.beginCalls)
	}

	// Benign federation: the stream opens every round.
	cfg = tinyFederationConfig()
	cfg.StreamAudit = true
	fed, err = NewFederation(train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	strat = &streamSpy{cohortChecker: cohortChecker{t: t, malicious: fed.MaliciousIDs}}
	if _, err := fed.Run(strat, nil); err != nil {
		t.Fatal(err)
	}
	if strat.beginCalls != cfg.Rounds {
		t.Fatalf("stream opened %d times benign, want %d", strat.beginCalls, cfg.Rounds)
	}
}

// TestFederationCohortDeterministicAcrossWorkers reruns a cohort-attack
// federation at different worker counts and demands byte-identical
// final weights — the CohortAware hook must not introduce
// schedule-dependent state.
func TestFederationCohortDeterministicAcrossWorkers(t *testing.T) {
	train := dataset.Generate(120, dataset.DefaultGenOptions(), rng.New(54))
	test := dataset.Generate(30, dataset.DefaultGenOptions(), rng.New(55))
	run := func(workers int) []float32 {
		cfg := tinyFederationConfig()
		cfg.MaliciousFraction = 0.5
		cfg.Attack = attack.NewALIE()
		cfg.Workers = workers
		fed, err := NewFederation(train, test, cfg)
		if err != nil {
			t.Fatal(err)
		}
		check := &cohortChecker{t: t, malicious: map[int]bool{}, sentinel: -1}
		h, err := fed.Run(check, nil)
		if err != nil {
			t.Fatal(err)
		}
		return h.FinalWeights
	}
	w1, w4 := run(1), run(4)
	for i := range w1 {
		if w1[i] != w4[i] {
			t.Fatalf("weight %d differs across worker counts", i)
		}
	}
}
