package fl

import (
	"fedguard/internal/attack"
	"fedguard/internal/classifier"
	"fedguard/internal/cvae"
	"fedguard/internal/dataset"
	"fedguard/internal/rng"
	"fedguard/internal/telemetry"
)

// ClientConfig bundles the per-client training hyperparameters shared by
// all clients of a federation.
type ClientConfig struct {
	Arch       classifier.Arch
	Train      classifier.TrainConfig
	CVAE       cvae.Config
	CVAETrain  cvae.TrainConfig
	NumClasses int
}

// Client is one federated participant: it owns a private partition of
// the dataset, trains the shared classifier architecture locally each
// round, and — when the strategy requires it — trains a CVAE once on its
// (possibly poisoned) local data and re-uploads the decoder every round
// (paper footnote 5: the partition is static, so the CVAE is trained a
// single time).
type Client struct {
	ID int

	ds      *dataset.Dataset
	indices []int
	cfg     ClientConfig
	att     attack.Attack
	rng     *rng.RNG

	// Poisoned training view, materialized lazily.
	viewReady   bool
	viewDS      *dataset.Dataset
	viewIndices []int

	// Streaming state (§VI-C dynamic datasets): when grow > 0 the client
	// only sees a growing prefix of its partition, and the CVAE is
	// retrained every retrainEvery participations instead of once.
	visible        int
	grow           int
	retrainEvery   int
	sinceCVAETrain int

	// Cached CVAE decoder payload and the classes it saw.
	decoder        []float32
	decoderClasses []int

	// tel records client-phase spans (nil-safe; set by the federation or
	// the networked client loop).
	tel *telemetry.T
}

// NewClient builds a client over the partition ds[indices]. att may be
// attack.None{} for benign clients; r must be a private stream.
func NewClient(id int, ds *dataset.Dataset, indices []int, cfg ClientConfig, att attack.Attack, r *rng.RNG) *Client {
	if att == nil {
		att = attack.None{}
	}
	return &Client{ID: id, ds: ds, indices: indices, cfg: cfg, att: att, rng: r,
		visible: len(indices)}
}

// EnableStream switches the client to the paper's §VI-C dynamic-dataset
// mode: only ⌈initialFraction·len(partition)⌉ samples are visible at
// first, grow more arrive before each participation, and the CVAE is
// retrained every retrainEvery participations (0 keeps the train-once
// behaviour). Call before the first round.
func (c *Client) EnableStream(initialFraction float64, grow, retrainEvery int) {
	if initialFraction < 0 {
		initialFraction = 0
	}
	if initialFraction > 1 {
		initialFraction = 1
	}
	c.visible = int(initialFraction * float64(len(c.indices)))
	if c.visible < 1 && len(c.indices) > 0 {
		c.visible = 1
	}
	c.grow = grow
	c.retrainEvery = retrainEvery
	c.viewReady = false
}

// SetTelemetry attaches the run's telemetry bundle (nil disables
// client-phase spans). Concurrent RunRound calls on *different* clients
// may share one bundle; the registry is concurrency-safe.
func (c *Client) SetTelemetry(t *telemetry.T) { c.tel = t }

// NumSamples returns the currently visible local partition size.
func (c *Client) NumSamples() int { return c.visible }

// Malicious reports whether the client runs a real attack.
func (c *Client) Malicious() bool {
	_, benign := c.att.(attack.None)
	return !benign
}

// AttackName returns the client's attack name ("none" when benign).
func (c *Client) AttackName() string { return c.att.Name() }

func (c *Client) view() (*dataset.Dataset, []int) {
	if !c.viewReady {
		c.viewDS, c.viewIndices = c.att.PoisonData(c.ds, c.indices[:c.visible])
		c.viewReady = true
	}
	return c.viewDS, c.viewIndices
}

// cvaeView returns the training view for the client's CVAE. Attacks
// that poison the classifier's and the generator's data differently (the
// decoder-forging adaptive attack) implement attack.CVAEDataAware and
// get a dedicated view; every other attack trains both models on the
// same poisoned view, the paper's behaviour.
func (c *Client) cvaeView() (*dataset.Dataset, []int) {
	if ca, ok := c.att.(attack.CVAEDataAware); ok {
		return ca.PoisonCVAEData(c.ds, c.indices[:c.visible])
	}
	return c.view()
}

// RunRound executes one federated round for this client: load the global
// parameters, train locally, apply the model-poisoning hook, and return
// the update. When needDecoder is set the client also attaches its CVAE
// decoder payload, training the CVAE first if this is its first
// participation.
func (c *Client) RunRound(global []float32, needDecoder bool) Update {
	return c.RunRoundSpan(global, needDecoder, nil)
}

// RunRoundSpan is RunRound with an explicit trace parent: the client's
// train/cvae_train phases become children of parent when the run is
// traced (in-process runs hand in the per-client round span; the
// networked client parents onto the span received over the wire). A nil
// parent degrades to the flat phase timers.
func (c *Client) RunRoundSpan(global []float32, needDecoder bool, parent *telemetry.Span) Update {
	if c.grow > 0 && c.visible < len(c.indices) {
		c.visible += c.grow
		if c.visible > len(c.indices) {
			c.visible = len(c.indices)
		}
		c.viewReady = false
	}
	ds, indices := c.view()

	_, stopTrain := c.tel.StartPhase(parent, "client.train")
	model := c.cfg.Arch(c.rng)
	if err := model.LoadParams(global); err != nil {
		panic(err) // architecture mismatch is a programming error
	}
	classifier.Train(model, ds, indices, c.cfg.Train, c.rng)
	weights := model.FlattenParams()
	stopTrain()
	if ga, ok := c.att.(attack.GlobalAware); ok {
		ga.PoisonModelWithGlobal(weights, global, c.rng)
	} else {
		c.att.PoisonModel(weights, c.rng)
	}

	u := Update{ClientID: c.ID, Weights: weights, NumSamples: len(indices)}
	if needDecoder {
		u.Decoder, u.DecoderClasses = c.decoderPayload(parent)
	}
	return u
}

// decoderPayload trains the client's CVAE on first use — and, in
// streaming mode, retrains it every retrainEvery participations so the
// decoder tracks the evolving local distribution — returning the cached
// flat decoder vector and the classes it was trained on.
func (c *Client) decoderPayload(parent *telemetry.Span) ([]float32, []int) {
	stale := c.retrainEvery > 0 && c.sinceCVAETrain >= c.retrainEvery
	if c.decoder == nil || stale {
		_, stop := c.tel.StartPhase(parent, "client.cvae_train")
		defer stop()
		ds, indices := c.cvaeView()
		m := cvae.New(c.cfg.CVAE, c.rng)
		m.Train(ds, indices, c.cfg.CVAETrain, c.rng)
		c.decoder = m.DecoderParams()
		c.decoderClasses = classesOf(ds, indices, c.cfg.CVAE.Classes)
		c.sinceCVAETrain = 0
	}
	c.sinceCVAETrain++
	return c.decoder, c.decoderClasses
}

// classesOf returns the sorted distinct labels among ds[indices].
func classesOf(ds *dataset.Dataset, indices []int, numClasses int) []int {
	seen := make([]bool, numClasses)
	for _, i := range indices {
		seen[ds.Labels[i]] = true
	}
	var out []int
	for c, ok := range seen {
		if ok {
			out = append(out, c)
		}
	}
	return out
}
