package fl

import (
	"fmt"
	"sort"

	"fedguard/internal/rng"
)

// Checkpoint is the full resumable state of a federation frozen at a
// round boundary: everything a restarted server needs to continue the
// run and land on FinalWeights byte-identical to an uninterrupted one.
// The server RNG is captured after the round's sample and split, so the
// next round's draws continue the exact stream; client and decoder
// state carry the pieces that are NOT re-derivable from the seed (a
// client's private stream position, its trained CVAE decoder, the
// server's dedup cache). persist.SaveCheckpoint/LoadCheckpoint give the
// on-disk form.
type Checkpoint struct {
	// Round is the last completed round the snapshot reflects.
	Round int
	// Seed and Strategy identify the run; Resume refuses mismatches.
	Seed     uint64
	Strategy string
	// Global is ψ after Round.
	Global []float32
	// ServerRNG is the server stream frozen at the round boundary.
	ServerRNG rng.State
	// Rounds is the history prefix through Round (including Dropped and
	// the wire-byte columns, so a resumed run's Table V is seamless).
	Rounds []RoundRecord
	// Decoders is the per-client decoder-dedup state: content hashes
	// in-process, hashes plus cached payloads for the networked server
	// (which must answer hash-only tokens from restored state).
	Decoders []DecoderState
	// Clients holds in-process client snapshots. Networked checkpoints
	// leave it empty: remote clients own their state and carry it across
	// redials themselves.
	Clients []ClientState
}

// DecoderState is one client's entry in the decoder dedup cache.
type DecoderState struct {
	ID   int
	Hash uint64
	// Params is the cached decoder payload; empty for in-process
	// checkpoints, where the client snapshot already carries it.
	Params []float32
}

// ClientState is the non-re-derivable state of one in-process client:
// the private RNG stream position and the trained CVAE decoder. The
// poisoned data view is deliberately absent — it is a pure function of
// the partition and recomputed on demand.
type ClientState struct {
	ID             int
	RNG            rng.State
	Visible        int
	SinceCVAETrain int
	Decoder        []float32
	DecoderClasses []int
}

// CheckpointSink persists one snapshot and reports where it landed and
// how many bytes it occupies (for the CheckpointWritten event). The
// canonical sink is persist.SaveCheckpoint, wired in by package
// experiment; the indirection keeps fl free of the on-disk format.
type CheckpointSink func(*Checkpoint) (path string, bytes int64, err error)

// CaptureState snapshots everything a resumed run must restore to keep
// this client's stream bit-identical: the RNG position, the streaming
// counters, and the trained CVAE decoder (losing the decoder would
// force a retrain, advancing the RNG stream relative to the original
// run).
func (c *Client) CaptureState() ClientState {
	return ClientState{
		ID:             c.ID,
		RNG:            c.rng.State(),
		Visible:        c.visible,
		SinceCVAETrain: c.sinceCVAETrain,
		Decoder:        append([]float32(nil), c.decoder...),
		DecoderClasses: append([]int(nil), c.decoderClasses...),
	}
}

// RestoreState overwrites the client's mutable state with a snapshot
// taken by CaptureState. The poisoned view is invalidated and rebuilt
// deterministically on next use.
func (c *Client) RestoreState(st ClientState) {
	c.rng.SetState(st.RNG)
	c.visible = st.Visible
	c.sinceCVAETrain = st.SinceCVAETrain
	c.decoder = append([]float32(nil), st.Decoder...)
	c.decoderClasses = append([]int(nil), st.DecoderClasses...)
	c.viewReady = false
	c.viewDS = nil
	c.viewIndices = nil
}

// CheckResume validates that a checkpoint belongs to this (federation,
// strategy) pair and lies inside the round range. Shared with the
// networked server, which performs the identical checks against its
// experiment config.
func CheckResume(cfg FederationConfig, strategyName string, ck *Checkpoint) error {
	switch {
	case ck == nil:
		return fmt.Errorf("fl: resume with nil checkpoint")
	case ck.Seed != cfg.Seed:
		return fmt.Errorf("fl: checkpoint seed %d, federation seed %d", ck.Seed, cfg.Seed)
	case ck.Strategy != strategyName:
		return fmt.Errorf("fl: checkpoint strategy %q, resuming with %q", ck.Strategy, strategyName)
	case ck.Round < 1 || ck.Round > cfg.Rounds:
		return fmt.Errorf("fl: checkpoint round %d outside 1..%d", ck.Round, cfg.Rounds)
	case len(ck.Rounds) != ck.Round:
		return fmt.Errorf("fl: checkpoint carries %d round records for round %d", len(ck.Rounds), ck.Round)
	}
	return nil
}

// checkpointEvery normalizes the cadence: any non-positive setting means
// every round once a sink or directory is configured.
func checkpointEvery(every int) int {
	if every > 0 {
		return every
	}
	return 1
}

// decoderStates flattens the dedup map in ID order, so checkpoint bytes
// are deterministic for a given run state.
func decoderStates(hashes map[int]uint64) []DecoderState {
	ids := make([]int, 0, len(hashes))
	for id := range hashes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]DecoderState, len(ids))
	for i, id := range ids {
		out[i] = DecoderState{ID: id, Hash: hashes[id]}
	}
	return out
}

// captureClients snapshots every client in ID order.
func captureClients(clients []*Client) []ClientState {
	out := make([]ClientState, len(clients))
	for i, c := range clients {
		out[i] = c.CaptureState()
	}
	return out
}
