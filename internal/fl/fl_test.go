package fl

import (
	"math"
	"testing"

	"fedguard/internal/attack"
	"fedguard/internal/classifier"
	"fedguard/internal/cvae"
	"fedguard/internal/dataset"
	"fedguard/internal/rng"
	"fedguard/internal/telemetry"
)

func tinyClientConfig() ClientConfig {
	return ClientConfig{
		Arch:       classifier.Tiny(),
		Train:      classifier.TrainConfig{Epochs: 1, BatchSize: 16, LR: 0.1, Momentum: 0.9},
		CVAE:       cvae.Config{Input: 784, Hidden: 16, Latent: 2, Classes: 10},
		CVAETrain:  cvae.TrainConfig{Epochs: 1, BatchSize: 16, LR: 1e-3},
		NumClasses: 10,
	}
}

func tinyFederationConfig() FederationConfig {
	return FederationConfig{
		NumClients: 6,
		PerRound:   4,
		Rounds:     2,
		Alpha:      10,
		ServerLR:   1,
		Client:     tinyClientConfig(),
		Seed:       42,
	}
}

func TestClientRunRoundProducesUpdate(t *testing.T) {
	r := rng.New(1)
	d := dataset.Generate(60, dataset.DefaultGenOptions(), r)
	cfg := tinyClientConfig()
	c := NewClient(3, d, dataset.Range(60), cfg, nil, r.Split())
	global := cfg.Arch(rng.New(7)).FlattenParams()
	u := c.RunRound(global, false)
	if u.ClientID != 3 {
		t.Fatalf("ClientID = %d", u.ClientID)
	}
	if u.NumSamples != 60 {
		t.Fatalf("NumSamples = %d", u.NumSamples)
	}
	if len(u.Weights) != len(global) {
		t.Fatalf("weights %d, want %d", len(u.Weights), len(global))
	}
	if u.Decoder != nil {
		t.Fatal("decoder attached without being requested")
	}
	// Training must move the weights.
	diff := 0
	for i := range global {
		if u.Weights[i] != global[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("local training did not change any weight")
	}
}

func TestClientDecoderCachedAcrossRounds(t *testing.T) {
	r := rng.New(2)
	d := dataset.Generate(40, dataset.DefaultGenOptions(), r)
	cfg := tinyClientConfig()
	c := NewClient(0, d, dataset.Range(40), cfg, nil, r.Split())
	global := cfg.Arch(rng.New(7)).FlattenParams()
	u1 := c.RunRound(global, true)
	u2 := c.RunRound(u1.Weights, true)
	if u1.Decoder == nil || u2.Decoder == nil {
		t.Fatal("decoder payload missing")
	}
	if &u1.Decoder[0] != &u2.Decoder[0] {
		t.Fatal("CVAE retrained despite static partition (paper footnote 5)")
	}
	if len(u1.Decoder) != cvae.DecoderSize(cfg.CVAE) {
		t.Fatalf("decoder payload %d, want %d", len(u1.Decoder), cvae.DecoderSize(cfg.CVAE))
	}
}

func TestClientMaliciousFlag(t *testing.T) {
	r := rng.New(3)
	d := dataset.Generate(20, dataset.DefaultGenOptions(), r)
	cfg := tinyClientConfig()
	benign := NewClient(0, d, dataset.Range(20), cfg, nil, r.Split())
	if benign.Malicious() {
		t.Fatal("benign client reports malicious")
	}
	mal := NewClient(1, d, dataset.Range(20), cfg, attack.NewSignFlip(), r.Split())
	if !mal.Malicious() {
		t.Fatal("sign-flip client reports benign")
	}
	if mal.AttackName() != "sign-flip" {
		t.Fatalf("AttackName = %q", mal.AttackName())
	}
}

func TestClientModelAttackApplied(t *testing.T) {
	r := rng.New(4)
	d := dataset.Generate(20, dataset.DefaultGenOptions(), r)
	cfg := tinyClientConfig()
	c := NewClient(0, d, dataset.Range(20), cfg, attack.NewSameValue(), r.Split())
	global := cfg.Arch(rng.New(7)).FlattenParams()
	u := c.RunRound(global, false)
	for _, v := range u.Weights {
		if v != 1 {
			t.Fatal("same-value attack not applied to upload")
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := tinyFederationConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(*FederationConfig){
		func(c *FederationConfig) { c.NumClients = 0 },
		func(c *FederationConfig) { c.PerRound = 0 },
		func(c *FederationConfig) { c.PerRound = c.NumClients + 1 },
		func(c *FederationConfig) { c.Rounds = 0 },
		func(c *FederationConfig) { c.Alpha = 0 },
		func(c *FederationConfig) { c.ServerLR = 0 },
		func(c *FederationConfig) { c.ServerLR = 1.5 },
		func(c *FederationConfig) { c.MaliciousFraction = -0.1 },
		func(c *FederationConfig) { c.MaliciousFraction = 0.5 }, // nil Attack
		func(c *FederationConfig) { c.Client.Arch = nil },
	}
	for i, mutate := range cases {
		bad := tinyFederationConfig()
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

// fakeStrategy records what it sees and returns the global unchanged.
type fakeStrategy struct {
	rounds   int
	lastSeen int
	decoders bool
}

func (f *fakeStrategy) Name() string        { return "fake" }
func (f *fakeStrategy) NeedsDecoders() bool { return f.decoders }
func (f *fakeStrategy) Aggregate(ctx *RoundContext) ([]float32, error) {
	f.rounds++
	f.lastSeen = len(ctx.Updates)
	out := make([]float32, len(ctx.Global))
	copy(out, ctx.Global)
	return out, nil
}

func TestFederationRunsAllRounds(t *testing.T) {
	r := rng.New(5)
	train := dataset.Generate(120, dataset.DefaultGenOptions(), r)
	test := dataset.Generate(40, dataset.DefaultGenOptions(), r)
	cfg := tinyFederationConfig()
	fed, err := NewFederation(train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := &fakeStrategy{}
	calls := 0
	h, err := fed.Run(s, func(RoundRecord) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	if s.rounds != cfg.Rounds || len(h.Rounds) != cfg.Rounds || calls != cfg.Rounds {
		t.Fatalf("rounds: strategy %d, history %d, callbacks %d", s.rounds, len(h.Rounds), calls)
	}
	if s.lastSeen != cfg.PerRound {
		t.Fatalf("strategy saw %d updates, want %d", s.lastSeen, cfg.PerRound)
	}
	for _, rec := range h.Rounds {
		if rec.TestAccuracy < 0 || rec.TestAccuracy > 1 {
			t.Fatalf("accuracy %v out of range", rec.TestAccuracy)
		}
		if len(rec.Sampled) != cfg.PerRound {
			t.Fatalf("sampled %d clients", len(rec.Sampled))
		}
		if rec.UploadBytes <= 0 || rec.DownloadBytes <= 0 {
			t.Fatalf("byte accounting missing: %+v", rec)
		}
	}
}

func TestFederationDeterministic(t *testing.T) {
	r := rng.New(6)
	train := dataset.Generate(120, dataset.DefaultGenOptions(), r)
	test := dataset.Generate(40, dataset.DefaultGenOptions(), r)
	cfg := tinyFederationConfig()
	cfg.Workers = 4 // exercise the pool: scheduling must not leak into results

	run := func() []float64 {
		fed, err := NewFederation(train, test, cfg)
		if err != nil {
			t.Fatal(err)
		}
		h, err := fed.Run(&fedAvgForTest{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return h.Accuracies()
	}
	a := run()
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d accuracy differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

// fedAvgForTest is a minimal in-package FedAvg (the real one lives in
// package aggregate, which would create an import cycle in tests).
type fedAvgForTest struct{}

func (fedAvgForTest) Name() string        { return "fedavg-test" }
func (fedAvgForTest) NeedsDecoders() bool { return false }
func (fedAvgForTest) Aggregate(ctx *RoundContext) ([]float32, error) {
	out := make([]float64, len(ctx.Updates[0].Weights))
	var total float64
	for _, u := range ctx.Updates {
		w := float64(u.NumSamples)
		total += w
		for i, v := range u.Weights {
			out[i] += w * float64(v)
		}
	}
	res := make([]float32, len(out))
	for i := range out {
		res[i] = float32(out[i] / total)
	}
	return res, nil
}

func TestFederationMaliciousPlacement(t *testing.T) {
	r := rng.New(7)
	train := dataset.Generate(120, dataset.DefaultGenOptions(), r)
	test := dataset.Generate(40, dataset.DefaultGenOptions(), r)
	cfg := tinyFederationConfig()
	cfg.NumClients = 10
	cfg.MaliciousFraction = 0.5
	cfg.Attack = attack.NewSignFlip()
	fed, err := NewFederation(train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fed.MaliciousIDs) != 5 {
		t.Fatalf("%d malicious of 10 at fraction 0.5", len(fed.MaliciousIDs))
	}
	// Placement must be deterministic in the seed.
	fed2, _ := NewFederation(train, test, cfg)
	for id := range fed.MaliciousIDs {
		if !fed2.MaliciousIDs[id] {
			t.Fatal("malicious placement differs across identical configs")
		}
	}
}

func TestFederationServerLRDampens(t *testing.T) {
	r := rng.New(8)
	train := dataset.Generate(120, dataset.DefaultGenOptions(), r)
	test := dataset.Generate(40, dataset.DefaultGenOptions(), r)

	// A strategy that returns all-zeros: with lr=1 the global becomes 0;
	// with lr=0.5 it only moves halfway.
	zero := &zeroStrategy{}
	cfg := tinyFederationConfig()
	cfg.Rounds = 1
	fed, _ := NewFederation(train, test, cfg)
	if _, err := fed.Run(zero, nil); err != nil {
		t.Fatal(err)
	}
	full := zero.lastGlobalNorm

	cfg.ServerLR = 0.5
	fed, _ = NewFederation(train, test, cfg)
	zero2 := &zeroStrategy{}
	if _, err := fed.Run(zero2, nil); err != nil {
		t.Fatal(err)
	}
	if zero2.lastGlobalNorm != full {
		t.Fatal("initial global differs between runs with same seed")
	}
	_ = full
}

type zeroStrategy struct {
	lastGlobalNorm float64
}

func (z *zeroStrategy) Name() string        { return "zero" }
func (z *zeroStrategy) NeedsDecoders() bool { return false }
func (z *zeroStrategy) Aggregate(ctx *RoundContext) ([]float32, error) {
	var n float64
	for _, v := range ctx.Global {
		n += float64(v) * float64(v)
	}
	z.lastGlobalNorm = math.Sqrt(n)
	return make([]float32, len(ctx.Global)), nil
}

func TestFederationDecodersOnDemand(t *testing.T) {
	r := rng.New(9)
	train := dataset.Generate(120, dataset.DefaultGenOptions(), r)
	test := dataset.Generate(40, dataset.DefaultGenOptions(), r)
	cfg := tinyFederationConfig()
	cfg.Rounds = 1
	fed, _ := NewFederation(train, test, cfg)

	check := &decoderChecker{}
	if _, err := fed.Run(check, nil); err != nil {
		t.Fatal(err)
	}
	if check.sawDecoder {
		t.Fatal("decoders attached for a strategy that does not need them")
	}

	check = &decoderChecker{need: true}
	fed2, _ := NewFederation(train, test, cfg)
	if _, err := fed2.Run(check, nil); err != nil {
		t.Fatal(err)
	}
	if !check.sawDecoder {
		t.Fatal("decoders missing for a strategy that needs them")
	}
}

type decoderChecker struct {
	need       bool
	sawDecoder bool
}

func (d *decoderChecker) Name() string        { return "decoder-check" }
func (d *decoderChecker) NeedsDecoders() bool { return d.need }
func (d *decoderChecker) Aggregate(ctx *RoundContext) ([]float32, error) {
	for _, u := range ctx.Updates {
		if u.Decoder != nil {
			d.sawDecoder = true
		}
	}
	out := make([]float32, len(ctx.Global))
	copy(out, ctx.Global)
	return out, nil
}

// TestWireBytesApplyDecoderDedup pins the in-process wire accounting:
// uploads mirror the logical column, and a client's decoder is charged
// to WireDownloadBytes only on its first delivery (its content never
// changes across rounds, so the networked dedup would token it after
// that). Every later round must charge exactly the weights plus the
// decoders of newly sampled clients.
func TestWireBytesApplyDecoderDedup(t *testing.T) {
	r := rng.New(5)
	train := dataset.Generate(120, dataset.DefaultGenOptions(), r)
	test := dataset.Generate(40, dataset.DefaultGenOptions(), r)
	cfg := tinyFederationConfig()
	cfg.Rounds = 3
	fed, err := NewFederation(train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := fed.Run(&decoderChecker{need: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	weightBytes := int64(len(h.FinalWeights)) * 4
	seen := map[int]bool{}
	for i, rec := range h.Rounds {
		if rec.WireUploadBytes != rec.UploadBytes {
			t.Fatalf("round %d: wire uploads %d != logical %d",
				i+1, rec.WireUploadBytes, rec.UploadBytes)
		}
		m := int64(len(rec.Sampled))
		// Per-update decoder size, recoverable because every update in a
		// round carries weights plus one identical-size decoder.
		decBytes := rec.DownloadBytes/m - weightBytes
		if decBytes <= 0 {
			t.Fatalf("round %d: no decoder traffic in logical downloads", i+1)
		}
		var newClients int64
		for _, id := range rec.Sampled {
			if !seen[id] {
				seen[id] = true
				newClients++
			}
		}
		want := m*weightBytes + newClients*decBytes
		if rec.WireDownloadBytes != want {
			t.Fatalf("round %d: wire downloads %d, want %d (%d new of %d sampled)",
				i+1, rec.WireDownloadBytes, want, newClients, m)
		}
	}
	if len(seen) == cfg.PerRound*cfg.Rounds {
		t.Fatal("no client was ever resampled; dedup path unexercised")
	}
}

func TestHistoryStats(t *testing.T) {
	h := &History{Strategy: "x"}
	for i, acc := range []float64{0.1, 0.2, 0.9, 0.9, 0.9} {
		h.Rounds = append(h.Rounds, RoundRecord{
			Round: i + 1, TestAccuracy: acc, Seconds: 2,
			UploadBytes: 100, DownloadBytes: 200,
		})
	}
	mean, std := h.LastNStats(3)
	if math.Abs(mean-0.9) > 1e-12 || std > 1e-12 {
		t.Fatalf("LastNStats(3) = %v ± %v", mean, std)
	}
	mean, _ = h.LastNStats(100)
	if math.Abs(mean-0.6) > 1e-12 {
		t.Fatalf("LastNStats(all) mean = %v", mean)
	}
	if h.FinalAccuracy() != 0.9 {
		t.Fatalf("FinalAccuracy = %v", h.FinalAccuracy())
	}
	if h.MeanSeconds() != 2 {
		t.Fatalf("MeanSeconds = %v", h.MeanSeconds())
	}
	up, down := h.MeanBytes()
	if up != 100 || down != 200 {
		t.Fatalf("MeanBytes = %d, %d", up, down)
	}
	empty := &History{}
	if empty.FinalAccuracy() != 0 || empty.MeanSeconds() != 0 {
		t.Fatal("empty history stats should be zero")
	}
	if m, s := empty.LastNStats(5); m != 0 || s != 0 {
		t.Fatal("empty history LastNStats should be zero")
	}
}

func TestFederationRecordsFinalWeights(t *testing.T) {
	r := rng.New(20)
	train := dataset.Generate(120, dataset.DefaultGenOptions(), r)
	test := dataset.Generate(40, dataset.DefaultGenOptions(), r)
	cfg := tinyFederationConfig()
	cfg.Rounds = 1
	fed, err := NewFederation(train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := fed.Run(&fedAvgForTest{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Client.Arch(rng.New(1)).NumParams()
	if len(h.FinalWeights) != want {
		t.Fatalf("FinalWeights has %d params, want %d", len(h.FinalWeights), want)
	}
	var nonzero bool
	for _, v := range h.FinalWeights {
		if v != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("FinalWeights is all zeros")
	}
}

func TestClientReportsDecoderClasses(t *testing.T) {
	r := rng.New(21)
	d := dataset.Generate(60, dataset.DefaultGenOptions(), r)
	// Restrict the partition to samples of classes 3 and 4 only.
	var indices []int
	for i, l := range d.Labels {
		if l == 3 || l == 4 {
			indices = append(indices, i)
		}
	}
	cfg := tinyClientConfig()
	c := NewClient(0, d, indices, cfg, nil, r.Split())
	global := cfg.Arch(rng.New(7)).FlattenParams()
	u := c.RunRound(global, true)
	if len(u.DecoderClasses) != 2 || u.DecoderClasses[0] != 3 || u.DecoderClasses[1] != 4 {
		t.Fatalf("DecoderClasses = %v, want [3 4]", u.DecoderClasses)
	}
}

func TestClientLabelFlipChangesDecoderClassesView(t *testing.T) {
	r := rng.New(22)
	d := dataset.Generate(100, dataset.DefaultGenOptions(), r)
	// Keep only class-5 samples; a label-flip attacker trains its CVAE on
	// them relabelled as 7.
	var indices []int
	for i, l := range d.Labels {
		if l == 5 {
			indices = append(indices, i)
		}
	}
	cfg := tinyClientConfig()
	c := NewClient(0, d, indices, cfg, attack.NewLabelFlip(), r.Split())
	global := cfg.Arch(rng.New(7)).FlattenParams()
	u := c.RunRound(global, true)
	if len(u.DecoderClasses) != 1 || u.DecoderClasses[0] != 7 {
		t.Fatalf("DecoderClasses = %v, want [7] (flipped view)", u.DecoderClasses)
	}
}

func TestClientStreamGrowth(t *testing.T) {
	r := rng.New(23)
	d := dataset.Generate(100, dataset.DefaultGenOptions(), r)
	cfg := tinyClientConfig()
	c := NewClient(0, d, dataset.Range(100), cfg, nil, r.Split())
	c.EnableStream(0.2, 10, 0)
	if c.NumSamples() != 20 {
		t.Fatalf("initial visible = %d, want 20", c.NumSamples())
	}
	global := cfg.Arch(rng.New(7)).FlattenParams()
	u := c.RunRound(global, false)
	if u.NumSamples != 30 {
		t.Fatalf("after 1 round NumSamples = %d, want 30", u.NumSamples)
	}
	for i := 0; i < 10; i++ {
		u = c.RunRound(global, false)
	}
	if u.NumSamples != 100 {
		t.Fatalf("stream did not saturate: %d", u.NumSamples)
	}
}

func TestClientStreamCVAERetrain(t *testing.T) {
	r := rng.New(24)
	d := dataset.Generate(60, dataset.DefaultGenOptions(), r)
	cfg := tinyClientConfig()
	c := NewClient(0, d, dataset.Range(60), cfg, nil, r.Split())
	c.EnableStream(0.5, 5, 2) // retrain every 2 participations
	global := cfg.Arch(rng.New(7)).FlattenParams()
	u1 := c.RunRound(global, true)
	u2 := c.RunRound(global, true)
	if &u1.Decoder[0] != &u2.Decoder[0] {
		t.Fatal("decoder retrained before retrainEvery participations")
	}
	u3 := c.RunRound(global, true)
	if &u2.Decoder[0] == &u3.Decoder[0] {
		t.Fatal("decoder not retrained after retrainEvery participations")
	}
}

func TestStreamConfigValidation(t *testing.T) {
	cfg := tinyFederationConfig()
	cfg.Stream = &StreamConfig{InitialFraction: 0, PerRound: 1}
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero InitialFraction accepted")
	}
	cfg.Stream = &StreamConfig{InitialFraction: 0.5, PerRound: -1}
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative PerRound accepted")
	}
	cfg.Stream = &StreamConfig{InitialFraction: 0.5, PerRound: 2, CVAERetrainEvery: 3}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid stream config rejected: %v", err)
	}
}

func TestFederationWithStreamRuns(t *testing.T) {
	r := rng.New(25)
	train := dataset.Generate(200, dataset.DefaultGenOptions(), r)
	test := dataset.Generate(40, dataset.DefaultGenOptions(), r)
	cfg := tinyFederationConfig()
	cfg.Rounds = 3
	cfg.Stream = &StreamConfig{InitialFraction: 0.3, PerRound: 3, CVAERetrainEvery: 2}
	fed, err := NewFederation(train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := fed.Run(&fedAvgForTest{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Rounds) != 3 {
		t.Fatalf("%d rounds", len(h.Rounds))
	}
}

func TestClientGlobalAwareAttack(t *testing.T) {
	r := rng.New(26)
	d := dataset.Generate(30, dataset.DefaultGenOptions(), r)
	cfg := tinyClientConfig()
	boost := attack.NewScaledBoost(5)
	c := NewClient(0, d, dataset.Range(30), cfg, boost, r.Split())
	global := cfg.Arch(rng.New(7)).FlattenParams()

	// The boosted update must equal global + 5*(trained - global); verify
	// by comparing against a benign client with the identical stream.
	benign := NewClient(0, d, dataset.Range(30), cfg, nil, rng.New(0))
	cBoost := NewClient(0, d, dataset.Range(30), cfg, boost, rng.New(0))
	ub := benign.RunRound(global, false)
	um := cBoost.RunRound(global, false)
	for i := range ub.Weights {
		want := global[i] + 5*(ub.Weights[i]-global[i])
		if diff := want - um.Weights[i]; diff > 1e-5 || diff < -1e-5 {
			t.Fatalf("boosted weight %d = %v, want %v", i, um.Weights[i], want)
		}
	}
	_ = c
}

func TestByteAccountingExact(t *testing.T) {
	r := rng.New(30)
	train := dataset.Generate(120, dataset.DefaultGenOptions(), r)
	test := dataset.Generate(30, dataset.DefaultGenOptions(), r)
	cfg := tinyFederationConfig()
	cfg.Rounds = 1
	fed, err := NewFederation(train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	check := &decoderChecker{need: true}
	h, err := fed.Run(check, nil)
	if err != nil {
		t.Fatal(err)
	}
	nParams := cfg.Client.Arch(rng.New(1)).NumParams()
	decParams := cvae.DecoderSize(cfg.Client.CVAE)
	rec := h.Rounds[0]
	wantUp := int64(cfg.PerRound) * int64(nParams) * 4
	wantDown := int64(cfg.PerRound) * int64(nParams+decParams) * 4
	if rec.UploadBytes != wantUp {
		t.Fatalf("UploadBytes = %d, want %d", rec.UploadBytes, wantUp)
	}
	if rec.DownloadBytes != wantDown {
		t.Fatalf("DownloadBytes = %d, want %d", rec.DownloadBytes, wantDown)
	}
}

func TestCustomSamplerUsed(t *testing.T) {
	r := rng.New(31)
	train := dataset.Generate(120, dataset.DefaultGenOptions(), r)
	test := dataset.Generate(30, dataset.DefaultGenOptions(), r)
	cfg := tinyFederationConfig()
	cfg.Rounds = 2
	fixed := fixedSampler{ids: []int{1, 2, 3, 4}}
	cfg.Sampler = fixed
	fed, err := NewFederation(train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := fed.Run(&fedAvgForTest{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range h.Rounds {
		for i, id := range rec.Sampled {
			if id != fixed.ids[i] {
				t.Fatalf("sampler ignored: sampled %v", rec.Sampled)
			}
		}
	}
}

type fixedSampler struct{ ids []int }

func (f fixedSampler) SampleClients(round, n, m int, r *rng.RNG) []int { return f.ids }

// excludingStrategy rejects the first update every round through the
// typed ExcludeClient path, recording what it did for comparison with
// the event log.
type excludingStrategy struct {
	excluded [][]int
}

func (e *excludingStrategy) Name() string        { return "excluding" }
func (e *excludingStrategy) NeedsDecoders() bool { return false }
func (e *excludingStrategy) Aggregate(ctx *RoundContext) ([]float32, error) {
	id := ctx.Updates[0].ClientID
	ctx.ExcludeClient(id, 0.1, 0.5)
	e.excluded = append(e.excluded, []int{id})
	ctx.Report[ReportFedGuardExcluded] = 1
	out := make([]float32, len(ctx.Global))
	copy(out, ctx.Global)
	return out, nil
}

func TestFederationEmitsTelemetry(t *testing.T) {
	r := rng.New(40)
	train := dataset.Generate(120, dataset.DefaultGenOptions(), r)
	test := dataset.Generate(40, dataset.DefaultGenOptions(), r)
	cfg := tinyFederationConfig()
	cfg.MaliciousFraction = 0.5
	cfg.Attack = attack.NewSignFlip()
	sink := &telemetry.CollectSink{}
	cfg.Telemetry = telemetry.New(sink)
	fed, err := NewFederation(train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	strat := &excludingStrategy{}
	h, err := fed.Run(strat, nil)
	if err != nil {
		t.Fatal(err)
	}

	if got := len(sink.ByKind("RunStarted")); got != 1 {
		t.Fatalf("%d RunStarted events", got)
	}
	if got := len(sink.ByKind("RunCompleted")); got != 1 {
		t.Fatalf("%d RunCompleted events", got)
	}
	rounds := sink.ByKind("RoundCompleted")
	if len(rounds) != cfg.Rounds {
		t.Fatalf("%d RoundCompleted events for %d rounds", len(rounds), cfg.Rounds)
	}
	for i, e := range rounds {
		rc := e.(telemetry.RoundCompleted)
		rec := h.Rounds[i]
		if rc.Round != i+1 {
			t.Fatalf("event %d is round %d", i, rc.Round)
		}
		if rc.TestAccuracy != rec.TestAccuracy || rc.UploadBytes != rec.UploadBytes {
			t.Fatalf("event %d disagrees with history: %+v vs %+v", i, rc, rec)
		}
		sum := rec.TrainSeconds + rec.AggregateSeconds + rec.EvalSeconds
		if rec.Seconds != sum {
			t.Fatalf("round %d Seconds %v != phase sum %v", rec.Round, rec.Seconds, sum)
		}
		if rec.TrainSeconds <= 0 || rec.EvalSeconds <= 0 {
			t.Fatalf("round %d missing phase timings: %+v", rec.Round, rec)
		}
	}

	// ClientExcluded events must exactly mirror the strategy's decisions.
	excl := sink.ByKind("ClientExcluded")
	var want []int
	for _, ids := range strat.excluded {
		want = append(want, ids...)
	}
	if len(excl) != len(want) {
		t.Fatalf("%d ClientExcluded events, want %d", len(excl), len(want))
	}
	for i, e := range excl {
		ce := e.(telemetry.ClientExcluded)
		if ce.ClientID != want[i] || ce.Round != i+1 {
			t.Fatalf("event %d = %+v, want client %d round %d", i, ce, want[i], i+1)
		}
	}

	// AttackSampled ground truth must agree with the per-round counts.
	var attacked int
	for _, e := range sink.ByKind("AttackSampled") {
		attacked += len(e.(telemetry.AttackSampled).ClientIDs)
	}
	var wantAttacked int
	for _, rec := range h.Rounds {
		wantAttacked += rec.MaliciousSampled
	}
	if attacked != wantAttacked {
		t.Fatalf("AttackSampled covers %d clients, history says %d", attacked, wantAttacked)
	}

	// Metrics side: round counter and client.train spans.
	reg := cfg.Telemetry.Metrics
	if got := reg.Counter("fedguard_rounds_total").Value(); got != float64(cfg.Rounds) {
		t.Fatalf("rounds_total = %v", got)
	}
	trainSpans := reg.Histogram(telemetry.PhaseMetric, telemetry.L("phase", "client.train"))
	if got := trainSpans.Count(); got != int64(cfg.Rounds*cfg.PerRound) {
		t.Fatalf("client.train spans = %d, want %d", got, cfg.Rounds*cfg.PerRound)
	}
}

func TestFederationNilTelemetryUnchanged(t *testing.T) {
	r := rng.New(41)
	train := dataset.Generate(120, dataset.DefaultGenOptions(), r)
	test := dataset.Generate(40, dataset.DefaultGenOptions(), r)

	run := func(tel *telemetry.T) *History {
		cfg := tinyFederationConfig()
		cfg.Telemetry = tel
		fed, err := NewFederation(train, test, cfg)
		if err != nil {
			t.Fatal(err)
		}
		h, err := fed.Run(&fedAvgForTest{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	plain := run(nil)
	instrumented := run(telemetry.New(&telemetry.CollectSink{}))
	if len(plain.FinalWeights) != len(instrumented.FinalWeights) {
		t.Fatal("weight count diverged")
	}
	for i := range plain.FinalWeights {
		if plain.FinalWeights[i] != instrumented.FinalWeights[i] {
			t.Fatal("telemetry changed the training trajectory")
		}
	}
	for i := range plain.Rounds {
		if plain.Rounds[i].TestAccuracy != instrumented.Rounds[i].TestAccuracy {
			t.Fatal("telemetry changed per-round accuracy")
		}
	}
}
