// Package fl implements the federated-learning core of the paper's
// Algorithm 1: clients that train a local classifier (and, for FedGuard,
// a local CVAE) on private partitions, a server that samples m of N
// clients per round and hands their submissions to a pluggable
// aggregation Strategy, and a Federation driver that runs R rounds with a
// bounded worker pool, records per-round accuracy/time/byte telemetry,
// and applies an optional server learning rate (paper Fig. 5).
package fl

import (
	"time"

	"fedguard/internal/rng"
	"fedguard/internal/telemetry"
)

// Typed keys for the RoundContext.Report map. Strategies historically
// invented string keys ad hoc; these constants pin the vocabulary so
// reports, commands, and the event log agree on spelling. The map itself
// stays for backward compatibility — RoundRecord.Excluded reads through
// it via these keys.
const (
	// ReportFedGuardMeanAcc is FedGuard's per-round mean synthetic-set
	// accuracy (Alg. 1 line 6's threshold).
	ReportFedGuardMeanAcc = "fedguard_mean_acc"
	// ReportFedGuardKept / ReportFedGuardExcluded count FedGuard's
	// per-round aggregation decisions.
	ReportFedGuardKept     = "fedguard_kept"
	ReportFedGuardExcluded = "fedguard_excluded"
	// ReportSpectralMeanErr is Spectral's mean surrogate reconstruction
	// error threshold.
	ReportSpectralMeanErr = "spectral_mean_err"
	// ReportSpectralKept / ReportSpectralExcluded count Spectral's
	// per-round decisions.
	ReportSpectralKept     = "spectral_kept"
	ReportSpectralExcluded = "spectral_excluded"
	// ReportKrumSelected is the client ID Krum chose as the round's
	// representative update.
	ReportKrumSelected = "krum_selected"
)

// Update is one client's per-round submission: classifier parameters in
// the flat wire format, the sample count used for FedAvg weighting, and
// (for FedGuard) the client's CVAE decoder payload.
type Update struct {
	ClientID   int
	Weights    []float32
	NumSamples int
	// Decoder is the flat CVAE decoder parameter vector, or nil when the
	// active strategy does not request decoders.
	Decoder []float32
	// DecoderClasses lists the class labels present in the data the
	// client's CVAE was trained on (sorted ascending). The paper's §VI-B
	// proposes sharing this so the server can condition each decoder only
	// on classes it has actually seen — the mitigation for highly
	// heterogeneous clients. nil means "assume all classes".
	DecoderClasses []int
}

// RoundContext carries everything a Strategy may consult while
// aggregating one round.
type RoundContext struct {
	// Round is the 1-based federated round index.
	Round int
	// Global is the current global parameter vector (read-only).
	Global []float32
	// Updates are the submissions of this round's sampled clients.
	Updates []Update
	// RNG is the server-side randomness for this round (used e.g. for
	// FedGuard's latent and label sampling).
	RNG *rng.RNG
	// Report lets strategies expose per-round diagnostics (e.g. how many
	// updates were excluded); the Federation copies it into History.
	// Prefer the typed Report* key constants over ad-hoc strings.
	Report map[string]float64
	// Telemetry is the run's observability bundle. It is nil-safe: a
	// strategy may call its methods (and ExcludeClient below)
	// unconditionally.
	Telemetry *telemetry.T
	// Span is the aggregation span of this round's trace, when tracing is
	// enabled (nil otherwise — and nil is safe). Strategies open their
	// phase timers through StartPhase so sub-phases land in the trace
	// tree when one exists and in the flat histograms either way.
	Span *telemetry.Span
}

// StartPhase opens a named sub-phase of this round's aggregation: a
// child span of ctx.Span when the run is traced, a flat phase timer
// otherwise. Call the returned stop function exactly once (defer).
func (ctx *RoundContext) StartPhase(name string, labels ...telemetry.Label) func() {
	_, stop := ctx.Telemetry.StartPhase(ctx.Span, name, labels...)
	return stop
}

// ExcludeClient records that a defense rejected the given client's
// update this round, scoring score against the round's mean threshold.
// It emits a structured ClientExcluded event; updating the Report map
// remains the strategy's responsibility.
func (ctx *RoundContext) ExcludeClient(clientID int, score, mean float64) {
	ctx.Telemetry.Emit(telemetry.ClientExcluded{
		Round:    ctx.Round,
		ClientID: clientID,
		Acc:      score,
		Mean:     mean,
	})
	ctx.Telemetry.AddCounter("fedguard_clients_excluded_total", 1)
}

// StreamingStrategy is an optional Strategy extension. A strategy that
// can overlap per-update audit work with the round's upload phase
// implements BeginRound; servers that know the participant count up
// front call it when the round opens and feed updates into the returned
// stream as they arrive, so the strategy's compute hides in the network
// shadow instead of running serially after the barrier.
//
// The contract is strict determinism: Finalize must return exactly the
// bytes Aggregate would have returned for the same RoundContext. To make
// that possible BeginRound must not advance ctx.RNG — it speculates on a
// private clone — so that a fallback to Aggregate (after drop-outs,
// slot mismatches, or internal errors) replays the identical serial
// computation.
type StreamingStrategy interface {
	Strategy
	// BeginRound opens a streaming round expecting m updates. ctx carries
	// the round's Global/RNG/Telemetry but no Updates yet. A nil return
	// means this round cannot be streamed; the caller uses Aggregate.
	BeginRound(ctx *RoundContext, m int) RoundStream
}

// RoundStream ingests one round's updates as they arrive. Submit may be
// called concurrently from receiver goroutines; Finalize and Abort must
// be called exactly once (one of the two), after which the stream is
// dead.
type RoundStream interface {
	// Submit hands the stream the update destined for ctx.Updates[slot].
	// Safe for concurrent use.
	Submit(slot int, u Update)
	// Finalize blocks until in-flight work drains and returns the round's
	// aggregate. ctx must hold the assembled Updates in slot order; on any
	// inconsistency with what was submitted the stream falls back to the
	// batch path internally, so the result is identical either way.
	Finalize(ctx *RoundContext) ([]float32, error)
	// Abort discards the stream (round failed); it blocks until workers
	// exit.
	Abort()
	// Overlap reports how much audit compute the stream has completed so
	// far and across how many jobs. Read it just before Finalize to
	// measure the work that overlapped the upload phase.
	Overlap() (busy time.Duration, jobs int)
}

// Sampler chooses which clients participate in a round. The default is
// uniform sampling without replacement (Alg. 1 line 17); the paper's
// conclusion suggests biasing selection toward high-quality candidates,
// implemented by defense.QualitySampler.
type Sampler interface {
	// SampleClients returns m distinct client IDs from [0, n) for the
	// given round, drawing randomness from r only.
	SampleClients(round, n, m int, r *rng.RNG) []int
}

// UniformSampler is the default sampler: m clients uniformly without
// replacement.
type UniformSampler struct{}

// SampleClients implements Sampler.
func (UniformSampler) SampleClients(round, n, m int, r *rng.RNG) []int {
	return r.Sample(n, m)
}

// Strategy turns a round's submissions into the next global parameter
// vector. Implementations: FedAvg, GeoMed, Krum, Spectral (package
// aggregate / defense) and FedGuard (package defense).
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Aggregate returns the aggregated parameter vector. It must not
	// modify ctx.Updates or ctx.Global.
	Aggregate(ctx *RoundContext) ([]float32, error)
	// NeedsDecoders reports whether clients must attach CVAE decoder
	// payloads to their updates (true only for FedGuard).
	NeedsDecoders() bool
}
