package fl

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"fedguard/internal/attack"
	"fedguard/internal/classifier"
	"fedguard/internal/codec"
	"fedguard/internal/dataset"
	"fedguard/internal/rng"
	"fedguard/internal/telemetry"
	"fedguard/internal/tensor"
)

// FederationConfig describes a full federated experiment (paper §IV-A):
// N clients holding a Dirichlet(α) partition of the training set, m
// sampled per round for R rounds, a fraction of them malicious.
type FederationConfig struct {
	NumClients int     // N (paper: 100)
	PerRound   int     // m (paper: 50)
	Rounds     int     // R (paper: 50)
	Alpha      float64 // Dirichlet concentration (paper: 10)
	// ServerLR scales the global update: ψ ← ψ + lr·(agg − ψ).
	// 1.0 is the standard full step; the paper's Fig. 5 uses 0.3 to damp
	// occasional defense failures.
	ServerLR float64
	// MaliciousFraction of the N clients run Attack (0 disables).
	MaliciousFraction float64
	// Attack is the shared attack instance for all malicious clients
	// (sharing is what lets additive-noise attackers collude). nil means
	// benign.
	Attack attack.Attack
	// Client bundles the per-client model/training configuration.
	Client ClientConfig
	// Sampler selects the per-round participant subset; nil means
	// UniformSampler (the paper's setting).
	Sampler Sampler
	// Stream, when non-nil, enables the paper's §VI-C dynamic-dataset
	// mode: clients start with a fraction of their partition, receive more
	// samples before every participation, and retrain their CVAEs
	// periodically instead of once.
	Stream *StreamConfig
	// Workers bounds concurrent client training (default GOMAXPROCS).
	Workers int
	// AggWorkers bounds the parallelism of the aggregation kernels
	// (tensor.SetAggWorkers); 0 follows the tensor pool's setting. The
	// blocked kernels make results byte-identical at any value — the
	// knob trades wall-clock only.
	AggWorkers int
	// StreamAudit overlaps the strategy's per-update audit work with
	// client training when the strategy implements StreamingStrategy
	// (FedGuard): each update is submitted to the round's stream as its
	// client finishes, so decoder synthesis and scoring run in parallel
	// with the remaining clients instead of serially after the barrier.
	// Results are byte-identical either way; false keeps the pure
	// barrier-then-aggregate ordering.
	StreamAudit bool
	// CheckpointSink, when non-nil, receives a full resumable snapshot
	// after every CheckpointEvery-th round, before onRound fires — so a
	// crash anywhere after round k's snapshot resumes at k+1. A sink
	// error aborts the run: silently continuing would let the run outlive
	// its own durability guarantee.
	CheckpointSink CheckpointSink
	// CheckpointEvery is the snapshot cadence in rounds (<= 0 means every
	// round when a sink is set).
	CheckpointEvery int
	// TestSubset limits per-round evaluation to the first k test examples
	// (0 = the whole test set).
	TestSubset int
	// Seed derives every random stream in the run.
	Seed uint64
	// Telemetry, when non-nil, receives structured run events and
	// phase-level metrics. nil disables all instrumentation at the cost
	// of a nil check per call site.
	Telemetry *telemetry.T
}

// StreamConfig parameterizes dynamic client datasets (§VI-C future
// work).
type StreamConfig struct {
	// InitialFraction of each partition visible at round one, in (0, 1].
	InitialFraction float64
	// PerRound samples revealed before each participation.
	PerRound int
	// CVAERetrainEvery participations between CVAE retrainings
	// (0 = train once, the paper's static behaviour).
	CVAERetrainEvery int
}

// Validate checks the configuration for consistency.
func (c *FederationConfig) Validate() error {
	switch {
	case c.NumClients <= 0:
		return fmt.Errorf("fl: NumClients = %d", c.NumClients)
	case c.PerRound <= 0 || c.PerRound > c.NumClients:
		return fmt.Errorf("fl: PerRound = %d with %d clients", c.PerRound, c.NumClients)
	case c.Rounds <= 0:
		return fmt.Errorf("fl: Rounds = %d", c.Rounds)
	case c.Alpha <= 0:
		return fmt.Errorf("fl: Alpha = %v", c.Alpha)
	case c.ServerLR <= 0 || c.ServerLR > 1:
		return fmt.Errorf("fl: ServerLR = %v, want (0,1]", c.ServerLR)
	case c.MaliciousFraction < 0 || c.MaliciousFraction > 1:
		return fmt.Errorf("fl: MaliciousFraction = %v", c.MaliciousFraction)
	case c.MaliciousFraction > 0 && c.Attack == nil:
		return fmt.Errorf("fl: MaliciousFraction %v with nil Attack", c.MaliciousFraction)
	case c.Client.Arch == nil:
		return fmt.Errorf("fl: Client.Arch is nil")
	case c.AggWorkers < 0:
		return fmt.Errorf("fl: AggWorkers = %d", c.AggWorkers)
	}
	if s := c.Stream; s != nil {
		if s.InitialFraction <= 0 || s.InitialFraction > 1 {
			return fmt.Errorf("fl: Stream.InitialFraction = %v, want (0,1]", s.InitialFraction)
		}
		if s.PerRound < 0 || s.CVAERetrainEvery < 0 {
			return fmt.Errorf("fl: negative Stream parameters")
		}
	}
	return nil
}

// Federation wires clients, data and configuration into a runnable
// experiment. Build once, then Run with any Strategy; each Run is
// independent and deterministic in the seed.
type Federation struct {
	cfg   FederationConfig
	train *dataset.Dataset
	test  *dataset.Dataset

	// MaliciousIDs is the set of client indices selected to be malicious
	// (exposed for tests and reports).
	MaliciousIDs map[int]bool
}

// NewFederation validates cfg and prepares a federation over the given
// train/test datasets.
func NewFederation(train, test *dataset.Dataset, cfg FederationConfig) (*Federation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	f := &Federation{cfg: cfg, train: train, test: test}
	f.MaliciousIDs = MaliciousPlacement(cfg)
	return f, nil
}

// MaliciousPlacement derives the set of malicious client IDs from the
// experiment seed. Placement is part of the experiment setup, not of a
// particular run, so it uses a dedicated stream — and the networked
// deployment recomputes the identical set.
func MaliciousPlacement(cfg FederationConfig) map[int]bool {
	placement := rng.New(rng.DeriveSeed(cfg.Seed, "malicious", 0))
	count := int(cfg.MaliciousFraction*float64(cfg.NumClients) + 0.5)
	ids := make(map[int]bool, count)
	for _, id := range placement.Sample(cfg.NumClients, count) {
		ids[id] = true
	}
	return ids
}

// Config returns the federation configuration.
func (f *Federation) Config() FederationConfig { return f.cfg }

// Run executes R federated rounds under the given strategy and returns
// the full history. onRound, if non-nil, is invoked after every round
// with the fresh record (for live progress output).
func (f *Federation) Run(strategy Strategy, onRound func(RoundRecord)) (*History, error) {
	return f.run(strategy, onRound, nil)
}

// Resume continues a run from a checkpoint taken by a CheckpointSink:
// client streams, the server stream, ψ and the dedup state are restored
// and rounds continue at ck.Round+1. The remaining rounds — and the
// FinalWeights — are byte-identical to an uninterrupted run, because
// every piece of state that feeds a random draw or an aggregation is
// either re-derived from the seed or carried in the checkpoint.
func (f *Federation) Resume(strategy Strategy, ck *Checkpoint, onRound func(RoundRecord)) (*History, error) {
	if err := CheckResume(f.cfg, strategy.Name(), ck); err != nil {
		return nil, err
	}
	return f.run(strategy, onRound, ck)
}

func (f *Federation) run(strategy Strategy, onRound func(RoundRecord), resume *Checkpoint) (*History, error) {
	cfg := f.cfg
	if cfg.AggWorkers > 0 {
		tensor.SetAggWorkers(cfg.AggWorkers)
	}
	// All streams are derived from the experiment seed by domain tag so a
	// distributed deployment (package fednet) can reconstruct any client's
	// stream independently and produce bit-identical results.
	parts := Partition(f.train, cfg)
	clients := make([]*Client, cfg.NumClients)
	for i := range clients {
		var att attack.Attack = attack.None{}
		if f.MaliciousIDs[i] {
			att = cfg.Attack
		}
		clients[i] = NewClient(i, f.train, parts[i], cfg.Client, att,
			rng.New(rng.DeriveSeed(cfg.Seed, "client", uint64(i))))
		clients[i].SetTelemetry(cfg.Telemetry)
		if cfg.Stream != nil {
			clients[i].EnableStream(cfg.Stream.InitialFraction,
				cfg.Stream.PerRound, cfg.Stream.CVAERetrainEvery)
		}
	}
	serverRNG := rng.New(rng.DeriveSeed(cfg.Seed, "server", 0))

	// ψ₀ ← init() (Alg. 1 line 15). nextGlobal is the ping-pong partner
	// for the per-round ψ update.
	global := InitialGlobal(cfg)
	nextGlobal := make([]float32, len(global))
	evalModel := cfg.Client.Arch(rng.New(rng.DeriveSeed(cfg.Seed, "eval", 0)))

	testIdx := dataset.Range(f.test.Len())
	if cfg.TestSubset > 0 && cfg.TestSubset < len(testIdx) {
		testIdx = testIdx[:cfg.TestSubset]
	}

	needDecoders := strategy.NeedsDecoders()
	history := &History{Strategy: strategy.Name()}
	sampler := cfg.Sampler
	if sampler == nil {
		sampler = UniformSampler{}
	}

	// decoderHashes tracks the decoder payload each client most recently
	// delivered, so wire-byte accounting charges a decoder only when it
	// would actually cross the network — the dedup semantics the
	// networked deployment implements for real.
	decoderHashes := make(map[int]uint64, cfg.NumClients)

	startRound := 1
	if resume != nil {
		if len(resume.Global) != len(global) {
			return nil, fmt.Errorf("fl: checkpoint holds %d parameters, architecture has %d",
				len(resume.Global), len(global))
		}
		global = append([]float32(nil), resume.Global...)
		serverRNG.SetState(resume.ServerRNG)
		history.Rounds = append(history.Rounds, resume.Rounds...)
		for _, st := range resume.Clients {
			if st.ID < 0 || st.ID >= len(clients) {
				return nil, fmt.Errorf("fl: checkpoint client %d outside 0..%d", st.ID, len(clients)-1)
			}
			clients[st.ID].RestoreState(st)
		}
		for _, d := range resume.Decoders {
			decoderHashes[d.ID] = d.Hash
		}
		startRound = resume.Round + 1
	}

	tel := cfg.Telemetry
	attackName := ""
	if cfg.Attack != nil {
		attackName = cfg.Attack.Name()
	}
	tel.Emit(telemetry.RunStarted{
		Strategy:          strategy.Name(),
		NumClients:        cfg.NumClients,
		PerRound:          cfg.PerRound,
		Rounds:            cfg.Rounds,
		Seed:              cfg.Seed,
		Attack:            attackName,
		MaliciousFraction: cfg.MaliciousFraction,
	})
	if resume != nil {
		tel.Emit(telemetry.RunResumed{Round: resume.Round, Strategy: strategy.Name()})
	}
	runStart := time.Now()
	// Root of the run's trace (nil — and free — unless EnableTracing was
	// called on the bundle). The in-process topology mirrors the
	// networked one: run → round → client.round → client.train/…, so
	// cmd/fedtrace reads both the same way.
	runSpan := tel.StartRoot("run", telemetry.L("strategy", strategy.Name()))

	for round := startRound; round <= cfg.Rounds; round++ {
		trainStart := time.Now()
		roundSpan := runSpan.Child("round", telemetry.L("round", strconv.Itoa(round)))

		// J ← sample(range(1,N), m) (Alg. 1 line 17).
		sampled := sampler.SampleClients(round, cfg.NumClients, cfg.PerRound, serverRNG)
		var attackIDs []int
		for _, id := range sampled {
			if f.MaliciousIDs[id] {
				attackIDs = append(attackIDs, id)
			}
		}
		if len(attackIDs) > 0 {
			tel.Emit(telemetry.AttackSampled{Round: round, ClientIDs: attackIDs})
		}
		// The round RNG is split off before training so a streaming
		// strategy can pre-draw its plan; nothing draws from serverRNG in
		// between, so the child stream is identical to a post-barrier split.
		ctx := &RoundContext{
			Round:     round,
			Global:    global,
			RNG:       serverRNG.Split(),
			Report:    map[string]float64{},
			Telemetry: tel,
		}
		// A cohort-aware attack rewrites the malicious drafts after the
		// round barrier, so updates streamed as they land would be
		// pre-rewrite; rounds with such a cohort fall back to the batch
		// audit path (benign rounds still stream).
		_, cohortAttack := cfg.Attack.(attack.CohortAware)
		var stream RoundStream
		if cfg.StreamAudit && !(cohortAttack && len(attackIDs) > 0) {
			if ss, ok := strategy.(StreamingStrategy); ok {
				stream = ss.BeginRound(ctx, len(sampled))
			}
		}
		updates := make([]Update, len(sampled))
		f.trainSampled(clients, sampled, global, needDecoders, updates, stream, roundSpan)
		if cohortAttack && len(attackIDs) > 0 {
			applyCohortAttack(cfg.Attack.(attack.CohortAware), updates, sampled,
				f.MaliciousIDs, cfg.Seed, round)
		}
		trainSecs := time.Since(trainStart).Seconds()

		aggStart := time.Now()
		aggSpan, stopAgg := tel.StartPhase(roundSpan, "server.aggregate",
			telemetry.L("strategy", strategy.Name()),
			telemetry.L("workers", strconv.Itoa(tensor.EffectiveAggWorkers())))
		ctx.Updates = updates
		ctx.Span = aggSpan
		var agg []float32
		var err error
		if stream != nil {
			busy, jobs := stream.Overlap()
			RecordStreamOverlap(tel, roundSpan, busy, jobs)
			agg, err = stream.Finalize(ctx)
		} else {
			agg, err = strategy.Aggregate(ctx)
		}
		if err != nil {
			return history, fmt.Errorf("fl: round %d aggregation: %w", round, err)
		}
		if len(agg) != len(global) {
			return history, fmt.Errorf("fl: round %d: strategy returned %d parameters, want %d",
				round, len(agg), len(global))
		}
		// ψ ← ψ + lr·(agg − ψ): lr = 1 reduces to plain replacement. The
		// two buffers ping-pong between rounds (everything downstream —
		// clients, checkpoints, history — copies rather than retains), so
		// the server update allocates nothing after round one.
		tensor.LerpInto(nextGlobal, global, agg, float32(cfg.ServerLR))
		global, nextGlobal = nextGlobal, global
		stopAgg()
		aggSecs := time.Since(aggStart).Seconds()
		RecordAggregate(tel, strategy.Name(), aggSecs)

		// Byte accounting per Table V: uploads are the global broadcast to
		// the m sampled clients; downloads are their returned updates plus
		// any decoder payloads. The logical columns charge every payload in
		// full; the wire columns apply dedup semantics — a decoder costs
		// bytes only when its content changed since the client's last
		// delivery, which is exactly when the networked path resends it.
		var down, wireDown int64
		malicious := 0
		for i, u := range updates {
			down += int64(len(u.Weights)+len(u.Decoder)) * 4
			wireDown += int64(len(u.Weights)) * 4
			if len(u.Decoder) > 0 {
				h := codec.Hash(u.Decoder)
				if decoderHashes[sampled[i]] != h {
					decoderHashes[sampled[i]] = h
					wireDown += int64(len(u.Decoder)) * 4
				}
			}
			if f.MaliciousIDs[sampled[i]] {
				malicious++
			}
		}
		up := int64(cfg.PerRound) * int64(len(global)) * 4
		rec := RoundRecord{
			Round:             round,
			TrainSeconds:      trainSecs,
			AggregateSeconds:  aggSecs,
			UploadBytes:       up,
			DownloadBytes:     down,
			WireUploadBytes:   up,
			WireDownloadBytes: wireDown,
			Sampled:           sampled,
			MaliciousSampled:  malicious,
			Report:            ctx.Report,
		}

		evalStart := time.Now()
		_, stopEval := tel.StartPhase(roundSpan, "server.eval")
		if err := evalModel.LoadParams(global); err != nil {
			return history, err
		}
		rec.TestAccuracy = classifier.Evaluate(evalModel, f.test, testIdx)
		stopEval()
		rec.EvalSeconds = time.Since(evalStart).Seconds()
		rec.Seconds = rec.TrainSeconds + rec.AggregateSeconds + rec.EvalSeconds

		roundSpan.SetInt("sampled", int64(len(sampled)))
		roundSpan.End()
		RecordRound(tel, rec)
		history.Rounds = append(history.Rounds, rec)
		// Snapshot BEFORE onRound: a crash inside the callback (or any
		// time after it) then resumes at round+1, never replaying a round
		// the caller already observed.
		if cfg.CheckpointSink != nil && round%checkpointEvery(cfg.CheckpointEvery) == 0 {
			ckStart := time.Now()
			path, n, err := cfg.CheckpointSink(&Checkpoint{
				Round:     round,
				Seed:      cfg.Seed,
				Strategy:  strategy.Name(),
				Global:    append([]float32(nil), global...),
				ServerRNG: serverRNG.State(),
				Rounds:    history.Rounds,
				Decoders:  decoderStates(decoderHashes),
				Clients:   captureClients(clients),
			})
			if err != nil {
				return history, fmt.Errorf("fl: round %d checkpoint: %w", round, err)
			}
			secs := time.Since(ckStart).Seconds()
			tel.Observe(telemetry.CheckpointMetric, secs)
			tel.Emit(telemetry.CheckpointWritten{Round: round, Path: path, Bytes: n, Seconds: secs})
		}
		if onRound != nil {
			onRound(rec)
		}
	}
	history.FinalWeights = global
	runSpan.End()
	tel.Emit(telemetry.RunCompleted{
		Rounds:        cfg.Rounds,
		FinalAccuracy: history.FinalAccuracy(),
		TotalSeconds:  time.Since(runStart).Seconds(),
	})
	return history, nil
}

// applyCohortAttack hands the round's malicious drafts to a
// CohortAware attack for a joint rewrite: the threat model's colluders
// exchanging their locally trained updates before upload. Drafts are
// ordered by ascending client ID and the cohort RNG is derived from
// (seed, round), so the rewrite is deterministic for a given sample set
// — including across a checkpoint resume — regardless of training
// goroutine scheduling.
func applyCohortAttack(ca attack.CohortAware, updates []Update, sampled []int, malicious map[int]bool, seed uint64, round int) {
	var slots []int
	for i, id := range sampled {
		if malicious[id] {
			slots = append(slots, i)
		}
	}
	sort.Slice(slots, func(a, b int) bool {
		return sampled[slots[a]] < sampled[slots[b]]
	})
	drafts := make([][]float32, len(slots))
	ids := make([]int, len(slots))
	for k, i := range slots {
		drafts[k] = updates[i].Weights
		ids[k] = sampled[i]
	}
	ca.PoisonCohort(drafts, ids, rng.New(rng.DeriveSeed(seed, "cohort", uint64(round))))
}

// RecordAggregate publishes one round's server-side aggregation cost to
// the per-strategy histogram. Shared with the networked server.
func RecordAggregate(tel *telemetry.T, strategy string, secs float64) {
	tel.Observe(telemetry.AggregateMetric, secs, telemetry.L("strategy", strategy))
}

// RecordRound publishes one round's record as a structured event plus
// current-state gauges and totals counters. Shared with the networked
// server (package fednet calls it too).
func RecordRound(tel *telemetry.T, rec RoundRecord) {
	tel.Emit(telemetry.RoundCompleted{
		Round:             rec.Round,
		TestAccuracy:      rec.TestAccuracy,
		TrainSeconds:      rec.TrainSeconds,
		AggregateSeconds:  rec.AggregateSeconds,
		EvalSeconds:       rec.EvalSeconds,
		Seconds:           rec.Seconds,
		UploadBytes:       rec.UploadBytes,
		DownloadBytes:     rec.DownloadBytes,
		WireUploadBytes:   rec.WireUploadBytes,
		WireDownloadBytes: rec.WireDownloadBytes,
		Sampled:           rec.Sampled,
		MaliciousSampled:  rec.MaliciousSampled,
		Dropped:           rec.Dropped,
		Report:            rec.Report,
	})
	tel.AddCounter("fedguard_rounds_total", 1)
	tel.AddCounter("fedguard_upload_bytes_total", float64(rec.UploadBytes))
	tel.AddCounter("fedguard_download_bytes_total", float64(rec.DownloadBytes))
	tel.AddCounter("fedguard_wire_upload_bytes_total", float64(rec.WireUploadBytes))
	tel.AddCounter("fedguard_wire_download_bytes_total", float64(rec.WireDownloadBytes))
	tel.SetGauge("fedguard_round", float64(rec.Round))
	tel.SetGauge("fedguard_test_accuracy", rec.TestAccuracy)
	tel.SetGauge("fedguard_excluded", float64(rec.Excluded()))
	tel.Observe("fedguard_round_seconds", rec.Seconds)
}

// Partition derives the federation's data partition from the experiment
// seed. Exposed so the networked deployment (package fednet) computes the
// identical split.
func Partition(train *dataset.Dataset, cfg FederationConfig) [][]int {
	return dataset.PartitionDirichlet(train, cfg.NumClients, cfg.Alpha,
		rng.New(rng.DeriveSeed(cfg.Seed, "partition", 0)))
}

// InitialGlobal derives ψ₀, the initial global parameter vector, from the
// experiment seed (Alg. 1 line 15).
func InitialGlobal(cfg FederationConfig) []float32 {
	return InitialGlobalFrom(cfg.Client.Arch, cfg.Seed)
}

// InitialGlobalFrom derives ψ₀ from an architecture factory and the
// experiment seed directly — the form remote clients use, which hold
// only the Setup parameters rather than a full FederationConfig. Both
// endpoints deriving the identical ψ₀ locally is what lets the
// compressed wire path delta-encode the very first broadcast against a
// base that never crossed the network.
func InitialGlobalFrom(arch classifier.Arch, seed uint64) []float32 {
	return arch(rng.New(rng.DeriveSeed(seed, "init", 0))).FlattenParams()
}

// ClientRNGSeed derives client id's private stream seed. Remote clients
// use this to reproduce the exact stream an in-process federation would
// give them.
func ClientRNGSeed(seed uint64, id int) uint64 {
	return rng.DeriveSeed(seed, "client", uint64(id))
}

// trainSampled runs the sampled clients' local training on a bounded
// worker pool, writing each update at its position. When roundSpan is
// live each client gets a "client.round" child span, so the in-process
// trace carries the same per-client topology a networked run does. A
// non-nil stream receives each finished update immediately, overlapping
// the strategy's audit with the remaining clients' training.
func (f *Federation) trainSampled(clients []*Client, sampled []int, global []float32, needDecoders bool, out []Update, stream RoundStream, roundSpan *telemetry.Span) {
	sem := make(chan struct{}, f.cfg.Workers)
	var wg sync.WaitGroup
	for i, id := range sampled {
		wg.Add(1)
		sem <- struct{}{}
		go func(i, id int) {
			defer wg.Done()
			defer func() { <-sem }()
			sp := roundSpan.Child("client.round", telemetry.L("client", strconv.Itoa(id)))
			out[i] = clients[id].RunRoundSpan(global, needDecoders, sp)
			sp.SetInt("num_samples", int64(out[i].NumSamples))
			sp.End()
			if stream != nil {
				stream.Submit(i, out[i])
			}
		}(i, id)
	}
	wg.Wait()
}

// RecordStreamOverlap publishes one streaming round's overlap figures: a
// zero-length "server.audit_stream" span under the round carrying the
// overlapped busy time and job count, plus the AuditOverlapMetric
// histogram observation. Shared by the in-process and networked servers.
func RecordStreamOverlap(tel *telemetry.T, roundSpan *telemetry.Span, busy time.Duration, jobs int) {
	sp := roundSpan.Child("server.audit_stream")
	sp.SetInt("overlap_us", busy.Microseconds())
	sp.SetInt("jobs", int64(jobs))
	sp.End()
	tel.Observe(telemetry.AuditOverlapMetric, busy.Seconds())
}
