package fl

import "math"

// RoundRecord captures one federated round's outcome and cost.
type RoundRecord struct {
	Round        int
	TestAccuracy float64
	// Seconds is the total wall-clock duration of the round; it equals
	// TrainSeconds + AggregateSeconds + EvalSeconds.
	Seconds float64
	// TrainSeconds is the client-compute phase (parallel local training,
	// including CVAE work and — in the networked deployment — the wire
	// round-trips). AggregateSeconds is the server's defense/aggregation
	// cost, and EvalSeconds the global-model evaluation. The split is
	// what lets Table V-style overhead reports separate client compute
	// from server defense cost.
	TrainSeconds     float64
	AggregateSeconds float64
	EvalSeconds      float64
	// UploadBytes is the server→client traffic (global model broadcast);
	// DownloadBytes is the client→server traffic (updates, plus decoders
	// under FedGuard). Both follow the paper's Table V accounting: the
	// logical payload sizes at 4 bytes per parameter.
	UploadBytes   int64
	DownloadBytes int64
	// WireUploadBytes/WireDownloadBytes are the bytes that actually
	// crossed the socket this round, including framing, retries, and the
	// savings from decoder dedup, delta encoding and the float codec. In
	// the in-process simulator they mirror the logical sizes with dedup
	// semantics applied (a decoder is charged only when it would be
	// (re)sent), so Table V can report logical vs on-wire side by side.
	WireUploadBytes   int64
	WireDownloadBytes int64
	// Sampled lists this round's participating client IDs.
	Sampled []int
	// MaliciousSampled counts how many of them were malicious.
	MaliciousSampled int
	// Dropped lists sampled clients excluded from this round's
	// aggregation because they failed to deliver an update (networked
	// deployments only; nil for in-process runs and healthy rounds).
	Dropped []int
	// Report carries strategy-specific diagnostics (e.g. "excluded").
	Report map[string]float64
}

// Excluded returns the number of updates the round's defense rejected,
// reading the typed report keys regardless of which defense produced
// them (0 when no defense reported).
func (r RoundRecord) Excluded() int {
	if v, ok := r.Report[ReportFedGuardExcluded]; ok {
		return int(v)
	}
	if v, ok := r.Report[ReportSpectralExcluded]; ok {
		return int(v)
	}
	return 0
}

// History is the full record of one federation run.
type History struct {
	Strategy string
	Rounds   []RoundRecord
	// FinalWeights is the global parameter vector after the last round —
	// the trained model, ready for persist.SaveWeights or per-class
	// analysis with package metrics.
	FinalWeights []float32 `json:",omitempty"`
}

// Accuracies returns the per-round test accuracy series (Fig. 4 / Fig. 5
// material).
func (h *History) Accuracies() []float64 {
	out := make([]float64, len(h.Rounds))
	for i, r := range h.Rounds {
		out[i] = r.TestAccuracy
	}
	return out
}

// FinalAccuracy returns the last round's test accuracy (0 if empty).
func (h *History) FinalAccuracy() float64 {
	if len(h.Rounds) == 0 {
		return 0
	}
	return h.Rounds[len(h.Rounds)-1].TestAccuracy
}

// LastNStats returns the mean and standard deviation of test accuracy
// over the final n rounds — the paper's Table IV metric ("average
// accuracy over the last 40 rounds"). If fewer than n rounds exist, all
// rounds are used.
func (h *History) LastNStats(n int) (mean, std float64) {
	accs := h.Accuracies()
	if len(accs) > n {
		accs = accs[len(accs)-n:]
	}
	if len(accs) == 0 {
		return 0, 0
	}
	for _, a := range accs {
		mean += a
	}
	mean /= float64(len(accs))
	for _, a := range accs {
		d := a - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(accs)))
	return mean, std
}

// MeanSeconds returns the average wall-clock round duration.
func (h *History) MeanSeconds() float64 {
	if len(h.Rounds) == 0 {
		return 0
	}
	var s float64
	for _, r := range h.Rounds {
		s += r.Seconds
	}
	return s / float64(len(h.Rounds))
}

// MeanPhaseSeconds returns the average per-round duration of each
// phase: client training, server aggregation (including any defense),
// and global-model evaluation. Together they average to MeanSeconds.
func (h *History) MeanPhaseSeconds() (train, aggregate, eval float64) {
	if len(h.Rounds) == 0 {
		return 0, 0, 0
	}
	for _, r := range h.Rounds {
		train += r.TrainSeconds
		aggregate += r.AggregateSeconds
		eval += r.EvalSeconds
	}
	n := float64(len(h.Rounds))
	return train / n, aggregate / n, eval / n
}

// MeanBytes returns the average per-round server upload and download
// traffic (Table V columns).
func (h *History) MeanBytes() (up, down int64) {
	if len(h.Rounds) == 0 {
		return 0, 0
	}
	var u, d int64
	for _, r := range h.Rounds {
		u += r.UploadBytes
		d += r.DownloadBytes
	}
	n := int64(len(h.Rounds))
	return u / n, d / n
}

// MeanWireBytes returns the average per-round measured wire traffic —
// the compressed-path counterpart of MeanBytes.
func (h *History) MeanWireBytes() (up, down int64) {
	if len(h.Rounds) == 0 {
		return 0, 0
	}
	var u, d int64
	for _, r := range h.Rounds {
		u += r.WireUploadBytes
		d += r.WireDownloadBytes
	}
	n := int64(len(h.Rounds))
	return u / n, d / n
}
