package fl_test

// Crash-point resume tests for the in-process federation. These live in
// an external test package so they can drive the real persist sink —
// package fl itself must not import persist (persist imports fl).

import (
	"fmt"
	"reflect"
	"testing"

	"fedguard/internal/aggregate"
	"fedguard/internal/attack"
	"fedguard/internal/classifier"
	"fedguard/internal/cvae"
	"fedguard/internal/dataset"
	"fedguard/internal/defense"
	"fedguard/internal/fl"
	"fedguard/internal/persist"
	"fedguard/internal/rng"
	"fedguard/internal/telemetry"
)

func resumeConfig() fl.FederationConfig {
	return fl.FederationConfig{
		NumClients:        6,
		PerRound:          4,
		Rounds:            3,
		Alpha:             10,
		ServerLR:          1,
		MaliciousFraction: 0.34,
		Attack:            attack.NewSignFlip(),
		Client: fl.ClientConfig{
			Arch:       classifier.Tiny(),
			Train:      classifier.TrainConfig{Epochs: 1, BatchSize: 16, LR: 0.1, Momentum: 0.9},
			CVAE:       cvae.Config{Input: 784, Hidden: 16, Latent: 2, Classes: 10},
			CVAETrain:  cvae.TrainConfig{Epochs: 1, BatchSize: 16, LR: 1e-3},
			NumClasses: 10,
		},
		TestSubset: 40,
		Seed:       42,
	}
}

func resumeData(t *testing.T) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	train := dataset.Generate(150, dataset.DefaultGenOptions(), rng.New(1234))
	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
	return train, test
}

// mustRun builds a federation over cfg and runs strategy to completion.
func mustRun(t *testing.T, cfg fl.FederationConfig, train, test *dataset.Dataset, strategy fl.Strategy) *fl.History {
	t.Helper()
	fed, err := fl.NewFederation(train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := fed.Run(strategy, nil)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// deterministicFields strips the wall-clock columns from a record so
// interrupted and uninterrupted runs compare on what must match.
func deterministicFields(r fl.RoundRecord) fl.RoundRecord {
	r.Seconds, r.TrainSeconds, r.AggregateSeconds, r.EvalSeconds = 0, 0, 0, 0
	return r
}

// runKillResume simulates a crash after round k: a first federation runs
// exactly k rounds with checkpoints landing in dir, then a second, fresh
// federation (new strategy instance, as a restarted process would have)
// resumes from the persisted checkpoint and finishes the full schedule.
func runKillResume(t *testing.T, cfg fl.FederationConfig, train, test *dataset.Dataset,
	newStrategy func() fl.Strategy, k int) *fl.History {
	t.Helper()
	dir := t.TempDir()
	sink := func(ck *fl.Checkpoint) (string, int64, error) {
		return persist.SaveCheckpoint(dir, ck)
	}

	partialCfg := cfg
	partialCfg.Rounds = k
	partialCfg.CheckpointSink = sink
	fed, err := fl.NewFederation(train, test, partialCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Run(newStrategy(), nil); err != nil {
		t.Fatalf("partial run: %v", err)
	}

	ck, err := persist.LoadCheckpoint(dir)
	if err != nil {
		t.Fatalf("loading checkpoint after round %d: %v", k, err)
	}
	if ck.Round != k {
		t.Fatalf("checkpoint at round %d, want %d", ck.Round, k)
	}
	resumedCfg := cfg
	resumedCfg.CheckpointSink = sink
	fed2, err := fl.NewFederation(train, test, resumedCfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := fed2.Resume(newStrategy(), ck, nil)
	if err != nil {
		t.Fatalf("resume after round %d: %v", k, err)
	}
	return h
}

// expectIdentical asserts the headline guarantee: byte-identical final
// weights and identical deterministic round records (sampling, drops,
// exclusion reports, accuracies, byte columns).
func expectIdentical(t *testing.T, k int, baseline, resumed *fl.History) {
	t.Helper()
	if len(resumed.Rounds) != len(baseline.Rounds) {
		t.Fatalf("k=%d: %d rounds, want %d", k, len(resumed.Rounds), len(baseline.Rounds))
	}
	for i := range baseline.Rounds {
		want := deterministicFields(baseline.Rounds[i])
		got := deterministicFields(resumed.Rounds[i])
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("k=%d round %d diverged:\n got %+v\nwant %+v", k, i+1, got, want)
		}
	}
	if !reflect.DeepEqual(baseline.FinalWeights, resumed.FinalWeights) {
		t.Fatalf("k=%d: final weights are not byte-identical", k)
	}
}

// TestResumeMatchesUninterrupted kills a FedAvg run after every interior
// round and proves the resumed run lands on byte-identical final weights
// and an identical history.
func TestResumeMatchesUninterrupted(t *testing.T) {
	cfg := resumeConfig()
	train, test := resumeData(t)
	newStrategy := func() fl.Strategy { return aggregate.NewFedAvg() }
	baseline := mustRun(t, cfg, train, test, newStrategy())

	for k := 1; k < cfg.Rounds; k++ {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			resumed := runKillResume(t, cfg, train, test, newStrategy, k)
			expectIdentical(t, k, baseline, resumed)
		})
	}
}

// TestResumeFedGuardCrashPoints is the defense-strategy matrix: FedGuard
// under a sign-flip attack, killed after every interior round, in both
// barrier and streaming audit modes. The client CVAE decoders and every
// RNG stream must survive the checkpoint for the exclusion sequence to
// reproduce.
func TestResumeFedGuardCrashPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("trains CVAEs across multiple full federations")
	}
	train, test := resumeData(t)
	for _, streaming := range []bool{false, true} {
		cfg := resumeConfig()
		cfg.StreamAudit = streaming
		newStrategy := func() fl.Strategy {
			g := defense.NewFedGuard(cfg.Client.Arch, cvae.Config{
				Input: 784, Hidden: 16, Latent: 2, Classes: 10,
			})
			g.Samples = 8
			return g
		}
		baseline := mustRun(t, cfg, train, test, newStrategy())
		for k := 1; k < cfg.Rounds; k++ {
			t.Run(fmt.Sprintf("stream=%v/k=%d", streaming, k), func(t *testing.T) {
				resumed := runKillResume(t, cfg, train, test, newStrategy, k)
				expectIdentical(t, k, baseline, resumed)
			})
		}
	}
}

// TestResumeAcrossSeeds re-proves the guarantee under different seeds —
// resumability must not be an artifact of one lucky sampling sequence.
func TestResumeAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("several full federations")
	}
	train, test := resumeData(t)
	for _, seed := range []uint64{7, 21} {
		cfg := resumeConfig()
		cfg.Seed = seed
		newStrategy := func() fl.Strategy { return aggregate.NewFedAvg() }
		baseline := mustRun(t, cfg, train, test, newStrategy())
		for k := 1; k < cfg.Rounds; k++ {
			t.Run(fmt.Sprintf("seed=%d/k=%d", seed, k), func(t *testing.T) {
				resumed := runKillResume(t, cfg, train, test, newStrategy, k)
				expectIdentical(t, k, baseline, resumed)
			})
		}
	}
}

// TestCheckpointCadence pins CheckpointEvery: with every=2 over 3 rounds
// only round 2 snapshots, and the sink never sees a round twice.
func TestCheckpointCadence(t *testing.T) {
	cfg := resumeConfig()
	cfg.CheckpointEvery = 2
	var rounds []int
	cfg.CheckpointSink = func(ck *fl.Checkpoint) (string, int64, error) {
		rounds = append(rounds, ck.Round)
		if len(ck.Rounds) != ck.Round {
			t.Errorf("snapshot at round %d carries %d records", ck.Round, len(ck.Rounds))
		}
		return "mem", 0, nil
	}
	train, test := resumeData(t)
	mustRun(t, cfg, train, test, aggregate.NewFedAvg())
	if !reflect.DeepEqual(rounds, []int{2}) {
		t.Fatalf("sink saw rounds %v, want [2]", rounds)
	}
}

// TestCheckpointSinkErrorAborts: a failing sink must stop the run — a
// federation that cannot honor its durability contract must not keep
// training past it.
func TestCheckpointSinkErrorAborts(t *testing.T) {
	cfg := resumeConfig()
	cfg.CheckpointSink = func(*fl.Checkpoint) (string, int64, error) {
		return "", 0, fmt.Errorf("disk on fire")
	}
	train, test := resumeData(t)
	fed, err := fl.NewFederation(train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	h, err := fed.Run(aggregate.NewFedAvg(), func(fl.RoundRecord) { rounds++ })
	if err == nil {
		t.Fatal("sink error did not abort the run")
	}
	if rounds != 0 {
		t.Fatalf("onRound fired %d times after a failed round-1 checkpoint", rounds)
	}
	if h == nil || len(h.Rounds) != 1 {
		t.Fatalf("aborted run should surface the partial history: %+v", h)
	}
}

// TestCheckResumeRejectsMismatches covers the validation surface shared
// by the in-process and networked servers.
func TestCheckResumeRejectsMismatches(t *testing.T) {
	cfg := resumeConfig()
	good := &fl.Checkpoint{
		Round:    1,
		Seed:     cfg.Seed,
		Strategy: "FedAvg",
		Rounds:   []fl.RoundRecord{{Round: 1}},
	}
	if err := fl.CheckResume(cfg, "FedAvg", good); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	cases := map[string]*fl.Checkpoint{
		"nil":            nil,
		"wrong seed":     {Round: 1, Seed: cfg.Seed + 1, Strategy: "FedAvg", Rounds: []fl.RoundRecord{{Round: 1}}},
		"wrong strategy": {Round: 1, Seed: cfg.Seed, Strategy: "Krum", Rounds: []fl.RoundRecord{{Round: 1}}},
		"round zero":     {Round: 0, Seed: cfg.Seed, Strategy: "FedAvg"},
		"round beyond":   {Round: cfg.Rounds + 1, Seed: cfg.Seed, Strategy: "FedAvg", Rounds: make([]fl.RoundRecord, cfg.Rounds+1)},
		"record count":   {Round: 2, Seed: cfg.Seed, Strategy: "FedAvg", Rounds: []fl.RoundRecord{{Round: 1}}},
	}
	for name, ck := range cases {
		if err := fl.CheckResume(cfg, "FedAvg", ck); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Resume must apply the same gate.
	train, test := resumeData(t)
	fed, err := fl.NewFederation(train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Resume(aggregate.NewFedAvg(), cases["wrong seed"], nil); err == nil {
		t.Fatal("Resume accepted a checkpoint from another seed")
	}
}

// TestResumeRejectsGlobalShapeMismatch: a checkpoint whose weight vector
// does not fit the model must be refused before any training happens.
func TestResumeRejectsGlobalShapeMismatch(t *testing.T) {
	cfg := resumeConfig()
	train, test := resumeData(t)
	fed, err := fl.NewFederation(train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck := &fl.Checkpoint{
		Round:    1,
		Seed:     cfg.Seed,
		Strategy: "FedAvg",
		Global:   []float32{1, 2, 3},
		Rounds:   []fl.RoundRecord{{Round: 1}},
	}
	if _, err := fed.Resume(aggregate.NewFedAvg(), ck, nil); err == nil {
		t.Fatal("mis-shaped global accepted")
	}
}

// TestCheckpointTelemetry asserts the observability contract: every
// snapshot emits CheckpointWritten and lands in the duration histogram,
// and a resumed run announces itself with RunResumed.
func TestCheckpointTelemetry(t *testing.T) {
	cfg := resumeConfig()
	events := &telemetry.CollectSink{}
	tel := telemetry.New(events)
	cfg.Telemetry = tel
	dir := t.TempDir()
	cfg.CheckpointSink = func(ck *fl.Checkpoint) (string, int64, error) {
		return persist.SaveCheckpoint(dir, ck)
	}
	train, test := resumeData(t)
	mustRun(t, cfg, train, test, aggregate.NewFedAvg())

	written := events.ByKind("CheckpointWritten")
	if len(written) != cfg.Rounds {
		t.Fatalf("%d CheckpointWritten events for %d rounds", len(written), cfg.Rounds)
	}
	ev := written[0].(telemetry.CheckpointWritten)
	if ev.Round != 1 || ev.Bytes <= 0 || ev.Path == "" {
		t.Fatalf("malformed CheckpointWritten: %+v", ev)
	}
	if got := tel.Metrics.Histogram(telemetry.CheckpointMetric).Count(); got != int64(cfg.Rounds) {
		t.Fatalf("checkpoint histogram count %d, want %d", got, cfg.Rounds)
	}
	if len(events.ByKind("RunResumed")) != 0 {
		t.Fatal("cold run emitted RunResumed")
	}

	ck, err := persist.LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	events2 := &telemetry.CollectSink{}
	cfg2 := cfg
	cfg2.Telemetry = telemetry.New(events2)
	cfg2.CheckpointSink = nil
	fed, err := fl.NewFederation(train, test, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	// The last snapshot covers the final round; resuming from it runs
	// zero further rounds but must still announce the resume point.
	if _, err := fed.Resume(aggregate.NewFedAvg(), ck, nil); err != nil {
		t.Fatal(err)
	}
	resumes := events2.ByKind("RunResumed")
	if len(resumes) != 1 {
		t.Fatalf("%d RunResumed events, want 1", len(resumes))
	}
	if ev := resumes[0].(telemetry.RunResumed); ev.Round != cfg.Rounds || ev.Strategy != "FedAvg" {
		t.Fatalf("RunResumed %+v, want round %d strategy FedAvg", ev, cfg.Rounds)
	}
}
