package nn

import (
	"fmt"
	"math"

	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

// Linear is a fully connected layer: y = x @ Wᵀ + b, with W of shape
// (out, in) and x of shape (B, in). Output and input-gradient tensors
// are layer-owned scratch reused across steps; they remain valid only
// until the next call on this layer.
type Linear struct {
	In, Out int
	W, B    *tensor.Tensor
	dW, dB  *tensor.Tensor

	x  *tensor.Tensor // retained input for backward
	y  *tensor.Tensor // forward scratch
	dx *tensor.Tensor // backward scratch
	wT *tensor.Tensor // transposed-weight scratch for the vector kernels
}

// NewLinear constructs a fully connected layer with He-uniform
// initialization drawn from r.
func NewLinear(in, out int, r *rng.RNG) *Linear {
	l := &Linear{
		In:  in,
		Out: out,
		W:   tensor.New(out, in),
		B:   tensor.New(out),
		dW:  tensor.New(out, in),
		dB:  tensor.New(out),
	}
	bound := math.Sqrt(6.0 / float64(in))
	r.FillUniform(l.W.Data, -bound, bound)
	return l
}

// Forward computes y = x @ Wᵀ + b for x of shape (B, in).
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: Linear(%d->%d) got input shape %v", l.In, l.Out, x.Shape()))
	}
	l.x = x
	b := x.Dim(0)
	l.y = tensor.Ensure(l.y, b, l.Out)
	if tensor.HasVectorKernels() {
		// x @ Wᵀ as a plain product against a transposed-weight scratch:
		// the O(in·out) transpose buys the SIMD kernel for the O(B·in·out)
		// matmul. Both forms sum over in ascending — bit-identical.
		l.wT = tensor.Ensure(l.wT, l.In, l.Out)
		tensor.TransposeInto(l.wT, l.W)
		tensor.MatMul(l.y, x, l.wT)
	} else {
		tensor.MatMulT(l.y, x, l.W)
	}
	for i := 0; i < b; i++ {
		row := l.y.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.B.Data[j]
		}
	}
	return l.y
}

// Backward accumulates dW += gradᵀ @ x and dB += colsum(grad), returning
// dx = grad @ W.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	b := grad.Dim(0)
	if grad.Dim(1) != l.Out {
		panic(fmt.Sprintf("nn: Linear(%d->%d) got gradient shape %v", l.In, l.Out, grad.Shape()))
	}
	// dW[j][k] += sum_i grad[i][j] * x[i][k], accumulated in place — no
	// scratch tensor, bit-identical to the scratch-plus-AXPY formulation.
	tensor.MatMulTAAcc(l.dW, grad, l.x)
	for i := 0; i < b; i++ {
		row := grad.Data[i*l.Out : (i+1)*l.Out]
		for j, g := range row {
			l.dB.Data[j] += g
		}
	}
	l.dx = tensor.Ensure(l.dx, b, l.In)
	tensor.MatMul(l.dx, grad, l.W)
	return l.dx
}

// Params returns the weight and bias with their gradients.
func (l *Linear) Params() []Param {
	return []Param{
		{Name: "W", Value: l.W, Grad: l.dW},
		{Name: "b", Value: l.B, Grad: l.dB},
	}
}

// Name implements Layer.
func (l *Linear) Name() string { return fmt.Sprintf("Linear(%d->%d)", l.In, l.Out) }
