package nn

import (
	"fmt"
	"math"

	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

// Linear is a fully connected layer: y = x @ Wᵀ + b, with W of shape
// (out, in) and x of shape (B, in).
type Linear struct {
	In, Out int
	W, B    *tensor.Tensor
	dW, dB  *tensor.Tensor

	x *tensor.Tensor // retained input for backward
}

// NewLinear constructs a fully connected layer with He-uniform
// initialization drawn from r.
func NewLinear(in, out int, r *rng.RNG) *Linear {
	l := &Linear{
		In:  in,
		Out: out,
		W:   tensor.New(out, in),
		B:   tensor.New(out),
		dW:  tensor.New(out, in),
		dB:  tensor.New(out),
	}
	bound := math.Sqrt(6.0 / float64(in))
	r.FillUniform(l.W.Data, -bound, bound)
	return l
}

// Forward computes y = x @ Wᵀ + b for x of shape (B, in).
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: Linear(%d->%d) got input shape %v", l.In, l.Out, x.Shape()))
	}
	l.x = x
	b := x.Dim(0)
	y := tensor.New(b, l.Out)
	tensor.MatMulT(y, x, l.W)
	for i := 0; i < b; i++ {
		row := y.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.B.Data[j]
		}
	}
	return y
}

// Backward accumulates dW += gradᵀ @ x and dB += colsum(grad), returning
// dx = grad @ W.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	b := grad.Dim(0)
	if grad.Dim(1) != l.Out {
		panic(fmt.Sprintf("nn: Linear(%d->%d) got gradient shape %v", l.In, l.Out, grad.Shape()))
	}
	// dW[j][k] += sum_i grad[i][j] * x[i][k]
	dW := tensor.New(l.Out, l.In)
	tensor.MatMulTA(dW, grad, l.x)
	tensor.AXPY(l.dW, 1, dW)
	for i := 0; i < b; i++ {
		row := grad.Data[i*l.Out : (i+1)*l.Out]
		for j, g := range row {
			l.dB.Data[j] += g
		}
	}
	dx := tensor.New(b, l.In)
	tensor.MatMul(dx, grad, l.W)
	return dx
}

// Params returns the weight and bias with their gradients.
func (l *Linear) Params() []Param {
	return []Param{
		{Name: "W", Value: l.W, Grad: l.dW},
		{Name: "b", Value: l.B, Grad: l.dB},
	}
}

// Name implements Layer.
func (l *Linear) Name() string { return fmt.Sprintf("Linear(%d->%d)", l.In, l.Out) }
