package nn

import (
	"testing"

	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

// perImageConvForward is the seed implementation of Conv2D.Forward: each
// image lowered and multiplied on its own, fresh tensors throughout. It
// is the golden reference the batched path must reproduce bit-for-bit.
func perImageConvForward(c *Conv2D, x *tensor.Tensor) *tensor.Tensor {
	b, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	outH, outW := h-c.KH+1, w-c.KW+1
	fanIn := c.InC * c.KH * c.KW
	y := tensor.New(b, c.OutC, outH, outW)
	imgVol := c.InC * h * w
	outVol := c.OutC * outH * outW
	for i := 0; i < b; i++ {
		img := tensor.FromSlice(x.Data[i*imgVol:(i+1)*imgVol], c.InC, h, w)
		cols := tensor.New(outH*outW, fanIn)
		tensor.Im2Col(cols, img, c.KH, c.KW)
		prod := tensor.New(outH*outW, c.OutC)
		tensor.MatMulT(prod, cols, c.W)
		dst := y.Data[i*outVol : (i+1)*outVol]
		for p := 0; p < outH*outW; p++ {
			row := prod.Data[p*c.OutC : (p+1)*c.OutC]
			for ch, v := range row {
				dst[ch*outH*outW+p] = v + c.B.Data[ch]
			}
		}
	}
	return y
}

// perImageConvBackward is the seed implementation of Conv2D.Backward:
// per-image gm build, dW scratch + AXPY, per-image dCols and col2im.
// It consumes the per-image cols matrices of the forward reference.
func perImageConvBackward(c *Conv2D, x, grad *tensor.Tensor, dW, dB *tensor.Tensor) *tensor.Tensor {
	b := grad.Dim(0)
	h, w := x.Dim(2), x.Dim(3)
	outH, outW := h-c.KH+1, w-c.KW+1
	fanIn := c.InC * c.KH * c.KW
	imgVol := c.InC * h * w
	outVol := c.OutC * outH * outW
	dx := tensor.New(b, c.InC, h, w)
	for i := 0; i < b; i++ {
		img := tensor.FromSlice(x.Data[i*imgVol:(i+1)*imgVol], c.InC, h, w)
		cols := tensor.New(outH*outW, fanIn)
		tensor.Im2Col(cols, img, c.KH, c.KW)
		g := grad.Data[i*outVol : (i+1)*outVol]
		gm := tensor.New(outH*outW, c.OutC)
		for ch := 0; ch < c.OutC; ch++ {
			col := g[ch*outH*outW : (ch+1)*outH*outW]
			var chSum float32
			for p, v := range col {
				gm.Data[p*c.OutC+ch] = v
				chSum += v
			}
			dB.Data[ch] += chSum
		}
		dWi := tensor.New(c.OutC, fanIn)
		tensor.MatMulTA(dWi, gm, cols)
		tensor.AXPY(dW, 1, dWi)
		dCols := tensor.New(outH*outW, fanIn)
		tensor.MatMul(dCols, gm, c.W)
		dImg := tensor.FromSlice(dx.Data[i*imgVol:(i+1)*imgVol], c.InC, h, w)
		tensor.Col2Im(dImg, dCols, c.KH, c.KW)
	}
	return dx
}

// TestConvBatchedMatchesPerImageGolden pins the batched conv lowering to
// the seed per-image path: forward output, input gradient, and both
// parameter gradients must be bit-identical, at serial and multi-worker
// kernel settings.
func TestConvBatchedMatchesPerImageGolden(t *testing.T) {
	defer tensor.SetWorkers(tensor.Workers())
	for _, workers := range []int{1, 4} {
		tensor.SetWorkers(workers)
		r := rng.New(0xc0147)
		conv := NewConv2D(2, 7, 3, 3, r)
		x := tensor.New(5, 2, 11, 9)
		r.FillNormal(x.Data, 0, 1)
		g := tensor.New(5, 7, 9, 7)
		r.FillNormal(g.Data, 0, 1)

		wantY := perImageConvForward(conv, x)
		gotY := conv.Forward(x, true)
		if !bitEqual(gotY.Data, wantY.Data) {
			t.Fatalf("workers=%d: batched forward differs from per-image path", workers)
		}

		wantDW := tensor.New(conv.OutC, conv.InC*conv.KH*conv.KW)
		wantDB := tensor.New(conv.OutC)
		wantDX := perImageConvBackward(conv, x, g, wantDW, wantDB)
		gotDX := conv.Backward(g)
		if !bitEqual(gotDX.Data, wantDX.Data) {
			t.Fatalf("workers=%d: batched input gradient differs from per-image path", workers)
		}
		if !bitEqual(conv.dW.Data, wantDW.Data) {
			t.Fatalf("workers=%d: batched dW differs from per-image path", workers)
		}
		if !bitEqual(conv.dB.Data, wantDB.Data) {
			t.Fatalf("workers=%d: batched dB differs from per-image path", workers)
		}
	}
}

// TestConvScratchSurvivesBatchSizeChange drives the same layer with
// shrinking and growing batch sizes — the Ensure-based scratch must
// resize without corrupting results.
func TestConvScratchSurvivesBatchSizeChange(t *testing.T) {
	r := rng.New(0x51e5)
	conv := NewConv2D(1, 4, 3, 3, r)
	for _, b := range []int{6, 2, 9, 1} {
		x := tensor.New(b, 1, 8, 8)
		r.FillNormal(x.Data, 0, 1)
		want := perImageConvForward(conv, x)
		got := conv.Forward(x, true)
		if !bitEqual(got.Data, want.Data) {
			t.Fatalf("batch %d: forward mismatch after scratch resize", b)
		}
		g := tensor.New(b, 4, 6, 6)
		r.FillNormal(g.Data, 0, 1)
		conv.Backward(g) // exercises backward scratch resize paths
	}
}

func bitEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
