package nn

import (
	"math"
	"testing"

	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

// scalarLoss is a deterministic scalar function of the layer output used
// by the finite-difference gradient checks: L = <coef, y>.
func scalarLoss(y, coef *tensor.Tensor) float64 {
	var s float64
	for i := range y.Data {
		s += float64(y.Data[i]) * float64(coef.Data[i])
	}
	return s
}

// checkInputGrad verifies Backward's input gradient for a layer against
// central finite differences.
func checkInputGrad(t *testing.T, layer Layer, x *tensor.Tensor, r *rng.RNG) {
	t.Helper()
	y := layer.Forward(x, true)
	coef := tensor.New(y.Shape()...)
	r.FillNormal(coef.Data, 0, 1)
	dx := layer.Backward(coef)

	const eps = 1e-2
	for _, i := range r.Sample(x.Len(), minInt(x.Len(), 12)) {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := scalarLoss(layer.Forward(x, true), coef)
		x.Data[i] = orig - eps
		lm := scalarLoss(layer.Forward(x, true), coef)
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		got := float64(dx.Data[i])
		if math.Abs(num-got) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("%s input grad[%d]: analytic %v, numeric %v", layer.Name(), i, got, num)
		}
	}
}

// checkParamGrad verifies Backward's parameter gradients against central
// finite differences.
func checkParamGrad(t *testing.T, layer Layer, x *tensor.Tensor, r *rng.RNG) {
	t.Helper()
	for _, p := range layer.Params() {
		p.Grad.Zero()
	}
	y := layer.Forward(x, true)
	coef := tensor.New(y.Shape()...)
	r.FillNormal(coef.Data, 0, 1)
	layer.Backward(coef)

	const eps = 1e-2
	for pi, p := range layer.Params() {
		for _, i := range r.Sample(p.Value.Len(), minInt(p.Value.Len(), 10)) {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := scalarLoss(layer.Forward(x, true), coef)
			p.Value.Data[i] = orig - eps
			lm := scalarLoss(layer.Forward(x, true), coef)
			p.Value.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			got := float64(p.Grad.Data[i])
			if math.Abs(num-got) > 2e-2*(1+math.Abs(num)) {
				t.Fatalf("%s param %d (%s) grad[%d]: analytic %v, numeric %v",
					layer.Name(), pi, p.Name, i, got, num)
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestLinearForwardKnown(t *testing.T) {
	r := rng.New(1)
	l := NewLinear(2, 3, r)
	copy(l.W.Data, []float32{1, 2, 3, 4, 5, 6}) // W is (3,2)
	copy(l.B.Data, []float32{0.5, -0.5, 0})
	x := tensor.FromSlice([]float32{1, 1, 2, 0}, 2, 2)
	y := l.Forward(x, false)
	want := []float32{3.5, 6.5, 11, 2.5, 5.5, 10}
	for i, w := range want {
		if math.Abs(float64(y.Data[i]-w)) > 1e-6 {
			t.Fatalf("Linear forward = %v, want %v", y.Data, want)
		}
	}
}

func TestLinearGradients(t *testing.T) {
	r := rng.New(2)
	l := NewLinear(5, 4, r)
	x := tensor.New(3, 5)
	r.FillNormal(x.Data, 0, 1)
	checkInputGrad(t, l, x, r)
	checkParamGrad(t, l, x, r)
}

func TestConvForwardShape(t *testing.T) {
	r := rng.New(3)
	c := NewConv2D(1, 4, 5, 5, r)
	x := tensor.New(2, 1, 28, 28)
	y := c.Forward(x, false)
	want := []int{2, 4, 24, 24}
	for i, d := range want {
		if y.Dim(i) != d {
			t.Fatalf("Conv output shape %v, want %v", y.Shape(), want)
		}
	}
}

func TestConvForwardKnown(t *testing.T) {
	r := rng.New(4)
	c := NewConv2D(1, 1, 2, 2, r)
	copy(c.W.Data, []float32{1, 0, 0, 1}) // main-diagonal sum
	c.B.Data[0] = 1
	x := tensor.FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	y := c.Forward(x, false)
	// windows: [1,2;4,5]->1+5+1=7, [2,3;5,6]->2+6+1=9, [4,5;7,8]->4+8+1=13, [5,6;8,9]->5+9+1=15
	want := []float32{7, 9, 13, 15}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("Conv forward = %v, want %v", y.Data, want)
		}
	}
}

func TestConvGradients(t *testing.T) {
	r := rng.New(5)
	c := NewConv2D(2, 3, 3, 3, r)
	x := tensor.New(2, 2, 6, 6)
	r.FillNormal(x.Data, 0, 1)
	checkInputGrad(t, c, x, r)
	checkParamGrad(t, c, x, r)
}

func TestMaxPoolForwardKnown(t *testing.T) {
	p := NewMaxPool2D(2, 2)
	x := tensor.FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		-1, -2, 0, 0,
		-3, -4, 9, 1,
	}, 1, 1, 4, 4)
	y := p.Forward(x, false)
	want := []float32{4, 8, -1, 9}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("MaxPool forward = %v, want %v", y.Data, want)
		}
	}
}

func TestMaxPoolBackwardRouting(t *testing.T) {
	p := NewMaxPool2D(2, 2)
	x := tensor.FromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	p.Forward(x, true)
	g := tensor.FromSlice([]float32{10}, 1, 1, 1, 1)
	dx := p.Backward(g)
	want := []float32{0, 0, 0, 10}
	for i, w := range want {
		if dx.Data[i] != w {
			t.Fatalf("MaxPool backward = %v, want %v", dx.Data, want)
		}
	}
}

func TestMaxPoolDropsOddEdges(t *testing.T) {
	p := NewMaxPool2D(2, 2)
	x := tensor.New(1, 1, 5, 5)
	y := p.Forward(x, false)
	if y.Dim(2) != 2 || y.Dim(3) != 2 {
		t.Fatalf("MaxPool on 5x5 gave %v, want 2x2 spatial", y.Shape())
	}
}

func TestReLUGradient(t *testing.T) {
	r := rng.New(6)
	x := tensor.New(4, 7)
	r.FillNormal(x.Data, 0, 1)
	checkInputGrad(t, NewReLU(), x, r)
}

func TestSigmoidGradient(t *testing.T) {
	r := rng.New(7)
	x := tensor.New(4, 7)
	r.FillNormal(x.Data, 0, 1)
	checkInputGrad(t, NewSigmoid(), x, r)
}

func TestTanhGradient(t *testing.T) {
	r := rng.New(8)
	x := tensor.New(4, 7)
	r.FillNormal(x.Data, 0, 1)
	checkInputGrad(t, NewTanh(), x, r)
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := rng.New(9)
	x := tensor.New(8, 10)
	r.FillNormal(x.Data, 0, 5)
	y := NewSoftmax().Forward(x, false)
	for i := 0; i < 8; i++ {
		var sum float64
		for j := 0; j < 10; j++ {
			v := y.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("softmax output %v outside [0,1]", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("softmax row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	x := tensor.FromSlice([]float32{1000, 1000, 1000}, 1, 3)
	y := NewSoftmax().Forward(x, false)
	for _, v := range y.Data {
		if math.IsNaN(float64(v)) || math.Abs(float64(v)-1.0/3) > 1e-5 {
			t.Fatalf("softmax of large equal logits = %v", y.Data)
		}
	}
}

func TestSoftmaxGradient(t *testing.T) {
	r := rng.New(10)
	x := tensor.New(3, 5)
	r.FillNormal(x.Data, 0, 1)
	checkInputGrad(t, NewSoftmax(), x, r)
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	x := tensor.New(2, 3, 4, 5)
	y := f.Forward(x, false)
	if y.Dim(0) != 2 || y.Dim(1) != 60 {
		t.Fatalf("Flatten shape = %v", y.Shape())
	}
	g := tensor.New(2, 60)
	dx := f.Backward(g)
	if dx.Rank() != 4 || dx.Dim(3) != 5 {
		t.Fatalf("Flatten backward shape = %v", dx.Shape())
	}
}

func TestDropoutTrainEval(t *testing.T) {
	r := rng.New(11)
	d := NewDropout(0.5, r)
	x := tensor.New(1, 10000)
	x.Fill(1)
	y := d.Forward(x, true)
	zeros := 0
	var sum float64
	for _, v := range y.Data {
		if v == 0 {
			zeros++
		}
		sum += float64(v)
	}
	frac := float64(zeros) / float64(y.Len())
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("dropout zeroed %v, want ~0.5", frac)
	}
	// Inverted dropout keeps the expectation.
	if math.Abs(sum/float64(y.Len())-1) > 0.1 {
		t.Fatalf("dropout expectation drifted: mean %v", sum/float64(y.Len()))
	}
	// Eval mode: identity.
	ye := d.Forward(x, false)
	for _, v := range ye.Data {
		if v != 1 {
			t.Fatal("dropout not identity at eval time")
		}
	}
}

func TestSequentialComposition(t *testing.T) {
	r := rng.New(12)
	model := NewSequential(
		NewLinear(4, 8, r),
		NewReLU(),
		NewLinear(8, 3, r),
	)
	x := tensor.New(5, 4)
	r.FillNormal(x.Data, 0, 1)
	y := model.Forward(x, true)
	if y.Dim(0) != 5 || y.Dim(1) != 3 {
		t.Fatalf("Sequential output shape %v", y.Shape())
	}
	if got := len(model.Params()); got != 4 {
		t.Fatalf("Sequential has %d params, want 4", got)
	}
	if model.NumParams() != 4*8+8+8*3+3 {
		t.Fatalf("NumParams = %d", model.NumParams())
	}
}

func TestFlattenLoadRoundTrip(t *testing.T) {
	r := rng.New(13)
	a := NewSequential(NewLinear(6, 4, r), NewReLU(), NewLinear(4, 2, r))
	b := NewSequential(NewLinear(6, 4, r), NewReLU(), NewLinear(4, 2, r))
	flat := a.FlattenParams()
	if len(flat) != a.NumParams() {
		t.Fatalf("FlattenParams length %d, want %d", len(flat), a.NumParams())
	}
	if err := b.LoadParams(flat); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(3, 6)
	r.FillNormal(x.Data, 0, 1)
	ya := a.Forward(x, false)
	yb := b.Forward(x, false)
	for i := range ya.Data {
		if ya.Data[i] != yb.Data[i] {
			t.Fatal("models with identical flat params disagree")
		}
	}
}

func TestLoadParamsLengthMismatch(t *testing.T) {
	r := rng.New(14)
	m := NewSequential(NewLinear(2, 2, r))
	if err := m.LoadParams(make([]float32, 3)); err == nil {
		t.Fatal("LoadParams accepted a wrong-length vector")
	}
}

func TestZeroGrad(t *testing.T) {
	r := rng.New(15)
	m := NewSequential(NewLinear(3, 3, r))
	x := tensor.New(2, 3)
	r.FillNormal(x.Data, 0, 1)
	y := m.Forward(x, true)
	g := tensor.New(y.Shape()...)
	g.Fill(1)
	m.Backward(g)
	nonzero := false
	for _, p := range m.Params() {
		for _, v := range p.Grad.Data {
			if v != 0 {
				nonzero = true
			}
		}
	}
	if !nonzero {
		t.Fatal("backward accumulated no gradient")
	}
	m.ZeroGrad()
	for _, p := range m.Params() {
		for _, v := range p.Grad.Data {
			if v != 0 {
				t.Fatal("ZeroGrad left nonzero gradient")
			}
		}
	}
}

func TestSequentialGradientEndToEnd(t *testing.T) {
	r := rng.New(16)
	model := NewSequential(
		NewConv2D(1, 2, 3, 3, r),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewFlatten(),
		NewLinear(2*3*3, 4, r),
	)
	x := tensor.New(2, 1, 8, 8)
	r.FillNormal(x.Data, 0, 1)
	checkInputGrad(t, model, x, r)
	checkParamGrad(t, model, x, r)
}

func TestDropoutGradientMatchesMask(t *testing.T) {
	r := rng.New(17)
	d := NewDropout(0.4, r)
	x := tensor.New(3, 50)
	r.FillNormal(x.Data, 0, 1)
	y := d.Forward(x, true)
	g := tensor.New(3, 50)
	g.Fill(1)
	dx := d.Backward(g)
	for i := range y.Data {
		if (y.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatal("dropout gradient mask differs from forward mask")
		}
		if y.Data[i] != 0 {
			scale := y.Data[i] / x.Data[i]
			if d := dx.Data[i] - scale; d > 1e-5 || d < -1e-5 {
				t.Fatalf("dropout gradient %v inconsistent with scale %v", dx.Data[i], scale)
			}
		}
	}
}

func TestFlattenGrads(t *testing.T) {
	r := rng.New(18)
	m := NewSequential(NewLinear(3, 2, r))
	x := tensor.New(4, 3)
	r.FillNormal(x.Data, 0, 1)
	y := m.Forward(x, true)
	g := tensor.New(y.Shape()...)
	g.Fill(1)
	m.Backward(g)
	flat := m.FlattenGrads()
	if len(flat) != m.NumParams() {
		t.Fatalf("FlattenGrads length %d, want %d", len(flat), m.NumParams())
	}
	var nonzero bool
	for _, v := range flat {
		if v != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("FlattenGrads returned all zeros after backward")
	}
}
