// Package nn implements the neural-network substrate for the FedGuard
// reproduction: composable layers with explicit forward/backward passes,
// a Sequential container, and flat parameter (de)serialization — the
// "wire format" that federated clients ship to the server and that
// attacks manipulate.
//
// All layers operate on batched tensors: (B, features) for dense layers
// and (B, C, H, W) for spatial layers. Layers retain whatever forward
// activations their backward pass needs, so a single layer instance must
// not be shared between concurrent training loops; federated clients each
// build their own model from a shared architecture function.
//
// Buffer-reuse contract: layers own their output, gradient, and work
// tensors as scratch that is grown on demand and reused across steps, so
// a steady-state train loop performs no per-step layer allocations. The
// tensor a Forward or Backward call returns is therefore valid only
// until the next call of the same method on that layer instance; callers
// that need a result to survive (e.g. to ship it over the wire) must
// copy it out, as FlattenParams already does.
package nn

import (
	"fmt"

	"fedguard/internal/tensor"
)

// Param is one learnable tensor together with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// Layer is a differentiable network stage.
type Layer interface {
	// Forward consumes a batched input and returns the batched output.
	// train toggles training-only behaviour (e.g. dropout).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the gradient w.r.t. the layer output, accumulates
	// parameter gradients, and returns the gradient w.r.t. the input.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's learnable parameters (possibly empty).
	Params() []Param
	// Name identifies the layer for debugging and serialization.
	Name() string
}

// Sequential chains layers, feeding each layer's output to the next.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a container over the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward runs the full stack.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs the stack in reverse, returning the gradient w.r.t. the
// original input.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns every learnable parameter in layer order.
func (s *Sequential) Params() []Param {
	var out []Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Name implements Layer so Sequentials nest.
func (s *Sequential) Name() string { return "Sequential" }

// NumParams returns the total learnable scalar count.
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += p.Value.Len()
	}
	return n
}

// ZeroGrad clears all accumulated gradients.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Params() {
		p.Grad.Zero()
	}
}

// FlattenParams serializes all parameter values into one flat vector in
// layer order — the representation exchanged in federated rounds.
func (s *Sequential) FlattenParams() []float32 {
	out := make([]float32, 0, s.NumParams())
	for _, p := range s.Params() {
		out = append(out, p.Value.Data...)
	}
	return out
}

// LoadParams copies a flat vector (as produced by FlattenParams on a
// model of identical architecture) into the parameter tensors. It returns
// an error if the length does not match.
func (s *Sequential) LoadParams(flat []float32) error {
	want := s.NumParams()
	if len(flat) != want {
		return fmt.Errorf("nn: LoadParams length %d, model has %d parameters", len(flat), want)
	}
	off := 0
	for _, p := range s.Params() {
		n := p.Value.Len()
		copy(p.Value.Data, flat[off:off+n])
		off += n
	}
	return nil
}

// FlattenGrads serializes all parameter gradients into one flat vector in
// layer order (same layout as FlattenParams).
func (s *Sequential) FlattenGrads() []float32 {
	out := make([]float32, 0, s.NumParams())
	for _, p := range s.Params() {
		out = append(out, p.Grad.Data...)
	}
	return out
}
