package nn

import (
	"fmt"

	"fedguard/internal/tensor"
)

// MaxPool2D is a non-overlapping max pooling layer with a (PH, PW) window
// and equal stride. Inputs of shape (B, C, H, W) produce
// (B, C, H/PH, W/PW); trailing rows/columns that do not fill a window are
// dropped (floor division), matching the paper's 2×2 pools. Output and
// gradient tensors are layer scratch reused across steps.
type MaxPool2D struct {
	PH, PW int

	inShape []int
	argmax  []int // flat input index of each output element
	y       *tensor.Tensor
	dx      *tensor.Tensor
}

// NewMaxPool2D constructs a pooling layer with the given window.
func NewMaxPool2D(ph, pw int) *MaxPool2D {
	if ph <= 0 || pw <= 0 {
		panic("nn: MaxPool2D with non-positive window")
	}
	return &MaxPool2D{PH: ph, PW: pw}
}

// Forward computes the pooled output and records argmax indices for the
// backward pass.
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: %s got input shape %v", m.Name(), x.Shape()))
	}
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	outH, outW := h/m.PH, w/m.PW
	if outH == 0 || outW == 0 {
		panic(fmt.Sprintf("nn: %s window larger than input (%d,%d)", m.Name(), h, w))
	}
	m.inShape = append(m.inShape[:0], b, c, h, w)
	m.y = tensor.Ensure(m.y, b, c, outH, outW)
	if cap(m.argmax) >= m.y.Len() {
		m.argmax = m.argmax[:m.y.Len()]
	} else {
		m.argmax = make([]int, m.y.Len())
	}
	for i := 0; i < b; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			outBase := (i*c + ch) * outH * outW
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					bestIdx := base + oy*m.PH*w + ox*m.PW
					best := x.Data[bestIdx]
					for ky := 0; ky < m.PH; ky++ {
						rowIdx := base + (oy*m.PH+ky)*w + ox*m.PW
						for kx := 0; kx < m.PW; kx++ {
							if v := x.Data[rowIdx+kx]; v > best {
								best = v
								bestIdx = rowIdx + kx
							}
						}
					}
					out := outBase + oy*outW + ox
					m.y.Data[out] = best
					m.argmax[out] = bestIdx
				}
			}
		}
	}
	return m.y
}

// Backward routes each output gradient to the input position that won the
// max.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if grad.Len() != len(m.argmax) {
		panic(fmt.Sprintf("nn: %s gradient length %d, want %d", m.Name(), grad.Len(), len(m.argmax)))
	}
	m.dx = tensor.Ensure(m.dx, m.inShape...)
	m.dx.Zero()
	for i, g := range grad.Data {
		m.dx.Data[m.argmax[i]] += g
	}
	return m.dx
}

// Params returns nil: pooling has no learnable parameters.
func (m *MaxPool2D) Params() []Param { return nil }

// Name implements Layer.
func (m *MaxPool2D) Name() string { return fmt.Sprintf("MaxPool2D(%dx%d)", m.PH, m.PW) }

// Flatten reshapes (B, ...) to (B, rest) for the transition from spatial
// to dense layers. The forward and backward results are allocation-free
// views over the argument's storage, held in reusable headers.
type Flatten struct {
	inShape []int
	y, dx   tensor.Tensor
}

// NewFlatten constructs a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all non-batch dimensions.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape()...)
	f.y.Bind(x.Data, x.Dim(0), x.Len()/x.Dim(0))
	return &f.y
}

// Backward restores the original spatial shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	f.dx.Bind(grad.Data, f.inShape...)
	return &f.dx
}

// Params returns nil.
func (f *Flatten) Params() []Param { return nil }

// Name implements Layer.
func (f *Flatten) Name() string { return "Flatten" }
