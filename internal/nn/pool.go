package nn

import (
	"fmt"

	"fedguard/internal/tensor"
)

// MaxPool2D is a non-overlapping max pooling layer with a (PH, PW) window
// and equal stride. Inputs of shape (B, C, H, W) produce
// (B, C, H/PH, W/PW); trailing rows/columns that do not fill a window are
// dropped (floor division), matching the paper's 2×2 pools.
type MaxPool2D struct {
	PH, PW int

	inShape []int
	argmax  []int // flat input index of each output element
}

// NewMaxPool2D constructs a pooling layer with the given window.
func NewMaxPool2D(ph, pw int) *MaxPool2D {
	if ph <= 0 || pw <= 0 {
		panic("nn: MaxPool2D with non-positive window")
	}
	return &MaxPool2D{PH: ph, PW: pw}
}

// Forward computes the pooled output and records argmax indices for the
// backward pass.
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: %s got input shape %v", m.Name(), x.Shape()))
	}
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	outH, outW := h/m.PH, w/m.PW
	if outH == 0 || outW == 0 {
		panic(fmt.Sprintf("nn: %s window larger than input (%d,%d)", m.Name(), h, w))
	}
	m.inShape = []int{b, c, h, w}
	y := tensor.New(b, c, outH, outW)
	m.argmax = make([]int, y.Len())
	for i := 0; i < b; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			outBase := (i*c + ch) * outH * outW
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					bestIdx := base + oy*m.PH*w + ox*m.PW
					best := x.Data[bestIdx]
					for ky := 0; ky < m.PH; ky++ {
						rowIdx := base + (oy*m.PH+ky)*w + ox*m.PW
						for kx := 0; kx < m.PW; kx++ {
							if v := x.Data[rowIdx+kx]; v > best {
								best = v
								bestIdx = rowIdx + kx
							}
						}
					}
					out := outBase + oy*outW + ox
					y.Data[out] = best
					m.argmax[out] = bestIdx
				}
			}
		}
	}
	return y
}

// Backward routes each output gradient to the input position that won the
// max.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if grad.Len() != len(m.argmax) {
		panic(fmt.Sprintf("nn: %s gradient length %d, want %d", m.Name(), grad.Len(), len(m.argmax)))
	}
	dx := tensor.New(m.inShape...)
	for i, g := range grad.Data {
		dx.Data[m.argmax[i]] += g
	}
	return dx
}

// Params returns nil: pooling has no learnable parameters.
func (m *MaxPool2D) Params() []Param { return nil }

// Name implements Layer.
func (m *MaxPool2D) Name() string { return fmt.Sprintf("MaxPool2D(%dx%d)", m.PH, m.PW) }

// Flatten reshapes (B, ...) to (B, rest) for the transition from spatial
// to dense layers.
type Flatten struct {
	inShape []int
}

// NewFlatten constructs a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all non-batch dimensions.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append([]int(nil), x.Shape()...)
	return x.Reshape(x.Dim(0), -1)
}

// Backward restores the original spatial shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Params returns nil.
func (f *Flatten) Params() []Param { return nil }

// Name implements Layer.
func (f *Flatten) Name() string { return "Flatten" }
