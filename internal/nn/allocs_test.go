//go:build !race

// Allocation-regression pins. They live behind !race because the race
// detector instruments allocations and inflates the counts.

package nn

import (
	"testing"

	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

// TestConvForwardAllocsSteadyState pins the scratch-reuse property: once
// warmed up, Conv2D.Forward allocates nothing — no per-batch-item
// tensors, no dispatch closures (the kernel pool ships typed tasks), no
// escaping shape slices.
func TestConvForwardAllocsSteadyState(t *testing.T) {
	r := rng.New(0xa110c)
	conv := NewConv2D(1, 32, 5, 5, r)
	x := tensor.New(8, 1, 28, 28)
	r.FillNormal(x.Data, 0, 1)
	conv.Forward(x, true) // warm up scratch
	allocs := testing.AllocsPerRun(20, func() { conv.Forward(x, true) })
	if allocs > 0 {
		t.Fatalf("steady-state Conv2D.Forward allocates %.1f/op, want 0", allocs)
	}
}

// TestConvBackwardAllocsSteadyState pins the same property for Backward,
// including the per-image dW accumulation (Bind views, no fresh tensors).
func TestConvBackwardAllocsSteadyState(t *testing.T) {
	r := rng.New(0xa110d)
	conv := NewConv2D(1, 32, 5, 5, r)
	x := tensor.New(8, 1, 28, 28)
	r.FillNormal(x.Data, 0, 1)
	y := conv.Forward(x, true)
	g := tensor.New(y.Shape()...)
	r.FillNormal(g.Data, 0, 1)
	conv.Backward(g) // warm up scratch
	allocs := testing.AllocsPerRun(20, func() { conv.Backward(g) })
	if allocs > 0 {
		t.Fatalf("steady-state Conv2D.Backward allocates %.1f/op, want 0", allocs)
	}
}

// TestLinearAllocsSteadyState pins Linear forward+backward scratch reuse.
func TestLinearAllocsSteadyState(t *testing.T) {
	r := rng.New(0xa110e)
	lin := NewLinear(256, 64, r)
	x := tensor.New(32, 256)
	g := tensor.New(32, 64)
	r.FillNormal(x.Data, 0, 1)
	r.FillNormal(g.Data, 0, 1)
	lin.Forward(x, true)
	lin.Backward(g)
	allocs := testing.AllocsPerRun(20, func() {
		lin.Forward(x, true)
		lin.Backward(g)
	})
	if allocs > 0 {
		t.Fatalf("steady-state Linear step allocates %.1f/op, want 0", allocs)
	}
}
