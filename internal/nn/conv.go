package nn

import (
	"fmt"
	"math"

	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

// Conv2D is a stride-1, no-padding 2-D convolution (the configuration
// used by the paper's MNIST classifier, Table II). Filters have shape
// (outC, inC*kh*kw); inputs have shape (B, inC, H, W).
//
// The forward pass lowers each image to an im2col matrix and multiplies
// by the filter matrix; the backward pass uses the matching col2im
// scatter.
type Conv2D struct {
	InC, OutC, KH, KW int
	W                 *tensor.Tensor // (outC, inC*kh*kw)
	B                 *tensor.Tensor // (outC)
	dW, dB            *tensor.Tensor

	x    *tensor.Tensor   // retained input
	cols []*tensor.Tensor // retained im2col matrices, one per batch item
}

// NewConv2D constructs a convolution layer with He-uniform weight
// initialization drawn from r.
func NewConv2D(inC, outC, kh, kw int, r *rng.RNG) *Conv2D {
	fanIn := inC * kh * kw
	c := &Conv2D{
		InC: inC, OutC: outC, KH: kh, KW: kw,
		W:  tensor.New(outC, fanIn),
		B:  tensor.New(outC),
		dW: tensor.New(outC, fanIn),
		dB: tensor.New(outC),
	}
	bound := math.Sqrt(6.0 / float64(fanIn))
	r.FillUniform(c.W.Data, -bound, bound)
	return c
}

func (c *Conv2D) outDims(h, w int) (int, int) { return h - c.KH + 1, w - c.KW + 1 }

// Forward computes the convolution of a (B, inC, H, W) batch, producing
// (B, outC, outH, outW).
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s got input shape %v", c.Name(), x.Shape()))
	}
	b, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	outH, outW := c.outDims(h, w)
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("nn: %s kernel larger than input (%d,%d)", c.Name(), h, w))
	}
	c.x = x
	c.cols = make([]*tensor.Tensor, b)
	fanIn := c.InC * c.KH * c.KW
	y := tensor.New(b, c.OutC, outH, outW)
	imgVol := c.InC * h * w
	outVol := c.OutC * outH * outW
	for i := 0; i < b; i++ {
		img := tensor.FromSlice(x.Data[i*imgVol:(i+1)*imgVol], c.InC, h, w)
		cols := tensor.New(outH*outW, fanIn)
		tensor.Im2Col(cols, img, c.KH, c.KW)
		c.cols[i] = cols
		// out (outC, outH*outW) = W (outC, fanIn) @ colsᵀ — computed as
		// cols @ Wᵀ giving (outH*outW, outC), then transposed into place.
		prod := tensor.New(outH*outW, c.OutC)
		tensor.MatMulT(prod, cols, c.W)
		dst := y.Data[i*outVol : (i+1)*outVol]
		for p := 0; p < outH*outW; p++ {
			row := prod.Data[p*c.OutC : (p+1)*c.OutC]
			for ch, v := range row {
				dst[ch*outH*outW+p] = v + c.B.Data[ch]
			}
		}
	}
	return y
}

// Backward accumulates filter/bias gradients and returns the gradient
// w.r.t. the input batch.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	b := grad.Dim(0)
	h, w := c.x.Dim(2), c.x.Dim(3)
	outH, outW := c.outDims(h, w)
	if grad.Dim(1) != c.OutC || grad.Dim(2) != outH || grad.Dim(3) != outW {
		panic(fmt.Sprintf("nn: %s got gradient shape %v", c.Name(), grad.Shape()))
	}
	fanIn := c.InC * c.KH * c.KW
	imgVol := c.InC * h * w
	outVol := c.OutC * outH * outW
	dx := tensor.New(b, c.InC, h, w)
	// Per-sample: gradMat (outH*outW, outC) from the channel-major grad.
	for i := 0; i < b; i++ {
		g := grad.Data[i*outVol : (i+1)*outVol]
		gm := tensor.New(outH*outW, c.OutC)
		for ch := 0; ch < c.OutC; ch++ {
			col := g[ch*outH*outW : (ch+1)*outH*outW]
			var chSum float32
			for p, v := range col {
				gm.Data[p*c.OutC+ch] = v
				chSum += v
			}
			c.dB.Data[ch] += chSum
		}
		// dW += gmᵀ @ cols  -> (outC, fanIn)
		dW := tensor.New(c.OutC, fanIn)
		tensor.MatMulTA(dW, gm, c.cols[i])
		tensor.AXPY(c.dW, 1, dW)
		// dCols = gm @ W -> (outH*outW, fanIn), scattered back to image.
		dCols := tensor.New(outH*outW, fanIn)
		tensor.MatMul(dCols, gm, c.W)
		dImg := tensor.FromSlice(dx.Data[i*imgVol:(i+1)*imgVol], c.InC, h, w)
		tensor.Col2Im(dImg, dCols, c.KH, c.KW)
	}
	return dx
}

// Params returns the filter and bias with their gradients.
func (c *Conv2D) Params() []Param {
	return []Param{
		{Name: "W", Value: c.W, Grad: c.dW},
		{Name: "b", Value: c.B, Grad: c.dB},
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D(%d->%d, %dx%d)", c.InC, c.OutC, c.KH, c.KW)
}
