package nn

import (
	"fmt"
	"math"

	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

// Conv2D is a stride-1, no-padding 2-D convolution (the configuration
// used by the paper's MNIST classifier, Table II). Filters have shape
// (outC, inC*kh*kw); inputs have shape (B, inC, H, W).
//
// The forward pass lowers the whole batch into one im2col matrix and
// multiplies by the filter matrix in a single large matmul; the backward
// pass computes the input gradient per image straight from the
// channel-major gradient blocks and scatters it with one batched col2im.
// Filter gradients are accumulated per image (dW += gradᵢ @ colsᵢ) so
// the partial-sum association — and therefore every bit of the gradient
// — matches the original per-image path exactly.
//
// All work tensors are layer-owned scratch, grown on demand and reused
// across steps: steady-state training allocates nothing here. The
// tensors returned by Forward and Backward are part of that scratch and
// remain valid only until the next call on this layer.
type Conv2D struct {
	InC, OutC, KH, KW int
	W                 *tensor.Tensor // (outC, inC*kh*kw)
	B                 *tensor.Tensor // (outC)
	dW, dB            *tensor.Tensor

	// InputGradOff, when set, makes Backward skip the input-gradient
	// computation (the dCols matmul and col2im scatter) and return nil.
	// Set it on a network's first layer, whose input gradient nobody
	// consumes; parameter gradients are unaffected, so training results
	// are bit-identical with the flag on or off.
	InputGradOff bool

	x *tensor.Tensor // retained input

	cols  *tensor.Tensor // (B*outH*outW, inC*kh*kw) batched im2col
	prod  *tensor.Tensor // (B*outH*outW, outC) cols @ Wᵀ
	wT    *tensor.Tensor // (inC*kh*kw, outC) transposed-filter scratch
	y     *tensor.Tensor // (B, outC, outH, outW)
	dCols *tensor.Tensor // (B*outH*outW, inC*kh*kw)
	dx    *tensor.Tensor // (B, inC, H, W)

	gView, colsView, dColsView tensor.Tensor // reusable per-image view headers
}

// NewConv2D constructs a convolution layer with He-uniform weight
// initialization drawn from r.
func NewConv2D(inC, outC, kh, kw int, r *rng.RNG) *Conv2D {
	fanIn := inC * kh * kw
	c := &Conv2D{
		InC: inC, OutC: outC, KH: kh, KW: kw,
		W:  tensor.New(outC, fanIn),
		B:  tensor.New(outC),
		dW: tensor.New(outC, fanIn),
		dB: tensor.New(outC),
	}
	bound := math.Sqrt(6.0 / float64(fanIn))
	r.FillUniform(c.W.Data, -bound, bound)
	return c
}

func (c *Conv2D) outDims(h, w int) (int, int) { return h - c.KH + 1, w - c.KW + 1 }

// Forward computes the convolution of a (B, inC, H, W) batch, producing
// (B, outC, outH, outW). The returned tensor is layer scratch, valid
// until the next Forward call.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s got input shape %v", c.Name(), x.Shape()))
	}
	b, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	outH, outW := c.outDims(h, w)
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("nn: %s kernel larger than input (%d,%d)", c.Name(), h, w))
	}
	c.x = x
	fanIn := c.InC * c.KH * c.KW
	oHW := outH * outW

	c.cols = tensor.Ensure(c.cols, b*oHW, fanIn)
	tensor.Im2ColBatch(c.cols, x, c.KH, c.KW)

	// prod (B*oHW, outC) = cols @ Wᵀ — one large matmul for the whole
	// batch. Each output element is the same fanIn-term dot product the
	// per-image path computed, so the result is bit-identical; on the
	// SIMD path a transposed-filter scratch turns it into the
	// vector-friendly plain product (same ascending-fanIn sums).
	c.prod = tensor.Ensure(c.prod, b*oHW, c.OutC)
	if tensor.HasVectorKernels() {
		c.wT = tensor.Ensure(c.wT, fanIn, c.OutC)
		tensor.TransposeInto(c.wT, c.W)
		tensor.MatMul(c.prod, c.cols, c.wT)
	} else {
		tensor.MatMulT(c.prod, c.cols, c.W)
	}

	// Transpose each image's (oHW, outC) block into channel-major layout
	// and add the bias.
	c.y = tensor.Ensure(c.y, b, c.OutC, outH, outW)
	outVol := c.OutC * oHW
	for i := 0; i < b; i++ {
		dst := c.y.Data[i*outVol : (i+1)*outVol]
		src := c.prod.Data[i*oHW*c.OutC:]
		for p := 0; p < oHW; p++ {
			row := src[p*c.OutC : (p+1)*c.OutC]
			for ch, v := range row {
				dst[ch*oHW+p] = v + c.B.Data[ch]
			}
		}
	}
	return c.y
}

// Backward accumulates filter/bias gradients and returns the gradient
// w.r.t. the input batch. The returned tensor is layer scratch, valid
// until the next Backward call.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	b := grad.Dim(0)
	h, w := c.x.Dim(2), c.x.Dim(3)
	outH, outW := c.outDims(h, w)
	if grad.Dim(1) != c.OutC || grad.Dim(2) != outH || grad.Dim(3) != outW {
		panic(fmt.Sprintf("nn: %s got gradient shape %v", c.Name(), grad.Shape()))
	}
	fanIn := c.InC * c.KH * c.KW
	oHW := outH * outW
	outVol := c.OutC * oHW

	// Per image, the incoming gradient block is already channel-major
	// (outC, oHW) — exactly the left operand both gradient products
	// need, so no transpose buffer is built. dB sums each contiguous
	// channel row; dW += gradᵢ @ colsᵢ accumulates per image so the
	// partial-sum association (and therefore every bit of the gradient)
	// matches the original per-image path; dColsᵢ = gradᵢᵀ @ W sums over
	// channels in the same ascending order the batched product would.
	// The Bind views avoid any per-image allocation.
	if !c.InputGradOff {
		c.dCols = tensor.Ensure(c.dCols, b*oHW, fanIn)
	}
	for i := 0; i < b; i++ {
		g := grad.Data[i*outVol : (i+1)*outVol]
		for ch := 0; ch < c.OutC; ch++ {
			row := g[ch*oHW : (ch+1)*oHW]
			var chSum float32
			for _, v := range row {
				chSum += v
			}
			c.dB.Data[ch] += chSum
		}
		c.gView.Bind(g, c.OutC, oHW)
		c.colsView.Bind(c.cols.Data[i*oHW*fanIn:], oHW, fanIn)
		tensor.MatMulAcc(c.dW, &c.gView, &c.colsView)
		if !c.InputGradOff {
			c.dColsView.Bind(c.dCols.Data[i*oHW*fanIn:], oHW, fanIn)
			tensor.MatMulTA(&c.dColsView, &c.gView, c.W)
		}
	}

	if c.InputGradOff {
		return nil
	}

	c.dx = tensor.Ensure(c.dx, b, c.InC, h, w)
	tensor.Col2ImBatch(c.dx, c.dCols, c.KH, c.KW)
	return c.dx
}

// Params returns the filter and bias with their gradients.
func (c *Conv2D) Params() []Param {
	return []Param{
		{Name: "W", Value: c.W, Grad: c.dW},
		{Name: "b", Value: c.B, Grad: c.dB},
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D(%d->%d, %dx%d)", c.InC, c.OutC, c.KH, c.KW)
}
