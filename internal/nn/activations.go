package nn

import (
	"math"

	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

// ReLU is the rectified linear activation, y = max(0, x).
type ReLU struct {
	mask []bool
}

// NewReLU constructs a ReLU activation.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies max(0, x) element-wise.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.New(x.Shape()...)
	r.mask = make([]bool, x.Len())
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
			r.mask[i] = true
		}
	}
	return y
}

// Backward zeroes gradients where the forward input was non-positive.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(grad.Shape()...)
	for i, g := range grad.Data {
		if r.mask[i] {
			dx.Data[i] = g
		}
	}
	return dx
}

// Params returns nil.
func (r *ReLU) Params() []Param { return nil }

// Name implements Layer.
func (r *ReLU) Name() string { return "ReLU" }

// Sigmoid is the logistic activation, y = 1/(1+e^-x). The paper's CVAE
// decoder ends in a sigmoid so outputs are valid pixel intensities.
type Sigmoid struct {
	y *tensor.Tensor
}

// NewSigmoid constructs a sigmoid activation.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward applies the logistic function element-wise.
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.New(x.Shape()...)
	for i, v := range x.Data {
		y.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	s.y = y
	return y
}

// Backward uses dy/dx = y(1-y).
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(grad.Shape()...)
	for i, g := range grad.Data {
		y := s.y.Data[i]
		dx.Data[i] = g * y * (1 - y)
	}
	return dx
}

// Params returns nil.
func (s *Sigmoid) Params() []Param { return nil }

// Name implements Layer.
func (s *Sigmoid) Name() string { return "Sigmoid" }

// Tanh is the hyperbolic tangent activation.
type Tanh struct {
	y *tensor.Tensor
}

// NewTanh constructs a tanh activation.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh element-wise.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.New(x.Shape()...)
	for i, v := range x.Data {
		y.Data[i] = float32(math.Tanh(float64(v)))
	}
	t.y = y
	return y
}

// Backward uses dy/dx = 1 - y².
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(grad.Shape()...)
	for i, g := range grad.Data {
		y := t.y.Data[i]
		dx.Data[i] = g * (1 - y*y)
	}
	return dx
}

// Params returns nil.
func (t *Tanh) Params() []Param { return nil }

// Name implements Layer.
func (t *Tanh) Name() string { return "Tanh" }

// Softmax normalizes each row of a (B, classes) tensor into a probability
// distribution. Training uses the fused softmax-cross-entropy in package
// loss; this layer exists for inference-time probability output and for
// architectures that genuinely need an in-network softmax.
type Softmax struct {
	y *tensor.Tensor
}

// NewSoftmax constructs a softmax layer.
func NewSoftmax() *Softmax { return &Softmax{} }

// Forward computes a numerically stable row-wise softmax.
func (s *Softmax) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	b, n := x.Dim(0), x.Dim(1)
	y := tensor.New(b, n)
	for i := 0; i < b; i++ {
		SoftmaxRow(y.Data[i*n:(i+1)*n], x.Data[i*n:(i+1)*n])
	}
	s.y = y
	return y
}

// SoftmaxRow writes softmax(src) into dst with max-subtraction for
// stability. dst and src must have equal length.
func SoftmaxRow(dst, src []float32) {
	maxV := src[0]
	for _, v := range src[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range src {
		e := math.Exp(float64(v - maxV))
		dst[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range dst {
		dst[i] *= inv
	}
}

// Backward applies the softmax Jacobian: dx = y ⊙ (g - <g, y>) row-wise.
func (s *Softmax) Backward(grad *tensor.Tensor) *tensor.Tensor {
	b, n := grad.Dim(0), grad.Dim(1)
	dx := tensor.New(b, n)
	for i := 0; i < b; i++ {
		g := grad.Data[i*n : (i+1)*n]
		y := s.y.Data[i*n : (i+1)*n]
		var dot float64
		for j := range g {
			dot += float64(g[j]) * float64(y[j])
		}
		for j := range g {
			dx.Data[i*n+j] = y[j] * (g[j] - float32(dot))
		}
	}
	return dx
}

// Params returns nil.
func (s *Softmax) Params() []Param { return nil }

// Name implements Layer.
func (s *Softmax) Name() string { return "Softmax" }

// Dropout randomly zeroes a fraction p of activations during training and
// rescales survivors by 1/(1-p) (inverted dropout). At inference it is
// the identity.
type Dropout struct {
	P   float64
	rng *rng.RNG

	mask []float32
}

// NewDropout constructs a dropout layer with drop probability p using
// randomness from r.
func NewDropout(p float64, r *rng.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: Dropout probability must be in [0,1)")
	}
	return &Dropout{P: p, rng: r}
}

// Forward applies the dropout mask in training mode.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		d.mask = nil
		return x
	}
	y := tensor.New(x.Shape()...)
	d.mask = make([]float32, x.Len())
	scale := float32(1 / (1 - d.P))
	for i, v := range x.Data {
		if d.rng.Float64() >= d.P {
			d.mask[i] = scale
			y.Data[i] = v * scale
		}
	}
	return y
}

// Backward applies the same mask to the gradient.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	dx := tensor.New(grad.Shape()...)
	for i, g := range grad.Data {
		dx.Data[i] = g * d.mask[i]
	}
	return dx
}

// Params returns nil.
func (d *Dropout) Params() []Param { return nil }

// Name implements Layer.
func (d *Dropout) Name() string { return "Dropout" }
