package nn

import (
	"math"

	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

// Activation layers keep their output and input-gradient tensors as
// layer-owned scratch, grown on demand (tensor.Ensure) and reused across
// steps so the steady-state training loop allocates nothing here. The
// returned tensors are valid only until the next call on the same layer
// — the package contract (see the package comment) that a layer instance
// is never shared between concurrent training loops makes this safe.

// ensureBoolMask grows a []bool scratch slice to n, reusing capacity.
func ensureBoolMask(mask []bool, n int) []bool {
	if cap(mask) >= n {
		return mask[:n]
	}
	return make([]bool, n)
}

// ReLU is the rectified linear activation, y = max(0, x).
type ReLU struct {
	mask []bool
	y    *tensor.Tensor
	dx   *tensor.Tensor
}

// NewReLU constructs a ReLU activation.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies max(0, x) element-wise.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.y = tensor.Ensure(r.y, x.Shape()...)
	r.mask = ensureBoolMask(r.mask, x.Len())
	for i, v := range x.Data {
		if v > 0 {
			r.y.Data[i] = v
			r.mask[i] = true
		} else {
			r.y.Data[i] = 0
			r.mask[i] = false
		}
	}
	return r.y
}

// Backward zeroes gradients where the forward input was non-positive.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	r.dx = tensor.Ensure(r.dx, grad.Shape()...)
	for i, g := range grad.Data {
		if r.mask[i] {
			r.dx.Data[i] = g
		} else {
			r.dx.Data[i] = 0
		}
	}
	return r.dx
}

// Params returns nil.
func (r *ReLU) Params() []Param { return nil }

// Name implements Layer.
func (r *ReLU) Name() string { return "ReLU" }

// Sigmoid is the logistic activation, y = 1/(1+e^-x). The paper's CVAE
// decoder ends in a sigmoid so outputs are valid pixel intensities.
type Sigmoid struct {
	y  *tensor.Tensor
	dx *tensor.Tensor
}

// NewSigmoid constructs a sigmoid activation.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward applies the logistic function element-wise.
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s.y = tensor.Ensure(s.y, x.Shape()...)
	for i, v := range x.Data {
		s.y.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return s.y
}

// Backward uses dy/dx = y(1-y).
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	s.dx = tensor.Ensure(s.dx, grad.Shape()...)
	for i, g := range grad.Data {
		y := s.y.Data[i]
		s.dx.Data[i] = g * y * (1 - y)
	}
	return s.dx
}

// Params returns nil.
func (s *Sigmoid) Params() []Param { return nil }

// Name implements Layer.
func (s *Sigmoid) Name() string { return "Sigmoid" }

// Tanh is the hyperbolic tangent activation.
type Tanh struct {
	y  *tensor.Tensor
	dx *tensor.Tensor
}

// NewTanh constructs a tanh activation.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh element-wise.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	t.y = tensor.Ensure(t.y, x.Shape()...)
	for i, v := range x.Data {
		t.y.Data[i] = float32(math.Tanh(float64(v)))
	}
	return t.y
}

// Backward uses dy/dx = 1 - y².
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	t.dx = tensor.Ensure(t.dx, grad.Shape()...)
	for i, g := range grad.Data {
		y := t.y.Data[i]
		t.dx.Data[i] = g * (1 - y*y)
	}
	return t.dx
}

// Params returns nil.
func (t *Tanh) Params() []Param { return nil }

// Name implements Layer.
func (t *Tanh) Name() string { return "Tanh" }

// Softmax normalizes each row of a (B, classes) tensor into a probability
// distribution. Training uses the fused softmax-cross-entropy in package
// loss; this layer exists for inference-time probability output and for
// architectures that genuinely need an in-network softmax.
type Softmax struct {
	y  *tensor.Tensor
	dx *tensor.Tensor
}

// NewSoftmax constructs a softmax layer.
func NewSoftmax() *Softmax { return &Softmax{} }

// Forward computes a numerically stable row-wise softmax.
func (s *Softmax) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	b, n := x.Dim(0), x.Dim(1)
	s.y = tensor.Ensure(s.y, b, n)
	for i := 0; i < b; i++ {
		SoftmaxRow(s.y.Data[i*n:(i+1)*n], x.Data[i*n:(i+1)*n])
	}
	return s.y
}

// SoftmaxRow writes softmax(src) into dst with max-subtraction for
// stability. dst and src must have equal length.
func SoftmaxRow(dst, src []float32) {
	maxV := src[0]
	for _, v := range src[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range src {
		e := math.Exp(float64(v - maxV))
		dst[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range dst {
		dst[i] *= inv
	}
}

// Backward applies the softmax Jacobian: dx = y ⊙ (g - <g, y>) row-wise.
func (s *Softmax) Backward(grad *tensor.Tensor) *tensor.Tensor {
	b, n := grad.Dim(0), grad.Dim(1)
	s.dx = tensor.Ensure(s.dx, b, n)
	for i := 0; i < b; i++ {
		g := grad.Data[i*n : (i+1)*n]
		y := s.y.Data[i*n : (i+1)*n]
		var dot float64
		for j := range g {
			dot += float64(g[j]) * float64(y[j])
		}
		for j := range g {
			s.dx.Data[i*n+j] = y[j] * (g[j] - float32(dot))
		}
	}
	return s.dx
}

// Params returns nil.
func (s *Softmax) Params() []Param { return nil }

// Name implements Layer.
func (s *Softmax) Name() string { return "Softmax" }

// Dropout randomly zeroes a fraction p of activations during training and
// rescales survivors by 1/(1-p) (inverted dropout). At inference it is
// the identity.
type Dropout struct {
	P   float64
	rng *rng.RNG

	mask []float32
	y    *tensor.Tensor
	dx   *tensor.Tensor
}

// NewDropout constructs a dropout layer with drop probability p using
// randomness from r.
func NewDropout(p float64, r *rng.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: Dropout probability must be in [0,1)")
	}
	return &Dropout{P: p, rng: r}
}

// Forward applies the dropout mask in training mode.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		d.mask = nil
		return x
	}
	d.y = tensor.Ensure(d.y, x.Shape()...)
	if cap(d.mask) >= x.Len() {
		d.mask = d.mask[:x.Len()]
	} else {
		d.mask = make([]float32, x.Len())
	}
	scale := float32(1 / (1 - d.P))
	for i, v := range x.Data {
		if d.rng.Float64() >= d.P {
			d.mask[i] = scale
			d.y.Data[i] = v * scale
		} else {
			d.mask[i] = 0
			d.y.Data[i] = 0
		}
	}
	return d.y
}

// Backward applies the same mask to the gradient.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	d.dx = tensor.Ensure(d.dx, grad.Shape()...)
	for i, g := range grad.Data {
		d.dx.Data[i] = g * d.mask[i]
	}
	return d.dx
}

// Params returns nil.
func (d *Dropout) Params() []Param { return nil }

// Name implements Layer.
func (d *Dropout) Name() string { return "Dropout" }
