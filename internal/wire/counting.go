package wire

import (
	"io"
	"sync/atomic"
)

// CountingConn wraps a stream and counts bytes in both directions. The
// networked federation uses it to report *measured* wire traffic rather
// than computed payload sizes, making Table V's communication columns an
// actual observation.
type CountingConn struct {
	rw      io.ReadWriter
	read    atomic.Int64
	written atomic.Int64
}

// NewCountingConn wraps rw.
func NewCountingConn(rw io.ReadWriter) *CountingConn {
	return &CountingConn{rw: rw}
}

// Read implements io.Reader.
func (c *CountingConn) Read(p []byte) (int, error) {
	n, err := c.rw.Read(p)
	c.read.Add(int64(n))
	return n, err
}

// Write implements io.Writer.
func (c *CountingConn) Write(p []byte) (int, error) {
	n, err := c.rw.Write(p)
	c.written.Add(int64(n))
	return n, err
}

// BytesRead returns the total bytes read so far.
func (c *CountingConn) BytesRead() int64 { return c.read.Load() }

// BytesWritten returns the total bytes written so far.
func (c *CountingConn) BytesWritten() int64 { return c.written.Load() }
