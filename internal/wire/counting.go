package wire

import (
	"io"
	"sync"
	"sync/atomic"
)

// CountingConn wraps a stream and counts bytes in both directions. The
// networked federation uses it to report *measured* wire traffic rather
// than computed payload sizes, making Table V's communication columns an
// actual observation.
//
// CountingConn is an io.Closer: callers that hold only the wrapper can
// (and should) close it, and the close passes through to the wrapped
// stream so the underlying net.Conn is not leaked. An optional OnClose
// hook surfaces the final byte counts exactly once at close time — the
// hand-off point to a telemetry gauge.
type CountingConn struct {
	rw      io.ReadWriter
	read    atomic.Int64
	written atomic.Int64

	closeOnce sync.Once
	onClose   func(read, written int64)
}

// NewCountingConn wraps rw.
func NewCountingConn(rw io.ReadWriter) *CountingConn {
	return &CountingConn{rw: rw}
}

// OnClose registers fn to receive the final byte counts when the
// connection is closed (fired at most once, before the underlying
// stream's Close). Call before any concurrent use.
func (c *CountingConn) OnClose(fn func(read, written int64)) { c.onClose = fn }

// Close implements io.Closer: it fires the OnClose hook with the final
// counts, then closes the wrapped stream if it is itself a Closer.
// Subsequent Closes skip the hook but still forward to the underlying
// stream.
func (c *CountingConn) Close() error {
	c.closeOnce.Do(func() {
		if c.onClose != nil {
			c.onClose(c.read.Load(), c.written.Load())
		}
	})
	if cl, ok := c.rw.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// Read implements io.Reader.
func (c *CountingConn) Read(p []byte) (int, error) {
	n, err := c.rw.Read(p)
	c.read.Add(int64(n))
	return n, err
}

// Write implements io.Writer.
func (c *CountingConn) Write(p []byte) (int, error) {
	n, err := c.rw.Write(p)
	c.written.Add(int64(n))
	return n, err
}

// BytesRead returns the total bytes read so far.
func (c *CountingConn) BytesRead() int64 { return c.read.Load() }

// BytesWritten returns the total bytes written so far.
func (c *CountingConn) BytesWritten() int64 { return c.written.Load() }
