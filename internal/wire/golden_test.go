package wire

import (
	"bytes"
	"encoding/hex"
	"reflect"
	"testing"
)

// goldenFrames pins the byte-level wire format for every message type:
// [4B LE payload length][4B LE CRC-32C][1B type][body]. A networked
// federation mixes server and client builds, so any change to these
// bytes is a protocol break and must be deliberate (bump this table in
// the same change).
var goldenFrames = []struct {
	name string
	msg  any
	hex  string
}{
	{
		name: "Hello",
		msg:  &Hello{ClientID: 7},
		hex:  "0500000053a163640107000000",
	},
	{
		name: "Setup",
		msg: &Setup{Seed: 1, DataSeed: 2, TrainSize: 3, Indices: []uint32{4, 5},
			ArchName: "tiny", Epochs: 6, BatchSize: 7, LR: 0.5, Momentum: 0.25,
			CVAEHidden: 8, CVAELatent: 9, CVAEEpochs: 10, CVAEBatch: 11, CVAELR: 0.125,
			NumClasses: 12, Attack: "sign-flip", AttackSeed: 13},
		hex: "7200000079af7fc60201000000000000000200000000000000030000000200000004000000050000000400000074696e790600000007000000000000000000e03f000000000000d03f08000000090000000a0000000b000000000000000000c03f0c000000090000007369676e2d666c69700d00000000000000",
	},
	{
		name: "TrainRequest",
		msg:  &TrainRequest{Round: 2, NeedDecoder: true, Global: []float32{1, -2, 0.5}},
		hex:  "16000000202b552d030200000001030000000000803f000000c00000003f",
	},
	{
		name: "Update",
		msg: &Update{Round: 3, ClientID: 4, NumSamples: 5, Weights: []float32{1.5},
			Decoder: []float32{-0.5, 2}, DecoderClasses: []uint32{0, 9}},
		hex: "2d0000004b4e75a604030000000400000005000000010000000000c03f02000000000000bf00000040020000000000000009000000",
	},
	{
		name: "Shutdown",
		msg:  &Shutdown{},
		hex:  "010000004d478c6705",
	},
	// Compressed-path pins. Hello/Setup with a capability byte appended
	// and the TrainRequestC/UpdateC bodies — new frames only; the raw
	// pins above are untouched by negotiation.
	{
		name: "HelloWithEncodings",
		msg:  &Hello{ClientID: 7, Encodings: CapCodec},
		hex:  "06000000d49a07e2010700000001",
	},
	{
		name: "SetupWithEncodings",
		msg: &Setup{Seed: 1, DataSeed: 2, TrainSize: 3, Indices: []uint32{4, 5},
			ArchName: "tiny", Epochs: 6, BatchSize: 7, LR: 0.5, Momentum: 0.25,
			CVAEHidden: 8, CVAELatent: 9, CVAEEpochs: 10, CVAEBatch: 11, CVAELR: 0.125,
			NumClasses: 12, Attack: "sign-flip", AttackSeed: 13, Encodings: CapCodec},
		hex: "730000003c20faa90201000000000000000200000000000000030000000200000004000000050000000400000074696e790600000007000000000000000000e03f000000000000d03f08000000090000000a0000000b000000000000000000c03f0c000000090000007369676e2d666c69700d0000000000000001",
	},
	{
		name: "TrainRequestC",
		msg: &TrainRequestC{Round: 2, NeedDecoder: true, DecoderHash: 0xDEADBEEF01020304,
			Encoding: EncDelta, BaseRound: 1, NumParams: 3, Payload: []byte{0x03, 0x06, 0x01, 0x02}},
		hex: "1f000000579b206d06020000000104030201efbeadde0201000000030000000400000003060102",
	},
	{
		name: "UpdateC",
		msg: &UpdateC{Round: 3, ClientID: 4, NumSamples: 5, Encoding: EncCodec,
			NumParams: 1, Weights: []byte{0x01, 0x02, 0xAA}, DecoderHash: 0x1122334455667788,
			NumDecoderParams: 2, Decoder: []byte{0x02, 0x05, 0x00}, DecoderClasses: []uint32{0, 9}},
		hex: "38000000698eb374070300000004000000050000000101000000030000000102aa88776655443322110200000003000000020500020000000000000009000000",
	},
	// Trace-propagation pins (CapTrace). The trace context is a trailing
	// 16-byte block appended after the legacy body; the untraced pins
	// above stay byte-identical. Registration advertises the capability
	// through the same Encodings byte as CapCodec.
	{
		name: "HelloWithTrace",
		msg:  &Hello{ClientID: 7, Encodings: CapCodec | CapTrace},
		hex:  "0600000023ea3c03010700000003",
	},
	{
		name: "TrainRequestTraced",
		msg: &TrainRequest{Round: 2, NeedDecoder: true, Global: []float32{1, -2, 0.5},
			Trace: Trace{TraceID: 0x0123456789ABCDEF, SpanID: 0xFEDCBA9876543210}},
		hex: "260000009ef18090030200000001030000000000803f000000c00000003fefcdab89674523011032547698badcfe",
	},
	{
		name: "UpdateTraced",
		msg: &Update{Round: 3, ClientID: 4, NumSamples: 5, Weights: []float32{1.5},
			Decoder: []float32{-0.5, 2}, DecoderClasses: []uint32{0, 9},
			Trace: Trace{TraceID: 0x0123456789ABCDEF, SpanID: 0xFEDCBA9876543210}},
		hex: "3d000000bdf508b204030000000400000005000000010000000000c03f02000000000000bf00000040020000000000000009000000efcdab89674523011032547698badcfe",
	},
	{
		name: "TrainRequestCTraced",
		msg: &TrainRequestC{Round: 2, NeedDecoder: true, DecoderHash: 0xDEADBEEF01020304,
			Encoding: EncDelta, BaseRound: 1, NumParams: 3, Payload: []byte{0x03, 0x06, 0x01, 0x02},
			Trace: Trace{TraceID: 0x0123456789ABCDEF, SpanID: 0xFEDCBA9876543210}},
		hex: "2f000000bbfd9a1606020000000104030201efbeadde0201000000030000000400000003060102efcdab89674523011032547698badcfe",
	},
	{
		name: "UpdateCTraced",
		msg: &UpdateC{Round: 3, ClientID: 4, NumSamples: 5, Encoding: EncCodec,
			NumParams: 1, Weights: []byte{0x01, 0x02, 0xAA}, DecoderHash: 0x1122334455667788,
			NumDecoderParams: 2, Decoder: []byte{0x02, 0x05, 0x00}, DecoderClasses: []uint32{0, 9},
			Trace: Trace{TraceID: 0x0123456789ABCDEF, SpanID: 0xFEDCBA9876543210}},
		hex: "4800000053423c9e070300000004000000050000000101000000030000000102aa88776655443322110200000003000000020500020000000000000009000000efcdab89674523011032547698badcfe",
	},
}

// TestTraceBlockLegacySafe pins the compatibility contract of CapTrace:
// a zero Trace adds no bytes (traced builds talking to legacy peers emit
// exactly the golden legacy frames), and stripping the trailing 16-byte
// block from a traced frame's body yields the legacy body bit-for-bit —
// which is why a legacy decoder, which ignores leftover trailing bytes,
// still decodes every field of a traced frame correctly.
func TestTraceBlockLegacySafe(t *testing.T) {
	tr := Trace{TraceID: 0x0123456789ABCDEF, SpanID: 0xFEDCBA9876543210}
	pairs := []struct {
		name           string
		legacy, traced any
	}{
		{
			name:   "TrainRequest",
			legacy: &TrainRequest{Round: 9, Global: []float32{1, 2}},
			traced: &TrainRequest{Round: 9, Global: []float32{1, 2}, Trace: tr},
		},
		{
			name:   "Update",
			legacy: &Update{Round: 9, ClientID: 1, NumSamples: 2, Weights: []float32{3}},
			traced: &Update{Round: 9, ClientID: 1, NumSamples: 2, Weights: []float32{3}, Trace: tr},
		},
		{
			name:   "TrainRequestC",
			legacy: &TrainRequestC{Round: 9, Encoding: EncCodec, NumParams: 1, Payload: []byte{7}},
			traced: &TrainRequestC{Round: 9, Encoding: EncCodec, NumParams: 1, Payload: []byte{7}, Trace: tr},
		},
		{
			name:   "UpdateC",
			legacy: &UpdateC{Round: 9, ClientID: 1, NumSamples: 2, Encoding: EncCodec, NumParams: 1, Weights: []byte{7}},
			traced: &UpdateC{Round: 9, ClientID: 1, NumSamples: 2, Encoding: EncCodec, NumParams: 1, Weights: []byte{7}, Trace: tr},
		},
	}
	for _, p := range pairs {
		t.Run(p.name, func(t *testing.T) {
			var lbuf, tbuf bytes.Buffer
			if err := WriteMessage(&lbuf, p.legacy); err != nil {
				t.Fatal(err)
			}
			if err := WriteMessage(&tbuf, p.traced); err != nil {
				t.Fatal(err)
			}
			lb, tb := lbuf.Bytes(), tbuf.Bytes()
			if len(tb) != len(lb)+16 {
				t.Fatalf("traced frame is %d bytes, legacy %d; want exactly +16", len(tb), len(lb))
			}
			// Same payload modulo header (length + CRC differ by design).
			if !bytes.Equal(tb[headerSize:len(tb)-16], lb[headerSize:]) {
				t.Fatal("traced body is not legacy body + trailing block")
			}
			// Traced frame round-trips with its context intact.
			got, err := ReadMessage(bytes.NewReader(tb))
			if err != nil {
				t.Fatal(err)
			}
			if !equalMessage(got, p.traced) {
				t.Fatalf("traced round-trip: got %#v, want %#v", got, p.traced)
			}
			// Legacy frame decodes with a zero context.
			got, err = ReadMessage(bytes.NewReader(lb))
			if err != nil {
				t.Fatal(err)
			}
			if !equalMessage(got, p.legacy) {
				t.Fatalf("legacy round-trip: got %#v, want %#v", got, p.legacy)
			}
		})
	}
}

func TestGoldenFrameBytes(t *testing.T) {
	for _, g := range goldenFrames {
		t.Run(g.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteMessage(&buf, g.msg); err != nil {
				t.Fatal(err)
			}
			want, err := hex.DecodeString(g.hex)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("encoded bytes changed — wire protocol break:\n got %s\nwant %s",
					hex.EncodeToString(buf.Bytes()), g.hex)
			}
			got, err := ReadMessage(bytes.NewReader(want))
			if err != nil {
				t.Fatalf("golden frame no longer decodes: %v", err)
			}
			if !equalMessage(got, g.msg) {
				t.Fatalf("golden frame decoded as %#v, want %#v", got, g.msg)
			}
		})
	}
}

// equalMessage compares decoded against original, tolerating the
// decoder's nil-vs-empty slice distinction for optional fields.
func equalMessage(got, want any) bool {
	if reflect.TypeOf(got) != reflect.TypeOf(want) {
		return false
	}
	return reflect.DeepEqual(normalize(got), normalize(want))
}

func normalize(m any) any {
	switch u := m.(type) {
	case *Update:
		c := *u
		if len(c.Decoder) == 0 {
			c.Decoder = nil
		}
		if len(c.DecoderClasses) == 0 {
			c.DecoderClasses = nil
		}
		return &c
	case *UpdateC:
		c := *u
		if len(c.Weights) == 0 {
			c.Weights = nil
		}
		if len(c.Decoder) == 0 {
			c.Decoder = nil
		}
		if len(c.DecoderClasses) == 0 {
			c.DecoderClasses = nil
		}
		return &c
	case *TrainRequestC:
		c := *u
		if len(c.Payload) == 0 {
			c.Payload = nil
		}
		return &c
	}
	return m
}
