// Package wire defines the binary protocol of the networked federation
// (package fednet): length-prefixed frames carrying typed messages with
// explicit little-endian encoding. By default parameter vectors travel
// as raw float32s — 4 bytes per parameter — so measured wire traffic
// matches the paper's Table V accounting exactly. Peers that both
// advertise CapCodec during registration switch to the compressed
// message types (TrainRequestC/UpdateC), which carry codec byte-plane
// blobs, XOR deltas against shared reference vectors, and content-hash
// decoder dedup tokens — losslessly, so decoded payloads are
// bit-identical to the raw path.
//
// Frame layout:
//
//	[4-byte LE payload length][4-byte LE CRC-32C of payload][payload]
//
// where payload is [1-byte message type][body]. The length covers the
// type byte plus the body; the checksum covers the same bytes, so a
// flipped bit anywhere in a frame's payload is detected at the reader
// (CRC mismatches are transient: the stream stays frame-aligned and the
// peer can re-request). Frames are capped at MaxFrame to bound memory
// against corrupt or hostile peers, and payload buffers grow
// incrementally as bytes actually arrive, so a lying length prefix
// cannot force a large up-front allocation.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
)

// MaxFrame bounds a single frame's payload (type byte + body). The paper
// model (1.66M parameters ≈ 6.7 MB) fits with a wide margin.
const MaxFrame = 256 << 20

// headerSize is the fixed frame prelude: payload length plus CRC-32C.
const headerSize = 8

// allocChunk bounds how much payload buffer is allocated ahead of the
// bytes actually received, so a corrupt or hostile length prefix costs
// at most one chunk before the truncation is detected.
const allocChunk = 1 << 20

// crcTable is the Castagnoli polynomial table (hardware-accelerated on
// amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrChecksum reports a frame whose payload bytes do not match the
// header checksum. The stream is still frame-aligned after this error
// (the full payload was consumed), so callers may treat it as transient
// and re-request.
var ErrChecksum = errors.New("wire: frame checksum mismatch")

// ErrBadFrame reports an unusable frame prelude (zero or oversized
// length). Alignment is unknown afterwards; callers should drop the
// connection.
var ErrBadFrame = errors.New("wire: bad frame length")

// Message types.
const (
	TypeHello        byte = 1 // client → server: registration
	TypeSetup        byte = 2 // server → client: experiment configuration
	TypeTrainRequest byte = 3 // server → client: one round of work
	TypeUpdate       byte = 4 // client → server: trained update
	TypeShutdown     byte = 5 // server → client: experiment over

	// Compressed variants, exchanged only after both ends negotiated
	// CapCodec during registration. A peer that never advertises the
	// capability never sees these types.
	TypeTrainRequestC byte = 6 // server → client: compressed round of work
	TypeUpdateC       byte = 7 // client → server: compressed trained update
)

// Payload encodings carried by the compressed message types.
const (
	// EncRaw marks legacy raw little-endian float32 vectors.
	EncRaw byte = 0
	// EncCodec marks a codec byte-plane blob of the full vector.
	EncCodec byte = 1
	// EncDelta marks a codec blob of the XOR delta against a reference
	// vector both endpoints already hold.
	EncDelta byte = 2
)

// CapCodec is the capability bit a peer sets in Hello/Setup.Encodings
// to advertise that it understands TrainRequestC/UpdateC frames (the
// codec and delta encodings). Raw framing stays the default: the bit is
// appended to the registration messages only when nonzero, so frames
// from and to legacy peers are byte-identical to the pinned golden
// format and negotiation degrades to raw automatically.
const CapCodec byte = 1

// CapTrace is the capability bit advertising distributed-trace context
// propagation: when both ends set it, TrainRequest/Update frames (and
// their compressed variants) may carry a trailing 16-byte Trace block
// linking the client's spans to the server's round span. Negotiated
// exactly like CapCodec — a silent peer never sees the extra bytes, and
// because the block trails the legacy body, a legacy decoder that does
// receive one simply ignores it.
const CapTrace byte = 2

// Trace is the compact trace context propagated across the wire: which
// trace a frame belongs to and which remote span caused it. The zero
// value means "no trace" and encodes to nothing.
type Trace struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context carries a real span identity.
func (t Trace) Valid() bool { return t.TraceID != 0 && t.SpanID != 0 }

// Hello registers a client with the server. Encodings is the optional
// capability bitmask (CapCodec); zero encodes exactly like the legacy
// frame, and legacy servers ignore the trailing byte when set.
type Hello struct {
	ClientID  uint32
	Encodings byte
}

// Setup tells a freshly registered client everything it needs to
// reconstruct its local state deterministically: the shared experiment
// seed (from which its private RNG stream is derived), the dataset
// generation parameters (clients regenerate SynthDigits locally rather
// than receiving pixels), its partition indices, its attack role, and
// the model/training hyperparameters.
type Setup struct {
	Seed      uint64
	DataSeed  uint64
	TrainSize uint32
	Indices   []uint32

	ArchName string
	// Classifier training.
	Epochs, BatchSize uint32
	LR, Momentum      float64
	// CVAE architecture + training.
	CVAEHidden, CVAELatent uint32
	CVAEEpochs, CVAEBatch  uint32
	CVAELR                 float64
	NumClasses             uint32
	// Attack role: "" or "none" means benign. AttackSeed pins the shared
	// collusive noise vector.
	Attack     string
	AttackSeed uint64
	// Encodings is the server's answer to Hello.Encodings: the
	// capability bits both sides will use (CapCodec or zero). Zero is
	// omitted from the frame, keeping legacy bytes intact.
	Encodings byte
}

// TrainRequest asks a client to run one local round from the given
// global parameters.
type TrainRequest struct {
	Round       uint32
	NeedDecoder bool
	Global      []float32
	// Trace, when valid, is appended as a trailing 16-byte block (only
	// on CapTrace-negotiated connections; see CapTrace).
	Trace Trace
}

// Update carries a client's trained submission back to the server.
type Update struct {
	Round          uint32
	ClientID       uint32
	NumSamples     uint32
	Weights        []float32
	Decoder        []float32 // empty when not requested
	DecoderClasses []uint32
	// Trace identifies the client-side round span that produced this
	// update (trailing block, CapTrace connections only).
	Trace Trace
}

// TrainRequestC is the compressed TrainRequest: the global parameter
// vector travels as a codec blob (EncCodec), usually an XOR delta
// against a base both endpoints hold (EncDelta). BaseRound identifies
// that base: the round whose global this connection last received, or 0
// for the seed-derived initial model ψ₀ that every fresh connection can
// reconstruct locally.
type TrainRequestC struct {
	Round       uint32
	NeedDecoder bool
	// DecoderHash is the content hash of the decoder payload the server
	// already caches for this client (0 = none). The client answers with
	// a hash token instead of decoder bytes when its payload still
	// matches — the dedup that stops re-uploading a static decoder.
	DecoderHash uint64
	Encoding    byte   // EncCodec or EncDelta
	BaseRound   uint32 // EncDelta: round of the base global (0 = ψ₀)
	NumParams   uint32 // element count of the encoded vector
	Payload     []byte // codec blob
	// Trace is the server-side request span (trailing block, CapTrace
	// connections only).
	Trace Trace
}

// UpdateC is the compressed Update. Weights travel as a codec blob,
// EncDelta-encoded against the round's broadcast global (which the
// server still holds while collecting). The decoder payload is
// deduplicated by content hash: bytes are attached only when the
// server's advertised hash (TrainRequestC.DecoderHash) was stale;
// otherwise DecoderHash alone tells the server to use its cache.
type UpdateC struct {
	Round      uint32
	ClientID   uint32
	NumSamples uint32
	Encoding   byte   // EncCodec or EncDelta (base: this round's global)
	NumParams  uint32 // element count of the weights vector
	Weights    []byte // codec blob
	// DecoderHash identifies the client's current decoder payload
	// (0 = no decoder attached this round).
	DecoderHash      uint64
	NumDecoderParams uint32
	Decoder          []byte // codec blob; empty with nonzero hash = cache hit
	DecoderClasses   []uint32
	// Trace identifies the client-side round span (trailing block,
	// CapTrace connections only).
	Trace Trace
}

// Shutdown ends the client's session.
type Shutdown struct{}

// frameBuf is WriteMessage's pooled working set: the body scratch, the
// 64 KiB buffered writer, and the header bytes. Pooling them removes
// the per-message allocations that dominated the write path (a fresh
// bufio.Writer per frame was most of it) without changing a byte on the
// wire or the underlying write pattern the fault-injection tests count.
type frameBuf struct {
	body   []byte
	header [headerSize + 1]byte
	bw     *bufio.Writer
}

var framePool = sync.Pool{New: func() any { return new(frameBuf) }}

// maxRetainedBody caps the body capacity a pooled frameBuf keeps;
// larger one-off frames are dropped so the pool does not pin them.
const maxRetainedBody = 16 << 20

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, msg any) error {
	fb := framePool.Get().(*frameBuf)
	var typ byte
	body := fb.body[:0]
	switch m := msg.(type) {
	case *Hello:
		typ = TypeHello
		body = appendU32(body, m.ClientID)
		if m.Encodings != 0 {
			body = append(body, m.Encodings)
		}
	case *Setup:
		typ = TypeSetup
		body = encodeSetup(m, body)
	case *TrainRequest:
		typ = TypeTrainRequest
		body = appendU32(body, m.Round)
		body = append(body, boolByte(m.NeedDecoder))
		body = appendF32s(body, m.Global)
		body = appendTrace(body, m.Trace)
	case *Update:
		typ = TypeUpdate
		body = appendU32(body, m.Round)
		body = appendU32(body, m.ClientID)
		body = appendU32(body, m.NumSamples)
		body = appendF32s(body, m.Weights)
		body = appendF32s(body, m.Decoder)
		body = appendU32s(body, m.DecoderClasses)
		body = appendTrace(body, m.Trace)
	case *TrainRequestC:
		typ = TypeTrainRequestC
		body = appendU32(body, m.Round)
		body = append(body, boolByte(m.NeedDecoder))
		body = appendU64(body, m.DecoderHash)
		body = append(body, m.Encoding)
		body = appendU32(body, m.BaseRound)
		body = appendU32(body, m.NumParams)
		body = appendBytes(body, m.Payload)
		body = appendTrace(body, m.Trace)
	case *UpdateC:
		typ = TypeUpdateC
		body = appendU32(body, m.Round)
		body = appendU32(body, m.ClientID)
		body = appendU32(body, m.NumSamples)
		body = append(body, m.Encoding)
		body = appendU32(body, m.NumParams)
		body = appendBytes(body, m.Weights)
		body = appendU64(body, m.DecoderHash)
		body = appendU32(body, m.NumDecoderParams)
		body = appendBytes(body, m.Decoder)
		body = appendU32s(body, m.DecoderClasses)
		body = appendTrace(body, m.Trace)
	case *Shutdown:
		typ = TypeShutdown
	default:
		framePool.Put(fb)
		return fmt.Errorf("wire: cannot encode %T", msg)
	}
	fb.body = body
	err := writeFrame(fb, w, typ, body)
	if cap(fb.body) > maxRetainedBody {
		fb.body = nil
	}
	framePool.Put(fb)
	return err
}

// writeFrame emits [len][crc][type+body] through the pooled buffered
// writer. The header and body stay separate Write calls so the
// underlying write boundaries match the historical per-call
// bufio.Writer exactly (the chaos harness counts them).
func writeFrame(fb *frameBuf, w io.Writer, typ byte, body []byte) error {
	n := len(body) + 1
	if n > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	fb.header[headerSize] = typ
	crc := crc32.Update(crc32.Checksum(fb.header[headerSize:], crcTable), crcTable, body)
	binary.LittleEndian.PutUint32(fb.header[:], uint32(n))
	binary.LittleEndian.PutUint32(fb.header[4:], crc)
	bw := fb.bw
	if bw == nil {
		bw = bufio.NewWriterSize(w, 64<<10)
		fb.bw = bw
	} else {
		bw.Reset(w)
	}
	defer bw.Reset(nil) // drop the conn reference while pooled
	if _, err := bw.Write(fb.header[:]); err != nil {
		return err
	}
	if _, err := bw.Write(body); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadMessage reads and decodes one framed message. A checksum failure
// returns an error wrapping ErrChecksum with the stream still aligned on
// the next frame; a bad length prefix returns ErrBadFrame.
func ReadMessage(r io.Reader) (any, error) {
	var head [headerSize]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(head[:4])
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("%w: %d", ErrBadFrame, n)
	}
	wantCRC := binary.LittleEndian.Uint32(head[4:])
	payload, err := readPayload(r, int(n))
	if err != nil {
		return nil, fmt.Errorf("wire: truncated frame: %w", err)
	}
	if got := crc32.Checksum(payload, crcTable); got != wantCRC {
		return nil, fmt.Errorf("%w: got %08x, header says %08x", ErrChecksum, got, wantCRC)
	}
	typ := payload[0]
	body := payload[1:]
	d := &decoder{buf: body}
	switch typ {
	case TypeHello:
		m := &Hello{ClientID: d.u32()}
		m.Encodings = d.optByte()
		return m, d.err
	case TypeSetup:
		return decodeSetup(d)
	case TypeTrainRequest:
		m := &TrainRequest{Round: d.u32()}
		m.NeedDecoder = d.u8() != 0
		m.Global = d.f32s()
		m.Trace = d.optTrace()
		return m, d.err
	case TypeUpdate:
		m := &Update{Round: d.u32(), ClientID: d.u32(), NumSamples: d.u32()}
		m.Weights = d.f32s()
		m.Decoder = d.f32s()
		m.DecoderClasses = d.u32s()
		m.Trace = d.optTrace()
		return m, d.err
	case TypeTrainRequestC:
		m := &TrainRequestC{Round: d.u32()}
		m.NeedDecoder = d.u8() != 0
		m.DecoderHash = d.u64()
		m.Encoding = d.u8()
		m.BaseRound = d.u32()
		m.NumParams = d.u32()
		m.Payload = d.bytes()
		m.Trace = d.optTrace()
		return m, d.err
	case TypeUpdateC:
		m := &UpdateC{Round: d.u32(), ClientID: d.u32(), NumSamples: d.u32()}
		m.Encoding = d.u8()
		m.NumParams = d.u32()
		m.Weights = d.bytes()
		m.DecoderHash = d.u64()
		m.NumDecoderParams = d.u32()
		m.Decoder = d.bytes()
		m.DecoderClasses = d.u32s()
		m.Trace = d.optTrace()
		return m, d.err
	case TypeShutdown:
		return &Shutdown{}, nil
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", typ)
	}
}

// readPayload reads exactly n payload bytes, growing the buffer at most
// allocChunk ahead of the bytes actually received. A frame header that
// lies about its length therefore fails with a truncation error after a
// bounded allocation instead of reserving the claimed size up front.
func readPayload(r io.Reader, n int) ([]byte, error) {
	if n <= allocChunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	buf := make([]byte, 0, allocChunk)
	for len(buf) < n {
		k := allocChunk
		if rest := n - len(buf); rest < k {
			k = rest
		}
		off := len(buf)
		buf = append(buf, make([]byte, k)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func encodeSetup(m *Setup, dst []byte) []byte {
	b := appendU64(dst, m.Seed)
	b = appendU64(b, m.DataSeed)
	b = appendU32(b, m.TrainSize)
	b = appendU32s(b, m.Indices)
	b = appendString(b, m.ArchName)
	b = appendU32(b, m.Epochs)
	b = appendU32(b, m.BatchSize)
	b = appendF64(b, m.LR)
	b = appendF64(b, m.Momentum)
	b = appendU32(b, m.CVAEHidden)
	b = appendU32(b, m.CVAELatent)
	b = appendU32(b, m.CVAEEpochs)
	b = appendU32(b, m.CVAEBatch)
	b = appendF64(b, m.CVAELR)
	b = appendU32(b, m.NumClasses)
	b = appendString(b, m.Attack)
	b = appendU64(b, m.AttackSeed)
	if m.Encodings != 0 {
		b = append(b, m.Encodings)
	}
	return b
}

func decodeSetup(d *decoder) (*Setup, error) {
	m := &Setup{}
	m.Seed = d.u64()
	m.DataSeed = d.u64()
	m.TrainSize = d.u32()
	m.Indices = d.u32s()
	m.ArchName = d.str()
	m.Epochs = d.u32()
	m.BatchSize = d.u32()
	m.LR = d.f64()
	m.Momentum = d.f64()
	m.CVAEHidden = d.u32()
	m.CVAELatent = d.u32()
	m.CVAEEpochs = d.u32()
	m.CVAEBatch = d.u32()
	m.CVAELR = d.f64()
	m.NumClasses = d.u32()
	m.Attack = d.str()
	m.AttackSeed = d.u64()
	m.Encodings = d.optByte()
	return m, d.err
}

// --- primitive encoders ------------------------------------------------

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}

func appendString(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendU32s(b []byte, vs []uint32) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendU32(b, v)
	}
	return b
}

func appendBytes(b []byte, vs []byte) []byte {
	b = appendU32(b, uint32(len(vs)))
	return append(b, vs...)
}

// appendTrace appends the 16-byte trailing trace-context block, or
// nothing when the context is the zero value — keeping untraced frames
// byte-identical to the golden legacy format.
func appendTrace(b []byte, t Trace) []byte {
	if !t.Valid() {
		return b
	}
	b = appendU64(b, t.TraceID)
	return appendU64(b, t.SpanID)
}

func appendF32s(b []byte, vs []float32) []byte {
	b = appendU32(b, uint32(len(vs)))
	off := len(b)
	b = append(b, make([]byte, 4*len(vs))...)
	for i, v := range vs {
		binary.LittleEndian.PutUint32(b[off+4*i:], math.Float32bits(v))
	}
	return b
}

// --- primitive decoder --------------------------------------------------

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = io.ErrUnexpectedEOF
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// optByte reads a trailing optional byte: absent (no bytes left) decodes
// as zero, which is how capability fields stay byte-compatible with
// legacy frames.
func (d *decoder) optByte() byte {
	if d.err != nil || len(d.buf) == 0 {
		return 0
	}
	return d.u8()
}

// optTrace reads a trailing optional 16-byte trace-context block:
// absent decodes as the zero Trace, which is how traced peers stay
// byte-compatible with legacy frames (which simply end earlier).
func (d *decoder) optTrace() Trace {
	if d.err != nil || len(d.buf) < 16 {
		return Trace{}
	}
	return Trace{TraceID: d.u64(), SpanID: d.u64()}
}

// bytes reads a u32-length-prefixed byte string, sharing the frame's
// backing array.
func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil || uint64(n) > uint64(len(d.buf)) {
		if d.err == nil {
			d.err = io.ErrUnexpectedEOF
		}
		return nil
	}
	return d.take(int(n))
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) f64() float64 {
	return math.Float64frombits(d.u64())
}

func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil || n > uint32(len(d.buf)) {
		if d.err == nil {
			d.err = io.ErrUnexpectedEOF
		}
		return ""
	}
	return string(d.take(int(n)))
}

func (d *decoder) u32s() []uint32 {
	n := d.u32()
	if d.err != nil || uint64(n)*4 > uint64(len(d.buf)) {
		if d.err == nil {
			d.err = io.ErrUnexpectedEOF
		}
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = d.u32()
	}
	return out
}

func (d *decoder) f32s() []float32 {
	n := d.u32()
	if d.err != nil || uint64(n)*4 > uint64(len(d.buf)) {
		if d.err == nil {
			d.err = io.ErrUnexpectedEOF
		}
		return nil
	}
	raw := d.take(int(n) * 4)
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}
