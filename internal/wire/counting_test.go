package wire

import (
	"bytes"
	"io"
	"sync"
	"sync/atomic"
	"testing"
)

// countPipe is a duplex in-memory stream with independent read/write
// sides, safe for concurrent use, whose Close is also safe to call from
// several goroutines at once.
type countPipe struct {
	mu     sync.Mutex
	in     bytes.Reader
	out    bytes.Buffer
	closed atomic.Int64
}

func (p *countPipe) Read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.in.Read(b)
}

func (p *countPipe) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.out.Write(b)
}

func (p *countPipe) Close() error {
	p.closed.Add(1)
	return nil
}

func TestCountingConnBasics(t *testing.T) {
	p := &countPipe{}
	p.in.Reset(make([]byte, 100))
	c := NewCountingConn(p)
	if _, err := c.Write(make([]byte, 42)); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, make([]byte, 30)); err != nil {
		t.Fatal(err)
	}
	if got := c.BytesWritten(); got != 42 {
		t.Fatalf("written = %d, want 42", got)
	}
	if got := c.BytesRead(); got != 30 {
		t.Fatalf("read = %d, want 30", got)
	}
}

// TestCountingConnConcurrent drives Read, Write, and the counter getters
// from many goroutines at once and checks the totals are exact — the
// shape of use in fednet, where the server reads a response on one
// goroutine while telemetry samples the counters from another. Run under
// -race this also proves the counters are data-race free.
func TestCountingConnConcurrent(t *testing.T) {
	const (
		writers  = 8
		perWrite = 64
		writes   = 200
	)
	p := &countPipe{}
	p.in.Reset(make([]byte, writers*perWrite*writes))
	c := NewCountingConn(p)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, perWrite)
			for i := 0; i < writes; i++ {
				if _, err := c.Write(buf); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if _, err := c.Read(buf); err != nil {
					t.Errorf("read: %v", err)
					return
				}
				// Sampling mid-traffic must be safe (values are monotone
				// snapshots, not necessarily the final totals).
				_ = c.BytesRead()
				_ = c.BytesWritten()
			}
		}()
	}
	wg.Wait()
	want := int64(writers * perWrite * writes)
	if got := c.BytesRead(); got != want {
		t.Fatalf("read = %d, want %d", got, want)
	}
	if got := c.BytesWritten(); got != want {
		t.Fatalf("written = %d, want %d", got, want)
	}
}

// TestCountingConnOnCloseOnce closes the conn from many goroutines
// concurrently with in-flight writes: the OnClose hook must fire exactly
// once, with counts no lower than the traffic completed before the first
// Close, and every Close must still forward to the wrapped stream.
func TestCountingConnOnCloseOnce(t *testing.T) {
	const closers = 8
	p := &countPipe{}
	c := NewCountingConn(p)

	var fired atomic.Int64
	var hookRead, hookWritten atomic.Int64
	c.OnClose(func(read, written int64) {
		fired.Add(1)
		hookRead.Store(read)
		hookWritten.Store(written)
	})

	if _, err := c.Write(make([]byte, 128)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
	}
	wg.Wait()

	if got := fired.Load(); got != 1 {
		t.Fatalf("OnClose fired %d times, want exactly 1", got)
	}
	if got := hookWritten.Load(); got != 128 {
		t.Fatalf("OnClose saw written=%d, want 128", got)
	}
	if got := hookRead.Load(); got != 0 {
		t.Fatalf("OnClose saw read=%d, want 0", got)
	}
	// Every Close forwards to the wrapped stream even after the hook
	// already fired.
	if got := p.closed.Load(); got != closers {
		t.Fatalf("underlying Close called %d times, want %d", got, closers)
	}
}

// TestCountingConnNonCloserStream checks Close on a wrapper around a
// plain ReadWriter (no Closer) still fires the hook and returns nil.
func TestCountingConnNonCloserStream(t *testing.T) {
	var buf bytes.Buffer
	c := NewCountingConn(struct{ io.ReadWriter }{&buf})
	var fired int
	c.OnClose(func(read, written int64) { fired++ })
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("OnClose fired %d times, want 1", fired)
	}
}
