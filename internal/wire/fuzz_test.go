package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadMessage hammers the frame decoder with arbitrary bytes: it
// must return an error or a message — never panic, and never allocate
// far beyond the bytes actually supplied (a lying length prefix is the
// classic trap). Decoded messages must survive a re-encode/decode round
// trip.
func FuzzReadMessage(f *testing.F) {
	// Seed corpus: one well-formed frame per message type…
	for _, msg := range []any{
		&Hello{ClientID: 3},
		&Setup{Seed: 1, DataSeed: 2, TrainSize: 10, Indices: []uint32{1, 2},
			ArchName: "tiny", Epochs: 1, BatchSize: 8, LR: 0.1, Momentum: 0.9,
			CVAEHidden: 4, CVAELatent: 2, CVAEEpochs: 1, CVAEBatch: 8, CVAELR: 1e-3,
			NumClasses: 10, Attack: "sign-flip", AttackSeed: 7},
		&TrainRequest{Round: 1, NeedDecoder: true, Global: []float32{1, 2, 3}},
		&Update{Round: 1, ClientID: 2, NumSamples: 3, Weights: []float32{0.5},
			Decoder: []float32{1}, DecoderClasses: []uint32{4}},
		&Shutdown{},
		&Hello{ClientID: 3, Encodings: CapCodec},
		&TrainRequestC{Round: 1, NeedDecoder: true, DecoderHash: 5,
			Encoding: EncDelta, BaseRound: 0, NumParams: 2, Payload: []byte{2, 0, 0, 0, 0}},
		&UpdateC{Round: 1, ClientID: 2, NumSamples: 3, Encoding: EncCodec,
			NumParams: 1, Weights: []byte{1, 2, 3}, DecoderHash: 9,
			NumDecoderParams: 1, Decoder: []byte{1, 0, 0, 0, 0}, DecoderClasses: []uint32{4}},
	} {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, msg); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// …plus the hostile shapes the decoder must reject: truncated
	// header, truncated body, oversized and zero length prefixes, an
	// unknown tag, and a length-lying f32 vector.
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0, 1})
	f.Add(buildFrame(nil))
	f.Add(buildFrame([]byte{99}))
	lying := []byte{TypeUpdate}
	lying = appendU32(lying, 1)
	lying = appendU32(lying, 1)
	lying = appendU32(lying, 1)
	lying = appendU32(lying, 1<<30)
	f.Add(buildFrame(lying))
	truncated := buildFrame([]byte{TypeHello, 1, 2, 3, 4})
	f.Add(truncated[:len(truncated)-2])

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) >= headerSize {
			// Keep the claimed length within the input's ballpark so every
			// fuzz iteration stays cheap; hostile large prefixes have their
			// own dedicated allocation-bound test.
			n := binary.LittleEndian.Uint32(data[:4])
			if n > uint32(len(data))+64 && n <= MaxFrame {
				t.Skip()
			}
		}
		msg, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must re-encode, decode, and re-encode to the
		// same bytes (byte-level comparison sidesteps NaN payloads).
		var first bytes.Buffer
		if err := WriteMessage(&first, msg); err != nil {
			t.Fatalf("decoded %T does not re-encode: %v", msg, err)
		}
		again, err := ReadMessage(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded %T does not decode: %v", msg, err)
		}
		var second bytes.Buffer
		if err := WriteMessage(&second, again); err != nil {
			t.Fatalf("twice-decoded %T does not re-encode: %v", again, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round trip drifted:\n first %x\nsecond %x", first.Bytes(), second.Bytes())
		}
	})
}
