package wire

import (
	"bytes"
	"io"
	"testing"

	"fedguard/internal/codec"
	"fedguard/internal/rng"
)

// benchVectors builds the payload shapes a federation round actually
// moves: a classifier update plus a CVAE decoder, with values drawn
// from the same normal initialization real weights start from.
func benchVectors() (weights, decoder []float32) {
	r := rng.New(42)
	weights = make([]float32, 8_192)
	decoder = make([]float32, 65_536)
	r.FillNormal(weights, 0, 0.1)
	r.FillNormal(decoder, 0, 0.1)
	return
}

func BenchmarkWireWriteUpdate(b *testing.B) {
	weights, decoder := benchVectors()
	classes := []uint32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}

	b.Run("raw", func(b *testing.B) {
		msg := &Update{Round: 1, ClientID: 2, NumSamples: 150,
			Weights: weights, Decoder: decoder, DecoderClasses: classes}
		b.SetBytes(int64(4 * (len(weights) + len(decoder))))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := WriteMessage(io.Discard, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("codec", func(b *testing.B) {
		b.SetBytes(int64(4 * (len(weights) + len(decoder))))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			msg := &UpdateC{Round: 1, ClientID: 2, NumSamples: 150,
				Encoding: EncCodec, NumParams: uint32(len(weights)),
				Weights:     codec.Encode(weights),
				DecoderHash: codec.Hash(decoder), NumDecoderParams: uint32(len(decoder)),
				Decoder: codec.Encode(decoder), DecoderClasses: classes}
			if err := WriteMessage(io.Discard, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkWireReadUpdate(b *testing.B) {
	weights, decoder := benchVectors()
	classes := []uint32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}

	b.Run("raw", func(b *testing.B) {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, &Update{Round: 1, ClientID: 2, NumSamples: 150,
			Weights: weights, Decoder: decoder, DecoderClasses: classes}); err != nil {
			b.Fatal(err)
		}
		frame := buf.Bytes()
		b.SetBytes(int64(4 * (len(weights) + len(decoder))))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ReadMessage(bytes.NewReader(frame)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("codec", func(b *testing.B) {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, &UpdateC{Round: 1, ClientID: 2, NumSamples: 150,
			Encoding: EncCodec, NumParams: uint32(len(weights)),
			Weights:     codec.Encode(weights),
			DecoderHash: codec.Hash(decoder), NumDecoderParams: uint32(len(decoder)),
			Decoder: codec.Encode(decoder), DecoderClasses: classes}); err != nil {
			b.Fatal(err)
		}
		frame := buf.Bytes()
		b.SetBytes(int64(4 * (len(weights) + len(decoder))))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			msg, err := ReadMessage(bytes.NewReader(frame))
			if err != nil {
				b.Fatal(err)
			}
			u := msg.(*UpdateC)
			if _, err := codec.Decode(u.Weights, len(weights)); err != nil {
				b.Fatal(err)
			}
			if _, err := codec.Decode(u.Decoder, len(decoder)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRoundWireBytes measures the bytes one federation round puts
// on the wire per participating client — broadcast down, update (with
// decoder) up — and reports them as a bytes/round metric for raw
// framing vs the negotiated codec path (delta-encoded broadcast and
// weights, decoder deduplicated to a hash token after its first send).
func BenchmarkRoundWireBytes(b *testing.B) {
	weights, decoder := benchVectors()
	prev := make([]float32, len(weights))
	for i := range prev {
		prev[i] = weights[i] * 0.999 // the per-round drift deltas exploit
	}
	classes := []uint32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}

	frameLen := func(msg any) int64 {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, msg); err != nil {
			b.Fatal(err)
		}
		return int64(buf.Len())
	}

	b.Run("raw", func(b *testing.B) {
		var total int64
		for i := 0; i < b.N; i++ {
			total = frameLen(&TrainRequest{Round: 2, NeedDecoder: true, Global: weights}) +
				frameLen(&Update{Round: 2, ClientID: 1, NumSamples: 150,
					Weights: weights, Decoder: decoder, DecoderClasses: classes})
		}
		b.ReportMetric(float64(total), "bytes/round")
	})
	b.Run("codec", func(b *testing.B) {
		var total int64
		for i := 0; i < b.N; i++ {
			down, err := codec.EncodeDelta(weights, prev)
			if err != nil {
				b.Fatal(err)
			}
			up, err := codec.EncodeDelta(prev, weights)
			if err != nil {
				b.Fatal(err)
			}
			// Steady state: the server already caches this client's decoder,
			// so the update carries only its hash.
			total = frameLen(&TrainRequestC{Round: 2, NeedDecoder: true,
				DecoderHash: codec.Hash(decoder), Encoding: EncDelta,
				BaseRound: 1, NumParams: uint32(len(weights)), Payload: down}) +
				frameLen(&UpdateC{Round: 2, ClientID: 1, NumSamples: 150,
					Encoding: EncDelta, NumParams: uint32(len(weights)), Weights: up,
					DecoderHash: codec.Hash(decoder), DecoderClasses: classes})
		}
		b.ReportMetric(float64(total), "bytes/round")
	})
}
