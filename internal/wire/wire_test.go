package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"

	"fedguard/internal/rng"
)

func roundTrip(t *testing.T, msg any) any {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, msg); err != nil {
		t.Fatalf("encode %T: %v", msg, err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("decode %T: %v", msg, err)
	}
	return got
}

func TestHelloRoundTrip(t *testing.T) {
	got := roundTrip(t, &Hello{ClientID: 42})
	if h, ok := got.(*Hello); !ok || h.ClientID != 42 {
		t.Fatalf("got %#v", got)
	}
}

func TestSetupRoundTrip(t *testing.T) {
	in := &Setup{
		Seed: 7, DataSeed: 9, TrainSize: 1000,
		Indices:  []uint32{1, 5, 9},
		ArchName: "tiny",
		Epochs:   3, BatchSize: 32, LR: 0.05, Momentum: 0.9,
		CVAEHidden: 256, CVAELatent: 2, CVAEEpochs: 30, CVAEBatch: 32, CVAELR: 1e-3,
		NumClasses: 10,
		Attack:     "sign-flip", AttackSeed: 11,
	}
	got := roundTrip(t, in)
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("setup round trip:\n in %#v\nout %#v", in, got)
	}
}

func TestTrainRequestRoundTrip(t *testing.T) {
	r := rng.New(1)
	global := make([]float32, 1000)
	r.FillNormal(global, 0, 1)
	in := &TrainRequest{Round: 3, NeedDecoder: true, Global: global}
	got := roundTrip(t, in).(*TrainRequest)
	if got.Round != 3 || !got.NeedDecoder {
		t.Fatalf("header fields lost: %+v", got)
	}
	if !reflect.DeepEqual(got.Global, global) {
		t.Fatal("global weights corrupted")
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	r := rng.New(2)
	w := make([]float32, 500)
	d := make([]float32, 200)
	r.FillNormal(w, 0, 1)
	r.FillNormal(d, 0, 1)
	in := &Update{
		Round: 9, ClientID: 4, NumSamples: 120,
		Weights: w, Decoder: d, DecoderClasses: []uint32{2, 5, 7},
	}
	got := roundTrip(t, in).(*Update)
	if !reflect.DeepEqual(in, got) {
		t.Fatal("update round trip corrupted data")
	}
}

func TestUpdateRoundTripEmptyOptionalFields(t *testing.T) {
	in := &Update{Round: 1, ClientID: 2, NumSamples: 3, Weights: []float32{1}}
	got := roundTrip(t, in).(*Update)
	if len(got.Decoder) != 0 || len(got.DecoderClasses) != 0 {
		t.Fatalf("empty fields became %v, %v", got.Decoder, got.DecoderClasses)
	}
}

func TestShutdownRoundTrip(t *testing.T) {
	if _, ok := roundTrip(t, &Shutdown{}).(*Shutdown); !ok {
		t.Fatal("shutdown lost its type")
	}
}

func TestMultipleMessagesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []any{
		&Hello{ClientID: 1},
		&TrainRequest{Round: 1, Global: []float32{1, 2}},
		&Shutdown{},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if reflect.TypeOf(got) != reflect.TypeOf(msgs[i]) {
			t.Fatalf("message %d type %T, want %T", i, got, msgs[i])
		}
	}
}

// buildFrame assembles a raw frame around payload (type byte + body)
// with a correct checksum, so tests can probe decode paths past the CRC.
func buildFrame(payload []byte) []byte {
	frame := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	return append(frame, payload...)
}

func TestReadMessageRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},                                  // empty
		{1, 2},                              // short header
		{1, 2, 3, 4, 5},                     // truncated header
		buildFrame(nil),                     // zero length
		{255, 255, 255, 255, 0, 0, 0, 0, 1}, // oversized length
		buildFrame([]byte{99, 0}),           // unknown type
	}
	for i, c := range cases {
		if _, err := ReadMessage(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
}

func TestReadMessageRejectsChecksumMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &TrainRequest{Round: 2, Global: []float32{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one payload bit; every position must be caught by the CRC.
	for pos := headerSize; pos < len(data); pos++ {
		mutated := append([]byte(nil), data...)
		mutated[pos] ^= 0x40
		_, err := ReadMessage(bytes.NewReader(mutated))
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: err = %v, want ErrChecksum", pos, err)
		}
	}
	// The stream must stay frame-aligned after a checksum error: a clean
	// frame following a corrupt one decodes normally.
	corrupt := append([]byte(nil), data...)
	corrupt[headerSize+1] ^= 0xFF
	stream := append(corrupt, data...)
	r := bytes.NewReader(stream)
	if _, err := ReadMessage(r); !errors.Is(err, ErrChecksum) {
		t.Fatalf("first frame: %v, want ErrChecksum", err)
	}
	msg, err := ReadMessage(r)
	if err != nil {
		t.Fatalf("frame after checksum error: %v", err)
	}
	if req, ok := msg.(*TrainRequest); !ok || req.Round != 2 {
		t.Fatalf("realigned frame decoded as %#v", msg)
	}
}

// A hostile length prefix claiming a huge frame over a nearly empty
// stream must fail on truncation after a bounded allocation — never
// attempt to reserve the claimed size up front.
func TestReadMessageBoundsAllocationOnLyingLength(t *testing.T) {
	frame := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(frame, uint32(MaxFrame)) // claims 256 MB
	frame = append(frame, 1, 2, 3)                         // delivers 3 bytes
	before := totalAllocBytes()
	if _, err := ReadMessage(bytes.NewReader(frame)); err == nil {
		t.Fatal("lying length prefix accepted")
	}
	// Allow 64 KiB of slack over the two growth chunks: the race
	// runtime pads large allocations by a few hundred bytes, which must
	// not fail a bound that exists to catch 256 MB up-front reserves.
	if limit := int64(2*allocChunk + 64<<10); totalAllocBytes()-before > limit {
		t.Fatalf("claimed-256MB frame allocated %d bytes; want ≤ %d", totalAllocBytes()-before, limit)
	}
}

func totalAllocBytes() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.TotalAlloc)
}

func TestReadMessageRejectsTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &TrainRequest{Round: 1, Global: make([]float32, 100)}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadMessage(bytes.NewReader(data[:len(data)-10])); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestDecoderGuardsLengthLies(t *testing.T) {
	// An Update whose f32s header claims more floats than the body holds.
	payload := []byte{TypeUpdate}
	payload = appendU32(payload, 1)          // round
	payload = appendU32(payload, 1)          // client
	payload = appendU32(payload, 1)          // samples
	payload = appendU32(payload, 1000000000) // claimed weight count
	if _, err := ReadMessage(bytes.NewReader(buildFrame(payload))); err == nil {
		t.Fatal("length-lying frame accepted")
	}
}

func TestQuickUpdateRoundTrip(t *testing.T) {
	f := func(round, id, samples uint32, w []float32, classes []uint32) bool {
		in := &Update{Round: round, ClientID: id, NumSamples: samples,
			Weights: w, DecoderClasses: classes}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, in); err != nil {
			return false
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			return false
		}
		u, ok := got.(*Update)
		if !ok || u.Round != round || u.ClientID != id || u.NumSamples != samples {
			return false
		}
		if len(u.Weights) != len(w) || len(u.DecoderClasses) != len(classes) {
			return false
		}
		for i := range w {
			// Compare bit patterns so NaN payloads round-trip too.
			if !sameBits(u.Weights[i], w[i]) {
				return false
			}
		}
		for i := range classes {
			if u.DecoderClasses[i] != classes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func sameBits(a, b float32) bool {
	return (a == b) || (a != a && b != b) // equal, or both NaN
}

func TestCountingConn(t *testing.T) {
	var buf bytes.Buffer
	c := NewCountingConn(&buf)
	if err := WriteMessage(c, &Hello{ClientID: 1}); err != nil {
		t.Fatal(err)
	}
	written := c.BytesWritten()
	if written != int64(buf.Len()) {
		t.Fatalf("counted %d written, buffer has %d", written, buf.Len())
	}
	if _, err := ReadMessage(c); err != nil {
		t.Fatal(err)
	}
	if c.BytesRead() != written {
		t.Fatalf("read count %d, want %d", c.BytesRead(), written)
	}
}

// closableBuffer records whether Close reached the wrapped stream.
type closableBuffer struct {
	bytes.Buffer
	closed int
}

func (c *closableBuffer) Close() error {
	c.closed++
	return nil
}

func TestCountingConnClose(t *testing.T) {
	var under closableBuffer
	c := NewCountingConn(&under)
	if err := WriteMessage(c, &Hello{ClientID: 7}); err != nil {
		t.Fatal(err)
	}
	var fires int
	var finalRead, finalWritten int64
	c.OnClose(func(r, w int64) {
		fires++
		finalRead, finalWritten = r, w
	})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if under.closed != 1 {
		t.Fatalf("underlying stream closed %d times, want 1", under.closed)
	}
	if fires != 1 || finalRead != 0 || finalWritten != c.BytesWritten() {
		t.Fatalf("OnClose fired %d times with (%d, %d), want once with (0, %d)",
			fires, finalRead, finalWritten, c.BytesWritten())
	}
	// A second Close forwards but must not re-fire the hook.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Fatalf("OnClose fired %d times after double close", fires)
	}
}

func TestCountingConnCloseWithoutCloser(t *testing.T) {
	var buf bytes.Buffer
	c := NewCountingConn(&buf) // bytes.Buffer is not a Closer
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteMessageRejectsUnknownType(t *testing.T) {
	if err := WriteMessage(io.Discard, struct{}{}); err == nil {
		t.Fatal("unknown message type accepted")
	}
}

func TestTrainRequestCRoundTrip(t *testing.T) {
	in := &TrainRequestC{
		Round: 5, NeedDecoder: true, DecoderHash: 0xABCDEF,
		Encoding: EncDelta, BaseRound: 4, NumParams: 7,
		Payload: []byte{9, 8, 7, 6},
	}
	got := roundTrip(t, in).(*TrainRequestC)
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("round trip:\n in %#v\nout %#v", in, got)
	}
}

func TestUpdateCRoundTrip(t *testing.T) {
	in := &UpdateC{
		Round: 2, ClientID: 3, NumSamples: 40,
		Encoding: EncCodec, NumParams: 12, Weights: []byte{1, 2, 3},
		DecoderHash: 77, NumDecoderParams: 5, Decoder: []byte{4, 5},
		DecoderClasses: []uint32{0, 3, 9},
	}
	got := roundTrip(t, in).(*UpdateC)
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("round trip:\n in %#v\nout %#v", in, got)
	}
	// Cache-hit shape: hash without bytes must survive as-is.
	token := &UpdateC{Round: 2, ClientID: 3, NumSamples: 40,
		Encoding: EncDelta, NumParams: 1, Weights: []byte{0}, DecoderHash: 99}
	tok := roundTrip(t, token).(*UpdateC)
	if tok.DecoderHash != 99 || len(tok.Decoder) != 0 || tok.NumDecoderParams != 0 {
		t.Fatalf("decoder token corrupted: %#v", tok)
	}
}

// The capability byte must be invisible when zero: frames are
// byte-identical to the legacy encoding, and legacy frames (without the
// byte) decode with Encodings == 0. That is the whole negotiation story
// — an old peer neither sends nor is sent anything it doesn't know.
func TestCapabilityByteCompat(t *testing.T) {
	var plain, withCap bytes.Buffer
	if err := WriteMessage(&plain, &Hello{ClientID: 9}); err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(&withCap, &Hello{ClientID: 9, Encodings: CapCodec}); err != nil {
		t.Fatal(err)
	}
	if withCap.Len() != plain.Len()+1 {
		t.Fatalf("capability byte cost %d bytes, want 1", withCap.Len()-plain.Len())
	}
	got, err := ReadMessage(&plain)
	if err != nil {
		t.Fatal(err)
	}
	if h := got.(*Hello); h.Encodings != 0 {
		t.Fatalf("legacy frame decoded with Encodings = %d", h.Encodings)
	}
	got, err = ReadMessage(&withCap)
	if err != nil {
		t.Fatal(err)
	}
	if h := got.(*Hello); h.Encodings != CapCodec {
		t.Fatalf("capability byte lost: %#v", h)
	}

	setup := &Setup{Seed: 1, ArchName: "tiny", Attack: "none"}
	var s0 bytes.Buffer
	if err := WriteMessage(&s0, setup); err != nil {
		t.Fatal(err)
	}
	setup.Encodings = CapCodec
	var s1 bytes.Buffer
	if err := WriteMessage(&s1, setup); err != nil {
		t.Fatal(err)
	}
	if s1.Len() != s0.Len()+1 {
		t.Fatalf("Setup capability byte cost %d bytes, want 1", s1.Len()-s0.Len())
	}
	m0, err := ReadMessage(&s0)
	if err != nil {
		t.Fatal(err)
	}
	if m0.(*Setup).Encodings != 0 {
		t.Fatal("zero-capability Setup decoded with nonzero Encodings")
	}
	m1, err := ReadMessage(&s1)
	if err != nil {
		t.Fatal(err)
	}
	if m1.(*Setup).Encodings != CapCodec {
		t.Fatal("Setup capability byte lost")
	}
}

func TestUpdateCGuardsLengthLies(t *testing.T) {
	payload := []byte{TypeUpdateC}
	payload = appendU32(payload, 1) // round
	payload = appendU32(payload, 1) // client
	payload = appendU32(payload, 1) // samples
	payload = append(payload, EncCodec)
	payload = appendU32(payload, 1)
	payload = appendU32(payload, 1<<30) // claimed blob length
	if _, err := ReadMessage(bytes.NewReader(buildFrame(payload))); err == nil {
		t.Fatal("length-lying UpdateC accepted")
	}
}
