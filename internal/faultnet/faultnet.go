// Package faultnet injects deterministic network faults underneath the
// federation's wire protocol. A declarative Plan — latency, fragmented
// (short) writes, byte corruption, mid-frame connection drops, accept
// delays — is applied per peer through net.Conn/net.Listener wrappers,
// with every random choice drawn from an RNG derived from the plan seed
// and the peer ID. The same seed therefore reproduces the same corrupted
// offsets, the same drop points, and (through the server's timeout and
// quorum machinery in package fednet) the same round-by-round exclusion
// sequence, which is what makes chaos tests assertable.
//
// Wrappers are transparent when their PeerPlan is the zero value: a
// zero-fault chaos run is byte-identical to an unwrapped one.
package faultnet

import (
	"errors"
	"net"
	"sync"
	"time"

	"fedguard/internal/rng"
)

// ErrInjected marks failures manufactured by this package, so tests and
// logs can tell injected faults from real ones.
var ErrInjected = errors.New("faultnet: injected fault")

// PeerPlan declares one peer's faults. The zero value injects nothing.
//
// Write-side faults (delay, fragmentation, corruption, drops) apply only
// after the first SkipWrites writes, so a registration handshake can
// pass cleanly while round traffic is tortured; SkipReads does the same
// for the read side.
type PeerPlan struct {
	// SkipWrites / SkipReads exempt the first n operations in each
	// direction from all faults.
	SkipWrites, SkipReads int
	// WriteDelay / ReadDelay sleep before each faulty-eligible operation
	// (a peer with a delay far above the server's round timeout is a
	// straggler that gets dropped every round it is sampled).
	WriteDelay, ReadDelay time.Duration
	// WriteChunk fragments each write into underlying writes of at most
	// this many bytes (0 = no fragmentation), exercising the reader's
	// frame-reassembly path.
	WriteChunk int
	// CorruptProb is the per-write probability of XOR-flipping one byte
	// at an RNG-chosen offset (1 corrupts every write). The wire layer's
	// frame checksum turns these into detectable transient errors.
	CorruptProb float64
	// DropAfterWrites kills the connection mid-frame on the (n+1)th
	// faulty-eligible write: an RNG-chosen prefix of the buffer is
	// written, the connection closes, and every later operation fails
	// (0 = never). Models a client crashing mid-upload.
	DropAfterWrites int
	// DropAfterReads kills the connection before the (n+1)th
	// faulty-eligible read completes (0 = never).
	DropAfterReads int
}

// zero reports whether the plan injects nothing.
func (p PeerPlan) zero() bool {
	return p.WriteDelay == 0 && p.ReadDelay == 0 && p.WriteChunk == 0 &&
		p.CorruptProb == 0 && p.DropAfterWrites == 0 && p.DropAfterReads == 0
}

// Plan declares a whole federation's faults: a seed that pins every
// random choice, per-peer overrides, a default for unlisted peers, and a
// listener-level accept delay.
type Plan struct {
	// Seed derives each peer's private fault RNG; the same seed replays
	// the same faults.
	Seed uint64
	// Default applies to peers without an entry in Peers.
	Default PeerPlan
	// Peers maps a peer ID (in fednet: the client ID) to its faults.
	Peers map[int]PeerPlan
	// AcceptDelay sleeps before each Listener.Accept returns.
	AcceptDelay time.Duration
}

// For returns the effective PeerPlan for peer id.
func (p *Plan) For(id int) PeerPlan {
	if p == nil {
		return PeerPlan{}
	}
	if pp, ok := p.Peers[id]; ok {
		return pp
	}
	return p.Default
}

// Conn wraps c with peer id's faults, deriving the fault RNG from the
// plan seed and the peer ID.
func (p *Plan) Conn(id int, c net.Conn) *Conn {
	var seed uint64
	if p != nil {
		seed = p.Seed
	}
	return &Conn{
		Conn:   c,
		plan:   p.For(id),
		rng:    rng.New(rng.DeriveSeed(seed, "faultnet", uint64(id))),
		closed: make(chan struct{}),
	}
}

// Dial connects to addr and wraps the connection with peer id's faults.
func (p *Plan) Dial(network, addr string, id int) (*Conn, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return p.Conn(id, c), nil
}

// Conn is a net.Conn with deterministic fault injection. A single peer
// goroutine using the connection sequentially sees a deterministic fault
// sequence for a fixed plan seed.
type Conn struct {
	net.Conn
	plan PeerPlan
	rng  *rng.RNG

	mu     sync.Mutex
	reads  int
	writes int
	dead   bool

	closeOnce sync.Once
	closed    chan struct{}
}

// Close aborts any in-flight injected delay, then closes the wrapped
// connection.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// sleep waits d unless the connection is closed first (so a test tearing
// down a stalled straggler does not block for the full injected delay).
func (c *Conn) sleep(d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.closed:
		return ErrInjected
	}
}

// die marks the connection dead and closes it; all later operations fail
// with ErrInjected.
func (c *Conn) die() {
	c.dead = true
	c.closeOnce.Do(func() { close(c.closed) })
	c.Conn.Close()
}

// Write implements net.Conn with the plan's write-side faults.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return 0, ErrInjected
	}
	c.writes++
	if c.writes <= c.plan.SkipWrites {
		return c.Conn.Write(p)
	}
	if err := c.sleep(c.plan.WriteDelay); err != nil {
		return 0, err
	}
	if c.dead { // closed while sleeping
		return 0, ErrInjected
	}
	if n := c.plan.DropAfterWrites; n > 0 && c.writes-c.plan.SkipWrites > n {
		// Mid-frame crash: leak a strict prefix, then kill the link.
		cut := 0
		if len(p) > 1 {
			cut = c.rng.Intn(len(p))
		}
		written, _ := c.Conn.Write(p[:cut])
		c.die()
		return written, ErrInjected
	}
	buf := p
	if c.plan.CorruptProb > 0 && len(p) > 0 && c.rng.Float64() < c.plan.CorruptProb {
		buf = append([]byte(nil), p...)
		buf[c.rng.Intn(len(buf))] ^= 0xFF
	}
	if chunk := c.plan.WriteChunk; chunk > 0 {
		var total int
		for len(buf) > 0 {
			k := chunk
			if k > len(buf) {
				k = len(buf)
			}
			n, err := c.Conn.Write(buf[:k])
			total += n
			if err != nil {
				return total, err
			}
			buf = buf[k:]
		}
		return total, nil
	}
	return c.Conn.Write(buf)
}

// Read implements net.Conn with the plan's read-side faults.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0, ErrInjected
	}
	c.reads++
	reads, skip := c.reads, c.plan.SkipReads
	c.mu.Unlock()
	if reads <= skip {
		return c.Conn.Read(p)
	}
	if err := c.sleep(c.plan.ReadDelay); err != nil {
		return 0, err
	}
	if n := c.plan.DropAfterReads; n > 0 && reads-skip > n {
		c.mu.Lock()
		c.die()
		c.mu.Unlock()
		return 0, ErrInjected
	}
	return c.Conn.Read(p)
}

// Listener wraps a net.Listener with the plan's accept-side faults.
// Accepted connections are wrapped with the Default peer plan keyed by
// accept order; peers whose faults must be tied to a protocol-level
// identity (fednet client IDs) should instead wrap their own dialed
// connection with Plan.Conn.
type Listener struct {
	net.Listener
	plan *Plan

	mu   sync.Mutex
	next int
}

// Listen wraps ln.
func (p *Plan) Listen(ln net.Listener) *Listener {
	return &Listener{Listener: ln, plan: p}
}

// Accept implements net.Listener, sleeping AcceptDelay before each
// accept and wrapping the resulting connection.
func (l *Listener) Accept() (net.Conn, error) {
	if l.plan != nil && l.plan.AcceptDelay > 0 {
		time.Sleep(l.plan.AcceptDelay)
	}
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	id := l.next
	l.next++
	l.mu.Unlock()
	var seed uint64
	var pp PeerPlan
	if l.plan != nil {
		seed, pp = l.plan.Seed, l.plan.Default
	}
	return &Conn{
		Conn:   c,
		plan:   pp,
		rng:    rng.New(rng.DeriveSeed(seed, "faultnet-accept", uint64(id))),
		closed: make(chan struct{}),
	}, nil
}
