package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"fedguard/internal/wire"
)

// pipePair returns both ends of an in-memory connection, with the local
// end wrapped by the plan for peer id.
func pipePair(plan *Plan, id int) (*Conn, net.Conn) {
	a, b := net.Pipe()
	return plan.Conn(id, a), b
}

func TestZeroPlanIsTransparent(t *testing.T) {
	c, peer := pipePair(&Plan{Seed: 1}, 0)
	defer c.Close()
	defer peer.Close()

	go func() {
		wire.WriteMessage(c, &wire.Hello{ClientID: 9})
	}()
	msg, err := wire.ReadMessage(peer)
	if err != nil {
		t.Fatal(err)
	}
	if h, ok := msg.(*wire.Hello); !ok || h.ClientID != 9 {
		t.Fatalf("got %#v", msg)
	}
}

func TestWriteDelayAndSkip(t *testing.T) {
	const delay = 50 * time.Millisecond
	plan := &Plan{Seed: 1, Default: PeerPlan{SkipWrites: 1, WriteDelay: delay}}
	c, peer := pipePair(plan, 0)
	defer c.Close()
	defer peer.Close()

	go io.Copy(io.Discard, peer)

	start := time.Now()
	if _, err := c.Write([]byte("fast")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d >= delay {
		t.Fatalf("skipped write took %v, want < %v", d, delay)
	}
	start = time.Now()
	if _, err := c.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < delay {
		t.Fatalf("faulty write took %v, want >= %v", d, delay)
	}
}

func TestCloseAbortsInjectedDelay(t *testing.T) {
	plan := &Plan{Seed: 1, Default: PeerPlan{WriteDelay: time.Minute}}
	c, peer := pipePair(plan, 0)
	defer peer.Close()

	errCh := make(chan error, 1)
	go func() {
		_, err := c.Write([]byte("stalls"))
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	c.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("aborted write returned %v, want ErrInjected", err)
		}
		if time.Since(start) > time.Second {
			t.Fatal("close did not promptly abort the injected delay")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write still blocked after Close")
	}
}

func TestDropAfterWritesKillsMidFrame(t *testing.T) {
	plan := &Plan{Seed: 7, Default: PeerPlan{DropAfterWrites: 2}}
	c, peer := pipePair(plan, 0)
	defer c.Close()
	defer peer.Close()

	var got bytes.Buffer
	var mu sync.Mutex
	go func() {
		buf := make([]byte, 256)
		for {
			n, err := peer.Read(buf)
			mu.Lock()
			got.Write(buf[:n])
			mu.Unlock()
			if err != nil {
				return
			}
		}
	}()

	payload := bytes.Repeat([]byte("x"), 64)
	for i := 0; i < 2; i++ {
		if _, err := c.Write(payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	n, err := c.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("third write: n=%d err=%v, want ErrInjected", n, err)
	}
	if n >= len(payload) {
		t.Fatalf("mid-frame drop wrote the whole buffer (%d bytes)", n)
	}
	// The connection is dead for every subsequent operation.
	if _, err := c.Write(payload); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after drop: %v", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after drop: %v", err)
	}
}

func TestCorruptionIsDeterministic(t *testing.T) {
	run := func(seed uint64) []byte {
		plan := &Plan{Seed: seed, Default: PeerPlan{CorruptProb: 1}}
		c, peer := pipePair(plan, 3)
		defer c.Close()
		defer peer.Close()
		var got []byte
		done := make(chan struct{})
		go func() {
			defer close(done)
			buf := make([]byte, 1024)
			for {
				n, err := peer.Read(buf)
				got = append(got, buf[:n]...)
				if err != nil {
					return
				}
			}
		}()
		for i := 0; i < 5; i++ {
			if _, err := c.Write([]byte("the quick brown fox jumps")); err != nil {
				t.Fatal(err)
			}
		}
		c.Close()
		peer.Close()
		<-done
		return got
	}
	a, b := run(42), run(42)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption")
	}
	if bytes.Equal(a, bytes.Repeat([]byte("the quick brown fox jumps"), 5)) {
		t.Fatal("CorruptProb=1 left the stream untouched")
	}
	if c := run(43); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical corruption")
	}
}

func TestWriteChunkFragments(t *testing.T) {
	plan := &Plan{Seed: 1, Default: PeerPlan{WriteChunk: 3}}
	c, peer := pipePair(plan, 0)
	defer c.Close()
	defer peer.Close()

	sizes := make(chan int, 16)
	go func() {
		defer close(sizes)
		buf := make([]byte, 64)
		for {
			n, err := peer.Read(buf)
			if n > 0 {
				sizes <- n
			}
			if err != nil {
				return
			}
		}
	}()
	msg := []byte("fragmented frame")
	if n, err := c.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	c.Close()
	peer.Close()
	var total, count int
	for n := range sizes {
		if n > 3 {
			t.Fatalf("underlying write of %d bytes despite WriteChunk=3", n)
		}
		total += n
		count++
	}
	if total != len(msg) || count < len(msg)/3 {
		t.Fatalf("fragmentation lost data: %d bytes in %d writes", total, count)
	}
}

func TestDropAfterReads(t *testing.T) {
	plan := &Plan{Seed: 1, Default: PeerPlan{SkipReads: 1, DropAfterReads: 1}}
	c, peer := pipePair(plan, 0)
	defer c.Close()
	defer peer.Close()

	go func() {
		for i := 0; i < 3; i++ {
			if _, err := peer.Write([]byte("z")); err != nil {
				return
			}
		}
	}()
	buf := make([]byte, 1)
	for i := 0; i < 2; i++ { // one skipped + one eligible read succeed
		if _, err := c.Read(buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if _, err := c.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read past DropAfterReads: %v, want ErrInjected", err)
	}
}

func TestPlanForPrecedence(t *testing.T) {
	plan := &Plan{
		Default: PeerPlan{WriteDelay: time.Second},
		Peers:   map[int]PeerPlan{2: {CorruptProb: 0.5}},
	}
	if got := plan.For(2); got.CorruptProb != 0.5 || got.WriteDelay != 0 {
		t.Fatalf("peer override not applied: %+v", got)
	}
	if got := plan.For(1); got.WriteDelay != time.Second {
		t.Fatalf("default not applied: %+v", got)
	}
	var nilPlan *Plan
	if !nilPlan.For(0).zero() {
		t.Fatal("nil plan must be fault-free")
	}
}

func TestListenerAcceptDelayAndWrap(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const delay = 30 * time.Millisecond
	wrapped := (&Plan{Seed: 1, AcceptDelay: delay}).Listen(ln)
	defer wrapped.Close()

	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err == nil {
			c.Write([]byte("hi"))
			c.Close()
		}
	}()
	start := time.Now()
	conn, err := wrapped.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if d := time.Since(start); d < delay {
		t.Fatalf("accept took %v, want >= %v", d, delay)
	}
	if _, ok := conn.(*Conn); !ok {
		t.Fatalf("accepted conn is %T, want *faultnet.Conn", conn)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(conn, buf); err != nil || string(buf) != "hi" {
		t.Fatalf("read %q, %v", buf, err)
	}
}
