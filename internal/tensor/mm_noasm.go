//go:build !amd64 || purego

package tensor

// Non-amd64 builds (or -tags purego) use the scalar kernels everywhere.
const useAVX = false

func mmRowAVX(dst, a, b *float32, astride, k, n, j8, acc int) {
	panic("tensor: mmRowAVX called without AVX support")
}
