package tensor

import (
	"fmt"
	"math"
)

// Add computes dst = a + b element-wise. All three tensors must share a
// shape; dst may alias a or b.
func Add(dst, a, b *Tensor) {
	checkTriple("Add", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Sub computes dst = a - b element-wise.
func Sub(dst, a, b *Tensor) {
	checkTriple("Sub", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// Mul computes dst = a * b element-wise (Hadamard product).
func Mul(dst, a, b *Tensor) {
	checkTriple("Mul", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

// Scale computes dst = s * a.
func Scale(dst, a *Tensor, s float32) {
	checkPair("Scale", dst, a)
	for i := range dst.Data {
		dst.Data[i] = s * a.Data[i]
	}
}

// AXPY computes dst += s * a (the BLAS axpy primitive).
func AXPY(dst *Tensor, s float32, a *Tensor) {
	checkPair("AXPY", dst, a)
	for i := range dst.Data {
		dst.Data[i] += s * a.Data[i]
	}
}

// AddScalar computes dst = a + s.
func AddScalar(dst, a *Tensor, s float32) {
	checkPair("AddScalar", dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + s
	}
}

// Apply computes dst = f(a) element-wise.
func Apply(dst, a *Tensor, f func(float32) float32) {
	checkPair("Apply", dst, a)
	for i := range dst.Data {
		dst.Data[i] = f(a.Data[i])
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float32 {
	var s float32
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Max returns the maximum element and its flat index. It panics on an
// empty tensor (which cannot be constructed).
func (t *Tensor) Max() (float32, int) {
	best := t.Data[0]
	at := 0
	for i, v := range t.Data {
		if v > best {
			best, at = v, i
		}
	}
	return best, at
}

// Dot returns the inner product of a and b viewed as flat vectors.
func Dot(a, b *Tensor) float32 {
	if a.Len() != b.Len() {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", a.Len(), b.Len()))
	}
	return DotSlice(a.Data, b.Data)
}

// DotSlice returns the inner product of two equal-length slices using
// float64 accumulation for stability.
func DotSlice(a, b []float32) float32 {
	var acc float64
	for i := range a {
		acc += float64(a[i]) * float64(b[i])
	}
	return float32(acc)
}

// Norm2 returns the Euclidean norm of the tensor viewed as a flat vector.
func (t *Tensor) Norm2() float32 {
	return Norm2Slice(t.Data)
}

// Norm2Slice returns the Euclidean norm of a slice with float64
// accumulation.
func Norm2Slice(a []float32) float32 {
	var acc float64
	for _, v := range a {
		acc += float64(v) * float64(v)
	}
	return float32(math.Sqrt(acc))
}

// DistSlice returns the Euclidean distance between two equal-length
// slices.
func DistSlice(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: DistSlice length mismatch %d vs %d", len(a), len(b)))
	}
	var acc float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		acc += d * d
	}
	return float32(math.Sqrt(acc))
}

// Transpose returns a new tensor that is the transpose of the 2-D tensor
// a.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose of rank-%d tensor", a.Rank()))
	}
	rows, cols := a.Dim(0), a.Dim(1)
	out := New(cols, rows)
	const block = 32
	for i0 := 0; i0 < rows; i0 += block {
		iMax := min(i0+block, rows)
		for j0 := 0; j0 < cols; j0 += block {
			jMax := min(j0+block, cols)
			for i := i0; i < iMax; i++ {
				row := a.Data[i*cols:]
				for j := j0; j < jMax; j++ {
					out.Data[j*rows+i] = row[j]
				}
			}
		}
	}
	return out
}

// TransposeInto writes the transpose of the 2-D tensor a into dst, which
// must be shaped (cols, rows). Unlike Transpose it allocates nothing —
// layers use it to maintain transposed-weight scratch for the vector
// matmul kernels.
func TransposeInto(dst, a *Tensor) {
	if a.Rank() != 2 || dst.Rank() != 2 {
		panic("tensor: TransposeInto requires rank-2 tensors")
	}
	rows, cols := a.Dim(0), a.Dim(1)
	if dst.Dim(0) != cols || dst.Dim(1) != rows {
		panic(fmt.Sprintf("tensor: TransposeInto dst shape %v, want (%d,%d)", dst.shape, cols, rows))
	}
	const block = 32
	for i0 := 0; i0 < rows; i0 += block {
		iMax := min(i0+block, rows)
		for j0 := 0; j0 < cols; j0 += block {
			jMax := min(j0+block, cols)
			for i := i0; i < iMax; i++ {
				row := a.Data[i*cols:]
				for j := j0; j < jMax; j++ {
					dst.Data[j*rows+i] = row[j]
				}
			}
		}
	}
}

func checkPair(op string, dst, a *Tensor) {
	if !dst.SameShape(a) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, dst.shape, a.shape))
	}
}

func checkTriple(op string, dst, a, b *Tensor) {
	if !dst.SameShape(a) || !dst.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v, %v, %v", op, dst.shape, a.shape, b.shape))
	}
}
