package tensor

import (
	"fmt"
	"sync/atomic"
)

// Deterministic blocked-reduction kernels for robust aggregation.
//
// The aggregation operators (FedAvg, GeoMed, Krum, coordinate median,
// trimmed mean) are reductions over m update vectors of model dimension
// d. Making them fast without breaking the repo's determinism contract
// (same seed → byte-identical FinalWeights, regardless of parallelism)
// requires the same discipline the matmul kernels use:
//
//   - Parallelism only ever splits *independently owned outputs* —
//     coordinates, rows, or (i,j) pairs — across workers. No two workers
//     touch the same accumulator, so the partitioning cannot affect the
//     result.
//   - Every accumulation runs in a fixed order that does not depend on
//     the worker count: squared distances accumulate over coordinate
//     blocks of exactly ReduceBlock elements in ascending block order,
//     and within a block over sixteen fixed lanes combined by a fixed
//     tree (see distSqTail16 / the AVX kernel, which implement the same
//     arithmetic instruction for instruction).
//
// The blocked lane order is the canonical summation order: the pure-Go
// fallback and the AVX kernel produce bit-identical float64 sums, so
// builds with and without the `purego` tag agree too.

// ReduceBlock is the coordinate block size of the blocked reductions,
// in elements. It is a determinism constant, not a tuning knob: changing
// it changes float64 sums. 2048 float32s = 8KiB per vector per block,
// small enough that a 50-update pairwise pass stays cache-resident.
const ReduceBlock = 2048

// reduceLanes is the number of independent accumulator lanes inside a
// block, matching the four 4-wide YMM accumulators of the AVX kernel.
const reduceLanes = 16

// aggWorkers bounds the parallelism of the aggregation kernels,
// independently of the matmul pool's Workers() setting. 0 (the default)
// follows Workers().
var aggWorkers atomic.Int32

// SetAggWorkers bounds the parallelism of the aggregation kernels.
// n <= 0 restores the default of following Workers(). Results never
// depend on the setting — that is the point of the blocked kernels.
func SetAggWorkers(n int) {
	if n < 0 {
		n = 0
	}
	if n > maxPoolWorkers {
		n = maxPoolWorkers
	}
	aggWorkers.Store(int32(n))
}

// AggWorkers returns the current aggregation parallelism bound; 0 means
// "follow Workers()".
func AggWorkers() int { return int(aggWorkers.Load()) }

// EffectiveAggWorkers resolves the aggregation parallelism actually in
// force: the AggWorkers override if set, else Workers().
func EffectiveAggWorkers() int {
	if w := AggWorkers(); w > 0 {
		return w
	}
	return Workers()
}

// rangeFunc adapts a closure to RangeRunner for the blocked kernels.
// The func value escapes once per kernel call (a handful per round),
// not per element.
type rangeFunc func(lo, hi int)

func (f rangeFunc) RunRange(lo, hi int) { f(lo, hi) }

// ParallelBlocks splits [0, n) into at most AggWorkers() contiguous
// chunks and runs f on each, waiting for completion. f must own its
// output range exclusively; see the package comment for the determinism
// contract.
func ParallelBlocks(n int, f func(lo, hi int)) {
	ParallelRangesN(rangeFunc(f), n, AggWorkers())
}

// distSqBlock returns Σ (a[i]-b[i])² over one coordinate block
// (len(a) <= ReduceBlock) in the canonical 16-lane order.
func distSqBlock(a, b []float32) float64 {
	n16 := len(a) &^ (reduceLanes - 1)
	var s float64
	if n16 > 0 {
		if useAVX {
			s = distSq16AVX(&a[0], &b[0], n16)
		} else {
			s = distSq16Go(a[:n16], b[:n16])
		}
	}
	var tail float64
	for i := n16; i < len(a); i++ {
		d := float64(a[i]) - float64(b[i])
		tail += d * d
	}
	return s + tail
}

// distSqMixedBlock is distSqBlock with a float64 left operand — the
// Weiszfeld iterate against a float32 update row.
func distSqMixedBlock(a []float64, b []float32) float64 {
	n16 := len(a) &^ (reduceLanes - 1)
	var s float64
	if n16 > 0 {
		if useAVX {
			s = distSqMixed16AVX(&a[0], &b[0], n16)
		} else {
			s = distSqMixed16Go(a[:n16], b[:n16])
		}
	}
	var tail float64
	for i := n16; i < len(a); i++ {
		d := a[i] - float64(b[i])
		tail += d * d
	}
	return s + tail
}

// sumSqBlock returns Σ a[i]² over one coordinate block in the canonical
// 16-lane order. Pure Go on every build: it runs once per update per
// round (norm clipping), so it needs the canonical order but not the
// AVX throughput.
func sumSqBlock(a []float32) float64 {
	n16 := len(a) &^ (reduceLanes - 1)
	var lane [reduceLanes]float64
	for i := 0; i < n16; i += reduceLanes {
		for l := 0; l < reduceLanes; l++ {
			v := float64(a[i+l])
			lane[l] += v * v
		}
	}
	s := combine16(&lane)
	var tail float64
	for i := n16; i < len(a); i++ {
		v := float64(a[i])
		tail += v * v
	}
	return s + tail
}

// combine16 folds sixteen lane sums with the fixed tree the AVX kernel's
// horizontal reduction implements: lanes pair up as four YMM registers
// (l, l+4, l+8, l+12 share a register slot), registers combine pairwise,
// then the 4-wide result folds (low+high, then adjacent).
func combine16(lane *[reduceLanes]float64) float64 {
	u0 := (lane[0] + lane[4]) + (lane[8] + lane[12])
	u1 := (lane[1] + lane[5]) + (lane[9] + lane[13])
	u2 := (lane[2] + lane[6]) + (lane[10] + lane[14])
	u3 := (lane[3] + lane[7]) + (lane[11] + lane[15])
	return (u0 + u2) + (u1 + u3)
}

// distSq16Go is the pure-Go mirror of distSq16AVX: identical lane
// assignment and combine tree, so the two paths are bit-identical.
func distSq16Go(a, b []float32) float64 {
	var lane [reduceLanes]float64
	for i := 0; i < len(a); i += reduceLanes {
		for l := 0; l < reduceLanes; l++ {
			d := float64(a[i+l]) - float64(b[i+l])
			lane[l] += d * d
		}
	}
	return combine16(&lane)
}

// distSqMixed16Go mirrors distSqMixed16AVX.
func distSqMixed16Go(a []float64, b []float32) float64 {
	var lane [reduceLanes]float64
	for i := 0; i < len(a); i += reduceLanes {
		for l := 0; l < reduceLanes; l++ {
			d := a[i+l] - float64(b[i+l])
			lane[l] += d * d
		}
	}
	return combine16(&lane)
}

// DistSqBlocked returns the squared Euclidean distance between two
// equal-length vectors in the canonical blocked order: coordinate blocks
// of ReduceBlock elements summed in ascending order, sixteen lanes per
// block. This is the same value PairwiseDistSq produces for the pair.
func DistSqBlocked(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: DistSqBlocked length mismatch %d vs %d", len(a), len(b)))
	}
	var total float64
	for lo := 0; lo < len(a); lo += ReduceBlock {
		hi := min(lo+ReduceBlock, len(a))
		total += distSqBlock(a[lo:hi], b[lo:hi])
	}
	return total
}

// DistSqMixedBlocked is DistSqBlocked with a float64 left operand.
func DistSqMixedBlocked(a []float64, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: DistSqMixedBlocked length mismatch %d vs %d", len(a), len(b)))
	}
	var total float64
	for lo := 0; lo < len(a); lo += ReduceBlock {
		hi := min(lo+ReduceBlock, len(a))
		total += distSqMixedBlock(a[lo:hi], b[lo:hi])
	}
	return total
}

// SumSqBlocked returns Σ a[i]² in the canonical blocked order.
func SumSqBlocked(a []float32) float64 {
	var total float64
	for lo := 0; lo < len(a); lo += ReduceBlock {
		hi := min(lo+ReduceBlock, len(a))
		total += sumSqBlock(a[lo:hi])
	}
	return total
}

// pairIdx names one (i, j) entry of a pairwise distance matrix.
type pairIdx struct{ i, j int32 }

// pairRunner accumulates one coordinate block of every pair's squared
// distance. Workers split the pair list; each (i, j) cell is owned by
// exactly one worker, and blocks arrive in ascending order because the
// block loop in PairwiseDistSq is serial.
type pairRunner struct {
	dst    []float64
	vecs   [][]float32
	pairs  []pairIdx
	n      int
	lo, hi int
}

func (p *pairRunner) RunRange(plo, phi int) {
	for _, pr := range p.pairs[plo:phi] {
		i, j := int(pr.i), int(pr.j)
		p.dst[i*p.n+j] += distSqBlock(p.vecs[i][p.lo:p.hi], p.vecs[j][p.lo:p.hi])
	}
}

// PairwiseDistSq fills dst (row-major n×n, n = len(vecs)) with the
// squared Euclidean distances between every pair of vectors. The
// diagonal is zero and the matrix is exactly symmetric (each pair is
// computed once and mirrored). The outer loop walks coordinate blocks
// serially while workers split the pair list, so the whole pass touches
// each block of every vector once — cache-resident for typical cohort
// sizes — and the accumulation order is independent of the worker count.
func PairwiseDistSq(dst []float64, vecs [][]float32) {
	n := len(vecs)
	if len(dst) != n*n {
		panic(fmt.Sprintf("tensor: PairwiseDistSq dst length %d, want %d", len(dst), n*n))
	}
	for i := range dst {
		dst[i] = 0
	}
	if n < 2 {
		return
	}
	dim := len(vecs[0])
	for _, v := range vecs {
		if len(v) != dim {
			panic(fmt.Sprintf("tensor: PairwiseDistSq ragged input: %d vs %d", len(v), dim))
		}
	}
	pairs := make([]pairIdx, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pairIdx{int32(i), int32(j)})
		}
	}
	pr := &pairRunner{dst: dst, vecs: vecs, pairs: pairs, n: n}
	for lo := 0; lo < dim; lo += ReduceBlock {
		pr.lo, pr.hi = lo, min(lo+ReduceBlock, dim)
		ParallelRangesN(pr, len(pairs), AggWorkers())
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dst[j*n+i] = dst[i*n+j]
		}
	}
}

// DistSqManyInto fills dst[j] with the canonical blocked squared
// distance between a and rows[j], parallelizing over rows (each dst[j]
// is owned by one worker).
func DistSqManyInto(dst []float64, a []float64, rows [][]float32) {
	if len(dst) != len(rows) {
		panic(fmt.Sprintf("tensor: DistSqManyInto dst length %d, want %d", len(dst), len(rows)))
	}
	ParallelBlocks(len(rows), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			dst[j] = DistSqMixedBlocked(a, rows[j])
		}
	})
}

// WeightedSumInto sets dst[i] = Σ_j w[j]·rows[j][i]. Workers split the
// coordinate range; within a chunk rows accumulate in ascending j order,
// so the sum for every coordinate is ordered identically at any worker
// count. Rows are never skipped on w[j] == 0: skipping would change
// signed-zero results.
func WeightedSumInto(dst []float64, rows [][]float32, w []float64) {
	if len(rows) != len(w) {
		panic(fmt.Sprintf("tensor: WeightedSumInto %d rows, %d weights", len(rows), len(w)))
	}
	for _, r := range rows {
		if len(r) != len(dst) {
			panic(fmt.Sprintf("tensor: WeightedSumInto ragged row: %d vs %d", len(r), len(dst)))
		}
	}
	ParallelBlocks(len(dst), func(lo, hi int) {
		d := dst[lo:hi]
		for i := range d {
			d[i] = 0
		}
		for j, row := range rows {
			wj := w[j]
			r := row[lo:hi]
			for i, v := range r {
				d[i] += wj * float64(v)
			}
		}
	})
}

// ScaleF64To32 sets dst[i] = float32(src[i] * s), parallel over
// coordinates.
func ScaleF64To32(dst []float32, src []float64, s float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: ScaleF64To32 length mismatch %d vs %d", len(dst), len(src)))
	}
	ParallelBlocks(len(dst), func(lo, hi int) {
		d, sc := dst[lo:hi], src[lo:hi]
		for i, v := range sc {
			d[i] = float32(v * s)
		}
	})
}

// ScaleInto sets dst[i] = a[i] * s, parallel over coordinates.
func ScaleInto(dst, a []float32, s float32) {
	if len(dst) != len(a) {
		panic(fmt.Sprintf("tensor: ScaleInto length mismatch %d vs %d", len(dst), len(a)))
	}
	ParallelBlocks(len(dst), func(lo, hi int) {
		d, av := dst[lo:hi], a[lo:hi]
		for i, v := range av {
			d[i] = v * s
		}
	})
}

// LerpInto sets dst[i] = a[i] + t*(b[i] - a[i]) — the server's
// ψ ← ψ + lr·(agg − ψ) update as a kernel. dst may alias a or b.
// Purely element-wise, so worker count cannot affect results.
func LerpInto(dst, a, b []float32, t float32) {
	if len(dst) != len(a) || len(dst) != len(b) {
		panic(fmt.Sprintf("tensor: LerpInto length mismatch %d, %d, %d", len(dst), len(a), len(b)))
	}
	ParallelBlocks(len(dst), func(lo, hi int) {
		d, av, bv := dst[lo:hi], a[lo:hi], b[lo:hi]
		for i := range d {
			d[i] = av[i] + t*(bv[i]-av[i])
		}
	})
}
