// Package tensor implements dense float32 tensors and the numerical
// kernels the neural-network substrate is built on: blocked and
// goroutine-parallel matrix multiplication, element-wise arithmetic,
// reductions, and the im2col/col2im transforms used by convolution.
//
// Tensors are row-major. A Tensor owns its backing slice unless it was
// produced by a view operation (Reshape), in which case it aliases the
// original storage — this is deliberate and documented per operation.
package tensor

import (
	"fmt"
	"strings"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Data  []float32
	shape []int
}

// New allocates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{Data: make([]float32, n), shape: append([]int(nil), shape...)}
}

// FromSlice wraps data in a tensor of the given shape. The tensor aliases
// data (no copy). It panics if the length of data does not match the
// shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)", len(data), shape, n))
	}
	return &Tensor{Data: data, shape: append([]int(nil), shape...)}
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Ensure returns a tensor of the given shape, reusing t's backing array
// when its capacity suffices and allocating otherwise. It is the
// scratch-buffer primitive: layers keep per-call work tensors alive
// across steps (`c.cols = tensor.Ensure(c.cols, ...)`) so steady-state
// training allocates nothing. The returned tensor's contents are
// unspecified when the shape changes — callers must overwrite every
// element. t must be exclusively owned scratch (never a Reshape view of
// shared storage); passing nil is allowed and allocates.
func Ensure(t *Tensor, shape ...int) *Tensor {
	n := shapeVolume(shape)
	if n < 0 {
		checkShape(append([]int(nil), shape...)) // panics with the full message
	}
	if t == nil || cap(t.Data) < n {
		return &Tensor{Data: make([]float32, n), shape: append([]int(nil), shape...)}
	}
	if len(t.shape) == len(shape) {
		same := true
		for i := range shape {
			if t.shape[i] != shape[i] {
				same = false
				break
			}
		}
		if same {
			return t
		}
	}
	t.Data = t.Data[:n]
	t.shape = append(t.shape[:0], shape...)
	return t
}

// Bind repoints t at a prefix of data with the given shape, without
// allocating a new header. It exists so hot loops can carve per-item
// views out of a batched buffer (e.g. one image's im2col rows) using a
// reusable Tensor value instead of a fresh FromSlice per item. data must
// hold at least the shape's volume; the view aliases data.
func (t *Tensor) Bind(data []float32, shape ...int) {
	n := shapeVolume(shape)
	if n < 0 {
		checkShape(append([]int(nil), shape...)) // panics with the full message
	}
	if len(data) < n {
		panic(fmt.Sprintf("tensor: Bind data length %d short of shape %v (volume %d)",
			len(data), append([]int(nil), shape...), n))
	}
	t.Data = data[:n]
	t.shape = append(t.shape[:0], shape...)
}

// shapeVolume computes the element count of shape, returning -1 for an
// invalid (empty or non-positive) shape. Unlike checkShape it never
// formats shape into a panic message, so it does not force callers'
// variadic shape slices to escape to the heap — the property the
// zero-allocation scratch paths (Ensure, Bind) rely on.
func shapeVolume(shape []int) int {
	if len(shape) == 0 {
		return -1
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return -1
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view with a new shape sharing the same backing data.
// The shape volume must match. One dimension may be -1, in which case it
// is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	vol := 1
	for i, d := range shape {
		switch {
		case d == -1:
			if infer >= 0 {
				panic("tensor: Reshape with multiple -1 dimensions")
			}
			infer = i
		case d <= 0:
			panic(fmt.Sprintf("tensor: Reshape to invalid shape %v", shape))
		default:
			vol *= d
		}
	}
	if infer >= 0 {
		if len(t.Data)%vol != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		shape[infer] = len(t.Data) / vol
		vol *= shape[infer]
	}
	if vol != len(t.Data) {
		panic(fmt.Sprintf("tensor: Reshape volume mismatch: %v -> %v", t.shape, shape))
	}
	return &Tensor{Data: t.Data, shape: shape}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// String renders a compact description (shape plus a data prefix) for
// debugging.
func (t *Tensor) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Tensor%v[", t.shape)
	n := len(t.Data)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%.4g", t.Data[i])
	}
	if n < len(t.Data) {
		sb.WriteString(", ...")
	}
	sb.WriteString("]")
	return sb.String()
}
