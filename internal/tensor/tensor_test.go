package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"fedguard/internal/rng"
)

func almostEq(a, b, eps float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

func TestNewZeroFilled(t *testing.T) {
	x := New(3, 4)
	if x.Len() != 12 {
		t.Fatalf("Len = %d, want 12", x.Len())
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New tensor not zero-filled")
		}
	}
}

func TestFromSliceAliases(t *testing.T) {
	data := []float32{1, 2, 3, 4}
	x := FromSlice(data, 2, 2)
	data[0] = 9
	if x.At(0, 0) != 9 {
		t.Fatal("FromSlice must alias the input slice")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong volume did not panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSet(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7.5, 1, 2, 3)
	if x.At(1, 2, 3) != 7.5 {
		t.Fatal("At/Set round trip failed")
	}
	if x.Data[1*12+2*4+3] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestReshapeView(t *testing.T) {
	x := New(2, 6)
	x.Data[5] = 3
	y := x.Reshape(3, 4)
	if y.At(1, 1) != 3 {
		t.Fatal("Reshape must preserve flat layout")
	}
	y.Set(8, 0, 0)
	if x.At(0, 0) != 8 {
		t.Fatal("Reshape must alias storage")
	}
	z := x.Reshape(4, -1)
	if z.Dim(1) != 3 {
		t.Fatalf("inferred dimension = %d, want 3", z.Dim(1))
	}
}

func TestReshapePanicsOnVolumeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad Reshape did not panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 5
	if x.Data[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	dst := New(3)
	Add(dst, a, b)
	if dst.Data[2] != 9 {
		t.Fatalf("Add = %v", dst.Data)
	}
	Sub(dst, b, a)
	if dst.Data[0] != 3 {
		t.Fatalf("Sub = %v", dst.Data)
	}
	Mul(dst, a, b)
	if dst.Data[1] != 10 {
		t.Fatalf("Mul = %v", dst.Data)
	}
	Scale(dst, a, 2)
	if dst.Data[2] != 6 {
		t.Fatalf("Scale = %v", dst.Data)
	}
	AXPY(dst, 10, a) // dst = 2a + 10a = 12a
	if dst.Data[0] != 12 {
		t.Fatalf("AXPY = %v", dst.Data)
	}
}

func TestApply(t *testing.T) {
	a := FromSlice([]float32{-1, 2}, 2)
	dst := New(2)
	Apply(dst, a, func(v float32) float32 {
		if v < 0 {
			return 0
		}
		return v
	})
	if dst.Data[0] != 0 || dst.Data[1] != 2 {
		t.Fatalf("Apply = %v", dst.Data)
	}
}

func TestSumMaxDotNorm(t *testing.T) {
	a := FromSlice([]float32{3, -1, 4}, 3)
	if a.Sum() != 6 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	v, i := a.Max()
	if v != 4 || i != 2 {
		t.Fatalf("Max = %v at %d", v, i)
	}
	b := FromSlice([]float32{1, 1, 1}, 3)
	if Dot(a, b) != 6 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	if !almostEq(a.Norm2(), float32(math.Sqrt(26)), 1e-5) {
		t.Fatalf("Norm2 = %v", a.Norm2())
	}
	if !almostEq(DistSlice(a.Data, b.Data), float32(math.Sqrt(4+4+9)), 1e-5) {
		t.Fatalf("DistSlice = %v", DistSlice(a.Data, b.Data))
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	dst := New(2, 2)
	MatMul(dst, a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Fatalf("MatMul = %v, want %v", dst.Data, want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := rng.New(1)
	a := New(5, 5)
	r.FillNormal(a.Data, 0, 1)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(1, i, i)
	}
	dst := New(5, 5)
	MatMul(dst, a, id)
	for i := range a.Data {
		if !almostEq(dst.Data[i], a.Data[i], 1e-6) {
			t.Fatal("A @ I != A")
		}
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	r := rng.New(2)
	const m, k, n = 67, 41, 53
	a := New(m, k)
	b := New(k, n)
	r.FillNormal(a.Data, 0, 1)
	r.FillNormal(b.Data, 0, 1)
	big := New(m, n)
	MatMul(big, a, b) // likely parallel path
	ref := New(m, n)
	matmulRows(ref.Data, a.Data, b.Data, 0, m, k, n, false)
	for i := range ref.Data {
		if !almostEq(big.Data[i], ref.Data[i], 1e-4) {
			t.Fatalf("parallel MatMul diverges at %d: %v vs %v", i, big.Data[i], ref.Data[i])
		}
	}
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	r := rng.New(3)
	a := New(9, 7)
	b := New(11, 7)
	r.FillNormal(a.Data, 0, 1)
	r.FillNormal(b.Data, 0, 1)
	got := New(9, 11)
	MatMulT(got, a, b)
	want := New(9, 11)
	MatMul(want, a, Transpose(b))
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-4) {
			t.Fatal("MatMulT != MatMul with explicit transpose")
		}
	}
}

func TestMatMulTAMatchesExplicitTranspose(t *testing.T) {
	r := rng.New(4)
	a := New(13, 6)
	b := New(13, 8)
	r.FillNormal(a.Data, 0, 1)
	r.FillNormal(b.Data, 0, 1)
	got := New(6, 8)
	MatMulTA(got, a, b)
	want := New(6, 8)
	MatMul(want, Transpose(a), b)
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-4) {
			t.Fatal("MatMulTA != MatMul with explicit transpose")
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(5)
	a := New(17, 23)
	r.FillNormal(a.Data, 0, 1)
	b := Transpose(Transpose(a))
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("transpose twice != identity")
		}
	}
}

// Property: (A@B)ᵀ == Bᵀ@Aᵀ for random small matrices.
func TestQuickMatMulTransposeLaw(t *testing.T) {
	r := rng.New(6)
	f := func(ms, ks, ns uint8) bool {
		m := int(ms%6) + 1
		k := int(ks%6) + 1
		n := int(ns%6) + 1
		a := New(m, k)
		b := New(k, n)
		r.FillNormal(a.Data, 0, 1)
		r.FillNormal(b.Data, 0, 1)
		ab := New(m, n)
		MatMul(ab, a, b)
		lhs := Transpose(ab)
		rhs := New(n, m)
		MatMul(rhs, Transpose(b), Transpose(a))
		for i := range lhs.Data {
			if !almostEq(lhs.Data[i], rhs.Data[i], 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColKnown(t *testing.T) {
	// 1x3x3 image, 2x2 kernel -> 4 windows of 4 values.
	img := FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	dst := New(4, 4)
	Im2Col(dst, img, 2, 2)
	want := [][]float32{
		{1, 2, 4, 5},
		{2, 3, 5, 6},
		{4, 5, 7, 8},
		{5, 6, 8, 9},
	}
	for i, row := range want {
		for j, w := range row {
			if dst.At(i, j) != w {
				t.Fatalf("Im2Col[%d][%d] = %v, want %v", i, j, dst.At(i, j), w)
			}
		}
	}
}

func TestIm2ColMultiChannel(t *testing.T) {
	img := New(2, 3, 3)
	for i := range img.Data {
		img.Data[i] = float32(i)
	}
	dst := New(4, 8)
	Im2Col(dst, img, 2, 2)
	// First window, channel 1 starts at flat index 9.
	if dst.At(0, 4) != 9 {
		t.Fatalf("multi-channel Im2Col wrong: got %v", dst.At(0, 4))
	}
}

// Property: Col2Im is the adjoint of Im2Col — <Im2Col(x), y> == <x, Col2Im(y)>.
func TestCol2ImAdjoint(t *testing.T) {
	r := rng.New(7)
	const c, h, w, kh, kw = 2, 6, 5, 3, 2
	outH, outW := h-kh+1, w-kw+1
	x := New(c, h, w)
	r.FillNormal(x.Data, 0, 1)
	y := New(outH*outW, c*kh*kw)
	r.FillNormal(y.Data, 0, 1)

	ix := New(outH*outW, c*kh*kw)
	Im2Col(ix, x, kh, kw)
	lhs := Dot(ix, y)

	cy := New(c, h, w)
	Col2Im(cy, y, kh, kw)
	rhs := Dot(x, cy)

	if !almostEq(lhs, rhs, 1e-3) {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestMatMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with mismatched shapes did not panic")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(2, 2))
}
