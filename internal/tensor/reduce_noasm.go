//go:build !amd64 || purego

package tensor

// On builds without the AVX kernels useAVX is the constant false, so
// these are never reached; they exist to satisfy the compiler.

func distSq16AVX(a, b *float32, n int) float64 {
	panic("tensor: distSq16AVX called without AVX support")
}

func distSqMixed16AVX(a *float64, b *float32, n int) float64 {
	panic("tensor: distSqMixed16AVX called without AVX support")
}
