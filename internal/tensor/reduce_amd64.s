//go:build amd64 && !purego

#include "textflag.h"

// func distSq16AVX(a, b *float32, n int) float64
//
// Σ (a[i]-b[i])² for i in [0, n), n a positive multiple of 16. Each
// iteration converts sixteen float32 pairs to float64 (VCVTPS2PD from
// memory), subtracts, squares, and adds into four YMM accumulators:
// Y0 holds lanes 0-3, Y1 lanes 4-7, Y2 lanes 8-11, Y3 lanes 12-15
// (lane = i mod 16). Separate VMULPD/VADDPD — no FMA — so every
// operation rounds exactly like the pure-Go mirror. The horizontal
// reduction ((Y0+Y1)+(Y2+Y3), then low+high, then adjacent) is the
// fixed tree combine16 implements.
//
// Register use:
//	SI a cursor   DI b cursor   R9 iteration countdown (n/16)
//	Y0-Y3 accumulators   Y4 a quad / difference   Y5 b quad
TEXT ·distSq16AVX(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), R9
	SHRQ $4, R9
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3

loop:
	VCVTPS2PD (SI), Y4
	VCVTPS2PD (DI), Y5
	VSUBPD    Y5, Y4, Y4
	VMULPD    Y4, Y4, Y4
	VADDPD    Y4, Y0, Y0
	VCVTPS2PD 16(SI), Y4
	VCVTPS2PD 16(DI), Y5
	VSUBPD    Y5, Y4, Y4
	VMULPD    Y4, Y4, Y4
	VADDPD    Y4, Y1, Y1
	VCVTPS2PD 32(SI), Y4
	VCVTPS2PD 32(DI), Y5
	VSUBPD    Y5, Y4, Y4
	VMULPD    Y4, Y4, Y4
	VADDPD    Y4, Y2, Y2
	VCVTPS2PD 48(SI), Y4
	VCVTPS2PD 48(DI), Y5
	VSUBPD    Y5, Y4, Y4
	VMULPD    Y4, Y4, Y4
	VADDPD    Y4, Y3, Y3
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ R9
	JNZ  loop

	// combine16: ((Y0+Y1)+(Y2+Y3)) lane-wise, then low128+high128,
	// then (u0+u2)+(u1+u3).
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VUNPCKHPD X0, X0, X1
	VADDSD X1, X0, X0
	VMOVSD X0, ret+24(FP)
	VZEROUPPER
	RET

// func distSqMixed16AVX(a *float64, b *float32, n int) float64
//
// distSq16AVX with a float64 left operand loaded directly (VMOVUPD);
// otherwise identical lane layout, arithmetic, and reduction.
TEXT ·distSqMixed16AVX(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), R9
	SHRQ $4, R9
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3

mloop:
	VMOVUPD   (SI), Y4
	VCVTPS2PD (DI), Y5
	VSUBPD    Y5, Y4, Y4
	VMULPD    Y4, Y4, Y4
	VADDPD    Y4, Y0, Y0
	VMOVUPD   32(SI), Y4
	VCVTPS2PD 16(DI), Y5
	VSUBPD    Y5, Y4, Y4
	VMULPD    Y4, Y4, Y4
	VADDPD    Y4, Y1, Y1
	VMOVUPD   64(SI), Y4
	VCVTPS2PD 32(DI), Y5
	VSUBPD    Y5, Y4, Y4
	VMULPD    Y4, Y4, Y4
	VADDPD    Y4, Y2, Y2
	VMOVUPD   96(SI), Y4
	VCVTPS2PD 48(DI), Y5
	VSUBPD    Y5, Y4, Y4
	VMULPD    Y4, Y4, Y4
	VADDPD    Y4, Y3, Y3
	ADDQ $128, SI
	ADDQ $64, DI
	DECQ R9
	JNZ  mloop

	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VUNPCKHPD X0, X0, X1
	VADDSD X1, X0, X0
	VMOVSD X0, ret+24(FP)
	VZEROUPPER
	RET
