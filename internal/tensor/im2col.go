package tensor

import "fmt"

// Im2Col unrolls sliding convolution windows of a (C, H, W) image into a
// matrix of shape (outH*outW, C*kh*kw) so convolution reduces to a matrix
// multiply with the (outC, C*kh*kw) filter matrix. Stride is 1 and there
// is no padding, matching the paper's classifier (Table II).
//
// dst must have shape (outH*outW, C*kh*kw) where outH = H-kh+1 and
// outW = W-kw+1.
func Im2Col(dst, img *Tensor, kh, kw int) {
	if img.Rank() != 3 {
		panic("tensor: Im2Col requires a (C,H,W) image")
	}
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	outH, outW := h-kh+1, w-kw+1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col kernel (%d,%d) larger than image (%d,%d)", kh, kw, h, w))
	}
	cols := c * kh * kw
	if dst.Dim(0) != outH*outW || dst.Dim(1) != cols {
		panic(fmt.Sprintf("tensor: Im2Col dst shape %v, want (%d,%d)", dst.Shape(), outH*outW, cols))
	}
	im2colImage(dst.Data, img.Data, c, h, w, kh, kw)
}

// Im2ColBatch lowers an entire (B, C, H, W) batch into one
// (B*outH*outW, C*kh*kw) matrix: rows [i·outH·outW, (i+1)·outH·outW)
// hold image i's im2col rows. Convolving the whole batch then costs one
// large matrix multiply instead of B small ones.
func Im2ColBatch(dst, x *Tensor, kh, kw int) {
	if x.Rank() != 4 {
		panic("tensor: Im2ColBatch requires a (B,C,H,W) batch")
	}
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	outH, outW := h-kh+1, w-kw+1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: Im2ColBatch kernel (%d,%d) larger than image (%d,%d)", kh, kw, h, w))
	}
	cols := c * kh * kw
	if dst.Dim(0) != b*outH*outW || dst.Dim(1) != cols {
		panic(fmt.Sprintf("tensor: Im2ColBatch dst shape %v, want (%d,%d)", dst.Shape(), b*outH*outW, cols))
	}
	imgVol := c * h * w
	rowVol := outH * outW * cols
	for i := 0; i < b; i++ {
		im2colImage(dst.Data[i*rowVol:(i+1)*rowVol], x.Data[i*imgVol:(i+1)*imgVol], c, h, w, kh, kw)
	}
}

func im2colImage(dst, src []float32, c, h, w, kh, kw int) {
	outH, outW := h-kh+1, w-kw+1
	cols := c * kh * kw
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			row := dst[(oy*outW+ox)*cols:]
			idx := 0
			for ch := 0; ch < c; ch++ {
				base := ch * h * w
				for ky := 0; ky < kh; ky++ {
					srcRow := src[base+(oy+ky)*w+ox:]
					copy(row[idx:idx+kw], srcRow[:kw])
					idx += kw
				}
			}
		}
	}
}

// Col2Im scatters gradient columns back into an image gradient,
// accumulating where windows overlap. It is the adjoint of Im2Col: cols
// has shape (outH*outW, C*kh*kw) and dst has shape (C, H, W). dst is
// zeroed first.
func Col2Im(dst, cols *Tensor, kh, kw int) {
	if dst.Rank() != 3 {
		panic("tensor: Col2Im requires a (C,H,W) destination")
	}
	c, h, w := dst.Dim(0), dst.Dim(1), dst.Dim(2)
	outH, outW := h-kh+1, w-kw+1
	nCols := c * kh * kw
	if cols.Dim(0) != outH*outW || cols.Dim(1) != nCols {
		panic(fmt.Sprintf("tensor: Col2Im cols shape %v, want (%d,%d)", cols.Shape(), outH*outW, nCols))
	}
	dst.Zero()
	col2imImage(dst.Data, cols.Data, c, h, w, kh, kw)
}

// Col2ImBatch is the batched adjoint of Im2ColBatch: cols has shape
// (B*outH*outW, C*kh*kw) and dst has shape (B, C, H, W). dst is zeroed
// first.
func Col2ImBatch(dst, cols *Tensor, kh, kw int) {
	if dst.Rank() != 4 {
		panic("tensor: Col2ImBatch requires a (B,C,H,W) destination")
	}
	b, c, h, w := dst.Dim(0), dst.Dim(1), dst.Dim(2), dst.Dim(3)
	outH, outW := h-kh+1, w-kw+1
	nCols := c * kh * kw
	if cols.Dim(0) != b*outH*outW || cols.Dim(1) != nCols {
		panic(fmt.Sprintf("tensor: Col2ImBatch cols shape %v, want (%d,%d)", cols.Shape(), b*outH*outW, nCols))
	}
	dst.Zero()
	imgVol := c * h * w
	rowVol := outH * outW * nCols
	for i := 0; i < b; i++ {
		col2imImage(dst.Data[i*imgVol:(i+1)*imgVol], cols.Data[i*rowVol:(i+1)*rowVol], c, h, w, kh, kw)
	}
}

func col2imImage(dst, src []float32, c, h, w, kh, kw int) {
	outH, outW := h-kh+1, w-kw+1
	nCols := c * kh * kw
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			row := src[(oy*outW+ox)*nCols:]
			idx := 0
			for ch := 0; ch < c; ch++ {
				base := ch * h * w
				for ky := 0; ky < kh; ky++ {
					dstRow := dst[base+(oy+ky)*w+ox:]
					for kx := 0; kx < kw; kx++ {
						dstRow[kx] += row[idx]
						idx++
					}
				}
			}
		}
	}
}
