package tensor

import "fmt"

// Im2Col unrolls sliding convolution windows of a (C, H, W) image into a
// matrix of shape (outH*outW, C*kh*kw) so convolution reduces to a matrix
// multiply with the (outC, C*kh*kw) filter matrix. Stride is 1 and there
// is no padding, matching the paper's classifier (Table II).
//
// dst must have shape (outH*outW, C*kh*kw) where outH = H-kh+1 and
// outW = W-kw+1.
func Im2Col(dst, img *Tensor, kh, kw int) {
	if img.Rank() != 3 {
		panic("tensor: Im2Col requires a (C,H,W) image")
	}
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	outH, outW := h-kh+1, w-kw+1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col kernel (%d,%d) larger than image (%d,%d)", kh, kw, h, w))
	}
	cols := c * kh * kw
	if dst.Dim(0) != outH*outW || dst.Dim(1) != cols {
		panic(fmt.Sprintf("tensor: Im2Col dst shape %v, want (%d,%d)", dst.Shape(), outH*outW, cols))
	}
	d := dst.Data
	src := img.Data
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			row := d[(oy*outW+ox)*cols:]
			idx := 0
			for ch := 0; ch < c; ch++ {
				base := ch * h * w
				for ky := 0; ky < kh; ky++ {
					srcRow := src[base+(oy+ky)*w+ox:]
					copy(row[idx:idx+kw], srcRow[:kw])
					idx += kw
				}
			}
		}
	}
}

// Col2Im scatters gradient columns back into an image gradient,
// accumulating where windows overlap. It is the adjoint of Im2Col: cols
// has shape (outH*outW, C*kh*kw) and dst has shape (C, H, W). dst is
// zeroed first.
func Col2Im(dst, cols *Tensor, kh, kw int) {
	if dst.Rank() != 3 {
		panic("tensor: Col2Im requires a (C,H,W) destination")
	}
	c, h, w := dst.Dim(0), dst.Dim(1), dst.Dim(2)
	outH, outW := h-kh+1, w-kw+1
	nCols := c * kh * kw
	if cols.Dim(0) != outH*outW || cols.Dim(1) != nCols {
		panic(fmt.Sprintf("tensor: Col2Im cols shape %v, want (%d,%d)", cols.Shape(), outH*outW, nCols))
	}
	dst.Zero()
	d := dst.Data
	src := cols.Data
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			row := src[(oy*outW+ox)*nCols:]
			idx := 0
			for ch := 0; ch < c; ch++ {
				base := ch * h * w
				for ky := 0; ky < kh; ky++ {
					dstRow := d[base+(oy+ky)*w+ox:]
					for kx := 0; kx < kw; kx++ {
						dstRow[kx] += row[idx]
						idx++
					}
				}
			}
		}
	}
}
