package tensor

import (
	"fmt"
	"testing"

	"fedguard/internal/rng"
)

// naiveMatMul is the reference triple loop: each output element is one
// float32 accumulator updated in ascending-p order. The production
// kernels must match it bit-for-bit (see the summation-order contract in
// matmul.go).
func naiveMatMul(dst, a, b *Tensor) {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for p := 0; p < k; p++ {
				acc += a.Data[i*k+p] * b.Data[p*n+j]
			}
			dst.Data[i*n+j] = acc
		}
	}
}

func naiveMatMulT(dst, a, b *Tensor) {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(0)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for p := 0; p < k; p++ {
				acc += a.Data[i*k+p] * b.Data[j*k+p]
			}
			dst.Data[i*n+j] = acc
		}
	}
}

func naiveMatMulTA(dst, a, b *Tensor) {
	k, m, n := a.Dim(0), a.Dim(1), b.Dim(1)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for p := 0; p < k; p++ {
				acc += a.Data[p*m+i] * b.Data[p*n+j]
			}
			dst.Data[i*n+j] = acc
		}
	}
}

func requireBitEqual(t *testing.T, op string, got, want *Tensor) {
	t.Helper()
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d differs: got %v, want %v", op, i, got.Data[i], want.Data[i])
		}
	}
}

// TestKernelEquivalence drives the blocked kernels over randomized odd
// shapes (hitting every remainder path of the 4×4 tiles) at worker
// counts 1 (serial) and 4 (parallel) and demands exact float32 equality
// with the naive reference — same summation order, same bits.
func TestKernelEquivalence(t *testing.T) {
	defer SetWorkers(Workers())
	r := rng.New(0xb10cced)
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 7}, {4, 4, 4}, {5, 9, 6}, {8, 25, 32},
		{17, 33, 29}, {64, 64, 64}, {37, 100, 41}, {128, 31, 57},
	}
	for _, workers := range []int{1, 4} {
		SetWorkers(workers)
		for _, s := range shapes {
			m, k, n := s[0], s[1], s[2]
			t.Run(fmt.Sprintf("w%d_%dx%dx%d", workers, m, k, n), func(t *testing.T) {
				a := New(m, k)
				b := New(k, n)
				bt := New(n, k)
				at := New(k, m)
				r.FillNormal(a.Data, 0, 1)
				r.FillNormal(b.Data, 0, 1)
				r.FillNormal(bt.Data, 0, 1)
				r.FillNormal(at.Data, 0, 1)

				got, want := New(m, n), New(m, n)
				MatMul(got, a, b)
				naiveMatMul(want, a, b)
				requireBitEqual(t, "MatMul", got, want)

				MatMulT(got, a, bt)
				naiveMatMulT(want, a, bt)
				requireBitEqual(t, "MatMulT", got, want)

				MatMulTA(got, at, b)
				naiveMatMulTA(want, at, b)
				requireBitEqual(t, "MatMulTA", got, want)

				// Acc variants: dst + product must equal computing the
				// product separately and adding it with one addition per
				// element.
				init := New(m, n)
				r.FillNormal(init.Data, 0, 1)
				acc := init.Clone()
				MatMulTAAcc(acc, at, b)
				for i := range want.Data {
					want.Data[i] = init.Data[i] + want.Data[i]
				}
				requireBitEqual(t, "MatMulTAAcc", acc, want)

				naiveMatMul(want, a, b)
				acc = init.Clone()
				MatMulAcc(acc, a, b)
				for i := range want.Data {
					want.Data[i] = init.Data[i] + want.Data[i]
				}
				requireBitEqual(t, "MatMulAcc", acc, want)
			})
		}
	}
}

// TestKernelEquivalenceSparse repeats the comparison with heavily zeroed
// operands (the ReLU-sparse regime the seed kernels special-cased with a
// zero-skip). Bit-identity with the dense-order reference must hold.
func TestKernelEquivalenceSparse(t *testing.T) {
	r := rng.New(0x5a123)
	m, k, n := 23, 50, 19
	a := New(m, k)
	b := New(k, n)
	r.FillNormal(a.Data, 0, 1)
	r.FillNormal(b.Data, 0, 1)
	for i := range a.Data {
		if r.Float64() < 0.7 {
			a.Data[i] = 0
		}
	}
	for i := range b.Data {
		if r.Float64() < 0.5 {
			b.Data[i] = 0
		}
	}
	got, want := New(m, n), New(m, n)
	MatMul(got, a, b)
	naiveMatMul(want, a, b)
	requireBitEqual(t, "MatMul/sparse", got, want)
}

// TestMatMulTRankCheck pins the regression where MatMulT and MatMulTA
// accepted non-rank-2 arguments and died later with a confusing
// dimension error; they must reject them up front like MatMul does.
func TestMatMulTRankCheck(t *testing.T) {
	rank3 := New(2, 2, 2)
	mat := New(2, 2)
	cases := []struct {
		name string
		call func()
	}{
		{"MatMulT-a", func() { MatMulT(New(2, 2), rank3, mat) }},
		{"MatMulT-b", func() { MatMulT(New(2, 2), mat, rank3) }},
		{"MatMulT-dst", func() { MatMulT(rank3, mat, mat) }},
		{"MatMulTA-a", func() { MatMulTA(New(2, 2), rank3, mat) }},
		{"MatMulTA-b", func() { MatMulTA(New(2, 2), mat, rank3) }},
		{"MatMulTAAcc-a", func() { MatMulTAAcc(New(2, 2), rank3, mat) }},
		{"MatMulAcc-a", func() { MatMulAcc(New(2, 2), rank3, mat) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("expected a panic on a non-rank-2 argument")
				}
				msg, ok := r.(string)
				if !ok {
					t.Fatalf("panic value %v (%T), want a string message", r, r)
				}
				if want := "rank-2"; !contains(msg, want) {
					t.Fatalf("panic message %q does not mention %q", msg, want)
				}
			}()
			tc.call()
		})
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestEnsureReuse covers the scratch primitive: same shape returns the
// same tensor, a smaller shape reuses the backing array, a larger shape
// allocates.
func TestEnsureReuse(t *testing.T) {
	a := Ensure(nil, 4, 8)
	if a == nil || a.Len() != 32 {
		t.Fatalf("Ensure(nil) = %v", a)
	}
	b := Ensure(a, 4, 8)
	if b != a {
		t.Fatal("Ensure with identical shape must return the same tensor")
	}
	c := Ensure(a, 2, 6)
	if &c.Data[0] != &a.Data[0] {
		t.Fatal("Ensure with a smaller shape must reuse the backing array")
	}
	if c.Dim(0) != 2 || c.Dim(1) != 6 || c.Len() != 12 {
		t.Fatalf("Ensure reshape got %v", c.Shape())
	}
	d := Ensure(c, 100, 100)
	if d.Len() != 10000 {
		t.Fatalf("Ensure grow got %v", d.Shape())
	}
}

// TestBindView covers the zero-alloc view primitive.
func TestBindView(t *testing.T) {
	data := make([]float32, 24)
	for i := range data {
		data[i] = float32(i)
	}
	var v Tensor
	v.Bind(data[6:], 3, 4)
	if v.Len() != 12 || v.At(0, 0) != 6 {
		t.Fatalf("Bind view wrong: len %d, first %v", v.Len(), v.At(0, 0))
	}
	v.Data[0] = -1
	if data[6] != -1 {
		t.Fatal("Bind must alias the underlying data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Bind with short data must panic")
		}
	}()
	v.Bind(data[:3], 2, 2)
}

// TestIm2ColBatchMatchesPerImage pins the batched lowering against the
// per-image transform, and the batched scatter against per-image Col2Im.
func TestIm2ColBatchMatchesPerImage(t *testing.T) {
	r := rng.New(0xba7c4)
	bN, c, h, w, kh, kw := 3, 2, 9, 8, 3, 3
	outH, outW := h-kh+1, w-kw+1
	fanIn := c * kh * kw
	x := New(bN, c, h, w)
	r.FillNormal(x.Data, 0, 1)

	batched := New(bN*outH*outW, fanIn)
	Im2ColBatch(batched, x, kh, kw)
	imgVol := c * h * w
	for i := 0; i < bN; i++ {
		var img Tensor
		img.Bind(x.Data[i*imgVol:], c, h, w)
		single := New(outH*outW, fanIn)
		Im2Col(single, &img, kh, kw)
		for j, v := range single.Data {
			if got := batched.Data[i*outH*outW*fanIn+j]; got != v {
				t.Fatalf("image %d element %d: batched %v, per-image %v", i, j, got, v)
			}
		}
	}

	cols := New(bN*outH*outW, fanIn)
	r.FillNormal(cols.Data, 0, 1)
	dxBatched := New(bN, c, h, w)
	Col2ImBatch(dxBatched, cols, kh, kw)
	for i := 0; i < bN; i++ {
		var sub Tensor
		sub.Bind(cols.Data[i*outH*outW*fanIn:], outH*outW, fanIn)
		single := New(c, h, w)
		Col2Im(single, &sub, kh, kw)
		for j, v := range single.Data {
			if got := dxBatched.Data[i*imgVol+j]; got != v {
				t.Fatalf("image %d grad element %d: batched %v, per-image %v", i, j, got, v)
			}
		}
	}
}
