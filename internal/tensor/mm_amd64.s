//go:build amd64 && !purego

#include "textflag.h"

// func hasAVX() bool
//
// CPUID.1:ECX bit 28 (AVX) and bit 27 (OSXSAVE), then XGETBV to confirm
// the OS context-switches XMM+YMM state (XCR0 bits 1 and 2).
TEXT ·hasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	ANDL $0x18000000, CX
	CMPL CX, $0x18000000
	JNE  noavx
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET

noavx:
	MOVB $0, ret+0(FP)
	RET

// func mmRowAVX(dst, a, b *float32, astride, k, n, j8, acc int)
//
// dst[j] (+)= sum over p in [0,k) of a[p*astride] * b[p*n+j], for
// j in [0, j8), j8 a multiple of 8. Column lanes are independent YMM
// lanes, each accumulating in ascending-p order from +0 with separate
// VMULPS/VADDPS (no FMA), then stored (acc=0) or added to dst once
// (acc=1) — bit-identical to the scalar kernels. Zero a-elements skip
// the whole rank-1 update (exact for finite data; see matmul.go).
//
// Register use:
//	DI dst base   SI a base      BX b base
//	R8 astride*4  R9 k           R10 n*4 (b row stride)
//	R11 j8*4      R12 acc flag   R13 j byte offset
//	DX a cursor   CX b cursor    R15 p countdown   AX dst block addr
//	X15 zero (compare)  Y0-Y3 accumulators  X4/Y4 a element  Y5 b row
TEXT ·mmRowAVX(SB), NOSPLIT, $0-64
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ astride+24(FP), R8
	MOVQ k+32(FP), R9
	MOVQ n+40(FP), R10
	MOVQ j8+48(FP), R11
	MOVQ acc+56(FP), R12
	SHLQ $2, R8
	SHLQ $2, R10
	SHLQ $2, R11
	VXORPS X15, X15, X15

	XORQ R13, R13

jloop:
	MOVQ R11, R14
	SUBQ R13, R14
	CMPQ R14, $128
	JGE  block32
	CMPQ R14, $32
	JGE  block8
	VZEROUPPER
	RET

// 32 columns per pass: four YMM accumulators amortize the scalar
// a-element load/test/broadcast over 32 multiply-adds.
block32:
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ SI, DX
	LEAQ (BX)(R13*1), CX
	MOVQ R9, R15

p32:
	// VEX-encoded scalar load: legacy MOVSS here would merge into X4's
	// dirty YMM upper half and serialize the loop on that false
	// dependency (SSE/AVX transition penalty).
	VMOVSS   (DX), X4
	VUCOMISS X15, X4
	JE       p32next
	VBROADCASTSS (DX), Y4
	VMOVUPS  (CX), Y5
	VMULPS   Y4, Y5, Y5
	VADDPS   Y5, Y0, Y0
	VMOVUPS  32(CX), Y5
	VMULPS   Y4, Y5, Y5
	VADDPS   Y5, Y1, Y1
	VMOVUPS  64(CX), Y5
	VMULPS   Y4, Y5, Y5
	VADDPS   Y5, Y2, Y2
	VMOVUPS  96(CX), Y5
	VMULPS   Y4, Y5, Y5
	VADDPS   Y5, Y3, Y3

p32next:
	ADDQ R8, DX
	ADDQ R10, CX
	DECQ R15
	JNZ  p32

	LEAQ  (DI)(R13*1), AX
	TESTQ R12, R12
	JZ    store32
	VADDPS (AX), Y0, Y0
	VADDPS 32(AX), Y1, Y1
	VADDPS 64(AX), Y2, Y2
	VADDPS 96(AX), Y3, Y3

store32:
	VMOVUPS Y0, (AX)
	VMOVUPS Y1, 32(AX)
	VMOVUPS Y2, 64(AX)
	VMOVUPS Y3, 96(AX)
	ADDQ $128, R13
	JMP  jloop

// 8-column tail blocks.
block8:
	VXORPS Y0, Y0, Y0
	MOVQ SI, DX
	LEAQ (BX)(R13*1), CX
	MOVQ R9, R15

p8:
	VMOVSS   (DX), X4
	VUCOMISS X15, X4
	JE       p8next
	VBROADCASTSS (DX), Y4
	VMOVUPS  (CX), Y5
	VMULPS   Y4, Y5, Y5
	VADDPS   Y5, Y0, Y0

p8next:
	ADDQ R8, DX
	ADDQ R10, CX
	DECQ R15
	JNZ  p8

	LEAQ  (DI)(R13*1), AX
	TESTQ R12, R12
	JZ    store8
	VADDPS (AX), Y0, Y0

store8:
	VMOVUPS Y0, (AX)
	ADDQ $32, R13
	JMP  jloop
