//go:build amd64 && !purego

package tensor

// hasAVX reports whether the CPU and OS support AVX (CPUID feature bits
// plus XGETBV confirmation that the OS preserves YMM state).
func hasAVX() bool

// mmRowAVX computes one output row of an a@b-shaped product with 8-wide
// AVX lanes over the columns:
//
//	dst[j] (+)= Σ_p a[p*astride] * b[p*n+j]   for j in [0, j8)
//
// for p in [0, k) ascending. Each column j owns one vector lane, so its
// sum is formed in ascending-p order from +0 and written (acc=0) or
// added to dst once (acc=1) — exactly the summation-order contract the
// scalar kernels follow, making the vector and scalar paths
// bit-identical (VMULPS/VADDPS round per operation like MULSS/ADDSS; no
// FMA). Zero a-elements are skipped (exact, see the contract). j8 must
// be a multiple of 8 and ≤ n; the caller handles columns [j8, n).
//
//go:noescape
func mmRowAVX(dst, a, b *float32, astride, k, n, j8, acc int)

// useAVX gates the vector row kernels; resolved once at startup.
var useAVX = hasAVX()
