//go:build amd64 && !purego

package tensor

// distSq16AVX returns Σ (a[i]-b[i])² for i in [0, n), n a positive
// multiple of 16, converting float32 inputs to float64 and accumulating
// in four 4-wide YMM double lanes (lane l holds Σ over i ≡ l mod 16).
// The horizontal reduction is the fixed tree combine16 implements, and
// every operation rounds individually (VSUBPD/VMULPD/VADDPD, no FMA) —
// bit-identical to distSq16Go.
//
//go:noescape
func distSq16AVX(a, b *float32, n int) float64

// distSqMixed16AVX is distSq16AVX with a float64 left operand (loaded
// directly, not converted). Bit-identical to distSqMixed16Go.
//
//go:noescape
func distSqMixed16AVX(a *float64, b *float32, n int) float64
