package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randVec32(r *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(r.NormFloat64())
	}
	return v
}

// naiveDistSq is the reference serial left-to-right sum the blocked
// kernels should approximate (not match bitwise — the blocked order is
// canonical now).
func naiveDistSq(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

func TestDistSqBlockedMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 15, 16, 17, 100, ReduceBlock - 1, ReduceBlock, ReduceBlock + 5, 3*ReduceBlock + 7} {
		a, b := randVec32(r, n), randVec32(r, n)
		got := DistSqBlocked(a, b)
		want := naiveDistSq(a, b)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("n=%d: DistSqBlocked=%g, naive=%g", n, got, want)
		}
	}
}

// TestDistSqAVXMatchesGo pins the bit-identity contract between the
// assembly kernel and its pure-Go mirror. On builds without AVX both
// sides run the Go path and the test is vacuously true.
func TestDistSqAVXMatchesGo(t *testing.T) {
	if !useAVX {
		t.Skip("no AVX on this build")
	}
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{16, 32, 48, 256, 2048} {
		a, b := randVec32(r, n), randVec32(r, n)
		asm := distSq16AVX(&a[0], &b[0], n)
		pure := distSq16Go(a, b)
		if asm != pure {
			t.Errorf("n=%d: distSq16AVX=%x, distSq16Go=%x (must be bit-identical)", n, asm, pure)
		}
		a64 := make([]float64, n)
		for i, v := range a {
			a64[i] = float64(v) * 1.5
		}
		masm := distSqMixed16AVX(&a64[0], &b[0], n)
		mpure := distSqMixed16Go(a64, b)
		if masm != mpure {
			t.Errorf("n=%d: distSqMixed16AVX=%x, distSqMixed16Go=%x", n, masm, mpure)
		}
	}
}

func TestPairwiseDistSqSymmetricAndDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const n, dim = 9, 3*ReduceBlock + 13
	vecs := make([][]float32, n)
	for i := range vecs {
		vecs[i] = randVec32(r, dim)
	}
	ref := make([]float64, n*n)
	defer SetAggWorkers(0)
	for _, w := range []int{1, 4, 64} {
		SetAggWorkers(w)
		dst := make([]float64, n*n)
		PairwiseDistSq(dst, vecs)
		for i := 0; i < n; i++ {
			if dst[i*n+i] != 0 {
				t.Fatalf("workers=%d: diagonal [%d] = %g", w, i, dst[i*n+i])
			}
			for j := 0; j < n; j++ {
				if dst[i*n+j] != dst[j*n+i] {
					t.Fatalf("workers=%d: asymmetry at (%d,%d)", w, i, j)
				}
				if want := DistSqBlocked(vecs[i], vecs[j]); i != j && dst[i*n+j] != want {
					t.Fatalf("workers=%d: (%d,%d) = %x, DistSqBlocked = %x", w, i, j, dst[i*n+j], want)
				}
			}
		}
		if w == 1 {
			copy(ref, dst)
		} else {
			for k := range dst {
				if dst[k] != ref[k] {
					t.Fatalf("workers=%d: entry %d differs from workers=1 (must be bit-identical)", w, k)
				}
			}
		}
	}
}

func TestWeightedSumIntoDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const m, dim = 7, ReduceBlock + 31
	rows := make([][]float32, m)
	for i := range rows {
		rows[i] = randVec32(r, dim)
	}
	w := make([]float64, m)
	for i := range w {
		w[i] = r.Float64() * 10
	}
	w[2] = 0 // zero weights must not be skipped
	ref := make([]float64, dim)
	defer SetAggWorkers(0)
	for _, workers := range []int{1, 4, 64} {
		SetAggWorkers(workers)
		dst := make([]float64, dim)
		WeightedSumInto(dst, rows, w)
		if workers == 1 {
			copy(ref, dst)
			// spot-check against a naive sum
			for _, i := range []int{0, dim / 2, dim - 1} {
				var want float64
				for j := range rows {
					want += w[j] * float64(rows[j][i])
				}
				if math.Abs(dst[i]-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("coord %d: got %g want %g", i, dst[i], want)
				}
			}
		} else {
			for i := range dst {
				if dst[i] != ref[i] {
					t.Fatalf("workers=%d: coord %d differs from workers=1", workers, i)
				}
			}
		}
	}
}

func TestSumSqAndMixedBlocked(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randVec32(r, ReduceBlock+100)
	var want float64
	for _, v := range a {
		want += float64(v) * float64(v)
	}
	if got := SumSqBlocked(a); math.Abs(got-want) > 1e-9*(1+want) {
		t.Errorf("SumSqBlocked=%g want %g", got, want)
	}
	a64 := make([]float64, len(a))
	b := randVec32(r, len(a))
	for i, v := range a {
		a64[i] = float64(v)
	}
	if got, want := DistSqMixedBlocked(a64, b), DistSqBlocked(a, b); math.Abs(got-want) > 1e-9*(1+want) {
		t.Errorf("DistSqMixedBlocked=%g, DistSqBlocked=%g", got, want)
	}
}

func TestLerpScaleKernels(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	const dim = ReduceBlock + 9
	a, b := randVec32(r, dim), randVec32(r, dim)
	dst := make([]float32, dim)
	LerpInto(dst, a, b, 0.3)
	for i := range dst {
		if want := a[i] + 0.3*(b[i]-a[i]); dst[i] != want {
			t.Fatalf("LerpInto[%d] = %g want %g", i, dst[i], want)
		}
	}
	LerpInto(dst, dst, b, 0) // aliasing, t=0 keeps a
	src := make([]float64, dim)
	for i := range src {
		src[i] = float64(a[i]) * 2
	}
	ScaleF64To32(dst, src, 0.5)
	for i := range dst {
		if want := float32(src[i] * 0.5); dst[i] != want {
			t.Fatalf("ScaleF64To32[%d] = %g want %g", i, dst[i], want)
		}
	}
	out := make([]float32, dim)
	ScaleInto(out, a, 2)
	for i := range out {
		if want := a[i] * 2; out[i] != want {
			t.Fatalf("ScaleInto[%d] = %g want %g", i, out[i], want)
		}
	}
}

func TestDistSqManyInto(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const m, dim = 5, 1000
	rows := make([][]float32, m)
	for i := range rows {
		rows[i] = randVec32(r, dim)
	}
	cur := make([]float64, dim)
	for i := range cur {
		cur[i] = r.NormFloat64()
	}
	got := make([]float64, m)
	DistSqManyInto(got, cur, rows)
	for j := range rows {
		if want := DistSqMixedBlocked(cur, rows[j]); got[j] != want {
			t.Errorf("row %d: got %x want %x", j, got[j], want)
		}
	}
}

func BenchmarkDistSqBlocked(b *testing.B) {
	r := rand.New(rand.NewSource(8))
	const dim = 20490
	x, y := randVec32(r, dim), randVec32(r, dim)
	b.SetBytes(2 * 4 * dim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DistSqBlocked(x, y)
	}
}
