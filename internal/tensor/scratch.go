package tensor

import "sync"

// Pooled flat scratch for the reduction kernels and their callers. The
// aggregation operators need per-round float64 accumulators and distance
// matrices at model dimension; allocating them fresh every round churned
// hundreds of kilobytes per aggregation. The pools hand back whatever
// capacity was last released, growing monotonically to the largest
// request, so a steady-state federation round allocates nothing here.
//
// Contents of a Get slice are unspecified — callers that need zeros must
// clear it (the kernels that write-before-read, like WeightedSumInto,
// don't need to).

var (
	f64Pool = sync.Pool{New: func() any { return new([]float64) }}
	f32Pool = sync.Pool{New: func() any { return new([]float32) }}
)

// GetF64 returns a pooled []float64 of length n with arbitrary contents.
func GetF64(n int) []float64 {
	p := f64Pool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	return (*p)[:n]
}

// PutF64 releases a slice obtained from GetF64. The caller must not use
// it afterwards.
func PutF64(s []float64) {
	f64Pool.Put(&s)
}

// GetF32 returns a pooled []float32 of length n with arbitrary contents.
func GetF32(n int) []float32 {
	p := f32Pool.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	return (*p)[:n]
}

// PutF32 releases a slice obtained from GetF32.
func PutF32(s []float32) {
	f32Pool.Put(&s)
}
