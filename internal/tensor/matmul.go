package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the number of multiply-accumulate operations below
// which MatMul runs single-threaded; spawning goroutines for tiny
// products costs more than it saves.
const parallelThreshold = 1 << 16

// MatMul computes dst = a @ b for 2-D tensors, where a is (m,k) and b is
// (k,n). dst must be (m,n) and must not alias a or b. Large products are
// split row-wise across GOMAXPROCS goroutines.
func MatMul(dst, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch: (%d,%d)@(%d,%d)", m, k, k2, n))
	}
	if dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMul dst shape %v, want (%d,%d)", dst.shape, m, n))
	}

	work := m * n * k
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || workers < 2 || m < 2 {
		matmulRows(dst.Data, a.Data, b.Data, 0, m, k, n)
		return
	}
	if workers > m {
		workers = m
	}
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulRows(dst.Data, a.Data, b.Data, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// matmulRows computes rows [lo,hi) of dst = a @ b using an ikj loop order
// so the inner loop streams both b and dst rows sequentially (cache- and
// bounds-check-friendly).
func matmulRows(dst, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		di := dst[i*n : i*n+n]
		for x := range di {
			di[x] = 0
		}
		ai := a[i*k : i*k+k]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			bp := b[p*n : p*n+n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}

// MatMulT computes dst = a @ bᵀ, where a is (m,k) and b is (n,k). This is
// the backward-pass primitive for linear layers and avoids materializing
// the transpose.
func MatMulT(dst, a, b *Tensor) {
	m, k := a.Dim(0), a.Dim(1)
	n, k2 := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT inner dimension mismatch: (%d,%d)@(%d,%d)T", m, k, n, k2))
	}
	if dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulT dst shape %v, want (%d,%d)", dst.shape, m, n))
	}
	work := m * n * k
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || workers < 2 || m < 2 {
		matmulTRows(dst.Data, a.Data, b.Data, 0, m, k, n)
		return
	}
	if workers > m {
		workers = m
	}
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulTRows(dst.Data, a.Data, b.Data, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

func matmulTRows(dst, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ai := a[i*k : i*k+k]
		di := dst[i*n : i*n+n]
		for j := 0; j < n; j++ {
			bj := b[j*k : j*k+k]
			var acc float32
			for p := range ai {
				acc += ai[p] * bj[p]
			}
			di[j] = acc
		}
	}
}

// MatMulTA computes dst = aᵀ @ b, where a is (k,m) and b is (k,n). This is
// the weight-gradient primitive: dW = xᵀ @ dy.
func MatMulTA(dst, a, b *Tensor) {
	k, m := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTA inner dimension mismatch: (%d,%d)T@(%d,%d)", k, m, k2, n))
	}
	if dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulTA dst shape %v, want (%d,%d)", dst.shape, m, n))
	}
	// dst[i][j] = sum_p a[p][i] * b[p][j]. Accumulate row-of-b into rows of
	// dst selected by a's row, streaming both.
	dst.Zero()
	work := m * n * k
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || workers < 2 || m < 2 {
		matmulTARows(dst.Data, a.Data, b.Data, 0, m, k, n)
		return
	}
	if workers > m {
		workers = m
	}
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulTARows(dst.Data, a.Data, b.Data, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// matmulTARows computes rows [lo,hi) of dst = aᵀ@b: for each p,
// dst[i] += a[p*m+i] * b[p]. Row-parallel over i means each goroutine
// reads all of a and b but writes only its own dst rows — race-free.
func matmulTARows(dst, a, b []float32, lo, hi, k, n int) {
	m := len(dst) / n
	for i := lo; i < hi; i++ {
		di := dst[i*n : i*n+n]
		for p := 0; p < k; p++ {
			av := a[p*m+i]
			if av == 0 {
				continue
			}
			bp := b[p*n : p*n+n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}
