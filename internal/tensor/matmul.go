package tensor

import "fmt"

// parallelThreshold is the number of multiply-accumulate operations below
// which the matmul kernels run single-threaded; dispatching pool tasks
// for tiny products costs more than it saves.
const parallelThreshold = 1 << 16

// Summation-order contract: every kernel in this file computes each
// output element as a single float32 accumulator updated in ascending
// inner-index (p) order, starting from +0. Register tiling and row
// partitioning change *which* elements are computed together, never the
// per-element order of additions, so serial, parallel, and blocked
// execution produce bit-identical results — the property the FedGuard
// determinism contract (same seed → same FinalWeights) rests on.
//
// Zero-skip is part of the same contract: a zero operand contributes
// ±0, and an accumulator that starts at +0 and only ever adds values
// can never become -0 under round-to-nearest, so x + (±0) == x bitwise
// and skipping the term is exact. This holds for finite data only
// (0·Inf is NaN); the training pipeline never feeds non-finite values.

// HasVectorKernels reports whether the row kernels run on the SIMD path
// (AVX on amd64). The vector kernels cover the a@b and aᵀ@b forms but
// not the dot-product-shaped a@bᵀ, so layers use this to decide whether
// maintaining a transposed-weight scratch — turning MatMulT into the
// vector-friendly MatMul — pays for itself.
func HasVectorKernels() bool { return useAVX }

// MatMul computes dst = a @ b for 2-D tensors, where a is (m,k) and b is
// (k,n). dst must be (m,n) and must not alias a or b. Large products are
// split row-wise across the persistent kernel pool (see pool.go).
func MatMul(dst, a, b *Tensor) {
	matmulDispatch(dst, a, b, false)
}

// MatMulAcc computes dst += a @ b with the same shapes as MatMul. Each
// output element's k-term sum is formed in a register in ascending-p
// order and added to dst once, so the result is bit-identical to
// computing a@b separately and adding it. It is the per-image filter
// gradient primitive (dW += gradᵢ @ colsᵢ).
func MatMulAcc(dst, a, b *Tensor) {
	matmulDispatch(dst, a, b, true)
}

func matmulDispatch(dst, a, b *Tensor, acc bool) {
	op := "MatMul"
	if acc {
		op = "MatMulAcc"
	}
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic("tensor: " + op + " requires rank-2 tensors")
	}
	m, k := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch: (%d,%d)@(%d,%d)", op, m, k, k2, n))
	}
	if dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: %s dst shape %v, want (%d,%d)", op, dst.shape, m, n))
	}
	if m*n*k < parallelThreshold {
		matmulRows(dst.Data, a.Data, b.Data, 0, m, k, n, acc)
		return
	}
	parallelRows(m, matmulKernel, kernelArgs{dst: dst.Data, a: a.Data, b: b.Data, k: k, n: n, acc: acc})
}

func matmulKernel(g kernelArgs, lo, hi int) { matmulRows(g.dst, g.a, g.b, lo, hi, g.k, g.n, g.acc) }

// matmulRows computes rows [lo,hi) of dst = a @ b with a register-tiled
// 4×4 micro-kernel: four rows of a against four columns of b accumulate
// into sixteen registers while the shared operands stay in registers,
// with the unrolled inner loop streaming b row-by-row (cache-friendly
// for row-major b). When acc is true each register sum is added to dst
// instead of stored.
func matmulRows(dst, a, b []float32, lo, hi, k, n int, acc bool) {
	if useAVX && n >= 8 && hi > lo {
		j8 := n &^ 7
		accFlag := 0
		if acc {
			accFlag = 1
		}
		for i := lo; i < hi; i++ {
			ai := a[i*k : i*k+k]
			di := dst[i*n : i*n+n]
			mmRowAVX(&di[0], &ai[0], &b[0], 1, k, n, j8, accFlag)
			for j := j8; j < n; j++ {
				var c float32
				for p, av := range ai {
					if av != 0 {
						c += av * b[p*n+j]
					}
				}
				if acc {
					di[j] += c
				} else {
					di[j] = c
				}
			}
		}
		return
	}
	i := lo
	for ; i+4 <= hi; i += 4 {
		a0 := a[(i+0)*k : (i+0)*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k]
		a2 := a[(i+2)*k : (i+2)*k+k]
		a3 := a[(i+3)*k : (i+3)*k+k]
		d0 := dst[(i+0)*n : (i+0)*n+n]
		d1 := dst[(i+1)*n : (i+1)*n+n]
		d2 := dst[(i+2)*n : (i+2)*n+n]
		d3 := dst[(i+3)*n : (i+3)*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			var c00, c01, c02, c03 float32
			var c10, c11, c12, c13 float32
			var c20, c21, c22, c23 float32
			var c30, c31, c32, c33 float32
			for p := 0; p < k; p++ {
				bp := b[p*n+j : p*n+j+4]
				b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
				// Zero-skip: gradients arriving through pool/ReLU backward
				// are mostly zeros, and a zero a-element contributes ±0 —
				// which cannot change a +0-started accumulator — so the
				// skip is bit-exact for finite data and skips 4 FMAs.
				if av := a0[p]; av != 0 {
					c00 += av * b0
					c01 += av * b1
					c02 += av * b2
					c03 += av * b3
				}
				if av := a1[p]; av != 0 {
					c10 += av * b0
					c11 += av * b1
					c12 += av * b2
					c13 += av * b3
				}
				if av := a2[p]; av != 0 {
					c20 += av * b0
					c21 += av * b1
					c22 += av * b2
					c23 += av * b3
				}
				if av := a3[p]; av != 0 {
					c30 += av * b0
					c31 += av * b1
					c32 += av * b2
					c33 += av * b3
				}
			}
			if acc {
				d0[j] += c00
				d0[j+1] += c01
				d0[j+2] += c02
				d0[j+3] += c03
				d1[j] += c10
				d1[j+1] += c11
				d1[j+2] += c12
				d1[j+3] += c13
				d2[j] += c20
				d2[j+1] += c21
				d2[j+2] += c22
				d2[j+3] += c23
				d3[j] += c30
				d3[j+1] += c31
				d3[j+2] += c32
				d3[j+3] += c33
			} else {
				d0[j], d0[j+1], d0[j+2], d0[j+3] = c00, c01, c02, c03
				d1[j], d1[j+1], d1[j+2], d1[j+3] = c10, c11, c12, c13
				d2[j], d2[j+1], d2[j+2], d2[j+3] = c20, c21, c22, c23
				d3[j], d3[j+1], d3[j+2], d3[j+3] = c30, c31, c32, c33
			}
		}
		for ; j < n; j++ {
			var c0, c1, c2, c3 float32
			for p := 0; p < k; p++ {
				bv := b[p*n+j]
				c0 += a0[p] * bv
				c1 += a1[p] * bv
				c2 += a2[p] * bv
				c3 += a3[p] * bv
			}
			if acc {
				d0[j] += c0
				d1[j] += c1
				d2[j] += c2
				d3[j] += c3
			} else {
				d0[j], d1[j], d2[j], d3[j] = c0, c1, c2, c3
			}
		}
	}
	for ; i < hi; i++ {
		ai := a[i*k : i*k+k]
		di := dst[i*n : i*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			var c0, c1, c2, c3 float32
			for p, av := range ai {
				if av == 0 {
					continue
				}
				bp := b[p*n+j : p*n+j+4]
				c0 += av * bp[0]
				c1 += av * bp[1]
				c2 += av * bp[2]
				c3 += av * bp[3]
			}
			if acc {
				di[j] += c0
				di[j+1] += c1
				di[j+2] += c2
				di[j+3] += c3
			} else {
				di[j], di[j+1], di[j+2], di[j+3] = c0, c1, c2, c3
			}
		}
		for ; j < n; j++ {
			var c float32
			for p, av := range ai {
				if av == 0 {
					continue
				}
				c += av * b[p*n+j]
			}
			if acc {
				di[j] += c
			} else {
				di[j] = c
			}
		}
	}
}

// MatMulT computes dst = a @ bᵀ, where a is (m,k) and b is (n,k). This is
// the forward primitive for linear layers (and the batched conv lowering)
// and avoids materializing the transpose.
func MatMulT(dst, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic("tensor: MatMulT requires rank-2 tensors")
	}
	m, k := a.Dim(0), a.Dim(1)
	n, k2 := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT inner dimension mismatch: (%d,%d)@(%d,%d)T", m, k, n, k2))
	}
	if dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulT dst shape %v, want (%d,%d)", dst.shape, m, n))
	}
	if m*n*k < parallelThreshold {
		matmulTRows(dst.Data, a.Data, b.Data, 0, m, k, n)
		return
	}
	parallelRows(m, matmulTKernel, kernelArgs{dst: dst.Data, a: a.Data, b: b.Data, k: k, n: n})
}

func matmulTKernel(g kernelArgs, lo, hi int) { matmulTRows(g.dst, g.a, g.b, lo, hi, g.k, g.n) }

// matmulTRows computes rows [lo,hi) of dst = a @ bᵀ with a 4×4 tile of
// simultaneous dot products: both operands stream sequentially, and each
// pass over p fills sixteen accumulators.
func matmulTRows(dst, a, b []float32, lo, hi, k, n int) {
	i := lo
	for ; i+4 <= hi; i += 4 {
		a0 := a[(i+0)*k : (i+0)*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k]
		a2 := a[(i+2)*k : (i+2)*k+k]
		a3 := a[(i+3)*k : (i+3)*k+k]
		d0 := dst[(i+0)*n : (i+0)*n+n]
		d1 := dst[(i+1)*n : (i+1)*n+n]
		d2 := dst[(i+2)*n : (i+2)*n+n]
		d3 := dst[(i+3)*n : (i+3)*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[(j+0)*k : (j+0)*k+k]
			b1 := b[(j+1)*k : (j+1)*k+k]
			b2 := b[(j+2)*k : (j+2)*k+k]
			b3 := b[(j+3)*k : (j+3)*k+k]
			var c00, c01, c02, c03 float32
			var c10, c11, c12, c13 float32
			var c20, c21, c22, c23 float32
			var c30, c31, c32, c33 float32
			// No zero-skip here: forward activations are only ~50% sparse
			// with an unpredictable pattern, and the mispredicted branches
			// cost more than the skipped FMAs (measured; unlike the
			// backward gradient matrices, which are >85% zeros).
			for p := 0; p < k; p++ {
				bv0, bv1, bv2, bv3 := b0[p], b1[p], b2[p], b3[p]
				av := a0[p]
				c00 += av * bv0
				c01 += av * bv1
				c02 += av * bv2
				c03 += av * bv3
				av = a1[p]
				c10 += av * bv0
				c11 += av * bv1
				c12 += av * bv2
				c13 += av * bv3
				av = a2[p]
				c20 += av * bv0
				c21 += av * bv1
				c22 += av * bv2
				c23 += av * bv3
				av = a3[p]
				c30 += av * bv0
				c31 += av * bv1
				c32 += av * bv2
				c33 += av * bv3
			}
			d0[j], d0[j+1], d0[j+2], d0[j+3] = c00, c01, c02, c03
			d1[j], d1[j+1], d1[j+2], d1[j+3] = c10, c11, c12, c13
			d2[j], d2[j+1], d2[j+2], d2[j+3] = c20, c21, c22, c23
			d3[j], d3[j+1], d3[j+2], d3[j+3] = c30, c31, c32, c33
		}
		for ; j < n; j++ {
			bj := b[j*k : j*k+k]
			var c0, c1, c2, c3 float32
			for p, bv := range bj {
				c0 += a0[p] * bv
				c1 += a1[p] * bv
				c2 += a2[p] * bv
				c3 += a3[p] * bv
			}
			d0[j], d1[j], d2[j], d3[j] = c0, c1, c2, c3
		}
	}
	for ; i < hi; i++ {
		ai := a[i*k : i*k+k]
		di := dst[i*n : i*n+n]
		for j := 0; j < n; j++ {
			bj := b[j*k : j*k+k]
			var acc float32
			for p := range ai {
				acc += ai[p] * bj[p]
			}
			di[j] = acc
		}
	}
}

// MatMulTA computes dst = aᵀ @ b, where a is (k,m) and b is (k,n). This is
// the weight-gradient primitive: dW = xᵀ @ dy.
func MatMulTA(dst, a, b *Tensor) {
	matmulTADispatch(dst, a, b, false)
}

// MatMulTAAcc computes dst += aᵀ @ b with the same shapes as MatMulTA.
// It is the in-place gradient accumulator (dW += xᵀ @ dy) and replaces
// the scratch-tensor-plus-AXPY pattern: each output element's k-term sum
// is formed in a register in ascending-p order and added to dst once,
// which is bit-identical to computing aᵀ@b separately and adding it.
func MatMulTAAcc(dst, a, b *Tensor) {
	matmulTADispatch(dst, a, b, true)
}

func matmulTADispatch(dst, a, b *Tensor, acc bool) {
	op := "MatMulTA"
	if acc {
		op = "MatMulTAAcc"
	}
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic("tensor: " + op + " requires rank-2 tensors")
	}
	k, m := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch: (%d,%d)T@(%d,%d)", op, k, m, k2, n))
	}
	if dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: %s dst shape %v, want (%d,%d)", op, dst.shape, m, n))
	}
	if m*n*k < parallelThreshold {
		matmulTARows(dst.Data, a.Data, b.Data, 0, m, k, n, m, acc)
		return
	}
	parallelRows(m, matmulTAKernel, kernelArgs{dst: dst.Data, a: a.Data, b: b.Data, k: k, n: n, m: m, acc: acc})
}

func matmulTAKernel(g kernelArgs, lo, hi int) {
	matmulTARows(g.dst, g.a, g.b, lo, hi, g.k, g.n, g.m, g.acc)
}

// matmulTARows computes rows [lo,hi) of aᵀ @ b (dst[i][j] = Σ_p
// a[p*m+i]·b[p*n+j]) with a 4×4 register tile; when acc is true the tile
// is added to dst instead of stored. Row-parallel over i: each goroutine
// writes only its own dst rows — race-free.
func matmulTARows(dst, a, b []float32, lo, hi, k, n, m int, acc bool) {
	if useAVX && n >= 8 && hi > lo {
		j8 := n &^ 7
		accFlag := 0
		if acc {
			accFlag = 1
		}
		for i := lo; i < hi; i++ {
			di := dst[i*n : i*n+n]
			mmRowAVX(&di[0], &a[i], &b[0], m, k, n, j8, accFlag)
			for j := j8; j < n; j++ {
				var c float32
				for p := 0; p < k; p++ {
					if av := a[p*m+i]; av != 0 {
						c += av * b[p*n+j]
					}
				}
				if acc {
					di[j] += c
				} else {
					di[j] = c
				}
			}
		}
		return
	}
	i := lo
	for ; i+4 <= hi; i += 4 {
		d0 := dst[(i+0)*n : (i+0)*n+n]
		d1 := dst[(i+1)*n : (i+1)*n+n]
		d2 := dst[(i+2)*n : (i+2)*n+n]
		d3 := dst[(i+3)*n : (i+3)*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			var c00, c01, c02, c03 float32
			var c10, c11, c12, c13 float32
			var c20, c21, c22, c23 float32
			var c30, c31, c32, c33 float32
			for p := 0; p < k; p++ {
				ap := a[p*m+i : p*m+i+4]
				bp := b[p*n+j : p*n+j+4]
				b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
				// Zero-skip on the gradient operand (see matmulRows):
				// bit-exact for finite data, and dW accumulation feeds on
				// the sparsest matrices in the whole backward pass.
				if av := ap[0]; av != 0 {
					c00 += av * b0
					c01 += av * b1
					c02 += av * b2
					c03 += av * b3
				}
				if av := ap[1]; av != 0 {
					c10 += av * b0
					c11 += av * b1
					c12 += av * b2
					c13 += av * b3
				}
				if av := ap[2]; av != 0 {
					c20 += av * b0
					c21 += av * b1
					c22 += av * b2
					c23 += av * b3
				}
				if av := ap[3]; av != 0 {
					c30 += av * b0
					c31 += av * b1
					c32 += av * b2
					c33 += av * b3
				}
			}
			if acc {
				d0[j] += c00
				d0[j+1] += c01
				d0[j+2] += c02
				d0[j+3] += c03
				d1[j] += c10
				d1[j+1] += c11
				d1[j+2] += c12
				d1[j+3] += c13
				d2[j] += c20
				d2[j+1] += c21
				d2[j+2] += c22
				d2[j+3] += c23
				d3[j] += c30
				d3[j+1] += c31
				d3[j+2] += c32
				d3[j+3] += c33
			} else {
				d0[j], d0[j+1], d0[j+2], d0[j+3] = c00, c01, c02, c03
				d1[j], d1[j+1], d1[j+2], d1[j+3] = c10, c11, c12, c13
				d2[j], d2[j+1], d2[j+2], d2[j+3] = c20, c21, c22, c23
				d3[j], d3[j+1], d3[j+2], d3[j+3] = c30, c31, c32, c33
			}
		}
		for ; j < n; j++ {
			var c0, c1, c2, c3 float32
			for p := 0; p < k; p++ {
				bv := b[p*n+j]
				if bv == 0 {
					continue
				}
				ap := a[p*m+i : p*m+i+4]
				c0 += ap[0] * bv
				c1 += ap[1] * bv
				c2 += ap[2] * bv
				c3 += ap[3] * bv
			}
			if acc {
				d0[j] += c0
				d1[j] += c1
				d2[j] += c2
				d3[j] += c3
			} else {
				d0[j], d1[j], d2[j], d3[j] = c0, c1, c2, c3
			}
		}
	}
	for ; i < hi; i++ {
		di := dst[i*n : i*n+n]
		for j := 0; j < n; j++ {
			var c float32
			for p := 0; p < k; p++ {
				if av := a[p*m+i]; av != 0 {
					c += av * b[p*n+j]
				}
			}
			if acc {
				di[j] += c
			} else {
				di[j] = c
			}
		}
	}
}
