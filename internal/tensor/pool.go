package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The matmul kernels share one persistent worker pool instead of
// spawning goroutines per call: a training step issues thousands of
// matrix products, and the spawn/teardown cost of per-call goroutines
// dominated the small products that convolution lowers to. Workers are
// started lazily (the first product large enough to parallelize pays
// the one-time cost) and then live for the life of the process, blocked
// on a task channel when idle.
//
// Sizing: the pool defaults to GOMAXPROCS workers and never uses more
// than Workers() chunks per call. Constrain it either by lowering
// GOMAXPROCS before first use or by calling SetWorkers.

// maxPoolWorkers is a hard cap on pool goroutines; it exists so tests
// can force multi-worker execution on single-core machines without the
// pool ever growing unboundedly.
const maxPoolWorkers = 256

// kernelArgs carries a matmul kernel's operands through the task channel
// by value. A typed struct instead of a captured closure keeps the
// parallel dispatch allocation-free: closures sent to the pool would
// escape to the heap on every call, and conv backward dispatches one
// product per batch item.
type kernelArgs struct {
	dst, a, b []float32
	k, n, m   int
	acc       bool
}

// kernelFunc is a row-range kernel over kernelArgs. Implementations are
// top-level functions (matmulKernel etc.), so the func values allocate
// nothing.
type kernelFunc func(g kernelArgs, lo, hi int)

// RangeRunner is a pooled task that processes contiguous index ranges.
// It lets packages outside the matmul kernels (the codec's byte-plane
// encoder) borrow the same persistent workers without a closure
// allocation per dispatch: callers hand over a pooled struct whose
// pointer travels through the task channel inside the interface value.
type RangeRunner interface {
	RunRange(lo, hi int)
}

type poolTask struct {
	run    kernelFunc
	rr     RangeRunner // used when run == nil
	args   kernelArgs
	lo, hi int
	wg     *sync.WaitGroup
}

// wgPool recycles the WaitGroup each parallel dispatch hands to its pool
// tasks; a stack WaitGroup would escape (its pointer travels through the
// channel) and cost an allocation per call.
var wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

var (
	poolTasks = make(chan poolTask, 4*maxPoolWorkers)
	poolLimit atomic.Int32 // desired parallelism per call
	poolLive  int          // workers actually started (guarded by poolMu)
	poolMu    sync.Mutex
)

func init() {
	poolLimit.Store(int32(clampWorkers(runtime.GOMAXPROCS(0))))
}

func clampWorkers(n int) int {
	if n < 1 {
		return 1
	}
	if n > maxPoolWorkers {
		return maxPoolWorkers
	}
	return n
}

// SetWorkers bounds the parallelism of the matmul kernels. n is clamped
// to [1, 256]; 1 forces fully serial kernels. Raising the limit above
// GOMAXPROCS is allowed (tests use it to exercise the parallel path on
// single-core machines) but does not make the kernels any faster.
// Results never depend on the setting: every output element is
// accumulated in the same order regardless of how rows are partitioned.
func SetWorkers(n int) { poolLimit.Store(int32(clampWorkers(n))) }

// Workers returns the current parallelism bound of the kernel pool.
func Workers() int { return int(poolLimit.Load()) }

// ensureWorkers starts pool goroutines until at least n are live.
func ensureWorkers(n int) {
	poolMu.Lock()
	for poolLive < n {
		go poolWorker()
		poolLive++
	}
	poolMu.Unlock()
}

func poolWorker() {
	for t := range poolTasks {
		if t.run != nil {
			t.run(t.args, t.lo, t.hi)
		} else {
			t.rr.RunRange(t.lo, t.hi)
		}
		t.wg.Done()
	}
}

// ParallelRanges splits [0, n) into at most Workers() contiguous chunks,
// runs the first chunk on the calling goroutine and the rest on the
// pool, and waits for completion. rr.RunRange must be safe to execute
// concurrently on disjoint ranges. Like the kernels, results must never
// depend on the partitioning; the codec's per-plane encoder satisfies
// this because each plane is encoded independently and concatenated in
// index order afterwards.
func ParallelRanges(rr RangeRunner, n int) {
	workers := Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			rr.RunRange(0, n)
		}
		return
	}
	ensureWorkers(workers - 1)
	chunk := (n + workers - 1) / workers
	wg := wgPool.Get().(*sync.WaitGroup)
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		poolTasks <- poolTask{rr: rr, lo: lo, hi: hi, wg: wg}
	}
	rr.RunRange(0, chunk)
	wg.Wait()
	wgPool.Put(wg)
}

// ParallelRangesN is ParallelRanges with an explicit parallelism bound
// instead of the pool-wide Workers() setting. The aggregation kernels
// use it so their worker count (AggWorkers) can be tuned independently
// of the training matmul pool. workers <= 0 falls back to Workers().
func ParallelRangesN(rr RangeRunner, n, workers int) {
	if workers <= 0 {
		workers = Workers()
	} else {
		workers = clampWorkers(workers)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			rr.RunRange(0, n)
		}
		return
	}
	ensureWorkers(workers - 1)
	chunk := (n + workers - 1) / workers
	wg := wgPool.Get().(*sync.WaitGroup)
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		poolTasks <- poolTask{rr: rr, lo: lo, hi: hi, wg: wg}
	}
	rr.RunRange(0, chunk)
	wg.Wait()
	wgPool.Put(wg)
}

// parallelRows splits the row range [0, m) into Workers() contiguous
// chunks, runs the first chunk on the calling goroutine and the rest on
// the pool, and waits for completion. run must be safe to execute
// concurrently on disjoint row ranges (the kernels are: each row of dst
// is written by exactly one chunk).
func parallelRows(m int, run kernelFunc, args kernelArgs) {
	workers := Workers()
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		run(args, 0, m)
		return
	}
	ensureWorkers(workers - 1)
	chunk := (m + workers - 1) / workers
	wg := wgPool.Get().(*sync.WaitGroup)
	for lo := chunk; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		poolTasks <- poolTask{run: run, args: args, lo: lo, hi: hi, wg: wg}
	}
	run(args, 0, chunk)
	wg.Wait()
	wgPool.Put(wg)
}
