package fednet

import (
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"fedguard/internal/aggregate"
	"fedguard/internal/cvae"
	"fedguard/internal/dataset"
	"fedguard/internal/defense"
	"fedguard/internal/fl"
	"fedguard/internal/persist"
	"fedguard/internal/rng"
)

// resilientOpts tunes clients for the crash drills: enough redial budget
// at a tight cadence to ride out a server restart (kill, rebind, resume)
// without giving up.
func resilientOpts(compress bool) ClientOptions {
	return ClientOptions{Redials: 400, RedialBackoff: 10 * time.Millisecond, Compress: compress}
}

// crashClients runs every client on RunClientResilient in its own
// goroutine, so client state (private random stream positions, trained
// CVAE decoders, cached round responses) spans both server lifetimes —
// exactly like client processes that survive a server crash.
type crashClients struct {
	wg   sync.WaitGroup
	errs []error
}

func startCrashClients(addr string, n int, opts ClientOptions) *crashClients {
	cc := &crashClients{errs: make([]error, n)}
	for id := 0; id < n; id++ {
		cc.wg.Add(1)
		go func(id int) {
			defer cc.wg.Done()
			cc.errs[id] = RunClientResilient(addr, id, opts)
		}(id)
	}
	return cc
}

func (cc *crashClients) check(t *testing.T) {
	t.Helper()
	cc.wg.Wait()
	for id, err := range cc.errs {
		if err != nil {
			t.Fatalf("client %d: %v", id, err)
		}
	}
}

// rebind reclaims the crashed server's address for the resumed server.
// The old listener has just closed, so the first attempts may race the
// kernel's teardown of it.
func rebind(t *testing.T, addr string) net.Listener {
	t.Helper()
	var lastErr error
	for i := 0; i < 200; i++ {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("rebinding %s: %v", addr, lastErr)
	return nil
}

// runKillResume is the full crash drill over real sockets: server 1
// checkpoints every round and is killed from the onRound callback right
// after round k (connections severed without Shutdown frames), then a
// second server — fresh strategy instance, same checkpoint directory,
// Resume on — rebinds the same address while the resilient clients
// redial, and finishes the schedule. Returns the resumed history.
func runKillResume(t *testing.T, cfg Config, test *dataset.Dataset,
	newStrategy func() fl.Strategy, copts ClientOptions, k int) *fl.History {
	t.Helper()
	cfg.CheckpointDir = t.TempDir()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv1, err := NewServer(cfg, test, newStrategy())
	if err != nil {
		t.Fatal(err)
	}
	clients := startCrashClients(addr, cfg.Experiment.NumClients, copts)

	h1, err := srv1.Run(ln, func(rec fl.RoundRecord) {
		if rec.Round == k {
			srv1.Kill()
		}
	})
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("killed server returned %v, want ErrKilled", err)
	}
	if len(h1.Rounds) != k {
		t.Fatalf("killed server completed %d rounds, want %d", len(h1.Rounds), k)
	}
	ln.Close()

	// The checkpoint for round k must already be durable: it is written
	// before onRound fires, so a crash inside the callback never loses
	// the round the caller just observed.
	ck, err := persist.LoadCheckpoint(cfg.CheckpointDir)
	if err != nil {
		t.Fatalf("checkpoint after kill at round %d: %v", k, err)
	}
	if ck.Round != k {
		t.Fatalf("checkpoint holds round %d, want %d", ck.Round, k)
	}

	cfg2 := cfg
	cfg2.Resume = true
	srv2, err := NewServer(cfg2, test, newStrategy())
	if err != nil {
		t.Fatal(err)
	}
	ln2 := rebind(t, addr)
	defer ln2.Close()
	h2, err := srv2.Run(ln2, nil)
	if err != nil {
		t.Fatalf("resumed server: %v", err)
	}
	clients.check(t)
	return h2
}

// comparableRecord strips the columns a restart legitimately changes:
// wall-clock timings, and the measured wire bytes (a resumed run pays
// re-registration traffic and re-sends reference state the crashed
// connections already carried). Everything deterministic — sampling,
// drops, exclusion reports, accuracies, logical byte columns — must
// match exactly.
func comparableRecord(r fl.RoundRecord) fl.RoundRecord {
	r.Seconds, r.TrainSeconds, r.AggregateSeconds, r.EvalSeconds = 0, 0, 0, 0
	r.WireUploadBytes, r.WireDownloadBytes = 0, 0
	return r
}

// expectResumedIdentical asserts the headline guarantee against an
// uninterrupted baseline run of the same experiment.
func expectResumedIdentical(t *testing.T, baseline, resumed *fl.History) {
	t.Helper()
	if len(resumed.Rounds) != len(baseline.Rounds) {
		t.Fatalf("resumed run has %d rounds, want %d", len(resumed.Rounds), len(baseline.Rounds))
	}
	for i := range baseline.Rounds {
		want, got := comparableRecord(baseline.Rounds[i]), comparableRecord(resumed.Rounds[i])
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("round %d diverged:\nbaseline %+v\nresumed  %+v", i+1, want, got)
		}
	}
	if !reflect.DeepEqual(baseline.FinalWeights, resumed.FinalWeights) {
		t.Fatal("final weights diverged from the uninterrupted run")
	}
}

// TestKillResumeLoopback is the quick networked crash drill: a FedAvg
// federation under sign-flip attack is killed after each interior round
// and resumed, landing on the uninterrupted run's exact history.
func TestKillResumeLoopback(t *testing.T) {
	cfg := testConfig()
	cfg.Experiment.Rounds = 3
	cfg.AttackName = "sign-flip"
	cfg.Experiment.MaliciousFraction = 0.4
	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
	baseline := runLoopback(t, cfg, aggregate.NewFedAvg(), test)

	for k := 1; k < cfg.Experiment.Rounds; k++ {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			newStrategy := func() fl.Strategy { return aggregate.NewFedAvg() }
			resumed := runKillResume(t, cfg, test, newStrategy, resilientOpts(false), k)
			expectResumedIdentical(t, baseline, resumed)
		})
	}
}

// errMidRoundKill marks the simulated crash in midRoundKiller.
var errMidRoundKill = errors.New("simulated mid-round crash")

// midRoundKiller crashes the server *inside* round `at`, after every
// sampled client has trained and uploaded but before the aggregate is
// applied — the worst checkpoint-boundary case: the round is lost
// server-side while the clients' random streams have already advanced.
type midRoundKiller struct {
	inner fl.Strategy
	srv   *Server
	at    int
}

func (m *midRoundKiller) Name() string        { return m.inner.Name() }
func (m *midRoundKiller) NeedsDecoders() bool { return m.inner.NeedsDecoders() }
func (m *midRoundKiller) Aggregate(ctx *fl.RoundContext) ([]float32, error) {
	if ctx.Round == m.at {
		m.srv.Kill()
		return nil, errMidRoundKill
	}
	return m.inner.Aggregate(ctx)
}

// TestKillResumeMidRound proves the duplicate-round machinery: the
// server dies during round k+1 aggregation, resumes from the round-k
// checkpoint, and re-requests round k+1. Clients that already trained it
// must answer from their cached responses WITHOUT retraining — a retrain
// would advance their streams and diverge the final weights, so byte
// equality is proof the replay path engaged. Runs raw and compressed:
// the compressed resend must first decode the fresh connection's
// broadcast to stay delta-synchronized.
func TestKillResumeMidRound(t *testing.T) {
	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			cfg := testConfig()
			cfg.Experiment.Rounds = 3
			cfg.AttackName = "sign-flip"
			cfg.Experiment.MaliciousFraction = 0.4
			baseline := runLoopback(t, cfg, aggregate.NewFedAvg(), test)

			const k = 1 // checkpointed round; the crash hits round k+1
			cfg.Compress = compress
			cfg.CheckpointDir = t.TempDir()
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			addr := ln.Addr().String()
			killer := &midRoundKiller{inner: aggregate.NewFedAvg(), at: k + 1}
			srv1, err := NewServer(cfg, test, killer)
			if err != nil {
				t.Fatal(err)
			}
			killer.srv = srv1
			clients := startCrashClients(addr, cfg.Experiment.NumClients, resilientOpts(compress))

			_, err = srv1.Run(ln, nil)
			if !errors.Is(err, errMidRoundKill) {
				t.Fatalf("crashed server returned %v, want errMidRoundKill", err)
			}
			ln.Close()
			ck, err := persist.LoadCheckpoint(cfg.CheckpointDir)
			if err != nil {
				t.Fatal(err)
			}
			if ck.Round != k {
				t.Fatalf("checkpoint holds round %d, want %d (round %d died mid-flight)", ck.Round, k, k+1)
			}

			cfg2 := cfg
			cfg2.Resume = true
			srv2, err := NewServer(cfg2, test, aggregate.NewFedAvg())
			if err != nil {
				t.Fatal(err)
			}
			ln2 := rebind(t, addr)
			defer ln2.Close()
			h, err := srv2.Run(ln2, nil)
			if err != nil {
				t.Fatalf("resumed server: %v", err)
			}
			clients.check(t)
			expectResumedIdentical(t, baseline, h)
		})
	}
}

// TestCrashPointMatrix is the acceptance matrix: a networked FedGuard
// federation under sign-flip attack, killed after every interior round
// and resumed, across three seeds, raw and codec peers, and barrier and
// stream audit. Every cell must land on the single uninterrupted
// baseline's exact final weights and exclusion sequence — the baseline
// is run raw/barrier, so codec and stream cells simultaneously re-prove
// their own bit-identity contracts under crash recovery.
func TestCrashPointMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("many full networked FedGuard federations")
	}
	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
	for _, seed := range []uint64{99, 7, 21} {
		base := testConfig()
		base.Experiment.Rounds = 3
		base.Experiment.Seed = seed
		base.AttackName = "sign-flip"
		base.Experiment.MaliciousFraction = 0.4
		newGuard := func() fl.Strategy {
			g := defense.NewFedGuard(base.Experiment.Client.Arch, cvae.Config{
				Input: 784, Hidden: 16, Latent: 2, Classes: 10,
			})
			g.Samples = 8
			return g
		}
		baseline := runLoopback(t, base, newGuard(), test)
		for _, compress := range []bool{false, true} {
			for _, streamAudit := range []bool{false, true} {
				for k := 1; k < base.Experiment.Rounds; k++ {
					name := fmt.Sprintf("seed=%d/compress=%v/stream=%v/k=%d", seed, compress, streamAudit, k)
					t.Run(name, func(t *testing.T) {
						cfg := base
						cfg.Compress = compress
						cfg.StreamAudit = streamAudit
						resumed := runKillResume(t, cfg, test, newGuard, resilientOpts(compress), k)
						expectResumedIdentical(t, baseline, resumed)
					})
				}
			}
		}
	}
}

// TestResumeWithoutCheckpointColdStarts pins the operational contract:
// -resume with an empty checkpoint directory is a cold start, not an
// error, and the run both matches a plain run and leaves a final-round
// checkpoint behind.
func TestResumeWithoutCheckpointColdStarts(t *testing.T) {
	cfg := testConfig()
	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
	baseline := runLoopback(t, cfg, aggregate.NewFedAvg(), test)

	cfg2 := cfg
	cfg2.CheckpointDir = t.TempDir()
	cfg2.Resume = true
	h := runLoopback(t, cfg2, aggregate.NewFedAvg(), test)
	if !reflect.DeepEqual(baseline.FinalWeights, h.FinalWeights) {
		t.Fatal("cold-started resume run diverged from a plain run")
	}
	ck, err := persist.LoadCheckpoint(cfg2.CheckpointDir)
	if err != nil {
		t.Fatalf("no checkpoint after checkpointed run: %v", err)
	}
	if ck.Round != cfg.Experiment.Rounds {
		t.Fatalf("final checkpoint holds round %d, want %d", ck.Round, cfg.Experiment.Rounds)
	}
}

// TestServerResumeValidation: Resume without a directory is rejected at
// construction; a checkpoint from a different run (wrong seed) is
// rejected before any client is accepted.
func TestServerResumeValidation(t *testing.T) {
	test := dataset.Generate(10, dataset.DefaultGenOptions(), rng.New(1))

	cfg := testConfig()
	cfg.Resume = true
	if _, err := NewServer(cfg, test, aggregate.NewFedAvg()); err == nil {
		t.Fatal("Resume without CheckpointDir accepted")
	}

	cfg = testConfig()
	cfg.CheckpointDir = t.TempDir()
	cfg.Resume = true
	if _, _, err := persist.SaveCheckpoint(cfg.CheckpointDir, &fl.Checkpoint{
		Round:     1,
		Seed:      cfg.Experiment.Seed + 1,
		Strategy:  "FedAvg",
		Global:    []float32{0},
		ServerRNG: rng.New(1).State(),
		Rounds:    []fl.RoundRecord{{Round: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(cfg, test, aggregate.NewFedAvg())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := srv.Run(ln, nil); err == nil {
		t.Fatal("checkpoint from a different seed accepted")
	}
}
