// Package fednet runs the federation of Algorithm 1 over real network
// sockets — the deployment shape of the paper's Grid'5000 evaluation
// (one server node, clients on remote nodes, Ethernet in between).
//
// The server and clients share nothing but the wire protocol (package
// wire) and the experiment seed: each client regenerates its SynthDigits
// shard locally from the data seed, derives its private random stream
// from the experiment seed, and builds its attack role from the setup
// message — so a networked run produces *bit-identical* accuracy
// trajectories to the in-process fl.Federation with the same
// configuration (asserted by TestLoopbackMatchesInProcess).
//
// Unlike the in-process simulator, communication columns here are
// *measured* from the sockets (via wire.CountingConn), frame overhead
// included, rather than computed from payload sizes.
//
// # Fault tolerance
//
// With MinClientsPerRound > 0 the server degrades gracefully instead of
// aborting: per-message deadlines (IOTimeout) and a round-level
// straggler budget (RoundTimeout) bound every wire operation, transient
// failures (timeouts, checksum-corrupt frames) are retried with backoff
// up to MaxRetries, and clients that still fail are dropped for the
// round — excluded from aggregation (and from FedGuard's audit) exactly
// like defense-excluded updates — while the round proceeds with the
// responsive quorum. Dropped or late clients may re-register at any
// time and rejoin from the next round, receiving the current global
// model with their next TrainRequest. All of it is observable:
// ClientDropped / ClientRejoined / RoundDegraded events plus retry,
// timeout, and drop counters. With MinClientsPerRound == 0 (the zero
// value) the strict legacy behavior is preserved: no deadlines, and any
// failure aborts the run.
package fednet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fedguard/internal/attack"
	"fedguard/internal/classifier"
	"fedguard/internal/codec"
	"fedguard/internal/cvae"
	"fedguard/internal/dataset"
	"fedguard/internal/fl"
	"fedguard/internal/persist"
	"fedguard/internal/rng"
	"fedguard/internal/telemetry"
	"fedguard/internal/tensor"
	"fedguard/internal/wire"
)

// Config describes a networked federation. Experiment carries the
// federation shape (N, m, R, α, server LR, malicious fraction, client
// hyperparameters); the Attack *instance* field of Experiment is ignored
// — attacks travel by name so remote clients can construct their own.
type Config struct {
	Experiment fl.FederationConfig
	// AttackName is the malicious clients' attack ("" or "none" = benign
	// federation regardless of MaliciousFraction).
	AttackName string
	// ArchName is the classifier registry name shared by both endpoints.
	ArchName string
	// DataSeed and TrainSize let every client regenerate the identical
	// SynthDigits training set locally (no pixels on the wire).
	DataSeed  uint64
	TrainSize int
	// Telemetry, when non-nil, receives structured run events,
	// phase-level metrics, and per-peer measured byte-count gauges.
	Telemetry *telemetry.T

	// MinClientsPerRound enables fault-tolerant operation when > 0: a
	// round proceeds as long as at least this many sampled clients
	// deliver updates; the rest are dropped for the round and may rejoin
	// later. 0 (the default) keeps the strict legacy behavior where any
	// client failure aborts the run.
	MinClientsPerRound int
	// RoundTimeout bounds the client-training phase of one round; sampled
	// clients that have not delivered by then are dropped (0 = unbounded).
	RoundTimeout time.Duration
	// IOTimeout bounds each individual wire send/receive (0 = unbounded,
	// unless RoundTimeout caps it).
	IOTimeout time.Duration
	// MaxRetries bounds per-client re-requests after transient errors
	// (timeouts, checksum-corrupt frames) within one round.
	MaxRetries int
	// RetryBackoff is the initial sleep between retries, doubling each
	// attempt (default 25ms when retries are enabled).
	RetryBackoff time.Duration
	// RegisterTimeout bounds the initial registration wait. When it
	// expires with at least MinClientsPerRound clients registered, the
	// run starts without the missing ones (they may still rejoin);
	// with fewer, the run fails. 0 waits for all clients forever.
	RegisterTimeout time.Duration

	// Compress enables the communication-efficiency layer for clients
	// that also advertise it: broadcasts travel as codec-compressed XOR
	// deltas against the previous global each connection holds, client
	// updates as deltas against the round's broadcast, and decoder
	// payloads are deduplicated by content hash (a static decoder crosses
	// the wire once per run instead of once per participation). All of it
	// is lossless — results are bit-identical to raw framing — and
	// negotiated per connection, so compression-off peers interoperate
	// unchanged. false (the default) keeps raw frames for everyone.
	Compress bool

	// Trace enables distributed trace-context propagation for clients
	// that also advertise it (wire.CapTrace): round requests carry the
	// server's request-span identity so the client's train/upload spans
	// parent onto it, and updates carry the client's round-span identity
	// back. Negotiated per connection exactly like Compress; legacy or
	// trace-off peers interoperate on byte-identical legacy frames.
	// Spans are actually minted only when Telemetry has tracing enabled
	// (telemetry.T.EnableTracing); Trace alone just negotiates the
	// capability.
	Trace bool

	// StreamAudit overlaps the strategy's per-update audit with the
	// round's upload phase when the strategy implements
	// fl.StreamingStrategy (FedGuard): each client's update is handed to
	// the round's stream the moment it is decoded, so decoder synthesis
	// and scoring hide in the network shadow instead of running serially
	// after the quorum barrier. Results are byte-identical to the barrier
	// path — on drop-outs or any stream inconsistency the round falls
	// back to the batch computation internally. false keeps the strict
	// barrier ordering.
	StreamAudit bool

	// CheckpointDir enables crash-safe round checkpointing when non-empty:
	// after each completed round (at CheckpointEvery cadence) the server
	// atomically persists the run state — global weights, round index,
	// server RNG stream, accumulated history, and the decoder dedup cache
	// — to CheckpointDir. A server restarted with Resume continues from
	// the last checkpointed round; as long as the client processes
	// survived (their private random streams live client-side), the
	// resumed run's final weights are bit-identical to an uninterrupted
	// one.
	CheckpointDir string
	// CheckpointEvery is the checkpoint cadence in rounds (<= 0 means
	// every round). Only meaningful with CheckpointDir set.
	CheckpointEvery int
	// Resume loads the checkpoint in CheckpointDir at startup and
	// continues from the round after it. A missing checkpoint means a
	// cold start; a checkpoint from a different seed, strategy, or
	// federation shape is an error.
	Resume bool
}

// tolerant reports whether graceful degradation is enabled.
func (c *Config) tolerant() bool { return c.MinClientsPerRound > 0 }

// NewAttackByName builds a client-side attack instance. AdditiveNoise
// instances built from the same seed draw the same collusive noise
// vector, so per-client construction preserves the paper's collusion
// semantics.
//
// The colluding extension attacks (alie, ipm, min-max) are accepted but
// run their solo fallbacks here: networked clients cannot observe their
// co-conspirators' drafts, so each degrades to the cohort-of-one limit
// of its formula (ALIE and min-max become no-ops, IPM negates and
// scales the client's own draft). Use the in-process experiment matrix
// for full-collusion results.
func NewAttackByName(name string, seed uint64) (attack.Attack, error) {
	switch name {
	case "", "none":
		return attack.None{}, nil
	case "same-value":
		return attack.NewSameValue(), nil
	case "sign-flip":
		return attack.NewSignFlip(), nil
	case "additive-noise":
		return attack.NewAdditiveNoise(0.5, seed), nil
	case "label-flip":
		return attack.NewLabelFlip(), nil
	case "scaled-boost":
		return attack.NewScaledBoost(attack.DefaultBoostLambda), nil
	case "alie":
		return attack.NewALIE(), nil
	case "ipm":
		return attack.NewIPM(), nil
	case "min-max":
		return attack.NewMinMax(""), nil
	case "decoder-forge":
		return attack.NewDecoderForge(), nil
	default:
		return nil, fmt.Errorf("fednet: unknown attack %q", name)
	}
}

// Server coordinates a networked federation round loop.
type Server struct {
	cfg      Config
	test     *dataset.Dataset
	strategy fl.Strategy

	// Run-time connection state (guarded by mu). Rejoining clients swap
	// entries while rounds are in flight.
	mu      sync.Mutex
	clients map[int]*clientConn

	// round is the 1-based round currently driving (for rejoin events).
	round atomic.Int64

	parts     [][]int
	malicious map[int]bool

	// Compressed-path reference state. initGlobal is ψ₀, the delta base
	// every fresh connection starts from (both endpoints derive it from
	// the seed, so it never crosses the wire). decoders caches each
	// client's last decoder payload by content hash — it outlives
	// connections, so a rejoining client's unchanged decoder still
	// dedups. decoderSize is the trusted decode cap for decoder blobs.
	initGlobal  []float32
	decoders    map[int]*decoderCache // guarded by mu
	decoderSize int

	// Encode-once broadcast sharing (guarded by mu): one encoded delta
	// per (round, baseRound) pair, shared by every codec connection
	// holding the same base and refcounted so payload buffers recycle
	// through bcastBufPool. In steady state all connections share the
	// round-(r−1) base, so each round performs one delta encode however
	// many clients it fans out to.
	bcastRound   uint32
	bcast        map[uint32]*bcastEntry
	bcastEncodes atomic.Int64 // actual encodes performed (tests, benches)

	// runSpan is the root of the run's trace (nil when tracing is off).
	// Assigned once in Run before the rejoin accept loop starts, so that
	// goroutine can parent rejoin spans onto it without synchronization.
	runSpan *telemetry.Span

	// kill simulates a server crash for recovery testing: Kill closes it
	// (and every live connection), and the round loop exits with
	// ErrKilled at the next round boundary without sending Shutdown
	// frames — so resilient clients redial instead of exiting cleanly.
	kill     chan struct{}
	killOnce sync.Once
}

// decoderCache is one client's last-delivered decoder payload.
type decoderCache struct {
	hash   uint64
	params []float32
}

// bcastEntry is one shared encoded broadcast payload. refs counts the
// connections whose cached round request references payload; when it
// drops to zero the buffer returns to bcastBufPool.
type bcastEntry struct {
	payload []byte
	refs    int
}

// bcastBufPool recycles broadcast payload buffers between rounds.
var bcastBufPool = sync.Pool{New: func() any { return []byte(nil) }}

// NewServer validates the configuration and returns a server. test is
// evaluated locally each round (the server owns the held-out set, as in
// the paper's harness).
func NewServer(cfg Config, test *dataset.Dataset, strategy fl.Strategy) (*Server, error) {
	if _, err := classifier.ByName(cfg.ArchName); err != nil {
		return nil, err
	}
	if _, err := NewAttackByName(cfg.AttackName, 0); err != nil {
		return nil, err
	}
	if cfg.TrainSize <= 0 {
		return nil, fmt.Errorf("fednet: TrainSize = %d", cfg.TrainSize)
	}
	if cfg.MinClientsPerRound < 0 || cfg.MinClientsPerRound > cfg.Experiment.PerRound {
		return nil, fmt.Errorf("fednet: MinClientsPerRound = %d with m = %d",
			cfg.MinClientsPerRound, cfg.Experiment.PerRound)
	}
	if cfg.RoundTimeout < 0 || cfg.IOTimeout < 0 || cfg.MaxRetries < 0 ||
		cfg.RetryBackoff < 0 || cfg.RegisterTimeout < 0 {
		return nil, fmt.Errorf("fednet: negative fault-tolerance parameter")
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.Resume && cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("fednet: Resume requires CheckpointDir")
	}
	probe := cfg.Experiment
	probe.Attack = attack.None{} // instance irrelevant; satisfy validation
	if probe.MaliciousFraction == 0 {
		probe.Attack = nil
	}
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, test: test, strategy: strategy, kill: make(chan struct{})}, nil
}

// ErrKilled is returned by Run when Kill interrupts the round loop — a
// simulated server crash. The history returned alongside it holds the
// rounds completed so far.
var ErrKilled = errors.New("fednet: server killed")

// Kill simulates a hard server crash mid-run: it interrupts the round
// loop at the next round boundary and severs every live connection
// WITHOUT sending Shutdown frames, so resilient clients treat it as a
// transport failure and redial. Safe to call from any goroutine
// (including an onRound callback) and idempotent. Combined with
// CheckpointDir/Resume this is the crash-recovery test hook: kill after
// round k, restart a server with Resume on the same listener address,
// and the run finishes with bit-identical results.
func (s *Server) Kill() {
	s.killOnce.Do(func() {
		close(s.kill)
		for _, c := range s.snapshot() {
			c.count.Close()
		}
	})
}

// killed reports whether Kill has fired.
func (s *Server) killed() bool {
	select {
	case <-s.kill:
		return true
	default:
		return false
	}
}

// clientConn is one registered client's connection state.
type clientConn struct {
	id    int
	conn  net.Conn
	count *wire.CountingConn
	mu    sync.Mutex // one in-flight request at a time per client

	// enc marks a connection that negotiated the compressed encodings.
	enc bool
	// trace marks a connection that negotiated trace-context propagation
	// (wire.CapTrace): round frames carry the trailing trace block.
	trace bool
	// Delta base for the next broadcast on this connection: the global of
	// the last round a TrainRequestC was built for (nil = fresh
	// connection, base ψ₀). The client mirrors this state — it decodes
	// each round's request exactly once, in order, so both ends always
	// agree on the base. Guarded by mu.
	baseVec   []float32
	baseRound uint32
	// lastTR caches the round's encoded request so retries resend
	// byte-identical frames (a re-encode against a moved base would
	// desynchronize the client). Guarded by mu.
	lastTR *wire.TrainRequestC
	// lastEntry is the shared broadcast buffer backing lastTR.Payload;
	// its reference is released when the request is replaced or the
	// connection is dropped. Guarded by mu.
	lastEntry *bcastEntry
}

func (c *clientConn) send(msg any) error {
	return wire.WriteMessage(c.count, msg)
}

func (c *clientConn) recv() (any, error) {
	return wire.ReadMessage(c.count)
}

// errNotConnected marks a sampled client with no live connection.
var errNotConnected = errors.New("fednet: client not connected")

// errProtocol marks a peer that violated the negotiated protocol: a
// codec blob that fails to decode behind a valid checksum, a decoder
// token for a payload the server never cached, or a hash that does not
// match its bytes. Not transient — retrying would replay the violation.
var errProtocol = errors.New("fednet: protocol violation")

// Run accepts client registrations on ln, configures them, drives R
// federated rounds, and returns the full history. onRound, if non-nil,
// fires after every round.
func (s *Server) Run(ln net.Listener, onRound func(fl.RoundRecord)) (*fl.History, error) {
	cfg := s.cfg.Experiment
	if cfg.AggWorkers > 0 {
		tensor.SetAggWorkers(cfg.AggWorkers)
	}
	train := dataset.Generate(s.cfg.TrainSize, dataset.DefaultGenOptions(), rng.New(s.cfg.DataSeed))
	s.parts = fl.Partition(train, cfg)
	s.malicious = fl.MaliciousPlacement(cfg)
	s.initGlobal = fl.InitialGlobal(cfg)
	s.decoders = make(map[int]*decoderCache)
	dcfg := cfg.Client.CVAE
	dcfg.Input = dataset.ImageH * dataset.ImageW
	s.decoderSize = cvae.DecoderSize(dcfg)

	// Load the resume checkpoint before accepting anyone: a mismatched
	// checkpoint must fail fast, and the decoder dedup cache has to be
	// warm before the first compressed request advertises hashes.
	var resume *fl.Checkpoint
	if s.cfg.Resume {
		ck, err := persist.LoadCheckpoint(s.cfg.CheckpointDir)
		switch {
		case errors.Is(err, persist.ErrNoCheckpoint):
			// Cold start: resume requested but nothing written yet.
		case err != nil:
			return nil, fmt.Errorf("fednet: loading checkpoint: %w", err)
		default:
			if err := fl.CheckResume(cfg, s.strategy.Name(), ck); err != nil {
				return nil, err
			}
			if len(ck.Global) != len(s.initGlobal) {
				return nil, fmt.Errorf("fednet: checkpoint global has %d params, model has %d",
					len(ck.Global), len(s.initGlobal))
			}
			for _, d := range ck.Decoders {
				// Hash-only entries (params not checkpointed) are useless
				// here: a client resending a token needs the bytes back.
				if len(d.Params) > 0 {
					s.decoders[d.ID] = &decoderCache{
						hash:   d.Hash,
						params: append([]float32(nil), d.Params...),
					}
				}
			}
			s.round.Store(int64(ck.Round))
			resume = ck
		}
	}

	if err := s.register(ln); err != nil {
		return nil, err
	}
	tel := s.cfg.Telemetry
	if tel != nil && tel.Metrics != nil {
		// Per-peer request latency wants log-spaced resolution: a LAN
		// exchange and a straggler behind chaos injection differ by four
		// orders of magnitude.
		tel.Metrics.SetBuckets(telemetry.PeerLatencyMetric,
			telemetry.LogBuckets(0.0005, 120, 5))
	}
	// Root of the run's trace (nil — and free — unless tracing was
	// enabled on the bundle). Created before the rejoin accept loop
	// starts so its goroutine can parent rejoin spans onto it.
	s.runSpan = tel.StartRoot("run", telemetry.L("strategy", s.strategy.Name()))
	defer func() {
		for _, c := range s.snapshot() {
			// A killed server crashes silently: no Shutdown frames, so
			// resilient clients see a broken transport and redial the
			// resumed server instead of exiting cleanly.
			if !s.killed() {
				if s.cfg.tolerant() {
					c.conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
				}
				c.send(&wire.Shutdown{})
			}
			// Closing the wrapper (not the raw conn) fires the counting
			// hook, publishing each peer's final byte totals.
			c.count.Close()
		}
	}()

	// In tolerant mode, keep accepting: dropped (or late) clients can
	// re-register mid-run and rejoin from the next round.
	var rejoinWG sync.WaitGroup
	stopRejoin := make(chan struct{})
	if s.cfg.tolerant() {
		if _, ok := ln.(deadliner); ok {
			rejoinWG.Add(1)
			go s.acceptRejoins(ln, stopRejoin, &rejoinWG)
		}
	}
	defer func() {
		close(stopRejoin)
		rejoinWG.Wait()
	}()

	serverRNG := rng.New(rng.DeriveSeed(cfg.Seed, "server", 0))
	global := s.initGlobal
	evalModel, err := classifier.ByName(s.cfg.ArchName)
	if err != nil {
		return nil, err
	}
	eval := evalModel(rng.New(rng.DeriveSeed(cfg.Seed, "eval", 0)))

	testIdx := dataset.Range(s.test.Len())
	if cfg.TestSubset > 0 && cfg.TestSubset < len(testIdx) {
		testIdx = testIdx[:cfg.TestSubset]
	}
	needDecoders := s.strategy.NeedsDecoders()
	history := &fl.History{Strategy: s.strategy.Name()}

	startRound := 1
	if resume != nil {
		global = append([]float32(nil), resume.Global...)
		serverRNG.SetState(resume.ServerRNG)
		history.Rounds = append(history.Rounds, resume.Rounds...)
		startRound = resume.Round + 1
	}

	tel.Emit(telemetry.RunStarted{
		Strategy:          s.strategy.Name(),
		NumClients:        cfg.NumClients,
		PerRound:          cfg.PerRound,
		Rounds:            cfg.Rounds,
		Seed:              cfg.Seed,
		Attack:            s.cfg.AttackName,
		MaliciousFraction: cfg.MaliciousFraction,
	})
	if resume != nil {
		tel.Emit(telemetry.RunResumed{Round: resume.Round, Strategy: s.strategy.Name()})
	}
	runStart := time.Now()

	// Snapshot the counters so registration/setup traffic is not charged
	// to round 1.
	lastRead, lastWritten := s.totalBytes()
	for round := startRound; round <= cfg.Rounds; round++ {
		if s.killed() {
			return history, ErrKilled
		}
		s.round.Store(int64(round))
		trainStart := time.Now()
		roundSpan := s.runSpan.Child("round", telemetry.L("round", strconv.Itoa(round)))
		sampled := serverRNG.Sample(cfg.NumClients, cfg.PerRound)
		var attackIDs []int
		for _, id := range sampled {
			if s.malicious[id] {
				attackIDs = append(attackIDs, id)
			}
		}
		if len(attackIDs) > 0 {
			tel.Emit(telemetry.AttackSampled{Round: round, ClientIDs: attackIDs})
		}

		// The round RNG is split off before training — nothing draws from
		// serverRNG in between, so the child stream is byte-identical to a
		// post-barrier split — which lets a streaming strategy pre-draw its
		// whole audit plan while uploads are still in flight.
		ctx := &fl.RoundContext{
			Round:     round,
			Global:    global,
			RNG:       serverRNG.Split(),
			Report:    map[string]float64{},
			Telemetry: tel,
		}
		var stream fl.RoundStream
		if s.cfg.StreamAudit {
			if ss, ok := s.strategy.(fl.StreamingStrategy); ok {
				stream = ss.BeginRound(ctx, len(sampled))
			}
		}
		updates, dropped, err := s.trainRound(round, sampled, needDecoders, global, stream, roundSpan)
		if err != nil {
			if stream != nil {
				stream.Abort()
			}
			if s.killed() {
				// The failures are our own severed connections.
				return history, ErrKilled
			}
			return history, err
		}
		trainSecs := time.Since(trainStart).Seconds()

		aggStart := time.Now()
		aggSpan, stopAgg := tel.StartPhase(roundSpan, "server.aggregate",
			telemetry.L("strategy", s.strategy.Name()),
			telemetry.L("workers", strconv.Itoa(tensor.EffectiveAggWorkers())))
		ctx.Updates = updates
		ctx.Span = aggSpan
		var agg []float32
		if stream != nil {
			busy, jobs := stream.Overlap()
			fl.RecordStreamOverlap(tel, roundSpan, busy, jobs)
			agg, err = stream.Finalize(ctx)
		} else {
			agg, err = s.strategy.Aggregate(ctx)
		}
		if err != nil {
			return history, fmt.Errorf("fednet: round %d aggregation: %w", round, err)
		}
		// ψ ← ψ + lr·(agg − ψ). Unlike the in-process server this buffer
		// cannot ping-pong: connections retain the round's global as their
		// delta base (baseVec) until the next broadcast lands.
		next := make([]float32, len(global))
		tensor.LerpInto(next, global, agg, float32(cfg.ServerLR))
		global = next
		stopAgg()
		aggSecs := time.Since(aggStart).Seconds()
		fl.RecordAggregate(tel, s.strategy.Name(), aggSecs)

		// Byte accounting, both ways: the logical columns follow the
		// paper's Table V (full payload sizes at 4 bytes per parameter);
		// the wire columns are *measured* from the sockets — framing,
		// retries, and every compression saving included. From the
		// server's perspective writes are uploads, reads are downloads.
		read, written := s.totalBytes()
		s.publishPeerBytes()
		var logicalDown int64
		for _, u := range updates {
			logicalDown += int64(len(u.Weights)+len(u.Decoder)) * 4
		}
		maliciousSampled := 0
		for _, id := range sampled {
			if s.malicious[id] {
				maliciousSampled++
			}
		}
		rec := fl.RoundRecord{
			Round:             round,
			TrainSeconds:      trainSecs,
			AggregateSeconds:  aggSecs,
			UploadBytes:       int64(cfg.PerRound) * int64(len(global)) * 4,
			DownloadBytes:     logicalDown,
			WireUploadBytes:   written - lastWritten,
			WireDownloadBytes: read - lastRead,
			Sampled:           sampled,
			MaliciousSampled:  maliciousSampled,
			Dropped:           dropped,
			Report:            ctx.Report,
		}
		lastRead, lastWritten = read, written

		evalStart := time.Now()
		_, stopEval := tel.StartPhase(roundSpan, "server.eval")
		if err := eval.LoadParams(global); err != nil {
			return history, err
		}
		rec.TestAccuracy = classifier.Evaluate(eval, s.test, testIdx)
		stopEval()
		rec.EvalSeconds = time.Since(evalStart).Seconds()
		rec.Seconds = rec.TrainSeconds + rec.AggregateSeconds + rec.EvalSeconds

		roundSpan.SetInt("sampled", int64(len(sampled)))
		roundSpan.SetInt("dropped", int64(len(dropped)))
		roundSpan.End()
		fl.RecordRound(tel, rec)
		history.Rounds = append(history.Rounds, rec)
		// Checkpoint BEFORE onRound: a crash inside the callback (the test
		// harness's kill point) resumes at round+1 and never replays a
		// round the caller already observed.
		if s.cfg.CheckpointDir != "" && round%ckptEvery(s.cfg.CheckpointEvery) == 0 {
			if err := s.writeCheckpoint(round, global, serverRNG, history); err != nil {
				return history, err
			}
		}
		if onRound != nil {
			onRound(rec)
		}
	}
	history.FinalWeights = global
	s.runSpan.End()
	tel.Emit(telemetry.RunCompleted{
		Rounds:        cfg.Rounds,
		FinalAccuracy: history.FinalAccuracy(),
		TotalSeconds:  time.Since(runStart).Seconds(),
	})
	return history, nil
}

// ckptEvery normalizes the checkpoint cadence (<= 0 means every round).
func ckptEvery(every int) int {
	if every <= 0 {
		return 1
	}
	return every
}

// writeCheckpoint atomically persists the run state after a completed
// round: global weights, server RNG stream, accumulated history, and
// the decoder dedup cache (bytes included, so a resumed server can
// answer hash-only decoder tokens from rejoining clients). Client
// RNG/decoder state lives in the client processes and is deliberately
// NOT captured — networked resume relies on the clients surviving the
// server crash and redialing.
func (s *Server) writeCheckpoint(round int, global []float32, serverRNG *rng.RNG, history *fl.History) error {
	tel := s.cfg.Telemetry
	start := time.Now()
	s.mu.Lock()
	decs := make([]fl.DecoderState, 0, len(s.decoders))
	for id, e := range s.decoders {
		decs = append(decs, fl.DecoderState{
			ID:     id,
			Hash:   e.hash,
			Params: append([]float32(nil), e.params...),
		})
	}
	s.mu.Unlock()
	sort.Slice(decs, func(i, j int) bool { return decs[i].ID < decs[j].ID })
	path, n, err := persist.SaveCheckpoint(s.cfg.CheckpointDir, &fl.Checkpoint{
		Round:     round,
		Seed:      s.cfg.Experiment.Seed,
		Strategy:  s.strategy.Name(),
		Global:    append([]float32(nil), global...),
		ServerRNG: serverRNG.State(),
		Rounds:    history.Rounds,
		Decoders:  decs,
	})
	if err != nil {
		return fmt.Errorf("fednet: round %d checkpoint: %w", round, err)
	}
	secs := time.Since(start).Seconds()
	tel.Observe(telemetry.CheckpointMetric, secs)
	tel.Emit(telemetry.CheckpointWritten{Round: round, Path: path, Bytes: n, Seconds: secs})
	return nil
}

// trainRound fans one round's work out to the sampled clients and
// collects the responsive updates in sampled order. In tolerant mode,
// failing clients are dropped (telemetry + connection teardown) and the
// round proceeds as long as the quorum holds; in strict mode any failure
// aborts. A non-nil stream receives each decoded update at its sampled
// slot the moment it arrives, so the strategy's audit overlaps the
// remaining uploads; slots line up with the compacted updates slice only
// on drop-free rounds, which is exactly when the stream's fast path is
// valid (Finalize detects the mismatch otherwise and falls back).
func (s *Server) trainRound(round int, sampled []int, needDecoders bool, global []float32, stream fl.RoundStream, roundSpan *telemetry.Span) ([]fl.Update, []int, error) {
	tel := s.cfg.Telemetry
	conns := make([]*clientConn, len(sampled))
	s.mu.Lock()
	for i, id := range sampled {
		conns[i] = s.clients[id]
	}
	s.mu.Unlock()

	var deadline time.Time
	if s.cfg.RoundTimeout > 0 {
		deadline = time.Now().Add(s.cfg.RoundTimeout)
	}

	results := make([]fl.Update, len(sampled))
	errs := make([]error, len(sampled))
	var wg sync.WaitGroup
	for i := range sampled {
		if conns[i] == nil {
			errs[i] = errNotConnected
			// A zero-length request span keeps the sampled client visible
			// in the trace with its drop reason, so fedtrace's per-round
			// tree is complete even for clients that never got a request.
			sp := roundSpan.Child("server.request",
				telemetry.L("client", strconv.Itoa(sampled[i])),
				telemetry.L("outcome", "dropped"),
				telemetry.L("reason", "disconnected"))
			sp.End()
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.trainOne(conns[i], round, needDecoders, global, deadline, roundSpan)
			if errs[i] == nil && stream != nil {
				stream.Submit(i, results[i])
			}
		}(i)
	}
	wg.Wait()

	updates := make([]fl.Update, 0, len(sampled))
	var dropped []int
	for i, err := range errs {
		if err == nil {
			updates = append(updates, results[i])
			continue
		}
		if !s.cfg.tolerant() {
			return nil, nil, fmt.Errorf("fednet: round %d client %d: %w", round, sampled[i], err)
		}
		dropped = append(dropped, sampled[i])
		s.dropClient(round, sampled[i], conns[i], err)
	}
	if s.cfg.tolerant() && len(updates) < s.cfg.MinClientsPerRound {
		return nil, nil, fmt.Errorf("fednet: round %d: %d responsive clients, quorum is %d",
			round, len(updates), s.cfg.MinClientsPerRound)
	}
	if len(dropped) > 0 {
		tel.Emit(telemetry.RoundDegraded{
			Round:      round,
			Sampled:    len(sampled),
			Responsive: len(updates),
			Dropped:    dropped,
		})
		tel.AddCounter("fedguard_net_rounds_degraded_total", 1)
	}
	return updates, dropped, nil
}

// dropClient abandons id's connection for this round: it is removed from
// the registry (unless a rejoin already replaced it), closed, and the
// drop is published as an event plus a reason-labeled counter.
func (s *Server) dropClient(round, id int, c *clientConn, cause error) {
	s.mu.Lock()
	if c != nil && s.clients[id] == c {
		delete(s.clients, id)
	}
	s.mu.Unlock()
	if c != nil {
		c.mu.Lock()
		s.releaseBroadcast(c.lastEntry)
		c.lastEntry = nil
		c.lastTR = nil
		c.mu.Unlock()
		c.count.Close()
	}
	reason := dropReason(cause)
	tel := s.cfg.Telemetry
	tel.Emit(telemetry.ClientDropped{Round: round, ClientID: id, Reason: reason})
	tel.AddCounter("fedguard_net_drops_total", 1, telemetry.L("reason", reason))
}

// dropReason classifies a drop cause for telemetry.
func dropReason(err error) string {
	var ne net.Error
	switch {
	case errors.Is(err, errNotConnected):
		return "disconnected"
	case errors.As(err, &ne) && ne.Timeout():
		return "timeout"
	case errors.Is(err, wire.ErrChecksum) || errors.Is(err, wire.ErrBadFrame) ||
		errors.Is(err, errProtocol):
		return "protocol"
	default:
		return "transport"
	}
}

// transientErr reports whether a failed exchange is worth retrying on
// the same connection: deadline expiries (the update may still arrive)
// and checksum-corrupt frames (the stream stays aligned; the client will
// resend its cached update). Transport errors — EOF, resets, injected
// crashes — are final.
func transientErr(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, wire.ErrChecksum)
}

// snapshot returns the live connections.
func (s *Server) snapshot() []*clientConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*clientConn, 0, len(s.clients))
	for _, c := range s.clients {
		out = append(out, c)
	}
	return out
}

// totalBytes sums measured traffic over the live connections.
func (s *Server) totalBytes() (read, written int64) {
	for _, c := range s.snapshot() {
		read += c.count.BytesRead()
		written += c.count.BytesWritten()
	}
	return read, written
}

// publishPeerBytes refreshes the per-peer measured byte gauges from the
// counting wrappers (labels: client=<id>; direction from the server's
// perspective).
func (s *Server) publishPeerBytes() {
	tel := s.cfg.Telemetry
	if tel == nil || tel.Metrics == nil {
		return
	}
	for _, c := range s.snapshot() {
		l := telemetry.L("client", strconv.Itoa(c.id))
		tel.SetGauge("fedguard_peer_bytes_read", float64(c.count.BytesRead()), l)
		tel.SetGauge("fedguard_peer_bytes_written", float64(c.count.BytesWritten()), l)
	}
}

// trainOne sends one round's work to a client and reads back its update,
// retrying transient failures with exponential backoff while the round
// deadline allows. Clients cache their last computed update per round,
// so a re-request after a lost or corrupt frame does not retrain (and
// does not perturb the client's deterministic random stream).
//
// The whole per-client exchange — retries included — is one
// "server.request" span under the round: its labels carry the retry
// count, outcome (with drop reason on failure), negotiated encoding, and
// the measured bytes both ways, and each attempt's latency lands in the
// per-peer histogram. On CapTrace connections the span's context rides
// the request frame so the client's spans parent onto it.
func (s *Server) trainOne(c *clientConn, round int, needDecoder bool, global []float32, deadline time.Time, roundSpan *telemetry.Span) (fl.Update, error) {
	tel := s.cfg.Telemetry
	clientLabel := telemetry.L("client", strconv.Itoa(c.id))
	sp := roundSpan.Child("server.request", clientLabel,
		telemetry.L("encoding", encName(c.enc)))
	retries := 0
	r0, w0 := c.count.BytesRead(), c.count.BytesWritten()
	defer func() {
		sp.SetInt("retries", int64(retries))
		sp.SetInt("bytes_read", c.count.BytesRead()-r0)
		sp.SetInt("bytes_written", c.count.BytesWritten()-w0)
		sp.End()
	}()
	backoff := s.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if attempt > s.cfg.MaxRetries {
				break
			}
			if !deadline.IsZero() && time.Now().Add(backoff).After(deadline) {
				break
			}
			time.Sleep(backoff)
			backoff *= 2
			retries++
			tel.AddCounter("fedguard_net_retries_total", 1)
		}
		attemptStart := time.Now()
		u, err := s.requestOnce(c, round, needDecoder, global, deadline, sp)
		tel.Observe(telemetry.PeerLatencyMetric,
			time.Since(attemptStart).Seconds(), clientLabel)
		if err == nil {
			sp.SetLabel("outcome", "ok")
			return u, nil
		}
		lastErr = err
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			tel.AddCounter("fedguard_net_timeouts_total", 1)
		}
		if !transientErr(err) {
			break
		}
	}
	sp.SetLabel("outcome", "dropped")
	sp.SetLabel("reason", dropReason(lastErr))
	return fl.Update{}, lastErr
}

// encName labels a connection's negotiated wire encoding.
func encName(enc bool) string {
	if enc {
		return "codec"
	}
	return "raw"
}

// requestOnce performs a single request/update exchange under the
// configured deadlines, skipping stale updates left over from earlier
// retried rounds. The request shape follows the connection's negotiated
// encoding: raw TrainRequest/Update, or the compressed variants. On
// CapTrace connections the frame carries reqSpan's context; the span is
// constant across a round's retries (trainOne owns it), so retried
// frames stay byte-identical.
func (s *Server) requestOnce(c *clientConn, round int, needDecoder bool, global []float32, deadline time.Time, reqSpan *telemetry.Span) (fl.Update, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.conn.SetDeadline(s.opDeadline(deadline))
	defer c.conn.SetDeadline(time.Time{})
	var req any
	if c.enc {
		var err error
		if req, err = s.buildRequestC(c, round, needDecoder, global, reqSpan); err != nil {
			return fl.Update{}, err
		}
	} else {
		tr := &wire.TrainRequest{Round: uint32(round), NeedDecoder: needDecoder, Global: global}
		if c.trace {
			tr.Trace = wireTrace(reqSpan.Context())
		}
		req = tr
	}
	if err := c.send(req); err != nil {
		return fl.Update{}, err
	}
	// A retried earlier round can leave its late update in the stream;
	// skip a bounded number of stale frames.
	for skipped := 0; skipped < 4; skipped++ {
		c.conn.SetReadDeadline(s.opDeadline(deadline))
		msg, err := c.recv()
		if err != nil {
			return fl.Update{}, err
		}
		if c.enc {
			u, ok := msg.(*wire.UpdateC)
			if !ok {
				return fl.Update{}, fmt.Errorf("%w: expected UpdateC, got %T", errProtocol, msg)
			}
			if u.Round < uint32(round) {
				continue
			}
			if u.Round != uint32(round) {
				return fl.Update{}, fmt.Errorf("fednet: update for round %d, expected %d", u.Round, round)
			}
			return s.decodeUpdateC(c, u, global)
		}
		u, ok := msg.(*wire.Update)
		if !ok {
			return fl.Update{}, fmt.Errorf("fednet: expected Update, got %T", msg)
		}
		if u.Round < uint32(round) {
			continue
		}
		if u.Round != uint32(round) {
			return fl.Update{}, fmt.Errorf("fednet: update for round %d, expected %d", u.Round, round)
		}
		out := fl.Update{
			ClientID:   int(u.ClientID),
			Weights:    u.Weights,
			NumSamples: int(u.NumSamples),
		}
		if len(u.Decoder) > 0 {
			out.Decoder = u.Decoder
		}
		if len(u.DecoderClasses) > 0 {
			out.DecoderClasses = make([]int, len(u.DecoderClasses))
			for i, v := range u.DecoderClasses {
				out.DecoderClasses[i] = int(v)
			}
		}
		return out, nil
	}
	return fl.Update{}, fmt.Errorf("fednet: too many stale updates from client %d", c.id)
}

// buildRequestC assembles (and caches) the round's compressed broadcast
// for one connection: the global delta-encoded against the last global
// this connection received (ψ₀ on a fresh connection), plus the decoder
// hash the server already holds for this client so the update can dedup.
// Retries of the same round reuse the cached request verbatim — a
// re-encode against a moved base would desynchronize the peer.
// Connections holding the same base share one encoded buffer via
// encodeBroadcast, so the steady-state fan-out encodes once per round.
// Caller holds c.mu.
func (s *Server) buildRequestC(c *clientConn, round int, needDecoder bool, global []float32, reqSpan *telemetry.Span) (*wire.TrainRequestC, error) {
	if c.lastTR != nil && c.lastTR.Round == uint32(round) {
		return c.lastTR, nil
	}
	base := c.baseVec
	baseRound := c.baseRound
	if base == nil {
		base, baseRound = s.initGlobal, 0
	}
	entry, err := s.encodeBroadcast(uint32(round), baseRound, global, base, reqSpan)
	if err != nil {
		return nil, err
	}
	var hash uint64
	s.mu.Lock()
	if e := s.decoders[c.id]; e != nil {
		hash = e.hash
	}
	s.mu.Unlock()
	tr := &wire.TrainRequestC{
		Round:       uint32(round),
		NeedDecoder: needDecoder,
		DecoderHash: hash,
		Encoding:    wire.EncDelta,
		BaseRound:   baseRound,
		NumParams:   uint32(len(global)),
		Payload:     entry.payload,
	}
	if c.trace {
		// Attached once at build time: the cached frame (and thus every
		// retry) carries the identical trace block.
		tr.Trace = wireTrace(reqSpan.Context())
	}
	s.releaseBroadcast(c.lastEntry)
	c.lastEntry = entry
	c.lastTR = tr
	c.baseVec = global
	c.baseRound = uint32(round)
	return tr, nil
}

// encodeBroadcast returns the round's encoded delta against the given
// base, shared by every connection holding that base: the first request
// for a (round, baseRound) key delta-encodes into a pooled buffer under
// s.mu — concurrent requesters for the same key block briefly and reuse
// the result — and later requests just bump the refcount. Fresh or
// rejoined connections (base ψ₀, round 0) share a key the same way.
func (s *Server) encodeBroadcast(round, baseRound uint32, global, base []float32, reqSpan *telemetry.Span) (*bcastEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bcastRound != round {
		// Entries of earlier rounds die with their refcounts; the new
		// round starts a fresh key space.
		s.bcast = make(map[uint32]*bcastEntry)
		s.bcastRound = round
	}
	if e := s.bcast[baseRound]; e != nil {
		e.refs++
		return e, nil
	}
	sp := reqSpan.Child("server.encode_broadcast",
		telemetry.L("base_round", strconv.Itoa(int(baseRound))))
	start := time.Now()
	buf, _ := bcastBufPool.Get().([]byte)
	payload, err := codec.AppendEncodeDelta(buf[:0], global, base)
	if err != nil {
		sp.End()
		return nil, err
	}
	s.bcastEncodes.Add(1)
	sp.SetInt("bytes", int64(len(payload)))
	sp.End()
	s.cfg.Telemetry.Observe(telemetry.BroadcastEncodeMetric, time.Since(start).Seconds())
	e := &bcastEntry{payload: payload, refs: 1}
	s.bcast[baseRound] = e
	return e, nil
}

// releaseBroadcast drops one reference to a shared broadcast buffer,
// recycling it once no cached request uses it. A zero-ref entry is also
// unlinked from the current round's cache so a later requester cannot
// revive a recycled buffer. Safe on nil; callers must not hold s.mu.
func (s *Server) releaseBroadcast(e *bcastEntry) {
	if e == nil {
		return
	}
	s.mu.Lock()
	e.refs--
	free := e.refs == 0
	if free {
		for k, v := range s.bcast {
			if v == e {
				delete(s.bcast, k)
			}
		}
	}
	s.mu.Unlock()
	if free {
		bcastBufPool.Put(e.payload[:0])
	}
}

// decodeUpdateC reverses the client's compressed update: weights are a
// codec blob (usually a delta against this round's broadcast, which the
// server still holds), and the decoder arrives either as bytes (cached
// for future dedup, after verifying the declared hash) or as a
// hash-only token resolved from the cache. Every violation is
// errProtocol — the checksum already passed, so a bad blob is a peer
// bug, not line noise.
func (s *Server) decodeUpdateC(c *clientConn, u *wire.UpdateC, global []float32) (fl.Update, error) {
	if int(u.NumParams) != len(global) {
		return fl.Update{}, fmt.Errorf("%w: update of %d params, model has %d",
			errProtocol, u.NumParams, len(global))
	}
	var weights []float32
	var err error
	switch u.Encoding {
	case wire.EncDelta:
		weights, err = codec.DecodeDelta(u.Weights, global)
	case wire.EncCodec:
		weights, err = codec.Decode(u.Weights, len(global))
		if err == nil && len(weights) != len(global) {
			err = fmt.Errorf("decoded %d params", len(weights))
		}
	default:
		err = fmt.Errorf("unknown encoding %d", u.Encoding)
	}
	if err != nil {
		return fl.Update{}, fmt.Errorf("%w: weights: %v", errProtocol, err)
	}
	out := fl.Update{
		ClientID:   int(u.ClientID),
		Weights:    weights,
		NumSamples: int(u.NumSamples),
	}
	if u.DecoderHash != 0 {
		var dec []float32
		if len(u.Decoder) > 0 {
			if int(u.NumDecoderParams) != s.decoderSize {
				return fl.Update{}, fmt.Errorf("%w: decoder of %d params, expected %d",
					errProtocol, u.NumDecoderParams, s.decoderSize)
			}
			dec, err = codec.Decode(u.Decoder, s.decoderSize)
			if err != nil || len(dec) != s.decoderSize {
				return fl.Update{}, fmt.Errorf("%w: decoder blob: %v", errProtocol, err)
			}
			if codec.Hash(dec) != u.DecoderHash {
				return fl.Update{}, fmt.Errorf("%w: decoder hash mismatch", errProtocol)
			}
			s.mu.Lock()
			s.decoders[c.id] = &decoderCache{hash: u.DecoderHash, params: dec}
			s.mu.Unlock()
		} else {
			s.mu.Lock()
			entry := s.decoders[c.id]
			s.mu.Unlock()
			if entry == nil || entry.hash != u.DecoderHash {
				return fl.Update{}, fmt.Errorf("%w: decoder token %016x not cached",
					errProtocol, u.DecoderHash)
			}
			dec = entry.params
		}
		out.Decoder = dec
		if len(u.DecoderClasses) > 0 {
			out.DecoderClasses = make([]int, len(u.DecoderClasses))
			for i, v := range u.DecoderClasses {
				out.DecoderClasses[i] = int(v)
			}
		}
	}
	return out, nil
}

// opDeadline combines the per-message IOTimeout with the round deadline
// (whichever comes first; zero means no deadline).
func (s *Server) opDeadline(roundDeadline time.Time) time.Time {
	var d time.Time
	if s.cfg.IOTimeout > 0 {
		d = time.Now().Add(s.cfg.IOTimeout)
	}
	if !roundDeadline.IsZero() && (d.IsZero() || roundDeadline.Before(d)) {
		d = roundDeadline
	}
	return d
}

// deadliner is the optional listener capability used for bounded
// registration waits and the interruptible rejoin accept loop.
type deadliner interface {
	SetDeadline(time.Time) error
}

// acceptPoll is the rejoin loop's accept-deadline granularity.
const acceptPoll = 200 * time.Millisecond

// register accepts connections until every expected client has said
// hello (or, in tolerant mode with RegisterTimeout, until the deadline
// with at least the quorum present), then sends each its setup message.
func (s *Server) register(ln net.Listener) error {
	cfg := s.cfg.Experiment
	tolerant := s.cfg.tolerant()
	var overall time.Time
	if tolerant && s.cfg.RegisterTimeout > 0 {
		overall = time.Now().Add(s.cfg.RegisterTimeout)
	}
	dl, canDeadline := ln.(deadliner)
	s.mu.Lock()
	s.clients = make(map[int]*clientConn, cfg.NumClients)
	s.mu.Unlock()
	registered := 0
	for registered < cfg.NumClients {
		if !overall.IsZero() && canDeadline {
			dl.SetDeadline(overall)
		}
		conn, err := ln.Accept()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && registered >= s.cfg.MinClientsPerRound {
				// Quorum present: start without the missing clients (the
				// rejoin loop keeps listening for them).
				break
			}
			return fmt.Errorf("fednet: accept: %w", err)
		}
		c, err := s.handshake(conn)
		if err != nil {
			conn.Close()
			if tolerant {
				// A broken or hostile registration must not sink the run.
				s.cfg.Telemetry.AddCounter("fedguard_net_bad_registrations_total", 1)
				continue
			}
			return err
		}
		s.mu.Lock()
		if _, dup := s.clients[c.id]; dup {
			s.mu.Unlock()
			conn.Close()
			return fmt.Errorf("fednet: duplicate client ID %d", c.id)
		}
		s.clients[c.id] = c
		s.mu.Unlock()
		registered++
	}
	if canDeadline {
		dl.SetDeadline(time.Time{})
	}
	return nil
}

// handshake reads a Hello from a fresh connection, validates the claimed
// identity, wires up byte accounting, and answers with the client's
// Setup. Shared by initial registration and mid-run rejoins.
func (s *Server) handshake(conn net.Conn) (*clientConn, error) {
	cfg := s.cfg.Experiment
	if s.cfg.tolerant() {
		t := s.cfg.IOTimeout
		if t <= 0 {
			t = 5 * time.Second
		}
		conn.SetDeadline(time.Now().Add(t))
		defer conn.SetDeadline(time.Time{})
	}
	count := wire.NewCountingConn(conn)
	msg, err := wire.ReadMessage(count)
	if err != nil {
		return nil, fmt.Errorf("fednet: registration: %w", err)
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		return nil, fmt.Errorf("fednet: expected Hello, got %T", msg)
	}
	id := int(hello.ClientID)
	if id < 0 || id >= cfg.NumClients {
		return nil, fmt.Errorf("fednet: client ID %d out of range", id)
	}
	c := &clientConn{id: id, conn: conn, count: count}
	if tel := s.cfg.Telemetry; tel != nil {
		l := telemetry.L("client", strconv.Itoa(id))
		count.OnClose(func(read, written int64) {
			tel.SetGauge("fedguard_peer_bytes_read", float64(read), l)
			tel.SetGauge("fedguard_peer_bytes_written", float64(written), l)
		})
	}
	setup := s.setupFor(id, s.parts[id], s.malicious[id])
	// Negotiate the compressed encodings: only when this server opts in
	// AND the client advertised the capability. Either side staying
	// silent keeps the connection on raw frames — and a fresh connection
	// always restarts from the ψ₀ delta base, which is what makes rejoin
	// after a drop safe.
	if s.cfg.Compress && hello.Encodings&wire.CapCodec != 0 {
		c.enc = true
		setup.Encodings |= wire.CapCodec
	}
	// Trace-context propagation negotiates the same way: both ends must
	// opt in, and a silent peer keeps legacy frames byte-for-byte.
	if s.cfg.Trace && hello.Encodings&wire.CapTrace != 0 {
		c.trace = true
		setup.Encodings |= wire.CapTrace
	}
	if err := c.send(setup); err != nil {
		return nil, fmt.Errorf("fednet: sending setup to %d: %w", id, err)
	}
	return c, nil
}

// acceptRejoins keeps the listener hot while rounds run, so crashed or
// late clients can re-register: a successful handshake swaps the new
// connection into the registry (closing any stale one) and the client
// participates again from the next round, receiving the current global
// model with its next TrainRequest.
func (s *Server) acceptRejoins(ln net.Listener, stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	dl := ln.(deadliner)
	for {
		select {
		case <-stop:
			return
		default:
		}
		dl.SetDeadline(time.Now().Add(acceptPoll))
		conn, err := ln.Accept()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return // listener closed
		}
		c, err := s.handshake(conn)
		if err != nil {
			conn.Close()
			s.cfg.Telemetry.AddCounter("fedguard_net_bad_registrations_total", 1)
			continue
		}
		s.mu.Lock()
		old := s.clients[c.id]
		s.clients[c.id] = c
		s.mu.Unlock()
		if old != nil {
			old.count.Close()
		}
		// A zero-length span makes the rejoin visible on the run's
		// timeline alongside the round spans.
		rj := s.runSpan.Child("client.rejoin", telemetry.L("client", strconv.Itoa(c.id)))
		rj.SetInt("round", s.round.Load())
		rj.End()
		s.cfg.Telemetry.Emit(telemetry.ClientRejoined{
			Round:    int(s.round.Load()),
			ClientID: c.id,
		})
		s.cfg.Telemetry.AddCounter("fedguard_net_rejoins_total", 1)
	}
}

func (s *Server) setupFor(id int, indices []int, isMalicious bool) *wire.Setup {
	cfg := s.cfg.Experiment
	idx := make([]uint32, len(indices))
	for i, v := range indices {
		idx[i] = uint32(v)
	}
	attackName := ""
	if isMalicious {
		attackName = s.cfg.AttackName
	}
	return &wire.Setup{
		Seed:      cfg.Seed,
		DataSeed:  s.cfg.DataSeed,
		TrainSize: uint32(s.cfg.TrainSize),
		Indices:   idx,
		ArchName:  s.cfg.ArchName,
		Epochs:    uint32(cfg.Client.Train.Epochs),
		BatchSize: uint32(cfg.Client.Train.BatchSize),
		LR:        cfg.Client.Train.LR,
		Momentum:  cfg.Client.Train.Momentum,

		CVAEHidden: uint32(cfg.Client.CVAE.Hidden),
		CVAELatent: uint32(cfg.Client.CVAE.Latent),
		CVAEEpochs: uint32(cfg.Client.CVAETrain.Epochs),
		CVAEBatch:  uint32(cfg.Client.CVAETrain.BatchSize),
		CVAELR:     cfg.Client.CVAETrain.LR,
		NumClasses: uint32(cfg.Client.CVAE.Classes),

		Attack:     attackName,
		AttackSeed: rng.DeriveSeed(cfg.Seed, "noise", 0),
	}
}

// RunClient connects to addr, registers as clientID, and serves training
// requests until the server shuts the session down.
func RunClient(addr string, clientID int) error {
	return runClientOnce(addr, clientID, ClientOptions{})
}

func runClientOnce(addr string, clientID int, opts ClientOptions) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("fednet: dial %s: %w", addr, err)
	}
	defer conn.Close()
	return ServeClientOpts(conn, clientID, opts)
}

// ClientOptions tune client-side fault tolerance and wire encoding.
type ClientOptions struct {
	// Redials bounds reconnection attempts after a broken session
	// (0 = fail on the first error, like RunClient).
	Redials int
	// RedialBackoff is the sleep between reconnection attempts
	// (default 250ms).
	RedialBackoff time.Duration
	// Compress advertises the codec capability during registration; the
	// compressed path is used only when the server opts in too, so a
	// compress-on client against a compress-off (or legacy) server just
	// runs raw frames.
	Compress bool
	// Trace advertises the trace-propagation capability (wire.CapTrace).
	// Effective only when the server opts in too AND Telemetry below has
	// tracing enabled; otherwise the client runs legacy frames and local
	// flat timers.
	Trace bool
	// Telemetry, when non-nil, receives the client's phase metrics and —
	// with tracing enabled via EnableTracing — its span tree, parented
	// onto the server's request spans on CapTrace connections. The
	// connection is wrapped for byte accounting so upload spans carry
	// measured byte counts.
	Telemetry *telemetry.T
	// Session, when non-nil, carries the client's deterministic local
	// state (private random stream, trained CVAE decoder, cached round
	// responses) across redials. RunClientResilient supplies one
	// automatically; without it every reconnection rebuilds the client
	// from the seed, which breaks bit-identical resume after a server
	// restart.
	Session *ClientSession
}

// ClientSession preserves a client's state between connections. The
// client object holds the private random stream and CVAE decoder whose
// positions encode every round trained so far; the cached responses
// answer duplicate requests (a resumed server re-asking for a round
// this client already trained) without retraining — retraining would
// advance the stream and diverge from the uninterrupted run.
type ClientSession struct {
	client   *fl.Client
	sig      uint64
	lastRaw  *wire.Update
	lastComp *wire.UpdateC
}

// setupSig fingerprints the deterministic-state-defining fields of a
// Setup message. Encodings is deliberately excluded: renegotiating
// compression or tracing on a redial does not invalidate the client's
// trained state.
func setupSig(s *wire.Setup) uint64 {
	h := fnv.New64a()
	var b [8]byte
	w64 := func(v uint64) { binary.LittleEndian.PutUint64(b[:], v); h.Write(b[:]) }
	ws := func(v string) { w64(uint64(len(v))); h.Write([]byte(v)) }
	w64(s.Seed)
	w64(s.DataSeed)
	w64(uint64(s.TrainSize))
	w64(uint64(len(s.Indices)))
	for _, v := range s.Indices {
		w64(uint64(v))
	}
	ws(s.ArchName)
	w64(uint64(s.Epochs))
	w64(uint64(s.BatchSize))
	w64(math.Float64bits(s.LR))
	w64(math.Float64bits(s.Momentum))
	w64(uint64(s.CVAEHidden))
	w64(uint64(s.CVAELatent))
	w64(uint64(s.CVAEEpochs))
	w64(uint64(s.CVAEBatch))
	w64(math.Float64bits(s.CVAELR))
	w64(uint64(s.NumClasses))
	ws(s.Attack)
	w64(s.AttackSeed)
	return h.Sum64()
}

// RunClientResilient is RunClient with a reconnect loop: when the
// session breaks (server restart, dropped connection, transient network
// failure), the client redials and re-registers, resuming from whatever
// round the server sends next. A clean Shutdown ends the loop.
func RunClientResilient(addr string, clientID int, opts ClientOptions) error {
	backoff := opts.RedialBackoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	if opts.Session == nil {
		// State must survive redials: a rejoined client that rebuilt its
		// random stream from the seed would repeat early-round draws.
		opts.Session = &ClientSession{}
	}
	err := runClientOnce(addr, clientID, opts)
	for attempt := 0; err != nil && attempt < opts.Redials; attempt++ {
		time.Sleep(backoff)
		err = runClientOnce(addr, clientID, opts)
	}
	return err
}

// ServeClient speaks the client side of the protocol over an existing
// connection (exposed for tests and in-process loopback demos), with
// raw framing.
func ServeClient(conn net.Conn, clientID int) error {
	return ServeClientOpts(conn, clientID, ClientOptions{})
}

// ServeClientOpts is ServeClient with options: when opts.Compress is set
// and the server's Setup confirms the capability, all round traffic uses
// the compressed message types; when opts.Trace (and the server's
// confirmation) is set, round frames carry trace context both ways.
func ServeClientOpts(conn net.Conn, clientID int, opts ClientOptions) error {
	hello := &wire.Hello{ClientID: uint32(clientID)}
	if opts.Compress {
		hello.Encodings |= wire.CapCodec
	}
	if opts.Trace {
		hello.Encodings |= wire.CapTrace
	}
	// With telemetry attached, wrap the stream for byte accounting so
	// upload spans can carry measured byte counts.
	var rw io.ReadWriter = conn
	var count *wire.CountingConn
	if opts.Telemetry != nil {
		count = wire.NewCountingConn(conn)
		rw = count
	}
	if err := wire.WriteMessage(rw, hello); err != nil {
		return err
	}
	msg, err := wire.ReadMessage(rw)
	if err != nil {
		return fmt.Errorf("fednet: reading setup: %w", err)
	}
	setup, ok := msg.(*wire.Setup)
	if !ok {
		return fmt.Errorf("fednet: expected Setup, got %T", msg)
	}

	// Reuse the session's client when its setup matches: the private
	// random stream and trained decoder then carry over from previous
	// connections, so a redial after a server crash resumes mid-stream
	// instead of replaying from the seed. A session seeing this setup
	// shape for the first time (or a changed one) builds fresh.
	sess := opts.Session
	if sess == nil {
		sess = &ClientSession{}
	}
	sig := setupSig(setup)
	client := sess.client
	if client == nil || sess.sig != sig {
		client, err = buildClient(clientID, setup)
		if err != nil {
			return err
		}
		*sess = ClientSession{client: client, sig: sig}
	}
	tel := opts.Telemetry
	client.SetTelemetry(tel)
	if opts.Compress && setup.Encodings&wire.CapCodec != 0 {
		return serveCompressed(rw, clientID, setup, client, sess, tel, count)
	}

	// The last computed update (session-cached, so it survives redials)
	// answers a server re-request for the same round — after a timeout, a
	// corrupt frame, or a crash-and-resume — from cache: retraining would
	// advance the client's private random stream and break the run's
	// determinism. The cached frame includes its original trace context,
	// so retries resend byte-identical frames.
	last := sess.lastRaw
	for {
		msg, err := wire.ReadMessage(rw)
		if err != nil {
			return fmt.Errorf("fednet: client %d read: %w", clientID, err)
		}
		switch m := msg.(type) {
		case *wire.TrainRequest:
			if last != nil && last.Round == m.Round {
				// Duplicate request: answer from cache under a short span
				// labeled as a resend, so retry amplification is visible
				// from the client's side of the trace too.
				sp := tel.StartRemote(spanCtx(m.Trace), "client.round",
					clientRoundLabels(clientID, m.Round, true)...)
				err := wire.WriteMessage(rw, last)
				sp.End()
				if err != nil {
					return fmt.Errorf("fednet: client %d write: %w", clientID, err)
				}
				continue
			}
			// The round span parents onto the server's request span when
			// the frame carries trace context (StartRemote degrades to a
			// local root otherwise).
			sp := tel.StartRemote(spanCtx(m.Trace), "client.round",
				clientRoundLabels(clientID, m.Round, false)...)
			u := client.RunRoundSpan(m.Global, m.NeedDecoder, sp)
			resp := &wire.Update{
				Round:      m.Round,
				ClientID:   uint32(u.ClientID),
				NumSamples: uint32(u.NumSamples),
				Weights:    u.Weights,
				Decoder:    u.Decoder,
			}
			if len(u.DecoderClasses) > 0 {
				resp.DecoderClasses = make([]uint32, len(u.DecoderClasses))
				for i, v := range u.DecoderClasses {
					resp.DecoderClasses[i] = uint32(v)
				}
			}
			resp.Trace = wireTrace(sp.Context())
			last = resp
			sess.lastRaw = resp
			err := uploadSpanned(rw, resp, sp, count)
			sp.End()
			if err != nil {
				return fmt.Errorf("fednet: client %d write: %w", clientID, err)
			}
		case *wire.Shutdown:
			return nil
		default:
			return fmt.Errorf("fednet: client %d: unexpected %T", clientID, msg)
		}
	}
}

// spanCtx converts a wire trace block into a span context.
func spanCtx(t wire.Trace) telemetry.SpanContext {
	return telemetry.SpanContext{TraceID: t.TraceID, SpanID: t.SpanID}
}

// wireTrace is the inverse of spanCtx (zero context → zero block → no
// bytes on the wire).
func wireTrace(c telemetry.SpanContext) wire.Trace {
	return wire.Trace{TraceID: c.TraceID, SpanID: c.SpanID}
}

// clientRoundLabels builds the standard client.round span labels.
func clientRoundLabels(clientID int, round uint32, resend bool) []telemetry.Label {
	labels := []telemetry.Label{
		telemetry.L("client", strconv.Itoa(clientID)),
		telemetry.L("round", strconv.Itoa(int(round))),
	}
	if resend {
		labels = append(labels, telemetry.L("resend", "true"))
	}
	return labels
}

// uploadSpanned writes one update frame under a "client.upload" child
// span carrying the measured byte count when accounting is available.
func uploadSpanned(w io.Writer, msg any, parent *telemetry.Span, count *wire.CountingConn) error {
	up := parent.Child("client.upload")
	var w0 int64
	if count != nil {
		w0 = count.BytesWritten()
	}
	err := wire.WriteMessage(w, msg)
	if count != nil {
		up.SetInt("bytes", count.BytesWritten()-w0)
	}
	up.End()
	return err
}

// serveCompressed is the client round loop over the negotiated codec
// encodings. The client mirrors the server's per-connection reference
// state: it starts from the locally derived ψ₀ and advances its delta
// base exactly once per distinct round — a duplicate request (the
// server retrying after a timeout or corrupt frame, or a resumed server
// re-asking for a round trained before a redial) is answered from the
// session-cached response without retraining, so the random stream
// never moves twice for one round.
func serveCompressed(rw io.ReadWriter, clientID int, setup *wire.Setup, client *fl.Client, sess *ClientSession, tel *telemetry.T, count *wire.CountingConn) error {
	arch, err := classifier.ByName(setup.ArchName)
	if err != nil {
		return err
	}
	base := fl.InitialGlobalFrom(arch, setup.Seed) // ψ₀, round 0
	baseRound := uint32(0)
	last := sess.lastComp
	for {
		msg, err := wire.ReadMessage(rw)
		if err != nil {
			return fmt.Errorf("fednet: client %d read: %w", clientID, err)
		}
		switch m := msg.(type) {
		case *wire.TrainRequestC:
			if last != nil && last.Round == m.Round {
				sp := tel.StartRemote(spanCtx(m.Trace), "client.round",
					clientRoundLabels(clientID, m.Round, true)...)
				// A same-connection retry already advanced our base when the
				// round was first handled (baseRound == m.Round): resend as
				// is. A cross-connection duplicate — a resumed server
				// re-requesting a round trained before the redial — still
				// has to decode the broadcast, because it advances this
				// connection's delta base to the round's global, which the
				// server's next request will delta against.
				if baseRound != m.Round {
					var global []float32
					switch m.Encoding {
					case wire.EncDelta:
						if m.BaseRound != baseRound {
							sp.End()
							return fmt.Errorf("fednet: client %d: delta base round %d, holding %d",
								clientID, m.BaseRound, baseRound)
						}
						global, err = codec.DecodeDelta(m.Payload, base)
					case wire.EncCodec:
						global, err = codec.Decode(m.Payload, int(m.NumParams))
					default:
						err = fmt.Errorf("unknown encoding %d", m.Encoding)
					}
					if err == nil && len(global) != int(m.NumParams) {
						err = fmt.Errorf("decoded %d params, header says %d", len(global), m.NumParams)
					}
					if err != nil {
						sp.End()
						return fmt.Errorf("fednet: client %d broadcast: %w", clientID, err)
					}
					base, baseRound = global, m.Round
				}
				err := wire.WriteMessage(rw, last)
				sp.End()
				if err != nil {
					return fmt.Errorf("fednet: client %d write: %w", clientID, err)
				}
				continue
			}
			sp := tel.StartRemote(spanCtx(m.Trace), "client.round",
				clientRoundLabels(clientID, m.Round, false)...)
			_, stopDecode := tel.StartPhase(sp, "client.decode")
			var global []float32
			switch m.Encoding {
			case wire.EncDelta:
				if m.BaseRound != baseRound {
					return fmt.Errorf("fednet: client %d: delta base round %d, holding %d",
						clientID, m.BaseRound, baseRound)
				}
				global, err = codec.DecodeDelta(m.Payload, base)
			case wire.EncCodec:
				global, err = codec.Decode(m.Payload, int(m.NumParams))
			default:
				err = fmt.Errorf("unknown encoding %d", m.Encoding)
			}
			if err == nil && len(global) != int(m.NumParams) {
				err = fmt.Errorf("decoded %d params, header says %d", len(global), m.NumParams)
			}
			stopDecode()
			if err != nil {
				return fmt.Errorf("fednet: client %d broadcast: %w", clientID, err)
			}

			u := client.RunRoundSpan(global, m.NeedDecoder, sp)
			_, stopEncode := tel.StartPhase(sp, "client.encode")
			blob, err := codec.EncodeDelta(u.Weights, global)
			if err != nil {
				return fmt.Errorf("fednet: client %d encode: %w", clientID, err)
			}
			resp := &wire.UpdateC{
				Round:      m.Round,
				ClientID:   uint32(u.ClientID),
				NumSamples: uint32(u.NumSamples),
				Encoding:   wire.EncDelta,
				NumParams:  uint32(len(u.Weights)),
				Weights:    blob,
			}
			if len(u.Decoder) > 0 {
				h := codec.Hash(u.Decoder)
				resp.DecoderHash = h
				// Dedup: attach decoder bytes only when the server's cache
				// (advertised in the request) is stale or absent.
				if h != m.DecoderHash {
					resp.NumDecoderParams = uint32(len(u.Decoder))
					resp.Decoder = codec.Encode(u.Decoder)
				}
				if len(u.DecoderClasses) > 0 {
					resp.DecoderClasses = make([]uint32, len(u.DecoderClasses))
					for i, v := range u.DecoderClasses {
						resp.DecoderClasses[i] = uint32(v)
					}
				}
			}
			stopEncode()
			resp.Trace = wireTrace(sp.Context())
			base, baseRound = global, m.Round
			last = resp
			sess.lastComp = resp
			err = uploadSpanned(rw, resp, sp, count)
			sp.End()
			if err != nil {
				return fmt.Errorf("fednet: client %d write: %w", clientID, err)
			}
		case *wire.Shutdown:
			return nil
		default:
			return fmt.Errorf("fednet: client %d: unexpected %T", clientID, msg)
		}
	}
}

// buildClient reconstructs the deterministic local state an in-process
// federation would have given this client.
func buildClient(id int, setup *wire.Setup) (*fl.Client, error) {
	arch, err := classifier.ByName(setup.ArchName)
	if err != nil {
		return nil, err
	}
	att, err := NewAttackByName(setup.Attack, setup.AttackSeed)
	if err != nil {
		return nil, err
	}
	train := dataset.Generate(int(setup.TrainSize), dataset.DefaultGenOptions(), rng.New(setup.DataSeed))
	indices := make([]int, len(setup.Indices))
	for i, v := range setup.Indices {
		indices[i] = int(v)
	}
	clientCfg := fl.ClientConfig{
		Arch: arch,
		Train: classifier.TrainConfig{
			Epochs:    int(setup.Epochs),
			BatchSize: int(setup.BatchSize),
			LR:        setup.LR,
			Momentum:  setup.Momentum,
		},
		CVAE: cvae.Config{
			Input:   dataset.ImageH * dataset.ImageW,
			Hidden:  int(setup.CVAEHidden),
			Latent:  int(setup.CVAELatent),
			Classes: int(setup.NumClasses),
		},
		CVAETrain: cvae.TrainConfig{
			Epochs:    int(setup.CVAEEpochs),
			BatchSize: int(setup.CVAEBatch),
			LR:        setup.CVAELR,
		},
		NumClasses: int(setup.NumClasses),
	}
	stream := rng.New(rng.DeriveSeed(setup.Seed, "client", uint64(id)))
	return fl.NewClient(id, train, indices, clientCfg, att, stream), nil
}
