// Package fednet runs the federation of Algorithm 1 over real network
// sockets — the deployment shape of the paper's Grid'5000 evaluation
// (one server node, clients on remote nodes, Ethernet in between).
//
// The server and clients share nothing but the wire protocol (package
// wire) and the experiment seed: each client regenerates its SynthDigits
// shard locally from the data seed, derives its private random stream
// from the experiment seed, and builds its attack role from the setup
// message — so a networked run produces *bit-identical* accuracy
// trajectories to the in-process fl.Federation with the same
// configuration (asserted by TestLoopbackMatchesInProcess).
//
// Unlike the in-process simulator, communication columns here are
// *measured* from the sockets (via wire.CountingConn), frame overhead
// included, rather than computed from payload sizes.
package fednet

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"fedguard/internal/attack"
	"fedguard/internal/classifier"
	"fedguard/internal/cvae"
	"fedguard/internal/dataset"
	"fedguard/internal/fl"
	"fedguard/internal/rng"
	"fedguard/internal/telemetry"
	"fedguard/internal/wire"
)

// Config describes a networked federation. Experiment carries the
// federation shape (N, m, R, α, server LR, malicious fraction, client
// hyperparameters); the Attack *instance* field of Experiment is ignored
// — attacks travel by name so remote clients can construct their own.
type Config struct {
	Experiment fl.FederationConfig
	// AttackName is the malicious clients' attack ("" or "none" = benign
	// federation regardless of MaliciousFraction).
	AttackName string
	// ArchName is the classifier registry name shared by both endpoints.
	ArchName string
	// DataSeed and TrainSize let every client regenerate the identical
	// SynthDigits training set locally (no pixels on the wire).
	DataSeed  uint64
	TrainSize int
	// Telemetry, when non-nil, receives structured run events,
	// phase-level metrics, and per-peer measured byte-count gauges.
	Telemetry *telemetry.T
}

// NewAttackByName builds a client-side attack instance. AdditiveNoise
// instances built from the same seed draw the same collusive noise
// vector, so per-client construction preserves the paper's collusion
// semantics.
func NewAttackByName(name string, seed uint64) (attack.Attack, error) {
	switch name {
	case "", "none":
		return attack.None{}, nil
	case "same-value":
		return attack.NewSameValue(), nil
	case "sign-flip":
		return attack.NewSignFlip(), nil
	case "additive-noise":
		return attack.NewAdditiveNoise(0.5, seed), nil
	case "label-flip":
		return attack.NewLabelFlip(), nil
	default:
		return nil, fmt.Errorf("fednet: unknown attack %q", name)
	}
}

// Server coordinates a networked federation round loop.
type Server struct {
	cfg      Config
	test     *dataset.Dataset
	strategy fl.Strategy
}

// NewServer validates the configuration and returns a server. test is
// evaluated locally each round (the server owns the held-out set, as in
// the paper's harness).
func NewServer(cfg Config, test *dataset.Dataset, strategy fl.Strategy) (*Server, error) {
	if _, err := classifier.ByName(cfg.ArchName); err != nil {
		return nil, err
	}
	if _, err := NewAttackByName(cfg.AttackName, 0); err != nil {
		return nil, err
	}
	if cfg.TrainSize <= 0 {
		return nil, fmt.Errorf("fednet: TrainSize = %d", cfg.TrainSize)
	}
	probe := cfg.Experiment
	probe.Attack = attack.None{} // instance irrelevant; satisfy validation
	if probe.MaliciousFraction == 0 {
		probe.Attack = nil
	}
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, test: test, strategy: strategy}, nil
}

// clientConn is one registered client's connection state.
type clientConn struct {
	id    int
	conn  net.Conn
	count *wire.CountingConn
	mu    sync.Mutex // one in-flight request at a time per client
}

func (c *clientConn) send(msg any) error {
	return wire.WriteMessage(c.count, msg)
}

func (c *clientConn) recv() (any, error) {
	return wire.ReadMessage(c.count)
}

// Run accepts exactly N client registrations on ln, configures them,
// drives R federated rounds, and returns the full history. onRound, if
// non-nil, fires after every round.
func (s *Server) Run(ln net.Listener, onRound func(fl.RoundRecord)) (*fl.History, error) {
	cfg := s.cfg.Experiment
	train := dataset.Generate(s.cfg.TrainSize, dataset.DefaultGenOptions(), rng.New(s.cfg.DataSeed))
	parts := fl.Partition(train, cfg)
	malicious := fl.MaliciousPlacement(cfg)

	clients, err := s.register(ln, parts, malicious)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, c := range clients {
			c.send(&wire.Shutdown{})
			// Closing the wrapper (not the raw conn) fires the counting
			// hook, publishing each peer's final byte totals.
			c.count.Close()
		}
	}()

	serverRNG := rng.New(rng.DeriveSeed(cfg.Seed, "server", 0))
	global := fl.InitialGlobal(cfg)
	evalModel, err := classifier.ByName(s.cfg.ArchName)
	if err != nil {
		return nil, err
	}
	eval := evalModel(rng.New(rng.DeriveSeed(cfg.Seed, "eval", 0)))

	testIdx := dataset.Range(s.test.Len())
	if cfg.TestSubset > 0 && cfg.TestSubset < len(testIdx) {
		testIdx = testIdx[:cfg.TestSubset]
	}
	needDecoders := s.strategy.NeedsDecoders()
	history := &fl.History{Strategy: s.strategy.Name()}

	tel := s.cfg.Telemetry
	tel.Emit(telemetry.RunStarted{
		Strategy:          s.strategy.Name(),
		NumClients:        cfg.NumClients,
		PerRound:          cfg.PerRound,
		Rounds:            cfg.Rounds,
		Seed:              cfg.Seed,
		Attack:            s.cfg.AttackName,
		MaliciousFraction: cfg.MaliciousFraction,
	})
	runStart := time.Now()

	// Snapshot the counters so registration/setup traffic is not charged
	// to round 1.
	var lastRead, lastWritten int64
	for _, c := range clients {
		lastRead += c.count.BytesRead()
		lastWritten += c.count.BytesWritten()
	}
	for round := 1; round <= cfg.Rounds; round++ {
		trainStart := time.Now()
		sampled := serverRNG.Sample(cfg.NumClients, cfg.PerRound)
		var attackIDs []int
		for _, id := range sampled {
			if malicious[id] {
				attackIDs = append(attackIDs, id)
			}
		}
		if len(attackIDs) > 0 {
			tel.Emit(telemetry.AttackSampled{Round: round, ClientIDs: attackIDs})
		}

		updates := make([]fl.Update, len(sampled))
		errs := make([]error, len(sampled))
		var wg sync.WaitGroup
		for i, id := range sampled {
			wg.Add(1)
			go func(i, id int) {
				defer wg.Done()
				updates[i], errs[i] = s.trainOne(clients[id], round, needDecoders, global)
			}(i, id)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return history, fmt.Errorf("fednet: round %d client %d: %w", round, sampled[i], err)
			}
		}
		trainSecs := time.Since(trainStart).Seconds()

		aggStart := time.Now()
		stopAgg := tel.StartSpan("server.aggregate")
		ctx := &fl.RoundContext{
			Round:     round,
			Global:    global,
			Updates:   updates,
			RNG:       serverRNG.Split(),
			Report:    map[string]float64{},
			Telemetry: tel,
		}
		agg, err := s.strategy.Aggregate(ctx)
		if err != nil {
			return history, fmt.Errorf("fednet: round %d aggregation: %w", round, err)
		}
		lr := float32(cfg.ServerLR)
		next := make([]float32, len(global))
		for i := range next {
			next[i] = global[i] + lr*(agg[i]-global[i])
		}
		global = next
		stopAgg()
		aggSecs := time.Since(aggStart).Seconds()

		// Measured wire traffic this round, all clients combined. From the
		// server's perspective writes are uploads, reads are downloads.
		var read, written int64
		maliciousSampled := 0
		for _, c := range clients {
			read += c.count.BytesRead()
			written += c.count.BytesWritten()
		}
		s.publishPeerBytes(clients)
		for _, id := range sampled {
			if malicious[id] {
				maliciousSampled++
			}
		}
		rec := fl.RoundRecord{
			Round:            round,
			TrainSeconds:     trainSecs,
			AggregateSeconds: aggSecs,
			UploadBytes:      written - lastWritten,
			DownloadBytes:    read - lastRead,
			Sampled:          sampled,
			MaliciousSampled: maliciousSampled,
			Report:           ctx.Report,
		}
		lastRead, lastWritten = read, written

		evalStart := time.Now()
		stopEval := tel.StartSpan("server.eval")
		if err := eval.LoadParams(global); err != nil {
			return history, err
		}
		rec.TestAccuracy = classifier.Evaluate(eval, s.test, testIdx)
		stopEval()
		rec.EvalSeconds = time.Since(evalStart).Seconds()
		rec.Seconds = rec.TrainSeconds + rec.AggregateSeconds + rec.EvalSeconds

		fl.RecordRound(tel, rec)
		history.Rounds = append(history.Rounds, rec)
		if onRound != nil {
			onRound(rec)
		}
	}
	history.FinalWeights = global
	tel.Emit(telemetry.RunCompleted{
		Rounds:        cfg.Rounds,
		FinalAccuracy: history.FinalAccuracy(),
		TotalSeconds:  time.Since(runStart).Seconds(),
	})
	return history, nil
}

// publishPeerBytes refreshes the per-peer measured byte gauges from the
// counting wrappers (labels: client=<id>; direction from the server's
// perspective).
func (s *Server) publishPeerBytes(clients map[int]*clientConn) {
	tel := s.cfg.Telemetry
	if tel == nil || tel.Metrics == nil {
		return
	}
	for id, c := range clients {
		l := telemetry.L("client", strconv.Itoa(id))
		tel.SetGauge("fedguard_peer_bytes_read", float64(c.count.BytesRead()), l)
		tel.SetGauge("fedguard_peer_bytes_written", float64(c.count.BytesWritten()), l)
	}
}

// trainOne sends one round's work to a client and reads back its update.
func (s *Server) trainOne(c *clientConn, round int, needDecoder bool, global []float32) (fl.Update, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	req := &wire.TrainRequest{Round: uint32(round), NeedDecoder: needDecoder, Global: global}
	if err := c.send(req); err != nil {
		return fl.Update{}, err
	}
	msg, err := c.recv()
	if err != nil {
		return fl.Update{}, err
	}
	u, ok := msg.(*wire.Update)
	if !ok {
		return fl.Update{}, fmt.Errorf("fednet: expected Update, got %T", msg)
	}
	if u.Round != uint32(round) {
		return fl.Update{}, fmt.Errorf("fednet: update for round %d, expected %d", u.Round, round)
	}
	out := fl.Update{
		ClientID:   int(u.ClientID),
		Weights:    u.Weights,
		NumSamples: int(u.NumSamples),
	}
	if len(u.Decoder) > 0 {
		out.Decoder = u.Decoder
	}
	if len(u.DecoderClasses) > 0 {
		out.DecoderClasses = make([]int, len(u.DecoderClasses))
		for i, v := range u.DecoderClasses {
			out.DecoderClasses[i] = int(v)
		}
	}
	return out, nil
}

// register accepts connections until every expected client has said
// hello, then sends each its setup message.
func (s *Server) register(ln net.Listener, parts [][]int, malicious map[int]bool) (map[int]*clientConn, error) {
	cfg := s.cfg.Experiment
	clients := make(map[int]*clientConn, cfg.NumClients)
	for len(clients) < cfg.NumClients {
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("fednet: accept: %w", err)
		}
		count := wire.NewCountingConn(conn)
		msg, err := wire.ReadMessage(count)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("fednet: registration: %w", err)
		}
		hello, ok := msg.(*wire.Hello)
		if !ok {
			conn.Close()
			return nil, fmt.Errorf("fednet: expected Hello, got %T", msg)
		}
		id := int(hello.ClientID)
		if id < 0 || id >= cfg.NumClients {
			conn.Close()
			return nil, fmt.Errorf("fednet: client ID %d out of range", id)
		}
		if _, dup := clients[id]; dup {
			conn.Close()
			return nil, fmt.Errorf("fednet: duplicate client ID %d", id)
		}
		c := &clientConn{id: id, conn: conn, count: count}
		if tel := s.cfg.Telemetry; tel != nil {
			l := telemetry.L("client", strconv.Itoa(id))
			count.OnClose(func(read, written int64) {
				tel.SetGauge("fedguard_peer_bytes_read", float64(read), l)
				tel.SetGauge("fedguard_peer_bytes_written", float64(written), l)
			})
		}
		if err := c.send(s.setupFor(id, parts[id], malicious[id])); err != nil {
			conn.Close()
			return nil, fmt.Errorf("fednet: sending setup to %d: %w", id, err)
		}
		clients[id] = c
	}
	return clients, nil
}

func (s *Server) setupFor(id int, indices []int, isMalicious bool) *wire.Setup {
	cfg := s.cfg.Experiment
	idx := make([]uint32, len(indices))
	for i, v := range indices {
		idx[i] = uint32(v)
	}
	attackName := ""
	if isMalicious {
		attackName = s.cfg.AttackName
	}
	return &wire.Setup{
		Seed:      cfg.Seed,
		DataSeed:  s.cfg.DataSeed,
		TrainSize: uint32(s.cfg.TrainSize),
		Indices:   idx,
		ArchName:  s.cfg.ArchName,
		Epochs:    uint32(cfg.Client.Train.Epochs),
		BatchSize: uint32(cfg.Client.Train.BatchSize),
		LR:        cfg.Client.Train.LR,
		Momentum:  cfg.Client.Train.Momentum,

		CVAEHidden: uint32(cfg.Client.CVAE.Hidden),
		CVAELatent: uint32(cfg.Client.CVAE.Latent),
		CVAEEpochs: uint32(cfg.Client.CVAETrain.Epochs),
		CVAEBatch:  uint32(cfg.Client.CVAETrain.BatchSize),
		CVAELR:     cfg.Client.CVAETrain.LR,
		NumClasses: uint32(cfg.Client.CVAE.Classes),

		Attack:     attackName,
		AttackSeed: rng.DeriveSeed(cfg.Seed, "noise", 0),
	}
}

// RunClient connects to addr, registers as clientID, and serves training
// requests until the server shuts the session down.
func RunClient(addr string, clientID int) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("fednet: dial %s: %w", addr, err)
	}
	defer conn.Close()
	return ServeClient(conn, clientID)
}

// ServeClient speaks the client side of the protocol over an existing
// connection (exposed for tests and in-process loopback demos).
func ServeClient(conn net.Conn, clientID int) error {
	if err := wire.WriteMessage(conn, &wire.Hello{ClientID: uint32(clientID)}); err != nil {
		return err
	}
	msg, err := wire.ReadMessage(conn)
	if err != nil {
		return fmt.Errorf("fednet: reading setup: %w", err)
	}
	setup, ok := msg.(*wire.Setup)
	if !ok {
		return fmt.Errorf("fednet: expected Setup, got %T", msg)
	}

	client, err := buildClient(clientID, setup)
	if err != nil {
		return err
	}

	for {
		msg, err := wire.ReadMessage(conn)
		if err != nil {
			return fmt.Errorf("fednet: client %d read: %w", clientID, err)
		}
		switch m := msg.(type) {
		case *wire.TrainRequest:
			u := client.RunRound(m.Global, m.NeedDecoder)
			resp := &wire.Update{
				Round:      m.Round,
				ClientID:   uint32(u.ClientID),
				NumSamples: uint32(u.NumSamples),
				Weights:    u.Weights,
				Decoder:    u.Decoder,
			}
			if len(u.DecoderClasses) > 0 {
				resp.DecoderClasses = make([]uint32, len(u.DecoderClasses))
				for i, v := range u.DecoderClasses {
					resp.DecoderClasses[i] = uint32(v)
				}
			}
			if err := wire.WriteMessage(conn, resp); err != nil {
				return fmt.Errorf("fednet: client %d write: %w", clientID, err)
			}
		case *wire.Shutdown:
			return nil
		default:
			return fmt.Errorf("fednet: client %d: unexpected %T", clientID, msg)
		}
	}
}

// buildClient reconstructs the deterministic local state an in-process
// federation would have given this client.
func buildClient(id int, setup *wire.Setup) (*fl.Client, error) {
	arch, err := classifier.ByName(setup.ArchName)
	if err != nil {
		return nil, err
	}
	att, err := NewAttackByName(setup.Attack, setup.AttackSeed)
	if err != nil {
		return nil, err
	}
	train := dataset.Generate(int(setup.TrainSize), dataset.DefaultGenOptions(), rng.New(setup.DataSeed))
	indices := make([]int, len(setup.Indices))
	for i, v := range setup.Indices {
		indices[i] = int(v)
	}
	clientCfg := fl.ClientConfig{
		Arch: arch,
		Train: classifier.TrainConfig{
			Epochs:    int(setup.Epochs),
			BatchSize: int(setup.BatchSize),
			LR:        setup.LR,
			Momentum:  setup.Momentum,
		},
		CVAE: cvae.Config{
			Input:   dataset.ImageH * dataset.ImageW,
			Hidden:  int(setup.CVAEHidden),
			Latent:  int(setup.CVAELatent),
			Classes: int(setup.NumClasses),
		},
		CVAETrain: cvae.TrainConfig{
			Epochs:    int(setup.CVAEEpochs),
			BatchSize: int(setup.CVAEBatch),
			LR:        setup.CVAELR,
		},
		NumClasses: int(setup.NumClasses),
	}
	stream := rng.New(rng.DeriveSeed(setup.Seed, "client", uint64(id)))
	return fl.NewClient(id, train, indices, clientCfg, att, stream), nil
}
