package fednet

import (
	"fmt"
	"math"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"fedguard/internal/aggregate"
	"fedguard/internal/attack"
	"fedguard/internal/dataset"
	"fedguard/internal/faultnet"
	"fedguard/internal/fl"
	"fedguard/internal/rng"
	"fedguard/internal/telemetry"
)

// chaosConfig is testConfig scaled for fault-tolerance runs: 6 clients,
// 4 sampled per round, so any sample includes at least one healthy
// client even with three faulty peers in the federation.
func chaosConfig() Config {
	cfg := testConfig()
	cfg.Experiment.NumClients = 6
	cfg.Experiment.PerRound = 4
	cfg.Experiment.Rounds = 3
	cfg.MinClientsPerRound = 1
	cfg.IOTimeout = 1500 * time.Millisecond
	cfg.RoundTimeout = 6 * time.Second
	cfg.MaxRetries = 1
	cfg.RetryBackoff = 50 * time.Millisecond
	return cfg
}

// chaosClients connects n clients through plan-wrapped connections and
// serves them until the federation ends. Clients listed in redial
// reconnect once (with a clean connection) after their faulty session
// breaks, exercising the server's rejoin path. The returned wait
// function force-closes every connection — aborting injected straggler
// delays — and then joins the client goroutines.
func chaosClients(t *testing.T, addr string, plan *faultnet.Plan, n int, redial map[int]bool) (wait func()) {
	t.Helper()
	return chaosClientsOpts(t, addr, plan, n, redial, ClientOptions{})
}

// chaosClientsOpts is chaosClients with client-side options, so fault
// runs can also exercise the compressed encodings.
func chaosClientsOpts(t *testing.T, addr string, plan *faultnet.Plan, n int, redial map[int]bool, opts ClientOptions) (wait func()) {
	t.Helper()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var conns []net.Conn
	track := func(c net.Conn) {
		mu.Lock()
		conns = append(conns, c)
		mu.Unlock()
	}
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := plan.Dial("tcp", addr, id)
			if err != nil {
				return
			}
			track(c)
			err = ServeClientOpts(c, id, opts)
			c.Close()
			if err == nil || !redial[id] {
				return
			}
			c2, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			track(c2)
			ServeClientOpts(c2, id, opts)
			c2.Close()
		}(id)
	}
	return func() {
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
		wg.Wait()
	}
}

// chaosPlan wires the adversarial cast of the issue: client 0 crashes
// mid-frame during its second sampled upload, client 1 stalls far past
// every timeout, client 2 corrupts every frame it sends. SkipWrites: 1
// lets each registration Hello through cleanly. (An update frame spans
// two underlying writes through the 64 KiB writer, hence
// DropAfterWrites: 2 = one full upload, then die.)
func chaosPlan(seed uint64) *faultnet.Plan {
	return &faultnet.Plan{
		Seed: seed,
		Peers: map[int]faultnet.PeerPlan{
			0: {SkipWrites: 1, DropAfterWrites: 2},
			1: {SkipWrites: 1, WriteDelay: 5 * time.Minute},
			2: {SkipWrites: 1, CorruptProb: 1},
		},
	}
}

// runChaos executes one fault-injected federation and returns its
// history and collected events.
func runChaos(t *testing.T, cfg Config, plan *faultnet.Plan, redial map[int]bool) (*fl.History, *telemetry.CollectSink) {
	t.Helper()
	return runChaosOpts(t, cfg, plan, redial, ClientOptions{})
}

// runChaosOpts is runChaos with client-side options (compression and
// redial behavior).
func runChaosOpts(t *testing.T, cfg Config, plan *faultnet.Plan, redial map[int]bool, opts ClientOptions) (*fl.History, *telemetry.CollectSink) {
	t.Helper()
	sink := &telemetry.CollectSink{}
	cfg.Telemetry = telemetry.New(sink)
	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
	srv, err := NewServer(cfg, test, aggregate.NewFedAvg())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	wait := chaosClientsOpts(t, ln.Addr().String(), plan, cfg.Experiment.NumClients, redial, opts)
	h, err := srv.Run(ln, nil)
	wait()
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	return h, sink
}

// TestChaosFederationSurvivesFaults is the issue's headline scenario: a
// federation with a mid-round crasher, a straggler, and a corrupting
// peer must still complete every configured round on the responsive
// quorum, for several fault seeds.
func TestChaosFederationSurvivesFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fault-injection run")
	}
	for _, seed := range []uint64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			h, sink := runChaos(t, chaosConfig(), chaosPlan(seed), nil)

			if got, want := len(h.Rounds), chaosConfig().Experiment.Rounds; got != want {
				t.Fatalf("completed %d rounds, want %d", got, want)
			}
			final := h.FinalAccuracy()
			if math.IsNaN(final) || math.IsInf(final, 0) || final < 0 || final > 1 {
				t.Fatalf("final accuracy %v", final)
			}
			if len(sink.ByKind("ClientDropped")) == 0 {
				t.Fatal("no ClientDropped events despite three faulty peers")
			}
			// 4 sampled of 6 with 3 faulty peers: every round must degrade.
			if got := len(sink.ByKind("RoundDegraded")); got != len(h.Rounds) {
				t.Fatalf("%d RoundDegraded events for %d rounds", got, len(h.Rounds))
			}
			for _, rec := range h.Rounds {
				responsive := len(rec.Sampled) - len(rec.Dropped)
				if responsive < 1 {
					t.Fatalf("round %d had no responsive clients: %+v", rec.Round, rec)
				}
				for _, id := range rec.Dropped {
					if id > 2 {
						t.Fatalf("round %d dropped healthy client %d", rec.Round, id)
					}
				}
			}
		})
	}
}

// TestChaosExclusionSequenceDeterministic runs the same adversarial plan
// twice: the same fault seed must reproduce the identical round-by-round
// exclusion sequence and the identical final model.
func TestChaosExclusionSequenceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fault-injection run")
	}
	run := func() *fl.History {
		h, _ := runChaos(t, chaosConfig(), chaosPlan(7), nil)
		return h
	}
	a, b := run(), run()
	for i := range a.Rounds {
		if !reflect.DeepEqual(a.Rounds[i].Dropped, b.Rounds[i].Dropped) {
			t.Fatalf("round %d exclusion differs across runs: %v vs %v",
				i+1, a.Rounds[i].Dropped, b.Rounds[i].Dropped)
		}
	}
	if !reflect.DeepEqual(a.FinalWeights, b.FinalWeights) {
		t.Fatal("same fault seed produced different final weights")
	}
}

// TestZeroFaultPlanMatchesInProcess pins the degradation machinery's
// no-op case: a tolerant-mode networked run through zero-fault faultnet
// wrappers is still byte-identical to the in-process simulator.
func TestZeroFaultPlanMatchesInProcess(t *testing.T) {
	cfg := testConfig()
	cfg.AttackName = "sign-flip"
	cfg.Experiment.MaliciousFraction = 0.4
	cfg.MinClientsPerRound = 1
	cfg.IOTimeout = 20 * time.Second
	cfg.RoundTimeout = time.Minute
	cfg.MaxRetries = 2

	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
	netHist, _ := runChaos(t, cfg, &faultnet.Plan{Seed: 1}, nil)

	inCfg := cfg.Experiment
	inCfg.Attack = attack.NewSignFlip()
	train := dataset.Generate(cfg.TrainSize, dataset.DefaultGenOptions(), rng.New(cfg.DataSeed))
	fed, err := fl.NewFederation(train, test, inCfg)
	if err != nil {
		t.Fatal(err)
	}
	inHist, err := fed.Run(aggregate.NewFedAvg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(netHist.Rounds) != len(inHist.Rounds) {
		t.Fatalf("round counts differ: %d vs %d", len(netHist.Rounds), len(inHist.Rounds))
	}
	for i := range netHist.Rounds {
		if len(netHist.Rounds[i].Dropped) != 0 {
			t.Fatalf("zero-fault run dropped clients in round %d: %v", i+1, netHist.Rounds[i].Dropped)
		}
		if netHist.Rounds[i].TestAccuracy != inHist.Rounds[i].TestAccuracy {
			t.Fatalf("round %d accuracy: networked %v, in-process %v",
				i+1, netHist.Rounds[i].TestAccuracy, inHist.Rounds[i].TestAccuracy)
		}
	}
	if !reflect.DeepEqual(netHist.FinalWeights, inHist.FinalWeights) {
		t.Fatal("final weights diverge from the in-process federation")
	}
}

// TestCrashedClientRejoins drives the reconnect path: a client that dies
// mid-upload redials, re-registers through the live listener, and serves
// rounds again with the current global model.
func TestCrashedClientRejoins(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fault-injection run")
	}
	cfg := testConfig()
	cfg.Experiment.NumClients = 3
	cfg.Experiment.PerRound = 3 // all sampled: the crash round is pinned
	cfg.Experiment.Rounds = 4
	cfg.MinClientsPerRound = 1
	cfg.IOTimeout = 2 * time.Second
	cfg.RoundTimeout = 8 * time.Second
	cfg.MaxRetries = 1

	sink := &telemetry.CollectSink{}
	cfg.Telemetry = telemetry.New(sink)
	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
	srv, err := NewServer(cfg, test, aggregate.NewFedAvg())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Client 0 completes its round-1 upload, crashes mid-frame in round
	// 2, then redials cleanly.
	plan := &faultnet.Plan{Seed: 11, Peers: map[int]faultnet.PeerPlan{
		0: {SkipWrites: 1, DropAfterWrites: 2},
	}}
	wait := chaosClients(t, ln.Addr().String(), plan, cfg.Experiment.NumClients, map[int]bool{0: true})

	// Hold the round loop after the crash round until the rejoin lands,
	// so the remaining rounds deterministically include client 0 again.
	onRound := func(rec fl.RoundRecord) {
		if len(rec.Dropped) == 0 {
			return
		}
		deadline := time.Now().Add(10 * time.Second)
		for len(sink.ByKind("ClientRejoined")) == 0 {
			if time.Now().After(deadline) {
				t.Error("client 0 never rejoined after its crash")
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	h, err := srv.Run(ln, onRound)
	wait()
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	if len(h.Rounds) != cfg.Experiment.Rounds {
		t.Fatalf("completed %d rounds, want %d", len(h.Rounds), cfg.Experiment.Rounds)
	}

	crashRound := 0
	for _, rec := range h.Rounds {
		if len(rec.Dropped) > 0 {
			if crashRound != 0 {
				t.Fatalf("client dropped twice (rounds %d and %d) despite rejoining", crashRound, rec.Round)
			}
			if !reflect.DeepEqual(rec.Dropped, []int{0}) {
				t.Fatalf("round %d dropped %v, want [0]", rec.Round, rec.Dropped)
			}
			crashRound = rec.Round
		}
	}
	if crashRound == 0 {
		t.Fatal("the crasher was never dropped")
	}
	if crashRound == cfg.Experiment.Rounds {
		t.Fatal("crash fell in the last round; no post-rejoin round to verify")
	}
	rejoins := sink.ByKind("ClientRejoined")
	if len(rejoins) != 1 {
		t.Fatalf("%d ClientRejoined events, want 1", len(rejoins))
	}
	if ev := rejoins[0].(telemetry.ClientRejoined); ev.ClientID != 0 {
		t.Fatalf("rejoined client %d, want 0", ev.ClientID)
	}
	drops := sink.ByKind("ClientDropped")
	if len(drops) != 1 {
		t.Fatalf("%d ClientDropped events, want 1", len(drops))
	}
	if ev := drops[0].(telemetry.ClientDropped); ev.ClientID != 0 || ev.Round != crashRound {
		t.Fatalf("drop event %+v, want client 0 in round %d", ev, crashRound)
	}
}

// TestPartialRegistrationQuorum starts a federation whose third client
// never shows up: with RegisterTimeout and a quorum, the run must start
// anyway and drop the absent client in every round that samples it.
func TestPartialRegistrationQuorum(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out a registration timeout")
	}
	cfg := testConfig()
	cfg.Experiment.NumClients = 3
	cfg.Experiment.PerRound = 3
	cfg.Experiment.Rounds = 2
	cfg.MinClientsPerRound = 1
	cfg.IOTimeout = 5 * time.Second
	cfg.RoundTimeout = 20 * time.Second
	cfg.RegisterTimeout = 500 * time.Millisecond

	sink := &telemetry.CollectSink{}
	cfg.Telemetry = telemetry.New(sink)
	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
	srv, err := NewServer(cfg, test, aggregate.NewFedAvg())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	wait := chaosClients(t, ln.Addr().String(), &faultnet.Plan{Seed: 1}, 2, nil)
	h, err := srv.Run(ln, nil)
	wait()
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	if len(h.Rounds) != cfg.Experiment.Rounds {
		t.Fatalf("completed %d rounds, want %d", len(h.Rounds), cfg.Experiment.Rounds)
	}
	for _, rec := range h.Rounds {
		if !reflect.DeepEqual(rec.Dropped, []int{2}) {
			t.Fatalf("round %d dropped %v, want [2]", rec.Round, rec.Dropped)
		}
	}
	for _, ev := range sink.ByKind("ClientDropped") {
		if d := ev.(telemetry.ClientDropped); d.Reason != "disconnected" {
			t.Fatalf("drop reason %q, want %q", d.Reason, "disconnected")
		}
	}
}

// TestChaosCompressedMatchesRaw pins the compression layer under fault
// injection: a compressed federation and a raw one, driven by the same
// fault seed, must drop the same clients in the same rounds and finish
// with byte-identical weights — corruption surfaces as checksum-failed
// frames (drop reason "protocol"), never as silently-wrong decoded
// weights. The plan uses only write-count-independent faults (a
// straggler and a corruptor): compressed frames split into different
// write counts than raw frames, so a DropAfterWrites crasher would
// legitimately diverge between the two runs.
func TestChaosCompressedMatchesRaw(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fault-injection run")
	}
	plan := func(seed uint64) *faultnet.Plan {
		return &faultnet.Plan{
			Seed: seed,
			Peers: map[int]faultnet.PeerPlan{
				1: {SkipWrites: 1, WriteDelay: 5 * time.Minute},
				2: {SkipWrites: 1, CorruptProb: 1},
			},
		}
	}
	raw, _ := runChaos(t, chaosConfig(), plan(7), nil)

	ccfg := chaosConfig()
	ccfg.Compress = true
	comp, sink := runChaosOpts(t, ccfg, plan(7), nil, ClientOptions{Compress: true})

	if len(raw.Rounds) != len(comp.Rounds) {
		t.Fatalf("round counts differ: %d vs %d", len(raw.Rounds), len(comp.Rounds))
	}
	for i := range raw.Rounds {
		if !reflect.DeepEqual(raw.Rounds[i].Dropped, comp.Rounds[i].Dropped) {
			t.Fatalf("round %d exclusion differs: raw %v, compressed %v",
				i+1, raw.Rounds[i].Dropped, comp.Rounds[i].Dropped)
		}
	}
	if !reflect.DeepEqual(raw.FinalWeights, comp.FinalWeights) {
		t.Fatal("same fault seed: compressed final weights diverge from raw")
	}
	sawCorruptorDrop := false
	for _, ev := range sink.ByKind("ClientDropped") {
		d := ev.(telemetry.ClientDropped)
		if d.ClientID == 2 && d.Reason == "protocol" {
			sawCorruptorDrop = true
		}
	}
	if !sawCorruptorDrop {
		t.Fatal("corruptor was never dropped with reason \"protocol\"")
	}
}
