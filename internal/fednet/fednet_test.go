package fednet

import (
	"net"
	"reflect"
	"strconv"
	"sync"
	"testing"

	"fedguard/internal/aggregate"
	"fedguard/internal/attack"
	"fedguard/internal/classifier"
	"fedguard/internal/cvae"
	"fedguard/internal/dataset"
	"fedguard/internal/experiment"
	"fedguard/internal/fl"
	"fedguard/internal/rng"
	"fedguard/internal/telemetry"
)

func testConfig() Config {
	return Config{
		Experiment: fl.FederationConfig{
			NumClients: 5,
			PerRound:   3,
			Rounds:     2,
			Alpha:      10,
			ServerLR:   1,
			Client: fl.ClientConfig{
				Arch:       classifier.Tiny(),
				Train:      classifier.TrainConfig{Epochs: 1, BatchSize: 16, LR: 0.1, Momentum: 0.9},
				CVAE:       cvae.Config{Input: 784, Hidden: 16, Latent: 2, Classes: 10},
				CVAETrain:  cvae.TrainConfig{Epochs: 1, BatchSize: 16, LR: 1e-3},
				NumClasses: 10,
			},
			TestSubset: 40,
			Seed:       99,
		},
		AttackName: "",
		ArchName:   "tiny",
		DataSeed:   1234,
		TrainSize:  150,
	}
}

// runLoopback starts a server on a loopback listener, connects all
// clients, and returns the resulting history.
func runLoopback(t *testing.T, cfg Config, strategy fl.Strategy, test *dataset.Dataset) *fl.History {
	return runLoopbackOpts(t, cfg, strategy, test, ClientOptions{})
}

// runLoopbackOpts is runLoopback with client-side options (e.g. the
// compression capability), so tests can pair any server and client
// encoding stance.
func runLoopbackOpts(t *testing.T, cfg Config, strategy fl.Strategy, test *dataset.Dataset, opts ClientOptions) *fl.History {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	srv, err := NewServer(cfg, test, strategy)
	if err != nil {
		t.Fatal(err)
	}

	var clientWG sync.WaitGroup
	clientErrs := make([]error, cfg.Experiment.NumClients)
	for id := 0; id < cfg.Experiment.NumClients; id++ {
		clientWG.Add(1)
		go func(id int) {
			defer clientWG.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				clientErrs[id] = err
				return
			}
			defer conn.Close()
			clientErrs[id] = ServeClientOpts(conn, id, opts)
		}(id)
	}

	h, err := srv.Run(ln, nil)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	clientWG.Wait()
	for id, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d: %v", id, err)
		}
	}
	return h
}

func TestLoopbackFederationRuns(t *testing.T) {
	cfg := testConfig()
	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
	h := runLoopback(t, cfg, aggregate.NewFedAvg(), test)
	if len(h.Rounds) != cfg.Experiment.Rounds {
		t.Fatalf("%d rounds", len(h.Rounds))
	}
	for _, rec := range h.Rounds {
		if rec.UploadBytes <= 0 || rec.DownloadBytes <= 0 {
			t.Fatalf("no measured traffic: %+v", rec)
		}
		if rec.TestAccuracy < 0 || rec.TestAccuracy > 1 {
			t.Fatalf("accuracy %v", rec.TestAccuracy)
		}
	}
	if len(h.FinalWeights) == 0 {
		t.Fatal("no final weights")
	}
}

// The decisive property: a networked run is bit-identical to the
// in-process simulator with the same configuration.
func TestLoopbackMatchesInProcess(t *testing.T) {
	cfg := testConfig()
	cfg.AttackName = "sign-flip"
	cfg.Experiment.MaliciousFraction = 0.4

	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
	netHist := runLoopback(t, cfg, aggregate.NewFedAvg(), test)

	// Same experiment, in-process.
	inCfg := cfg.Experiment
	inCfg.Attack = attack.NewSignFlip()
	train := dataset.Generate(cfg.TrainSize, dataset.DefaultGenOptions(), rng.New(cfg.DataSeed))
	fed, err := fl.NewFederation(train, test, inCfg)
	if err != nil {
		t.Fatal(err)
	}
	inHist, err := fed.Run(aggregate.NewFedAvg(), nil)
	if err != nil {
		t.Fatal(err)
	}

	if len(netHist.Rounds) != len(inHist.Rounds) {
		t.Fatalf("round counts differ: %d vs %d", len(netHist.Rounds), len(inHist.Rounds))
	}
	for i := range netHist.Rounds {
		if netHist.Rounds[i].TestAccuracy != inHist.Rounds[i].TestAccuracy {
			t.Fatalf("round %d accuracy: networked %v, in-process %v",
				i+1, netHist.Rounds[i].TestAccuracy, inHist.Rounds[i].TestAccuracy)
		}
	}
	for i := range netHist.FinalWeights {
		if netHist.FinalWeights[i] != inHist.FinalWeights[i] {
			t.Fatalf("final weights diverge at %d", i)
		}
	}
}

func TestLoopbackFedGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("trains CVAEs over the network")
	}
	cfg := testConfig()
	guard := &fakeNeedsDecoders{}
	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
	h := runLoopback(t, cfg, guard, test)
	if !guard.sawDecoder {
		t.Fatal("decoder payloads did not cross the wire")
	}
	// Decoder payloads must inflate measured downloads beyond weights.
	weightBytes := int64(len(h.FinalWeights)) * 4 * int64(cfg.Experiment.PerRound)
	if h.Rounds[0].DownloadBytes <= weightBytes {
		t.Fatalf("downloads %d do not include decoders (weights alone %d)",
			h.Rounds[0].DownloadBytes, weightBytes)
	}
}

// fakeNeedsDecoders requests decoders and averages updates.
type fakeNeedsDecoders struct {
	sawDecoder bool
}

func (f *fakeNeedsDecoders) Name() string        { return "decoder-probe" }
func (f *fakeNeedsDecoders) NeedsDecoders() bool { return true }
func (f *fakeNeedsDecoders) Aggregate(ctx *fl.RoundContext) ([]float32, error) {
	for _, u := range ctx.Updates {
		if len(u.Decoder) > 0 {
			f.sawDecoder = true
		}
	}
	return aggregate.WeightedMean(ctx.Updates)
}

// wireTotals sums the measured (and logical) traffic over a run.
func wireTotals(h *fl.History) (wire, logical int64) {
	for _, rec := range h.Rounds {
		wire += rec.WireUploadBytes + rec.WireDownloadBytes
		logical += rec.UploadBytes + rec.DownloadBytes
	}
	return wire, logical
}

// TestCompressedLoopbackMatchesRaw pins the tentpole property: a
// compressed run is bit-identical to a raw run of the same experiment,
// while moving strictly fewer bytes over the sockets.
func TestCompressedLoopbackMatchesRaw(t *testing.T) {
	cfg := testConfig()
	cfg.AttackName = "sign-flip"
	cfg.Experiment.MaliciousFraction = 0.4
	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))

	raw := runLoopback(t, cfg, aggregate.NewFedAvg(), test)

	ccfg := cfg
	ccfg.Compress = true
	comp := runLoopbackOpts(t, ccfg, aggregate.NewFedAvg(), test, ClientOptions{Compress: true})

	if len(raw.Rounds) != len(comp.Rounds) {
		t.Fatalf("round counts differ: %d vs %d", len(raw.Rounds), len(comp.Rounds))
	}
	for i := range raw.Rounds {
		if raw.Rounds[i].TestAccuracy != comp.Rounds[i].TestAccuracy {
			t.Fatalf("round %d accuracy: raw %v, compressed %v",
				i+1, raw.Rounds[i].TestAccuracy, comp.Rounds[i].TestAccuracy)
		}
	}
	if !reflect.DeepEqual(raw.FinalWeights, comp.FinalWeights) {
		t.Fatal("compressed run diverged from raw final weights")
	}
	rawWire, _ := wireTotals(raw)
	compWire, _ := wireTotals(comp)
	if compWire <= 0 || rawWire <= 0 {
		t.Fatalf("unmeasured wire traffic: raw %d, compressed %d", rawWire, compWire)
	}
	if compWire >= rawWire {
		t.Fatalf("compression saved nothing: raw %d bytes, compressed %d", rawWire, compWire)
	}
}

// TestCompressedMixedPeers pins negotiation compatibility: a
// compression-capable server with raw clients, and a raw server with
// compression-capable clients, both complete with raw semantics and the
// exact raw result.
func TestCompressedMixedPeers(t *testing.T) {
	cfg := testConfig()
	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
	baseline := runLoopback(t, cfg, aggregate.NewFedAvg(), test)

	ccfg := cfg
	ccfg.Compress = true
	serverOnly := runLoopbackOpts(t, ccfg, aggregate.NewFedAvg(), test, ClientOptions{})
	if !reflect.DeepEqual(baseline.FinalWeights, serverOnly.FinalWeights) {
		t.Fatal("compress-capable server with raw clients diverged from raw run")
	}

	clientOnly := runLoopbackOpts(t, cfg, aggregate.NewFedAvg(), test, ClientOptions{Compress: true})
	if !reflect.DeepEqual(baseline.FinalWeights, clientOnly.FinalWeights) {
		t.Fatal("raw server with compress-capable clients diverged from raw run")
	}
}

// TestCompressedLoopbackFedGuardDedup drives decoder payloads over the
// compressed path: results stay identical to raw, and decoder dedup plus
// the codec push the measured bytes below the logical Table V sizes.
func TestCompressedLoopbackFedGuardDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("trains CVAEs over the network")
	}
	cfg := testConfig()
	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
	rawGuard := &fakeNeedsDecoders{}
	raw := runLoopback(t, cfg, rawGuard, test)

	ccfg := cfg
	ccfg.Compress = true
	compGuard := &fakeNeedsDecoders{}
	comp := runLoopbackOpts(t, ccfg, compGuard, test, ClientOptions{Compress: true})

	if !compGuard.sawDecoder {
		t.Fatal("decoder payloads did not reach the strategy through the compressed path")
	}
	if !reflect.DeepEqual(raw.FinalWeights, comp.FinalWeights) {
		t.Fatal("compressed decoder run diverged from raw final weights")
	}
	compWire, compLogical := wireTotals(comp)
	if compWire >= compLogical {
		t.Fatalf("measured %d bytes not below logical %d despite dedup and codec",
			compWire, compLogical)
	}
}

// TestCompressedQuickPresetFedGuard is the acceptance run: a networked
// FedGuard federation on the quick experiment preset, compressed,
// byte-identical to both the raw networked run and the in-process
// simulator — at no more than half the raw run's measured wire bytes.
func TestCompressedQuickPresetFedGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("three full quick-preset federations")
	}
	setup, err := experiment.NewSetup(experiment.Preset("quick"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Experiment: fl.FederationConfig{
			NumClients: setup.NumClients,
			PerRound:   setup.PerRound,
			Rounds:     setup.Rounds,
			Alpha:      setup.Alpha,
			ServerLR:   setup.ServerLR,
			Client: fl.ClientConfig{
				Arch:       setup.Arch,
				Train:      setup.Train,
				CVAE:       setup.CVAE,
				CVAETrain:  setup.CVAETrain,
				NumClasses: 10,
			},
			TestSubset: setup.TestSubset,
			Seed:       setup.Seed,
		},
		ArchName:  setup.ArchName,
		DataSeed:  rng.DeriveSeed(setup.Seed, "traindata", 0),
		TrainSize: setup.TrainSize,
	}
	test := dataset.Generate(setup.TestSize, dataset.DefaultGenOptions(),
		rng.New(rng.DeriveSeed(setup.Seed, "testdata", 0)))
	newGuard := func() fl.Strategy {
		s, err := experiment.NewStrategy("FedGuard", setup)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	raw := runLoopback(t, cfg, newGuard(), test)

	ccfg := cfg
	ccfg.Compress = true
	comp := runLoopbackOpts(t, ccfg, newGuard(), test, ClientOptions{Compress: true})

	train := dataset.Generate(cfg.TrainSize, dataset.DefaultGenOptions(), rng.New(cfg.DataSeed))
	fed, err := fl.NewFederation(train, test, cfg.Experiment)
	if err != nil {
		t.Fatal(err)
	}
	inHist, err := fed.Run(newGuard(), nil)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(raw.FinalWeights, comp.FinalWeights) {
		t.Fatal("compressed networked run diverged from raw networked run")
	}
	if !reflect.DeepEqual(comp.FinalWeights, inHist.FinalWeights) {
		t.Fatal("compressed networked run diverged from the in-process simulator")
	}
	rawWire, _ := wireTotals(raw)
	compWire, _ := wireTotals(comp)
	t.Logf("quick-preset FedGuard wire bytes: raw=%d compressed=%d (%.1f%% saved)",
		rawWire, compWire, 100*(1-float64(compWire)/float64(rawWire)))
	if compWire*2 > rawWire {
		t.Fatalf("compressed run moved %d bytes, more than half the raw run's %d",
			compWire, rawWire)
	}
}

func TestNewServerValidation(t *testing.T) {
	test := dataset.Generate(10, dataset.DefaultGenOptions(), rng.New(1))
	cfg := testConfig()
	cfg.ArchName = "bogus"
	if _, err := NewServer(cfg, test, aggregate.NewFedAvg()); err == nil {
		t.Fatal("bogus arch accepted")
	}
	cfg = testConfig()
	cfg.AttackName = "bogus"
	if _, err := NewServer(cfg, test, aggregate.NewFedAvg()); err == nil {
		t.Fatal("bogus attack accepted")
	}
	cfg = testConfig()
	cfg.TrainSize = 0
	if _, err := NewServer(cfg, test, aggregate.NewFedAvg()); err == nil {
		t.Fatal("zero train size accepted")
	}
	cfg = testConfig()
	cfg.Experiment.Rounds = 0
	if _, err := NewServer(cfg, test, aggregate.NewFedAvg()); err == nil {
		t.Fatal("invalid experiment accepted")
	}
}

func TestNewAttackByName(t *testing.T) {
	for _, name := range []string{"", "none", "same-value", "sign-flip", "additive-noise",
		"label-flip", "scaled-boost", "alie", "ipm", "min-max", "decoder-forge"} {
		if _, err := NewAttackByName(name, 1); err != nil {
			t.Fatalf("%q: %v", name, err)
		}
	}
	if _, err := NewAttackByName("quantum", 1); err == nil {
		t.Fatal("unknown attack accepted")
	}
}

func TestRegisterRejectsBadIDs(t *testing.T) {
	cfg := testConfig()
	test := dataset.Generate(10, dataset.DefaultGenOptions(), rng.New(1))
	srv, err := NewServer(cfg, test, aggregate.NewFedAvg())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(ln, nil)
		done <- err
	}()
	// A client with an out-of-range ID must abort the registration.
	if err := RunClient(ln.Addr().String(), 999); err == nil {
		// The server closes the connection; the client sees an error when
		// reading its setup. Either side erroring is acceptable, but the
		// server must report the bad registration.
		t.Log("client did not observe the rejection; checking server")
	}
	if err := <-done; err == nil {
		t.Fatal("server accepted an out-of-range client ID")
	}
}

func TestLoopbackTelemetry(t *testing.T) {
	cfg := testConfig()
	sink := &telemetry.CollectSink{}
	cfg.Telemetry = telemetry.New(sink)
	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
	h := runLoopback(t, cfg, aggregate.NewFedAvg(), test)

	if got := len(sink.ByKind("RoundCompleted")); got != cfg.Experiment.Rounds {
		t.Fatalf("%d RoundCompleted events for %d rounds", got, cfg.Experiment.Rounds)
	}
	for i, rec := range h.Rounds {
		if rec.Seconds != rec.TrainSeconds+rec.AggregateSeconds+rec.EvalSeconds {
			t.Fatalf("round %d phase split does not sum: %+v", i+1, rec)
		}
	}
	// Measured per-peer byte gauges must exist and be positive for every
	// registered client (setup traffic alone guarantees both directions).
	reg := cfg.Telemetry.Metrics
	for id := 0; id < cfg.Experiment.NumClients; id++ {
		l := telemetry.L("client", strconv.Itoa(id))
		read := reg.Gauge("fedguard_peer_bytes_read", l).Value()
		written := reg.Gauge("fedguard_peer_bytes_written", l).Value()
		if read <= 0 || written <= 0 {
			t.Fatalf("client %d peer gauges: read=%v written=%v", id, read, written)
		}
	}
}
