package fednet

import (
	"net"
	"reflect"
	"strconv"
	"sync"
	"testing"

	"fedguard/internal/aggregate"
	"fedguard/internal/dataset"
	"fedguard/internal/rng"
	"fedguard/internal/telemetry"
)

// runTracedLoopback runs one traced federation over loopback TCP with a
// per-client telemetry bundle, returning the server's sink and one sink
// per client. opts.Telemetry/Trace are overridden per client.
func runTracedLoopback(t *testing.T, cfg Config, opts ClientOptions) (*telemetry.CollectSink, []*telemetry.CollectSink) {
	t.Helper()
	serverSink := &telemetry.CollectSink{}
	cfg.Telemetry = telemetry.New(serverSink)
	cfg.Telemetry.EnableTracing("server")
	cfg.Trace = true

	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
	srv, err := NewServer(cfg, test, aggregate.NewFedAvg())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	clientSinks := make([]*telemetry.CollectSink, cfg.Experiment.NumClients)
	var wg sync.WaitGroup
	for id := 0; id < cfg.Experiment.NumClients; id++ {
		sink := &telemetry.CollectSink{}
		clientSinks[id] = sink
		o := opts
		if o.Trace {
			o.Telemetry = telemetry.New(sink)
			o.Telemetry.EnableTracing("client-" + strconv.Itoa(id))
		}
		wg.Add(1)
		go func(id int, o ClientOptions) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Errorf("client %d: %v", id, err)
				return
			}
			defer conn.Close()
			if err := ServeClientOpts(conn, id, o); err != nil {
				t.Errorf("client %d: %v", id, err)
			}
		}(id, o)
	}
	if _, err := srv.Run(ln, nil); err != nil {
		t.Fatalf("server: %v", err)
	}
	wg.Wait()
	return serverSink, clientSinks
}

func spansOf(sink *telemetry.CollectSink) []telemetry.SpanEnded {
	var out []telemetry.SpanEnded
	for _, ev := range sink.ByKind("Span") {
		out = append(out, ev.(telemetry.SpanEnded))
	}
	return out
}

func labelOf(s telemetry.SpanEnded, key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// TestTracedLoopbackPropagatesSpanContext pins the wire propagation: a
// traced client's round spans carry the server's trace ID and parent
// onto the exact server.request span IDs the server exported — the
// cross-process causality CapTrace exists for.
func TestTracedLoopbackPropagatesSpanContext(t *testing.T) {
	serverSink, clientSinks := runTracedLoopback(t, testConfig(), ClientOptions{Trace: true})

	serverSpans := spansOf(serverSink)
	var traceID string
	requests := map[string]bool{} // span ID → seen
	for _, s := range serverSpans {
		if s.Name == "run" {
			traceID = s.Trace
		}
		if s.Name == "server.request" {
			requests[s.Span] = true
			if labelOf(s, "outcome") != "ok" {
				t.Fatalf("fault-free run has non-ok request: %+v", s)
			}
			if labelOf(s, "encoding") != "raw" {
				t.Fatalf("uncompressed run negotiated encoding %q", labelOf(s, "encoding"))
			}
		}
	}
	if traceID == "" || len(requests) == 0 {
		t.Fatalf("server exported no run/request spans (%d spans)", len(serverSpans))
	}

	rounds, trains, uploads := 0, 0, 0
	for id, sink := range clientSinks {
		for _, s := range spansOf(sink) {
			if s.Trace != traceID {
				t.Fatalf("client %d span %q has trace %s, want %s", id, s.Name, s.Trace, traceID)
			}
			switch s.Name {
			case "client.round":
				rounds++
				if !requests[s.Parent] {
					t.Fatalf("client %d round span parents onto unknown span %s", id, s.Parent)
				}
				if labelOf(s, "client") != strconv.Itoa(id) {
					t.Fatalf("client %d span labeled client=%q", id, labelOf(s, "client"))
				}
			case "client.train":
				trains++
			case "client.upload":
				uploads++
				if labelOf(s, "bytes") == "" || labelOf(s, "bytes") == "0" {
					t.Fatalf("upload span without byte count: %+v", s)
				}
			}
		}
	}
	want := testConfig().Experiment.PerRound * testConfig().Experiment.Rounds
	if rounds != want {
		t.Fatalf("%d client.round spans, want %d", rounds, want)
	}
	if trains != want || uploads != want {
		t.Fatalf("train/upload spans %d/%d, want %d each", trains, uploads, want)
	}
}

// TestTracedLegacyClientInterop runs a traced server against clients
// that never advertise CapTrace: the run must complete normally, the
// server still exports its own tree, and no trace block reaches the
// legacy peers (their spans, if any, would fail to parent — they simply
// have none, having no tracer).
func TestTracedLegacyClientInterop(t *testing.T) {
	serverSink, clientSinks := runTracedLoopback(t, testConfig(), ClientOptions{})
	if len(spansOf(serverSink)) == 0 {
		t.Fatal("traced server exported no spans against legacy clients")
	}
	for id, sink := range clientSinks {
		if n := len(spansOf(sink)); n != 0 {
			t.Fatalf("legacy client %d exported %d spans", id, n)
		}
	}
	for _, s := range spansOf(serverSink) {
		if s.Name == "server.request" && labelOf(s, "outcome") != "ok" {
			t.Fatalf("legacy interop dropped a client: %+v", s)
		}
	}
}

// TestTracedMatchesUntracedWeights pins that tracing is observation
// only: the same configuration with tracing on and off produces
// bit-identical final weights (the trailing trace block never perturbs
// the model payload or the round schedule).
func TestTracedMatchesUntracedWeights(t *testing.T) {
	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
	plain := runLoopback(t, testConfig(), aggregate.NewFedAvg(), test)

	serverSink := &telemetry.CollectSink{}
	cfg := testConfig()
	cfg.Telemetry = telemetry.New(serverSink)
	cfg.Telemetry.EnableTracing("server")
	cfg.Trace = true
	traced := runLoopbackOpts(t, cfg, aggregate.NewFedAvg(), test,
		ClientOptions{Trace: true, Telemetry: telemetry.New(&telemetry.CollectSink{})})

	if !reflect.DeepEqual(plain.FinalWeights, traced.FinalWeights) {
		t.Fatal("tracing changed the final weights")
	}
	if len(serverSink.ByKind("Span")) == 0 {
		t.Fatal("traced run exported no spans")
	}
}

// TestTracedCompressedLoopback exercises CapTrace and CapCodec together:
// the trace block rides after the compressed bodies, so spans must still
// parent across the wire and the negotiated encoding label must say so.
func TestTracedCompressedLoopback(t *testing.T) {
	cfg := testConfig()
	cfg.Compress = true
	serverSink, clientSinks := runTracedLoopback(t, cfg, ClientOptions{Trace: true, Compress: true})

	requests := map[string]bool{}
	for _, s := range spansOf(serverSink) {
		if s.Name == "server.request" {
			requests[s.Span] = true
			if labelOf(s, "encoding") != "codec" {
				t.Fatalf("compressed run negotiated encoding %q", labelOf(s, "encoding"))
			}
		}
	}
	decodes, encodes := 0, 0
	for id, sink := range clientSinks {
		for _, s := range spansOf(sink) {
			switch s.Name {
			case "client.round":
				if !requests[s.Parent] {
					t.Fatalf("client %d compressed round span orphaned (parent %s)", id, s.Parent)
				}
			case "client.decode":
				decodes++
			case "client.encode":
				encodes++
			}
		}
	}
	if decodes == 0 || encodes == 0 {
		t.Fatalf("codec phases missing from trace: %d decodes, %d encodes", decodes, encodes)
	}
}
