package fednet

import (
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"fedguard/internal/aggregate"
	"fedguard/internal/classifier"
	"fedguard/internal/cvae"
	"fedguard/internal/dataset"
	"fedguard/internal/defense"
	"fedguard/internal/experiment"
	"fedguard/internal/faultnet"
	"fedguard/internal/fl"
	"fedguard/internal/rng"
	"fedguard/internal/telemetry"
)

// newTestGuard builds a real FedGuard matched to testConfig's client
// CVAE shape.
func newTestGuard() *defense.FedGuard {
	return defense.NewFedGuard(classifier.Tiny(),
		cvae.Config{Input: 784, Hidden: 16, Latent: 2, Classes: 10})
}

// TestStreamAuditLoopbackMatchesBarrier is the round-pipeline
// determinism pin: a streaming-audit FedGuard federation must finish
// with byte-identical weights and reports to the barrier ordering, for
// several experiment seeds, over the compressed wire path (so
// encode-once broadcast sharing is in the loop too).
func TestStreamAuditLoopbackMatchesBarrier(t *testing.T) {
	if testing.Short() {
		t.Skip("trains CVAEs over the network, twice per seed")
	}
	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
	for _, seed := range []uint64{99, 7, 21} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := testConfig()
			cfg.Experiment.Seed = seed
			cfg.Compress = true

			barrier := runLoopbackOpts(t, cfg, newTestGuard(), test, ClientOptions{Compress: true})

			scfg := cfg
			scfg.StreamAudit = true
			streamed := runLoopbackOpts(t, scfg, newTestGuard(), test, ClientOptions{Compress: true})

			if !reflect.DeepEqual(barrier.FinalWeights, streamed.FinalWeights) {
				t.Fatal("streaming audit diverged from barrier final weights")
			}
			for i := range barrier.Rounds {
				if !reflect.DeepEqual(barrier.Rounds[i].Report, streamed.Rounds[i].Report) {
					t.Fatalf("round %d reports differ: %v vs %v",
						i+1, barrier.Rounds[i].Report, streamed.Rounds[i].Report)
				}
			}
		})
	}
}

// TestStreamAuditQuickPreset is the pipeline acceptance run: the quick
// experiment preset with streaming audit plus encode-once broadcasts
// lands on the same bytes as the barrier run, and the in-process
// simulator with StreamAudit agrees too.
func TestStreamAuditQuickPreset(t *testing.T) {
	if testing.Short() {
		t.Skip("three full quick-preset federations")
	}
	setup, err := experiment.NewSetup(experiment.Preset("quick"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Experiment: fl.FederationConfig{
			NumClients: setup.NumClients,
			PerRound:   setup.PerRound,
			Rounds:     setup.Rounds,
			Alpha:      setup.Alpha,
			ServerLR:   setup.ServerLR,
			Client: fl.ClientConfig{
				Arch:       setup.Arch,
				Train:      setup.Train,
				CVAE:       setup.CVAE,
				CVAETrain:  setup.CVAETrain,
				NumClasses: 10,
			},
			TestSubset: setup.TestSubset,
			Seed:       setup.Seed,
		},
		ArchName:  setup.ArchName,
		DataSeed:  rng.DeriveSeed(setup.Seed, "traindata", 0),
		TrainSize: setup.TrainSize,
		Compress:  true,
	}
	test := dataset.Generate(setup.TestSize, dataset.DefaultGenOptions(),
		rng.New(rng.DeriveSeed(setup.Seed, "testdata", 0)))
	newGuard := func() fl.Strategy {
		s, err := experiment.NewStrategy("FedGuard", setup)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	barrier := runLoopbackOpts(t, cfg, newGuard(), test, ClientOptions{Compress: true})

	scfg := cfg
	scfg.StreamAudit = true
	streamed := runLoopbackOpts(t, scfg, newGuard(), test, ClientOptions{Compress: true})

	// The in-process simulator honors the same flag through the shared
	// fl.FederationConfig.
	icfg := cfg.Experiment
	icfg.StreamAudit = true
	train := dataset.Generate(cfg.TrainSize, dataset.DefaultGenOptions(), rng.New(cfg.DataSeed))
	fed, err := fl.NewFederation(train, test, icfg)
	if err != nil {
		t.Fatal(err)
	}
	inHist, err := fed.Run(newGuard(), nil)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(barrier.FinalWeights, streamed.FinalWeights) {
		t.Fatal("streamed quick-preset run diverged from barrier run")
	}
	if !reflect.DeepEqual(streamed.FinalWeights, inHist.FinalWeights) {
		t.Fatal("streamed networked run diverged from the streaming in-process simulator")
	}
}

// TestStreamAuditMixedPeersMatchesBarrier runs streaming audit over a
// federation where only half the clients negotiate the codec: raw and
// compressed connections interleave within each round, and the result
// must still match the barrier run of the identical mixed federation.
func TestStreamAuditMixedPeersMatchesBarrier(t *testing.T) {
	if testing.Short() {
		t.Skip("trains CVAEs over the network, twice")
	}
	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
	run := func(streamAudit bool, tel *telemetry.T) *fl.History {
		cfg := testConfig()
		cfg.Compress = true
		cfg.StreamAudit = streamAudit
		cfg.Telemetry = tel
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		srv, err := NewServer(cfg, test, newTestGuard())
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, cfg.Experiment.NumClients)
		for id := 0; id < cfg.Experiment.NumClients; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				conn, err := net.Dial("tcp", ln.Addr().String())
				if err != nil {
					errs[id] = err
					return
				}
				defer conn.Close()
				// Even IDs advertise the codec, odd IDs stay raw.
				errs[id] = ServeClientOpts(conn, id, ClientOptions{Compress: id%2 == 0})
			}(id)
		}
		h, err := srv.Run(ln, nil)
		if err != nil {
			t.Fatalf("server: %v", err)
		}
		wg.Wait()
		for id, err := range errs {
			if err != nil {
				t.Fatalf("client %d: %v", id, err)
			}
		}
		return h
	}
	barrier := run(false, nil)
	tel := telemetry.New(nil)
	streamed := run(true, tel)
	if !reflect.DeepEqual(barrier.FinalWeights, streamed.FinalWeights) {
		t.Fatal("streaming audit with mixed peers diverged from barrier run")
	}
	// The equality above is only meaningful if the stream actually ran:
	// the server records one audit-overlap observation per streamed round.
	overlaps := tel.Metrics.Histogram(telemetry.AuditOverlapMetric).Count()
	if want := int64(testConfig().Experiment.Rounds); overlaps != want {
		t.Fatalf("%d audit-overlap observations, want %d — streaming audit never engaged", overlaps, want)
	}
	if tel.Metrics.Histogram(telemetry.BroadcastEncodeMetric).Count() == 0 {
		t.Fatal("no broadcast-encode observations on the compressed path")
	}
}

// TestStreamAuditChaosMatchesBarrier drives the streaming pipeline
// through fault injection — a mid-upload crasher and a straggler — with
// a real FedGuard. Dropped clients force the stream's batch fallback;
// the run must drop the same clients and produce the same bytes as the
// barrier ordering under the identical fault seed.
func TestStreamAuditChaosMatchesBarrier(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fault-injection run with CVAE training")
	}
	// Write-count-dependent faults would diverge between runs only if the
	// two runs wrote different frame sequences; stream vs barrier changes
	// server-side compute order, not frames, so the crasher stays.
	plan := func() *faultnet.Plan {
		return &faultnet.Plan{
			Seed: 7,
			Peers: map[int]faultnet.PeerPlan{
				0: {SkipWrites: 1, DropAfterWrites: 2},
				1: {SkipWrites: 1, WriteDelay: 5 * time.Minute},
			},
		}
	}
	run := func(streamAudit bool) *fl.History {
		cfg := chaosConfig()
		cfg.StreamAudit = streamAudit
		test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
		srv, err := NewServer(cfg, test, newTestGuard())
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		wait := chaosClients(t, ln.Addr().String(), plan(), cfg.Experiment.NumClients, nil)
		h, err := srv.Run(ln, nil)
		wait()
		if err != nil {
			t.Fatalf("server: %v", err)
		}
		return h
	}
	barrier := run(false)
	streamed := run(true)
	if len(barrier.Rounds) != len(streamed.Rounds) {
		t.Fatalf("round counts differ: %d vs %d", len(barrier.Rounds), len(streamed.Rounds))
	}
	for i := range barrier.Rounds {
		if !reflect.DeepEqual(barrier.Rounds[i].Dropped, streamed.Rounds[i].Dropped) {
			t.Fatalf("round %d drops differ: %v vs %v",
				i+1, barrier.Rounds[i].Dropped, streamed.Rounds[i].Dropped)
		}
	}
	if !reflect.DeepEqual(barrier.FinalWeights, streamed.FinalWeights) {
		t.Fatal("streaming audit under chaos diverged from barrier final weights")
	}
}

// TestBroadcastEncodeOnce pins the fan-out property: with every client
// on the codec path and no drops, each round's broadcast is
// delta-encoded exactly once however many clients it reaches (round one
// shares the ψ₀ base the same way).
func TestBroadcastEncodeOnce(t *testing.T) {
	cfg := testConfig()
	cfg.Experiment.PerRound = cfg.Experiment.NumClients // all share one base per round
	cfg.Compress = true
	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srv, err := NewServer(cfg, test, aggregate.NewFedAvg())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for id := 0; id < cfg.Experiment.NumClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				return
			}
			defer conn.Close()
			ServeClientOpts(conn, id, ClientOptions{Compress: true})
		}(id)
	}
	if _, err := srv.Run(ln, nil); err != nil {
		t.Fatalf("server: %v", err)
	}
	wg.Wait()
	want := int64(cfg.Experiment.Rounds)
	if got := srv.bcastEncodes.Load(); got != want {
		t.Fatalf("%d broadcast encodes for %d rounds × %d clients, want %d (one per round)",
			got, cfg.Experiment.Rounds, cfg.Experiment.NumClients, want)
	}
}

// BenchmarkServerBroadcastFanout measures building one round's
// compressed broadcast for m connections sharing a delta base. The
// encodes/round metric is the point: it stays at 1 as m grows, so the
// per-connection cost degenerates to a cache hit plus refcount.
func BenchmarkServerBroadcastFanout(b *testing.B) {
	r := rng.New(42)
	base := make([]float32, 65_536)
	r.FillNormal(base, 0, 0.1)
	step := make([]float32, len(base))
	r.FillNormal(step, 0, 0.001)

	for _, m := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("conns=%d", m), func(b *testing.B) {
			s := &Server{initGlobal: base}
			s.decoders = make(map[int]*decoderCache)
			conns := make([]*clientConn, m)
			for i := range conns {
				conns[i] = &clientConn{id: i, enc: true}
			}
			global := make([]float32, len(base))
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				round := n + 1
				// A fresh global each round, as the server would hold.
				prev := s.initGlobal
				if round > 1 {
					prev = conns[0].baseVec
				}
				for i := range global {
					global[i] = prev[i] + step[i]
				}
				for _, c := range conns {
					c.mu.Lock()
					if _, err := s.buildRequestC(c, round, false, global, nil); err != nil {
						c.mu.Unlock()
						b.Fatal(err)
					}
					c.mu.Unlock()
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(s.bcastEncodes.Load())/float64(b.N), "encodes/round")
		})
	}
}
