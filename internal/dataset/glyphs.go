package dataset

// glyphRows are 5x7 bitmap fonts for the ten digit classes. They are the
// ground-truth shapes from which SynthDigits renders jittered samples;
// the renderer treats each bitmap as a continuous field via bilinear
// interpolation, so affine transforms produce smooth anti-aliased
// strokes rather than blocky pixels.
var glyphRows = [10][7]string{
	{ // 0
		".###.",
		"#...#",
		"#...#",
		"#...#",
		"#...#",
		"#...#",
		".###.",
	},
	{ // 1
		"..#..",
		".##..",
		"..#..",
		"..#..",
		"..#..",
		"..#..",
		".###.",
	},
	{ // 2
		".###.",
		"#...#",
		"....#",
		"...#.",
		"..#..",
		".#...",
		"#####",
	},
	{ // 3
		".###.",
		"#...#",
		"....#",
		"..##.",
		"....#",
		"#...#",
		".###.",
	},
	{ // 4
		"...#.",
		"..##.",
		".#.#.",
		"#..#.",
		"#####",
		"...#.",
		"...#.",
	},
	{ // 5
		"#####",
		"#....",
		"####.",
		"....#",
		"....#",
		"#...#",
		".###.",
	},
	{ // 6
		".###.",
		"#....",
		"#....",
		"####.",
		"#...#",
		"#...#",
		".###.",
	},
	{ // 7
		"#####",
		"....#",
		"...#.",
		"...#.",
		"..#..",
		"..#..",
		"..#..",
	},
	{ // 8
		".###.",
		"#...#",
		"#...#",
		".###.",
		"#...#",
		"#...#",
		".###.",
	},
	{ // 9
		".###.",
		"#...#",
		"#...#",
		".####",
		"....#",
		"....#",
		".###.",
	},
}

const (
	glyphW = 5
	glyphH = 7
)

// glyphs holds the bitmaps as float fields, indexed [class][y][x].
var glyphs [10][glyphH][glyphW]float32

func init() {
	for c, rows := range glyphRows {
		for y, row := range rows {
			for x := 0; x < glyphW; x++ {
				if row[x] == '#' {
					glyphs[c][y][x] = 1
				}
			}
		}
	}
}

// glyphSample bilinearly samples the continuous field of class c at glyph
// coordinates (gx, gy), returning 0 outside the bitmap.
func glyphSample(c int, gx, gy float64) float32 {
	if gx < -1 || gy < -1 || gx > glyphW || gy > glyphH {
		return 0
	}
	x0 := int(floor(gx))
	y0 := int(floor(gy))
	fx := float32(gx - float64(x0))
	fy := float32(gy - float64(y0))
	v00 := glyphAt(c, x0, y0)
	v10 := glyphAt(c, x0+1, y0)
	v01 := glyphAt(c, x0, y0+1)
	v11 := glyphAt(c, x0+1, y0+1)
	top := v00*(1-fx) + v10*fx
	bot := v01*(1-fx) + v11*fx
	return top*(1-fy) + bot*fy
}

func glyphAt(c, x, y int) float32 {
	if x < 0 || y < 0 || x >= glyphW || y >= glyphH {
		return 0
	}
	return glyphs[c][y][x]
}

func floor(v float64) float64 {
	f := float64(int(v))
	if v < f {
		f--
	}
	return f
}
