package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"fedguard/internal/rng"
)

func TestGenerateShapeAndRange(t *testing.T) {
	r := rng.New(1)
	d := Generate(100, DefaultGenOptions(), r)
	if d.Len() != 100 {
		t.Fatalf("Len = %d", d.Len())
	}
	if len(d.X) != 100*28*28 {
		t.Fatalf("X length = %d", len(d.X))
	}
	for _, v := range d.X {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v outside [0,1]", v)
		}
	}
	for _, l := range d.Labels {
		if l < 0 || l >= NumClasses {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestGenerateClassBalance(t *testing.T) {
	r := rng.New(2)
	d := Generate(1000, DefaultGenOptions(), r)
	counts := d.ClassCounts()
	for c, n := range counts {
		if n != 100 {
			t.Fatalf("class %d has %d samples, want 100", c, n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(50, DefaultGenOptions(), rng.New(3))
	b := Generate(50, DefaultGenOptions(), rng.New(3))
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatal("same seed produced different datasets")
		}
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different labels")
		}
	}
}

func TestRenderDigitHasInk(t *testing.T) {
	r := rng.New(4)
	img := make([]float32, ImageH*ImageW)
	for class := 0; class < NumClasses; class++ {
		RenderDigit(img, class, DefaultGenOptions(), r)
		var sum float32
		for _, v := range img {
			sum += v
		}
		// A digit stroke should cover a meaningful fraction of the canvas.
		if sum < 10 {
			t.Fatalf("class %d rendered nearly blank (ink %v)", class, sum)
		}
		if sum > float32(ImageH*ImageW)*0.8 {
			t.Fatalf("class %d rendered nearly solid (ink %v)", class, sum)
		}
	}
}

func TestClassesAreDistinguishable(t *testing.T) {
	// Mean images of different classes should differ far more than mean
	// images of the same class rendered twice — the signal a classifier
	// learns from.
	r := rng.New(5)
	mean := func(class int) []float64 {
		acc := make([]float64, ImageH*ImageW)
		img := make([]float32, ImageH*ImageW)
		const n = 50
		for i := 0; i < n; i++ {
			RenderDigit(img, class, DefaultGenOptions(), r)
			for j, v := range img {
				acc[j] += float64(v) / n
			}
		}
		return acc
	}
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	m0a := mean(0)
	m0b := mean(0)
	m1 := mean(1)
	same := dist(m0a, m0b)
	diff := dist(m0a, m1)
	if diff < 3*same {
		t.Fatalf("class separation too weak: intra %v vs inter %v", same, diff)
	}
}

func TestBatchGather(t *testing.T) {
	r := rng.New(6)
	d := Generate(20, DefaultGenOptions(), r)
	x, labels := d.Batch([]int{3, 7})
	if x.Dim(0) != 2 || x.Dim(1) != 1 || x.Dim(2) != 28 || x.Dim(3) != 28 {
		t.Fatalf("batch shape %v", x.Shape())
	}
	if labels[0] != d.Labels[3] || labels[1] != d.Labels[7] {
		t.Fatal("batch labels wrong")
	}
	sz := d.ImageSize()
	for i := 0; i < sz; i++ {
		if x.Data[i] != d.X[3*sz+i] {
			t.Fatal("batch pixels wrong")
		}
	}
}

func TestFlatBatch(t *testing.T) {
	r := rng.New(7)
	d := Generate(10, DefaultGenOptions(), r)
	x, _ := d.FlatBatch([]int{0, 1, 2})
	if x.Dim(0) != 3 || x.Dim(1) != 784 {
		t.Fatalf("flat batch shape %v", x.Shape())
	}
}

func TestSubsetAndClone(t *testing.T) {
	r := rng.New(8)
	d := Generate(10, DefaultGenOptions(), r)
	s := d.Subset([]int{1, 3})
	if s.Len() != 2 || s.Labels[0] != d.Labels[1] {
		t.Fatal("Subset wrong")
	}
	c := d.Clone()
	c.X[0] = 99
	c.Labels[0] = 5
	if d.X[0] == 99 {
		t.Fatal("Clone aliases X")
	}
}

func TestPartitionDirichletCoversAllOnce(t *testing.T) {
	r := rng.New(9)
	d := Generate(500, DefaultGenOptions(), r)
	parts := PartitionDirichlet(d, 13, 10, r)
	if len(parts) != 13 {
		t.Fatalf("%d partitions", len(parts))
	}
	seen := make([]int, d.Len())
	total := 0
	for _, p := range parts {
		for _, i := range p {
			seen[i]++
			total++
		}
	}
	if total != d.Len() {
		t.Fatalf("partitions hold %d indices, want %d", total, d.Len())
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("index %d appears %d times", i, n)
		}
	}
}

func TestPartitionDirichletSkew(t *testing.T) {
	// Small alpha must be more skewed than large alpha, measured by the
	// stddev of partition sizes.
	r := rng.New(10)
	d := Generate(2000, DefaultGenOptions(), r)
	sizeStd := func(alpha float64) float64 {
		parts := PartitionDirichlet(d, 20, alpha, r)
		mean := float64(d.Len()) / 20
		var ss float64
		for _, p := range parts {
			dd := float64(len(p)) - mean
			ss += dd * dd
		}
		return math.Sqrt(ss / 20)
	}
	low := sizeStd(0.1)
	high := sizeStd(100)
	if low <= high {
		t.Fatalf("Dirichlet skew inverted: std(0.1)=%v <= std(100)=%v", low, high)
	}
}

func TestQuickPartitionIsExactCover(t *testing.T) {
	r := rng.New(11)
	d := Generate(200, DefaultGenOptions(), r)
	f := func(nc uint8, a uint8) bool {
		clients := int(nc%20) + 1
		alpha := float64(a%50)/10 + 0.1
		parts := PartitionDirichlet(d, clients, alpha, r)
		seen := make([]bool, d.Len())
		count := 0
		for _, p := range parts {
			for _, i := range p {
				if i < 0 || i >= d.Len() || seen[i] {
					return false
				}
				seen[i] = true
				count++
			}
		}
		return count == d.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchesCoverAll(t *testing.T) {
	r := rng.New(12)
	idx := Range(23)
	batches := Batches(idx, 5, r)
	if len(batches) != 5 {
		t.Fatalf("%d batches, want 5", len(batches))
	}
	if len(batches[4]) != 3 {
		t.Fatalf("last batch has %d, want 3", len(batches[4]))
	}
	seen := map[int]bool{}
	for _, b := range batches {
		for _, i := range b {
			if seen[i] {
				t.Fatalf("index %d duplicated across batches", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 23 {
		t.Fatalf("batches cover %d indices, want 23", len(seen))
	}
}

func TestApportionSumsExactly(t *testing.T) {
	f := func(seeds []uint8, totalU uint16) bool {
		if len(seeds) == 0 {
			return true
		}
		total := int(totalU % 5000)
		shares := make([]float64, len(seeds))
		var sum float64
		for i, s := range seeds {
			shares[i] = float64(s) + 0.01
			sum += shares[i]
		}
		for i := range shares {
			shares[i] /= sum
		}
		counts := apportion(shares, total)
		got := 0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			got += c
		}
		return got == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestASCIIArt(t *testing.T) {
	r := rng.New(13)
	img := make([]float32, ImageH*ImageW)
	RenderDigit(img, 8, DefaultGenOptions(), r)
	art := ASCIIArt(img, ImageH, ImageW)
	if len(art) != ImageH*(ImageW+1) {
		t.Fatalf("ASCIIArt length %d", len(art))
	}
}
