// Package dataset provides SynthDigits — a procedural, offline stand-in
// for MNIST — together with the Dirichlet federated partitioner the paper
// uses (Hsu et al., α = 10) and batching utilities.
//
// SynthDigits renders 28×28 grayscale digit images from 5×7 glyph
// bitmaps through a random affine transform (translation, rotation,
// scale), random stroke intensity, and additive pixel noise. It matches
// MNIST in every property the FedGuard pipeline depends on: 10 balanced
// classes, [0,1] pixel intensities, enough intra-class variation that
// classifiers and CVAEs must generalize, and class-conditional structure
// a CVAE decoder can learn to synthesize.
package dataset

import (
	"fmt"
	"math"

	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

// Default image geometry, matching the paper's MNIST input (Table II).
const (
	ImageH     = 28
	ImageW     = 28
	NumClasses = 10
)

// Dataset is a labelled image collection stored contiguously.
type Dataset struct {
	// X holds images row-major as (N, 1, H, W) in [0,1].
	X []float32
	// Labels holds one class index per image.
	Labels []int
	H, W   int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Labels) }

// ImageSize returns the per-image element count (1*H*W).
func (d *Dataset) ImageSize() int { return d.H * d.W }

// Image returns example i as a (1, H, W) tensor aliasing the dataset
// storage.
func (d *Dataset) Image(i int) *tensor.Tensor {
	sz := d.ImageSize()
	return tensor.FromSlice(d.X[i*sz:(i+1)*sz], 1, d.H, d.W)
}

// Batch gathers the examples at the given indices into a fresh
// (B, 1, H, W) tensor plus a label slice.
func (d *Dataset) Batch(indices []int) (*tensor.Tensor, []int) {
	sz := d.ImageSize()
	x := tensor.New(len(indices), 1, d.H, d.W)
	labels := make([]int, len(indices))
	for bi, i := range indices {
		copy(x.Data[bi*sz:(bi+1)*sz], d.X[i*sz:(i+1)*sz])
		labels[bi] = d.Labels[i]
	}
	return x, labels
}

// FlatBatch gathers examples into a (B, H*W) tensor — the dense layout
// the CVAE consumes.
func (d *Dataset) FlatBatch(indices []int) (*tensor.Tensor, []int) {
	x, labels := d.Batch(indices)
	return x.Reshape(len(indices), d.H*d.W), labels
}

// Subset returns a new Dataset containing copies of the selected
// examples.
func (d *Dataset) Subset(indices []int) *Dataset {
	sz := d.ImageSize()
	out := &Dataset{
		X:      make([]float32, len(indices)*sz),
		Labels: make([]int, len(indices)),
		H:      d.H,
		W:      d.W,
	}
	for bi, i := range indices {
		copy(out.X[bi*sz:(bi+1)*sz], d.X[i*sz:(i+1)*sz])
		out.Labels[bi] = d.Labels[i]
	}
	return out
}

// Clone deep-copies the dataset (used by data-poisoning attacks so the
// benign copy survives).
func (d *Dataset) Clone() *Dataset {
	return &Dataset{
		X:      append([]float32(nil), d.X...),
		Labels: append([]int(nil), d.Labels...),
		H:      d.H,
		W:      d.W,
	}
}

// ClassCounts returns a histogram of labels over NumClasses classes.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, NumClasses)
	for _, l := range d.Labels {
		counts[l]++
	}
	return counts
}

// GenOptions controls SynthDigits rendering.
type GenOptions struct {
	// MaxShift is the maximum |translation| in pixels (default 3).
	MaxShift float64
	// MaxRotate is the maximum |rotation| in radians (default 0.26 ≈ 15°).
	MaxRotate float64
	// ScaleJitter is the maximum relative scale deviation (default 0.15).
	ScaleJitter float64
	// NoiseStd is the additive Gaussian pixel noise stddev (default 0.05).
	NoiseStd float64
	// MinInk is the minimum stroke intensity (default 0.75).
	MinInk float64
}

// DefaultGenOptions returns the standard SynthDigits jitter.
func DefaultGenOptions() GenOptions {
	return GenOptions{
		MaxShift:    3,
		MaxRotate:   0.26,
		ScaleJitter: 0.15,
		NoiseStd:    0.05,
		MinInk:      0.75,
	}
}

// Generate renders n SynthDigits examples with class-balanced labels
// (classes cycle 0..9) shuffled into random order, drawing all
// randomness from r.
func Generate(n int, opts GenOptions, r *rng.RNG) *Dataset {
	d := &Dataset{
		X:      make([]float32, n*ImageH*ImageW),
		Labels: make([]int, n),
		H:      ImageH,
		W:      ImageW,
	}
	perm := r.Perm(n)
	for i := 0; i < n; i++ {
		class := i % NumClasses
		idx := perm[i]
		d.Labels[idx] = class
		RenderDigit(d.X[idx*ImageH*ImageW:(idx+1)*ImageH*ImageW], class, opts, r)
	}
	return d
}

// RenderDigit renders one jittered digit of the given class into dst,
// which must hold H*W elements. Exposed so tests and examples can render
// individual digits.
func RenderDigit(dst []float32, class int, opts GenOptions, r *rng.RNG) {
	if class < 0 || class >= NumClasses {
		panic(fmt.Sprintf("dataset: class %d out of range", class))
	}
	if len(dst) < ImageH*ImageW {
		panic("dataset: RenderDigit destination too small")
	}
	// The glyph occupies roughly 20 px of the 28 px canvas.
	baseCell := 20.0 / float64(glyphH)
	scale := baseCell * (1 + opts.ScaleJitter*(2*r.Float64()-1))
	theta := opts.MaxRotate * (2*r.Float64() - 1)
	tx := opts.MaxShift * (2*r.Float64() - 1)
	ty := opts.MaxShift * (2*r.Float64() - 1)
	ink := float32(opts.MinInk + (1-opts.MinInk)*r.Float64())
	sin, cos := math.Sin(theta), math.Cos(theta)
	cx, cy := float64(ImageW)/2+tx, float64(ImageH)/2+ty
	gcx, gcy := float64(glyphW)/2, float64(glyphH)/2

	for y := 0; y < ImageH; y++ {
		for x := 0; x < ImageW; x++ {
			// Inverse affine: canvas -> glyph coordinates.
			dx := float64(x) + 0.5 - cx
			dy := float64(y) + 0.5 - cy
			ux := (cos*dx + sin*dy) / scale
			uy := (-sin*dx + cos*dy) / scale
			v := glyphSample(class, ux+gcx-0.5, uy+gcy-0.5) * ink
			if opts.NoiseStd > 0 {
				v += float32(opts.NoiseStd * r.NormFloat64())
			}
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			dst[y*ImageW+x] = v
		}
	}
}

// PartitionDirichlet splits dataset indices among nClients following the
// per-class Dirichlet procedure of Hsu et al. (reference [28] of the
// paper): for every class, client shares are drawn from Dir(alpha) and
// the class's examples are dealt out accordingly. Every index appears in
// exactly one partition. alpha = 10 reproduces the paper's mild
// heterogeneity; smaller alpha is more skewed.
func PartitionDirichlet(d *Dataset, nClients int, alpha float64, r *rng.RNG) [][]int {
	if nClients <= 0 {
		panic("dataset: PartitionDirichlet with non-positive client count")
	}
	byClass := make([][]int, NumClasses)
	for i, l := range d.Labels {
		byClass[l] = append(byClass[l], i)
	}
	parts := make([][]int, nClients)
	for _, idxs := range byClass {
		if len(idxs) == 0 {
			continue
		}
		r.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		shares := r.Dirichlet(alpha, nClients)
		counts := apportion(shares, len(idxs))
		off := 0
		for c, cnt := range counts {
			parts[c] = append(parts[c], idxs[off:off+cnt]...)
			off += cnt
		}
	}
	// Shuffle within each partition so local batches mix classes.
	for _, p := range parts {
		r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	}
	return parts
}

// apportion converts fractional shares into integer counts summing to
// total using the largest-remainder method.
func apportion(shares []float64, total int) []int {
	counts := make([]int, len(shares))
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(shares))
	assigned := 0
	for i, s := range shares {
		exact := s * float64(total)
		c := int(exact)
		counts[i] = c
		assigned += c
		rems[i] = rem{i, exact - float64(c)}
	}
	// Insertion sort by descending remainder (len is small: #clients).
	for i := 1; i < len(rems); i++ {
		for j := i; j > 0 && rems[j].frac > rems[j-1].frac; j-- {
			rems[j], rems[j-1] = rems[j-1], rems[j]
		}
	}
	for k := 0; assigned < total; k++ {
		counts[rems[k%len(rems)].idx]++
		assigned++
	}
	return counts
}

// Batches yields mini-batch index slices covering all of indices in
// shuffled order. The final batch may be smaller. It returns the batches
// eagerly as a slice of slices.
func Batches(indices []int, batchSize int, r *rng.RNG) [][]int {
	if batchSize <= 0 {
		panic("dataset: non-positive batch size")
	}
	shuffled := append([]int(nil), indices...)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	var out [][]int
	for off := 0; off < len(shuffled); off += batchSize {
		end := off + batchSize
		if end > len(shuffled) {
			end = len(shuffled)
		}
		out = append(out, shuffled[off:end])
	}
	return out
}

// Range returns [0, 1, ..., n-1], a convenience for whole-dataset index
// lists.
func Range(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// ASCIIArt renders image data (H*W floats in [0,1]) as text for terminal
// inspection, using a 5-level density ramp.
func ASCIIArt(img []float32, h, w int) string {
	ramp := []byte(" .:*#")
	out := make([]byte, 0, h*(w+1))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := img[y*w+x]
			lvl := int(v * float32(len(ramp)))
			if lvl >= len(ramp) {
				lvl = len(ramp) - 1
			}
			if lvl < 0 {
				lvl = 0
			}
			out = append(out, ramp[lvl])
		}
		out = append(out, '\n')
	}
	return string(out)
}
