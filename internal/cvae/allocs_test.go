//go:build !race

// Allocation-regression pin for the synthesis hot path. Behind !race
// because the race detector instruments allocations and inflates counts.

package cvae

import (
	"testing"

	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

// TestDecoderGenerateAllocsSteadyState pins Decoder.Generate scratch
// reuse: once warmed up, the audit-set synthesis loop allocates nothing
// per call — decIn, the decoder net's layer scratch, and the output
// image buffer are all reused.
func TestDecoderGenerateAllocsSteadyState(t *testing.T) {
	r := rng.New(0xdeca)
	cfg := SmallConfig()
	model := New(cfg, r)
	dec := DecoderFromCVAE(model)
	z := tensor.New(16, cfg.Latent)
	r.FillNormal(z.Data, 0, 1)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = i % cfg.Classes
	}
	dec.Generate(z, labels) // warm up scratch
	allocs := testing.AllocsPerRun(20, func() { dec.Generate(z, labels) })
	if allocs > 0 {
		t.Fatalf("steady-state Decoder.Generate allocates %.1f/op, want 0", allocs)
	}
}
