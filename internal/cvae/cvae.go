// Package cvae implements the Conditional Variational AutoEncoder at the
// heart of FedGuard (paper §III-A, Table III), plus the unconditional VAE
// used by the Spectral baseline defense.
//
// The CVAE encoder consumes an image concatenated with a one-hot class
// label (784 + 10 = 794 inputs) and produces the mean and log-variance of
// a diagonal Gaussian posterior over a 20-dimensional latent. The decoder
// consumes a latent sample concatenated with a one-hot label (30 inputs)
// and reconstructs the 794-dimensional input. Training maximizes the ELBO
// (Eqn. 5–6): binary cross-entropy reconstruction plus KL regularization
// against the standard normal prior, via the reparameterization trick.
//
// Faithfulness note: Table III lists ReLU on the µ/log σ² heads; a ReLU
// there would confine the posterior mean to the positive orthant and the
// variance to ≥ 1, which contradicts the N(0,1) prior the paper samples
// from at generation time (Alg. 1 line 2). We use the standard linear
// heads. All layer widths and parameter counts match Table III exactly
// (encoder 334,040 / decoder 330,794 / total 664,834 parameters at paper
// scale).
package cvae

import (
	"fmt"
	"math"

	"fedguard/internal/loss"
	"fedguard/internal/nn"
	"fedguard/internal/opt"
	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

// Config fixes the CVAE dimensions. Input is the flattened image size;
// the encoder sees Input+Classes values and the decoder reconstructs
// Input+Classes values (the paper's 794-wide decoder output).
type Config struct {
	Input   int // flattened image dimension (784)
	Hidden  int // trunk width (400 in the paper)
	Latent  int // latent dimension (20 in the paper)
	Classes int // number of label classes (10)
}

// PaperConfig returns the exact Table III dimensions.
func PaperConfig() Config { return Config{Input: 784, Hidden: 400, Latent: 20, Classes: 10} }

// SmallConfig returns a reduced CVAE for fast CPU experiments. The tiny
// latent is deliberate: SynthDigits has little intra-class variation, and
// a narrow z forces class identity to flow through the conditioning
// label, which is exactly the property FedGuard's controllable synthesis
// needs (a 2-dim latent reaches ~0.9 class-conditional fidelity in 30
// epochs on 600 local samples, versus ~0.4 for a 20-dim latent).
func SmallConfig() Config { return Config{Input: 784, Hidden: 256, Latent: 2, Classes: 10} }

// cond returns the conditioned input width (Input + Classes).
func (c Config) cond() int { return c.Input + c.Classes }

// decIn returns the decoder input width (Latent + Classes).
func (c Config) decIn() int { return c.Latent + c.Classes }

// CVAE is a trainable conditional variational autoencoder.
type CVAE struct {
	Cfg Config

	trunk  *nn.Sequential // (B, cond) -> (B, hidden)
	muHead *nn.Linear
	lvHead *nn.Linear
	dec    *nn.Sequential // (B, decIn) -> (B, cond)
}

// New constructs a CVAE with weights initialized from r.
func New(cfg Config, r *rng.RNG) *CVAE {
	return &CVAE{
		Cfg: cfg,
		trunk: nn.NewSequential(
			nn.NewLinear(cfg.cond(), cfg.Hidden, r),
			nn.NewReLU(),
		),
		muHead: nn.NewLinear(cfg.Hidden, cfg.Latent, r),
		lvHead: nn.NewLinear(cfg.Hidden, cfg.Latent, r),
		dec:    newDecoderNet(cfg, r),
	}
}

func newDecoderNet(cfg Config, r *rng.RNG) *nn.Sequential {
	return nn.NewSequential(
		nn.NewLinear(cfg.decIn(), cfg.Hidden, r),
		nn.NewReLU(),
		nn.NewLinear(cfg.Hidden, cfg.cond(), r),
		nn.NewSigmoid(),
	)
}

// Params returns all learnable parameters (encoder trunk, both heads,
// decoder) in a stable order.
func (m *CVAE) Params() []nn.Param {
	var out []nn.Param
	out = append(out, m.trunk.Params()...)
	out = append(out, m.muHead.Params()...)
	out = append(out, m.lvHead.Params()...)
	out = append(out, m.dec.Params()...)
	return out
}

// NumParams returns the learnable scalar count.
func (m *CVAE) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += p.Value.Len()
	}
	return n
}

func (m *CVAE) zeroGrad() {
	for _, p := range m.Params() {
		p.Grad.Zero()
	}
}

// oneHotConcat builds (B, Input+Classes) rows of [x | onehot(label)].
func (m *CVAE) oneHotConcat(x *tensor.Tensor, labels []int) *tensor.Tensor {
	b := x.Dim(0)
	if x.Dim(1) != m.Cfg.Input {
		panic(fmt.Sprintf("cvae: input width %d, want %d", x.Dim(1), m.Cfg.Input))
	}
	out := tensor.New(b, m.Cfg.cond())
	for i := 0; i < b; i++ {
		row := out.Data[i*m.Cfg.cond():]
		copy(row[:m.Cfg.Input], x.Data[i*m.Cfg.Input:(i+1)*m.Cfg.Input])
		l := labels[i]
		if l < 0 || l >= m.Cfg.Classes {
			panic(fmt.Sprintf("cvae: label %d out of range", l))
		}
		row[m.Cfg.Input+l] = 1
	}
	return out
}

// Step runs one training step on a flat image batch x (B, Input) with
// labels, updating parameters through optim. It returns the batch ELBO
// loss (reconstruction + KL).
func (m *CVAE) Step(x *tensor.Tensor, labels []int, optim opt.Optimizer, r *rng.RNG) float64 {
	b := x.Dim(0)
	cfg := m.Cfg
	m.zeroGrad()

	input := m.oneHotConcat(x, labels)
	h := m.trunk.Forward(input, true)
	mu := m.muHead.Forward(h, true)
	logvar := m.lvHead.Forward(h, true)

	// Reparameterization: z = mu + exp(logvar/2) * eps.
	eps := tensor.New(b, cfg.Latent)
	r.FillNormal(eps.Data, 0, 1)
	sigma := tensor.New(b, cfg.Latent)
	for i := range sigma.Data {
		sigma.Data[i] = exp32(0.5 * logvar.Data[i])
	}
	z := tensor.New(b, cfg.Latent)
	for i := range z.Data {
		z.Data[i] = mu.Data[i] + sigma.Data[i]*eps.Data[i]
	}

	decIn := tensor.New(b, cfg.decIn())
	for i := 0; i < b; i++ {
		row := decIn.Data[i*cfg.decIn():]
		copy(row[:cfg.Latent], z.Data[i*cfg.Latent:(i+1)*cfg.Latent])
		row[cfg.Latent+labels[i]] = 1
	}
	out := m.dec.Forward(decIn, true)

	recon, dOut := loss.BinaryCrossEntropy(out, input)
	kl, dMuKL, dLvKL := loss.GaussianKL(mu, logvar)

	// Backward through the decoder into z.
	dDecIn := m.dec.Backward(dOut)
	dMu := tensor.New(b, cfg.Latent)
	dLv := tensor.New(b, cfg.Latent)
	for i := 0; i < b; i++ {
		src := dDecIn.Data[i*cfg.decIn():]
		for j := 0; j < cfg.Latent; j++ {
			dz := src[j]
			k := i*cfg.Latent + j
			dMu.Data[k] = dz + dMuKL.Data[k]
			// dz/dlogvar = eps * d(sigma)/dlogvar = eps * 0.5*sigma.
			dLv.Data[k] = dz*eps.Data[k]*0.5*sigma.Data[k] + dLvKL.Data[k]
		}
	}
	dh1 := m.muHead.Backward(dMu)
	dh2 := m.lvHead.Backward(dLv)
	dh := tensor.New(b, cfg.Hidden)
	tensor.Add(dh, dh1, dh2)
	m.trunk.Backward(dh)

	optim.Step()
	return recon + kl
}

// TrainConfig controls CVAE local training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
}

// DefaultTrainConfig mirrors the paper's 30 client-side CVAE epochs.
func DefaultTrainConfig() TrainConfig { return TrainConfig{Epochs: 30, BatchSize: 32, LR: 1e-3} }

// Dataset is the minimal view of a training set the CVAE needs; it is
// satisfied by *dataset.Dataset.
type Dataset interface {
	Len() int
	FlatBatch(indices []int) (*tensor.Tensor, []int)
}

// Train fits the CVAE on the examples of ds selected by indices using
// Adam, returning the mean ELBO loss of the final epoch.
func (m *CVAE) Train(ds Dataset, indices []int, cfg TrainConfig, r *rng.RNG) float64 {
	optim := opt.NewAdam(m.Params(), cfg.LR)
	var epochLoss float64
	for e := 0; e < cfg.Epochs; e++ {
		epochLoss = 0
		for _, batch := range batchIndices(indices, cfg.BatchSize, r) {
			x, labels := ds.FlatBatch(batch)
			epochLoss += m.Step(x, labels, optim, r) * float64(len(batch))
		}
		epochLoss /= float64(len(indices))
	}
	return epochLoss
}

func batchIndices(indices []int, size int, r *rng.RNG) [][]int {
	shuffled := append([]int(nil), indices...)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	var out [][]int
	for off := 0; off < len(shuffled); off += size {
		end := off + size
		if end > len(shuffled) {
			end = len(shuffled)
		}
		out = append(out, shuffled[off:end])
	}
	return out
}

// DecoderParams exports the decoder weights as a flat vector — the
// payload a FedGuard client uploads alongside its classifier update.
func (m *CVAE) DecoderParams() []float32 { return m.dec.FlattenParams() }

// DecoderSize returns the decoder's parameter count for the given config
// without building a network.
func DecoderSize(cfg Config) int {
	return cfg.decIn()*cfg.Hidden + cfg.Hidden + cfg.Hidden*cfg.cond() + cfg.cond()
}

// Decoder is a standalone conditional decoder, reconstructed server-side
// from an uploaded parameter vector. It synthesizes validation images
// from prior samples and conditioning labels (Alg. 1 line 4).
type Decoder struct {
	Cfg Config
	net *nn.Sequential

	decIn, img *tensor.Tensor // Generate scratch, reused across calls
}

// NewDecoder builds a decoder with the given architecture and loads the
// flat parameter vector params into it.
func NewDecoder(cfg Config, params []float32) (*Decoder, error) {
	net := newDecoderNet(cfg, rng.New(0))
	if err := net.LoadParams(params); err != nil {
		return nil, fmt.Errorf("cvae: bad decoder payload: %w", err)
	}
	return &Decoder{Cfg: cfg, net: net}, nil
}

// DecoderFromCVAE snapshots a trained CVAE's decoder (used in tests and
// examples that skip serialization).
func DecoderFromCVAE(m *CVAE) *Decoder {
	d, err := NewDecoder(m.Cfg, m.DecoderParams())
	if err != nil {
		panic(err) // same config by construction
	}
	return d
}

// Generate synthesizes one image per (z, label) pair. z must be
// (B, Latent); the result is (B, Input) — the image portion of the
// decoder output, with the trailing label-reconstruction lanes dropped.
// The returned tensor is decoder-owned scratch, valid only until the
// next Generate call on this decoder; callers that keep the images
// (as FedGuard's synthesis loop does) must copy them out. A Decoder is
// not safe for concurrent Generate calls.
func (d *Decoder) Generate(z *tensor.Tensor, labels []int) *tensor.Tensor {
	b := z.Dim(0)
	cfg := d.Cfg
	if z.Dim(1) != cfg.Latent {
		panic(fmt.Sprintf("cvae: latent width %d, want %d", z.Dim(1), cfg.Latent))
	}
	if len(labels) != b {
		panic(fmt.Sprintf("cvae: %d labels for batch of %d", len(labels), b))
	}
	d.decIn = tensor.Ensure(d.decIn, b, cfg.decIn())
	for i := 0; i < b; i++ {
		row := d.decIn.Data[i*cfg.decIn() : (i+1)*cfg.decIn()]
		copy(row[:cfg.Latent], z.Data[i*cfg.Latent:(i+1)*cfg.Latent])
		for j := cfg.Latent; j < len(row); j++ {
			row[j] = 0 // clear one-hot lanes left by the previous call
		}
		l := labels[i]
		if l < 0 || l >= cfg.Classes {
			panic(fmt.Sprintf("cvae: label %d out of range", l))
		}
		row[cfg.Latent+l] = 1
	}
	out := d.net.Forward(d.decIn, false)
	d.img = tensor.Ensure(d.img, b, cfg.Input)
	for i := 0; i < b; i++ {
		copy(d.img.Data[i*cfg.Input:(i+1)*cfg.Input], out.Data[i*cfg.cond():i*cfg.cond()+cfg.Input])
	}
	return d.img
}

// Reconstruct runs a full encode-decode pass at the posterior mean (no
// sampling) and returns the reconstructed images (B, Input). Used by
// tests to measure reconstruction quality.
func (m *CVAE) Reconstruct(x *tensor.Tensor, labels []int) *tensor.Tensor {
	b := x.Dim(0)
	cfg := m.Cfg
	input := m.oneHotConcat(x, labels)
	h := m.trunk.Forward(input, false)
	mu := m.muHead.Forward(h, false)
	decIn := tensor.New(b, cfg.decIn())
	for i := 0; i < b; i++ {
		row := decIn.Data[i*cfg.decIn():]
		copy(row[:cfg.Latent], mu.Data[i*cfg.Latent:(i+1)*cfg.Latent])
		row[cfg.Latent+labels[i]] = 1
	}
	out := m.dec.Forward(decIn, false)
	img := tensor.New(b, cfg.Input)
	for i := 0; i < b; i++ {
		copy(img.Data[i*cfg.Input:(i+1)*cfg.Input], out.Data[i*cfg.cond():i*cfg.cond()+cfg.Input])
	}
	return img
}

func exp32(x float32) float32 {
	// Clamp to keep sigma finite under adversarially large logvar.
	if x > 20 {
		x = 20
	} else if x < -20 {
		x = -20
	}
	return float32(math.Exp(float64(x)))
}
