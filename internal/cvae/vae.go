package cvae

import (
	"fedguard/internal/loss"
	"fedguard/internal/nn"
	"fedguard/internal/opt"
	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

// VAE is an unconditional variational autoencoder with a Gaussian (MSE)
// reconstruction term. The Spectral baseline (Li et al., reference [19]
// of the paper) trains one on low-dimensional surrogate vectors of model
// updates and flags updates whose reconstruction error exceeds the mean.
type VAE struct {
	In, Hidden, Latent int

	trunk  *nn.Sequential
	muHead *nn.Linear
	lvHead *nn.Linear
	dec    *nn.Sequential
}

// NewVAE constructs a VAE over in-dimensional inputs.
func NewVAE(in, hidden, latent int, r *rng.RNG) *VAE {
	return &VAE{
		In: in, Hidden: hidden, Latent: latent,
		trunk: nn.NewSequential(
			nn.NewLinear(in, hidden, r),
			nn.NewReLU(),
		),
		muHead: nn.NewLinear(hidden, latent, r),
		lvHead: nn.NewLinear(hidden, latent, r),
		dec: nn.NewSequential(
			nn.NewLinear(latent, hidden, r),
			nn.NewReLU(),
			nn.NewLinear(hidden, in, r),
		),
	}
}

// Params returns all learnable parameters.
func (m *VAE) Params() []nn.Param {
	var out []nn.Param
	out = append(out, m.trunk.Params()...)
	out = append(out, m.muHead.Params()...)
	out = append(out, m.lvHead.Params()...)
	out = append(out, m.dec.Params()...)
	return out
}

func (m *VAE) zeroGrad() {
	for _, p := range m.Params() {
		p.Grad.Zero()
	}
}

// Step runs one training step on batch x (B, In), returning the ELBO
// loss (MSE reconstruction + beta * KL).
func (m *VAE) Step(x *tensor.Tensor, beta float64, optim opt.Optimizer, r *rng.RNG) float64 {
	b := x.Dim(0)
	m.zeroGrad()

	h := m.trunk.Forward(x, true)
	mu := m.muHead.Forward(h, true)
	logvar := m.lvHead.Forward(h, true)

	eps := tensor.New(b, m.Latent)
	r.FillNormal(eps.Data, 0, 1)
	sigma := tensor.New(b, m.Latent)
	for i := range sigma.Data {
		sigma.Data[i] = exp32(0.5 * logvar.Data[i])
	}
	z := tensor.New(b, m.Latent)
	for i := range z.Data {
		z.Data[i] = mu.Data[i] + sigma.Data[i]*eps.Data[i]
	}

	out := m.dec.Forward(z, true)
	recon, dOut := loss.MSE(out, x)
	kl, dMuKL, dLvKL := loss.GaussianKL(mu, logvar)

	dz := m.dec.Backward(dOut)
	dMu := tensor.New(b, m.Latent)
	dLv := tensor.New(b, m.Latent)
	bf := float32(beta)
	for i := range dz.Data {
		dMu.Data[i] = dz.Data[i] + bf*dMuKL.Data[i]
		dLv.Data[i] = dz.Data[i]*eps.Data[i]*0.5*sigma.Data[i] + bf*dLvKL.Data[i]
	}
	dh1 := m.muHead.Backward(dMu)
	dh2 := m.lvHead.Backward(dLv)
	dh := tensor.New(b, m.Hidden)
	tensor.Add(dh, dh1, dh2)
	m.trunk.Backward(dh)

	optim.Step()
	return recon + beta*kl
}

// Fit trains the VAE on rows of x for the given number of epochs.
func (m *VAE) Fit(x *tensor.Tensor, epochs int, lr, beta float64, r *rng.RNG) float64 {
	optim := opt.NewAdam(m.Params(), lr)
	n := x.Dim(0)
	var last float64
	for e := 0; e < epochs; e++ {
		order := r.Perm(n)
		last = 0
		const bs = 16
		for off := 0; off < n; off += bs {
			end := off + bs
			if end > n {
				end = n
			}
			batch := tensor.New(end-off, m.In)
			for bi, idx := range order[off:end] {
				copy(batch.Data[bi*m.In:(bi+1)*m.In], x.Data[idx*m.In:(idx+1)*m.In])
			}
			last += m.Step(batch, beta, optim, r) * float64(end-off)
		}
		last /= float64(n)
	}
	return last
}

// ReconstructionError returns the per-row mean squared reconstruction
// error of x (B, In) through the posterior mean (no sampling).
func (m *VAE) ReconstructionError(x *tensor.Tensor) []float64 {
	b := x.Dim(0)
	h := m.trunk.Forward(x, false)
	mu := m.muHead.Forward(h, false)
	out := m.dec.Forward(mu, false)
	errs := make([]float64, b)
	for i := 0; i < b; i++ {
		var acc float64
		for j := 0; j < m.In; j++ {
			d := float64(out.Data[i*m.In+j]) - float64(x.Data[i*m.In+j])
			acc += d * d
		}
		errs[i] = acc / float64(m.In)
	}
	return errs
}
