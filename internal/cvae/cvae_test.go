package cvae

import (
	"math"
	"testing"

	"fedguard/internal/dataset"
	"fedguard/internal/opt"
	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

func TestPaperConfigParameterCounts(t *testing.T) {
	r := rng.New(1)
	m := New(PaperConfig(), r)
	// Table III: encoder 318,000 + 8,020 + 8,020; decoder 12,400 + 318,394;
	// total 664,834.
	if got := m.NumParams(); got != 664834 {
		t.Fatalf("paper CVAE has %d params, want 664834", got)
	}
	if got := len(m.DecoderParams()); got != 330794 {
		t.Fatalf("decoder payload %d params, want 330794", got)
	}
	if got := DecoderSize(PaperConfig()); got != 330794 {
		t.Fatalf("DecoderSize = %d, want 330794", got)
	}
}

func TestStepReducesLoss(t *testing.T) {
	r := rng.New(2)
	cfg := Config{Input: 784, Hidden: 64, Latent: 8, Classes: 10}
	m := New(cfg, r)
	d := dataset.Generate(64, dataset.DefaultGenOptions(), r)
	x, labels := d.FlatBatch(dataset.Range(64))
	optim := opt.NewAdam(m.Params(), 1e-3)
	first := m.Step(x, labels, optim, r)
	var last float64
	for i := 0; i < 40; i++ {
		last = m.Step(x, labels, optim, r)
	}
	if last >= first*0.8 {
		t.Fatalf("CVAE loss did not fall: %v -> %v", first, last)
	}
}

func TestTrainAndGenerateClassConditional(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a full CVAE; several seconds")
	}
	// The decisive property for FedGuard: after training, the decoder must
	// synthesize images that look like their conditioning class. We verify
	// with a nearest-class-mean check against real data.
	r := rng.New(3)
	cfg := SmallConfig()
	m := New(cfg, r)
	train := dataset.Generate(600, dataset.DefaultGenOptions(), r)
	tc := TrainConfig{Epochs: 25, BatchSize: 32, LR: 1e-3}
	lossV := m.Train(train, dataset.Range(train.Len()), tc, r)
	if math.IsNaN(lossV) {
		t.Fatal("CVAE training diverged to NaN")
	}

	// Class means of real data.
	means := make([][]float64, 10)
	counts := make([]int, 10)
	for i := 0; i < train.Len(); i++ {
		l := train.Labels[i]
		if means[l] == nil {
			means[l] = make([]float64, 784)
		}
		img := train.X[i*784 : (i+1)*784]
		for j, v := range img {
			means[l][j] += float64(v)
		}
		counts[l]++
	}
	for l := range means {
		for j := range means[l] {
			means[l][j] /= float64(counts[l])
		}
	}

	dec := DecoderFromCVAE(m)
	const perClass = 8
	correct := 0
	for class := 0; class < 10; class++ {
		z := tensor.New(perClass, cfg.Latent)
		r.FillNormal(z.Data, 0, 1)
		labels := make([]int, perClass)
		for i := range labels {
			labels[i] = class
		}
		imgs := dec.Generate(z, labels)
		for i := 0; i < perClass; i++ {
			img := imgs.Data[i*784 : (i+1)*784]
			best, bestD := -1, math.Inf(1)
			for l := 0; l < 10; l++ {
				var dd float64
				for j, v := range img {
					diff := float64(v) - means[l][j]
					dd += diff * diff
				}
				if dd < bestD {
					best, bestD = l, dd
				}
			}
			if best == class {
				correct++
			}
		}
	}
	frac := float64(correct) / (10 * perClass)
	if frac < 0.7 {
		t.Fatalf("only %v of generated digits match their conditioning class", frac)
	}
}

func TestGenerateShapesAndRange(t *testing.T) {
	r := rng.New(4)
	cfg := SmallConfig()
	m := New(cfg, r)
	dec := DecoderFromCVAE(m)
	z := tensor.New(5, cfg.Latent)
	r.FillNormal(z.Data, 0, 1)
	imgs := dec.Generate(z, []int{0, 1, 2, 3, 4})
	if imgs.Dim(0) != 5 || imgs.Dim(1) != 784 {
		t.Fatalf("Generate shape %v", imgs.Shape())
	}
	for _, v := range imgs.Data {
		if v < 0 || v > 1 {
			t.Fatalf("generated pixel %v outside [0,1]", v)
		}
	}
}

func TestDecoderRoundTripThroughPayload(t *testing.T) {
	r := rng.New(5)
	cfg := SmallConfig()
	m := New(cfg, r)
	payload := m.DecoderParams()
	dec, err := NewDecoder(cfg, payload)
	if err != nil {
		t.Fatal(err)
	}
	ref := DecoderFromCVAE(m)
	z := tensor.New(3, cfg.Latent)
	r.FillNormal(z.Data, 0, 1)
	labels := []int{1, 2, 3}
	a := dec.Generate(z, labels)
	b := ref.Generate(z, labels)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("payload-reconstructed decoder disagrees with source")
		}
	}
}

func TestNewDecoderRejectsBadPayload(t *testing.T) {
	if _, err := NewDecoder(SmallConfig(), make([]float32, 7)); err == nil {
		t.Fatal("NewDecoder accepted a short payload")
	}
}

func TestReconstructionBetterThanChance(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a full CVAE; several seconds")
	}
	r := rng.New(6)
	cfg := Config{Input: 784, Hidden: 96, Latent: 10, Classes: 10}
	m := New(cfg, r)
	train := dataset.Generate(300, dataset.DefaultGenOptions(), r)
	tc := TrainConfig{Epochs: 10, BatchSize: 32, LR: 2e-3}
	m.Train(train, dataset.Range(train.Len()), tc, r)

	x, labels := train.FlatBatch(dataset.Range(32))
	rec := m.Reconstruct(x, labels)
	var mse, base float64
	for i, v := range rec.Data {
		d := float64(v) - float64(x.Data[i])
		mse += d * d
		b := 0.15 - float64(x.Data[i]) // constant-image baseline
		base += b * b
	}
	if mse >= base {
		t.Fatalf("reconstruction MSE %v not better than constant baseline %v", mse, base)
	}
}

func TestVAELearnsToReconstruct(t *testing.T) {
	r := rng.New(7)
	// Structured data on a 2-D manifold embedded in 16 dims.
	const n, dim = 200, 16
	x := tensor.New(n, dim)
	for i := 0; i < n; i++ {
		a := r.NormFloat32()
		b := r.NormFloat32()
		for j := 0; j < dim; j++ {
			x.Data[i*dim+j] = a*float32(j%3) + b*float32((j+1)%2)
		}
	}
	v := NewVAE(dim, 32, 4, r)
	first := v.Fit(x, 1, 1e-3, 0.1, r)
	last := v.Fit(x, 40, 1e-3, 0.1, r)
	if last >= first {
		t.Fatalf("VAE loss did not fall: %v -> %v", first, last)
	}
	errs := v.ReconstructionError(x)
	if len(errs) != n {
		t.Fatalf("%d errors for %d rows", len(errs), n)
	}
}

func TestVAEFlagsOutliers(t *testing.T) {
	// Train on in-distribution vectors; far-out vectors must reconstruct
	// worse — the working principle of the Spectral defense.
	r := rng.New(8)
	const n, dim = 300, 12
	x := tensor.New(n, dim)
	for i := 0; i < n; i++ {
		a := r.NormFloat32()
		for j := 0; j < dim; j++ {
			x.Data[i*dim+j] = a * float32(1+j%4)
		}
	}
	v := NewVAE(dim, 32, 3, r)
	v.Fit(x, 60, 2e-3, 0.05, r)

	inErr := v.ReconstructionError(x)
	out := tensor.New(10, dim)
	r.FillNormal(out.Data, 5, 3) // off-manifold
	outErr := v.ReconstructionError(out)

	var inMean, outMean float64
	for _, e := range inErr {
		inMean += e
	}
	inMean /= float64(len(inErr))
	for _, e := range outErr {
		outMean += e
	}
	outMean /= float64(len(outErr))
	if outMean < 2*inMean {
		t.Fatalf("outliers not separable: in %v vs out %v", inMean, outMean)
	}
}
