// Package opt implements the first-order optimizers used to train the
// federated classifier and the CVAE: plain SGD, SGD with momentum, and
// Adam, plus global-norm gradient clipping.
//
// An Optimizer binds to a parameter set once and then advances it each
// Step using the gradients accumulated by the layers' backward passes.
package opt

import (
	"math"

	"fedguard/internal/nn"
	"fedguard/internal/tensor"
)

// Optimizer advances model parameters using their accumulated gradients.
type Optimizer interface {
	// Step applies one update and leaves gradients untouched (callers zero
	// them via the model's ZeroGrad).
	Step()
	// SetLR changes the learning rate for subsequent steps.
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
}

// SGD is stochastic gradient descent, optionally with classical momentum
// and L2 weight decay.
type SGD struct {
	params   []nn.Param
	lr       float64
	momentum float64
	decay    float64
	velocity []*tensor.Tensor
}

// NewSGD builds an SGD optimizer over params. momentum 0 disables the
// velocity buffers; decay 0 disables weight decay.
func NewSGD(params []nn.Param, lr, momentum, decay float64) *SGD {
	s := &SGD{params: params, lr: lr, momentum: momentum, decay: decay}
	if momentum != 0 {
		s.velocity = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.New(p.Value.Shape()...)
		}
	}
	return s
}

// Step applies one SGD update.
func (s *SGD) Step() {
	lr := float32(s.lr)
	wd := float32(s.decay)
	for i, p := range s.params {
		g := p.Grad.Data
		v := p.Value.Data
		if s.velocity != nil {
			vel := s.velocity[i].Data
			mom := float32(s.momentum)
			for j := range v {
				grad := g[j] + wd*v[j]
				vel[j] = mom*vel[j] + grad
				v[j] -= lr * vel[j]
			}
		} else {
			for j := range v {
				v[j] -= lr * (g[j] + wd*v[j])
			}
		}
	}
}

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.lr }

// Adam is the Adam optimizer (Kingma & Ba, 2015) with bias correction.
type Adam struct {
	params []nn.Param
	lr     float64
	beta1  float64
	beta2  float64
	eps    float64
	step   int
	m, v   []*tensor.Tensor
}

// NewAdam builds an Adam optimizer with the standard defaults
// beta1=0.9, beta2=0.999, eps=1e-8.
func NewAdam(params []nn.Param, lr float64) *Adam {
	a := &Adam{params: params, lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
	a.m = make([]*tensor.Tensor, len(params))
	a.v = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		a.m[i] = tensor.New(p.Value.Shape()...)
		a.v[i] = tensor.New(p.Value.Shape()...)
	}
	return a
}

// Step applies one Adam update.
func (a *Adam) Step() {
	a.step++
	b1c := 1 - math.Pow(a.beta1, float64(a.step))
	b2c := 1 - math.Pow(a.beta2, float64(a.step))
	lr := a.lr * math.Sqrt(b2c) / b1c
	b1 := float32(a.beta1)
	b2 := float32(a.beta2)
	for i, p := range a.params {
		g := p.Grad.Data
		val := p.Value.Data
		m := a.m[i].Data
		v := a.v[i].Data
		for j := range val {
			gj := g[j]
			m[j] = b1*m[j] + (1-b1)*gj
			v[j] = b2*v[j] + (1-b2)*gj*gj
			val[j] -= float32(lr * float64(m[j]) / (math.Sqrt(float64(v[j])) + a.eps))
		}
	}
}

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.lr }

// ClipGradNorm scales all gradients down so their global L2 norm does not
// exceed maxNorm. It returns the pre-clip norm.
func ClipGradNorm(params []nn.Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += float64(g) * float64(g)
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := float32(maxNorm / norm)
		for _, p := range params {
			for j := range p.Grad.Data {
				p.Grad.Data[j] *= scale
			}
		}
	}
	return norm
}
