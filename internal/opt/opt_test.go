package opt

import (
	"math"
	"testing"

	"fedguard/internal/loss"
	"fedguard/internal/nn"
	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

func TestSGDStep(t *testing.T) {
	p := nn.Param{
		Name:  "w",
		Value: tensor.FromSlice([]float32{1, 2}, 2),
		Grad:  tensor.FromSlice([]float32{0.5, -0.5}, 2),
	}
	s := NewSGD([]nn.Param{p}, 0.1, 0, 0)
	s.Step()
	if math.Abs(float64(p.Value.Data[0])-0.95) > 1e-6 || math.Abs(float64(p.Value.Data[1])-2.05) > 1e-6 {
		t.Fatalf("SGD step gave %v", p.Value.Data)
	}
}

func TestSGDWeightDecay(t *testing.T) {
	p := nn.Param{
		Name:  "w",
		Value: tensor.FromSlice([]float32{1}, 1),
		Grad:  tensor.FromSlice([]float32{0}, 1),
	}
	s := NewSGD([]nn.Param{p}, 0.1, 0, 0.5)
	s.Step()
	// w -= lr * decay * w = 1 - 0.05
	if math.Abs(float64(p.Value.Data[0])-0.95) > 1e-6 {
		t.Fatalf("weight decay gave %v", p.Value.Data[0])
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := nn.Param{
		Name:  "w",
		Value: tensor.FromSlice([]float32{0}, 1),
		Grad:  tensor.FromSlice([]float32{1}, 1),
	}
	s := NewSGD([]nn.Param{p}, 1, 0.9, 0)
	s.Step() // v=1, w=-1
	s.Step() // v=1.9, w=-2.9
	if math.Abs(float64(p.Value.Data[0])+2.9) > 1e-6 {
		t.Fatalf("momentum gave %v, want -2.9", p.Value.Data[0])
	}
}

func TestAdamFirstStepIsLR(t *testing.T) {
	// With bias correction, the first Adam step is ~lr * sign(grad).
	p := nn.Param{
		Name:  "w",
		Value: tensor.FromSlice([]float32{0}, 1),
		Grad:  tensor.FromSlice([]float32{0.3}, 1),
	}
	a := NewAdam([]nn.Param{p}, 0.01)
	a.Step()
	if math.Abs(float64(p.Value.Data[0])+0.01) > 1e-4 {
		t.Fatalf("first Adam step gave %v, want ~-0.01", p.Value.Data[0])
	}
}

func TestClipGradNorm(t *testing.T) {
	p := nn.Param{
		Name:  "w",
		Value: tensor.New(2),
		Grad:  tensor.FromSlice([]float32{3, 4}, 2),
	}
	norm := ClipGradNorm([]nn.Param{p}, 1)
	if math.Abs(norm-5) > 1e-6 {
		t.Fatalf("pre-clip norm = %v, want 5", norm)
	}
	after := math.Hypot(float64(p.Grad.Data[0]), float64(p.Grad.Data[1]))
	if math.Abs(after-1) > 1e-5 {
		t.Fatalf("post-clip norm = %v, want 1", after)
	}
	// Below threshold: untouched.
	ClipGradNorm([]nn.Param{p}, 10)
	after2 := math.Hypot(float64(p.Grad.Data[0]), float64(p.Grad.Data[1]))
	if math.Abs(after2-1) > 1e-5 {
		t.Fatal("clip modified a gradient under the threshold")
	}
}

// Training an XOR-ish toy problem end-to-end proves the substrate learns.
func TestTrainingConverges(t *testing.T) {
	r := rng.New(42)
	model := nn.NewSequential(
		nn.NewLinear(2, 16, r),
		nn.NewReLU(),
		nn.NewLinear(16, 2, r),
	)
	x := tensor.FromSlice([]float32{
		0, 0,
		0, 1,
		1, 0,
		1, 1,
	}, 4, 2)
	labels := []int{0, 1, 1, 0}
	optim := NewAdam(model.Params(), 0.05)
	var final float64
	for epoch := 0; epoch < 300; epoch++ {
		model.ZeroGrad()
		logits := model.Forward(x, true)
		l, grad := loss.SoftmaxCrossEntropy(logits, labels)
		model.Backward(grad)
		optim.Step()
		final = l
	}
	if final > 0.1 {
		t.Fatalf("XOR did not converge: final loss %v", final)
	}
	logits := model.Forward(x, false)
	if acc := loss.Accuracy(logits, labels); acc != 1 {
		t.Fatalf("XOR accuracy = %v, want 1", acc)
	}
}

func TestSGDTrainsLinearRegression(t *testing.T) {
	r := rng.New(7)
	model := nn.NewSequential(nn.NewLinear(3, 1, r))
	// Ground truth: y = 2x0 - x1 + 0.5x2 + 1.
	const n = 64
	x := tensor.New(n, 3)
	target := tensor.New(n, 1)
	r.FillNormal(x.Data, 0, 1)
	for i := 0; i < n; i++ {
		target.Data[i] = 2*x.At(i, 0) - x.At(i, 1) + 0.5*x.At(i, 2) + 1
	}
	optim := NewSGD(model.Params(), 0.1, 0.9, 0)
	var final float64
	for epoch := 0; epoch < 200; epoch++ {
		model.ZeroGrad()
		pred := model.Forward(x, true)
		l, grad := loss.MSE(pred, target)
		model.Backward(grad)
		optim.Step()
		final = l
	}
	if final > 1e-3 {
		t.Fatalf("linear regression did not converge: final loss %v", final)
	}
}

func TestSetLR(t *testing.T) {
	var o Optimizer = NewSGD(nil, 0.1, 0, 0)
	o.SetLR(0.5)
	if o.LR() != 0.5 {
		t.Fatal("SGD SetLR failed")
	}
	o = NewAdam(nil, 0.1)
	o.SetLR(0.5)
	if o.LR() != 0.5 {
		t.Fatal("Adam SetLR failed")
	}
}
