// Command fedbench regenerates every table and figure of the paper's
// evaluation section at a chosen scale, writing Markdown, CSV and SVG
// artifacts into an output directory:
//
//	table4.md / table4.csv   — Table IV (mean ± std accuracy per cell)
//	table5.md                — Table V (communication and time overhead)
//	fig4_<scenario>.csv/.svg — Fig. 4 accuracy-over-rounds series
//	fig5.csv                 — Fig. 5 server-learning-rate study
//	ablation_*.csv           — §VI ablations (t sweep, inner operator,
//	                           Dirichlet α) when -ablations is set
//
// Example:
//
//	fedbench -preset default -out results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fedguard/internal/experiment"
	"fedguard/internal/telemetry"
)

func main() {
	var (
		preset     = flag.String("preset", "default", "experiment scale: quick, default, paper")
		out        = flag.String("out", "results", "output directory")
		ablations  = flag.Bool("ablations", false, "also run the §VI ablation sweeps")
		fig4Only   = flag.Bool("fig4-only", false, "run only the Fig. 4 / Table IV matrix")
		svgFrom    = flag.String("svg-from-csv", "", "re-render an archived series CSV as SVG and exit")
		metricsOut = flag.String("metrics-out", "", "write every run's summary statistics as a JSON metrics snapshot")
		events     = flag.String("events", "", "write every run's structured JSONL event log (and spans with -trace) to this path")
		trace      = flag.Bool("trace", false, "record span trees for every run (exported into the -events log; analyze with fedtrace)")
	)
	flag.Parse()

	if *svgFrom != "" {
		if err := svgFromCSV(*svgFrom); err != nil {
			fatal(err)
		}
		return
	}

	setup, err := experiment.NewSetup(experiment.Preset(*preset))
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	log := os.Stderr

	// One telemetry bundle is threaded through every run of the bench
	// (experiment.Setup.Telemetry): its registry collects the per-phase
	// histograms and final summary gauges for -metrics-out, and its sink
	// streams events — plus span trees under -trace — into -events.
	tel := telemetry.New(nil)
	if *events != "" {
		sink, err := telemetry.NewFileSink(*events)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "fedbench: event log:", err)
			}
		}()
		tel.Events = sink
	}
	if *trace {
		tel.EnableTracing("bench")
	}
	setup.Telemetry = tel
	reg := tel.Metrics
	defer func() {
		if *metricsOut == "" {
			return
		}
		writeFile(filepath.Dir(*metricsOut), filepath.Base(*metricsOut), func(f *os.File) error {
			return reg.WriteJSON(f)
		})
	}()

	// --- Fig. 4 + Table IV: the scenario × strategy matrix. -------------
	scenarios := append([]experiment.Scenario{mustScenario("no-attack")},
		experiment.TableIVScenarios()...)
	results, err := experiment.RunMatrix(setup, scenarios, experiment.StrategyNames(), log)
	if err != nil {
		fatal(err)
	}
	experiment.RecordResults(reg, results)
	writeFile(*out, "table4.md", func(f *os.File) error {
		return experiment.WriteTableIV(f, results)
	})
	writeFile(*out, "table4.csv", func(f *os.File) error {
		return experiment.WriteTableIVCSV(f, results)
	})
	bySc := map[string][]*experiment.Result{}
	for _, r := range results {
		bySc[r.Scenario.ID] = append(bySc[r.Scenario.ID], r)
	}
	for id, rs := range bySc {
		rs := rs
		writeFile(*out, "fig4_"+id+".csv", func(f *os.File) error {
			return experiment.WriteSeriesCSV(f, rs, func(r *experiment.Result) string { return r.Strategy })
		})
		writeFile(*out, "fig4_"+id+".svg", func(f *os.File) error {
			return experiment.WriteSVGChart(f, rs, "Fig. 4 — "+id)
		})
	}
	experiment.WriteASCIIChart(log, results)
	if *fig4Only {
		return
	}

	// --- Fig. 5: server learning rate under 40% label flipping. ---------
	fig5, err := experiment.Fig5(setup, []float64{1.0, 0.3}, log)
	if err != nil {
		fatal(err)
	}
	experiment.RecordResults(reg, fig5)
	writeFile(*out, "fig5.csv", func(f *os.File) error {
		return experiment.WriteSeriesCSV(f, fig5, func(r *experiment.Result) string { return r.Strategy })
	})
	writeFile(*out, "fig5.svg", func(f *os.File) error {
		return experiment.WriteSVGChart(f, fig5, "Fig. 5 — FedGuard server LR, 40% label flip")
	})

	// --- Table V: per-round traffic and time. ----------------------------
	rows, overheadResults, err := experiment.Overhead(setup, experiment.StrategyNames(), log)
	if err != nil {
		fatal(err)
	}
	experiment.RecordResults(reg, overheadResults)
	writeFile(*out, "table5.md", func(f *os.File) error {
		return experiment.WriteTableV(f, rows)
	})

	if !*ablations {
		return
	}

	// --- §VI ablations. ---------------------------------------------------
	tRes, err := experiment.AblationSamples(setup, "sign-flip-50",
		[]int{setup.PerRound / 2, setup.PerRound, 2 * setup.PerRound, 4 * setup.PerRound}, log)
	if err != nil {
		fatal(err)
	}
	experiment.RecordResults(reg, tRes)
	writeFile(*out, "ablation_samples.csv", func(f *os.File) error {
		return experiment.WriteTableIVCSV(f, tRes)
	})
	innerRes, err := experiment.AblationInner(setup, "sign-flip-50", log)
	if err != nil {
		fatal(err)
	}
	experiment.RecordResults(reg, innerRes)
	writeFile(*out, "ablation_inner.csv", func(f *os.File) error {
		return experiment.WriteTableIVCSV(f, innerRes)
	})
	alphaRes, err := experiment.AblationDirichlet(setup, "label-flip-30",
		[]float64{100, 10, 1, 0.5}, log)
	if err != nil {
		fatal(err)
	}
	experiment.RecordResults(reg, alphaRes)
	writeFile(*out, "ablation_dirichlet.csv", func(f *os.File) error {
		return experiment.WriteTableIVCSV(f, alphaRes)
	})
}

// svgFromCSV re-renders an archived WriteSeriesCSV file as an SVG chart
// next to it.
func svgFromCSV(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	results, err := experiment.ResultsFromSeriesCSV(f)
	if err != nil {
		return err
	}
	outPath := strings.TrimSuffix(path, ".csv") + ".svg"
	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := experiment.WriteSVGChart(out, results, filepath.Base(strings.TrimSuffix(path, ".csv"))); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	return nil
}

func mustScenario(id string) experiment.Scenario {
	sc, err := experiment.ScenarioByID(id)
	if err != nil {
		fatal(err)
	}
	return sc
}

func writeFile(dir, name string, write func(*os.File) error) {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedbench:", err)
	os.Exit(1)
}
