// Command fedtrace is the offline timeline analyzer for traced federated
// runs: it merges the JSONL event logs exported by the server and its
// clients (telemetry.NewFileSink on each node), reconstructs every
// round's span tree across process boundaries, and prints a
// straggler/critical-path report — round wall time, the slowest client,
// the audit-vs-train cost split, retry amplification, measured bytes,
// and dropped clients with their drop reasons.
//
// Usage:
//
//	fedtrace [-format text|json] server.jsonl client0.jsonl ...
//
// Logs can be analyzed partially (server-only still yields the per-round
// table; client-side phases then show as incomplete rounds and orphan
// counts). -format json emits the Report structure for scripting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	format := flag.String("format", "text", "output format: text or json")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: fedtrace [-format text|json] events.jsonl [more.jsonl ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "fedtrace: unknown -format %q\n", *format)
		os.Exit(2)
	}

	spans, err := loadFiles(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedtrace: %v\n", err)
		os.Exit(1)
	}
	rep, err := analyze(buildForest(spans))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedtrace: %v\n", err)
		os.Exit(1)
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "fedtrace: %v\n", err)
			os.Exit(1)
		}
	default:
		writeText(os.Stdout, rep)
	}
}
