package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"fedguard/internal/aggregate"
	"fedguard/internal/classifier"
	"fedguard/internal/cvae"
	"fedguard/internal/dataset"
	"fedguard/internal/defense"
	"fedguard/internal/faultnet"
	"fedguard/internal/fednet"
	"fedguard/internal/fl"
	"fedguard/internal/rng"
	"fedguard/internal/telemetry"
)

// line builds one JSONL event envelope the way telemetry.JSONLSink does.
func line(t *testing.T, ev any) string {
	t.Helper()
	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	env, err := json.Marshal(map[string]any{
		"time": "2026-01-01T00:00:00Z", "event": "Span", "data": json.RawMessage(data),
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(env)
}

// synth builds a raw span map for synthetic-log tests.
func synth(id, parent, name, node string, start, dur int64, labels map[string]string) map[string]any {
	m := map[string]any{
		"trace": "00000000000000aa", "span": id, "name": name, "node": node,
		"start_unix_ns": start, "duration_ns": dur,
	}
	if parent != "" {
		m["parent"] = parent
	}
	if len(labels) > 0 {
		var ls []map[string]string
		for k, v := range labels {
			ls = append(ls, map[string]string{"key": k, "value": v})
		}
		m["labels"] = ls
	}
	return m
}

func TestLoadSpansSkipsNonSpanAndTornLines(t *testing.T) {
	log := strings.Join([]string{
		line(t, synth("01", "", "run", "server", 0, 100, nil)),
		`{"time":"t","event":"RoundCompleted","data":{"round":1}}`,
		`{"time":"t","event":"Span","data":{"span":`, // torn tail
		line(t, synth("02", "01", "round", "server", 1, 50, map[string]string{"round": "1"})),
	}, "\n")
	spans, other, err := loadSpans(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("parsed %d spans, want 2", len(spans))
	}
	if other != 1 {
		t.Fatalf("counted %d non-span events, want 1", other)
	}
	if spans[1].Labels["round"] != "1" {
		t.Fatalf("labels not decoded: %+v", spans[1].Labels)
	}
}

func TestBuildForestLinksAndOrphans(t *testing.T) {
	log := strings.Join([]string{
		line(t, synth("01", "", "run", "server", 0, 100, nil)),
		line(t, synth("03", "02", "client.train", "client-0", 3, 10, nil)), // parent 02 missing
		line(t, synth("04", "01", "round", "server", 2, 50, nil)),
		line(t, synth("05", "01", "round", "server", 1, 50, nil)),
	}, "\n")
	spans, _, err := loadSpans(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	f := buildForest(spans)
	if len(f.Roots) != 1 || f.Roots[0].ID != "01" {
		t.Fatalf("roots: %+v", f.Roots)
	}
	if len(f.Orphans) != 1 || f.Orphans[0].ID != "03" {
		t.Fatalf("orphans: %+v", f.Orphans)
	}
	kids := f.Roots[0].Children
	if len(kids) != 2 || kids[0].ID != "05" || kids[1].ID != "04" {
		t.Fatalf("children not start-sorted: %+v", kids)
	}
}

// syntheticRun builds a two-round networked-topology trace: round 1 has a
// straggler drop and a retry; round 2 is clean with a resend.
func syntheticRun(t *testing.T) []*span {
	t.Helper()
	var lines []string
	add := func(m map[string]any) { lines = append(lines, line(t, m)) }
	add(synth("01", "", "run", "server", 0, 10_000_000_000, nil))
	add(synth("10", "01", "round", "server", 0, 4_000_000_000, map[string]string{"round": "1"}))
	add(synth("11", "10", "server.request", "server", 0, 1_000_000_000, map[string]string{
		"client": "0", "encoding": "raw", "outcome": "ok", "retries": "1",
		"bytes_read": "100", "bytes_written": "200"}))
	add(synth("f1", "11", "client.round", "client-0", 10, 900_000_000, map[string]string{"client": "0", "round": "1"}))
	add(synth("12", "10", "server.request", "server", 0, 3_000_000_000, map[string]string{
		"client": "1", "encoding": "raw", "outcome": "dropped", "reason": "timeout", "retries": "1"}))
	add(synth("13", "10", "server.aggregate", "server", 3_100_000_000, 500_000_000, nil))
	add(synth("14", "13", "server.audit", "server", 3_200_000_000, 300_000_000, nil))
	add(synth("15", "10", "server.eval", "server", 3_700_000_000, 100_000_000, nil))
	add(synth("16", "10", "server.audit_stream", "server", 3_050_000_000, 0, map[string]string{
		"overlap_us": "250000", "jobs": "12"}))
	add(synth("20", "01", "round", "server", 4_000_000_000, 2_000_000_000, map[string]string{"round": "2"}))
	add(synth("21", "20", "server.request", "server", 4_000_000_000, 1_500_000_000, map[string]string{
		"client": "1", "encoding": "raw", "outcome": "ok", "retries": "0",
		"bytes_read": "50", "bytes_written": "60"}))
	add(synth("f2", "21", "client.round", "client-1", 4_000_000_010, 700_000_000, map[string]string{
		"client": "1", "round": "2", "resend": "true"}))
	add(synth("30", "01", "client.rejoin", "server", 3_900_000_000, 0, map[string]string{"client": "1", "round": "2"}))
	spans, _, err := loadSpans(strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	return spans
}

func TestAnalyzeSyntheticNetworkedRun(t *testing.T) {
	rep, err := analyze(buildForest(syntheticRun(t)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Orphans != 0 {
		t.Fatalf("orphans=%d, want 0", rep.Orphans)
	}
	if len(rep.Rounds) != 2 {
		t.Fatalf("%d rounds, want 2", len(rep.Rounds))
	}
	r1 := rep.Rounds[0]
	if r1.Round != 1 || r1.Clients != 2 || r1.OK != 1 {
		t.Fatalf("round 1: %+v", r1)
	}
	if len(r1.Dropped) != 1 || r1.Dropped[0].Client != "1" || r1.Dropped[0].Reason != "timeout" {
		t.Fatalf("round 1 dropped: %+v", r1.Dropped)
	}
	if r1.SlowestClient != "0" || r1.SlowestSeconds != 1.0 {
		t.Fatalf("round 1 straggler: %q %v", r1.SlowestClient, r1.SlowestSeconds)
	}
	if r1.Retries != 2 || r1.BytesRead != 100 || r1.BytesWritten != 200 {
		t.Fatalf("round 1 retries/bytes: %+v", r1)
	}
	if r1.AuditSeconds != 0.3 || r1.AggregateSeconds != 0.5 || r1.EvalSeconds != 0.1 {
		t.Fatalf("round 1 phase split: %+v", r1)
	}
	if r1.OverlapSeconds != 0.25 || r1.OverlapJobs != 12 {
		t.Fatalf("round 1 streaming overlap: %+v", r1)
	}
	if !r1.Complete {
		t.Fatal("round 1 should be complete (the only delivered request has a client span)")
	}
	r2 := rep.Rounds[1]
	if r2.Resends != 1 {
		t.Fatalf("round 2 resends=%d, want 1", r2.Resends)
	}
	if r2.OverlapSeconds != 0 || r2.OverlapJobs != 0 {
		t.Fatalf("round 2 has no audit_stream span, overlap must be zero: %+v", r2)
	}
	if len(rep.Rejoins) != 1 || rep.Rejoins[0].Client != "1" {
		t.Fatalf("rejoins: %+v", rep.Rejoins)
	}
	if rep.TotalRetries != 2 || rep.TotalBytesRead != 150 || rep.TotalBytesWrite != 260 {
		t.Fatalf("totals: %+v", rep)
	}
}

func TestAnalyzeFlagsMissingClientLog(t *testing.T) {
	// Drop the client-side spans from the merge: delivered requests now
	// have no client.round children, so rounds read as incomplete.
	var spans []*span
	for _, s := range syntheticRun(t) {
		if strings.HasPrefix(s.Node, "client-") {
			continue
		}
		spans = append(spans, s)
	}
	rep, err := analyze(buildForest(spans))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rounds {
		if r.Complete {
			t.Fatalf("round %d complete without client logs", r.Round)
		}
	}
}

func TestAnalyzeInProcessTopology(t *testing.T) {
	lines := []string{
		line(t, synth("01", "", "run", "sim", 0, 5_000_000_000, nil)),
		line(t, synth("10", "01", "round", "sim", 0, 4_000_000_000, map[string]string{"round": "1"})),
		line(t, synth("11", "10", "client.round", "sim", 0, 2_000_000_000, map[string]string{"client": "3"})),
		line(t, synth("12", "10", "client.round", "sim", 0, 3_000_000_000, map[string]string{"client": "7"})),
		line(t, synth("13", "10", "server.aggregate", "sim", 3_000_000_000, 200_000_000, nil)),
	}
	spans, _, err := loadSpans(strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := analyze(buildForest(spans))
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Rounds[0]
	if r.Clients != 2 || r.OK != 2 || !r.Complete {
		t.Fatalf("in-process round: %+v", r)
	}
	if r.SlowestClient != "7" {
		t.Fatalf("slowest=%q, want 7", r.SlowestClient)
	}
}

func TestAnalyzeRejectsUntracedLog(t *testing.T) {
	spans, _, err := loadSpans(strings.NewReader(
		`{"time":"t","event":"RoundCompleted","data":{"round":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := analyze(buildForest(spans)); err == nil {
		t.Fatal("expected an error for a log with no run root")
	}
}

func TestWriteTextRendersDropsAndTotals(t *testing.T) {
	rep, err := analyze(buildForest(syntheticRun(t)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	writeText(&buf, rep)
	out := buf.String()
	for _, want := range []string{"drop(1:timeout)", "rejoin: client 1", "retries=2", "overlap", "0.250"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
}

// TestTraceSmoke is the end-to-end gate behind `make trace-smoke`: a
// 3-round 4-client federation over fault-injected loopback TCP — client
// 1 is a hard straggler that times out and is dropped every round — with
// per-node JSONL sinks, whose merged logs fedtrace must reconstruct into
// one complete rooted span tree per round, drop reasons included.
func TestTraceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fault-injection run")
	}
	cfg := fednet.Config{
		Experiment: fl.FederationConfig{
			NumClients: 4,
			PerRound:   4,
			Rounds:     3,
			Alpha:      10,
			ServerLR:   1,
			Client: fl.ClientConfig{
				Arch:       classifier.Tiny(),
				Train:      classifier.TrainConfig{Epochs: 1, BatchSize: 16, LR: 0.1, Momentum: 0.9},
				CVAE:       cvae.Config{Input: 784, Hidden: 16, Latent: 2, Classes: 10},
				CVAETrain:  cvae.TrainConfig{Epochs: 1, BatchSize: 16, LR: 1e-3},
				NumClasses: 10,
			},
			TestSubset: 40,
			Seed:       99,
		},
		ArchName:           "tiny",
		DataSeed:           1234,
		TrainSize:          150,
		MinClientsPerRound: 1,
		IOTimeout:          1500 * time.Millisecond,
		RoundTimeout:       10 * time.Second,
		MaxRetries:         1,
		RetryBackoff:       50 * time.Millisecond,
		Trace:              true,
	}
	dir := t.TempDir()
	serverLog := filepath.Join(dir, "server.jsonl")
	serverSink, err := telemetry.NewFileSink(serverLog)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Telemetry = telemetry.New(serverSink)
	cfg.Telemetry.EnableTracing("server")

	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
	srv, err := fednet.NewServer(cfg, test, aggregate.NewFedAvg())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Client 1 stalls far past every timeout on each post-Hello write: the
	// server must retry it, drop it with a reason, and still finish.
	plan := &faultnet.Plan{Seed: 3, Peers: map[int]faultnet.PeerPlan{
		1: {SkipWrites: 1, WriteDelay: 5 * time.Minute},
	}}

	logs := []string{serverLog}
	sinks := []*telemetry.FileSink{serverSink}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var conns []net.Conn
	for id := 0; id < cfg.Experiment.NumClients; id++ {
		path := filepath.Join(dir, fmt.Sprintf("client%d.jsonl", id))
		sink, err := telemetry.NewFileSink(path)
		if err != nil {
			t.Fatal(err)
		}
		logs = append(logs, path)
		sinks = append(sinks, sink)
		tel := telemetry.New(sink)
		tel.EnableTracing(fmt.Sprintf("client-%d", id))
		wg.Add(1)
		go func(id int, tel *telemetry.T) {
			defer wg.Done()
			c, err := plan.Dial("tcp", ln.Addr().String(), id)
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
			fednet.ServeClientOpts(c, id, fednet.ClientOptions{Trace: true, Telemetry: tel})
			c.Close()
		}(id, tel)
	}

	h, err := srv.Run(ln, nil)
	mu.Lock()
	for _, c := range conns {
		c.Close() // aborts the straggler's injected delay
	}
	mu.Unlock()
	wg.Wait()
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	if len(h.Rounds) != cfg.Experiment.Rounds {
		t.Fatalf("completed %d rounds, want %d", len(h.Rounds), cfg.Experiment.Rounds)
	}
	for _, s := range sinks {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// The fedtrace contract: the merged logs reconstruct every round as a
	// single complete tree under one run root, straggler drops labeled.
	spans, err := loadFiles(logs)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := analyze(buildForest(spans))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Orphans != 0 {
		t.Fatalf("%d orphan spans: some subtree failed to parent across the wire", rep.Orphans)
	}
	if len(rep.Rounds) != cfg.Experiment.Rounds {
		t.Fatalf("reconstructed %d rounds, want %d", len(rep.Rounds), cfg.Experiment.Rounds)
	}
	wantNodes := map[string]bool{"server": true, "client-0": true, "client-2": true, "client-3": true}
	got := map[string]bool{}
	for _, n := range rep.Nodes {
		got[n] = true
	}
	for n := range wantNodes {
		if !got[n] {
			t.Fatalf("trace is missing spans from node %q (have %v)", n, rep.Nodes)
		}
	}
	for i, r := range rep.Rounds {
		if r.Round != i+1 {
			t.Fatalf("round sequence broken: %+v", rep.Rounds)
		}
		if !r.Complete {
			t.Fatalf("round %d tree incomplete: a delivered request has no client-side span", r.Round)
		}
		if r.Clients != 4 || r.OK != 3 {
			t.Fatalf("round %d fan-out: %d clients, %d ok (want 4/3)", r.Round, r.Clients, r.OK)
		}
		if len(r.Dropped) != 1 || r.Dropped[0].Client != "1" || r.Dropped[0].Reason == "" {
			t.Fatalf("round %d: straggler drop not visible with a reason: %+v", r.Round, r.Dropped)
		}
		if r.SlowestClient == "" || r.SlowestSeconds <= 0 {
			t.Fatalf("round %d has no straggler analysis: %+v", r.Round, r)
		}
		if r.BytesWritten <= 0 || r.BytesRead <= 0 {
			t.Fatalf("round %d has no measured bytes: %+v", r.Round, r)
		}
		if r.AggregateSeconds <= 0 || r.EvalSeconds <= 0 {
			t.Fatalf("round %d phase split missing: %+v", r.Round, r)
		}
	}
	// The straggler times out and is retried once before its round-1 drop;
	// later rounds see it already disconnected (zero retries, reason
	// "disconnected"), so the run records exactly its drop-round retries.
	if rep.TotalRetries < 1 {
		t.Fatalf("retry amplification invisible: %d total retries, want >= 1", rep.TotalRetries)
	}

	// And the JSON form must round-trip for scripting.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Trace != rep.Trace || len(back.Rounds) != len(rep.Rounds) {
		t.Fatal("JSON report did not round-trip")
	}
}

// TestTraceStreamOverlap is the streaming-pipeline half of the tracing
// gate: a traced FedGuard federation with StreamAudit on must surface
// nonzero audit/upload overlap in the reconstructed per-round report —
// the proof that decoder synthesis and scoring ran inside the network
// shadow rather than after the barrier.
func TestTraceStreamOverlap(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second traced federation with CVAE training")
	}
	cfg := fednet.Config{
		Experiment: fl.FederationConfig{
			NumClients: 4,
			PerRound:   4,
			Rounds:     2,
			Alpha:      10,
			ServerLR:   1,
			Client: fl.ClientConfig{
				Arch:       classifier.Tiny(),
				Train:      classifier.TrainConfig{Epochs: 1, BatchSize: 16, LR: 0.1, Momentum: 0.9},
				CVAE:       cvae.Config{Input: 784, Hidden: 16, Latent: 2, Classes: 10},
				CVAETrain:  cvae.TrainConfig{Epochs: 1, BatchSize: 16, LR: 1e-3},
				NumClasses: 10,
			},
			TestSubset:  40,
			Seed:        99,
			StreamAudit: true,
		},
		ArchName:    "tiny",
		DataSeed:    1234,
		TrainSize:   150,
		StreamAudit: true,
		Trace:       true,
	}
	dir := t.TempDir()
	serverLog := filepath.Join(dir, "server.jsonl")
	sink, err := telemetry.NewFileSink(serverLog)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Telemetry = telemetry.New(sink)
	cfg.Telemetry.EnableTracing("server")

	test := dataset.Generate(40, dataset.DefaultGenOptions(), rng.New(5))
	guard := defense.NewFedGuard(classifier.Tiny(),
		cvae.Config{Input: 784, Hidden: 16, Latent: 2, Classes: 10})
	srv, err := fednet.NewServer(cfg, test, guard)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	for id := 0; id < cfg.Experiment.NumClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				return
			}
			defer c.Close()
			fednet.ServeClientOpts(c, id, fednet.ClientOptions{})
		}(id)
	}
	if _, err := srv.Run(ln, nil); err != nil {
		t.Fatalf("server: %v", err)
	}
	wg.Wait()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	spans, err := loadFiles([]string{serverLog})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := analyze(buildForest(spans))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != cfg.Experiment.Rounds {
		t.Fatalf("reconstructed %d rounds, want %d", len(rep.Rounds), cfg.Experiment.Rounds)
	}
	var jobs int
	var overlap float64
	for _, r := range rep.Rounds {
		jobs += r.OverlapJobs
		overlap += r.OverlapSeconds
	}
	if jobs == 0 || overlap <= 0 {
		t.Fatalf("streaming run shows no audit/upload overlap (jobs=%d, overlap=%vs):\n%+v",
			jobs, overlap, rep.Rounds)
	}
}
