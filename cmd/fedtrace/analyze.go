package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
)

// span is one reconstructed node of a trace tree, merged from the JSONL
// export of any participating process.
type span struct {
	Trace    string            `json:"trace"`
	ID       string            `json:"span"`
	Parent   string            `json:"parent,omitempty"`
	Name     string            `json:"name"`
	Node     string            `json:"node"`
	Start    int64             `json:"start_unix_ns"`
	Duration int64             `json:"duration_ns"`
	Labels   map[string]string `json:"labels,omitempty"`

	Children []*span `json:"children,omitempty"`
}

// seconds converts the span's monotonic duration.
func (s *span) seconds() float64 { return float64(s.Duration) / 1e9 }

// intLabel reads an integer-valued label (0 when absent or malformed).
func (s *span) intLabel(key string) int64 {
	v, _ := strconv.ParseInt(s.Labels[key], 10, 64)
	return v
}

// loadSpans reads one JSONL event file and returns its Span events.
// Non-span events (RoundCompleted etc.) are counted but not returned;
// malformed lines are skipped rather than fatal, since a crashed node's
// log may end mid-line.
func loadSpans(r io.Reader) (spans []*span, otherEvents int, err error) {
	type envelope struct {
		Event string          `json:"event"`
		Data  json.RawMessage `json:"data"`
	}
	type rawSpan struct {
		Trace    string `json:"trace"`
		Span     string `json:"span"`
		Parent   string `json:"parent"`
		Name     string `json:"name"`
		Node     string `json:"node"`
		Start    int64  `json:"start_unix_ns"`
		Duration int64  `json:"duration_ns"`
		Labels   []struct {
			Key   string `json:"key"`
			Value string `json:"value"`
		} `json:"labels"`
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var env envelope
		if err := json.Unmarshal(line, &env); err != nil {
			continue // torn tail of a crashed node's log
		}
		if env.Event != "Span" {
			otherEvents++
			continue
		}
		var rs rawSpan
		if err := json.Unmarshal(env.Data, &rs); err != nil {
			continue
		}
		sp := &span{
			Trace:    rs.Trace,
			ID:       rs.Span,
			Parent:   rs.Parent,
			Name:     rs.Name,
			Node:     rs.Node,
			Start:    rs.Start,
			Duration: rs.Duration,
		}
		if len(rs.Labels) > 0 {
			sp.Labels = make(map[string]string, len(rs.Labels))
			for _, l := range rs.Labels {
				sp.Labels[l.Key] = l.Value
			}
		}
		spans = append(spans, sp)
	}
	return spans, otherEvents, sc.Err()
}

// loadFiles loads and merges the span streams of every given path.
func loadFiles(paths []string) ([]*span, error) {
	var all []*span
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		spans, _, err := loadSpans(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		all = append(all, spans...)
	}
	return all, nil
}

// forest links a merged span set into trees. Spans whose parent is
// missing from the merge (e.g. a client log analyzed without its
// server's) become orphan roots, counted separately from true roots.
type forest struct {
	Roots   []*span
	Orphans []*span
	byID    map[string]*span
}

// buildForest links children to parents and sorts every level by start
// time, so tree walks read in timeline order.
func buildForest(spans []*span) *forest {
	f := &forest{byID: make(map[string]*span, len(spans))}
	for _, s := range spans {
		f.byID[s.ID] = s
	}
	for _, s := range spans {
		switch {
		case s.Parent == "":
			f.Roots = append(f.Roots, s)
		case f.byID[s.Parent] != nil:
			p := f.byID[s.Parent]
			p.Children = append(p.Children, s)
		default:
			f.Orphans = append(f.Orphans, s)
		}
	}
	order := func(a, b *span) bool {
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.ID < b.ID
	}
	for _, s := range spans {
		sort.Slice(s.Children, func(i, j int) bool { return order(s.Children[i], s.Children[j]) })
	}
	sort.Slice(f.Roots, func(i, j int) bool { return order(f.Roots[i], f.Roots[j]) })
	sort.Slice(f.Orphans, func(i, j int) bool { return order(f.Orphans[i], f.Orphans[j]) })
	return f
}

// DroppedClient is one client that failed to deliver in a round, with
// the server's drop reason.
type DroppedClient struct {
	Client string `json:"client"`
	Reason string `json:"reason"`
}

// RoundReport is one federated round's reconstructed timeline: the
// straggler/critical-path view of Table V's per-round cost columns.
type RoundReport struct {
	Round   int     `json:"round"`
	Seconds float64 `json:"seconds"`

	// Fan-out: requests issued (or in-process client.round spans), how
	// many delivered, and who was dropped with what reason.
	Clients int             `json:"clients"`
	OK      int             `json:"ok"`
	Dropped []DroppedClient `json:"dropped,omitempty"`

	// Straggler analysis: the slowest delivered client bounds the round's
	// train phase (its request is the critical path of the fan-out).
	SlowestClient  string  `json:"slowest_client,omitempty"`
	SlowestSeconds float64 `json:"slowest_seconds"`

	// Phase split (Table V cost columns, from the server's spans).
	AggregateSeconds  float64 `json:"aggregate_seconds"`
	AuditSeconds      float64 `json:"audit_seconds"`
	SynthesizeSeconds float64 `json:"synthesize_seconds"`
	EvalSeconds       float64 `json:"eval_seconds"`

	// Aggregation attribution from the server.aggregate span's labels:
	// which strategy ran and at what kernel parallelism, so aggregate
	// seconds can be compared across strategy × workers settings.
	AggStrategy string `json:"agg_strategy,omitempty"`
	AggWorkers  int    `json:"agg_workers,omitempty"`

	// Streaming-audit overlap: audit compute that ran while uploads were
	// still in flight (hidden in the network shadow), and how many
	// synthesis/scoring jobs it covered. Zero on barrier-mode rounds.
	OverlapSeconds float64 `json:"overlap_seconds"`
	OverlapJobs    int     `json:"overlap_jobs"`

	// Retry amplification: server-side retries plus client-observed
	// duplicate requests answered from cache.
	Retries int `json:"retries"`
	Resends int `json:"resends"`

	// Measured bytes over the round's request spans (CapTrace runs tag
	// them per span; zero on untraced or in-process runs).
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`

	// Complete reports a fully reconstructed round: every delivered
	// request span has its client-side round span parented onto it
	// (trivially true for in-process runs, where the client spans ARE the
	// request-level spans).
	Complete bool `json:"complete"`
}

// Report is the full cross-node reconstruction of one run's trace.
type Report struct {
	Trace  string        `json:"trace"`
	Nodes  []string      `json:"nodes"`
	Spans  int           `json:"spans"`
	Rounds []RoundReport `json:"rounds"`

	// Orphans counts spans whose parent is missing from the merged input
	// (usually: a client log analyzed without the server's, or vice
	// versa). A complete merge has zero.
	Orphans int `json:"orphans"`

	// Rejoins lists mid-run re-registrations (client → round).
	Rejoins []DroppedClient `json:"rejoins,omitempty"`

	TotalSeconds    float64 `json:"total_seconds"`
	TotalRetries    int     `json:"total_retries"`
	TotalResends    int     `json:"total_resends"`
	TotalBytesRead  int64   `json:"total_bytes_read"`
	TotalBytesWrite int64   `json:"total_bytes_written"`
}

// sumNamed walks a subtree accumulating the durations of spans with the
// given name.
func sumNamed(s *span, name string) float64 {
	var total float64
	if s.Name == name {
		total += s.seconds()
	}
	for _, c := range s.Children {
		total += sumNamed(c, name)
	}
	return total
}

// countResends walks a subtree counting resend-labeled client spans.
func countResends(s *span) int {
	n := 0
	if s.Labels["resend"] == "true" {
		n++
	}
	for _, c := range s.Children {
		n += countResends(c)
	}
	return n
}

// analyzeRound reduces one round span's subtree to a report row.
func analyzeRound(rs *span) RoundReport {
	round, _ := strconv.Atoi(rs.Labels["round"])
	r := RoundReport{
		Round:             round,
		Seconds:           rs.seconds(),
		AggregateSeconds:  sumNamed(rs, "server.aggregate"),
		AuditSeconds:      sumNamed(rs, "server.audit"),
		SynthesizeSeconds: sumNamed(rs, "server.synthesize"),
		EvalSeconds:       sumNamed(rs, "server.eval"),
		Complete:          true,
	}
	for _, c := range rs.Children {
		switch c.Name {
		case "server.aggregate":
			r.AggStrategy = c.Labels["strategy"]
			r.AggWorkers = int(c.intLabel("workers"))
		case "server.audit_stream":
			// The streaming-audit summary span carries its overlap as
			// labels; the span itself is ended immediately, so its own
			// duration is not the measurement.
			r.OverlapSeconds = float64(c.intLabel("overlap_us")) / 1e6
			r.OverlapJobs = int(c.intLabel("jobs"))
		case "server.request":
			// Networked topology: round → server.request → client.round.
			r.Clients++
			r.Retries += int(c.intLabel("retries"))
			r.BytesRead += c.intLabel("bytes_read")
			r.BytesWritten += c.intLabel("bytes_written")
			r.Resends += countResends(c)
			if c.Labels["outcome"] == "dropped" {
				r.Dropped = append(r.Dropped, DroppedClient{
					Client: c.Labels["client"],
					Reason: c.Labels["reason"],
				})
				continue
			}
			r.OK++
			if c.seconds() > r.SlowestSeconds {
				r.SlowestSeconds = c.seconds()
				r.SlowestClient = c.Labels["client"]
			}
			// Delivered request with no client-side span: the client's log
			// is missing from the merge (or the client ran untraced).
			hasClientSide := false
			for _, cc := range c.Children {
				if cc.Name == "client.round" {
					hasClientSide = true
				}
			}
			if !hasClientSide {
				r.Complete = false
			}
		case "client.round":
			// In-process topology: round → client.round directly.
			r.Clients++
			r.OK++
			if c.seconds() > r.SlowestSeconds {
				r.SlowestSeconds = c.seconds()
				r.SlowestClient = c.Labels["client"]
			}
		}
	}
	sort.Slice(r.Dropped, func(i, j int) bool { return r.Dropped[i].Client < r.Dropped[j].Client })
	return r
}

// analyze reconstructs per-round reports from a merged span forest. Runs
// are identified by "run" roots; when several run roots exist (repeated
// runs appended to one log) the latest complete one is analyzed.
func analyze(f *forest) (*Report, error) {
	var run *span
	for _, root := range f.Roots {
		if root.Name == "run" {
			run = root // roots are start-sorted: keep the latest
		}
	}
	if run == nil {
		return nil, fmt.Errorf("no run root span found (is this a traced event log?)")
	}
	rep := &Report{
		Trace:        run.Trace,
		Spans:        0,
		Orphans:      len(f.Orphans),
		TotalSeconds: run.seconds(),
	}
	nodes := map[string]bool{}
	var walk func(*span)
	var count int
	walk = func(s *span) {
		count++
		nodes[s.Node] = true
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(run)
	rep.Spans = count
	for n := range nodes {
		rep.Nodes = append(rep.Nodes, n)
	}
	sort.Strings(rep.Nodes)

	for _, c := range run.Children {
		switch c.Name {
		case "round":
			r := analyzeRound(c)
			rep.Rounds = append(rep.Rounds, r)
			rep.TotalRetries += r.Retries
			rep.TotalResends += r.Resends
			rep.TotalBytesRead += r.BytesRead
			rep.TotalBytesWrite += r.BytesWritten
		case "client.rejoin":
			rep.Rejoins = append(rep.Rejoins, DroppedClient{
				Client: c.Labels["client"],
				Reason: "round " + c.Labels["round"],
			})
		}
	}
	sort.Slice(rep.Rounds, func(i, j int) bool { return rep.Rounds[i].Round < rep.Rounds[j].Round })
	return rep, nil
}

// writeText renders the report as a per-round table plus totals.
func writeText(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "trace %s  nodes=%v  spans=%d  orphans=%d\n",
		rep.Trace, rep.Nodes, rep.Spans, rep.Orphans)
	fmt.Fprintf(w, "%5s %8s %7s %9s %9s %9s %8s %7s %7s %10s  %s\n",
		"round", "seconds", "clients", "slowest", "aggregate", "audit", "overlap", "eval", "retry", "bytes r/w", "notes")
	for _, r := range rep.Rounds {
		notes := ""
		if !r.Complete {
			notes += "incomplete "
		}
		for _, d := range r.Dropped {
			notes += fmt.Sprintf("drop(%s:%s) ", d.Client, d.Reason)
		}
		slow := "-"
		if r.SlowestClient != "" {
			slow = fmt.Sprintf("%.2fs#%s", r.SlowestSeconds, r.SlowestClient)
		}
		fmt.Fprintf(w, "%5d %8.2f %3d/%-3d %9s %9.3f %9.3f %8.3f %7.3f %3d+%-3d %5d/%-5d %s\n",
			r.Round, r.Seconds, r.OK, r.Clients, slow,
			r.AggregateSeconds, r.AuditSeconds, r.OverlapSeconds, r.EvalSeconds,
			r.Retries, r.Resends, r.BytesRead, r.BytesWritten, notes)
	}
	for _, rj := range rep.Rejoins {
		fmt.Fprintf(w, "rejoin: client %s at %s\n", rj.Client, rj.Reason)
	}
	// Aggregation attribution: constant across rounds, so report once.
	for _, r := range rep.Rounds {
		if r.AggStrategy != "" || r.AggWorkers > 0 {
			fmt.Fprintf(w, "aggregation: strategy=%s workers=%d\n", r.AggStrategy, r.AggWorkers)
			break
		}
	}
	fmt.Fprintf(w, "total %.2fs  retries=%d resends=%d  bytes=%d/%d\n",
		rep.TotalSeconds, rep.TotalRetries, rep.TotalResends,
		rep.TotalBytesRead, rep.TotalBytesWrite)
}
