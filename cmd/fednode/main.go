// Command fednode runs one node of a networked federation — the
// deployment shape of the paper's Grid'5000 evaluation (one server node,
// clients elsewhere, Ethernet in between).
//
// Server (binds, waits for all clients, drives R rounds, prints history):
//
//	fednode -mode server -listen :7070 -preset quick \
//	        -scenario sign-flip-50 -strategy FedGuard
//
// Client (one process per federated participant):
//
//	for i in $(seq 0 15); do fednode -mode client -addr host:7070 -id $i & done
//
// Both sides derive all randomness from the shared experiment seed, so a
// networked run reproduces the in-process simulator bit for bit.
//
// Fault tolerance is off by default (any client failure aborts the run,
// matching the simulator's semantics). -min-clients enables graceful
// degradation; see the README's "Fault tolerance" section:
//
//	fednode -mode server -min-clients 4 -round-timeout 2m -io-timeout 30s \
//	        -retries 2 -register-timeout 5m ...
//	fednode -mode client -redial 10 ...
//
// Lossless wire compression (decoder dedup, delta-encoded models, float
// codec) engages when both endpoints pass -compress; either side
// omitting the flag keeps that connection on raw frames, and results
// are bit-identical in every combination. See the README's
// "Communication efficiency" section.
//
// Distributed tracing engages the same way: when both endpoints pass
// -trace, trace context propagates over the wire (CapTrace) and each
// node exports its half of the span tree into its -events log, e.g.
//
//	fednode -mode server -trace -events server.jsonl ...
//	fednode -mode client -id 3 -trace -events client3.jsonl ...
//	fedtrace server.jsonl client*.jsonl
//
// See the README's "Tracing" subsection.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"fedguard/internal/dataset"
	"fedguard/internal/experiment"
	"fedguard/internal/fednet"
	"fedguard/internal/fl"
	"fedguard/internal/rng"
	"fedguard/internal/telemetry"
)

func main() {
	var (
		mode     = flag.String("mode", "server", "server or client")
		listen   = flag.String("listen", ":7070", "server: listen address")
		addr     = flag.String("addr", "127.0.0.1:7070", "client: server address")
		id       = flag.Int("id", 0, "client: participant ID in [0, NumClients)")
		preset   = flag.String("preset", "quick", "experiment scale: quick, default, paper")
		scenario = flag.String("scenario", "no-attack", "attack scenario (see fedsim -list)")
		strategy = flag.String("strategy", "FedGuard", "aggregation strategy")

		events    = flag.String("events", "", "write a structured JSONL event log to this path (both modes)")
		debugAddr = flag.String("debug-addr", "", "server: serve /metrics, /healthz, expvar and pprof on this address")
		compress  = flag.Bool("compress", false,
			"enable lossless wire compression (decoder dedup, delta encoding, float codec); negotiated, so both endpoints must pass it")
		trace = flag.Bool("trace", false,
			"record span trees and propagate trace context over the wire (CapTrace); negotiated, so both endpoints must pass it; merge the per-node -events logs with fedtrace")
		streamAudit = flag.Bool("stream-audit", false,
			"server: audit each update as it arrives instead of after the round barrier (bit-identical results; server-side only, no negotiation)")
		aggWorkers = flag.Int("agg-workers", 0,
			"server: aggregation-kernel parallelism (0 = tensor pool default; results identical at any value)")

		minClients = flag.Int("min-clients", 0,
			"server: round quorum; > 0 drops unresponsive clients instead of aborting (0 = strict)")
		roundTimeout = flag.Duration("round-timeout", 0,
			"server: straggler budget for one round's client phase (0 = unbounded)")
		ioTimeout = flag.Duration("io-timeout", 0,
			"server: deadline for each wire send/receive (0 = unbounded)")
		retries = flag.Int("retries", 0,
			"server: per-client retries after transient errors within a round")
		registerTimeout = flag.Duration("register-timeout", 0,
			"server: start once min-clients registered and this long has passed (0 = wait for all)")
		redial = flag.Int("redial", 0,
			"client: reconnection attempts after a broken session (0 = fail fast)")
		ckptDir = flag.String("checkpoint-dir", "",
			"server: persist a crash-safe run checkpoint to this directory after each round")
		ckptEvery = flag.Int("checkpoint-every", 1,
			"server: checkpoint cadence in rounds (with -checkpoint-dir)")
		resume = flag.Bool("resume", false,
			"server: resume from the checkpoint in -checkpoint-dir (cold start if absent); clients rejoin via -redial")
	)
	flag.Parse()

	if *resume && *ckptDir == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint-dir"))
	}
	if *ckptEvery < 0 {
		fatal(fmt.Errorf("-checkpoint-every = %d", *ckptEvery))
	}
	if *aggWorkers < 0 {
		fatal(fmt.Errorf("-agg-workers = %d", *aggWorkers))
	}

	switch *mode {
	case "client":
		opts := fednet.ClientOptions{
			Redials:  *redial,
			Compress: *compress,
			Trace:    *trace,
		}
		var sink *telemetry.FileSink
		if *events != "" {
			var err error
			if sink, err = telemetry.NewFileSink(*events); err != nil {
				fatal(err)
			}
			opts.Telemetry = telemetry.New(sink)
			if *trace {
				opts.Telemetry.EnableTracing(fmt.Sprintf("client-%d", *id))
			}
		}
		err := fednet.RunClientResilient(*addr, *id, opts)
		if sink != nil {
			// Flush the span log even when the session ends in an error —
			// a dropped client's trace is exactly the interesting one.
			if cerr := sink.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if err != nil {
			fatal(err)
		}
	case "server":
		ft := faultTolerance{
			MinClients:      *minClients,
			RoundTimeout:    *roundTimeout,
			IOTimeout:       *ioTimeout,
			Retries:         *retries,
			RegisterTimeout: *registerTimeout,
		}
		ck := checkpointing{Dir: *ckptDir, Every: *ckptEvery, Resume: *resume}
		if err := runServer(*listen, *preset, *scenario, *strategy, *events, *debugAddr, *compress, *trace, *streamAudit, *aggWorkers, ft, ck); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

// faultTolerance carries the server's degradation knobs from flags to
// fednet.Config.
type faultTolerance struct {
	MinClients      int
	RoundTimeout    time.Duration
	IOTimeout       time.Duration
	Retries         int
	RegisterTimeout time.Duration
}

// checkpointing carries the server's crash-recovery knobs from flags to
// fednet.Config.
type checkpointing struct {
	Dir    string
	Every  int
	Resume bool
}

func runServer(listen, preset, scenarioID, strategyName, events, debugAddr string, compress, trace, streamAudit bool, aggWorkers int, ft faultTolerance, ck checkpointing) error {
	setup, err := experiment.NewSetup(experiment.Preset(preset))
	if err != nil {
		return err
	}

	var tel *telemetry.T
	if events != "" || debugAddr != "" || trace {
		tel = telemetry.New(nil)
		if events != "" {
			sink, err := telemetry.NewFileSink(events)
			if err != nil {
				return err
			}
			defer sink.Close()
			tel.Events = sink
		}
		if debugAddr != "" {
			ds, err := telemetry.ServeDebug(debugAddr, tel.Metrics)
			if err != nil {
				return err
			}
			defer ds.Close()
			fmt.Fprintf(os.Stderr, "fednode: debug endpoints on http://%s/\n", ds.Addr())
		}
		if trace {
			if events == "" {
				fmt.Fprintln(os.Stderr,
					"fednode: -trace without -events feeds the phase histograms only; add -events to export spans for fedtrace")
			}
			tel.EnableTracing("server")
		}
	}
	sc, err := experiment.ScenarioByID(scenarioID)
	if err != nil {
		return err
	}
	strat, err := experiment.NewStrategy(strategyName, setup)
	if err != nil {
		return err
	}

	expCfg := fl.FederationConfig{
		NumClients:        setup.NumClients,
		PerRound:          setup.PerRound,
		Rounds:            setup.Rounds,
		Alpha:             setup.Alpha,
		ServerLR:          setup.ServerLR,
		MaliciousFraction: sc.MaliciousFraction,
		Client: fl.ClientConfig{
			Arch:       setup.Arch,
			Train:      setup.Train,
			CVAE:       setup.CVAE,
			CVAETrain:  setup.CVAETrain,
			NumClasses: 10,
		},
		TestSubset:  setup.TestSubset,
		AggWorkers:  aggWorkers,
		Seed:        setup.Seed,
		StreamAudit: streamAudit,
	}
	cfg := fednet.Config{
		Experiment: expCfg,
		AttackName: sc.Attack,
		ArchName:   setup.ArchName,
		DataSeed:   rng.DeriveSeed(setup.Seed, "traindata", 0),
		TrainSize:  setup.TrainSize,
		Telemetry:  tel,

		MinClientsPerRound: ft.MinClients,
		RoundTimeout:       ft.RoundTimeout,
		IOTimeout:          ft.IOTimeout,
		MaxRetries:         ft.Retries,
		RegisterTimeout:    ft.RegisterTimeout,

		Compress:    compress,
		Trace:       trace,
		StreamAudit: streamAudit,

		CheckpointDir:   ck.Dir,
		CheckpointEvery: ck.Every,
		Resume:          ck.Resume,
	}
	test := dataset.Generate(setup.TestSize, dataset.DefaultGenOptions(),
		rng.New(rng.DeriveSeed(setup.Seed, "testdata", 0)))

	srv, err := fednet.NewServer(cfg, test, strat)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(os.Stderr, "fednode: serving on %s, waiting for %d clients...\n",
		ln.Addr(), setup.NumClients)

	h, err := srv.Run(ln, func(rec fl.RoundRecord) {
		line := fmt.Sprintf("round %3d  acc=%.4f  up=%.2fMB down=%.2fMB  wire=%.2f/%.2fMB  %.2fs",
			rec.Round, rec.TestAccuracy,
			float64(rec.UploadBytes)/(1<<20), float64(rec.DownloadBytes)/(1<<20),
			float64(rec.WireUploadBytes)/(1<<20), float64(rec.WireDownloadBytes)/(1<<20),
			rec.Seconds)
		if len(rec.Dropped) > 0 {
			line += fmt.Sprintf("  dropped=%v", rec.Dropped)
		}
		fmt.Fprintln(os.Stderr, line)
	})
	if err != nil {
		return err
	}
	mean, std := h.LastNStats(setup.LastN)
	wireUp, wireDown := h.MeanWireBytes()
	fmt.Fprintf(os.Stderr, "done: final=%.4f  last-%d mean=%.4f ± %.4f  wire=%.2f/%.2fMB per round\n",
		h.FinalAccuracy(), setup.LastN, mean, std,
		float64(wireUp)/(1<<20), float64(wireDown)/(1<<20))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fednode:", err)
	os.Exit(1)
}
