// Command fednode runs one node of a networked federation — the
// deployment shape of the paper's Grid'5000 evaluation (one server node,
// clients elsewhere, Ethernet in between).
//
// Server (binds, waits for all clients, drives R rounds, prints history):
//
//	fednode -mode server -listen :7070 -preset quick \
//	        -scenario sign-flip-50 -strategy FedGuard
//
// Client (one process per federated participant):
//
//	for i in $(seq 0 15); do fednode -mode client -addr host:7070 -id $i & done
//
// Both sides derive all randomness from the shared experiment seed, so a
// networked run reproduces the in-process simulator bit for bit.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"fedguard/internal/dataset"
	"fedguard/internal/experiment"
	"fedguard/internal/fednet"
	"fedguard/internal/fl"
	"fedguard/internal/rng"
	"fedguard/internal/telemetry"
)

func main() {
	var (
		mode     = flag.String("mode", "server", "server or client")
		listen   = flag.String("listen", ":7070", "server: listen address")
		addr     = flag.String("addr", "127.0.0.1:7070", "client: server address")
		id       = flag.Int("id", 0, "client: participant ID in [0, NumClients)")
		preset   = flag.String("preset", "quick", "experiment scale: quick, default, paper")
		scenario = flag.String("scenario", "no-attack", "attack scenario (see fedsim -list)")
		strategy = flag.String("strategy", "FedGuard", "aggregation strategy")

		events    = flag.String("events", "", "server: write a structured JSONL event log to this path")
		debugAddr = flag.String("debug-addr", "", "server: serve /metrics, /healthz, expvar and pprof on this address")
	)
	flag.Parse()

	switch *mode {
	case "client":
		if err := fednet.RunClient(*addr, *id); err != nil {
			fatal(err)
		}
	case "server":
		if err := runServer(*listen, *preset, *scenario, *strategy, *events, *debugAddr); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func runServer(listen, preset, scenarioID, strategyName, events, debugAddr string) error {
	setup, err := experiment.NewSetup(experiment.Preset(preset))
	if err != nil {
		return err
	}

	var tel *telemetry.T
	if events != "" || debugAddr != "" {
		tel = telemetry.New(nil)
		if events != "" {
			sink, err := telemetry.NewFileSink(events)
			if err != nil {
				return err
			}
			defer sink.Close()
			tel.Events = sink
		}
		if debugAddr != "" {
			ds, err := telemetry.ServeDebug(debugAddr, tel.Metrics)
			if err != nil {
				return err
			}
			defer ds.Close()
			fmt.Fprintf(os.Stderr, "fednode: debug endpoints on http://%s/\n", ds.Addr())
		}
	}
	sc, err := experiment.ScenarioByID(scenarioID)
	if err != nil {
		return err
	}
	strat, err := experiment.NewStrategy(strategyName, setup)
	if err != nil {
		return err
	}

	expCfg := fl.FederationConfig{
		NumClients:        setup.NumClients,
		PerRound:          setup.PerRound,
		Rounds:            setup.Rounds,
		Alpha:             setup.Alpha,
		ServerLR:          setup.ServerLR,
		MaliciousFraction: sc.MaliciousFraction,
		Client: fl.ClientConfig{
			Arch:       setup.Arch,
			Train:      setup.Train,
			CVAE:       setup.CVAE,
			CVAETrain:  setup.CVAETrain,
			NumClasses: 10,
		},
		TestSubset: setup.TestSubset,
		Seed:       setup.Seed,
	}
	cfg := fednet.Config{
		Experiment: expCfg,
		AttackName: sc.Attack,
		ArchName:   setup.ArchName,
		DataSeed:   rng.DeriveSeed(setup.Seed, "traindata", 0),
		TrainSize:  setup.TrainSize,
		Telemetry:  tel,
	}
	test := dataset.Generate(setup.TestSize, dataset.DefaultGenOptions(),
		rng.New(rng.DeriveSeed(setup.Seed, "testdata", 0)))

	srv, err := fednet.NewServer(cfg, test, strat)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(os.Stderr, "fednode: serving on %s, waiting for %d clients...\n",
		ln.Addr(), setup.NumClients)

	h, err := srv.Run(ln, func(rec fl.RoundRecord) {
		fmt.Fprintf(os.Stderr, "round %3d  acc=%.4f  up=%.2fMB down=%.2fMB  %.2fs\n",
			rec.Round, rec.TestAccuracy,
			float64(rec.UploadBytes)/(1<<20), float64(rec.DownloadBytes)/(1<<20),
			rec.Seconds)
	})
	if err != nil {
		return err
	}
	mean, std := h.LastNStats(setup.LastN)
	fmt.Fprintf(os.Stderr, "done: final=%.4f  last-%d mean=%.4f ± %.4f\n",
		h.FinalAccuracy(), setup.LastN, mean, std)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fednode:", err)
	os.Exit(1)
}
