package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// Threshold is one guarded benchmark: the measured ns/op and any extra
// metrics (allocs/op, B/op, ...) must stay at or under the recorded
// ceilings. Ceilings are deliberately loose versus the snapshot numbers
// — they catch order-of-magnitude regressions (a lost fast path, a
// pooling bug reintroducing per-op allocation), not CI jitter.
type Threshold struct {
	Name       string             `json:"name"`
	MaxNsPerOp float64            `json:"max_ns_per_op,omitempty"`
	MaxMetrics map[string]float64 `json:"max_metrics,omitempty"`
}

// GuardFile is the committed threshold collection read by -guard.
type GuardFile struct {
	Thresholds []Threshold `json:"thresholds"`
}

// guard checks a parsed benchmark run against the threshold file and
// returns one error line per violation. A guarded benchmark missing
// from the run is itself a violation — otherwise renaming a benchmark
// would silently disarm its guard.
func guard(snap Snapshot, gf GuardFile) []string {
	byName := make(map[string]Result, len(snap.Results))
	for _, r := range snap.Results {
		byName[r.Name] = r
	}
	var violations []string
	for _, th := range gf.Thresholds {
		res, ok := byName[th.Name]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: guarded benchmark missing from the run", th.Name))
			continue
		}
		if th.MaxNsPerOp > 0 && res.NsPerOp > th.MaxNsPerOp {
			violations = append(violations,
				fmt.Sprintf("%s: %.0f ns/op exceeds ceiling %.0f", th.Name, res.NsPerOp, th.MaxNsPerOp))
		}
		for unit, max := range th.MaxMetrics {
			got, ok := res.Metrics[unit]
			if !ok {
				violations = append(violations,
					fmt.Sprintf("%s: metric %q missing from the run (run with -benchmem?)", th.Name, unit))
				continue
			}
			if got > max {
				violations = append(violations,
					fmt.Sprintf("%s: %g %s exceeds ceiling %g", th.Name, got, unit, max))
			}
		}
	}
	return violations
}

// runGuard is the -guard entry point: parse stdin, load thresholds,
// exit nonzero on any violation.
func runGuard(path string) {
	snap, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(snap.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	var gf GuardFile
	if err := json.Unmarshal(raw, &gf); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
		os.Exit(1)
	}
	if len(gf.Thresholds) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %s has no thresholds\n", path)
		os.Exit(1)
	}
	if v := guard(snap, gf); len(v) > 0 {
		for _, line := range v {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s\n", line)
		}
		os.Exit(1)
	}
	fmt.Printf("benchjson: %d benchmark(s) within %s ceilings\n", len(gf.Thresholds), path)
}
