package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: fedguard
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMatMul128       	   26374	    123073 ns/op	        34.08 GFLOPS	       0 B/op	       0 allocs/op
BenchmarkClassifierTrainEpoch-4 	      37	  92277072 ns/op	      2774 samples/s
PASS
ok  	fedguard	17.136s
`

func TestParse(t *testing.T) {
	snap, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if snap.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu = %q", snap.CPU)
	}
	if len(snap.Results) != 2 {
		t.Fatalf("%d results, want 2", len(snap.Results))
	}
	mm := snap.Results[0]
	if mm.Name != "BenchmarkMatMul128" || mm.Iterations != 26374 || mm.NsPerOp != 123073 {
		t.Fatalf("matmul line parsed as %+v", mm)
	}
	if mm.Metrics["GFLOPS"] != 34.08 || mm.Metrics["allocs/op"] != 0 {
		t.Fatalf("matmul metrics %v", mm.Metrics)
	}
	te := snap.Results[1]
	if te.Name != "BenchmarkClassifierTrainEpoch" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", te.Name)
	}
	if te.Metrics["samples/s"] != 2774 {
		t.Fatalf("train epoch metrics %v", te.Metrics)
	}
}

// TestParseWireBenchLines pins the units the wire-layer benchmarks
// report: the per-round byte metric from BenchmarkRoundWireBytes and the
// throughput metrics of the raw-vs-codec write/read benchmarks.
func TestParseWireBenchLines(t *testing.T) {
	const wire = `cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRoundWireBytes/raw-4         	 1000000	      1045 ns/op	    327771 bytes/round
BenchmarkRoundWireBytes/codec-4       	    2050	    582340 ns/op	     41795 bytes/round
BenchmarkWireWriteUpdate/codec-4      	     352	   3394176 ns/op	  86.95 MB/s	 1724876 B/op	      24 allocs/op
`
	snap, err := parse(strings.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Results) != 3 {
		t.Fatalf("%d results, want 3", len(snap.Results))
	}
	raw, codec := snap.Results[0], snap.Results[1]
	if raw.Name != "BenchmarkRoundWireBytes/raw" || raw.Metrics["bytes/round"] != 327771 {
		t.Fatalf("raw line parsed as %+v", raw)
	}
	if codec.Metrics["bytes/round"] != 41795 {
		t.Fatalf("codec metrics %v", codec.Metrics)
	}
	if w := snap.Results[2]; w.Metrics["MB/s"] != 86.95 || w.Metrics["B/op"] != 1724876 {
		t.Fatalf("write line metrics %v", w.Metrics)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX notanumber 12 ns/op\n")); err == nil {
		t.Fatal("malformed iteration count accepted")
	}
}
