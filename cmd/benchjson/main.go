// Command benchjson converts `go test -bench` output into a committed
// JSON snapshot file, so performance numbers live in the repository with
// a label per measurement point and regressions show up as diffs.
//
//	go test -run '^$' -bench 'BenchmarkMatMul128$' -benchmem . |
//	    go run ./cmd/benchjson -label post-overhaul -out BENCH_micro.json
//
// The output file holds a list of snapshots; re-running with an existing
// label replaces that snapshot in place, so iterating on a change keeps
// exactly one entry per label.
//
// With -guard <file> the tool instead checks the piped benchmark output
// against the ceilings committed in that file (see GuardFile) and exits
// nonzero on any regression — the `make bench-guard` CI gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: the canonical ns/op plus every extra
// metric the benchmark reported (GFLOPS, samples/s, B/op, allocs/op...).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is one labelled measurement run.
type Snapshot struct {
	Label   string   `json:"label"`
	Date    string   `json:"date,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// File is the committed snapshot collection.
type File struct {
	Snapshots []Snapshot `json:"snapshots"`
}

func main() {
	label := flag.String("label", "", "snapshot label (required); an existing snapshot with the same label is replaced")
	out := flag.String("out", "BENCH_micro.json", "snapshot file to create or update")
	date := flag.String("date", "", "optional date string recorded verbatim in the snapshot")
	guardPath := flag.String("guard", "", "threshold file: check stdin against its ceilings instead of snapshotting; exit 1 on regression")
	flag.Parse()
	if *guardPath != "" {
		runGuard(*guardPath)
		return
	}
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}

	snap, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(snap.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	snap.Label = *label
	snap.Date = *date

	var file File
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &file); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: existing %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	replaced := false
	for i := range file.Snapshots {
		if file.Snapshots[i].Label == snap.Label {
			file.Snapshots[i] = snap
			replaced = true
			break
		}
	}
	if !replaced {
		file.Snapshots = append(file.Snapshots, snap)
	}

	enc, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	verb := "added"
	if replaced {
		verb = "replaced"
	}
	fmt.Printf("benchjson: %s snapshot %q (%d results) in %s\n", verb, snap.Label, len(snap.Results), *out)
}

// parse reads `go test -bench` output: it keeps the cpu: header and every
// Benchmark* line, ignoring everything else (PASS, ok, pkg headers).
func parse(r io.Reader) (Snapshot, error) {
	var snap Snapshot
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			snap.CPU = strings.TrimSpace(cpu)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, err := parseLine(line)
		if err != nil {
			return snap, fmt.Errorf("%q: %w", line, err)
		}
		snap.Results = append(snap.Results, res)
	}
	return snap, sc.Err()
}

// parseLine parses one benchmark result line:
//
//	BenchmarkName-8   1234   5678 ns/op   9.1 GFLOPS   0 B/op   0 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped from the name. After the
// iteration count, values and units alternate.
func parseLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, fmt.Errorf("too few fields")
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iteration count: %w", err)
	}
	res := Result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("value %q: %w", fields[i], err)
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			res.NsPerOp = val
		} else {
			res.Metrics[unit] = val
		}
	}
	if len(res.Metrics) == 0 {
		res.Metrics = nil
	}
	return res, nil
}
