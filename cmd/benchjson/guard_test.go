package main

import (
	"strings"
	"testing"
)

func parseBench(t *testing.T, out string) Snapshot {
	t.Helper()
	snap, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestGuardPasses(t *testing.T) {
	snap := parseBench(t, `
cpu: Intel(R) Xeon(R)
BenchmarkWireWriteUpdate/codec-8   100   235000 ns/op   1200 B/op   3 allocs/op
PASS
`)
	gf := GuardFile{Thresholds: []Threshold{{
		Name:       "BenchmarkWireWriteUpdate/codec",
		MaxNsPerOp: 700_000,
		MaxMetrics: map[string]float64{"allocs/op": 4},
	}}}
	if v := guard(snap, gf); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestGuardCatchesRegressions(t *testing.T) {
	snap := parseBench(t, `
BenchmarkWireWriteUpdate/codec-8   10   1391962 ns/op   1300000 B/op   21 allocs/op
`)
	gf := GuardFile{Thresholds: []Threshold{{
		Name:       "BenchmarkWireWriteUpdate/codec",
		MaxNsPerOp: 700_000,
		MaxMetrics: map[string]float64{"allocs/op": 4},
	}}}
	v := guard(snap, gf)
	if len(v) != 2 {
		t.Fatalf("want ns/op and allocs/op violations, got %v", v)
	}
	for _, line := range v {
		if !strings.Contains(line, "exceeds ceiling") {
			t.Fatalf("violation text: %q", line)
		}
	}
}

func TestGuardFlagsMissingBenchmarkAndMetric(t *testing.T) {
	snap := parseBench(t, `
BenchmarkSomethingElse-8   100   10 ns/op
BenchmarkWireWriteUpdate/codec-8   100   1000 ns/op
`)
	gf := GuardFile{Thresholds: []Threshold{
		{Name: "BenchmarkWireWriteUpdate/raw", MaxNsPerOp: 1},
		// allocs/op absent because the run lacked -benchmem.
		{Name: "BenchmarkWireWriteUpdate/codec", MaxMetrics: map[string]float64{"allocs/op": 4}},
	}}
	v := guard(snap, gf)
	if len(v) != 2 {
		t.Fatalf("want missing-benchmark and missing-metric violations, got %v", v)
	}
	if !strings.Contains(v[0], "missing from the run") {
		t.Fatalf("missing-benchmark text: %q", v[0])
	}
	if !strings.Contains(v[1], "-benchmem") {
		t.Fatalf("missing-metric text: %q", v[1])
	}
}
