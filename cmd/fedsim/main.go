// Command fedsim runs a single federated-learning experiment: one attack
// scenario under one aggregation strategy at a chosen scale, streaming
// per-round progress and finishing with summary statistics.
//
// Examples:
//
//	fedsim -scenario sign-flip-50 -strategy FedGuard
//	fedsim -scenario label-flip-40 -strategy FedGuard -server-lr 0.3
//	fedsim -preset paper -scenario additive-noise-50 -strategy Spectral
//	fedsim -list
//
// With -matrix, fedsim instead sweeps an attack×strategy grid (the
// adversary-suite evaluation) and prints a Table-IV-style pivot:
//
//	fedsim -preset quick -matrix -matrix-workers 4
//	fedsim -matrix -matrix-scenarios sign-flip-50,alie-30,decoder-forge-30 \
//	       -matrix-strategies FedAvg,Krum,FedGuard -matrix-csv matrix.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fedguard/internal/experiment"
	"fedguard/internal/fl"
	"fedguard/internal/metrics"
	"fedguard/internal/persist"
	"fedguard/internal/telemetry"
)

func main() {
	var (
		preset    = flag.String("preset", "default", "experiment scale: quick, default, paper")
		scenario  = flag.String("scenario", "no-attack", "attack scenario (see -list)")
		strategy  = flag.String("strategy", "FedGuard", "aggregation strategy (see -list)")
		serverLR  = flag.Float64("server-lr", 0, "override server learning rate (0 = preset value)")
		seed      = flag.Uint64("seed", 0, "override experiment seed (0 = preset value)")
		rounds    = flag.Int("rounds", 0, "override round count (0 = preset value)")
		samples   = flag.Int("samples", 0, "override FedGuard synthetic sample count t (0 = preset value)")
		workers   = flag.Int("workers", 0, "concurrent client trainers (0 = GOMAXPROCS)")
		aggWork   = flag.Int("agg-workers", 0, "aggregation-kernel parallelism (0 = tensor pool default; results identical at any value)")
		streamAud = flag.Bool("stream-audit", false, "audit each update as it lands instead of after the round barrier (bit-identical results)")
		ckptDir   = flag.String("checkpoint-dir", "", "persist a crash-safe run checkpoint to this directory after each round")
		ckptEvery = flag.Int("checkpoint-every", 1, "checkpoint cadence in rounds (with -checkpoint-dir)")
		resume    = flag.Bool("resume", false, "resume from the checkpoint in -checkpoint-dir (cold start if absent)")
		csv       = flag.Bool("csv", false, "emit the per-round accuracy series as CSV on stdout")
		confusion = flag.Bool("confusion", false, "print the final model's confusion matrix on the test set")
		save      = flag.String("save", "", "write the final global model checkpoint to this path")
		list      = flag.Bool("list", false, "list scenarios and strategies, then exit")

		matrix           = flag.Bool("matrix", false, "sweep an attack×strategy grid instead of a single run")
		matrixWorkers    = flag.Int("matrix-workers", 1, "concurrent matrix cells (results identical at any value)")
		matrixScenarios  = flag.String("matrix-scenarios", "", "comma-separated scenario IDs for -matrix (default: the adversary-suite grid)")
		matrixStrategies = flag.String("matrix-strategies", "", "comma-separated strategies for -matrix (default: FedAvg,Krum,FedGuard)")
		matrixCSV        = flag.String("matrix-csv", "", "write the -matrix results as deterministic long-form CSV to this path")
		matrixJSON       = flag.String("matrix-json", "", "write the -matrix results as JSON to this path")

		events     = flag.String("events", "", "write a structured JSONL event log to this path")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /healthz, expvar and pprof on this address (e.g. 127.0.0.1:6060)")
		metricsOut = flag.String("metrics-out", "", "write a JSON metrics snapshot to this path on exit")
		trace      = flag.Bool("trace", false, "record span trees (run → round → client/aggregate phases), exported into the -events log; analyze with fedtrace")

		// Accepted for CLI parity with fednode, where the fault-tolerance
		// and wire-compression machinery live. The in-process simulator has
		// no network to tolerate faults on or compress, so these only
		// validate and warn.
		minClients   = flag.Int("min-clients", 0, "round quorum (networked runs only; see fednode)")
		roundTimeout = flag.Duration("round-timeout", 0, "round straggler budget (networked runs only; see fednode)")
		compress     = flag.Bool("compress", false, "wire compression (networked runs only; see fednode)")
	)
	flag.Parse()

	if *minClients < 0 {
		fatal(fmt.Errorf("-min-clients = %d", *minClients))
	}
	if *roundTimeout < 0 {
		fatal(fmt.Errorf("-round-timeout = %v", *roundTimeout))
	}
	if *minClients > 0 || *roundTimeout > 0 {
		fmt.Fprintln(os.Stderr,
			"fedsim: -min-clients/-round-timeout have no effect in-process; use fednode for fault-tolerant networked runs")
	}
	if *compress {
		fmt.Fprintln(os.Stderr,
			"fedsim: -compress has no effect in-process (nothing crosses a socket); use fednode for compressed networked runs")
	}
	if *resume && *ckptDir == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint-dir"))
	}
	if *ckptEvery < 0 {
		fatal(fmt.Errorf("-checkpoint-every = %d", *ckptEvery))
	}
	if *aggWork < 0 {
		fatal(fmt.Errorf("-agg-workers = %d", *aggWork))
	}

	if *list {
		fmt.Println("scenarios:")
		for _, sc := range experiment.Scenarios() {
			fmt.Printf("  %-18s %s\n", sc.ID, sc.Description)
		}
		fmt.Println("strategies:")
		fmt.Printf("  %s\n", strings.Join(experiment.ExtendedStrategyNames(), ", "))
		return
	}

	setup, err := experiment.NewSetup(experiment.Preset(*preset))
	if err != nil {
		fatal(err)
	}
	if *rounds > 0 {
		setup.Rounds = *rounds
	}
	if *samples > 0 {
		setup.Samples = *samples
	}
	if *workers > 0 {
		setup.Workers = *workers
	}
	if *matrix {
		if *matrixWorkers < 1 {
			fatal(fmt.Errorf("-matrix-workers = %d", *matrixWorkers))
		}
		tel, cleanup, err := setupTelemetry(*events, *debugAddr, *metricsOut)
		if err != nil {
			fatal(err)
		}
		defer cleanup()
		runMatrixCLI(setup, matrixOpts{
			workers:     *matrixWorkers,
			scenarios:   *matrixScenarios,
			strategies:  *matrixStrategies,
			csvPath:     *matrixCSV,
			jsonPath:    *matrixJSON,
			serverLR:    *serverLR,
			seed:        *seed,
			aggWorkers:  *aggWork,
			streamAudit: *streamAud,
			tel:         tel,
		})
		return
	}

	sc, err := experiment.ScenarioByID(*scenario)
	if err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "fedsim: preset=%s scenario=%s strategy=%s clients=%d m=%d rounds=%d arch=%s\n",
		*preset, sc.ID, *strategy, setup.NumClients, setup.PerRound, setup.Rounds, setup.ArchName)

	tel, cleanup, err := setupTelemetry(*events, *debugAddr, *metricsOut)
	if err != nil {
		fatal(err)
	}
	defer cleanup()
	if *trace {
		if tel == nil {
			tel = telemetry.New(nil)
		}
		if *events == "" {
			fmt.Fprintln(os.Stderr,
				"fedsim: -trace without -events feeds the phase histograms only; add -events to export spans for fedtrace")
		}
		tel.EnableTracing("sim")
	}

	res, err := experiment.Run(setup, sc, *strategy, experiment.RunOptions{
		ServerLR:        *serverLR,
		Seed:            *seed,
		Telemetry:       tel,
		StreamAudit:     *streamAud,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		Resume:          *resume,
		AggWorkers:      *aggWork,
		OnRound: func(rec fl.RoundRecord) {
			fmt.Fprintf(os.Stderr, "round %3d  acc=%.4f  malicious-sampled=%d/%d  %.2fs",
				rec.Round, rec.TestAccuracy, rec.MaliciousSampled, len(rec.Sampled), rec.Seconds)
			if v, ok := rec.Report[fl.ReportFedGuardExcluded]; ok {
				fmt.Fprintf(os.Stderr, "  excluded=%d", int(v))
			}
			if v, ok := rec.Report[fl.ReportSpectralExcluded]; ok {
				fmt.Fprintf(os.Stderr, "  excluded=%d", int(v))
			}
			fmt.Fprintln(os.Stderr)
		},
	})
	if err != nil {
		fatal(err)
	}

	mean, std := res.History.LastNStats(setup.LastN)
	up, down := res.History.MeanBytes()
	wireUp, wireDown := res.History.MeanWireBytes()
	fmt.Fprintf(os.Stderr,
		"done: final=%.4f  last-%d mean=%.4f ± %.4f  round-time=%.2fs  up=%.1fMB down=%.1fMB (dedup %.1f/%.1fMB)\n",
		res.History.FinalAccuracy(), setup.LastN, mean, std,
		res.History.MeanSeconds(), float64(up)/(1<<20), float64(down)/(1<<20),
		float64(wireUp)/(1<<20), float64(wireDown)/(1<<20))

	if *csv {
		experiment.WriteSeriesCSV(os.Stdout, []*experiment.Result{res},
			func(r *experiment.Result) string { return r.Strategy })
	}
	if *confusion {
		_, test, _ := setup.Data()
		idx := make([]int, test.Len())
		for i := range idx {
			idx[i] = i
		}
		cm, err := metrics.EvaluateWeights(setup.Arch, res.History.FinalWeights, test, idx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(cm)
		a, p, n := cm.MostConfused()
		fmt.Printf("dominant confusion: %d predicted as %d (%d times)\n", a, p, n)
	}
	if *save != "" {
		if err := persist.SaveWeights(*save, res.History.FinalWeights); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "checkpoint written to %s (%d parameters)\n",
			*save, len(res.History.FinalWeights))
	}
}

type matrixOpts struct {
	workers     int
	scenarios   string
	strategies  string
	csvPath     string
	jsonPath    string
	serverLR    float64
	seed        uint64
	aggWorkers  int
	streamAudit bool
	tel         *telemetry.T
}

// runMatrixCLI resolves the grid from the flag values and executes the
// sweep, printing the pivot table on stdout and writing the optional
// CSV/JSON artifacts.
func runMatrixCLI(setup experiment.Setup, o matrixOpts) {
	scenarios := experiment.MatrixScenarios()
	if o.scenarios != "" {
		scenarios = scenarios[:0]
		for _, id := range strings.Split(o.scenarios, ",") {
			sc, err := experiment.ScenarioByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			scenarios = append(scenarios, sc)
		}
	}
	strategies := []string{"FedAvg", "Krum", "FedGuard"}
	if o.strategies != "" {
		strategies = strategies[:0]
		for _, s := range strings.Split(o.strategies, ",") {
			strategies = append(strategies, strings.TrimSpace(s))
		}
	}

	fmt.Fprintf(os.Stderr, "fedsim: matrix %d scenarios × %d strategies, %d worker(s)\n",
		len(scenarios), len(strategies), o.workers)
	cells, err := experiment.RunAttackMatrix(setup,
		experiment.MatrixSpec{Scenarios: scenarios, Strategies: strategies},
		experiment.MatrixOptions{
			Workers:     o.workers,
			ServerLR:    o.serverLR,
			Seed:        o.seed,
			AggWorkers:  o.aggWorkers,
			StreamAudit: o.streamAudit,
			Telemetry:   o.tel,
			Progress:    os.Stderr,
		})
	if err != nil {
		fatal(err)
	}
	fmt.Print(experiment.FormatMatrixTable(cells))

	if o.csvPath != "" {
		if err := writeFileWith(o.csvPath, func(w *os.File) error {
			return experiment.WriteMatrixCSV(w, cells)
		}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fedsim: matrix CSV written to %s\n", o.csvPath)
	}
	if o.jsonPath != "" {
		if err := writeFileWith(o.jsonPath, func(w *os.File) error {
			return experiment.WriteMatrixJSON(w, cells)
		}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fedsim: matrix JSON written to %s\n", o.jsonPath)
	}
}

func writeFileWith(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// setupTelemetry assembles the run's observability from the three
// flags: a JSONL event log, a debug HTTP listener, and a JSON metrics
// snapshot written at exit. All three disabled returns a nil *T, which
// keeps every instrumentation call in the hot path a no-op.
func setupTelemetry(events, debugAddr, metricsOut string) (*telemetry.T, func(), error) {
	if events == "" && debugAddr == "" && metricsOut == "" {
		return nil, func() {}, nil
	}
	tel := telemetry.New(nil)
	var closers []func()
	if events != "" {
		sink, err := telemetry.NewFileSink(events)
		if err != nil {
			return nil, nil, err
		}
		tel.Events = sink
		closers = append(closers, func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "fedsim: event log:", err)
			}
		})
	}
	if debugAddr != "" {
		ds, err := telemetry.ServeDebug(debugAddr, tel.Metrics)
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "fedsim: debug endpoints on http://%s/\n", ds.Addr())
		closers = append(closers, func() { ds.Close() })
	}
	if metricsOut != "" {
		closers = append(closers, func() {
			f, err := os.Create(metricsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fedsim: metrics snapshot:", err)
				return
			}
			defer f.Close()
			if err := tel.Metrics.WriteJSON(f); err != nil {
				fmt.Fprintln(os.Stderr, "fedsim: metrics snapshot:", err)
			}
		})
	}
	return tel, func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedsim:", err)
	os.Exit(1)
}
