GO ?= go

.PHONY: all build test test-short race vet ci bench bench-json bench-smoke clean

# The substrate microbenchmarks tracked in BENCH_micro.json.
MICRO_BENCH = BenchmarkMatMul128$$|BenchmarkConvForward$$|BenchmarkConvBackward$$|BenchmarkClassifierTrainEpoch$$|BenchmarkDecoderGenerate$$
# Label for the snapshot written by bench-json.
BENCH_LABEL ?= current

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# ci is the gate for every change: static analysis, the short test suite
# under the race detector (telemetry and fednet are concurrent), and one
# iteration of every substrate microbenchmark so a broken kernel fails
# fast even when its unit tests are skipped.
ci: vet race bench-smoke

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# bench-smoke runs each tracked microbenchmark exactly once as a
# build-and-run sanity gate (seconds, not minutes).
bench-smoke:
	$(GO) test -run '^$$' -bench '$(MICRO_BENCH)' -benchmem -benchtime=1x .

# bench-json measures the tracked microbenchmarks and records them as a
# labelled snapshot in BENCH_micro.json (BENCH_LABEL=<label> to name it;
# re-using a label replaces that snapshot).
bench-json:
	$(GO) test -run '^$$' -bench '$(MICRO_BENCH)' -benchmem -benchtime=3s . \
		| $(GO) run ./cmd/benchjson -label '$(BENCH_LABEL)' -out BENCH_micro.json

clean:
	$(GO) clean ./...
	rm -rf results/
