GO ?= go

.PHONY: all build test test-short race vet ci bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# ci is the gate for every change: static analysis plus the short test
# suite under the race detector (telemetry and fednet are concurrent).
ci: vet race

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

clean:
	$(GO) clean ./...
	rm -rf results/
