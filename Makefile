GO ?= go

.PHONY: all build test test-short race vet ci bench bench-json bench-smoke bench-agg bench-guard test-attacks test-chaos test-codec test-resume trace-smoke fuzz-smoke clean

# The substrate microbenchmarks tracked in BENCH_micro.json.
MICRO_BENCH = BenchmarkMatMul128$$|BenchmarkConvForward$$|BenchmarkConvBackward$$|BenchmarkClassifierTrainEpoch$$|BenchmarkDecoderGenerate$$
# The wire-layer microbenchmarks (raw vs codec framing and the per-round
# byte cost), tracked in the same snapshot file.
WIRE_BENCH = BenchmarkWireWriteUpdate$$|BenchmarkWireReadUpdate$$|BenchmarkRoundWireBytes$$
# The codec kernels and the server's encode-once broadcast fan-out,
# tracked in the same snapshot file.
CODEC_BENCH = BenchmarkCodecEncode$$|BenchmarkCodecEncodeDelta$$|BenchmarkCodecHash$$
FANOUT_BENCH = BenchmarkServerBroadcastFanout$$
# The checkpoint write-cost benchmarks (serialization alone, and the full
# fsync+rename durable path), tracked in the same snapshot file.
CKPT_BENCH = BenchmarkCheckpointWrite$$|BenchmarkCheckpointSave$$
# The aggregation-kernel benchmarks (robust strategy math on the blocked
# reduction kernels at model dimension), tracked in the same snapshot
# file.
AGG_BENCH = BenchmarkAggregateFedAvg$$|BenchmarkKrumScores$$|BenchmarkGeoMed$$|BenchmarkCoordinateMedian$$|BenchmarkServerApply$$
# Label for the snapshot written by bench-json.
BENCH_LABEL ?= current

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# ci is the gate for every change: static analysis, the short test suite
# under the race detector (telemetry and fednet are concurrent), one
# iteration of every substrate microbenchmark so a broken kernel fails
# fast even when its unit tests are skipped, the adversary-suite gate,
# the fault-injection chaos suite, the lossless-codec stack, the
# crash-recovery kill/resume drill, the distributed-tracing smoke run,
# and bounded fuzz passes over the wire, codec, and checkpoint decoders.
ci: vet race bench-smoke bench-guard test-attacks test-chaos test-codec test-resume trace-smoke fuzz-smoke

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# bench-smoke runs each tracked microbenchmark exactly once as a
# build-and-run sanity gate (seconds, not minutes).
bench-smoke:
	$(GO) test -run '^$$' -bench '$(MICRO_BENCH)' -benchmem -benchtime=1x .
	$(GO) test -run '^$$' -bench '$(WIRE_BENCH)' -benchmem -benchtime=1x ./internal/wire/
	$(GO) test -run '^$$' -bench '$(CODEC_BENCH)' -benchmem -benchtime=1x ./internal/codec/
	$(GO) test -run '^$$' -bench '$(FANOUT_BENCH)' -benchmem -benchtime=1x ./internal/fednet/
	$(GO) test -run '^$$' -bench '$(CKPT_BENCH)' -benchmem -benchtime=1x ./internal/persist/
	$(GO) test -run '^$$' -bench '$(AGG_BENCH)' -benchmem -benchtime=1x .

# bench-agg runs the aggregation-kernel benchmarks once — the quick
# sanity check after touching internal/tensor or internal/aggregate.
bench-agg:
	$(GO) test -run '^$$' -bench '$(AGG_BENCH)' -benchmem -benchtime=1x .

# bench-json measures the tracked microbenchmarks and records them as a
# labelled snapshot in BENCH_micro.json (BENCH_LABEL=<label> to name it;
# re-using a label replaces that snapshot).
bench-json:
	{ $(GO) test -run '^$$' -bench '$(MICRO_BENCH)' -benchmem -benchtime=3s . ; \
	  $(GO) test -run '^$$' -bench '$(WIRE_BENCH)' -benchmem -benchtime=3s ./internal/wire/ ; \
	  $(GO) test -run '^$$' -bench '$(CODEC_BENCH)' -benchmem -benchtime=3s ./internal/codec/ ; \
	  $(GO) test -run '^$$' -bench '$(FANOUT_BENCH)' -benchmem -benchtime=20x ./internal/fednet/ ; \
	  $(GO) test -run '^$$' -bench '$(CKPT_BENCH)' -benchmem -benchtime=3s ./internal/persist/ ; \
	  $(GO) test -run '^$$' -bench '$(AGG_BENCH)' -benchmem -benchtime=3s . ; } \
		| $(GO) run ./cmd/benchjson -label '$(BENCH_LABEL)' -out BENCH_micro.json

# bench-guard re-measures the round-pipeline critical benchmarks and
# fails if any exceed the ceilings committed in BENCH_guard.json — the
# regression tripwire for the pooled frame writer, the codec fast paths,
# the per-round checkpoint serialization cost, and the blocked
# aggregation kernels. Ceilings are loose (≈2-3× the snapshot numbers)
# so CI noise passes but a lost fast path or reintroduced per-op
# allocation fails.
bench-guard:
	{ $(GO) test -run '^$$' -bench 'BenchmarkWireWriteUpdate$$' -benchmem -benchtime=50x ./internal/wire/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkCheckpointWrite$$' -benchmem -benchtime=50x ./internal/persist/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkKrumScores$$|BenchmarkGeoMed$$|BenchmarkCoordinateMedian$$|BenchmarkServerApply$$' -benchmem -benchtime=20x . ; } \
		| $(GO) run ./cmd/benchjson -guard BENCH_guard.json

# test-attacks is the adversary-suite gate: the attack unit tests, the
# fl-layer hook-dispatch and cohort-rewrite tests, and the matrix smoke
# (a 2×2 grid asserting byte-identical CSV at -matrix-workers 1 vs 4).
# Race on — the cohort hook and the matrix worker pool are concurrent.
test-attacks:
	$(GO) test -race ./internal/attack/
	$(GO) test -race -run 'Attack|Cohort|StreamAuditGated' ./internal/fl/
	$(GO) test -race -run 'Matrix' ./internal/experiment/

# test-chaos runs the deterministic fault-injection suite — the faultnet
# wrappers plus the fednet chaos/rejoin/quorum tests (skipped under
# -short) — with the race detector on, since every scenario exercises
# concurrent drops, retries, and rejoins.
test-chaos:
	$(GO) test -race ./internal/faultnet/
	$(GO) test -race -run 'Chaos|Fault|Rejoin|Quorum' ./internal/fednet/

# test-codec runs the lossless compression stack: the codec unit tests
# and the compressed-vs-raw federation equivalence tests (race on — they
# drive concurrent socket rounds; -short keeps the quick-preset
# acceptance run out of the CI budget, `go test ./...` still covers it).
test-codec:
	$(GO) test ./internal/codec/
	$(GO) test -race -short -run 'Compressed' ./internal/fednet/

# test-resume is the crash-recovery gate: checkpoint format pins and
# fuzz-adjacent rejection tests in persist, the in-process kill/resume
# suite in fl, and the networked drill in fednet — a server killed at
# each interior round boundary (and once mid-round, after uploads but
# before aggregation) resumes on the same address against surviving
# resilient clients with bit-identical results. Race on — the drill
# spans two server lifetimes of concurrent sockets. -short keeps the
# full 3-seed × raw/codec × barrier/stream FedGuard crash-point matrix
# out of the CI budget; `go test ./...` still covers it.
test-resume:
	$(GO) test ./internal/persist/
	$(GO) test -race -short -run 'Resume|Checkpoint' ./internal/fl/
	$(GO) test -race -short -run 'KillResume|CrashPoint|Resume' ./internal/fednet/

# trace-smoke is the end-to-end distributed-tracing gate: a 3-round
# 4-client fault-injected federation (one hard straggler) with per-node
# JSONL span logs, asserting fedtrace reconstructs every round as a
# single complete rooted span tree with drop reasons visible. Race on —
# the run drives concurrent traced sockets.
trace-smoke:
	$(GO) test -race -run 'TestTraceSmoke' ./cmd/fedtrace/
	$(GO) test -race -run 'Traced' ./internal/fednet/

# fuzz-smoke gives the wire-frame and codec decoders a bounded
# randomized beating on every CI run; go test -fuzz takes over for
# longer campaigns.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReadMessage -fuzztime 10s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzCodecRoundTrip -fuzztime 10s ./internal/codec/
	$(GO) test -run '^$$' -fuzz FuzzReadCheckpoint -fuzztime 10s ./internal/persist/

clean:
	$(GO) clean ./...
	rm -rf results/
