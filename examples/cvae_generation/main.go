// CVAE generation: FedGuard's controllable validation-data synthesis,
// visualized.
//
// Trains a client-side CVAE on SynthDigits, then conditions its decoder
// on each class label with fresh prior samples — exactly what the
// FedGuard server does every round (Alg. 1 lines 2–4) — and prints the
// real and synthesized digits side by side as ASCII art.
//
//	go run ./examples/cvae_generation
package main

import (
	"fmt"
	"strings"

	"fedguard/internal/cvae"
	"fedguard/internal/dataset"
	"fedguard/internal/rng"
	"fedguard/internal/tensor"
)

func main() {
	r := rng.New(2024)
	train := dataset.Generate(800, dataset.DefaultGenOptions(), r)

	cfg := cvae.SmallConfig()
	model := cvae.New(cfg, r)
	fmt.Printf("training a %d-parameter CVAE (hidden %d, latent %d) for 30 epochs on %d digits...\n",
		model.NumParams(), cfg.Hidden, cfg.Latent, train.Len())
	loss := model.Train(train, dataset.Range(train.Len()),
		cvae.TrainConfig{Epochs: 30, BatchSize: 32, LR: 1e-3}, r)
	fmt.Printf("final ELBO loss: %.1f\n\n", loss)

	// The server only ever sees the decoder — snapshot it the way a
	// FedGuard client would upload it.
	dec := cvae.DecoderFromCVAE(model)
	fmt.Printf("decoder payload: %d parameters (%.2f MB at float32)\n\n",
		len(model.DecoderParams()), float64(len(model.DecoderParams()))*4/(1<<20))

	for class := 0; class < dataset.NumClasses; class++ {
		// One real example of the class for reference.
		var real []float32
		for i := 0; i < train.Len(); i++ {
			if train.Labels[i] == class {
				real = train.X[i*784 : (i+1)*784]
				break
			}
		}
		// Two conditional generations from prior samples.
		z := tensor.New(2, cfg.Latent)
		r.FillNormal(z.Data, 0, 1)
		gen := dec.Generate(z, []int{class, class})

		fmt.Printf("class %d: real | generated | generated\n", class)
		printSideBySide(
			dataset.ASCIIArt(real, 28, 28),
			dataset.ASCIIArt(gen.Data[:784], 28, 28),
			dataset.ASCIIArt(gen.Data[784:], 28, 28),
		)
	}
}

func printSideBySide(arts ...string) {
	split := make([][]string, len(arts))
	for i, a := range arts {
		split[i] = strings.Split(strings.TrimRight(a, "\n"), "\n")
	}
	for row := 0; row < len(split[0]); row++ {
		parts := make([]string, len(arts))
		for i := range arts {
			parts[i] = split[i][row]
		}
		fmt.Println(strings.Join(parts, "  |  "))
	}
	fmt.Println()
}
