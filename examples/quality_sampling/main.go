// Quality sampling: the paper conclusion's "better sampling of quality
// candidates".
//
// Runs the same 50%-sign-flip federation twice under FedGuard: once with
// the standard uniform client sampler and once with a QualitySampler
// that biases selection away from clients FedGuard has been excluding.
// Over the rounds, the malicious share of each sampled cohort drops well
// below 50% — the defense stops merely filtering attackers and starts
// avoiding them.
//
//	go run ./examples/quality_sampling
package main

import (
	"fmt"
	"log"

	"fedguard/internal/defense"
	"fedguard/internal/experiment"
	"fedguard/internal/fl"
)

func main() {
	setup := experiment.MustSetup(experiment.PresetQuick)
	setup.Rounds = 12

	run := func(useQuality bool) (history *fl.History, maliciousSampled []int) {
		att, err := experiment.NewAttack("sign-flip", setup.Seed)
		if err != nil {
			log.Fatal(err)
		}
		guard := defense.NewFedGuard(setup.Arch, setup.CVAE)
		guard.Samples = setup.Samples

		train, test, _ := setup.Data()
		cfg := fl.FederationConfig{
			NumClients: setup.NumClients, PerRound: setup.PerRound, Rounds: setup.Rounds,
			Alpha: setup.Alpha, ServerLR: 1,
			MaliciousFraction: 0.5, Attack: att,
			Client: fl.ClientConfig{
				Arch: setup.Arch, Train: setup.Train,
				CVAE: setup.CVAE, CVAETrain: setup.CVAETrain, NumClasses: 10,
			},
			TestSubset: setup.TestSubset,
			Seed:       setup.Seed,
		}
		if useQuality {
			cfg.Sampler = defense.NewQualitySampler(guard)
		}
		fed, err := fl.NewFederation(train, test, cfg)
		if err != nil {
			log.Fatal(err)
		}
		h, err := fed.Run(guard, func(rec fl.RoundRecord) {
			maliciousSampled = append(maliciousSampled, rec.MaliciousSampled)
		})
		if err != nil {
			log.Fatal(err)
		}
		return h, maliciousSampled
	}

	fmt.Println("FedGuard vs 50% sign-flipping attackers, 12 rounds")
	fmt.Println()
	uh, um := run(false)
	qh, qm := run(true)

	fmt.Printf("%-7s %-28s %-28s\n", "round", "uniform sampler", "quality sampler")
	fmt.Printf("%-7s %-12s %-15s %-12s %-15s\n", "", "acc", "malicious/m", "acc", "malicious/m")
	for i := 0; i < setup.Rounds; i++ {
		fmt.Printf("%-7d %-12.3f %d/%-13d %-12.3f %d/%-13d\n",
			i+1,
			uh.Rounds[i].TestAccuracy, um[i], setup.PerRound,
			qh.Rounds[i].TestAccuracy, qm[i], setup.PerRound)
	}

	sum := func(xs []int) int {
		t := 0
		for _, x := range xs[len(xs)/2:] {
			t += x
		}
		return t
	}
	fmt.Printf("\nmalicious participations in the second half: uniform %d, quality %d\n",
		sum(um), sum(qm))
	fmt.Println("The quality sampler starves repeat offenders of participation slots,")
	fmt.Println("cutting wasted training and shrinking the attack surface per round.")
}
